package pcs

import (
	"sort"

	"repro/internal/stats"
	"repro/internal/traffic"
)

// TrafficSpec describes the run's arrival process — the production-shaped
// replacement for the scalar Options.ArrivalRate. It mirrors the policy
// authoring surface: pure data, validated up front, constructed fresh for
// every replication so runs stay bit-reproducible. Kinds:
//
//   - "poisson": memoryless arrivals at Rate (0 defers to ArrivalRate) —
//     the paper's own workload, now explicit.
//   - "trace": replay a recorded NDJSON/CSV arrival trace from Path,
//     streamed so multi-gigabyte traces never load into memory. NDJSON
//     records are {"t": seconds, "tenant": "...", "class": "..."} per
//     line; CSV rows are t[,tenant[,class]]. Rate is the nominal pacing
//     rate steering scales against (0 defers to ArrivalRate).
//   - "sessions": a closed population of Users flows, each issuing a
//     request then thinking for a lognormal(ThinkSeconds, ThinkSigma)
//     think time — offered load emerges from population size.
//   - "mmpp": Markov-modulated Poisson burstiness cycling through
//     Rates[i]-intensity states held for mean Sojourns[i] seconds;
//     HeavyTail gives spike durations a power-law tail.
//   - "multi-tenant": compose per-tenant sources with token-bucket
//     admission and per-tenant latency/drop breakdowns in the Result.
//
// The determinism contract and trace file format are documented in
// docs/traffic.md.
type TrafficSpec struct {
	// Kind selects the source, one of the kinds listed above.
	Kind string `json:"kind"`
	// Rate is the Poisson λ or trace nominal pacing rate; 0 defers to
	// Options.ArrivalRate.
	Rate float64 `json:"rate,omitempty"`
	// Path and Format configure "trace": the trace file, and "ndjson",
	// "csv" or "" to infer from the extension.
	Path   string `json:"path,omitempty"`
	Format string `json:"format,omitempty"`
	// Users, ThinkSeconds and ThinkSigma configure "sessions".
	Users        int     `json:"users,omitempty"`
	ThinkSeconds float64 `json:"thinkSeconds,omitempty"`
	ThinkSigma   float64 `json:"thinkSigma,omitempty"`
	// Rates, Sojourns and HeavyTail configure "mmpp".
	Rates     []float64 `json:"rates,omitempty"`
	Sojourns  []float64 `json:"sojourns,omitempty"`
	HeavyTail bool      `json:"heavyTail,omitempty"`
	// Tenants configures "multi-tenant".
	Tenants []TenantTraffic `json:"tenants,omitempty"`
}

// TenantTraffic is one tenant inside a "multi-tenant" TrafficSpec.
type TenantTraffic struct {
	// Name tags the tenant's requests; it keys the per-tenant breakdown
	// in Result.Tenants. Unique and non-empty.
	Name string `json:"name"`
	// Source is the tenant's own arrival process (any kind but
	// "multi-tenant").
	Source TrafficSpec `json:"source"`
	// AdmitRate caps the tenant at this many admitted requests/second
	// via a deterministic token bucket; 0 admits everything.
	AdmitRate float64 `json:"admitRate,omitempty"`
	// Burst is the bucket depth in requests — how far above AdmitRate
	// the tenant may spike before denials start (0 with a positive
	// AdmitRate selects 1).
	Burst int `json:"burst,omitempty"`
}

// toSpec converts the public spec into the internal traffic package's.
func (ts *TrafficSpec) toSpec() traffic.Spec {
	spec := traffic.Spec{
		Kind:         ts.Kind,
		Rate:         ts.Rate,
		Path:         ts.Path,
		Format:       ts.Format,
		Users:        ts.Users,
		ThinkSeconds: ts.ThinkSeconds,
		ThinkSigma:   ts.ThinkSigma,
		Rates:        ts.Rates,
		Sojourns:     ts.Sojourns,
		HeavyTail:    ts.HeavyTail,
	}
	for _, t := range ts.Tenants {
		spec.Tenants = append(spec.Tenants, traffic.TenantSpec{
			Name:      t.Name,
			Source:    t.Source.toSpec(),
			AdmitRate: t.AdmitRate,
			Burst:     t.Burst,
		})
	}
	return spec
}

// TenantResult is one tenant's slice of a run: request accounting and the
// tenant's own end-to-end latency distribution. Offered counts every
// arrival the tenant generated inside the request budget; Admitted counts
// the ones that entered the service, Dropped the ones its token bucket
// denied. Latency percentiles cover the tenant's post-warmup completions.
type TenantResult struct {
	Name                       string
	Offered, Admitted, Dropped int
	AvgMs, P50Ms, P99Ms        float64
}

// tenantResults assembles the sorted per-tenant breakdown from the
// service's counters and the collector's per-tenant latencies, nil for
// untenanted traffic (keeping scalar-run Results byte-identical).
func (s *Simulation) tenantResults() []TenantResult {
	arrivals := s.svc.TenantArrivals()
	drops := s.svc.TenantDrops()
	if len(arrivals) == 0 && len(drops) == 0 {
		return nil
	}
	names := make(map[string]bool)
	for name := range arrivals {
		names[name] = true
	}
	for name := range drops {
		names[name] = true
	}
	lats := s.svc.Collector().TenantLatencies()
	out := make([]TenantResult, 0, len(names))
	for name := range names {
		sum := stats.Summarize(lats[name])
		out = append(out, TenantResult{
			Name:     name,
			Offered:  arrivals[name] + drops[name],
			Admitted: arrivals[name],
			Dropped:  drops[name],
			AvgMs:    sum.Mean * 1000,
			P50Ms:    sum.P50 * 1000,
			P99Ms:    sum.P99 * 1000,
		})
	}
	// Map iteration is unordered; reports are not. Sort by name.
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
