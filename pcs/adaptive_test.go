package pcs

import (
	"reflect"
	"testing"
)

func adaptiveOpts(seed int64) Options {
	return Options{
		Technique:        Basic,
		Seed:             seed,
		Nodes:            8,
		SearchComponents: 12,
		ArrivalRate:      60,
		Requests:         600,
	}
}

func TestRunUntilLooseTargetStopsAtMin(t *testing.T) {
	agg, err := RunUntil(adaptiveOpts(1), CITarget{RelHalfWidth: 10, MinReplications: 3, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Converged {
		t.Fatalf("relative target of 1000%% did not converge: %+v", agg.AvgOverallMs)
	}
	if agg.Replications != 3 {
		t.Fatalf("replications = %d, want the minimum 3", agg.Replications)
	}
}

func TestRunUntilImpossibleTargetHitsCap(t *testing.T) {
	agg, err := RunUntil(adaptiveOpts(1), CITarget{
		RelHalfWidth: 1e-12, MinReplications: 3, MaxReplications: 7, BatchSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Converged {
		t.Fatal("CI target of 1e-12 converged (suspicious)")
	}
	if agg.Replications != 7 {
		t.Fatalf("replications = %d, want the cap 7", agg.Replications)
	}
}

func TestRunUntilMatchesRunManyAtStoppingPoint(t *testing.T) {
	// RunUntil uses the same seed streams as RunMany, so its aggregate
	// must equal a fixed-count run of the same length.
	opts := adaptiveOpts(5)
	agg, err := RunUntil(opts, CITarget{RelHalfWidth: 0.2, MinReplications: 4, MaxReplications: 12, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RunMany(opts, agg.Replications)
	if err != nil {
		t.Fatal(err)
	}
	fixed.Converged = agg.Converged // the only field allowed to differ
	fixed.Workers = agg.Workers
	if !reflect.DeepEqual(agg, fixed) {
		t.Fatalf("RunUntil(%d reps) != RunMany(%d):\n%+v\n%+v",
			agg.Replications, fixed.Replications, agg.AvgOverallMs, fixed.AvgOverallMs)
	}
}

func TestRunUntilDeterministicAcrossWorkers(t *testing.T) {
	opts := adaptiveOpts(9)
	target := CITarget{RelHalfWidth: 0.15, MinReplications: 4, MaxReplications: 8, BatchSize: 2}
	serial := target
	serial.Workers = 1
	a, err := RunUntil(opts, serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := target
	parallel.Workers = 0
	b, err := RunUntil(opts, parallel)
	if err != nil {
		t.Fatal(err)
	}
	a.Workers, b.Workers = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker count changed the aggregate:\nserial:   %+v\nparallel: %+v",
			a.AvgOverallMs, b.AvgOverallMs)
	}
}

func TestRunUntilTighterTargetNeedsMoreReplications(t *testing.T) {
	opts := adaptiveOpts(3)
	loose, err := RunUntil(opts, CITarget{RelHalfWidth: 0.5, MinReplications: 3, MaxReplications: 24, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunUntil(opts, CITarget{RelHalfWidth: 0.02, MinReplications: 3, MaxReplications: 24, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Replications < loose.Replications {
		t.Fatalf("tighter target used fewer replications: %d < %d",
			tight.Replications, loose.Replications)
	}
}

func TestRunUntilRejectsMissingTarget(t *testing.T) {
	if _, err := RunUntil(adaptiveOpts(1), CITarget{}); err == nil {
		t.Fatal("zero CITarget accepted")
	}
	if _, err := RunUntil(adaptiveOpts(1), CITarget{RelHalfWidth: -0.1}); err == nil {
		t.Fatal("negative CI target accepted")
	}
}

func TestRunUntilMaxReplicationsIsAHardCap(t *testing.T) {
	// An explicit cap below the default minimum lowers the minimum; the
	// cap is never exceeded.
	agg, err := RunUntil(adaptiveOpts(2), CITarget{RelHalfWidth: 1e-12, MaxReplications: 3})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Replications != 3 {
		t.Fatalf("replications = %d, want exactly the cap 3", agg.Replications)
	}
	if agg.Converged {
		t.Fatal("impossible target converged")
	}
	// A cap of 1 yields one run and can never converge (no interval from
	// a single sample).
	one, err := RunUntil(adaptiveOpts(2), CITarget{RelHalfWidth: 100, MaxReplications: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Replications != 1 || one.Converged {
		t.Fatalf("cap 1: replications=%d converged=%v, want 1/false", one.Replications, one.Converged)
	}
}
