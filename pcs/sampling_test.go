package pcs

import (
	"reflect"
	"testing"
)

// TestSampledRunBitIdenticalAllScenarios is the observability acceptance
// gate: for every registered scenario, a run observed through SampleEvery
// produces a Result bit-identical to the unobserved run — and the sampled
// snapshots themselves are populated and monotone.
func TestSampledRunBitIdenticalAllScenarios(t *testing.T) {
	for _, name := range Scenarios() {
		opts := equivOpts(Basic, name, 13)
		direct, err := Run(opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := NewSimulation(opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var snaps []Snapshot
		if err := s.SampleEvery(s.Horizon()/23, func(sn Snapshot) { snaps = append(snaps, sn) }); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sampled := s.Finish()
		if !reflect.DeepEqual(direct, sampled) {
			t.Errorf("%s: sampled run diverged from unsampled\nplain:   %+v\nsampled: %+v",
				name, direct, sampled)
		}
		if len(snaps) < 20 {
			t.Fatalf("%s: only %d samples taken", name, len(snaps))
		}
		assertSnapshotsMonotone(t, name, snaps, sampled)
	}
}

// assertSnapshotsMonotone checks the fields every scenario must populate
// and the counters that may never move backwards.
func assertSnapshotsMonotone(t *testing.T, name string, snaps []Snapshot, final Result) {
	t.Helper()
	var prev Snapshot
	for i, sn := range snaps {
		if sn.Horizon <= 0 {
			t.Fatalf("%s: sample %d has no horizon: %+v", name, i, sn)
		}
		if sn.Now < prev.Now {
			t.Fatalf("%s: time went backwards at sample %d: %v → %v", name, i, prev.Now, sn.Now)
		}
		if sn.Completed < prev.Completed || sn.Arrivals < prev.Arrivals {
			t.Fatalf("%s: counters went backwards at sample %d: %+v → %+v", name, i, prev, sn)
		}
		if sn.FiredEvents < prev.FiredEvents {
			t.Fatalf("%s: fired events went backwards at sample %d", name, i)
		}
		if sn.Completed > sn.Arrivals {
			t.Fatalf("%s: sample %d completed %d > arrivals %d", name, i, sn.Completed, sn.Arrivals)
		}
		if sn.InFlight != sn.Arrivals-sn.Completed {
			t.Fatalf("%s: sample %d in-flight inconsistent: %+v", name, i, sn)
		}
		if sn.MeanCoreUtilization < 0 || sn.MeanCoreUtilization > 1 ||
			sn.MaxCoreUtilization < sn.MeanCoreUtilization || sn.MaxCoreUtilization > 1 {
			t.Fatalf("%s: sample %d utilization out of range: %+v", name, i, sn)
		}
		if sn.QueuedExecutions < 0 || sn.BusyInstances < 0 || sn.FailedNodes < 0 {
			t.Fatalf("%s: sample %d negative gauges: %+v", name, i, sn)
		}
		prev = sn
	}
	last := snaps[len(snaps)-1]
	if last.Arrivals == 0 || last.Completed == 0 || last.BatchJobsStarted == 0 {
		t.Fatalf("%s: final sample inactive: %+v", name, last)
	}
	if last.AdmittedRate <= 0 {
		t.Fatalf("%s: final sample has no arrival rate: %+v", name, last)
	}
	if last.AvgOverallMs <= 0 || last.P99ComponentMs <= 0 {
		t.Fatalf("%s: final sample has no latency metrics: %+v", name, last)
	}
	if last.Completed > final.Completed {
		t.Fatalf("%s: sample saw %d completions, result only %d", name, last.Completed, final.Completed)
	}
}

// TestSampledRunBitIdenticalPCS repeats the bit-identity check with the
// full PCS control loop in play — the wiring with the most mid-run moving
// parts (training, scheduler ticks, migrations).
func TestSampledRunBitIdenticalPCS(t *testing.T) {
	opts := equivOpts(PCS, "", 17)
	direct, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	if err := s.SampleEvery(0.5, func(Snapshot) { samples++ }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, s.Finish()) {
		t.Error("sampled PCS run diverged from unsampled")
	}
	if samples == 0 {
		t.Fatal("sampler never fired")
	}
}

// TestSampleEveryThroughStep: samples fire when the clock crosses sample
// times via single Steps too, and stepping + sampling still matches the
// plain run.
func TestSampleEveryThroughStep(t *testing.T) {
	opts := equivOpts(Basic, "", 19)
	direct, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	samples := 0
	if err := s.SampleEvery(s.Horizon()/50, func(Snapshot) { samples++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && s.Step(); i++ {
	}
	stepSamples := samples
	if stepSamples == 0 {
		t.Fatal("no samples fired under Step")
	}
	if !reflect.DeepEqual(direct, s.Finish()) {
		t.Error("stepped+sampled run diverged from plain run")
	}
	if samples <= stepSamples {
		t.Fatal("Finish took no further samples")
	}
}

func TestSampleEveryValidation(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 33))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SampleEvery(0, func(Snapshot) {}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := s.SampleEvery(1e-18, func(Snapshot) {}); err == nil {
		t.Fatal("sub-ulp interval accepted (would spin forever near the horizon)")
	}
	if err := s.SampleEvery(1, nil); err == nil {
		t.Fatal("nil callback accepted")
	}
	if err := s.SampleEvery(1, func(Snapshot) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.SampleEvery(1, func(Snapshot) {}); err == nil {
		t.Fatal("second sampler accepted")
	}
}
