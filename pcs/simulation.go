package pcs

import (
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Simulation is one fully wired simulation world that the caller drives:
// cluster, batch interference, service, monitor and (for PCS) the
// scheduling controller, assembled by NewSimulation but not yet run.
// Callers advance it with RunTo or Step, observe it with Snapshot at any
// point, and close it with Finish. Driving a Simulation step by step and
// calling Run produce bit-identical Results for the same Options: the
// engine's event order does not depend on where the run is sliced.
type Simulation struct {
	opts Options // fully resolved (defaults + scenario applied)
	sc   scenario.Scenario

	engine  *sim.Engine
	cluster *cluster.Cluster
	gen     *workload.Generator
	svc     *service.Service
	mon     *monitor.Monitor
	ctrl    *scheduler.Controller // nil unless Technique == PCS

	horizon  float64
	finished bool
	result   Result
}

// NewSimulation resolves opts against its scenario, builds the whole world
// (topology placement, batch generator, monitor, and — for PCS — profiling,
// model training and the controller), and schedules the initial events:
// batch-job arrivals, monitor samples, scheduling intervals and the request
// stream. No virtual time passes until the caller advances the clock.
func NewSimulation(opts Options) (*Simulation, error) {
	o := opts.withDefaults()
	sc, err := scenario.Get(o.Scenario)
	if err != nil {
		return nil, err
	}
	o = o.applyScenario(sc)
	root := xrand.New(o.Seed ^ 0x5ca1ab1e)

	engine := sim.NewEngine()
	cl := cluster.New(o.Nodes, cluster.DefaultCapacity())

	gen := workload.NewGenerator(engine, cl, root.Fork(), workload.GeneratorConfig{
		TargetConcurrency: o.BatchConcurrency,
		MinInputMB:        o.MinInputMB,
		MaxInputMB:        o.MaxInputMB,
		TwoPhase:          o.TwoPhaseJobs > 0,
	})

	policy, err := policyFor(o)
	if err != nil {
		return nil, err
	}

	duration := float64(o.Requests) / o.ArrivalRate
	topo := sc.Topology(o.SearchComponents)
	svc, err := service.New(engine, cl, root.Fork(), policy, service.Config{
		Topology: topo,
		Warmup:   duration * o.WarmupFraction,
	})
	if err != nil {
		return nil, err
	}

	mon := monitor.New(engine, cl, root.Fork(), monitor.Config{
		NoiseSigma: o.MonitorNoiseSigma,
	})
	svc.OnArrival = mon.RecordArrival

	var ctrl *scheduler.Controller
	if o.Technique == PCS {
		queue, err := queueModelFor(o.QueueModel)
		if err != nil {
			return nil, err
		}
		// Training backgrounds mirror the paper's profiling: single
		// co-runners swept across kinds and input sizes (strongly
		// informative per-resource samples), plus random multi-job mixes
		// for coverage of co-location.
		backgrounds := workload.KindSizeGrid(workload.JobKinds(),
			workload.LinearSizes(12, o.MinInputMB, o.MaxInputMB))
		backgrounds = append(backgrounds,
			workload.TrainingMixes(root.Fork(), o.TrainingMixes, 3, o.MinInputMB, o.MaxInputMB)...)
		models, err := profiling.TrainStageModels(topo, svc.Law(), backgrounds, profiling.Config{
			Probes:            o.ProfilingProbes,
			MonitorNoiseSigma: o.MonitorNoiseSigma,
			Degree:            o.RegressionDegree,
		}, root.Fork())
		if err != nil {
			return nil, err
		}
		ctrl = scheduler.NewController(svc, mon, models, root.Fork(), scheduler.ControllerConfig{
			Interval: o.SchedulingInterval,
			Scheduler: scheduler.Config{
				Epsilon:       o.EpsilonSeconds,
				MaxMigrations: o.MaxMigrationsPerInterval,
			},
			Queue:          queue,
			FallbackLambda: o.ArrivalRate,
		})
	}

	// Start the world: batch interference, monitoring, scheduling,
	// arrivals. These only schedule events; execution belongs to the
	// caller.
	gen.Start()
	mon.Start()
	if ctrl != nil {
		ctrl.Start()
	}
	svc.StartArrivals(o.ArrivalRate, o.Requests)

	return &Simulation{
		opts:    o,
		sc:      sc,
		engine:  engine,
		cluster: cl,
		gen:     gen,
		svc:     svc,
		mon:     mon,
		ctrl:    ctrl,
		horizon: duration + o.DrainSeconds,
	}, nil
}

// Options returns the fully resolved options the simulation runs with:
// defaults filled and scenario defaults applied.
func (s *Simulation) Options() Options { return s.opts }

// Scenario returns the name of the scenario the simulation deploys.
func (s *Simulation) Scenario() string { return s.sc.Name }

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.engine.Now() }

// Horizon returns the virtual time at which Finish stops the run: the
// arrival window plus the drain period.
func (s *Simulation) Horizon() float64 { return s.horizon }

// Service exposes the simulated service for callers embedding PCS-style
// scheduling in their own setups (the examples drive it directly).
func (s *Simulation) Service() *service.Service { return s.svc }

// NextEventTime reports the virtual time of the next pending event, false
// if the world has none left.
func (s *Simulation) NextEventTime() (float64, bool) { return s.engine.PeekNextTime() }

// Step executes exactly one pending event, advancing the clock to it. It
// returns false — executing nothing — once the next event lies beyond the
// horizon or no events remain. A loop over Step executes exactly the
// events RunTo(Horizon()) would; the clock then rests at the last executed
// event rather than the horizon until Finish (or RunTo) rounds it up.
func (s *Simulation) Step() bool {
	next, ok := s.engine.PeekNextTime()
	if !ok || next > s.horizon {
		return false
	}
	return s.engine.Step()
}

// RunTo advances the simulation to virtual time t (clamped to the horizon
// — past it the world has no more scheduled work; shrink or grow runs via
// Options instead). It returns the clock after the advance. RunTo is
// idempotent for t <= Now().
func (s *Simulation) RunTo(t float64) float64 {
	if t > s.horizon {
		t = s.horizon
	}
	if t <= s.engine.Now() {
		return s.engine.Now()
	}
	return s.engine.Run(t)
}

// Snapshot is a mid-run observation of a simulation, cheap enough to take
// every few virtual seconds. Latency metrics cover post-warmup
// observations up to Now.
type Snapshot struct {
	// Now and Horizon locate the run: Progress == Now/Horizon.
	Now, Horizon float64
	// Arrivals and Completed count requests so far; InFlight is their
	// difference.
	Arrivals, Completed, InFlight int
	// Migrations and SchedulingIntervals count PCS activity so far.
	Migrations, SchedulingIntervals int
	// BatchJobsStarted counts interference jobs so far.
	BatchJobsStarted int
	// PendingEvents and FiredEvents describe the engine queue.
	PendingEvents int
	FiredEvents   uint64
	// AvgOverallMs and P99ComponentMs are the paper's two metrics over
	// the post-warmup observations recorded so far.
	AvgOverallMs, P99ComponentMs float64
}

// Snapshot observes the running world without perturbing it.
func (s *Simulation) Snapshot() Snapshot {
	rep := s.svc.Collector().Report()
	snap := Snapshot{
		Now:              s.engine.Now(),
		Horizon:          s.horizon,
		Arrivals:         s.svc.Arrivals(),
		Completed:        s.svc.Completed(),
		InFlight:         s.svc.Arrivals() - s.svc.Completed(),
		Migrations:       s.svc.Migrations(),
		BatchJobsStarted: s.gen.Started(),
		PendingEvents:    s.engine.Pending(),
		FiredEvents:      s.engine.Fired(),
		AvgOverallMs:     rep.AvgOverallMs,
		P99ComponentMs:   rep.P99ComponentMs,
	}
	if s.ctrl != nil {
		snap.SchedulingIntervals = s.ctrl.Intervals
	}
	return snap
}

// Finish runs the remaining events up to the horizon and reports the
// run's Result. Finishing an already finished simulation returns the same
// Result again.
func (s *Simulation) Finish() Result {
	if s.finished {
		return s.result
	}
	s.engine.Run(s.horizon)

	rep := s.svc.Collector().Report()
	res := Result{
		Technique:        s.opts.Technique.String(),
		Scenario:         s.sc.Name,
		ArrivalRate:      s.opts.ArrivalRate,
		AvgOverallMs:     rep.AvgOverallMs,
		P99ComponentMs:   rep.P99ComponentMs,
		OverallP50Ms:     rep.Overall.P50,
		OverallP99Ms:     rep.Overall.P99,
		OverallMaxMs:     rep.Overall.Max,
		ComponentMeanMs:  rep.Component.Mean,
		ComponentP50Ms:   rep.Component.P50,
		StageMeanMs:      rep.StageMeanMs,
		Arrivals:         s.svc.Arrivals(),
		Completed:        s.svc.Completed(),
		Migrations:       s.svc.Migrations(),
		BatchJobsStarted: s.gen.Started(),
		VirtualSeconds:   s.engine.Now(),
	}
	if s.ctrl != nil {
		res.SchedulingIntervals = s.ctrl.Intervals
	}
	s.finished = true
	s.result = res
	return res
}
