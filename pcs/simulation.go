package pcs

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cluster"
	"repro/internal/lane"
	"repro/internal/monitor"
	"repro/internal/policy"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Simulation is one fully wired simulation world that the caller drives:
// cluster, batch interference, service, monitor and (for PCS) the
// scheduling controller, assembled by NewSimulation but not yet run.
// Callers advance it with RunTo or Step, observe it with Snapshot at any
// point, and close it with Finish. Driving a Simulation step by step and
// calling Run produce bit-identical Results for the same Options: the
// engine's event order does not depend on where the run is sliced.
type Simulation struct {
	opts Options // fully resolved (defaults + scenario applied)
	sc   scenario.Scenario

	engine  *sim.Engine
	cluster *cluster.Cluster
	gen     *workload.Generator
	svc     *service.Service
	mon     *monitor.Monitor
	ctrl    *scheduler.Controller // nil unless Technique == PCS
	pool    *shard.Pool           // nil unless max(Shards, Lanes) > 1
	plane   *lane.Plane           // nil unless Options.Lanes > 0

	// pol, when non-nil, is the run's closed-loop policy, evaluated by an
	// engine ticker at PolicyInterval cadence; policyLog records the
	// actions it applied.
	pol       policy.Policy
	policyLog []PolicyAction

	// trafficName is the arrival source's name when the run was built
	// from a TrafficSpec, "" on the scalar compat path (Result.Traffic
	// must stay absent there to keep scalar reports byte-identical).
	trafficName string

	horizon  float64
	finished bool
	result   Result

	// Sampling state (SampleEvery). Sampling slices RunTo at the sample
	// times instead of scheduling engine events, so an observed run
	// executes exactly the event sequence an unobserved one does.
	sampleInterval float64
	nextSample     float64
	onSample       func(Snapshot)
}

// NewSimulation resolves opts against its scenario, builds the whole world
// (topology placement, batch generator, monitor, and — for PCS — profiling,
// model training and the controller), and schedules the initial events:
// batch-job arrivals, monitor samples, scheduling intervals and the request
// stream. No virtual time passes until the caller advances the clock.
func NewSimulation(opts Options) (*Simulation, error) {
	o := opts.withDefaults()
	sc, err := resolveScenario(o)
	if err != nil {
		return nil, err
	}
	o = o.applyScenario(sc)
	root := xrand.New(o.Seed ^ 0x5ca1ab1e)

	// The shard pool parallelises the run's window-barrier work — and, in
	// laned mode, the data plane's windows. Lanes > 1 therefore implies a
	// pool even when Shards is 1: sharding the control plane is
	// result-neutral (invariant #7), and the control plane dominates
	// large-cluster runtime, so a laned run that left it sequential would
	// throw away most of its speedup. A nil pool (both ≤ 1) is the
	// sequential path; every consumer treats it so, which keeps
	// single-shard runs on the exact pre-sharding code.
	var pool *shard.Pool
	if workers := max(o.Shards, o.Lanes); workers > 1 {
		pool = shard.NewPool(workers)
	}
	fail := func(err error) (*Simulation, error) {
		pool.Close()
		return nil, err
	}

	engine := sim.NewEngine()
	cl := cluster.New(o.Nodes, cluster.DefaultCapacity())

	gen := workload.NewGenerator(engine, cl, root.Fork(), workload.GeneratorConfig{
		TargetConcurrency: o.BatchConcurrency,
		MinInputMB:        o.MinInputMB,
		MaxInputMB:        o.MaxInputMB,
		TwoPhase:          o.TwoPhaseJobs > 0,
	})

	policy, err := policyFor(o)
	if err != nil {
		return fail(err)
	}

	duration := float64(o.Requests) / o.ArrivalRate
	topo := sc.Topology(o.SearchComponents)

	// The laned data plane needs its conservative lookahead to hold for
	// every cross-class message; the only configurable one is the
	// cancellation delay, which is relayed through the root class and so
	// consumes two transits.
	var plane *lane.Plane
	if o.Lanes > 0 {
		if o.CancelDelaySeconds > 0 && o.CancelDelaySeconds < 2*service.LaneTransitDelay {
			return fail(fmt.Errorf(
				"pcs: laned execution needs CancelDelaySeconds >= %g (two network transits) or cancellation disabled, got %g",
				2*service.LaneTransitDelay, o.CancelDelaySeconds))
		}
		plane, err = lane.New(o.Lanes, service.LaneTransitDelay,
			service.MaxLaneClasses(topo, o.Nodes), pool)
		if err != nil {
			return fail(err)
		}
	}

	// A DAG scenario ships a graph.Spec; compile it into the runtime plan
	// the service executes instead of the linear stage walk.
	var gplan *service.GraphPlan
	if sc.Graph != nil {
		gplan, err = sc.Graph.Plan()
		if err != nil {
			return fail(fmt.Errorf("pcs: scenario %q: %w", sc.Name, err))
		}
	}

	svc, err := service.New(engine, cl, root.Fork(), policy, service.Config{
		Topology: topo,
		Warmup:   duration * o.WarmupFraction,
		Pool:     pool,
		Lanes:    plane,
		Graph:    gplan,
	})
	if err != nil {
		return fail(err)
	}

	mon := monitor.New(engine, cl, root.Fork(), monitor.Config{
		NoiseSigma: o.MonitorNoiseSigma,
		Pool:       pool,
	})
	svc.OnArrival = mon.RecordArrival

	var ctrl *scheduler.Controller
	if o.Technique == PCS {
		queue, err := queueModelFor(o.QueueModel)
		if err != nil {
			return fail(err)
		}
		// Training backgrounds mirror the paper's profiling: single
		// co-runners swept across kinds and input sizes (strongly
		// informative per-resource samples), plus random multi-job mixes
		// for coverage of co-location.
		backgrounds := workload.KindSizeGrid(workload.JobKinds(),
			workload.LinearSizes(12, o.MinInputMB, o.MaxInputMB))
		backgrounds = append(backgrounds,
			workload.TrainingMixes(root.Fork(), o.TrainingMixes, 3, o.MinInputMB, o.MaxInputMB)...)
		models, err := profiling.TrainStageModels(topo, svc.Law(), backgrounds, profiling.Config{
			Probes:            o.ProfilingProbes,
			MonitorNoiseSigma: o.MonitorNoiseSigma,
			Degree:            o.RegressionDegree,
			Pool:              pool,
		}, root.Fork())
		if err != nil {
			return fail(err)
		}
		ctrl = scheduler.NewController(svc, mon, models, root.Fork(), scheduler.ControllerConfig{
			Interval: o.SchedulingInterval,
			Scheduler: scheduler.Config{
				Epsilon:       o.EpsilonSeconds,
				MaxMigrations: o.MaxMigrationsPerInterval,
			},
			Queue:          queue,
			FallbackLambda: o.ArrivalRate,
			Pool:           pool,
		})
	}

	// Start the world: batch interference, monitoring, scheduling,
	// arrivals. These only schedule events; execution belongs to the
	// caller.
	gen.Start()
	mon.Start()
	if ctrl != nil {
		ctrl.Start()
	}
	// The arrival path: an Options.Traffic spec wins, then the scenario's
	// scripted traffic, then the scalar compat shim. The spec's source is
	// built from the same service-stream fork StartArrivals takes, so an
	// explicit {Kind: "poisson"} spec reproduces the scalar path's draws
	// exactly.
	trafficName := ""
	if tspec := resolveTraffic(o, sc); tspec == nil {
		svc.StartArrivals(o.ArrivalRate, o.Requests)
	} else {
		src, err := tspec.New(svc.RNG().Fork(), o.ArrivalRate)
		if err != nil {
			return fail(fmt.Errorf("pcs: %w", err))
		}
		svc.StartTraffic(src, o.Requests)
		trafficName = src.Name()
	}

	s := &Simulation{
		opts:        o,
		sc:          sc,
		engine:      engine,
		cluster:     cl,
		gen:         gen,
		svc:         svc,
		mon:         mon,
		ctrl:        ctrl,
		pool:        pool,
		plane:       plane,
		horizon:     duration + o.DrainSeconds,
		trafficName: trafficName,
	}
	if err := s.applySteering(duration); err != nil {
		return fail(err)
	}
	pol, err := resolvePolicy(o.Policy, sc)
	if err != nil {
		return fail(err)
	}
	s.pol = pol
	s.startPolicy()
	return s, nil
}

// resolveScenario picks the run's deployment: a custom Options.Graph
// becomes an unregistered DAG scenario (Scenario must then be empty — a
// run deploys one service); otherwise the named scenario is looked up in
// the registry.
func resolveScenario(o Options) (scenario.Scenario, error) {
	if o.Graph == nil {
		return scenario.Get(o.Scenario)
	}
	if o.Scenario != "" {
		return scenario.Scenario{}, fmt.Errorf(
			"pcs: a run deploys one service: set Scenario or Graph, not both (got scenario %q and graph %q)",
			o.Scenario, o.Graph.Name)
	}
	return scenario.FromGraph(o.Graph)
}

// resolveTraffic picks the run's traffic spec: Options.Traffic wins, then
// the scenario's scripted traffic; nil selects the scalar compat path.
func resolveTraffic(o Options, sc scenario.Scenario) *traffic.Spec {
	if o.Traffic != nil {
		spec := o.Traffic.toSpec()
		return &spec
	}
	return sc.Traffic
}

// applySteering translates the scenario's steering script (if any) into
// Controller actions over the arrival window. The script is pure data and
// the actions are scheduled before any virtual time passes, so steered
// scenarios keep the same determinism guarantee as unsteered ones.
func (s *Simulation) applySteering(window float64) error {
	st := s.sc.Steering
	if st == nil {
		return nil
	}
	ctrl := s.Controller()
	for _, f := range st.Faults {
		if err := ctrl.FailNodeAt(f.FailAt*window, f.Node); err != nil {
			return fmt.Errorf("pcs: scenario %q steering: %w", s.sc.Name, err)
		}
		if f.RestoreAt > f.FailAt {
			if err := ctrl.RestoreNodeAt(f.RestoreAt*window, f.Node); err != nil {
				return fmt.Errorf("pcs: scenario %q steering: %w", s.sc.Name, err)
			}
		}
	}
	for _, rs := range st.RateSteps {
		if err := ctrl.SetArrivalRateAt(rs.At*window, rs.Factor*s.opts.ArrivalRate); err != nil {
			return fmt.Errorf("pcs: scenario %q steering: %w", s.sc.Name, err)
		}
	}
	if d := st.Diurnal; d != nil {
		if err := ctrl.ModulateArrivalRate(window/d.Cycles, d.Amplitude, d.StepsPerCycle); err != nil {
			return fmt.Errorf("pcs: scenario %q steering: %w", s.sc.Name, err)
		}
	}
	return nil
}

// Options returns the fully resolved options the simulation runs with:
// defaults filled and scenario defaults applied.
func (s *Simulation) Options() Options { return s.opts }

// Scenario returns the name of the scenario the simulation deploys.
func (s *Simulation) Scenario() string { return s.sc.Name }

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.engine.Now() }

// Horizon returns the virtual time at which Finish stops the run: the
// arrival window plus the drain period.
func (s *Simulation) Horizon() float64 { return s.horizon }

// Service exposes the simulated service for callers embedding PCS-style
// scheduling in their own setups (the examples drive it directly).
func (s *Simulation) Service() *service.Service { return s.svc }

// NextEventTime reports the virtual time of the next pending event —
// control-plane or, in laned mode, data-plane — false if the world has
// none left.
func (s *Simulation) NextEventTime() (float64, bool) {
	at, ok := s.engine.PeekNextTime()
	if s.plane != nil {
		if pat, pok := s.plane.NextEventTime(); pok && (!ok || pat < at) {
			at, ok = pat, true
		}
	}
	return at, ok
}

// advance moves the whole world — engine and, in laned mode, the data
// plane — to virtual time t.
func (s *Simulation) advance(t float64) float64 {
	if s.plane != nil {
		s.plane.Advance(s.engine, t)
		return s.engine.Now()
	}
	return s.engine.Run(t)
}

// SampleEvery installs a sampling callback: from now on, fn observes a
// Snapshot every interval seconds of virtual time as the clock advances
// through RunTo, Step or Finish. Sampling is observationally free — it
// schedules no events, draws no randomness and mutates nothing, so a
// sampled run produces a Result bit-identical to an unsampled one (pinned
// by tests). Under RunTo/Finish each sample is taken with the clock exactly
// at its sample time; under Step, samples fire after the event that carries
// the clock across them. One sampler per simulation; installing a second is
// an error.
func (s *Simulation) SampleEvery(interval float64, fn func(Snapshot)) error {
	if interval <= 0 {
		return fmt.Errorf("pcs: sample interval must be positive, got %g", interval)
	}
	// An interval below the clock's resolution near the horizon would stop
	// advancing nextSample once the run nears its end and spin forever.
	if s.horizon+interval == s.horizon {
		return fmt.Errorf("pcs: sample interval %g is below the clock resolution near the horizon %g",
			interval, s.horizon)
	}
	if fn == nil {
		return fmt.Errorf("pcs: nil sample callback")
	}
	if s.onSample != nil {
		return fmt.Errorf("pcs: sampler already installed")
	}
	s.sampleInterval = interval
	s.nextSample = s.engine.Now() + interval
	s.onSample = fn
	return nil
}

// takeDueSamples fires the callback for every sample time the clock has
// reached. Progress is forced even if a rounding tie leaves the addition
// stationary, so the loop can never spin.
func (s *Simulation) takeDueSamples() {
	for s.nextSample <= s.engine.Now() {
		s.onSample(s.Snapshot())
		next := s.nextSample + s.sampleInterval
		if next <= s.nextSample {
			next = math.Nextafter(s.nextSample, math.Inf(1))
		}
		s.nextSample = next
	}
}

// Step executes exactly one pending event, advancing the clock to it. In
// laned mode the granularity is one event *time* instead: every
// data-plane and control-plane event at the next pending instant executes
// together (the laned clock is per-lane inside a window, so "one event"
// is not an observable unit there). Step returns false — executing
// nothing — once the next event lies beyond the horizon or no events
// remain. A loop over Step executes exactly the events RunTo(Horizon())
// would; the clock then rests at the last executed event rather than the
// horizon until Finish (or RunTo) rounds it up.
func (s *Simulation) Step() bool {
	if s.plane != nil {
		next, ok := s.NextEventTime()
		if !ok || next > s.horizon {
			return false
		}
		s.advance(next)
		if s.onSample != nil {
			s.takeDueSamples()
		}
		return true
	}
	next, ok := s.engine.PeekNextTime()
	if !ok || next > s.horizon {
		return false
	}
	stepped := s.engine.Step()
	if stepped && s.onSample != nil {
		s.takeDueSamples()
	}
	return stepped
}

// RunTo advances the simulation to virtual time t (clamped to the horizon
// — past it the world has no more scheduled work; shrink or grow runs via
// Options instead). It returns the clock after the advance. RunTo is
// idempotent for t <= Now(). With a sampler installed the advance is
// internally sliced at the sample times; the executed event sequence is
// identical either way.
func (s *Simulation) RunTo(t float64) float64 {
	if t > s.horizon {
		t = s.horizon
	}
	if t <= s.engine.Now() {
		return s.engine.Now()
	}
	if s.onSample == nil {
		return s.advance(t)
	}
	for s.engine.Now() < t {
		stop := t
		if s.nextSample < stop {
			stop = s.nextSample
		}
		s.advance(stop)
		s.takeDueSamples()
	}
	return s.engine.Now()
}

// Snapshot is a mid-run observation of a simulation, cheap enough to take
// every few virtual seconds. Latency metrics cover post-warmup
// observations up to Now.
type Snapshot struct {
	// Now and Horizon locate the run: Progress == Now/Horizon.
	Now, Horizon float64
	// Arrivals and Completed count requests so far; InFlight is the
	// requests still undecided: Arrivals − Completed − Failed − TimedOut.
	Arrivals, Completed, InFlight int
	// Failed and TimedOut count requests terminated unsuccessfully so far
	// — non-zero only for service-DAG scenarios (omitted from JSON when
	// zero, so pre-DAG snapshot encodings are unchanged).
	Failed   int `json:",omitempty"`
	TimedOut int `json:",omitempty"`
	// Migrations and SchedulingIntervals count PCS activity so far.
	Migrations, SchedulingIntervals int
	// BatchJobsStarted counts interference jobs so far.
	BatchJobsStarted int
	// PendingEvents and FiredEvents describe the world's event queues: the
	// engine's plus, in laned mode, the data plane's lane heaps — both
	// counts are lane-count-independent because the executed event set is.
	PendingEvents int
	FiredEvents   uint64
	// DataPlane names the request path's execution mode: "laned" for the
	// conservative parallel data plane, empty for the sequential engine
	// loop (omitted from JSON then, so sequential snapshot encodings stay
	// exactly as before — see Result.DataPlane).
	DataPlane string `json:",omitempty"`
	// AvgOverallMs and P99ComponentMs are the paper's two metrics over
	// the post-warmup observations recorded so far.
	AvgOverallMs, P99ComponentMs float64
	// OfferedRate is the intensity the workload currently offers in
	// requests/second — what rate steps and diurnal steering move.
	// AdmittedRate is the intensity the traffic source actually runs at:
	// offered × AdmissionFactor. The two gauges are named explicitly
	// because they genuinely differ whenever an admission policy
	// throttles.
	OfferedRate, AdmittedRate float64
	// AdmissionDrops counts arrivals denied by per-tenant token buckets
	// so far (0 for unthrottled traffic). This is the traffic layer's
	// hard admission control; AdmissionFactor below is the closed-loop
	// soft throttle — they compose.
	AdmissionDrops int
	// QueuedExecutions counts executions waiting in instance queues across
	// the deployment; BusyInstances counts occupied servers. Together they
	// are the instantaneous service-pressure gauges of the live dashboard.
	QueuedExecutions, BusyInstances int
	// MeanCoreUtilization and MaxCoreUtilization summarise node core
	// saturation in [0, 1] across the cluster; FailedNodes counts nodes
	// currently failed by steering.
	MeanCoreUtilization, MaxCoreUtilization float64
	FailedNodes                             int
	// ActiveReplicas is the per-component replica count dispatch currently
	// spreads over, WorkFactor the per-request work multiplier, and
	// AdmissionFactor the admitted fraction of the offered arrival rate —
	// the closed-loop actuator positions. ActiveReplicas starts at the
	// technique's deployed count (1 for Basic/PCS, k for RED-k, 2 for
	// reissue); the factors are 1 unless a policy or steering moves them.
	// AdmittedRate above is OfferedRate × AdmissionFactor.
	ActiveReplicas  int
	WorkFactor      float64
	AdmissionFactor float64
	// PolicyActions counts the actuations the run's policy has applied so
	// far (0 when no policy is in play).
	PolicyActions int
}

// Snapshot observes the running world without perturbing it.
func (s *Simulation) Snapshot() Snapshot {
	rep := s.svc.Collector().Report()
	snap := Snapshot{
		Now:              s.engine.Now(),
		Horizon:          s.horizon,
		Arrivals:         s.svc.Arrivals(),
		Completed:        s.svc.Completed(),
		InFlight:         s.svc.Arrivals() - s.svc.Completed() - s.svc.Failed() - s.svc.TimedOut(),
		Failed:           s.svc.Failed(),
		TimedOut:         s.svc.TimedOut(),
		Migrations:       s.svc.Migrations(),
		BatchJobsStarted: s.gen.Started(),
		PendingEvents:    s.engine.Pending(),
		FiredEvents:      s.engine.Fired(),
		AvgOverallMs:     rep.AvgOverallMs,
		P99ComponentMs:   rep.P99ComponentMs,
		OfferedRate:      s.svc.OfferedArrivalRate(),
		AdmittedRate:     s.svc.ArrivalRate(),
		AdmissionDrops:   s.svc.AdmissionDrops(),
		QueuedExecutions: s.svc.QueuedExecutions(),
		BusyInstances:    s.svc.BusyInstances(),
		FailedNodes:      s.cluster.FailedNodes(),
		ActiveReplicas:   s.svc.ActiveReplicas(),
		WorkFactor:       s.svc.WorkFactor(),
		AdmissionFactor:  s.svc.AdmissionFactor(),
		PolicyActions:    len(s.policyLog),
	}
	if s.plane != nil {
		snap.DataPlane = "laned"
		snap.PendingEvents += s.plane.Pending()
		snap.FiredEvents += s.plane.Fired()
	}
	var sum float64
	for _, n := range s.cluster.Nodes() {
		u := n.Utilization(cluster.Core)
		sum += u
		if u > snap.MaxCoreUtilization {
			snap.MaxCoreUtilization = u
		}
	}
	snap.MeanCoreUtilization = sum / float64(s.cluster.NumNodes())
	if s.ctrl != nil {
		snap.SchedulingIntervals = s.ctrl.Intervals
	}
	return snap
}

// Finish runs the remaining events up to the horizon (through the sampler,
// if one is installed) and reports the run's Result. Finishing an already
// finished simulation returns the same Result again.
func (s *Simulation) Finish() Result {
	if s.finished {
		return s.result
	}
	s.RunTo(s.horizon)

	rep := s.svc.Collector().Report()
	res := Result{
		Technique:        s.opts.Technique.String(),
		Scenario:         s.sc.Name,
		ArrivalRate:      s.opts.ArrivalRate,
		Policy:           s.PolicyName(),
		PolicyActions:    len(s.policyLog),
		AvgOverallMs:     rep.AvgOverallMs,
		P99ComponentMs:   rep.P99ComponentMs,
		OverallP50Ms:     rep.Overall.P50,
		OverallP99Ms:     rep.Overall.P99,
		OverallMaxMs:     rep.Overall.Max,
		ComponentMeanMs:  rep.Component.Mean,
		ComponentP50Ms:   rep.Component.P50,
		StageMeanMs:      rep.StageMeanMs,
		Arrivals:         s.svc.Arrivals(),
		Completed:        s.svc.Completed(),
		Migrations:       s.svc.Migrations(),
		BatchJobsStarted: s.gen.Started(),
		VirtualSeconds:   s.engine.Now(),
		Failed:           s.svc.Failed(),
		TimedOut:         s.svc.TimedOut(),
		Traffic:          s.trafficName,
		AdmissionDrops:   s.svc.AdmissionDrops(),
		Tenants:          s.tenantResults(),
	}
	if s.plane != nil {
		res.DataPlane = "laned"
	}
	if s.svc.GraphPlanned() {
		gs := s.svc.GraphStats()
		res.Graph = &GraphCounters{
			Retries:          gs.Retries,
			BreakerTrips:     gs.BreakerTrips,
			BreakerFastFails: gs.BreakerFastFails,
			CacheHits:        gs.CacheHits,
			CacheMisses:      gs.CacheMisses,
			StorageWrites:    gs.StorageWrites,
			AsyncCalls:       gs.AsyncCalls,
			AsyncFailures:    gs.AsyncFailures,
		}
	}
	if s.ctrl != nil {
		res.SchedulingIntervals = s.ctrl.Intervals
	}
	s.finished = true
	s.result = res
	// The run is over; release the shard workers and the traffic source's
	// file handle, if it holds one. Late observers — Snapshot, a
	// re-entrant Finish — only read, and a closed pool would degrade any
	// further region to inline execution anyway.
	s.pool.Close()
	s.closeTraffic()
	return res
}

// closeTraffic releases resources held by the traffic source (a trace
// replay's file handle); sources without resources ignore it.
func (s *Simulation) closeTraffic() {
	if c, ok := s.svc.Traffic().(io.Closer); ok {
		c.Close()
	}
}

// TrafficErr reports the error that stopped the traffic source early — a
// trace file that broke mid-replay — or nil for sources that cannot fail
// or have not. A run whose Arrivals fall short of Requests should check
// it to distinguish "trace ended" from "trace broke".
func (s *Simulation) TrafficErr() error {
	if e, ok := s.svc.Traffic().(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Close releases the simulation's shard workers and the traffic source's
// resources without running it to the horizon — for callers abandoning a
// run mid-flight. Finish closes them itself; closing twice is a no-op,
// and a closed simulation can still be advanced (regions just run inline,
// with identical results — though a closed trace replay stops supplying
// arrivals).
func (s *Simulation) Close() {
	s.pool.Close()
	s.closeTraffic()
}
