package pcs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/scenario"
)

// GraphSpec is the declarative service-DAG authoring surface, re-exported
// so a custom graph can ride inside a RunSpec (inline under "graph", or by
// reference via "graphFile"). It is exactly internal/graph.Spec: pure data
// with Validate and a pinned JSON parse edge (FuzzSpecValidate), compiled
// into the runtime plan on every run. See docs/scenarios.md for the
// authoring guide.
type GraphSpec = graph.Spec

// RunSpec is the canonical, serializable description of one run: every
// knob a CLI flag, an experiment config or an HTTP client can turn,
// as pure data with a stable JSON encoding. It is the single decode path
// into Options — pcs-sim, pcs-sweep, pcs-live, the experiments drivers and
// the pcs-serve daemon all assemble their Options through it, so "a run"
// means the same thing everywhere: the same RunSpec JSON drives
// `pcs-sim -spec-file`, `POST /v1/runs` and an experiments cell to
// identical reports.
//
// Zero values defer to the same defaults Options documents (and, for the
// deployment fields, to the selected scenario), so the empty spec is the
// evaluation default run. Fields follow Options one for one except:
//
//   - Technique is a name ("PCS", "red-3", ...) parsed by ParseTechnique;
//     empty selects Basic.
//   - Rate is Options.ArrivalRate under its CLI name.
//   - Graph/GraphFile deploy a custom service DAG (below).
//   - Replications and Workers describe the replication set a spec-level
//     execution (Report, the daemon) runs, which single-run Options do not
//     carry.
type RunSpec struct {
	// Technique names the execution technique (ParseTechnique grammar;
	// empty = Basic).
	Technique string `json:"technique,omitempty"`
	// Scenario names the registered deployment (empty = the default
	// scenario). Mutually exclusive with Graph/GraphFile.
	Scenario string `json:"scenario,omitempty"`
	// Policy names the closed-loop policy ("" defers to the scenario's
	// script, "none" disables it).
	Policy string `json:"policy,omitempty"`
	// PolicyInterval is the seconds between policy evaluations (0 = 1).
	PolicyInterval float64 `json:"policyInterval,omitempty"`
	// Seed drives all randomness; runs are deterministic given a seed.
	Seed int64 `json:"seed,omitempty"`
	// Rate is the arrival rate λ in requests/second (0 = 100).
	Rate float64 `json:"rate,omitempty"`
	// Requests is the number of arrivals to generate (0 = 20000).
	Requests int `json:"requests,omitempty"`
	// Nodes is the cluster size (0 = scenario default).
	Nodes int `json:"nodes,omitempty"`
	// SearchComponents is the dominant-stage fan-out (0 = scenario
	// default).
	SearchComponents int `json:"searchComponents,omitempty"`
	// Traffic, when non-nil, describes the arrival process instead of the
	// scalar Poisson λ (see TrafficSpec).
	Traffic *TrafficSpec `json:"traffic,omitempty"`
	// Graph, when non-nil, deploys this inline service DAG instead of a
	// registered scenario; GraphFile does the same by loading a JSON
	// GraphSpec from a file at Options() time. Both pass graph.Validate
	// before the world is built, and at most one of Scenario, Graph and
	// GraphFile may be set.
	Graph     *GraphSpec `json:"graph,omitempty"`
	GraphFile string     `json:"graphFile,omitempty"`
	// Shards and Lanes select the parallel control and data planes
	// (bit-identical results at any value; see Options).
	Shards int `json:"shards,omitempty"`
	Lanes  int `json:"lanes,omitempty"`
	// Replications is the number of independent replications a spec-level
	// execution aggregates (0 = 1); Workers bounds its worker pool (0 =
	// all cores). Neither ever affects the computed values.
	Replications int `json:"replications,omitempty"`
	Workers      int `json:"workers,omitempty"`

	// WarmupFraction, DrainSeconds and CancelDelaySeconds follow the
	// Options conventions (0 = default, -1 = off).
	WarmupFraction     float64 `json:"warmupFraction,omitempty"`
	DrainSeconds       float64 `json:"drainSeconds,omitempty"`
	CancelDelaySeconds float64 `json:"cancelDelaySeconds,omitempty"`

	// BatchConcurrency, MinInputMB, MaxInputMB and TwoPhaseJobs override
	// the scenario's batch-interference defaults (0 keeps them).
	BatchConcurrency float64 `json:"batchConcurrency,omitempty"`
	MinInputMB       float64 `json:"minInputMB,omitempty"`
	MaxInputMB       float64 `json:"maxInputMB,omitempty"`
	TwoPhaseJobs     int     `json:"twoPhaseJobs,omitempty"`

	// SchedulingInterval, EpsilonSeconds, QueueModel,
	// MaxMigrationsPerInterval, RegressionDegree, TrainingMixes and
	// ProfilingProbes tune PCS itself; MonitorNoiseSigma the monitor.
	// Zero keeps each knob's evaluation default.
	SchedulingInterval       float64 `json:"schedulingInterval,omitempty"`
	EpsilonSeconds           float64 `json:"epsilonSeconds,omitempty"`
	QueueModel               string  `json:"queueModel,omitempty"`
	MaxMigrationsPerInterval int     `json:"maxMigrationsPerInterval,omitempty"`
	RegressionDegree         int     `json:"regressionDegree,omitempty"`
	TrainingMixes            int     `json:"trainingMixes,omitempty"`
	ProfilingProbes          int     `json:"profilingProbes,omitempty"`
	MonitorNoiseSigma        float64 `json:"monitorNoiseSigma,omitempty"`
}

// ParseRunSpec decodes a RunSpec from JSON strictly: unknown fields are
// errors, so a typo'd knob fails loudly instead of silently running the
// default. It does not Validate — callers decide when (LoadRunSpec and
// Options do).
func ParseRunSpec(data []byte) (RunSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s RunSpec
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("pcs: parsing run spec: %w", err)
	}
	// A second document in the same payload is a concatenation mistake,
	// not extra configuration.
	if dec.More() {
		return RunSpec{}, fmt.Errorf("pcs: parsing run spec: trailing data after the spec object")
	}
	return s, nil
}

// LoadRunSpec reads and validates a RunSpec from a JSON file — the
// -spec-file path every CLI shares.
func LoadRunSpec(path string) (RunSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RunSpec{}, fmt.Errorf("pcs: reading run spec: %w", err)
	}
	s, err := ParseRunSpec(data)
	if err != nil {
		return RunSpec{}, fmt.Errorf("pcs: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return RunSpec{}, fmt.Errorf("pcs: %s: %w", path, err)
	}
	return s, nil
}

// Validate checks the spec's selections without touching the filesystem:
// the technique parses, the scenario and policy are registered, the
// deployment names at most one of Scenario/Graph/GraphFile, an inline
// graph passes graph validation, and the counts are non-negative. A valid
// spec can still fail Options() — a GraphFile that does not exist, a
// traffic spec the run layer rejects — because those checks belong to the
// moment the world is built.
func (s RunSpec) Validate() error {
	if s.Technique != "" {
		if _, err := ParseTechnique(s.Technique); err != nil {
			return err
		}
	}
	named := 0
	for _, set := range []bool{s.Scenario != "", s.Graph != nil, s.GraphFile != ""} {
		if set {
			named++
		}
	}
	if named > 1 {
		return fmt.Errorf("pcs: a run deploys one service: set at most one of scenario, graph and graphFile")
	}
	if s.Scenario != "" {
		if _, err := scenario.Get(s.Scenario); err != nil {
			return err
		}
	}
	if s.Graph != nil {
		if err := s.Graph.Validate(); err != nil {
			return fmt.Errorf("pcs: graph: %w", err)
		}
	}
	if s.Policy != "" {
		if _, _, err := policy.Get(s.Policy); err != nil {
			return fmt.Errorf("pcs: %w", err)
		}
	}
	for name, v := range map[string]int{
		"requests": s.Requests, "nodes": s.Nodes,
		"searchComponents": s.SearchComponents,
		"replications":     s.Replications, "workers": s.Workers,
	} {
		if v < 0 {
			return fmt.Errorf("pcs: run spec %s must be non-negative, got %d", name, v)
		}
	}
	if s.Rate < 0 {
		return fmt.Errorf("pcs: run spec rate must be non-negative, got %g", s.Rate)
	}
	return nil
}

// LoadGraphSpec reads a GraphSpec from a JSON file and validates it — the
// -graph-file path. The format is the graph.Spec encoding FuzzSpecValidate
// pins; field names match Go's (case-insensitively, so lowerCamel JSON
// decodes too).
func LoadGraphSpec(path string) (*GraphSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pcs: reading graph spec: %w", err)
	}
	var g GraphSpec
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("pcs: %s: parsing graph spec: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pcs: %s: %w", path, err)
	}
	return &g, nil
}

// Options resolves the spec into the Options a simulation runs with —
// the one decode path every entry point shares. It validates the spec,
// loads GraphFile (if named) through graph validation, and maps the
// fields; scenario defaults are applied later by NewSimulation exactly as
// for hand-built Options.
func (s RunSpec) Options() (Options, error) {
	if err := s.Validate(); err != nil {
		return Options{}, err
	}
	var tech Technique
	if s.Technique != "" {
		tech, _ = ParseTechnique(s.Technique) // Validate already vetted it
	}
	g := s.Graph
	if s.GraphFile != "" {
		loaded, err := LoadGraphSpec(s.GraphFile)
		if err != nil {
			return Options{}, err
		}
		g = loaded
	}
	return Options{
		Technique:                tech,
		Scenario:                 s.Scenario,
		Policy:                   s.Policy,
		PolicyInterval:           s.PolicyInterval,
		Seed:                     s.Seed,
		Nodes:                    s.Nodes,
		SearchComponents:         s.SearchComponents,
		ArrivalRate:              s.Rate,
		Traffic:                  s.Traffic,
		Graph:                    g,
		Requests:                 s.Requests,
		Shards:                   s.Shards,
		Lanes:                    s.Lanes,
		WarmupFraction:           s.WarmupFraction,
		DrainSeconds:             s.DrainSeconds,
		BatchConcurrency:         s.BatchConcurrency,
		MinInputMB:               s.MinInputMB,
		MaxInputMB:               s.MaxInputMB,
		TwoPhaseJobs:             s.TwoPhaseJobs,
		CancelDelaySeconds:       s.CancelDelaySeconds,
		SchedulingInterval:       s.SchedulingInterval,
		EpsilonSeconds:           s.EpsilonSeconds,
		MaxMigrationsPerInterval: s.MaxMigrationsPerInterval,
		RegressionDegree:         s.RegressionDegree,
		QueueModel:               s.QueueModel,
		TrainingMixes:            s.TrainingMixes,
		ProfilingProbes:          s.ProfilingProbes,
		MonitorNoiseSigma:        s.MonitorNoiseSigma,
	}, nil
}

// Report executes the spec — Replications independent replications on
// Workers workers — and returns its canonical aggregate: the
// MergeStream-normal form with the execution-detail fields (Workers, the
// retained Runs) zeroed, so the same spec yields byte-identical report
// JSON whether it ran locally, under the daemon, or was re-aggregated
// from a stored stream.
func (s RunSpec) Report() (Aggregate, error) {
	o, err := s.Options()
	if err != nil {
		return Aggregate{}, err
	}
	n := s.Replications
	if n <= 0 {
		n = 1
	}
	agg, err := RunManyWorkers(o, n, s.Workers)
	if err != nil {
		return Aggregate{}, err
	}
	agg.Workers = 0
	agg.Runs = nil
	return agg, nil
}

// SweepSpec is the canonical description of a sweep: a Base cell template
// expanded over technique, rate and policy axes. It is the grid shape the
// Fig. 6 sweep, pcs-sweep and the daemon's POST /v1/sweeps all share, so
// a sweep means the same cells everywhere.
//
// Each cell is Base with the axis values substituted and its seed
// decorrelated by the cell's (rate, technique) coordinates — NOT by its
// policy, so a policy-on cell faces exactly the arrival stream and batch
// interference its open-loop twin faced (paired comparison). Adding
// techniques, rates or policies never perturbs existing cells.
type SweepSpec struct {
	// Base is the cell template; its own Technique/Rate/Policy are used
	// when the matching axis is empty.
	Base RunSpec `json:"base"`
	// Techniques, Rates and Policies are the sweep axes; an empty axis
	// keeps the Base value. Cells expand rate-major: rates outermost,
	// then techniques, then policies.
	Techniques []string  `json:"techniques,omitempty"`
	Rates      []float64 `json:"rates,omitempty"`
	Policies   []string  `json:"policies,omitempty"`
}

// Cells expands the sweep into its per-cell RunSpecs in deterministic
// order (rates outer, techniques, then policies). Every cell's Requests
// is floored so the run lasts at least 90 virtual seconds — control loops
// need a meaningful number of intervals even at low rates — and its seed
// is Base.Seed ^ rate<<16 ^ technique<<8, the derivation the Fig. 6 sweep
// has always used, so sweep cells reproduce historical reports exactly.
func (s SweepSpec) Cells() ([]RunSpec, error) {
	if err := s.Base.Validate(); err != nil {
		return nil, fmt.Errorf("pcs: sweep base: %w", err)
	}
	techniques := s.Techniques
	if len(techniques) == 0 {
		techniques = []string{s.Base.Technique}
	}
	rates := s.Rates
	if len(rates) == 0 {
		rates = []float64{s.Base.Rate}
	}
	policies := s.Policies
	if len(policies) == 0 {
		policies = []string{s.Base.Policy}
	}
	var cells []RunSpec
	for _, rate := range rates {
		if rate < 0 {
			return nil, fmt.Errorf("pcs: sweep rate must be non-negative, got %g", rate)
		}
		requests := s.Base.Requests
		if requests <= 0 {
			requests = 20000
		}
		if min := int(90 * rate); requests < min {
			requests = min
		}
		for _, name := range techniques {
			var tech Technique
			if name != "" {
				var err error
				if tech, err = ParseTechnique(name); err != nil {
					return nil, err
				}
			}
			for _, pol := range policies {
				cell := s.Base
				cell.Technique = tech.String()
				cell.Rate = rate
				cell.Requests = requests
				cell.Policy = pol
				cell.Seed = s.Base.Seed ^ int64(rate)<<16 ^ int64(tech)<<8
				if err := cell.Validate(); err != nil {
					return nil, fmt.Errorf("pcs: sweep cell %s/λ=%g/%q: %w", tech, rate, pol, err)
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

// Validate checks the sweep's base and expands its axes once, reporting
// the first invalid cell.
func (s SweepSpec) Validate() error {
	_, err := s.Cells()
	return err
}

// ParseSweepSpec decodes a SweepSpec from JSON strictly (unknown fields
// error) and validates it.
func ParseSweepSpec(data []byte) (SweepSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s SweepSpec
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("pcs: parsing sweep spec: %w", err)
	}
	if dec.More() {
		return SweepSpec{}, fmt.Errorf("pcs: parsing sweep spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return SweepSpec{}, err
	}
	return s, nil
}

// Info is one registry entry — a name with its one-line description — the
// structured form of the Describe* listings, for API clients that render
// their own UI (the daemon's introspection endpoints return these).
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// ScenarioInfos lists the registered scenarios with their descriptions.
func ScenarioInfos() []Info {
	var out []Info
	for _, name := range scenario.Names() {
		sc := scenario.MustGet(name)
		out = append(out, Info{Name: sc.Name, Description: sc.Description})
	}
	return out
}

// PolicyInfos lists the registered closed-loop policies with their
// descriptions (the implicit "none" is not an entry: it is the absence of
// one).
func PolicyInfos() []Info {
	var out []Info
	for _, p := range policy.List() {
		out = append(out, Info{Name: p.Name, Description: p.Description})
	}
	return out
}

// TechniqueInfos lists the six techniques with one-line summaries, in the
// paper's order.
func TechniqueInfos() []Info {
	desc := map[Technique]string{
		Basic: "single execution, no redundancy and no scheduling",
		RED3:  "replicate every sub-request on 3 component replicas",
		RED5:  "replicate every sub-request on 5 component replicas",
		RI90:  "reissue after the 90th percentile of expected latency",
		RI99:  "reissue after the 99th percentile of expected latency",
		PCS:   "predictive component-level scheduling (monitor → predictor → greedy scheduler)",
	}
	var out []Info
	for _, t := range Techniques() {
		out = append(out, Info{Name: t.String(), Description: desc[t]})
	}
	return out
}
