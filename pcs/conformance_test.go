package pcs

import (
	"reflect"
	"testing"
)

// The conformance harness — the reusable form of the identity matrices
// the determinism invariants are pinned with. Every registered scenario,
// current and future, flows through these helpers automatically: the
// cell grid is built from Scenarios() and Techniques(), so registering a
// scenario is all it takes to put it under the shard, lane, sampling and
// conservation matrices (determinism invariant #11 extends #7–#10 this
// way to the DAG scenarios).
//
// Three families of checks:
//
//   - assertShardsBitIdentical / assertLanesBitIdentical: serialized
//     reports are byte-identical across worker-shard and lane counts —
//     parallelism only ever moves the wall clock.
//   - assertSampledMatches: a run observed through SampleEvery yields
//     the exact snapshot series and final Result at every count on a
//     parallelism axis — observation stays free, parallelism invisible,
//     even composed.
//   - assertConservation / assertMonotonicSnapshots: request accounting
//     conserves — every admitted request reaches exactly one terminal
//     outcome (completed, failed or timed out), counters never run
//     backwards, in-flight never goes negative, and tenant accounting
//     re-adds to the run totals.

// conformanceCell is one (scenario, technique) point of the grid.
type conformanceCell struct {
	Scenario string
	Tech     Technique
}

func (c conformanceCell) label() string {
	name := c.Scenario
	if name == "" {
		name = "default"
	}
	return name + "/" + c.Tech.String()
}

// conformanceCells is the grid the identity matrices iterate: Basic and
// PCS (the two wirings — no controller vs profiling + controller) on
// every registered scenario, plus the remaining techniques on the
// default scenario.
func conformanceCells() []conformanceCell {
	var cells []conformanceCell
	for _, name := range Scenarios() {
		for _, tech := range []Technique{Basic, PCS} {
			cells = append(cells, conformanceCell{name, tech})
		}
	}
	for _, tech := range Techniques() {
		if tech != Basic && tech != PCS {
			cells = append(cells, conformanceCell{"", tech})
		}
	}
	return cells
}

// assertVariedBitIdentical runs opts once as the baseline, then once per
// count with vary applied, and fails when any serialized report differs
// from the baseline bytes. It returns the baseline Result so callers can
// layer run-shape assertions (DataPlane, outcome mix) on top.
func assertVariedBitIdentical(t *testing.T, label, axis string, opts Options,
	counts []int, vary func(*Options, int)) Result {
	t.Helper()
	baseline, err := Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	want := reportBytes(t, baseline)
	for _, n := range counts {
		o := opts
		vary(&o, n)
		res, err := Run(o)
		if err != nil {
			t.Fatalf("%s %s=%d: %v", label, axis, n, err)
		}
		if got := reportBytes(t, res); string(got) != string(want) {
			t.Errorf("%s: report at %s=%d diverged from baseline\n%s=%d: %s\nbase:     %s",
				label, axis, n, axis, n, got, want)
		}
	}
	return baseline
}

// assertShardsBitIdentical pins reports byte-identical across worker
// shard counts 1, 2, 4 and 8.
func assertShardsBitIdentical(t *testing.T, label string, opts Options) Result {
	t.Helper()
	return assertVariedBitIdentical(t, label, "shards", opts, shardCounts,
		func(o *Options, n int) { o.Shards = n })
}

// assertLanesBitIdentical pins laned reports byte-identical across lane
// counts: opts (which must select Lanes=1, the reference) against 2, 4
// and 8 lanes. It also checks the baseline really ran the laned plane —
// a silent fallback to the sequential path would make the pin vacuous.
func assertLanesBitIdentical(t *testing.T, label string, opts Options) Result {
	t.Helper()
	res := assertVariedBitIdentical(t, label, "lanes", opts, laneCounts[1:],
		func(o *Options, n int) { o.Lanes = n })
	if res.DataPlane != "laned" {
		t.Fatalf("%s: DataPlane = %q, want laned", label, res.DataPlane)
	}
	return res
}

// sampledRun advances a simulation through a 31-sample observation
// schedule and returns the final Result with the snapshot series.
func sampledRun(t *testing.T, label string, opts Options) (Result, []Snapshot) {
	t.Helper()
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	var snaps []Snapshot
	if err := s.SampleEvery(s.Horizon()/31, func(sn Snapshot) { snaps = append(snaps, sn) }); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return s.Finish(), snaps
}

// assertSampledMatches pins observation composed with a parallelism
// axis: the sampled run at every count yields the exact snapshot series
// and final Result of the sampled baseline, and that Result equals the
// unobserved run's — sampling perturbs nothing, parallelism moves only
// the wall clock.
func assertSampledMatches(t *testing.T, label, axis string, opts Options,
	counts []int, vary func(*Options, int)) {
	t.Helper()
	plain, err := Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	baseRes, baseSnaps := sampledRun(t, label, opts)
	if !reflect.DeepEqual(baseRes, plain) {
		t.Errorf("%s: observation perturbed the run\nsampled: %+v\nplain:   %+v", label, baseRes, plain)
	}
	for _, n := range counts {
		o := opts
		vary(&o, n)
		res, snaps := sampledRun(t, label, o)
		if !reflect.DeepEqual(res, baseRes) {
			t.Errorf("%s %s=%d: sampled result diverged\ngot:  %+v\nbase: %+v", label, axis, n, res, baseRes)
		}
		if !reflect.DeepEqual(snaps, baseSnaps) {
			t.Errorf("%s %s=%d: snapshot series diverged (%d vs %d samples)",
				label, axis, n, len(snaps), len(baseSnaps))
		}
	}
}

// assertConservation checks request accounting on a finished run against
// its final snapshot: no counter is negative, every admitted request
// reached exactly one terminal outcome (the drain window empties the
// system, so nothing may stay in flight), Result and Snapshot agree on
// the totals, and per-tenant accounting re-adds to them.
func assertConservation(t *testing.T, label string, res Result, final Snapshot) {
	t.Helper()
	if res.Arrivals < 0 || res.Completed < 0 || res.Failed < 0 || res.TimedOut < 0 || res.AdmissionDrops < 0 {
		t.Errorf("%s: negative accounting counter: arrivals=%d completed=%d failed=%d timedOut=%d drops=%d",
			label, res.Arrivals, res.Completed, res.Failed, res.TimedOut, res.AdmissionDrops)
	}
	if terminal := res.Completed + res.Failed + res.TimedOut; terminal != res.Arrivals {
		t.Errorf("%s: conservation violated: %d admitted but %d terminal (%d completed + %d failed + %d timed out)",
			label, res.Arrivals, terminal, res.Completed, res.Failed, res.TimedOut)
	}
	if final.InFlight != 0 {
		t.Errorf("%s: %d requests still in flight after the drain window", label, final.InFlight)
	}
	if final.Arrivals != res.Arrivals || final.Completed != res.Completed ||
		final.Failed != res.Failed || final.TimedOut != res.TimedOut ||
		final.AdmissionDrops != res.AdmissionDrops {
		t.Errorf("%s: Result and final Snapshot disagree on totals\nresult:   %d/%d/%d/%d/%d\nsnapshot: %d/%d/%d/%d/%d",
			label, res.Arrivals, res.Completed, res.Failed, res.TimedOut, res.AdmissionDrops,
			final.Arrivals, final.Completed, final.Failed, final.TimedOut, final.AdmissionDrops)
	}
	var admitted, dropped int
	for _, tn := range res.Tenants {
		if tn.Offered != tn.Admitted+tn.Dropped {
			t.Errorf("%s: tenant %s offered %d ≠ admitted %d + dropped %d",
				label, tn.Name, tn.Offered, tn.Admitted, tn.Dropped)
		}
		admitted += tn.Admitted
		dropped += tn.Dropped
	}
	if len(res.Tenants) > 0 {
		if admitted != res.Arrivals {
			t.Errorf("%s: tenant admissions sum to %d, run admitted %d", label, admitted, res.Arrivals)
		}
		if dropped != res.AdmissionDrops {
			t.Errorf("%s: tenant drops sum to %d, run dropped %d", label, dropped, res.AdmissionDrops)
		}
	}
}

// assertMonotonicSnapshots checks the time-series side of conservation:
// cumulative counters never run backwards between samples and the
// in-flight census — the admitted-minus-terminal balance — never goes
// negative, which is exactly where a double-counted outcome would show.
func assertMonotonicSnapshots(t *testing.T, label string, snaps []Snapshot) {
	t.Helper()
	var prev Snapshot
	for i, sn := range snaps {
		if sn.InFlight < 0 {
			t.Errorf("%s: sample %d: negative in-flight %d (terminal outcomes double-counted?)",
				label, i, sn.InFlight)
		}
		if i > 0 && (sn.Arrivals < prev.Arrivals || sn.Completed < prev.Completed ||
			sn.Failed < prev.Failed || sn.TimedOut < prev.TimedOut ||
			sn.AdmissionDrops < prev.AdmissionDrops) {
			t.Errorf("%s: sample %d: cumulative counter ran backwards\nprev: %+v\ncur:  %+v",
				label, i, prev, sn)
		}
		prev = sn
	}
}

// conservationOpts keeps the full scenario × technique × plane grid of
// the conservation property affordable. Conservation is exact, so scale
// does not weaken the check.
func conservationOpts(tech Technique, scenarioName string, seed int64) Options {
	o := equivOpts(tech, scenarioName, seed)
	o.Requests = 240
	o.SearchComponents = 8
	o.TrainingMixes = 4
	o.ProfilingProbes = 12
	return o
}

// TestConservationAllScenariosTechniques is the conservation property
// test: for every registered scenario under every technique, sequential
// and laned, the run's request accounting conserves — admitted =
// completed + failed + timed out, tenant offered = admitted + dropped —
// and the sampled series behind it is monotone with a non-negative
// in-flight census throughout.
func TestConservationAllScenariosTechniques(t *testing.T) {
	for _, name := range Scenarios() {
		for _, tech := range Techniques() {
			for _, lanes := range []int{0, 2} {
				opts := conservationOpts(tech, name, 41)
				opts.Lanes = lanes
				label := name + "/" + tech.String()
				if lanes > 0 {
					label += "/laned"
				} else {
					label += "/sequential"
				}
				s, err := NewSimulation(opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				var snaps []Snapshot
				if err := s.SampleEvery(s.Horizon()/16, func(sn Snapshot) { snaps = append(snaps, sn) }); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				res := s.Finish()
				assertConservation(t, label, res, s.Snapshot())
				assertMonotonicSnapshots(t, label, snaps)
			}
		}
	}
}

// TestDAGSampledRunMatrix extends the sampled ≡ unsampled pin to a DAG
// scenario whose runs exercise the failure outcomes: dag-timeout's
// Failed/TimedOut accounting must stay exact through SampleEvery at
// every shard and lane count, like every other Snapshot field.
func TestDAGSampledRunMatrix(t *testing.T) {
	assertSampledMatches(t, "dag-timeout/PCS", "shards",
		equivOpts(PCS, "dag-timeout", 23), shardCounts[1:],
		func(o *Options, n int) { o.Shards = n })
	assertSampledMatches(t, "dag-timeout/PCS/laned", "lanes",
		lanedOpts(PCS, "dag-timeout", 23), laneCounts[1:],
		func(o *Options, n int) { o.Lanes = n })
}
