package pcs

import (
	"reflect"
	"strings"
	"testing"
)

// policyOpts sizes policy runs so the closed loop actually engages while
// the table stays fast: the equivalence deployment is small (8 nodes, 12
// search components), so per-instance load must come from the arrival
// rate — λ=400 against the scenarios' scripted bursts/overloads reliably
// crosses the built-in policies' pressure thresholds at any seed.
func policyOpts(tech Technique, scenarioName, policyName string, seed int64) Options {
	o := equivOpts(tech, scenarioName, seed)
	o.Policy = policyName
	o.ArrivalRate = 400
	o.Requests = 6000
	return o
}

// policyCells is the scenario × policy table of determinism invariant #8:
// the two scenario-scripted policies, plus each registered policy forced
// onto a plain scenario through Options.Policy.
func policyCells() []struct{ scenario, policy string } {
	return []struct{ scenario, policy string }{
		{"autoscale-burst", ""},                      // scenario-scripted threshold autoscaler
		{"brownout-overload", ""},                    // scenario-scripted brownout
		{"brownout-overload", "threshold-autoscale"}, // forced policy over a scripted disturbance
		{"autoscale-burst", "brownout"},
		{"brownout-overload", "pid-throttle"}, // throttle shaving the scripted overload
	}
}

// TestPolicyRunsBitIdenticalAcrossShardsAndWorkers is determinism
// invariant #8: closed-loop runs replay bit-identically at any shard
// count and any replication worker count. Policy decisions bind at fixed
// virtual times from sampled snapshots, so neither intra-run sharding nor
// cross-run parallelism may reach a policy-on result.
func TestPolicyRunsBitIdenticalAcrossShardsAndWorkers(t *testing.T) {
	for _, cell := range policyCells() {
		opts := policyOpts(Basic, cell.scenario, cell.policy, 37)
		baseline, err := Run(opts)
		if err != nil {
			t.Fatalf("%s/%s: %v", cell.scenario, cell.policy, err)
		}
		if baseline.Policy == "" || baseline.PolicyActions == 0 {
			t.Fatalf("%s/%s: policy idle (name %q, %d actions) — the invariant would hold vacuously",
				cell.scenario, cell.policy, baseline.Policy, baseline.PolicyActions)
		}
		want := reportBytes(t, baseline)
		for _, shards := range shardCounts {
			o := opts
			o.Shards = shards
			res, err := Run(o)
			if err != nil {
				t.Fatalf("%s/%s shards=%d: %v", cell.scenario, cell.policy, shards, err)
			}
			if got := reportBytes(t, res); string(got) != string(want) {
				t.Errorf("%s/%s: policy-on report at -shards %d diverged from sequential\nshards=%d: %s\nseq:      %s",
					cell.scenario, cell.policy, shards, shards, got, want)
			}
		}
	}

	// Workers × shards on a policy scenario: the replication aggregate is
	// bit-identical whether replications run on 1 worker sequentially or
	// on 4 workers with sharded runs.
	opts := policyOpts(Basic, "autoscale-burst", "", 41)
	seq, err := RunManyWorkers(opts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Shards = 2
	par, err := RunManyWorkers(o, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	par.Workers = seq.Workers // wall-clock budgeting detail, legitimately differs
	if !reflect.DeepEqual(par, seq) {
		t.Fatalf("policy-on aggregate diverged across workers × shards:\npar: %+v\nseq: %+v", par, seq)
	}
}

// TestPolicyScenariosRegistered pins the two closed-loop scenarios: the
// registry holds 15 entries, the scenarios run their scripted policies by
// default, -policy none runs the same world open-loop, and closing the
// loop changes the outcome.
func TestPolicyScenariosRegistered(t *testing.T) {
	if n := len(Scenarios()); n != 15 {
		t.Fatalf("registry holds %d scenarios, want 15: %v", n, Scenarios())
	}
	wantPolicy := map[string]string{
		"autoscale-burst":   "threshold-autoscale",
		"brownout-overload": "brownout",
	}
	for name, pol := range wantPolicy {
		on, err := Run(policyOpts(Basic, name, "", 43))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if on.Policy != pol {
			t.Fatalf("%s: Result.Policy = %q, want %q", name, on.Policy, pol)
		}
		if on.PolicyActions == 0 {
			t.Fatalf("%s: scripted policy never acted", name)
		}
		offRes, err := Run(policyOpts(Basic, name, "none", 43))
		if err != nil {
			t.Fatalf("%s policy-off: %v", name, err)
		}
		if offRes.Policy != "" || offRes.PolicyActions != 0 {
			t.Fatalf("%s: -policy none still reports %q with %d actions",
				name, offRes.Policy, offRes.PolicyActions)
		}
		if offRes.AvgOverallMs == on.AvgOverallMs && offRes.P99ComponentMs == on.P99ComponentMs {
			t.Fatalf("%s: closing the loop changed nothing (suspicious)", name)
		}
	}
	if _, err := Run(Options{Policy: "warp-drive", Requests: 100}); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestPolicyLogAndSnapshotGauges drives a policy run steppably and checks
// the observability surface: the log matches Result.PolicyActions, every
// entry carries a reason at a policy-cadence time, and snapshots expose
// the actuator positions.
func TestPolicyLogAndSnapshotGauges(t *testing.T) {
	opts := policyOpts(Basic, "autoscale-burst", "", 43)
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PolicyName(); got != "threshold-autoscale" {
		t.Fatalf("PolicyName() = %q", got)
	}
	var maxReplicas int
	if err := s.SampleEvery(s.Horizon()/64, func(sn Snapshot) {
		if sn.ActiveReplicas > maxReplicas {
			maxReplicas = sn.ActiveReplicas
		}
		if sn.WorkFactor != 1 {
			t.Errorf("autoscaler moved the work factor: %v", sn.WorkFactor)
		}
	}); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	log := s.PolicyLog()
	if len(log) != res.PolicyActions {
		t.Fatalf("PolicyLog has %d entries, Result.PolicyActions = %d", len(log), res.PolicyActions)
	}
	if maxReplicas < 2 {
		t.Fatalf("snapshots never saw a scale-up (max active replicas %d)", maxReplicas)
	}
	interval := s.Options().PolicyInterval
	for i, a := range log {
		if a.Reason == "" || a.Kind == "" {
			t.Fatalf("action %d incomplete: %+v", i, a)
		}
		if r := a.T / interval; r != float64(int(r)) {
			t.Fatalf("action %d fired at t=%v, not on the %vs policy cadence", i, a.T, interval)
		}
	}
}

// TestControllerSetReplicasValidation covers the scale verb's edge cases:
// scaling below 1, beyond the cluster's capacity, into the past, and below
// the dispatch policy's replica need are all rejected synchronously.
func TestControllerSetReplicasValidation(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 47))
	if err != nil {
		t.Fatal(err)
	}
	ctrl := s.Controller()
	h := s.Horizon()
	if err := ctrl.SetReplicasAt(h/4, 0); err == nil {
		t.Fatal("scale to 0 accepted")
	}
	if err := ctrl.SetReplicasAt(h/4, -3); err == nil {
		t.Fatal("scale to -3 accepted")
	}
	nodes := s.Options().Nodes
	if err := ctrl.SetReplicasAt(h/4, nodes+1); err == nil {
		t.Fatal("scale beyond cluster capacity accepted")
	}
	if err := ctrl.SetReplicasAt(h/4, nodes); err != nil {
		t.Fatalf("scale to exactly cluster capacity rejected: %v", err)
	}
	s.RunTo(h / 2)
	if err := ctrl.SetReplicasAt(s.Now()-1, 2); err == nil {
		t.Fatal("scale scheduled into the past accepted")
	}
	if err := ctrl.SetReplicasAt(s.Now(), 2); err != nil {
		t.Fatalf("scale at exactly now rejected: %v", err)
	}

	// A RED-3 world cannot drop below its policy's replica need.
	r3, err := NewSimulation(equivOpts(RED3, "", 47))
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Controller().SetReplicasAt(r3.Horizon()/4, 2); err == nil {
		t.Fatal("RED-3 world scaled below 3 replicas")
	}
	if err := r3.Controller().SetReplicasAt(r3.Horizon()/4, 4); err != nil {
		t.Fatalf("RED-3 world rejected scale to 4: %v", err)
	}
}

// TestControllerSetReplicasScalesDispatch pins the verb's effect: scaling
// a Basic world up changes the outcome, snapshots see the new replica
// count, and scaling up enables a technique swap that the deployment
// alone would have rejected.
func TestControllerSetReplicasScalesDispatch(t *testing.T) {
	opts := equivOpts(Basic, "", 53)
	plain, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Controller().SetReplicasAt(s.Horizon()/4, 2); err != nil {
		t.Fatal(err)
	}
	s.RunTo(s.Horizon() / 2)
	if got := s.Snapshot().ActiveReplicas; got != 2 {
		t.Fatalf("mid-run ActiveReplicas = %d, want 2", got)
	}
	scaled := s.Finish()
	if scaled.AvgOverallMs == plain.AvgOverallMs {
		t.Fatal("scale-up changed nothing (suspicious)")
	}
	if scaled.Completed != scaled.Arrivals {
		t.Fatalf("scaled run dropped requests: %d/%d", scaled.Completed, scaled.Arrivals)
	}

	// Scale-up first, then a swap to a technique needing the replicas.
	s2, err := NewSimulation(equivOpts(Basic, "", 53))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Controller().SetTechniqueAt(s2.Horizon()/2, RI90); err == nil {
		t.Fatal("swap to RI-90 accepted on a 1-replica world")
	}
	if err := s2.Controller().SetReplicasAt(s2.Horizon()/4, 2); err != nil {
		t.Fatal(err)
	}
	s2.RunTo(s2.Horizon() / 3) // the scale has fired; the swap validates against it
	if err := s2.Controller().SetTechniqueAt(s2.Horizon()/2, RI90); err != nil {
		t.Fatalf("swap to RI-90 after scale-up rejected: %v", err)
	}
	if s2.Finish().Completed == 0 {
		t.Fatal("nothing completed across scale + swap")
	}
}

// TestControllerSetWorkFactor covers the brownout verb: validation, the
// latency effect of degraded work, and the snapshot gauge.
func TestControllerSetWorkFactor(t *testing.T) {
	opts := equivOpts(Basic, "", 59)
	plain, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := s.Controller()
	for _, bad := range []float64{0, -0.5, 1.5} {
		if err := ctrl.SetWorkFactorAt(s.Horizon()/4, bad); err == nil {
			t.Fatalf("work factor %v accepted", bad)
		}
	}
	// Degrade a quarter of the way in — inside the arrival window, so the
	// second three quarters of the workload actually run at half work.
	if err := ctrl.SetWorkFactorAt(s.Horizon()/8, 0.5); err != nil {
		t.Fatal(err)
	}
	s.RunTo(s.Horizon() / 4)
	if got := s.Snapshot().WorkFactor; got != 0.5 {
		t.Fatalf("mid-run WorkFactor = %v, want 0.5", got)
	}
	if err := ctrl.SetWorkFactorAt(s.Now()-1, 0.5); err == nil {
		t.Fatal("work factor scheduled into the past accepted")
	}
	if err := ctrl.SetWorkFactorAt(s.Now(), 0.5); err != nil {
		t.Fatalf("work factor at exactly now rejected: %v", err)
	}
	degraded := s.Finish()
	if degraded.AvgOverallMs >= plain.AvgOverallMs {
		t.Fatalf("half-work run did not reduce average latency: %v ≥ %v",
			degraded.AvgOverallMs, plain.AvgOverallMs)
	}
}

// TestPolicyFlagUsageListsPolicies pins the CLI usage surface.
func TestPolicyFlagUsageListsPolicies(t *testing.T) {
	names := Policies()
	if len(names) < 3 {
		t.Fatalf("Policies() = %v, want ≥3", names)
	}
	usage := PolicyFlagUsage()
	for _, n := range names {
		if !strings.Contains(usage, n) {
			t.Errorf("PolicyFlagUsage() missing %q", n)
		}
	}
	if !strings.Contains(usage, "none") {
		t.Error("PolicyFlagUsage() missing the \"none\" escape hatch")
	}
	if DescribePolicies() == "" {
		t.Error("DescribePolicies() empty")
	}
}
