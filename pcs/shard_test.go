package pcs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// shardCounts is the table the acceptance criterion names: sequential,
// and 2/4/8-way sharded.
var shardCounts = []int{1, 2, 4, 8}

// reportBytes renders a Result the way every sink in the repo does
// (encoding/json, shortest float representation), so "byte-identical
// reports" is checked on the actual serialized artifact, not a Go-level
// approximation of it.
func reportBytes(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedRunBitIdenticalAllScenariosTechniques is the tentpole's
// acceptance gate: for every registered scenario under Basic and PCS (the
// two wirings: no controller vs profiling + controller), and for every
// technique on the default scenario, runs at 1, 2, 4 and 8 shards produce
// byte-identical reports. Sharding only ever moves the wall clock.
func TestShardedRunBitIdenticalAllScenariosTechniques(t *testing.T) {
	type cell struct {
		scenario string
		tech     Technique
	}
	var cells []cell
	for _, name := range Scenarios() {
		for _, tech := range []Technique{Basic, PCS} {
			cells = append(cells, cell{name, tech})
		}
	}
	for _, tech := range Techniques() {
		if tech != Basic && tech != PCS {
			cells = append(cells, cell{"", tech})
		}
	}

	for _, c := range cells {
		opts := equivOpts(c.tech, c.scenario, 17)
		baseline, err := Run(opts)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.scenario, c.tech, err)
		}
		want := reportBytes(t, baseline)
		for _, shards := range shardCounts {
			o := opts
			o.Shards = shards
			res, err := Run(o)
			if err != nil {
				t.Fatalf("%s/%s shards=%d: %v", c.scenario, c.tech, shards, err)
			}
			if got := reportBytes(t, res); string(got) != string(want) {
				t.Errorf("%s/%s: report at -shards %d diverged from sequential\nshards=%d: %s\nseq:      %s",
					c.scenario, c.tech, shards, shards, got, want)
			}
		}
	}
}

// TestShardedSampledRunMatchesUnshardedSnapshots pins the composition of
// sharding with PR 3's observability: a sharded run observed through
// SampleEvery yields the exact snapshot series — and final Result — of the
// unsharded sampled run. Observation stays free and sharding stays
// invisible even when both are on.
func TestShardedSampledRunMatchesUnshardedSnapshots(t *testing.T) {
	opts := equivOpts(PCS, "node-failure", 23)
	sampledRun := func(shards int) (Result, []Snapshot) {
		o := opts
		o.Shards = shards
		s, err := NewSimulation(o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var snaps []Snapshot
		if err := s.SampleEvery(s.Horizon()/31, func(sn Snapshot) { snaps = append(snaps, sn) }); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return s.Finish(), snaps
	}
	seqRes, seqSnaps := sampledRun(1)
	for _, shards := range shardCounts[1:] {
		res, snaps := sampledRun(shards)
		if !reflect.DeepEqual(res, seqRes) {
			t.Errorf("shards=%d: sampled result diverged\nsharded: %+v\nseq:     %+v", shards, res, seqRes)
		}
		if !reflect.DeepEqual(snaps, seqSnaps) {
			t.Errorf("shards=%d: snapshot series diverged (%d vs %d samples)",
				shards, len(snaps), len(seqSnaps))
		}
	}
}

// TestRunManyShardsOnlyMovesWallClock pins the shards × replications
// composition: a replication aggregate is bit-identical whether each
// replication runs sequentially or sharded, at any worker budget.
func TestRunManyShardsOnlyMovesWallClock(t *testing.T) {
	opts := equivOpts(PCS, "", 29)
	seq, err := RunMany(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Shards = 4
	sharded, err := RunMany(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Workers is a wall-clock budgeting detail and legitimately differs;
	// every computed value must not.
	sharded.Workers = seq.Workers
	for i := range sharded.Runs {
		if !reflect.DeepEqual(sharded.Runs[i], seq.Runs[i]) {
			t.Fatalf("replication %d diverged under sharding:\nsharded: %+v\nseq:     %+v",
				i, sharded.Runs[i], seq.Runs[i])
		}
	}
	if !reflect.DeepEqual(sharded, seq) {
		t.Fatalf("aggregate diverged under sharding:\nsharded: %+v\nseq:     %+v", sharded, seq)
	}
}

// TestSimulationCloseReleasesWorkers covers the explicit Close path: an
// abandoned sharded simulation can be closed early and still advanced
// (regions fall back inline) with results identical to a sequential run.
func TestSimulationCloseReleasesWorkers(t *testing.T) {
	opts := equivOpts(Basic, "", 31)
	want, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Shards = 4
	s, err := NewSimulation(o)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(s.Horizon() / 3)
	s.Close() // abandon mid-run ...
	got := s.Finish()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run after Close diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
}
