package pcs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// shardCounts is the table the acceptance criterion names: sequential,
// and 2/4/8-way sharded.
var shardCounts = []int{1, 2, 4, 8}

// reportBytes renders a Result the way every sink in the repo does
// (encoding/json, shortest float representation), so "byte-identical
// reports" is checked on the actual serialized artifact, not a Go-level
// approximation of it.
func reportBytes(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedRunBitIdenticalAllScenariosTechniques is the tentpole's
// acceptance gate: for every conformance cell — every registered scenario
// under Basic and PCS, every technique on the default scenario — runs at
// 1, 2, 4 and 8 shards produce byte-identical reports. Sharding only ever
// moves the wall clock.
func TestShardedRunBitIdenticalAllScenariosTechniques(t *testing.T) {
	for _, c := range conformanceCells() {
		assertShardsBitIdentical(t, c.label(), equivOpts(c.Tech, c.Scenario, 17))
	}
}

// TestShardedSampledRunMatchesUnshardedSnapshots pins the composition of
// sharding with PR 3's observability: a sharded run observed through
// SampleEvery yields the exact snapshot series — and final Result — of the
// unsharded sampled run. Observation stays free and sharding stays
// invisible even when both are on.
func TestShardedSampledRunMatchesUnshardedSnapshots(t *testing.T) {
	assertSampledMatches(t, "node-failure/PCS", "shards",
		equivOpts(PCS, "node-failure", 23), shardCounts[1:],
		func(o *Options, n int) { o.Shards = n })
}

// TestRunManyShardsOnlyMovesWallClock pins the shards × replications
// composition: a replication aggregate is bit-identical whether each
// replication runs sequentially or sharded, at any worker budget.
func TestRunManyShardsOnlyMovesWallClock(t *testing.T) {
	opts := equivOpts(PCS, "", 29)
	seq, err := RunMany(opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Shards = 4
	sharded, err := RunMany(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Workers is a wall-clock budgeting detail and legitimately differs;
	// every computed value must not.
	sharded.Workers = seq.Workers
	for i := range sharded.Runs {
		if !reflect.DeepEqual(sharded.Runs[i], seq.Runs[i]) {
			t.Fatalf("replication %d diverged under sharding:\nsharded: %+v\nseq:     %+v",
				i, sharded.Runs[i], seq.Runs[i])
		}
	}
	if !reflect.DeepEqual(sharded, seq) {
		t.Fatalf("aggregate diverged under sharding:\nsharded: %+v\nseq:     %+v", sharded, seq)
	}
}

// TestSimulationCloseReleasesWorkers covers the explicit Close path: an
// abandoned sharded simulation can be closed early and still advanced
// (regions fall back inline) with results identical to a sequential run.
func TestSimulationCloseReleasesWorkers(t *testing.T) {
	opts := equivOpts(Basic, "", 31)
	want, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Shards = 4
	s, err := NewSimulation(o)
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(s.Horizon() / 3)
	s.Close() // abandon mid-run ...
	got := s.Finish()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run after Close diverged:\ngot:  %+v\nwant: %+v", got, want)
	}
}
