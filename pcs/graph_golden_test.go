package pcs

import (
	"encoding/json"
	"os"
	"testing"
)

// The DAG-scenario golden pin — the value half of determinism invariant
// #11. The conformance matrices already prove the DAG scenarios are
// byte-identical across shard and lane counts {1, 2, 4, 8}; this file
// pins the actual report bytes across PRs, sequential and laned, Basic
// and PCS, so a change to graph execution (branch draws, retry timing,
// breaker state walks, storage mixes) cannot land unnoticed. Regenerate
// deliberately:
//
//	PCS_WRITE_GOLDEN=1 go test -run TestGraphScenarioGoldens ./pcs
const graphGoldenPath = "testdata/graph_reports.json"

// graphScenarios are the DAG scenarios the pin covers, frozen by name.
var graphScenarios = []string{"circuit-storm", "dag-timeout", "fanout-retry", "storage-cache"}

// TestGraphScenarioGoldens runs every DAG scenario under Basic and PCS on
// both data planes and compares the serialized reports against the
// goldens. It also checks each run actually exercised graph semantics —
// a report without graph counters means the DAG plan silently fell away,
// which byte-comparison alone could only catch after regeneration.
func TestGraphScenarioGoldens(t *testing.T) {
	write := os.Getenv("PCS_WRITE_GOLDEN") != ""
	got := make(map[string]json.RawMessage)
	for _, name := range graphScenarios {
		for _, tech := range []Technique{Basic, PCS} {
			for _, laned := range []bool{false, true} {
				opts := equivOpts(tech, name, 17)
				key := name + "/" + tech.String()
				if laned {
					opts = lanedOpts(tech, name, 17)
					key += "/laned"
				}
				res, err := Run(opts)
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				if res.Graph == nil {
					t.Errorf("%s: report carries no graph counters; DAG plan not in effect?", key)
				}
				got[key] = reportBytes(t, res)
			}
		}
	}
	if write {
		writeGoldens(t, graphGoldenPath, got)
		return
	}
	compareGoldens(t, graphGoldenPath, got)
}
