package pcs

import (
	"encoding/json"
	"os"
	"testing"
)

// The scalar-arrival compat pin. PR 6 redesigned the arrival path around
// traffic.Source; Options.ArrivalRate survives as a compat shim that
// constructs the same Poisson process from the same rng fork position, so
// every pre-existing scenario must reproduce its PR 5 report byte for
// byte. The goldens in testdata/pr5_reports.json were generated from the
// PR 5 tree (before the traffic package existed); regenerate them only
// when a PR deliberately changes simulation results:
//
//	PCS_WRITE_GOLDEN=1 go test -run TestScalarArrivalCompat ./pcs
const goldenPath = "testdata/pr5_reports.json"

// pr5Scenarios are the nine scenarios registered before the traffic
// redesign, frozen by name: the compat surface is exactly these, not
// whatever the registry grows to.
var pr5Scenarios = []string{
	"autoscale-burst", "brownout-overload", "diurnal-load", "ecommerce",
	"large-cluster", "microservice-chain", "node-failure", "nutch-search",
	"social-feed",
}

// compatCells returns the (scenario, technique) cells the pin covers:
// Basic on all nine pre-existing scenarios (the arrival path with no
// controller), plus PCS on the paper's own (profiling + scheduling on top
// of the same arrivals).
func compatCells() []struct {
	Scenario  string
	Technique Technique
} {
	cells := make([]struct {
		Scenario  string
		Technique Technique
	}, 0, len(pr5Scenarios)+1)
	for _, name := range pr5Scenarios {
		cells = append(cells, struct {
			Scenario  string
			Technique Technique
		}{name, Basic})
	}
	cells = append(cells, struct {
		Scenario  string
		Technique Technique
	}{"nutch-search", PCS})
	return cells
}

func compatKey(scenario string, tech Technique) string {
	return scenario + "/" + tech.String()
}

// TestScalarArrivalCompat pins the Options.ArrivalRate shim: a run
// configured through the scalar field alone produces the exact Result
// bytes the PR 5 tree produced, for every pre-existing scenario. With
// PCS_WRITE_GOLDEN=1 it rewrites the goldens instead of comparing.
func TestScalarArrivalCompat(t *testing.T) {
	write := os.Getenv("PCS_WRITE_GOLDEN") != ""
	got := make(map[string]json.RawMessage)
	for _, cell := range compatCells() {
		res, err := Run(equivOpts(cell.Technique, cell.Scenario, 17))
		if err != nil {
			t.Fatalf("%s: %v", compatKey(cell.Scenario, cell.Technique), err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		got[compatKey(cell.Scenario, cell.Technique)] = b
	}

	if write {
		writeGoldens(t, goldenPath, got)
		return
	}
	compareGoldens(t, goldenPath, got)
}
