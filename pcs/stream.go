package pcs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/runner"
	"repro/internal/xrand"
)

// StreamedRun is one line of a streamed replication set: NDJSON, one JSON
// object per replication, in replication order. Seed records the
// replication's derived seed so any single line can be reproduced with
// pcs.Run directly.
type StreamedRun struct {
	Rep    int    `json:"rep"`
	Seed   int64  `json:"seed"`
	Result Result `json:"result"`
}

// streamEncoder writes StreamedRun lines for replications derived from one
// root seed. RunManyStream and CITarget.Sink share it so the on-disk
// format has a single producer.
type streamEncoder struct {
	enc  *json.Encoder
	root int64
}

func newStreamEncoder(w io.Writer, root int64) *streamEncoder {
	return &streamEncoder{enc: json.NewEncoder(w), root: root}
}

func (e *streamEncoder) write(rep int, r Result) error {
	if err := e.enc.Encode(StreamedRun{Rep: rep, Seed: xrand.StreamSeed(e.root, rep), Result: r}); err != nil {
		return fmt.Errorf("pcs: streaming replication %d: %w", rep, err)
	}
	return nil
}

// decodeStream reads an NDJSON replication stream in order, handing each
// record to fn, and returns how many records it saw. It is the single
// consumer-side validator: gaps and reordering error out.
func decodeStream(r io.Reader, fn func(StreamedRun)) (int, error) {
	dec := json.NewDecoder(r)
	next := 0
	for {
		var rec StreamedRun
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return next, nil
			}
			return next, fmt.Errorf("pcs: reading stream at replication %d: %w", next, err)
		}
		if rec.Rep != next {
			return next, fmt.Errorf("pcs: stream corrupt: got replication %d, want %d", rec.Rep, next)
		}
		fn(rec)
		next++
	}
}

// RunManyStream is RunMany with a streaming sink: each replication's Result
// is written to sink as one NDJSON line the moment it (and all its
// predecessors) completes, instead of being collected in memory. Only the
// five across-replication metric vectors (one float64 per replication each)
// are retained for the final percentile summaries, so memory is O(n)
// floats rather than O(n) Results — the difference that matters for huge
// sweeps. The returned Aggregate carries Runs == nil; everything else is
// bit-identical to RunManyWorkers(opts, n, workers) with the same
// arguments, pinned by tests.
//
// encoding/json renders float64 with the shortest representation that
// round-trips exactly, so a written stream merged back through MergeStream
// reproduces the same aggregate bit for bit.
func RunManyStream(opts Options, n, workers int, sink io.Writer) (Aggregate, error) {
	if sink == nil {
		return Aggregate{}, fmt.Errorf("pcs: RunManyStream needs a sink (use RunMany to aggregate in memory)")
	}
	pool := runner.Options{Workers: replicationWorkers(opts, workers)}
	enc := newStreamEncoder(sink, opts.Seed)
	var a aggregator
	err := runner.Stream(opts.Seed, n, pool,
		func(rep int, seed int64) (Result, error) {
			o := opts
			o.Seed = seed
			return Run(o)
		},
		func(rep int, r Result) error {
			if err := enc.write(rep, r); err != nil {
				return err
			}
			a.add(r)
			return nil
		})
	if err != nil {
		return Aggregate{}, err
	}
	return a.aggregate(pool.EffectiveWorkers(n)), nil
}

// RunManyStreamFrom is the cancellable, resumable form of RunManyStream:
// it executes replications [from, n) of the spec'd set and writes each
// one's NDJSON record to sink in replication order. The frames are
// byte-identical to the corresponding lines RunManyStream writes for the
// full set — replication i always runs with seed
// xrand.StreamSeed(opts.Seed, i) regardless of where the call starts — so
// appending this call's output to an intact prefix of a previous run's
// stream reconstructs the full stream exactly. That is the daemon's
// crash-recovery contract: resume from the completed-replication frontier
// and the stored bytes end up indistinguishable from an uninterrupted run.
//
// ctx is checked at every replication boundary: once it is done, no new
// replication starts (in-flight ones finish and are discarded) and the
// call returns ctx's error. Cancellation never truncates a frame — sink
// only ever receives whole records that completed in order.
//
// No Aggregate is returned: a resumed caller owns bytes this call never
// saw, so folding the full stream (MergeStream) is its job.
func RunManyStreamFrom(ctx context.Context, opts Options, n, workers, from int, sink io.Writer) error {
	if sink == nil {
		return fmt.Errorf("pcs: RunManyStreamFrom needs a sink (use RunMany to aggregate in memory)")
	}
	if from < 0 || from > n {
		return fmt.Errorf("pcs: RunManyStreamFrom resume point %d outside [0, %d]", from, n)
	}
	if from == n {
		return nil // nothing left to run; the stored prefix is the stream
	}
	pool := runner.Options{Workers: replicationWorkers(opts, workers)}
	enc := newStreamEncoder(sink, opts.Seed)
	// runner.Stream numbers this call's replications 0..n-from-1; the job
	// and the emit both shift by from so seeds and frame indexes are those
	// of the full set.
	return runner.Stream(opts.Seed, n-from, pool,
		func(rep int, _ int64) (Result, error) {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			o := opts
			o.Seed = xrand.StreamSeed(opts.Seed, from+rep)
			return Run(o)
		},
		func(rep int, r Result) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return enc.write(from+rep, r)
		})
}

// MergeStream folds an NDJSON replication stream (as written by
// RunManyStream or CITarget.Sink) back into its Aggregate. The merge is the
// same fold the runs went through when they were produced, so the summaries
// come out bit-identical to the Aggregate the original call returned. Lines
// must be complete and in replication order — a gap or reordering is
// corruption and errors out. Runs is left nil and Workers 0: both describe
// how the original run was executed, which a file cannot know.
func MergeStream(r io.Reader) (Aggregate, error) {
	var a aggregator
	n, err := decodeStream(r, func(rec StreamedRun) { a.add(rec.Result) })
	if err != nil {
		return Aggregate{}, err
	}
	if n == 0 {
		return Aggregate{}, fmt.Errorf("pcs: empty replication stream")
	}
	return a.aggregate(0), nil
}

// ReadStream decodes every line of an NDJSON replication stream, validating
// order. It is the "give me the raw runs back" counterpart to MergeStream,
// for callers who want per-replication detail from a stored stream.
func ReadStream(r io.Reader) ([]StreamedRun, error) {
	var recs []StreamedRun
	if _, err := decodeStream(r, func(rec StreamedRun) { recs = append(recs, rec) }); err != nil {
		return nil, err
	}
	return recs, nil
}
