// Package pcs is the public API of the PCS reproduction: predictive
// component-level scheduling for reducing tail latency in cloud online
// services (Han et al., ICPP 2015).
//
// The package runs end-to-end simulations of a multi-stage online service
// co-located with short batch jobs on a cluster, under one of six execution
// techniques: Basic, request redundancy (RED-3, RED-5), request reissue
// (RI-90, RI-99), or PCS itself (monitor → performance predictor →
// greedy component-level scheduler). A minimal session:
//
//	result, err := pcs.Run(pcs.Options{
//		Technique:   pcs.PCS,
//		ArrivalRate: 100, // requests/second
//		Requests:    20000,
//		Seed:        1,
//	})
//	fmt.Printf("avg overall %.1f ms, p99 component %.2f ms\n",
//		result.AvgOverallMs, result.P99ComponentMs)
//
// Lower-level building blocks (the predictor's regressions, the M/G/1
// latency model, the performance matrix and Algorithm 1) are exposed via
// the Predictor and Scheduler helpers in this package for users who want to
// embed PCS-style scheduling in their own systems.
package pcs

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/baseline"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/service"
)

// Technique selects the latency-reduction technique of §VI-A.
type Technique int

const (
	// Basic executes each sub-request once, with no redundancy and no
	// scheduling.
	Basic Technique = iota
	// RED3 replicates every sub-request on 3 component replicas.
	RED3
	// RED5 replicates every sub-request on 5 component replicas.
	RED5
	// RI90 reissues a sub-request after the 90th percentile of its
	// class's expected latency.
	RI90
	// RI99 reissues after the 99th percentile.
	RI99
	// PCS runs Basic execution plus predictive component-level scheduling.
	PCS
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case Basic:
		return "Basic"
	case RED3:
		return "RED-3"
	case RED5:
		return "RED-5"
	case RI90:
		return "RI-90"
	case RI99:
		return "RI-99"
	case PCS:
		return "PCS"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// Techniques lists all six compared techniques in the paper's order.
func Techniques() []Technique {
	return []Technique{Basic, RED3, RED5, RI90, RI99, PCS}
}

// ParseTechnique parses a technique name as printed by Technique.String.
// Matching is case-insensitive and the dash is optional, so "PCS", "red-3"
// and "RI90" all parse. Every CLI accepts technique names through this one
// parser.
func ParseTechnique(s string) (Technique, error) {
	canon := func(v string) string {
		return strings.ToLower(strings.ReplaceAll(strings.TrimSpace(v), "-", ""))
	}
	for _, t := range Techniques() {
		if canon(t.String()) == canon(s) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("pcs: unknown technique %q (want one of Basic, RED-3, RED-5, RI-90, RI-99, PCS)", s)
}

// Scenarios lists the registered scenario names selectable via
// Options.Scenario.
func Scenarios() []string { return scenario.Names() }

// DescribeScenarios renders one "name — description" line per registered
// scenario, for CLI usage text.
func DescribeScenarios() string { return scenario.Describe() }

// ScenarioFlagUsage is the usage string every CLI attaches to its -scenario
// flag: the valid names up front so -h shows the choices at a glance, then
// one description line per scenario.
func ScenarioFlagUsage() string {
	return fmt.Sprintf("deployment scenario, one of: %s\n(empty selects %q)\n%s",
		strings.Join(scenario.Names(), ", "), scenario.Default, scenario.Describe())
}

// Policies lists the registered closed-loop policy names selectable via
// Options.Policy (plus the implicit "none").
func Policies() []string { return policy.Names() }

// DescribePolicies renders one "name — description" line per registered
// policy, for CLI usage text.
func DescribePolicies() string { return policy.Describe() }

// PolicyFlagUsage is the usage string every CLI attaches to its -policy
// flag.
func PolicyFlagUsage() string {
	return fmt.Sprintf("closed-loop policy, one of: %s, or %q\n(empty keeps the scenario's scripted policy, if any; %q disables it)\n%s",
		strings.Join(policy.Names(), ", "), policy.None, policy.None, policy.Describe())
}

// Options configures one simulation run. The zero value of every field
// selects the evaluation default noted on it; deployment and workload
// fields whose default says "scenario default" resolve against the
// selected Scenario.
type Options struct {
	// Technique is the execution technique (default Basic).
	Technique Technique
	// Scenario names the deployment to simulate (default "nutch-search",
	// the paper's own). See Scenarios() for the registered names.
	Scenario string
	// Policy names the closed-loop policy evaluated at PolicyInterval
	// cadence (see Policies() for the registered names). Empty keeps the
	// scenario's scripted policy, if it has one; "none" disables even
	// that.
	Policy string
	// PolicyInterval is the virtual seconds between policy evaluations
	// (default 1, the monitoring cadence). It only matters when a policy
	// is in play.
	PolicyInterval float64
	// Seed drives all randomness; runs are deterministic given a seed.
	Seed int64
	// Nodes is the cluster size (0 selects the scenario default; 30 for
	// nutch-search, the paper's testbed).
	Nodes int
	// SearchComponents is the fan-out of the scenario's dominant stage
	// (0 selects the scenario default; 100 searching components for
	// nutch-search, the paper's Fig. 6 deployment). The remaining stages
	// are sized by the scenario's topology.
	SearchComponents int
	// ArrivalRate is the request arrival rate λ in requests/second
	// (default 100). When Traffic is nil it is the whole workload
	// description — the scalar compat path, which constructs a Poisson
	// source exactly as every release before the traffic redesign did
	// (byte-identical reports, pinned by tests). With a Traffic spec in
	// play it remains the run's nominal intensity: the horizon and
	// steering base, and the fallback rate for spec kinds whose Rate
	// field is 0.
	ArrivalRate float64
	// Traffic, when non-nil, describes the arrival process — trace
	// replay, session populations, bursty MMPP, multi-tenant mixes with
	// admission control — instead of the scalar Poisson λ. It overrides
	// the scenario's scripted traffic, if any. See TrafficSpec for the
	// kinds and docs/traffic.md for the authoring guide.
	Traffic *TrafficSpec
	// Graph, when non-nil, deploys a custom service DAG instead of a
	// registered scenario: the spec is validated and compiled exactly as
	// a built-in DAG scenario's, with the DAG workload defaults around
	// it. Scenario must be empty — a run deploys one service. CLIs fill
	// it from -graph-file; RunSpec from its graph/graphFile fields.
	Graph *GraphSpec
	// Requests is the number of arrivals to generate (default 20000).
	Requests int
	// Shards is the number of worker shards a single simulation fans its
	// window-barrier work across: profiling, performance-matrix
	// construction, monitor sampling and demand ticks — the control-plane
	// cost that grows with cluster size. Results are bit-identical at any
	// shard count; shards move only the wall clock. 0 or 1 runs the
	// sequential path; negative selects all usable cores. Replication
	// runners budget their worker count against Shards so shards ×
	// concurrent replications stays within the machine.
	Shards int
	// Lanes selects the laned data plane: the request path (dispatch,
	// queueing, service, cancellation, completion) runs as a conservative
	// parallel discrete-event system with one affinity class per component
	// instance, partitioned across this many lanes. Cross-class messages
	// pay a 0.2 ms network transit delay (service.LaneTransitDelay) — the
	// manufactured lookahead lanes synchronize on — so laned physics
	// differ from the sequential ones, but reports are byte-identical at
	// ANY lane count (determinism invariant #10): 1 lane is the cheap way
	// to run the laned physics, 8 lanes the fast way. 0 (the default)
	// keeps the sequential data plane and its exact historical reports;
	// negative selects all usable cores. Requires CancelDelaySeconds ≥
	// 2×LaneTransitDelay (or cancellation disabled).
	Lanes int
	// WarmupFraction of the run's duration is excluded from metrics
	// (default 0.15; -1 disables warmup exclusion entirely).
	WarmupFraction float64
	// DrainSeconds extends the horizon past the last arrival so in-flight
	// requests can finish (default 10; -1 ends the run at the last
	// arrival).
	DrainSeconds float64

	// BatchConcurrency is the average number of co-located batch jobs per
	// node (0 selects the scenario default; 2 for nutch-search).
	BatchConcurrency float64
	// MinInputMB/MaxInputMB bound batch-job input sizes (0 selects the
	// scenario defaults; 1 MB and 10 GB for nutch-search, the paper's
	// Fig. 6 sweep).
	MinInputMB, MaxInputMB float64
	// TwoPhaseJobs controls map→reduce demand shifts inside batch jobs:
	// 0 keeps the scenario default, positive forces them on, negative
	// (-1) forces them off.
	TwoPhaseJobs int

	// CancelDelaySeconds is the redundancy cancellation-message delay
	// (default 3 ms — network plus coordination latency on the paper's
	// 1 GbE/Storm testbed; replicas that start within this window of each
	// other all run to completion, §VI-C's "cancellation messages both in
	// flight" effect; -1 makes cancellation instantaneous).
	CancelDelaySeconds float64

	// SchedulingInterval is PCS's interval in seconds (default 5; see
	// DESIGN.md on time compression vs the paper's 600 s — batch-job
	// lifetimes are compressed by the same factor).
	SchedulingInterval float64
	// EpsilonSeconds is the migration threshold ε: migrations predicted to
	// reduce overall latency by less are throttled. The paper sets ε to
	// offset its migration cost (5 ms against a 100 ms acceptable latency,
	// with Storm redeployments). This simulation's time scale is
	// compressed ~20× and migrations are cheap (components keep serving),
	// so the default is 0.000005 (0.005 ms); the threshold ablation bench
	// sweeps it.
	EpsilonSeconds float64
	// MaxMigrationsPerInterval caps migrations per scheduling round
	// (default 20, the upper end of the 10–20 components the paper reports
	// migrating per interval). 0 keeps the default; -1 removes the cap.
	MaxMigrationsPerInterval int
	// RegressionDegree is the polynomial degree of the per-resource
	// regressions used by the runtime predictor (default 1: linear fits
	// stay monotone when the scheduler extrapolates beyond the profiled
	// contention range; the Fig. 5 accuracy experiment uses degree 2
	// in-range).
	RegressionDegree int
	// QueueModel selects the predictor's queueing formula: "mg1"
	// (default), "mm1", or "none".
	QueueModel string
	// TrainingMixes is the number of random co-runner backgrounds profiled
	// when training PCS's models (default 150).
	TrainingMixes int
	// ProfilingProbes is the number of probe requests per training sample
	// (default 300).
	ProfilingProbes int

	// MonitorNoiseSigma is the relative measurement noise of the monitor
	// (default 0.02).
	MonitorNoiseSigma float64
}

// withDefaults fills the scenario-independent defaults. For the fields
// whose zero value would otherwise make "disable" unreachable —
// WarmupFraction, DrainSeconds, CancelDelaySeconds — any negative value is
// an explicit "off" (mirroring MaxMigrationsPerInterval: 0 keeps the
// default, -1 disables).
func (o Options) withDefaults() Options {
	if o.ArrivalRate <= 0 {
		o.ArrivalRate = 100
	}
	if o.PolicyInterval <= 0 {
		o.PolicyInterval = 1
	}
	if o.Shards < 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	} else if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Lanes < 0 {
		o.Lanes = runtime.GOMAXPROCS(0)
		if o.Lanes < 1 {
			o.Lanes = 1
		}
	}
	if o.Requests <= 0 {
		o.Requests = 20000
	}
	if o.WarmupFraction < 0 {
		o.WarmupFraction = 0
	} else if o.WarmupFraction == 0 || o.WarmupFraction >= 1 {
		o.WarmupFraction = 0.15
	}
	if o.DrainSeconds < 0 {
		o.DrainSeconds = 0
	} else if o.DrainSeconds == 0 {
		o.DrainSeconds = 10
	}
	if o.CancelDelaySeconds < 0 {
		o.CancelDelaySeconds = 0
	} else if o.CancelDelaySeconds == 0 {
		o.CancelDelaySeconds = 0.003
	}
	if o.SchedulingInterval <= 0 {
		o.SchedulingInterval = 5
	}
	if o.EpsilonSeconds <= 0 {
		o.EpsilonSeconds = 0.000005
	}
	if o.MaxMigrationsPerInterval == 0 {
		o.MaxMigrationsPerInterval = 20
	} else if o.MaxMigrationsPerInterval < 0 {
		o.MaxMigrationsPerInterval = 0 // scheduler treats 0 as unlimited
	}
	if o.RegressionDegree <= 0 {
		o.RegressionDegree = 1
	}
	if o.QueueModel == "" {
		o.QueueModel = "mg1"
	}
	if o.TrainingMixes <= 0 {
		o.TrainingMixes = 150
	}
	if o.ProfilingProbes <= 0 {
		o.ProfilingProbes = 300
	}
	if o.MonitorNoiseSigma <= 0 {
		o.MonitorNoiseSigma = 0.02
	}
	return o
}

// applyScenario fills the deployment and workload fields the selected
// scenario defaults: cluster size and the batch-interference knobs.
// Explicitly set fields win over the scenario.
func (o Options) applyScenario(sc scenario.Scenario) Options {
	o.Scenario = sc.Name
	if o.Nodes <= 0 {
		o.Nodes = sc.Nodes
	}
	if o.BatchConcurrency <= 0 {
		o.BatchConcurrency = sc.Workload.BatchConcurrency
	}
	if o.MinInputMB <= 0 {
		o.MinInputMB = sc.Workload.MinInputMB
	}
	if o.MaxInputMB <= o.MinInputMB {
		o.MaxInputMB = sc.Workload.MaxInputMB
	}
	if o.TwoPhaseJobs == 0 {
		if sc.Workload.TwoPhaseJobs {
			o.TwoPhaseJobs = 1
		} else {
			o.TwoPhaseJobs = -1
		}
	}
	return o
}

// Result reports one run. Latencies are in milliseconds.
type Result struct {
	Technique   string
	Scenario    string
	ArrivalRate float64
	// Policy names the closed-loop policy the run evaluated ("" when none
	// was in play) and PolicyActions counts the actuations it applied.
	Policy        string
	PolicyActions int

	// AvgOverallMs is the average overall service latency (the paper's
	// second metric).
	AvgOverallMs float64
	// P99ComponentMs is the 99th-percentile component latency (the
	// paper's first metric).
	P99ComponentMs float64

	// Distribution detail.
	OverallP50Ms, OverallP99Ms, OverallMaxMs float64
	ComponentMeanMs, ComponentP50Ms          float64
	StageMeanMs                              []float64

	// Run accounting.
	Arrivals, Completed int
	Migrations          int
	SchedulingIntervals int
	BatchJobsStarted    int
	VirtualSeconds      float64

	// Failed and TimedOut count requests that terminated unsuccessfully —
	// only service-DAG scenarios can produce them (breaker fast-fails and
	// exhausted retry budgets); linear scenarios always complete, so the
	// fields are omitted from JSON when zero and pre-DAG reports keep
	// their exact encoding. Conservation holds on every run:
	// Arrivals = Completed + Failed + TimedOut + still-in-flight.
	Failed   int `json:",omitempty"`
	TimedOut int `json:",omitempty"`

	// Traffic names the arrival source when the run was driven by a
	// TrafficSpec (e.g. "trace:arrivals.ndjson", "sessions:400",
	// "tenants:search+feed"); empty for the scalar Poisson path — these
	// trailing fields are omitted from JSON when zero so scalar-run
	// reports keep their exact pre-redesign encoding.
	Traffic string `json:",omitempty"`
	// AdmissionDrops counts arrivals denied by per-tenant token buckets.
	AdmissionDrops int `json:",omitempty"`
	// Tenants breaks request accounting and latency down by tenant,
	// sorted by name; nil for untenanted traffic.
	Tenants []TenantResult `json:",omitempty"`
	// DataPlane names the request path's execution mode: "laned" when the
	// run used the conservative parallel data plane (Options.Lanes ≥ 1),
	// empty for the sequential engine loop. The value depends only on the
	// mode — never on the lane count — so it never breaks byte-identity
	// across lane counts, and sequential reports keep their exact
	// pre-lane encoding.
	DataPlane string `json:",omitempty"`
	// Graph carries the failure-semantics counters of a service-DAG run
	// (retries, breaker activity, storage operations, async calls); nil —
	// and absent from JSON — for linear scenarios.
	Graph *GraphCounters `json:",omitempty"`
}

// GraphCounters are the failure-semantics counters a service-DAG run
// accumulates; Result.Graph reports them for scenarios built from a
// graph.Spec.
type GraphCounters struct {
	// Retries counts retry attempts issued after visit failures (timeouts
	// and breaker fast-fails).
	Retries int `json:",omitempty"`
	// BreakerTrips counts circuit transitions from closed to open;
	// BreakerFastFails counts calls an open circuit rejected without
	// dispatching work.
	BreakerTrips     int `json:",omitempty"`
	BreakerFastFails int `json:",omitempty"`
	// CacheHits, CacheMisses and StorageWrites count storage-node
	// operations by kind.
	CacheHits     int `json:",omitempty"`
	CacheMisses   int `json:",omitempty"`
	StorageWrites int `json:",omitempty"`
	// AsyncCalls counts fire-and-forget edge activations; AsyncFailures
	// counts async call trees that died after retries (swallowed — they
	// never fail the request).
	AsyncCalls    int `json:",omitempty"`
	AsyncFailures int `json:",omitempty"`
}

// Run executes one simulation to its horizon and reports its latency
// metrics. It is a thin wrapper over the steppable Simulation:
// NewSimulation followed by Finish, with nothing in between. Callers who
// want to observe or steer a run mid-flight use Simulation directly.
func Run(opts Options) (Result, error) {
	s, err := NewSimulation(opts)
	if err != nil {
		return Result{}, err
	}
	return s.Finish(), nil
}

func policyFor(o Options) (service.Policy, error) {
	switch o.Technique {
	case Basic, PCS:
		return baseline.Basic{}, nil
	case RED3:
		return baseline.NewRedundancy(3, o.CancelDelaySeconds), nil
	case RED5:
		return baseline.NewRedundancy(5, o.CancelDelaySeconds), nil
	case RI90:
		return baseline.NewReissue(90), nil
	case RI99:
		return baseline.NewReissue(99), nil
	default:
		return nil, fmt.Errorf("pcs: unknown technique %d", int(o.Technique))
	}
}
