// Package pcs is the public API of the PCS reproduction: predictive
// component-level scheduling for reducing tail latency in cloud online
// services (Han et al., ICPP 2015).
//
// The package runs end-to-end simulations of a multi-stage online service
// co-located with short batch jobs on a cluster, under one of six execution
// techniques: Basic, request redundancy (RED-3, RED-5), request reissue
// (RI-90, RI-99), or PCS itself (monitor → performance predictor →
// greedy component-level scheduler). A minimal session:
//
//	result, err := pcs.Run(pcs.Options{
//		Technique:   pcs.PCS,
//		ArrivalRate: 100, // requests/second
//		Requests:    20000,
//		Seed:        1,
//	})
//	fmt.Printf("avg overall %.1f ms, p99 component %.2f ms\n",
//		result.AvgOverallMs, result.P99ComponentMs)
//
// Lower-level building blocks (the predictor's regressions, the M/G/1
// latency model, the performance matrix and Algorithm 1) are exposed via
// the Predictor and Scheduler helpers in this package for users who want to
// embed PCS-style scheduling in their own systems.
package pcs

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/profiling"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Technique selects the latency-reduction technique of §VI-A.
type Technique int

const (
	// Basic executes each sub-request once, with no redundancy and no
	// scheduling.
	Basic Technique = iota
	// RED3 replicates every sub-request on 3 component replicas.
	RED3
	// RED5 replicates every sub-request on 5 component replicas.
	RED5
	// RI90 reissues a sub-request after the 90th percentile of its
	// class's expected latency.
	RI90
	// RI99 reissues after the 99th percentile.
	RI99
	// PCS runs Basic execution plus predictive component-level scheduling.
	PCS
)

// String returns the paper's name for the technique.
func (t Technique) String() string {
	switch t {
	case Basic:
		return "Basic"
	case RED3:
		return "RED-3"
	case RED5:
		return "RED-5"
	case RI90:
		return "RI-90"
	case RI99:
		return "RI-99"
	case PCS:
		return "PCS"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// Techniques lists all six compared techniques in the paper's order.
func Techniques() []Technique {
	return []Technique{Basic, RED3, RED5, RI90, RI99, PCS}
}

// Options configures one simulation run. The zero value of every field
// selects the evaluation default noted on it.
type Options struct {
	// Technique is the execution technique (default Basic).
	Technique Technique
	// Seed drives all randomness; runs are deterministic given a seed.
	Seed int64
	// Nodes is the cluster size (default 30, the paper's testbed).
	Nodes int
	// SearchComponents is the fan-out of the searching stage (default 100,
	// the paper's Fig. 6 deployment). The segmenting and aggregating
	// stages are sized by the Nutch topology.
	SearchComponents int
	// ArrivalRate is the request arrival rate λ in requests/second
	// (default 100).
	ArrivalRate float64
	// Requests is the number of arrivals to generate (default 20000).
	Requests int
	// WarmupFraction of the run's duration is excluded from metrics
	// (default 0.15).
	WarmupFraction float64
	// DrainSeconds extends the horizon past the last arrival so in-flight
	// requests can finish (default 10).
	DrainSeconds float64

	// BatchConcurrency is the average number of co-located batch jobs per
	// node (default 2).
	BatchConcurrency float64
	// MinInputMB/MaxInputMB bound batch-job input sizes (defaults 1 MB and
	// 10 GB, the paper's Fig. 6 sweep).
	MinInputMB, MaxInputMB float64
	// TwoPhaseJobs enables map→reduce demand shifts inside batch jobs.
	TwoPhaseJobs bool

	// CancelDelaySeconds is the redundancy cancellation-message delay
	// (default 3 ms — network plus coordination latency on the paper's
	// 1 GbE/Storm testbed; replicas that start within this window of each
	// other all run to completion, §VI-C's "cancellation messages both in
	// flight" effect).
	CancelDelaySeconds float64

	// SchedulingInterval is PCS's interval in seconds (default 5; see
	// DESIGN.md on time compression vs the paper's 600 s — batch-job
	// lifetimes are compressed by the same factor).
	SchedulingInterval float64
	// EpsilonSeconds is the migration threshold ε: migrations predicted to
	// reduce overall latency by less are throttled. The paper sets ε to
	// offset its migration cost (5 ms against a 100 ms acceptable latency,
	// with Storm redeployments). This simulation's time scale is
	// compressed ~20× and migrations are cheap (components keep serving),
	// so the default is 0.000005 (0.005 ms); the threshold ablation bench
	// sweeps it.
	EpsilonSeconds float64
	// MaxMigrationsPerInterval caps migrations per scheduling round
	// (default 20, the upper end of the 10–20 components the paper reports
	// migrating per interval). 0 keeps the default; -1 removes the cap.
	MaxMigrationsPerInterval int
	// RegressionDegree is the polynomial degree of the per-resource
	// regressions used by the runtime predictor (default 1: linear fits
	// stay monotone when the scheduler extrapolates beyond the profiled
	// contention range; the Fig. 5 accuracy experiment uses degree 2
	// in-range).
	RegressionDegree int
	// QueueModel selects the predictor's queueing formula: "mg1"
	// (default), "mm1", or "none".
	QueueModel string
	// TrainingMixes is the number of random co-runner backgrounds profiled
	// when training PCS's models (default 150).
	TrainingMixes int
	// ProfilingProbes is the number of probe requests per training sample
	// (default 300).
	ProfilingProbes int

	// MonitorNoiseSigma is the relative measurement noise of the monitor
	// (default 0.02).
	MonitorNoiseSigma float64
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 30
	}
	if o.SearchComponents <= 0 {
		o.SearchComponents = 100
	}
	if o.ArrivalRate <= 0 {
		o.ArrivalRate = 100
	}
	if o.Requests <= 0 {
		o.Requests = 20000
	}
	if o.WarmupFraction <= 0 || o.WarmupFraction >= 1 {
		o.WarmupFraction = 0.15
	}
	if o.DrainSeconds <= 0 {
		o.DrainSeconds = 10
	}
	if o.BatchConcurrency <= 0 {
		o.BatchConcurrency = 2
	}
	if o.MinInputMB <= 0 {
		o.MinInputMB = 1
	}
	if o.MaxInputMB <= o.MinInputMB {
		o.MaxInputMB = 10 * 1024
	}
	if o.CancelDelaySeconds <= 0 {
		o.CancelDelaySeconds = 0.003
	}
	if o.SchedulingInterval <= 0 {
		o.SchedulingInterval = 5
	}
	if o.EpsilonSeconds <= 0 {
		o.EpsilonSeconds = 0.000005
	}
	if o.MaxMigrationsPerInterval == 0 {
		o.MaxMigrationsPerInterval = 20
	} else if o.MaxMigrationsPerInterval < 0 {
		o.MaxMigrationsPerInterval = 0 // scheduler treats 0 as unlimited
	}
	if o.RegressionDegree <= 0 {
		o.RegressionDegree = 1
	}
	if o.QueueModel == "" {
		o.QueueModel = "mg1"
	}
	if o.TrainingMixes <= 0 {
		o.TrainingMixes = 150
	}
	if o.ProfilingProbes <= 0 {
		o.ProfilingProbes = 300
	}
	if o.MonitorNoiseSigma <= 0 {
		o.MonitorNoiseSigma = 0.02
	}
	return o
}

// Result reports one run. Latencies are in milliseconds.
type Result struct {
	Technique   string
	ArrivalRate float64

	// AvgOverallMs is the average overall service latency (the paper's
	// second metric).
	AvgOverallMs float64
	// P99ComponentMs is the 99th-percentile component latency (the
	// paper's first metric).
	P99ComponentMs float64

	// Distribution detail.
	OverallP50Ms, OverallP99Ms, OverallMaxMs float64
	ComponentMeanMs, ComponentP50Ms          float64
	StageMeanMs                              []float64

	// Run accounting.
	Arrivals, Completed int
	Migrations          int
	SchedulingIntervals int
	BatchJobsStarted    int
	VirtualSeconds      float64
}

// Run executes one simulation and reports its latency metrics.
func Run(opts Options) (Result, error) {
	o := opts.withDefaults()
	root := xrand.New(o.Seed ^ 0x5ca1ab1e)

	engine := sim.NewEngine()
	cl := cluster.New(o.Nodes, cluster.DefaultCapacity())

	gen := workload.NewGenerator(engine, cl, root.Fork(), workload.GeneratorConfig{
		TargetConcurrency: o.BatchConcurrency,
		MinInputMB:        o.MinInputMB,
		MaxInputMB:        o.MaxInputMB,
		TwoPhase:          o.TwoPhaseJobs,
	})

	policy, err := policyFor(o)
	if err != nil {
		return Result{}, err
	}

	duration := float64(o.Requests) / o.ArrivalRate
	topo := service.NutchTopology(o.SearchComponents)
	svc, err := service.New(engine, cl, root.Fork(), policy, service.Config{
		Topology: topo,
		Warmup:   duration * o.WarmupFraction,
	})
	if err != nil {
		return Result{}, err
	}

	mon := monitor.New(engine, cl, root.Fork(), monitor.Config{
		NoiseSigma: o.MonitorNoiseSigma,
	})
	svc.OnArrival = mon.RecordArrival

	var ctrl *scheduler.Controller
	if o.Technique == PCS {
		queue, err := queueModelFor(o.QueueModel)
		if err != nil {
			return Result{}, err
		}
		// Training backgrounds mirror the paper's profiling: single
		// co-runners swept across kinds and input sizes (strongly
		// informative per-resource samples), plus random multi-job mixes
		// for coverage of co-location.
		backgrounds := workload.KindSizeGrid(workload.JobKinds(),
			workload.LinearSizes(12, o.MinInputMB, o.MaxInputMB))
		backgrounds = append(backgrounds,
			workload.TrainingMixes(root.Fork(), o.TrainingMixes, 3, o.MinInputMB, o.MaxInputMB)...)
		models, err := profiling.TrainStageModels(topo, svc.Law(), backgrounds, profiling.Config{
			Probes:            o.ProfilingProbes,
			MonitorNoiseSigma: o.MonitorNoiseSigma,
			Degree:            o.RegressionDegree,
		}, root.Fork())
		if err != nil {
			return Result{}, err
		}
		ctrl = scheduler.NewController(svc, mon, models, root.Fork(), scheduler.ControllerConfig{
			Interval: o.SchedulingInterval,
			Scheduler: scheduler.Config{
				Epsilon:       o.EpsilonSeconds,
				MaxMigrations: o.MaxMigrationsPerInterval,
			},
			Queue:          queue,
			FallbackLambda: o.ArrivalRate,
		})
	}

	// Start the world: batch interference, monitoring, scheduling,
	// arrivals — then run to the horizon.
	gen.Start()
	mon.Start()
	if ctrl != nil {
		ctrl.Start()
	}
	svc.StartArrivals(o.ArrivalRate, o.Requests)
	horizon := duration + o.DrainSeconds
	engine.Run(horizon)

	rep := svc.Collector().Report()
	res := Result{
		Technique:        o.Technique.String(),
		ArrivalRate:      o.ArrivalRate,
		AvgOverallMs:     rep.AvgOverallMs,
		P99ComponentMs:   rep.P99ComponentMs,
		OverallP50Ms:     rep.Overall.P50,
		OverallP99Ms:     rep.Overall.P99,
		OverallMaxMs:     rep.Overall.Max,
		ComponentMeanMs:  rep.Component.Mean,
		ComponentP50Ms:   rep.Component.P50,
		StageMeanMs:      rep.StageMeanMs,
		Arrivals:         svc.Arrivals(),
		Completed:        svc.Completed(),
		Migrations:       svc.Migrations(),
		BatchJobsStarted: gen.Started(),
		VirtualSeconds:   engine.Now(),
	}
	if ctrl != nil {
		res.SchedulingIntervals = ctrl.Intervals
	}
	return res, nil
}

func policyFor(o Options) (service.Policy, error) {
	switch o.Technique {
	case Basic, PCS:
		return baseline.Basic{}, nil
	case RED3:
		return baseline.NewRedundancy(3, o.CancelDelaySeconds), nil
	case RED5:
		return baseline.NewRedundancy(5, o.CancelDelaySeconds), nil
	case RI90:
		return baseline.NewReissue(90), nil
	case RI99:
		return baseline.NewReissue(99), nil
	default:
		return nil, fmt.Errorf("pcs: unknown technique %d", int(o.Technique))
	}
}
