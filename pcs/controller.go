package pcs

import (
	"fmt"
	"math"
)

// Controller steers a running Simulation at scheduled virtual times: change
// the arrival rate, fail and restore nodes, swap the execution technique.
// Every method schedules a deterministic action on the simulation's own
// event queue, so a steered run is exactly as reproducible as an unsteered
// one — same Options, same schedule, same seed ⇒ bit-identical Result, for
// any way of slicing the run.
//
// Actions registered at the same virtual time fire in registration order
// (the engine's FIFO tie-break). Scheduling into the past is an error:
// steering cannot rewrite history.
//
// Scenario-scripted steering (scenario.Steering — the node-failure and
// diurnal-load scenarios) goes through this same API when the world is
// built; Controller simply exposes it to callers who want to write their
// own schedules.
type Controller struct {
	sim *Simulation
}

// Controller returns the simulation's steering interface.
func (s *Simulation) Controller() *Controller { return &Controller{sim: s} }

// at validates an absolute virtual action time.
func (c *Controller) at(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("pcs: steering time must be finite")
	}
	if now := c.sim.engine.Now(); t < now {
		return fmt.Errorf("pcs: steering time %.3f is before now %.3f", t, now)
	}
	return nil
}

// node validates a node index against the simulation's cluster.
func (c *Controller) node(id int) error {
	if id < 0 || id >= c.sim.cluster.NumNodes() {
		return fmt.Errorf("pcs: node %d out of range [0, %d)", id, c.sim.cluster.NumNodes())
	}
	return nil
}

// FailNodeAt fails a node at virtual time t. The failure model is
// fail-slow: the node's observable contention pins to full capacity, so
// every component instance and batch job hosted there runs at the
// interference law's saturation multiplier, queues grow, and the monitor
// sees a node worth migrating away from. Requests are not dropped.
func (c *Controller) FailNodeAt(t float64, node int) error {
	if err := c.at(t); err != nil {
		return err
	}
	if err := c.node(node); err != nil {
		return err
	}
	cl := c.sim.cluster
	c.sim.engine.At(t, func(float64) { cl.Node(node).Fail() })
	return nil
}

// RestoreNodeAt restores a failed node at virtual time t. Restoring a
// healthy node is a no-op.
func (c *Controller) RestoreNodeAt(t float64, node int) error {
	if err := c.at(t); err != nil {
		return err
	}
	if err := c.node(node); err != nil {
		return err
	}
	cl := c.sim.cluster
	c.sim.engine.At(t, func(float64) { cl.Node(node).Restore() })
	return nil
}

// SetArrivalRateAt changes the arrival rate λ at virtual time t. The change
// takes effect after the next already-scheduled arrival (one interarrival
// draw is always in flight).
func (c *Controller) SetArrivalRateAt(t, rate float64) error {
	if err := c.at(t); err != nil {
		return err
	}
	if rate <= 0 {
		return fmt.Errorf("pcs: arrival rate must be positive, got %g", rate)
	}
	svc := c.sim.svc
	c.sim.engine.At(t, func(float64) { svc.SetArrivalRate(rate) })
	return nil
}

// ModulateArrivalRate modulates λ sinusoidally around the configured base
// rate from now on: λ(t) = base·(1 + amplitude·sin(2πt/period)), applied as
// steps discrete rate updates per period (steps == 0 selects 32). Amplitude
// must be in (0, 1) so λ stays positive. The modulation runs for the rest
// of the simulation; it is what the diurnal-load scenario registers.
func (c *Controller) ModulateArrivalRate(period, amplitude float64, steps int) error {
	if period <= 0 {
		return fmt.Errorf("pcs: modulation period must be positive, got %g", period)
	}
	if amplitude <= 0 || amplitude >= 1 {
		return fmt.Errorf("pcs: modulation amplitude %g outside (0, 1)", amplitude)
	}
	if steps < 0 {
		return fmt.Errorf("pcs: negative modulation steps")
	}
	if steps == 0 {
		steps = 32
	}
	base := c.sim.opts.ArrivalRate
	svc := c.sim.svc
	c.sim.engine.Every(period/float64(steps), func(now float64) {
		svc.SetArrivalRate(base * (1 + amplitude*math.Sin(2*math.Pi*now/period)))
	})
	return nil
}

// SetReplicasAt scales the deployment at virtual time t: from then on,
// dispatch spreads new work over the first n replicas of every component.
// Scaling up places any missing instances at their deterministic
// deployment positions ((home node + replica) mod cluster size); scaling
// down parks the surplus — parked replicas drain what they already queued,
// then idle at the VM background footprint until a later scale-up
// reactivates them. Validation is synchronous: n must be at least 1, at
// least the current dispatch policy's replica need (a RED-3 world cannot
// drop below 3), and at most the cluster size (a component's replicas
// never share a node). If a later-registered action invalidates the scale
// before it fires (a technique swap demanding more replicas), the scale
// is dropped at fire time rather than corrupting the deployment.
func (c *Controller) SetReplicasAt(t float64, n int) error {
	if err := c.at(t); err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("pcs: active replicas must be at least 1, got %d", n)
	}
	if k := c.sim.cluster.NumNodes(); n > k {
		return fmt.Errorf("pcs: %d replicas exceed cluster capacity (%d nodes)", n, k)
	}
	if r := c.sim.svc.Policy().Replicas(); n < r {
		return fmt.Errorf("pcs: dispatch policy %s needs %d replicas, cannot scale to %d",
			c.sim.svc.Policy().Name(), r, n)
	}
	svc := c.sim.svc
	c.sim.engine.At(t, func(float64) { _ = svc.SetActiveReplicas(n) })
	return nil
}

// SetWorkFactorAt sets the brownout actuator at virtual time t: executions
// started after t draw their service time from base·f instead of the
// stage's full nominal work. f is a fidelity fraction in (0, 1]; 1
// restores full service.
func (c *Controller) SetWorkFactorAt(t, f float64) error {
	if err := c.at(t); err != nil {
		return err
	}
	if f <= 0 || f > 1 {
		return fmt.Errorf("pcs: work factor must be in (0, 1], got %g", f)
	}
	svc := c.sim.svc
	c.sim.engine.At(t, func(float64) { _ = svc.SetWorkFactor(f) })
	return nil
}

// SetAdmissionFactorAt sets the admission throttle at virtual time t:
// from then on the arrival process runs at offered λ × f. f is a fraction
// in (0, 1]; 1 admits everything. Because the throttle multiplies the
// offered rate, it composes with SetArrivalRateAt steps and diurnal
// modulation instead of overwriting their schedule.
func (c *Controller) SetAdmissionFactorAt(t, f float64) error {
	if err := c.at(t); err != nil {
		return err
	}
	if f <= 0 || f > 1 {
		return fmt.Errorf("pcs: admission factor must be in (0, 1], got %g", f)
	}
	svc := c.sim.svc
	c.sim.engine.At(t, func(float64) { _ = svc.SetAdmissionFactor(f) })
	return nil
}

// SetTechniqueAt swaps the execution technique's dispatch policy at virtual
// time t. Sub-requests already in flight finish under the old policy; new
// dispatches use the new one. The swap is validated now against the
// currently active replica count: the new technique may not need more
// replicas than are active (RED-3 needs 3, reissue 2, Basic/PCS 1 — a
// Basic world cannot become RED-3 mid-run unless SetReplicasAt scaled it
// up first, and a RED-3 world can always fall back to Basic). As with
// SetReplicasAt, if a later-registered action invalidates the swap
// before it fires — a scale-down below the new technique's need — the
// swap is dropped at fire time rather than corrupting the deployment.
//
// Swapping to PCS selects the Basic dispatch policy, exactly as a PCS run
// does; it does not conjure a trained scheduler — only a simulation built
// with Options.Technique == PCS has one, and that scheduler keeps running
// across swaps. Result.Technique continues to report the configured
// technique, not the swap history.
func (c *Controller) SetTechniqueAt(t float64, tech Technique) error {
	if err := c.at(t); err != nil {
		return err
	}
	policy, err := policyFor(optionsForTechnique(c.sim.opts, tech))
	if err != nil {
		return err
	}
	if r := policy.Replicas(); r > c.sim.svc.ActiveReplicas() {
		return fmt.Errorf("pcs: cannot swap to %s at t=%.3f: needs %d replicas, deployment has %d active",
			tech, t, r, c.sim.svc.ActiveReplicas())
	}
	svc := c.sim.svc
	c.sim.engine.At(t, func(float64) { _ = svc.SetPolicy(policy) })
	return nil
}

// optionsForTechnique returns opts with the technique replaced — the shape
// policyFor consumes.
func optionsForTechnique(o Options, tech Technique) Options {
	o.Technique = tech
	return o
}
