package pcs

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/scenario"
)

// PolicyAction is one actuation a closed-loop policy applied to a running
// simulation: when it fired, which verb, its numeric argument, and the
// policy's stated reason. The live dashboard annotates the run with these
// and the experiment driver reports their counts.
type PolicyAction struct {
	// T is the virtual time the action was applied.
	T float64 `json:"t"`
	// Kind is the actuation verb ("set-replicas", "set-work-factor",
	// "set-admission-factor").
	Kind string `json:"kind"`
	// Value is the verb's numeric argument (target replicas, work factor,
	// or admission factor).
	Value float64 `json:"value"`
	// Reason is the policy's explanation of the decision.
	Reason string `json:"reason"`
}

// PolicyName reports the name of the closed-loop policy driving this run,
// "" when none is in play.
func (s *Simulation) PolicyName() string {
	if s.pol == nil {
		return ""
	}
	return s.pol.Name()
}

// PolicyLog returns the actions the run's policy has applied so far, in
// application order. The returned slice is the simulation's own log:
// observe it, don't mutate it.
func (s *Simulation) PolicyLog() []PolicyAction { return s.policyLog }

// resolvePolicy turns the run's policy selection into a fresh policy
// instance: Options.Policy names a registered policy ("none" disables,
// empty defers to the scenario), and the scenario may script a spec of its
// own. Every simulation builds its own instance — policies are stateful,
// and sharing one across replications would break replay determinism.
func resolvePolicy(name string, sc scenario.Scenario) (policy.Policy, error) {
	spec := sc.Policy
	if name != "" {
		named, ok, err := policy.Get(name)
		if err != nil {
			return nil, fmt.Errorf("pcs: %w", err)
		}
		if !ok { // explicit "none" overrides the scenario's script
			return nil, nil
		}
		spec = &named
	}
	if spec == nil {
		return nil, nil
	}
	pol, err := spec.New()
	if err != nil {
		return nil, fmt.Errorf("pcs: %w", err)
	}
	return pol, nil
}

// startPolicy schedules the policy evaluation ticker. Evaluation is an
// ordinary engine event at a fixed cadence, so decisions bind at fixed
// virtual times regardless of how the caller slices the run — a policy-on
// run inherits the engine's slicing invariance instead of depending on
// when observers happen to look (the sampling path stays purely
// observational).
func (s *Simulation) startPolicy() {
	if s.pol == nil {
		return
	}
	s.engine.Every(s.opts.PolicyInterval, s.evalPolicy)
}

// evalPolicy is one closed-loop evaluation: freeze an Observation from the
// current snapshot, let the policy decide, apply its actions immediately
// (the decision time is the binding time), and log what was applied.
// Actions the actuators reject — a scale conflicting with the current
// dispatch policy, a rate on a world whose arrivals ended — are dropped,
// not fatal: a policy is advisory, the actuation surface owns validity.
func (s *Simulation) evalPolicy(now float64) {
	snap := s.Snapshot()
	obs := policy.Observation{
		Now:                 snap.Now,
		Horizon:             snap.Horizon,
		ArrivalRate:         snap.AdmittedRate,
		OfferedArrivalRate:  s.svc.OfferedArrivalRate(),
		BaseArrivalRate:     s.opts.ArrivalRate,
		AdmissionFactor:     s.svc.AdmissionFactor(),
		AdmissionDrops:      snap.AdmissionDrops,
		Arrivals:            snap.Arrivals,
		Completed:           snap.Completed,
		InFlight:            snap.InFlight,
		QueuedExecutions:    snap.QueuedExecutions,
		BusyInstances:       snap.BusyInstances,
		ActiveInstances:     s.svc.ActiveInstanceCount(),
		MeanCoreUtilization: snap.MeanCoreUtilization,
		MaxCoreUtilization:  snap.MaxCoreUtilization,
		FailedNodes:         snap.FailedNodes,
		AvgOverallMs:        snap.AvgOverallMs,
		P99ComponentMs:      snap.P99ComponentMs,
		ActiveReplicas:      snap.ActiveReplicas,
		MinReplicas:         s.svc.Policy().Replicas(),
		MaxReplicas:         s.cluster.NumNodes(),
		// Basic/PCS dispatch (replica need 1) picks the least-loaded
		// active replica; redundancy/reissue fan to a fixed set, so
		// scaling cannot move load for them.
		DispatchSpreads: s.svc.Policy().Replicas() == 1,
		WorkFactor:      snap.WorkFactor,
	}
	for _, a := range s.pol.Decide(obs) {
		var err error
		switch a.Kind {
		case policy.SetReplicas:
			err = s.svc.SetActiveReplicas(a.Replicas)
		case policy.SetWorkFactor:
			err = s.svc.SetWorkFactor(a.WorkFactor)
		case policy.SetAdmissionFactor:
			err = s.svc.SetAdmissionFactor(a.AdmissionFactor)
		default:
			continue
		}
		if err != nil {
			continue
		}
		s.policyLog = append(s.policyLog, PolicyAction{
			T: now, Kind: a.Kind.String(), Value: a.Value(), Reason: a.Reason,
		})
	}
}
