package pcs

import (
	"fmt"
	"io"
	"math"

	"repro/internal/runner"
	"repro/internal/xrand"
)

// CITarget is RunUntil's stopping rule: replicate until the 95 %
// confidence intervals of the headline metrics are tight enough, within a
// hard replication cap.
type CITarget struct {
	// RelHalfWidth is the target relative CI95 half-width, e.g. 0.05 for
	// ±5 %: replication stops once CI95/mean ≤ RelHalfWidth for both
	// AvgOverallMs and P99ComponentMs. Required.
	RelHalfWidth float64
	// MinReplications is the floor before the first convergence check
	// (default 5; at least 3, below which the t-interval is meaningless).
	MinReplications int
	// MaxReplications is the hard cap (default 64). If the target is not
	// met by then, the aggregate is returned with Converged == false.
	MaxReplications int
	// BatchSize is how many replications run between convergence checks
	// (default 4). It is a fixed count, not "one batch per core", so the
	// stopping point — and therefore the aggregate — is identical on any
	// machine.
	BatchSize int
	// Workers bounds each batch's worker pool (0 = all cores). It affects
	// wall-clock time only, never the aggregate.
	Workers int
	// Sink, when non-nil, receives every replication's Result as one
	// NDJSON line (the StreamedRun format, in replication order) as
	// batches complete, so an adaptive run leaves the same on-disk trail
	// as RunManyStream. Writing is observationally free: it changes
	// neither the stopping point nor the aggregate.
	Sink io.Writer
}

func (t CITarget) withDefaults() CITarget {
	if t.MinReplications <= 0 {
		t.MinReplications = 5
	}
	if t.MinReplications < 3 {
		t.MinReplications = 3
	}
	if t.MaxReplications <= 0 {
		t.MaxReplications = 64
	}
	// The cap is the hard limit: an explicit MaxReplications below the
	// minimum lowers the minimum, never the other way around.
	if t.MinReplications > t.MaxReplications {
		t.MinReplications = t.MaxReplications
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 4
	}
	return t
}

// converged reports whether both headline metrics meet the relative CI
// target. Fewer than two replications never converge: a single sample has
// no interval.
func (t CITarget) converged(agg Aggregate) bool {
	if agg.Replications < 2 {
		return false
	}
	rel := func(m MetricSummary) float64 {
		if m.Mean == 0 {
			return math.Inf(1)
		}
		return m.CI95 / math.Abs(m.Mean)
	}
	return rel(agg.AvgOverallMs) <= t.RelHalfWidth && rel(agg.P99ComponentMs) <= t.RelHalfWidth
}

// RunUntil runs replication batches of the configured simulation until the
// CI95 half-widths of the two headline metrics fall below the relative
// target, or the replication cap is reached (ROADMAP's adaptive
// replication counts). Replication i always runs with the seed stream
// xrand.StreamSeed(opts.Seed, i) — the same streams as RunMany — so the
// aggregate equals RunMany(opts, n) for the n it stops at, is bit-identical
// for any worker count, and Converged records whether the target was met.
func RunUntil(opts Options, target CITarget) (Aggregate, error) {
	t := target.withDefaults()
	if t.RelHalfWidth <= 0 {
		return Aggregate{}, fmt.Errorf("pcs: RunUntil needs a positive relative CI target, got %g", t.RelHalfWidth)
	}

	pool := runner.Options{Workers: replicationWorkers(opts, t.Workers)}
	var enc *streamEncoder
	if t.Sink != nil {
		enc = newStreamEncoder(t.Sink, opts.Seed)
	}
	var runs []Result
	for len(runs) < t.MaxReplications {
		batch := t.BatchSize
		if len(runs) == 0 {
			batch = t.MinReplications
		}
		if rem := t.MaxReplications - len(runs); batch > rem {
			batch = rem
		}
		base := len(runs)
		// The runner's own seed stream restarts at 0 every call, so derive
		// each replication's seed from its global index instead.
		batchRuns, err := runner.Run(opts.Seed, batch, pool,
			func(rep int, _ int64) (Result, error) {
				o := opts
				o.Seed = xrand.StreamSeed(opts.Seed, base+rep)
				return Run(o)
			})
		if err != nil {
			return Aggregate{}, err
		}
		if enc != nil {
			for i, r := range batchRuns {
				if err := enc.write(base+i, r); err != nil {
					return Aggregate{}, err
				}
			}
		}
		runs = append(runs, batchRuns...)
		agg := aggregateRuns(runs, pool.EffectiveWorkers(len(runs)))
		if t.converged(agg) {
			agg.Converged = true
			return agg, nil
		}
	}
	return aggregateRuns(runs, pool.EffectiveWorkers(len(runs))), nil
}
