package pcs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Shared machinery for the golden-report pins (the PR 5 scalar-arrival
// compat file and the DAG-scenario file): a golden file maps cell keys to
// indented Result JSON, tests compare the compact encoding every sink in
// the repo writes, and PCS_WRITE_GOLDEN=1 regenerates the file instead of
// comparing. Regenerate only when a PR deliberately changes simulation
// results.

// writeGoldens rewrites a golden file from this run's reports.
func writeGoldens(t *testing.T, path string, got map[string]json.RawMessage) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d golden reports to %s", len(got), path)
}

// compareGoldens checks this run's reports byte for byte against a golden
// file, in both directions: a golden without a run and a run without a
// golden are both failures, so the pinned surface cannot silently shrink
// or grow.
func compareGoldens(t *testing.T, path string, got map[string]json.RawMessage) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading goldens (run with PCS_WRITE_GOLDEN=1 to create them): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, wb := range want {
		gb, ok := got[key]
		if !ok {
			t.Errorf("%s: golden exists but cell was not run", key)
			continue
		}
		// The golden file is indented for reviewability; the pin compares
		// the compact encoding.
		var compact bytes.Buffer
		if err := json.Compact(&compact, wb); err != nil {
			t.Fatalf("%s: golden is not valid JSON: %v", key, err)
		}
		if string(gb) != compact.String() {
			t.Errorf("%s: report diverged from the golden\ngot:  %s\nwant: %s", key, gb, compact.Bytes())
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: cell has no golden (regenerate with PCS_WRITE_GOLDEN=1?)", key)
		}
	}
}
