package pcs

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// manyTestOptions is a deliberately small deployment so multi-replication
// tests stay fast; Basic avoids the PCS training pass.
func manyTestOptions() Options {
	return Options{
		Technique:        Basic,
		Seed:             11,
		Nodes:            8,
		SearchComponents: 12,
		ArrivalRate:      50,
		Requests:         600,
	}
}

func aggregatesEqual(a, b Aggregate) bool {
	eq := func(x, y MetricSummary) bool { return x == y }
	return a.Technique == b.Technique &&
		a.Replications == b.Replications &&
		eq(a.AvgOverallMs, b.AvgOverallMs) &&
		eq(a.P99ComponentMs, b.P99ComponentMs) &&
		eq(a.OverallP50Ms, b.OverallP50Ms) &&
		eq(a.OverallP99Ms, b.OverallP99Ms) &&
		eq(a.ComponentMeanMs, b.ComponentMeanMs) &&
		a.Arrivals == b.Arrivals &&
		a.Completed == b.Completed &&
		a.Migrations == b.Migrations
}

func TestRunManyIdenticalForAnyWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication run takes a few seconds")
	}
	opts := manyTestOptions()
	const n = 6
	ref, err := RunManyWorkers(opts, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RunManyWorkers(opts, n, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !aggregatesEqual(ref, got) {
			t.Fatalf("workers=%d aggregate differs from workers=1:\n%+v\nvs\n%+v",
				workers, got, ref)
		}
		for i := range ref.Runs {
			if ref.Runs[i].AvgOverallMs != got.Runs[i].AvgOverallMs ||
				ref.Runs[i].P99ComponentMs != got.Runs[i].P99ComponentMs {
				t.Fatalf("workers=%d: replication %d differs", workers, i)
			}
		}
	}
}

func TestRunManySingleReplicationReproducesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run takes a second")
	}
	opts := manyTestOptions()
	single, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := RunMany(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.AvgOverallMs.Mean != single.AvgOverallMs ||
		agg.P99ComponentMs.Mean != single.P99ComponentMs {
		t.Fatalf("RunMany(opts, 1) = %.6f/%.6f ms, Run(opts) = %.6f/%.6f ms",
			agg.AvgOverallMs.Mean, agg.P99ComponentMs.Mean,
			single.AvgOverallMs, single.P99ComponentMs)
	}
	if agg.AvgOverallMs.CI95 != 0 {
		t.Fatal("single replication should have zero CI")
	}
}

func TestRunManyMergeMatchesSerialReference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replication run takes a few seconds")
	}
	opts := manyTestOptions()
	const n = 5
	agg, err := RunManyWorkers(opts, n, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: run each replication directly with its stream seed
	// and fold the metrics through the stats machinery by hand.
	var w stats.Welford
	vals := make([]float64, n)
	totalCompleted := 0
	for i := 0; i < n; i++ {
		o := opts
		o.Seed = xrand.StreamSeed(opts.Seed, i)
		r, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = r.AvgOverallMs
		w.Add(r.AvgOverallMs)
		totalCompleted += r.Completed
	}
	if agg.AvgOverallMs.Mean != w.Mean() {
		t.Fatalf("aggregate mean %.9f, serial reference %.9f", agg.AvgOverallMs.Mean, w.Mean())
	}
	if math.Abs(agg.AvgOverallMs.CI95-w.MeanCI95()) > 1e-12 {
		t.Fatalf("aggregate CI %.9f, serial reference %.9f", agg.AvgOverallMs.CI95, w.MeanCI95())
	}
	if p50 := stats.Percentile(vals, 50); agg.AvgOverallMs.P50 != p50 {
		t.Fatalf("aggregate p50 %.9f, serial reference %.9f", agg.AvgOverallMs.P50, p50)
	}
	if agg.Completed != totalCompleted {
		t.Fatalf("aggregate completed %d, serial reference %d", agg.Completed, totalCompleted)
	}
	if agg.AvgOverallMs.Min > agg.AvgOverallMs.P50 || agg.AvgOverallMs.P50 > agg.AvgOverallMs.Max {
		t.Fatal("metric summary ordering violated")
	}
}

func TestRunManyPropagatesRunErrors(t *testing.T) {
	opts := manyTestOptions()
	opts.Technique = Technique(99)
	if _, err := RunMany(opts, 3); err == nil {
		t.Fatal("invalid technique should fail")
	}
	if _, err := RunMany(manyTestOptions(), 0); err == nil {
		t.Fatal("zero replications should fail")
	}
}
