package pcs

import (
	"reflect"
	"strings"
	"testing"
)

// laneCounts is the table determinism invariant #10 is pinned over:
// the laned data plane at 1, 2, 4 and 8 lanes.
var laneCounts = []int{1, 2, 4, 8}

// lanedOpts is equivOpts with the laned data plane on. Lanes=1 is the
// reference: the same laned physics on a single queue.
func lanedOpts(tech Technique, scenarioName string, seed int64) Options {
	o := equivOpts(tech, scenarioName, seed)
	o.Lanes = 1
	return o
}

// TestLanedRunBitIdenticalAllScenariosTechniques is the tentpole's
// acceptance gate (determinism invariant #10): for every conformance cell
// — a table that includes the policy-on scenarios (autoscale-burst,
// brownout-overload), the traffic-shaped ones (tenant-storm,
// session-diurnal) and the DAG ones (fanout-retry, circuit-storm, …) —
// laned runs at 1, 2, 4 and 8 lanes produce byte-identical reports. Lane
// count only ever moves the wall clock.
func TestLanedRunBitIdenticalAllScenariosTechniques(t *testing.T) {
	for _, c := range conformanceCells() {
		assertLanesBitIdentical(t, c.label(), lanedOpts(c.Tech, c.Scenario, 17))
	}
}

// TestLanedRunBitIdenticalTraceAndPolicyOverride covers the two cells the
// scenario table cannot: an Options-level trace replay (file-driven
// arrivals) and an explicit policy override on an otherwise policy-free
// scenario, each pinned byte-identical across lane counts.
func TestLanedRunBitIdenticalTraceAndPolicyOverride(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"trace-replay", func() Options {
			o := lanedOpts(Basic, "", 19)
			o.Traffic = &TrafficSpec{Kind: "trace", Path: "../testdata/traces/sample-1k.ndjson"}
			o.Requests = 1000
			return o
		}()},
		{"policy-override", func() Options {
			o := lanedOpts(RED3, "", 19)
			o.Policy = "pid-throttle"
			return o
		}()},
	}
	for _, tc := range cases {
		baseline, err := Run(tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := reportBytes(t, baseline)
		for _, lanes := range laneCounts[1:] {
			o := tc.opts
			o.Lanes = lanes
			res, err := Run(o)
			if err != nil {
				t.Fatalf("%s lanes=%d: %v", tc.name, lanes, err)
			}
			if got := reportBytes(t, res); string(got) != string(want) {
				t.Errorf("%s: report at -lanes %d diverged from -lanes 1\nlanes=%d: %s\nlanes=1:  %s",
					tc.name, lanes, lanes, got, want)
			}
		}
	}
}

// TestLanedSampledRunMatchesAcrossLanes pins the composition of laning
// with observability: sampled laned runs yield the exact snapshot series
// — and final Result — at every lane count. Observation stays free and
// lane count stays invisible even when both are on.
func TestLanedSampledRunMatchesAcrossLanes(t *testing.T) {
	assertSampledMatches(t, "node-failure/PCS/laned", "lanes",
		lanedOpts(PCS, "node-failure", 23), laneCounts[1:],
		func(o *Options, n int) { o.Lanes = n })
}

// TestLanedStepwiseEquivalence pins slicing invariance in laned mode: a
// run advanced through quarter-horizon slices, Steps and Snapshots
// produces the Result a straight Run does, at several lane counts. Lane
// windows only group events; where the caller slices the clock never
// reorders them.
func TestLanedStepwiseEquivalence(t *testing.T) {
	for _, lanes := range []int{1, 4} {
		opts := lanedOpts(RED3, "", 11)
		opts.Lanes = lanes
		want, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		got := stepwise(t, opts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("lanes=%d: stepped run diverged\nstepped: %+v\nrun:     %+v", lanes, got, want)
		}
	}
}

// TestLanedDiffersFromSequential guards the mode switch itself: laned
// physics include real network-transit delays, so a laned run must NOT
// reproduce the sequential report — if it did, the laned path silently
// fell back to the sequential one and the whole matrix above would be
// vacuous.
func TestLanedDiffersFromSequential(t *testing.T) {
	seq, err := Run(equivOpts(Basic, "", 13))
	if err != nil {
		t.Fatal(err)
	}
	laned, err := Run(lanedOpts(Basic, "", 13))
	if err != nil {
		t.Fatal(err)
	}
	if seq.DataPlane != "" {
		t.Errorf("sequential run reports DataPlane=%q, want empty", seq.DataPlane)
	}
	if laned.AvgOverallMs == seq.AvgOverallMs {
		t.Error("laned run reproduced the sequential latency exactly; lane transit delays not applied?")
	}
}

// TestLanedCancelDelayValidation pins the lookahead guard: cancellation
// relayed through the root class consumes two network transits, so a
// cancel delay under 2×LaneTransitDelay cannot be represented in laned
// mode and must be rejected — while the sequential path and disabled
// cancellation keep accepting it.
func TestLanedCancelDelayValidation(t *testing.T) {
	bad := lanedOpts(RED3, "", 7)
	bad.CancelDelaySeconds = 0.0001
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "CancelDelaySeconds") {
		t.Errorf("laned run with 0.1 ms cancel delay: err = %v, want CancelDelaySeconds error", err)
	}
	seq := equivOpts(RED3, "", 7)
	seq.CancelDelaySeconds = 0.0001
	seq.Requests = 200
	if _, err := Run(seq); err != nil {
		t.Errorf("sequential run with 0.1 ms cancel delay rejected: %v", err)
	}
	off := lanedOpts(RED3, "", 7)
	off.CancelDelaySeconds = -1 // explicit off
	off.Requests = 200
	if _, err := Run(off); err != nil {
		t.Errorf("laned run with cancellation disabled rejected: %v", err)
	}
}
