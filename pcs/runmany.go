package pcs

import (
	"math"

	"repro/internal/runner"
	"repro/internal/shard"
	"repro/internal/stats"
)

// MetricSummary describes one latency metric across replications: the
// across-replication mean with a 95 % confidence interval, plus the spread
// of the per-replication values.
type MetricSummary struct {
	// Mean is the across-replication mean, CI95 the half-width of its 95 %
	// confidence interval (Student's t).
	Mean, CI95 float64
	// StdDev is the sample standard deviation of per-replication values.
	StdDev float64
	// P50/P99/Min/Max describe the distribution of per-replication values.
	P50, P99, Min, Max float64
}

// Aggregate is the result of RunMany: every Result metric the evaluation
// reports, summarised across n independent replications.
type Aggregate struct {
	Technique    string
	Scenario     string
	ArrivalRate  float64
	Replications int
	Workers      int

	// Converged reports whether a RunUntil call met its CI target before
	// hitting the replication cap; fixed-count aggregates leave it false.
	Converged bool

	// AvgOverallMs and P99ComponentMs summarise the paper's two headline
	// metrics across replications.
	AvgOverallMs   MetricSummary
	P99ComponentMs MetricSummary

	// Distribution detail, likewise across replications.
	OverallP50Ms    MetricSummary
	OverallP99Ms    MetricSummary
	ComponentMeanMs MetricSummary

	// Totals summed over replications.
	Arrivals, Completed, Migrations int

	// Runs holds the per-replication results in replication order
	// (replication 0 uses Options.Seed itself, replication i > 0 a seed
	// derived from it).
	Runs []Result
}

// RunMany executes n independent replications of the configured simulation
// in parallel across all usable cores and aggregates their metrics.
// Replication i runs Run with the seed stream xrand.StreamSeed(opts.Seed, i),
// so the aggregate is deterministic given opts.Seed and n: identical for
// any worker count and any goroutine interleaving, and RunMany(opts, 1)
// reproduces Run(opts) exactly.
func RunMany(opts Options, n int) (Aggregate, error) {
	return RunManyWorkers(opts, n, 0)
}

// replicationWorkers budgets the runner pool against intra-run sharding:
// shard.ReplicationWorkers keeps shards × concurrent replications at the
// machine's width. Worker counts never reach results.
func replicationWorkers(opts Options, explicit int) int {
	return shard.ReplicationWorkers(explicit, opts.Shards)
}

// RunManyWorkers is RunMany with an explicit worker count; workers <= 0
// selects GOMAXPROCS, divided by Options.Shards when intra-run sharding is
// on. The worker count affects wall-clock time only, never the aggregate
// values.
func RunManyWorkers(opts Options, n, workers int) (Aggregate, error) {
	pool := runner.Options{Workers: replicationWorkers(opts, workers)}
	runs, err := runner.Run(opts.Seed, n, pool, func(rep int, seed int64) (Result, error) {
		o := opts
		o.Seed = seed
		return Run(o)
	})
	if err != nil {
		return Aggregate{}, err
	}
	return aggregateRuns(runs, pool.EffectiveWorkers(n)), nil
}

// aggregator folds per-replication Results into the across-replication
// summaries incrementally, holding only the five metric vectors (one
// float64 per replication each) and the integer totals — not the Results
// themselves. It backs both the in-memory aggregateRuns and the streaming
// RunManyStream/MergeStream paths; feeding it the same Results in the same
// order produces bit-identical Aggregates on every path, because the
// Welford fold and the totals see the exact same additions.
type aggregator struct {
	n           int
	technique   string
	scenario    string
	arrivalRate float64

	avgOverall, p99Comp    []float64
	overallP50, overallP99 []float64
	compMean               []float64
	arrivals, completed    int
	migrations             int
}

// add folds one replication's Result, in replication order.
func (a *aggregator) add(r Result) {
	if a.n == 0 {
		a.technique = r.Technique
		a.scenario = r.Scenario
		a.arrivalRate = r.ArrivalRate
	}
	a.n++
	a.avgOverall = append(a.avgOverall, r.AvgOverallMs)
	a.p99Comp = append(a.p99Comp, r.P99ComponentMs)
	a.overallP50 = append(a.overallP50, r.OverallP50Ms)
	a.overallP99 = append(a.overallP99, r.OverallP99Ms)
	a.compMean = append(a.compMean, r.ComponentMeanMs)
	a.arrivals += r.Arrivals
	a.completed += r.Completed
	a.migrations += r.Migrations
}

// aggregate summarises the folded replications. Runs is left nil; callers
// that kept the Results attach them.
func (a *aggregator) aggregate(workers int) Aggregate {
	return Aggregate{
		Technique:       a.technique,
		Scenario:        a.scenario,
		ArrivalRate:     a.arrivalRate,
		Replications:    a.n,
		Workers:         workers,
		AvgOverallMs:    summarizeMetric(a.avgOverall),
		P99ComponentMs:  summarizeMetric(a.p99Comp),
		OverallP50Ms:    summarizeMetric(a.overallP50),
		OverallP99Ms:    summarizeMetric(a.overallP99),
		ComponentMeanMs: summarizeMetric(a.compMean),
		Arrivals:        a.arrivals,
		Completed:       a.completed,
		Migrations:      a.migrations,
	}
}

// aggregateRuns folds per-replication Results into an Aggregate. It is
// shared by the fixed-count RunMany and the adaptive RunUntil.
func aggregateRuns(runs []Result, workers int) Aggregate {
	var a aggregator
	for _, r := range runs {
		a.add(r)
	}
	agg := a.aggregate(workers)
	agg.Runs = runs
	return agg
}

// summarizeMetric folds per-replication values of one metric through the
// stats machinery: Welford for mean/CI/stddev, percentiles for the spread.
func summarizeMetric(vals []float64) MetricSummary {
	var w stats.Welford
	w.AddAll(vals)
	return MetricSummary{
		Mean:   w.Mean(),
		CI95:   w.MeanCI95(),
		StdDev: math.Sqrt(w.SampleVariance()),
		P50:    stats.Percentile(vals, 50),
		P99:    stats.Percentile(vals, 99),
		Min:    stats.Min(vals),
		Max:    stats.Max(vals),
	}
}
