package pcs

import (
	"math"

	"repro/internal/runner"
	"repro/internal/stats"
)

// MetricSummary describes one latency metric across replications: the
// across-replication mean with a 95 % confidence interval, plus the spread
// of the per-replication values.
type MetricSummary struct {
	// Mean is the across-replication mean, CI95 the half-width of its 95 %
	// confidence interval (Student's t).
	Mean, CI95 float64
	// StdDev is the sample standard deviation of per-replication values.
	StdDev float64
	// P50/P99/Min/Max describe the distribution of per-replication values.
	P50, P99, Min, Max float64
}

// Aggregate is the result of RunMany: every Result metric the evaluation
// reports, summarised across n independent replications.
type Aggregate struct {
	Technique    string
	Scenario     string
	ArrivalRate  float64
	Replications int
	Workers      int

	// Converged reports whether a RunUntil call met its CI target before
	// hitting the replication cap; fixed-count aggregates leave it false.
	Converged bool

	// AvgOverallMs and P99ComponentMs summarise the paper's two headline
	// metrics across replications.
	AvgOverallMs   MetricSummary
	P99ComponentMs MetricSummary

	// Distribution detail, likewise across replications.
	OverallP50Ms    MetricSummary
	OverallP99Ms    MetricSummary
	ComponentMeanMs MetricSummary

	// Totals summed over replications.
	Arrivals, Completed, Migrations int

	// Runs holds the per-replication results in replication order
	// (replication 0 uses Options.Seed itself, replication i > 0 a seed
	// derived from it).
	Runs []Result
}

// RunMany executes n independent replications of the configured simulation
// in parallel across all usable cores and aggregates their metrics.
// Replication i runs Run with the seed stream xrand.StreamSeed(opts.Seed, i),
// so the aggregate is deterministic given opts.Seed and n: identical for
// any worker count and any goroutine interleaving, and RunMany(opts, 1)
// reproduces Run(opts) exactly.
func RunMany(opts Options, n int) (Aggregate, error) {
	return RunManyWorkers(opts, n, 0)
}

// RunManyWorkers is RunMany with an explicit worker count; workers <= 0
// selects GOMAXPROCS. The worker count affects wall-clock time only, never
// the aggregate values.
func RunManyWorkers(opts Options, n, workers int) (Aggregate, error) {
	pool := runner.Options{Workers: workers}
	runs, err := runner.Run(opts.Seed, n, pool, func(rep int, seed int64) (Result, error) {
		o := opts
		o.Seed = seed
		return Run(o)
	})
	if err != nil {
		return Aggregate{}, err
	}
	return aggregateRuns(runs, pool.EffectiveWorkers(n)), nil
}

// aggregateRuns folds per-replication Results into an Aggregate. It is
// shared by the fixed-count RunMany and the adaptive RunUntil.
func aggregateRuns(runs []Result, workers int) Aggregate {
	agg := Aggregate{
		Technique:    runs[0].Technique,
		Scenario:     runs[0].Scenario,
		ArrivalRate:  runs[0].ArrivalRate,
		Replications: len(runs),
		Workers:      workers,
		Runs:         runs,
	}
	pick := func(f func(Result) float64) MetricSummary {
		vals := make([]float64, len(runs))
		for i, r := range runs {
			vals[i] = f(r)
		}
		return summarizeMetric(vals)
	}
	agg.AvgOverallMs = pick(func(r Result) float64 { return r.AvgOverallMs })
	agg.P99ComponentMs = pick(func(r Result) float64 { return r.P99ComponentMs })
	agg.OverallP50Ms = pick(func(r Result) float64 { return r.OverallP50Ms })
	agg.OverallP99Ms = pick(func(r Result) float64 { return r.OverallP99Ms })
	agg.ComponentMeanMs = pick(func(r Result) float64 { return r.ComponentMeanMs })
	for _, r := range runs {
		agg.Arrivals += r.Arrivals
		agg.Completed += r.Completed
		agg.Migrations += r.Migrations
	}
	return agg
}

// summarizeMetric folds per-replication values of one metric through the
// stats machinery: Welford for mean/CI/stddev, percentiles for the spread.
func summarizeMetric(vals []float64) MetricSummary {
	var w stats.Welford
	w.AddAll(vals)
	return MetricSummary{
		Mean:   w.Mean(),
		CI95:   w.MeanCI95(),
		StdDev: math.Sqrt(w.SampleVariance()),
		P50:    stats.Percentile(vals, 50),
		P99:    stats.Percentile(vals, 99),
		Min:    stats.Min(vals),
		Max:    stats.Max(vals),
	}
}
