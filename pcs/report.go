package pcs

import (
	"fmt"
	"io"
)

// WriteReport renders the single-run latency report the CLIs print: run
// identity, counts, the paper's two headline metrics, distribution detail
// and — for PCS runs — the control-loop counters. pcs-sim and pcs-live
// share this one renderer so their reports cannot drift.
func (r Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "technique           %s\n", r.Technique)
	fmt.Fprintf(w, "scenario            %s\n", r.Scenario)
	fmt.Fprintf(w, "arrival rate        %.0f req/s\n", r.ArrivalRate)
	if r.Traffic != "" {
		fmt.Fprintf(w, "traffic             %s\n", r.Traffic)
	}
	if r.Policy != "" {
		fmt.Fprintf(w, "policy              %s (%d actions)\n", r.Policy, r.PolicyActions)
	}
	fmt.Fprintf(w, "requests            %d arrived, %d completed\n", r.Arrivals, r.Completed)
	if r.Failed > 0 || r.TimedOut > 0 {
		fmt.Fprintf(w, "request failures    %d failed, %d timed out\n", r.Failed, r.TimedOut)
	}
	if r.AdmissionDrops > 0 {
		fmt.Fprintf(w, "admission drops     %d\n", r.AdmissionDrops)
	}
	fmt.Fprintf(w, "virtual time        %.1f s\n", r.VirtualSeconds)
	fmt.Fprintf(w, "batch jobs          %d started\n", r.BatchJobsStarted)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "avg overall latency       %10.3f ms   (paper metric 2)\n", r.AvgOverallMs)
	fmt.Fprintf(w, "p99 component latency     %10.3f ms   (paper metric 1)\n", r.P99ComponentMs)
	fmt.Fprintf(w, "overall p50 / p99 / max   %10.3f / %.3f / %.3f ms\n",
		r.OverallP50Ms, r.OverallP99Ms, r.OverallMaxMs)
	fmt.Fprintf(w, "component mean / p50      %10.3f / %.3f ms\n", r.ComponentMeanMs, r.ComponentP50Ms)
	for s, m := range r.StageMeanMs {
		fmt.Fprintf(w, "stage %d mean              %10.3f ms\n", s, m)
	}
	if r.Technique == PCS.String() {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "scheduling intervals      %d\n", r.SchedulingIntervals)
		fmt.Fprintf(w, "migrations enforced       %d\n", r.Migrations)
	}
	if g := r.Graph; g != nil {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "graph retries             %d\n", g.Retries)
		fmt.Fprintf(w, "breaker trips/fast-fails  %d / %d\n", g.BreakerTrips, g.BreakerFastFails)
		if g.CacheHits+g.CacheMisses+g.StorageWrites > 0 {
			fmt.Fprintf(w, "storage hit/miss/write    %d / %d / %d\n",
				g.CacheHits, g.CacheMisses, g.StorageWrites)
		}
		if g.AsyncCalls > 0 {
			fmt.Fprintf(w, "async calls (failed)      %d (%d)\n", g.AsyncCalls, g.AsyncFailures)
		}
	}
	if len(r.Tenants) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-12s %9s %9s %9s %10s %10s %10s\n",
			"tenant", "offered", "admitted", "dropped", "avg ms", "p50 ms", "p99 ms")
		for _, t := range r.Tenants {
			fmt.Fprintf(w, "%-12s %9d %9d %9d %10.3f %10.3f %10.3f\n",
				t.Name, t.Offered, t.Admitted, t.Dropped, t.AvgMs, t.P50Ms, t.P99Ms)
		}
	}
}
