package pcs

import (
	"reflect"
	"testing"
)

// TestSteeredScenariosRegistered pins the two Controller-driven scenarios:
// selectable by name, and their steering actually changes the run relative
// to the identical unsteered deployment (nutch-search shares topology,
// nodes and workload defaults with both).
func TestSteeredScenariosRegistered(t *testing.T) {
	base, err := Run(equivOpts(Basic, "nutch-search", 21))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"node-failure", "diurnal-load"} {
		res, err := Run(equivOpts(Basic, name, 21))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Scenario != name {
			t.Fatalf("%s: Result.Scenario = %q", name, res.Scenario)
		}
		if res.Completed == 0 {
			t.Fatalf("%s: nothing completed", name)
		}
		if res.AvgOverallMs == base.AvgOverallMs && res.P99ComponentMs == base.P99ComponentMs {
			t.Fatalf("%s: steering changed nothing versus nutch-search (suspicious)", name)
		}
	}
}

// TestSteeredRunsDeterministic: same options ⇒ bit-identical results, with
// steering in play.
func TestSteeredRunsDeterministic(t *testing.T) {
	for _, name := range []string{"node-failure", "diurnal-load"} {
		a, err := Run(equivOpts(Basic, name, 23))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(equivOpts(Basic, name, 23))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two identical steered runs diverged\n%+v\n%+v", name, a, b)
		}
	}
}

// TestControllerFailRestore drives a manual fault schedule and checks the
// Snapshot surfaces it: FailedNodes and MaxCoreUtilization spike during the
// outage and recover after.
func TestControllerFailRestore(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 25))
	if err != nil {
		t.Fatal(err)
	}
	h := s.Horizon()
	ctrl := s.Controller()
	if err := ctrl.FailNodeAt(0.3*h, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.RestoreNodeAt(0.6*h, 0); err != nil {
		t.Fatal(err)
	}
	s.RunTo(0.45 * h)
	during := s.Snapshot()
	if during.FailedNodes != 1 {
		t.Fatalf("mid-outage FailedNodes = %d, want 1", during.FailedNodes)
	}
	if during.MaxCoreUtilization != 1 {
		t.Fatalf("failed node not saturated: max core utilization %v", during.MaxCoreUtilization)
	}
	s.RunTo(0.8 * h)
	after := s.Snapshot()
	if after.FailedNodes != 0 {
		t.Fatalf("post-restore FailedNodes = %d, want 0", after.FailedNodes)
	}
	if s.Finish().Completed == 0 {
		t.Fatal("nothing completed across the outage")
	}
}

// TestControllerArrivalRateSteering checks SetArrivalRateAt lands and is
// visible in snapshots, and that diurnal modulation moves λ both ways.
func TestControllerArrivalRateSteering(t *testing.T) {
	opts := equivOpts(Basic, "", 27)
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Horizon()
	if err := s.Controller().SetArrivalRateAt(0.5*h, 2*opts.ArrivalRate); err != nil {
		t.Fatal(err)
	}
	s.RunTo(0.25 * h)
	if got := s.Snapshot().AdmittedRate; got != opts.ArrivalRate {
		t.Fatalf("pre-steering λ = %v, want %v", got, opts.ArrivalRate)
	}
	s.RunTo(0.75 * h)
	if got := s.Snapshot().AdmittedRate; got != 2*opts.ArrivalRate {
		t.Fatalf("post-steering λ = %v, want %v", got, 2*opts.ArrivalRate)
	}

	// Diurnal: λ must visit both sides of the base rate.
	d, err := NewSimulation(equivOpts(Basic, "diurnal-load", 27))
	if err != nil {
		t.Fatal(err)
	}
	var above, below bool
	if err := d.SampleEvery(d.Horizon()/40, func(sn Snapshot) {
		if sn.AdmittedRate > equivOpts(Basic, "", 0).ArrivalRate {
			above = true
		}
		if sn.AdmittedRate > 0 && sn.AdmittedRate < equivOpts(Basic, "", 0).ArrivalRate {
			below = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	d.Finish()
	if !above || !below {
		t.Fatalf("diurnal λ never crossed base rate (above=%v below=%v)", above, below)
	}
}

// TestControllerTechniqueSwap: swapping down in replica count works and
// changes the outcome; swapping up is rejected synchronously.
func TestControllerTechniqueSwap(t *testing.T) {
	opts := equivOpts(RED3, "", 29)
	plain, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Swap a quarter of the way in: the horizon includes the drain window,
	// so the midpoint would land after the last arrival was dispatched.
	if err := s.Controller().SetTechniqueAt(s.Horizon()/4, Basic); err != nil {
		t.Fatal(err)
	}
	swapped := s.Finish()
	if swapped.Technique != "RED-3" {
		t.Fatalf("Result.Technique = %q, want configured RED-3", swapped.Technique)
	}
	if swapped.AvgOverallMs == plain.AvgOverallMs {
		t.Fatal("mid-run swap to Basic changed nothing (suspicious)")
	}

	// A Basic deployment has one replica per component: RED-3 and reissue
	// cannot be swapped in.
	b, err := NewSimulation(equivOpts(Basic, "", 29))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Controller().SetTechniqueAt(b.Horizon()/2, RED3); err == nil {
		t.Fatal("swap to RED-3 on a 1-replica deployment accepted")
	}
	if err := b.Controller().SetTechniqueAt(b.Horizon()/2, RI90); err == nil {
		t.Fatal("swap to RI-90 on a 1-replica deployment accepted")
	}
	// PCS's dispatch policy is Basic — swapping a Basic world "to PCS" is
	// allowed (and is a dispatch no-op; no scheduler appears).
	if err := b.Controller().SetTechniqueAt(b.Horizon()/2, PCS); err != nil {
		t.Fatalf("swap to PCS dispatch rejected: %v", err)
	}
}

// TestControllerValidation: steering into the past, bad nodes, bad rates.
func TestControllerValidation(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 31))
	if err != nil {
		t.Fatal(err)
	}
	s.RunTo(s.Horizon() / 2)
	ctrl := s.Controller()
	if err := ctrl.FailNodeAt(s.Now()-1, 0); err == nil {
		t.Fatal("steering into the past accepted")
	}
	if err := ctrl.FailNodeAt(s.Now()+1, 999); err == nil {
		t.Fatal("fault on out-of-range node accepted")
	}
	if err := ctrl.SetArrivalRateAt(s.Now()+1, -5); err == nil {
		t.Fatal("negative arrival rate accepted")
	}
	if err := ctrl.ModulateArrivalRate(0, 0.5, 0); err == nil {
		t.Fatal("zero modulation period accepted")
	}
	if err := ctrl.ModulateArrivalRate(10, 1.5, 0); err == nil {
		t.Fatal("amplitude ≥ 1 accepted")
	}
}
