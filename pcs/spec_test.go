package pcs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// specGraphJSON is a minimal two-node DAG in the lowerCamel encoding a
// client would POST (graph.Spec decodes case-insensitively).
const specGraphJSON = `{
  "name": "mini",
  "nodes": [
    {"name": "front", "components": 4, "baseServiceTime": 0.001, "calls": [{"to": "back"}]},
    {"name": "back", "components": 8, "baseServiceTime": 0.002}
  ]
}`

func writeSpecFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSpecRoundTrip pins the wire format: a populated spec survives
// marshal → strict parse unchanged, and the zero spec encodes to "{}".
func TestRunSpecRoundTrip(t *testing.T) {
	spec := RunSpec{
		Technique:    "PCS",
		Scenario:     "ecommerce",
		Policy:       "pid-throttle",
		Seed:         42,
		Rate:         250,
		Requests:     1234,
		Shards:       2,
		Lanes:        3,
		Replications: 4,
		Traffic:      &TrafficSpec{Kind: "poisson", Rate: 250},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRunSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got, spec)
	}
	if data, err = json.Marshal(RunSpec{}); err != nil || string(data) != "{}" {
		t.Fatalf("zero spec encodes to %s, %v (want {})", data, err)
	}
}

// TestParseRunSpecStrict pins the decode edges: unknown fields and
// trailing documents are errors, not silent defaults.
func TestParseRunSpecStrict(t *testing.T) {
	if _, err := ParseRunSpec([]byte(`{"tecnique": "PCS"}`)); err == nil {
		t.Fatal("typo'd field accepted")
	}
	if _, err := ParseRunSpec([]byte(`{"seed": 1} {"seed": 2}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := ParseRunSpec([]byte(`{"seed": 1}`)); err != nil {
		t.Fatal(err)
	}
}

// TestRunSpecValidate walks the rejection surface.
func TestRunSpecValidate(t *testing.T) {
	bad := map[string]RunSpec{
		"unknown technique": {Technique: "warp"},
		"unknown scenario":  {Scenario: "missing"},
		"unknown policy":    {Policy: "missing"},
		"scenario and graph file": {
			Scenario: "ecommerce", GraphFile: "g.json"},
		"negative requests": {Requests: -1},
		"negative rate":     {Rate: -1},
		"invalid graph":     {Graph: &GraphSpec{Name: "empty"}},
	}
	for name, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := []RunSpec{
		{},
		{Technique: "red-3", Scenario: "ecommerce", Policy: "none"},
		{Policy: ""},
	}
	for _, spec := range ok {
		if err := spec.Validate(); err != nil {
			t.Errorf("%+v: rejected: %v", spec, err)
		}
	}
}

// TestRunSpecOptionsEquivalence pins the one decode path: a spec resolves
// to exactly the Options a CLI used to hand-assemble.
func TestRunSpecOptionsEquivalence(t *testing.T) {
	spec := RunSpec{
		Technique:          "RI-90",
		Scenario:           "ecommerce",
		Policy:             "none",
		Seed:               9,
		Rate:               120,
		Requests:           5000,
		Nodes:              12,
		SearchComponents:   40,
		Shards:             2,
		Lanes:              1,
		SchedulingInterval: 5,
		EpsilonSeconds:     0.000005,
		QueueModel:         "mg1",
	}
	got, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := Options{
		Technique:          RI90,
		Scenario:           "ecommerce",
		Policy:             "none",
		Seed:               9,
		ArrivalRate:        120,
		Requests:           5000,
		Nodes:              12,
		SearchComponents:   40,
		Shards:             2,
		Lanes:              1,
		SchedulingInterval: 5,
		EpsilonSeconds:     0.000005,
		QueueModel:         "mg1",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Options mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestRunSpecGraphFile pins the -graph-file path: a JSON graph loaded by
// reference runs identically to the same graph inline, and a missing file
// fails at Options time, not Validate time.
func TestRunSpecGraphFile(t *testing.T) {
	path := writeSpecFile(t, "mini.json", specGraphJSON)
	g, err := LoadGraphSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "mini" || len(g.Nodes) != 2 || g.Nodes[0].Calls[0].To != "back" {
		t.Fatalf("loaded graph %+v", g)
	}

	byFile := RunSpec{GraphFile: path, Requests: 500, Rate: 100, Seed: 3}
	inline := RunSpec{Graph: g, Requests: 500, Rate: 100, Seed: 3}
	resFile, err := byFile.Report()
	if err != nil {
		t.Fatal(err)
	}
	resInline, err := inline.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resFile, resInline) {
		t.Fatal("graphFile and inline graph reports diverged")
	}

	missing := RunSpec{GraphFile: filepath.Join(t.TempDir(), "nope.json")}
	if err := missing.Validate(); err != nil {
		t.Fatalf("Validate touched the filesystem: %v", err)
	}
	if _, err := missing.Options(); err == nil {
		t.Fatal("missing graph file resolved")
	}
}

// TestRunSpecReportCanonical pins the canonical report: Report equals the
// normalized RunManyWorkers aggregate and the MergeStream fold of a
// RunManyStream at the same spec — byte-identical JSON in all three.
func TestRunSpecReportCanonical(t *testing.T) {
	spec := RunSpec{Technique: "Basic", Requests: 500, Rate: 100, Seed: 11, Replications: 3}
	report, err := spec.Report()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := RunManyWorkers(opts, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	direct.Workers = 0
	direct.Runs = nil

	var ndjson bytes.Buffer
	if _, err := RunManyStream(opts, 3, 0, &ndjson); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeStream(bytes.NewReader(ndjson.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	enc := func(a Aggregate) string {
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if enc(report) != enc(direct) {
		t.Fatal("Report diverged from normalized RunManyWorkers")
	}
	if enc(report) != enc(merged) {
		t.Fatal("Report diverged from MergeStream over RunManyStream")
	}
	if report.Workers != 0 || report.Runs != nil {
		t.Fatalf("Report not in normal form: workers %d, %d runs", report.Workers, len(report.Runs))
	}
}

// TestSweepSpecCells pins the canonical expansion: rate-major order, the
// historical seed derivation, the ≥90-virtual-second requests floor, and
// policy-independent seeds for paired comparison.
func TestSweepSpecCells(t *testing.T) {
	sweep := SweepSpec{
		Base:       RunSpec{Seed: 1, Requests: 100},
		Techniques: []string{"Basic", "PCS"},
		Rates:      []float64{10, 200},
	}
	cells, err := sweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded to %d cells, want 4", len(cells))
	}
	// Rate-major order with the Fig. 6 seed derivation.
	wantOrder := []struct {
		tech     string
		rate     float64
		requests int
	}{
		{"Basic", 10, 900}, // floored to 90 s × 10 req/s
		{"PCS", 10, 900},
		{"Basic", 200, 18000},
		{"PCS", 200, 18000},
	}
	for i, want := range wantOrder {
		cell := cells[i]
		if cell.Technique != want.tech || cell.Rate != want.rate || cell.Requests != want.requests {
			t.Fatalf("cell %d = %s/λ=%g/%d requests, want %s/λ=%g/%d",
				i, cell.Technique, cell.Rate, cell.Requests, want.tech, want.rate, want.requests)
		}
		tech, err := ParseTechnique(want.tech)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(1) ^ int64(want.rate)<<16 ^ int64(tech)<<8; cell.Seed != want {
			t.Fatalf("cell %d seed %d, want %d", i, cell.Seed, want)
		}
	}

	// The policy axis multiplies cells without perturbing their seeds:
	// a policy-on cell faces its open-loop twin's exact workload.
	sweep.Policies = []string{"none", "threshold-autoscale"}
	paired, err := sweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(paired) != 8 {
		t.Fatalf("policy axis expanded to %d cells, want 8", len(paired))
	}
	for i := 0; i < len(paired); i += 2 {
		open, closed := paired[i], paired[i+1]
		if open.Policy != "none" || closed.Policy != "threshold-autoscale" {
			t.Fatalf("cells %d/%d policies %q/%q", i, i+1, open.Policy, closed.Policy)
		}
		if open.Seed != closed.Seed {
			t.Fatalf("paired cells %d/%d seeds %d != %d", i, i+1, open.Seed, closed.Seed)
		}
	}

	if _, err := (SweepSpec{Base: RunSpec{}, Techniques: []string{"warp"}}).Cells(); err == nil {
		t.Fatal("unknown technique axis accepted")
	}
	if _, err := ParseSweepSpec([]byte(`{"base": {}, "surprise": 1}`)); err == nil {
		t.Fatal("unknown sweep field accepted")
	}
}

// TestLoadRunSpec pins the -spec-file path: strict decode plus validation.
func TestLoadRunSpec(t *testing.T) {
	path := writeSpecFile(t, "run.json", `{"technique": "PCS", "seed": 5, "rate": 50}`)
	spec, err := LoadRunSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Technique != "PCS" || spec.Seed != 5 || spec.Rate != 50 {
		t.Fatalf("loaded %+v", spec)
	}
	if _, err := LoadRunSpec(writeSpecFile(t, "bad.json", `{"technique": "warp"}`)); err == nil {
		t.Fatal("invalid spec file accepted")
	}
}

// TestInfos pins the introspection listings the daemon serves.
func TestInfos(t *testing.T) {
	scenarios := ScenarioInfos()
	if len(scenarios) == 0 {
		t.Fatal("no scenarios")
	}
	for _, info := range scenarios {
		if info.Name == "" || info.Description == "" {
			t.Fatalf("undescribed scenario %+v", info)
		}
	}
	policies := PolicyInfos()
	if len(policies) == 0 {
		t.Fatal("no policies")
	}
	techniques := TechniqueInfos()
	if len(techniques) != 6 {
		t.Fatalf("%d techniques, want 6", len(techniques))
	}
	for _, info := range techniques {
		if info.Description == "" {
			t.Fatalf("undescribed technique %q", info.Name)
		}
	}
	if techniques[0].Name != "Basic" || techniques[5].Name != "PCS" {
		t.Fatalf("technique order %v", techniques)
	}
	data, err := json.Marshal(techniques[0])
	if err != nil || !strings.Contains(string(data), `"name":"Basic"`) {
		t.Fatalf("Info encoding %s, %v", data, err)
	}
}
