package pcs

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func streamOpts(seed int64) Options {
	return Options{
		Technique:   Basic,
		Seed:        seed,
		Nodes:       8,
		ArrivalRate: 80,
		Requests:    400,
	}
}

// TestRunManyStreamBitIdenticalToRunMany is the streaming acceptance gate:
// the streamed aggregate equals the in-memory one except for Runs (which
// streaming deliberately does not retain), and the NDJSON lines decode to
// exactly the Runs RunMany held in memory.
func TestRunManyStreamBitIdenticalToRunMany(t *testing.T) {
	const n, workers = 7, 3
	opts := streamOpts(41)
	inMem, err := RunManyWorkers(opts, n, workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	streamed, err := RunManyStream(opts, n, workers, &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := inMem
	want.Runs = nil
	if !reflect.DeepEqual(want, streamed) {
		t.Errorf("streamed aggregate diverged\nin-memory: %+v\nstreamed:  %+v", want, streamed)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != n {
		t.Fatalf("stream has %d lines, want %d", lines, n)
	}
	recs, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec.Result, inMem.Runs[i]) {
			t.Fatalf("replication %d round-tripped differently\nmem:  %+v\nfile: %+v",
				i, inMem.Runs[i], rec.Result)
		}
		if rec.Rep != i {
			t.Fatalf("replication %d recorded as %d", i, rec.Rep)
		}
		// Each line is independently reproducible from its recorded seed.
		if i == 2 {
			o := opts
			o.Seed = rec.Seed
			redo, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(redo, rec.Result) {
				t.Fatalf("replication %d not reproducible from recorded seed", i)
			}
		}
	}
}

// TestMergeStreamReproducesAggregate: the on-disk stream folds back into
// the same aggregate, bit for bit (modulo the wall-clock-only Workers
// field, which a file cannot know).
func TestMergeStreamReproducesAggregate(t *testing.T) {
	var buf bytes.Buffer
	streamed, err := RunManyStream(streamOpts(43), 6, 2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	streamed.Workers = 0
	if !reflect.DeepEqual(streamed, merged) {
		t.Errorf("merge diverged\nlive:   %+v\nmerged: %+v", streamed, merged)
	}
}

func TestMergeStreamRejectsCorruption(t *testing.T) {
	if _, err := MergeStream(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := MergeStream(strings.NewReader(`{"rep":1,"seed":0,"result":{}}`)); err == nil {
		t.Fatal("stream starting at replication 1 accepted")
	}
	if _, err := MergeStream(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if _, err := RunManyStream(streamOpts(45), 3, 1, &buf); err != nil {
		t.Fatal(err)
	}
	// Drop the middle line: the gap must be detected.
	lines := strings.SplitAfter(buf.String(), "\n")
	if _, err := MergeStream(strings.NewReader(lines[0] + lines[2])); err == nil {
		t.Fatal("gapped stream accepted")
	}
}

// TestRunUntilSinkMatchesAggregate: an adaptive run's sink holds exactly
// the replications it aggregated, and merging it reproduces the summaries.
func TestRunUntilSinkMatchesAggregate(t *testing.T) {
	var buf bytes.Buffer
	agg, err := RunUntil(streamOpts(47), CITarget{
		RelHalfWidth:    0.5, // loose: converge fast
		MaxReplications: 12,
		Workers:         2,
		Sink:            &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != agg.Replications {
		t.Fatalf("sink has %d replications, aggregate %d", len(recs), agg.Replications)
	}
	for i, rec := range recs {
		if !reflect.DeepEqual(rec.Result, agg.Runs[i]) {
			t.Fatalf("sink replication %d differs from aggregate's", i)
		}
	}
	merged, err := MergeStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := agg
	want.Runs = nil
	want.Workers = 0
	want.Converged = false // execution-time knowledge, not in the file
	if !reflect.DeepEqual(want, merged) {
		t.Errorf("merged adaptive stream diverged\nlive:   %+v\nmerged: %+v", want, merged)
	}
}

func TestRunManyStreamNeedsSink(t *testing.T) {
	if _, err := RunManyStream(streamOpts(49), 2, 1, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

// TestRunManyStreamFromReconstructsFullStream is the resume contract: the
// frames RunManyStreamFrom writes for [from, n) are byte-identical to the
// tail of a full RunManyStream, for every split point — so an interrupted
// stream plus a resumed tail is indistinguishable from an uninterrupted
// run.
func TestRunManyStreamFromReconstructsFullStream(t *testing.T) {
	const n = 6
	opts := streamOpts(51)
	var full bytes.Buffer
	if _, err := RunManyStream(opts, n, 2, &full); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(full.String(), "\n")
	for from := 0; from <= n; from++ {
		var resumed bytes.Buffer
		resumed.WriteString(strings.Join(lines[:from], ""))
		if err := RunManyStreamFrom(context.Background(), opts, n, 2, from, &resumed); err != nil {
			t.Fatalf("resume from %d: %v", from, err)
		}
		if resumed.String() != full.String() {
			t.Fatalf("resume from %d diverged\n got %s\nwant %s", from, resumed.String(), full.String())
		}
	}
	if err := RunManyStreamFrom(context.Background(), opts, n, 1, n+1, &bytes.Buffer{}); err == nil {
		t.Fatal("resume point past n accepted")
	}
	if err := RunManyStreamFrom(context.Background(), opts, n, 1, -1, &bytes.Buffer{}); err == nil {
		t.Fatal("negative resume point accepted")
	}
	if err := RunManyStreamFrom(context.Background(), opts, n, 1, 0, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}

// TestRunManyStreamFromCancellation: a canceled context stops the run at a
// replication boundary — the sink holds only whole, in-order frames and
// the call reports context.Canceled.
func TestRunManyStreamFromCancellation(t *testing.T) {
	opts := streamOpts(53)

	// Already-canceled context: no frames at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := RunManyStreamFrom(ctx, opts, 4, 2, 0, &buf)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run returned %v, want context.Canceled", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("pre-canceled run wrote %d bytes", buf.Len())
	}

	// Cancel mid-run, from the emit path: the sink must still be a valid
	// in-order prefix of the full stream.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	buf.Reset()
	frames := 0
	sink := writerFunc(func(p []byte) (int, error) {
		frames++
		if frames == 2 {
			cancel()
		}
		return buf.Write(p)
	})
	err = RunManyStreamFrom(ctx, opts, 50, 2, 0, sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel returned %v, want context.Canceled", err)
	}
	recs, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("canceled run left a corrupt stream: %v", err)
	}
	if len(recs) == 0 || len(recs) >= 50 {
		t.Fatalf("canceled run emitted %d frames, want a strict prefix", len(recs))
	}
	var full bytes.Buffer
	if _, err := RunManyStream(opts, 50, 2, &full); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(full.String(), buf.String()) {
		t.Fatal("canceled run's frames are not a prefix of the full stream")
	}
}

// writerFunc adapts a function to io.Writer for sink instrumentation.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
