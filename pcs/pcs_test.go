package pcs

import (
	"math"
	"testing"
)

func smallOpts(tech Technique, seed int64) Options {
	return Options{
		Technique:        tech,
		Seed:             seed,
		Nodes:            10,
		SearchComponents: 20,
		ArrivalRate:      50,
		Requests:         1500,
	}
}

func TestTechniqueStrings(t *testing.T) {
	want := map[Technique]string{
		Basic: "Basic", RED3: "RED-3", RED5: "RED-5",
		RI90: "RI-90", RI99: "RI-99", PCS: "PCS",
	}
	for tech, name := range want {
		if tech.String() != name {
			t.Errorf("%d.String() = %q, want %q", tech, tech.String(), name)
		}
	}
	if Technique(42).String() == "" {
		t.Error("unknown technique should format")
	}
	if len(Techniques()) != 6 {
		t.Error("Techniques() must list all six")
	}
}

func TestRunBasicCompletesAllRequests(t *testing.T) {
	res, err := Run(smallOpts(Basic, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 1500 {
		t.Fatalf("arrivals = %d", res.Arrivals)
	}
	if res.Completed != 1500 {
		t.Fatalf("completed = %d (light load should drain)", res.Completed)
	}
	if res.AvgOverallMs <= 0 || res.P99ComponentMs <= 0 {
		t.Fatal("latencies missing")
	}
	if res.Technique != "Basic" {
		t.Fatalf("technique = %q", res.Technique)
	}
	if res.BatchJobsStarted == 0 {
		t.Fatal("no batch interference generated")
	}
	if len(res.StageMeanMs) != 3 {
		t.Fatalf("stage means = %v", res.StageMeanMs)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(smallOpts(PCS, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallOpts(PCS, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgOverallMs != b.AvgOverallMs || a.P99ComponentMs != b.P99ComponentMs || a.Migrations != b.Migrations {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
	c, err := Run(smallOpts(PCS, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.AvgOverallMs == a.AvgOverallMs {
		t.Fatal("different seeds produced identical latency (suspicious)")
	}
}

func TestRunPCSMigrates(t *testing.T) {
	res, err := Run(smallOpts(PCS, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("PCS made no migrations")
	}
	if res.SchedulingIntervals == 0 {
		t.Fatal("no scheduling intervals ran")
	}
}

func TestRunAllTechniques(t *testing.T) {
	for _, tech := range Techniques() {
		res, err := Run(smallOpts(tech, 3))
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s completed nothing", tech)
		}
		if tech != PCS && res.Migrations != 0 {
			t.Fatalf("%s migrated %d components; only PCS migrates", tech, res.Migrations)
		}
	}
}

func TestRunPCSBeatsBasicUnderLoad(t *testing.T) {
	// The headline behaviour: at a load where queueing matters, PCS must
	// reduce both metrics relative to Basic. Averaged over seeds to damp
	// run-to-run variance at this reduced scale.
	var basicOverall, basicP99, pcsOverall, pcsP99 float64
	for _, seed := range []int64{4, 5, 6} {
		opts := func(tech Technique) Options {
			o := smallOpts(tech, seed)
			o.ArrivalRate = 250
			o.Requests = 15000
			return o
		}
		basic, err := Run(opts(Basic))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Run(opts(PCS))
		if err != nil {
			t.Fatal(err)
		}
		basicOverall += basic.AvgOverallMs
		basicP99 += basic.P99ComponentMs
		pcsOverall += p.AvgOverallMs
		pcsP99 += p.P99ComponentMs
	}
	if pcsOverall >= basicOverall {
		t.Errorf("PCS mean overall %.2fms not below Basic %.2fms", pcsOverall/3, basicOverall/3)
	}
	if pcsP99 >= basicP99 {
		t.Errorf("PCS mean p99 %.2fms not below Basic %.2fms", pcsP99/3, basicP99/3)
	}
}

func TestRunRejectsBadQueueModel(t *testing.T) {
	o := smallOpts(PCS, 5)
	o.QueueModel = "m/m/17"
	if _, err := Run(o); err == nil {
		t.Fatal("bad queue model accepted")
	}
}

func TestRunQueueModelVariants(t *testing.T) {
	for _, qm := range []string{"mg1", "mm1", "none"} {
		o := smallOpts(PCS, 6)
		o.QueueModel = qm
		if _, err := Run(o); err != nil {
			t.Fatalf("queue model %q: %v", qm, err)
		}
	}
}

func TestExpectedLatencyMG1Exported(t *testing.T) {
	// x̄=10ms, C²=1, λ=50 → ρ=0.5 → l = 20ms.
	got := ExpectedLatencyMG1(0.010, 0.0001, 50)
	if math.Abs(got-0.020) > 1e-12 {
		t.Fatalf("ExpectedLatencyMG1 = %v, want 0.020", got)
	}
}

func TestStageAndOverallLatencyExported(t *testing.T) {
	if got := StageLatency([]float64{1, 3, 2}); got != 3 {
		t.Fatalf("StageLatency = %v", got)
	}
	if got := OverallLatency([]float64{1, 3, 2}); got != 6 {
		t.Fatalf("OverallLatency = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.ArrivalRate != 100 || o.Requests != 20000 {
		t.Fatalf("workload defaults: %+v", o)
	}
	if o.EpsilonSeconds <= 0 || o.SchedulingInterval != 5 || o.MaxMigrationsPerInterval != 20 {
		t.Fatalf("scheduling defaults: %+v", o)
	}
	// -1 removes the migration cap.
	o2 := Options{MaxMigrationsPerInterval: -1}.withDefaults()
	if o2.MaxMigrationsPerInterval != 0 {
		t.Fatalf("uncapped = %d", o2.MaxMigrationsPerInterval)
	}
	// Deployment and batch-interference defaults come from the scenario,
	// resolved when the simulation is built.
	s, err := NewSimulation(Options{Technique: Basic, Requests: 100})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Options()
	if r.Scenario != "nutch-search" || r.Nodes != 30 || r.BatchConcurrency != 2 ||
		r.MinInputMB != 1 || r.MaxInputMB != 10*1024 {
		t.Fatalf("scenario defaults not applied: %+v", r)
	}
}

func TestNegativeOneDisablesZeroValueTraps(t *testing.T) {
	// 0 keeps each default; -1 (any negative) is an explicit "off" that
	// used to be unreachable because withDefaults coerced ≤0 back to the
	// default.
	def := Options{}.withDefaults()
	if def.CancelDelaySeconds != 0.003 || def.WarmupFraction != 0.15 || def.DrainSeconds != 10 {
		t.Fatalf("defaults: %+v", def)
	}
	off := Options{CancelDelaySeconds: -1, WarmupFraction: -1, DrainSeconds: -1}.withDefaults()
	if off.CancelDelaySeconds != 0 {
		t.Fatalf("CancelDelaySeconds -1 → %v, want 0 (instant cancellation)", off.CancelDelaySeconds)
	}
	if off.WarmupFraction != 0 {
		t.Fatalf("WarmupFraction -1 → %v, want 0 (no warmup exclusion)", off.WarmupFraction)
	}
	if off.DrainSeconds != 0 {
		t.Fatalf("DrainSeconds -1 → %v, want 0 (no drain)", off.DrainSeconds)
	}
	// Explicit values still win.
	set := Options{CancelDelaySeconds: 0.01, WarmupFraction: 0.3, DrainSeconds: 5}.withDefaults()
	if set.CancelDelaySeconds != 0.01 || set.WarmupFraction != 0.3 || set.DrainSeconds != 5 {
		t.Fatalf("explicit values clobbered: %+v", set)
	}
}

func TestNegativeOneOffValuesRunEndToEnd(t *testing.T) {
	o := smallOpts(RED3, 11)
	o.CancelDelaySeconds = -1
	o.WarmupFraction = -1
	o.DrainSeconds = -1
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// With no drain the horizon ends at the arrival window.
	if want := float64(o.Requests) / o.ArrivalRate; res.VirtualSeconds != want {
		t.Fatalf("VirtualSeconds = %v, want %v (no drain)", res.VirtualSeconds, want)
	}
	// With no warmup every completed request is observed; the observed
	// run must differ from the defaulted one.
	defRes, err := Run(smallOpts(RED3, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgOverallMs == defRes.AvgOverallMs {
		t.Fatal("disabling warmup/drain changed nothing (suspicious)")
	}
}

func TestParseTechnique(t *testing.T) {
	cases := map[string]Technique{
		"Basic": Basic, "basic": Basic,
		"RED-3": RED3, "red3": RED3, "Red-5": RED5,
		"RI-90": RI90, "ri90": RI90, "RI-99": RI99,
		"PCS": PCS, "pcs": PCS, " pcs ": PCS,
	}
	for in, want := range cases {
		got, err := ParseTechnique(in)
		if err != nil {
			t.Errorf("ParseTechnique(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseTechnique(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseTechnique("RED-7"); err == nil {
		t.Error("ParseTechnique accepted RED-7")
	}
	if _, err := ParseTechnique(""); err == nil {
		t.Error("ParseTechnique accepted empty string")
	}
}

func TestRunUnknownTechnique(t *testing.T) {
	o := smallOpts(Technique(42), 1)
	if _, err := Run(o); err == nil {
		t.Fatal("unknown technique accepted")
	}
}
