package pcs

import (
	"math"
	"testing"
)

func smallOpts(tech Technique, seed int64) Options {
	return Options{
		Technique:        tech,
		Seed:             seed,
		Nodes:            10,
		SearchComponents: 20,
		ArrivalRate:      50,
		Requests:         1500,
	}
}

func TestTechniqueStrings(t *testing.T) {
	want := map[Technique]string{
		Basic: "Basic", RED3: "RED-3", RED5: "RED-5",
		RI90: "RI-90", RI99: "RI-99", PCS: "PCS",
	}
	for tech, name := range want {
		if tech.String() != name {
			t.Errorf("%d.String() = %q, want %q", tech, tech.String(), name)
		}
	}
	if Technique(42).String() == "" {
		t.Error("unknown technique should format")
	}
	if len(Techniques()) != 6 {
		t.Error("Techniques() must list all six")
	}
}

func TestRunBasicCompletesAllRequests(t *testing.T) {
	res, err := Run(smallOpts(Basic, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 1500 {
		t.Fatalf("arrivals = %d", res.Arrivals)
	}
	if res.Completed != 1500 {
		t.Fatalf("completed = %d (light load should drain)", res.Completed)
	}
	if res.AvgOverallMs <= 0 || res.P99ComponentMs <= 0 {
		t.Fatal("latencies missing")
	}
	if res.Technique != "Basic" {
		t.Fatalf("technique = %q", res.Technique)
	}
	if res.BatchJobsStarted == 0 {
		t.Fatal("no batch interference generated")
	}
	if len(res.StageMeanMs) != 3 {
		t.Fatalf("stage means = %v", res.StageMeanMs)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(smallOpts(PCS, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallOpts(PCS, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgOverallMs != b.AvgOverallMs || a.P99ComponentMs != b.P99ComponentMs || a.Migrations != b.Migrations {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
	c, err := Run(smallOpts(PCS, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c.AvgOverallMs == a.AvgOverallMs {
		t.Fatal("different seeds produced identical latency (suspicious)")
	}
}

func TestRunPCSMigrates(t *testing.T) {
	res, err := Run(smallOpts(PCS, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatal("PCS made no migrations")
	}
	if res.SchedulingIntervals == 0 {
		t.Fatal("no scheduling intervals ran")
	}
}

func TestRunAllTechniques(t *testing.T) {
	for _, tech := range Techniques() {
		res, err := Run(smallOpts(tech, 3))
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		if res.Completed == 0 {
			t.Fatalf("%s completed nothing", tech)
		}
		if tech != PCS && res.Migrations != 0 {
			t.Fatalf("%s migrated %d components; only PCS migrates", tech, res.Migrations)
		}
	}
}

func TestRunPCSBeatsBasicUnderLoad(t *testing.T) {
	// The headline behaviour: at a load where queueing matters, PCS must
	// reduce both metrics relative to Basic. Averaged over seeds to damp
	// run-to-run variance at this reduced scale.
	var basicOverall, basicP99, pcsOverall, pcsP99 float64
	for _, seed := range []int64{4, 5, 6} {
		opts := func(tech Technique) Options {
			o := smallOpts(tech, seed)
			o.ArrivalRate = 250
			o.Requests = 15000
			return o
		}
		basic, err := Run(opts(Basic))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Run(opts(PCS))
		if err != nil {
			t.Fatal(err)
		}
		basicOverall += basic.AvgOverallMs
		basicP99 += basic.P99ComponentMs
		pcsOverall += p.AvgOverallMs
		pcsP99 += p.P99ComponentMs
	}
	if pcsOverall >= basicOverall {
		t.Errorf("PCS mean overall %.2fms not below Basic %.2fms", pcsOverall/3, basicOverall/3)
	}
	if pcsP99 >= basicP99 {
		t.Errorf("PCS mean p99 %.2fms not below Basic %.2fms", pcsP99/3, basicP99/3)
	}
}

func TestRunRejectsBadQueueModel(t *testing.T) {
	o := smallOpts(PCS, 5)
	o.QueueModel = "m/m/17"
	if _, err := Run(o); err == nil {
		t.Fatal("bad queue model accepted")
	}
}

func TestRunQueueModelVariants(t *testing.T) {
	for _, qm := range []string{"mg1", "mm1", "none"} {
		o := smallOpts(PCS, 6)
		o.QueueModel = qm
		if _, err := Run(o); err != nil {
			t.Fatalf("queue model %q: %v", qm, err)
		}
	}
}

func TestExpectedLatencyMG1Exported(t *testing.T) {
	// x̄=10ms, C²=1, λ=50 → ρ=0.5 → l = 20ms.
	got := ExpectedLatencyMG1(0.010, 0.0001, 50)
	if math.Abs(got-0.020) > 1e-12 {
		t.Fatalf("ExpectedLatencyMG1 = %v, want 0.020", got)
	}
}

func TestStageAndOverallLatencyExported(t *testing.T) {
	if got := StageLatency([]float64{1, 3, 2}); got != 3 {
		t.Fatalf("StageLatency = %v", got)
	}
	if got := OverallLatency([]float64{1, 3, 2}); got != 6 {
		t.Fatalf("OverallLatency = %v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Nodes != 30 || o.SearchComponents != 100 || o.ArrivalRate != 100 {
		t.Fatalf("deployment defaults: %+v", o)
	}
	if o.EpsilonSeconds <= 0 || o.SchedulingInterval != 5 || o.MaxMigrationsPerInterval != 20 {
		t.Fatalf("scheduling defaults: %+v", o)
	}
	// -1 removes the migration cap.
	o2 := Options{MaxMigrationsPerInterval: -1}.withDefaults()
	if o2.MaxMigrationsPerInterval != 0 {
		t.Fatalf("uncapped = %d", o2.MaxMigrationsPerInterval)
	}
}

func TestRunUnknownTechnique(t *testing.T) {
	o := smallOpts(Technique(42), 1)
	if _, err := Run(o); err == nil {
		t.Fatal("unknown technique accepted")
	}
}
