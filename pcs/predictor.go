package pcs

import (
	"fmt"

	"repro/internal/predictor"
)

// queueModelFor parses the Options.QueueModel string.
func queueModelFor(s string) (predictor.QueueModel, error) {
	switch s {
	case "", "mg1":
		return predictor.MG1, nil
	case "mm1":
		return predictor.MM1, nil
	case "none":
		return predictor.NoQueue, nil
	default:
		return predictor.MG1, fmt.Errorf("pcs: unknown queue model %q (want mg1, mm1 or none)", s)
	}
}

// ExpectedLatencyMG1 exposes the paper's Eq. 2 for library users: the
// expected latency of an M/G/1 component given its mean service time
// (seconds), service-time variance and arrival rate (requests/second).
func ExpectedLatencyMG1(meanServiceTime, serviceTimeVariance, arrivalRate float64) float64 {
	return predictor.ExpectedLatency(predictor.MG1, meanServiceTime, serviceTimeVariance,
		arrivalRate, predictor.DefaultLatencyParams())
}

// StageLatency exposes Eq. 3: a stage's latency is the maximum of its
// parallel components' latencies.
func StageLatency(componentLatencies []float64) float64 {
	return predictor.StageLatency(componentLatencies)
}

// OverallLatency exposes Eq. 4: the overall latency of a sequential-stage
// service is the sum of stage latencies.
func OverallLatency(stageLatencies []float64) float64 {
	return predictor.OverallLatency(stageLatencies)
}
