package pcs

import (
	"reflect"
	"testing"
)

// equivOpts keeps the technique × scenario equivalence matrix fast: tiny
// cluster, short run, cheap PCS training. Equivalence is exact, so scale
// does not weaken the check.
func equivOpts(tech Technique, scenarioName string, seed int64) Options {
	return Options{
		Technique:        tech,
		Scenario:         scenarioName,
		Seed:             seed,
		Nodes:            8,
		SearchComponents: 12,
		ArrivalRate:      60,
		Requests:         600,
		TrainingMixes:    15,
		ProfilingProbes:  40,
	}
}

// stepwise drives a Simulation to its horizon in pieces — quarter-horizon
// RunTo slices with Snapshot observations in between, then single Steps,
// then Finish — exercising every way a caller can advance the clock.
func stepwise(t *testing.T, opts Options) Result {
	t.Helper()
	s, err := NewSimulation(opts)
	if err != nil {
		t.Fatal(err)
	}
	h := s.Horizon()
	for _, frac := range []float64{0.25, 0.5, 0.5, 0.75} { // repeat: RunTo is idempotent
		s.RunTo(frac * h)
		s.Snapshot() // observation must not perturb the run
	}
	for i := 0; i < 50 && s.Step(); i++ {
	}
	return s.Finish()
}

// TestSimulationEquivalentToRunAllTechniques is the tentpole's acceptance
// gate: for every technique, pcs.Run and a step-driven
// NewSimulation+RunTo+Step+Finish produce bit-identical Results.
func TestSimulationEquivalentToRunAllTechniques(t *testing.T) {
	for _, tech := range Techniques() {
		opts := equivOpts(tech, "", 7)
		direct, err := Run(opts)
		if err != nil {
			t.Fatalf("%s: %v", tech, err)
		}
		stepped := stepwise(t, opts)
		if !reflect.DeepEqual(direct, stepped) {
			t.Errorf("%s: stepped run diverged\nRun:    %+v\nStepped: %+v", tech, direct, stepped)
		}
	}
}

// TestSimulationEquivalentToRunAllScenarios repeats the equivalence check
// on every registered scenario, under Basic and PCS (the two techniques
// with distinct wiring: no controller vs full training + controller).
func TestSimulationEquivalentToRunAllScenarios(t *testing.T) {
	for _, name := range Scenarios() {
		for _, tech := range []Technique{Basic, PCS} {
			opts := equivOpts(tech, name, 11)
			direct, err := Run(opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, tech, err)
			}
			if direct.Scenario != name {
				t.Fatalf("%s/%s: Result.Scenario = %q", name, tech, direct.Scenario)
			}
			if direct.Completed == 0 {
				t.Fatalf("%s/%s: nothing completed", name, tech)
			}
			stepped := stepwise(t, opts)
			if !reflect.DeepEqual(direct, stepped) {
				t.Errorf("%s/%s: stepped run diverged\nRun:    %+v\nStepped: %+v",
					name, tech, direct, stepped)
			}
		}
	}
}

func TestRunUnknownScenarioErrors(t *testing.T) {
	o := equivOpts(Basic, "no-such-scenario", 1)
	if _, err := Run(o); err == nil {
		t.Fatal("Run accepted unknown scenario")
	}
	if _, err := NewSimulation(o); err == nil {
		t.Fatal("NewSimulation accepted unknown scenario")
	}
}

func TestSimulationSnapshotProgresses(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 3))
	if err != nil {
		t.Fatal(err)
	}
	start := s.Snapshot()
	if start.Now != 0 || start.Arrivals != 0 || start.Completed != 0 {
		t.Fatalf("fresh snapshot not at origin: %+v", start)
	}
	if start.PendingEvents == 0 {
		t.Fatal("fresh simulation has no scheduled events — world not started")
	}
	mid := s.Horizon() / 2
	s.RunTo(mid)
	half := s.Snapshot()
	if half.Now != mid {
		t.Fatalf("RunTo(%v) left clock at %v", mid, half.Now)
	}
	if half.Arrivals == 0 || half.Completed == 0 || half.BatchJobsStarted == 0 {
		t.Fatalf("half-run world inactive: %+v", half)
	}
	if half.Arrivals >= 600 {
		t.Fatalf("half the run already saw all %d arrivals", half.Arrivals)
	}
	final := s.Finish()
	end := s.Snapshot()
	if end.Completed != final.Completed || end.Arrivals != final.Arrivals {
		t.Fatalf("post-finish snapshot %+v disagrees with result %+v", end, final)
	}
	if half.Completed >= final.Completed {
		t.Fatalf("no progress after mid-run: %d → %d", half.Completed, final.Completed)
	}
}

func TestSimulationRunToClampsAndIsMonotone(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 5))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RunTo(s.Horizon() * 10); got != s.Horizon() {
		t.Fatalf("RunTo past horizon → %v, want clamp to %v", got, s.Horizon())
	}
	if got := s.RunTo(1); got != s.Horizon() {
		t.Fatalf("RunTo backwards moved the clock to %v", got)
	}
	if s.Step() {
		t.Fatal("Step past horizon executed an event")
	}
}

func TestSimulationFinishIdempotent(t *testing.T) {
	s, err := NewSimulation(equivOpts(Basic, "", 9))
	if err != nil {
		t.Fatal(err)
	}
	a := s.Finish()
	b := s.Finish()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("second Finish differs:\n%+v\n%+v", a, b)
	}
}

func TestRunScenarioEcommerceEndToEnd(t *testing.T) {
	res, err := Run(Options{
		Technique:   Basic,
		Scenario:    "ecommerce",
		Seed:        2,
		ArrivalRate: 60,
		Requests:    800,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "ecommerce" {
		t.Fatalf("scenario = %q", res.Scenario)
	}
	// The e-commerce topology has four stages; its defaults (16 nodes,
	// two-phase jobs) come from the registry.
	if len(res.StageMeanMs) != 4 {
		t.Fatalf("stage means = %v, want 4 stages", res.StageMeanMs)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestScenariosListed(t *testing.T) {
	names := Scenarios()
	if len(names) < 4 {
		t.Fatalf("Scenarios() = %v, want ≥4", names)
	}
	if DescribeScenarios() == "" {
		t.Fatal("DescribeScenarios() empty")
	}
}

func TestTwoPhaseJobsTriState(t *testing.T) {
	// ecommerce defaults two-phase jobs on; 0 inherits, -1 forces off,
	// +1 forces on. The resolved option is visible on the Simulation.
	base := equivOpts(Basic, "ecommerce", 4)
	inherit, err := NewSimulation(base)
	if err != nil {
		t.Fatal(err)
	}
	if inherit.Options().TwoPhaseJobs <= 0 {
		t.Fatalf("ecommerce default not inherited: TwoPhaseJobs = %d", inherit.Options().TwoPhaseJobs)
	}
	offOpts := base
	offOpts.TwoPhaseJobs = -1
	off, err := NewSimulation(offOpts)
	if err != nil {
		t.Fatal(err)
	}
	if off.Options().TwoPhaseJobs != -1 {
		t.Fatalf("explicit off overridden: TwoPhaseJobs = %d", off.Options().TwoPhaseJobs)
	}
	// The switch must reach the world: same seed, different interference
	// dynamics.
	onRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	offRes, err := Run(offOpts)
	if err != nil {
		t.Fatal(err)
	}
	if onRes.AvgOverallMs == offRes.AvgOverallMs {
		t.Fatal("disabling two-phase jobs changed nothing (suspicious)")
	}
	// nutch-search defaults them off; forcing on must differ too.
	nutch := equivOpts(Basic, "", 4)
	forced := nutch
	forced.TwoPhaseJobs = 1
	a, err := Run(nutch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(forced)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgOverallMs == b.AvgOverallMs {
		t.Fatal("forcing two-phase jobs on changed nothing (suspicious)")
	}
}
