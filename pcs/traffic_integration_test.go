package pcs

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// TestPoissonSpecMatchesScalarRun pins the compat design point: an
// explicit {Kind: "poisson"} TrafficSpec is built from the same RNG fork
// position StartArrivals takes, so it reproduces the scalar path's draws
// exactly. Every computed value matches; only the Traffic label differs.
func TestPoissonSpecMatchesScalarRun(t *testing.T) {
	opts := equivOpts(Basic, "", 37)
	scalar, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Traffic = &TrafficSpec{Kind: "poisson"}
	spec, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Traffic == "" {
		t.Fatal("spec-built run carries no traffic label")
	}
	spec.Traffic = scalar.Traffic
	if !reflect.DeepEqual(spec, scalar) {
		t.Fatalf("poisson spec diverged from the scalar path:\nspec:   %+v\nscalar: %+v", spec, scalar)
	}
}

// TestTraceReplayEndToEnd replays the checked-in CI fixture through a full
// simulation: the replay is deterministic, arrival counts match the trace,
// and the tenant tags recorded in the trace come back as per-tenant
// breakdowns.
func TestTraceReplayEndToEnd(t *testing.T) {
	opts := equivOpts(Basic, "", 43)
	opts.Requests = 1000
	opts.ArrivalRate = 100
	opts.Traffic = &TrafficSpec{Kind: "trace", Path: "../testdata/traces/sample-1k.ndjson"}
	first, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Arrivals != 1000 {
		t.Fatalf("replayed %d arrivals, trace holds 1000", first.Arrivals)
	}
	if len(first.Tenants) != 3 {
		t.Fatalf("tenant breakdown %+v, want the trace's batch/mobile/web", first.Tenants)
	}
	for i, name := range []string{"batch", "mobile", "web"} {
		ten := first.Tenants[i]
		if ten.Name != name || ten.Admitted == 0 || ten.P99Ms <= 0 {
			t.Fatalf("tenant %d = %+v, want admitted %s traffic with latencies", i, ten, name)
		}
	}
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportBytes(t, again), reportBytes(t, first); string(got) != string(want) {
		t.Fatalf("trace replay not deterministic:\nfirst: %s\nagain: %s", want, got)
	}
}

// TestTenantStormAcceptance is the PR's acceptance gate: the tenant-storm
// scenario — three tenants, token-bucket admission, an MMPP storm that
// blows through the crawler's budget — produces byte-identical reports,
// including per-tenant p99 and drop counts, across shard counts, and
// bit-identical aggregates across worker counts.
func TestTenantStormAcceptance(t *testing.T) {
	opts := Options{
		Technique:   Basic,
		Scenario:    "tenant-storm",
		Seed:        41,
		ArrivalRate: 90,
		Requests:    6000,
	}
	baseline, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Tenants) != 3 {
		t.Fatalf("tenant breakdown %+v, want 3 tenants", baseline.Tenants)
	}
	drops := 0
	for _, ten := range baseline.Tenants {
		drops += ten.Dropped
		if ten.Offered != ten.Admitted+ten.Dropped {
			t.Fatalf("tenant %s accounting broken: %+v", ten.Name, ten)
		}
	}
	if drops == 0 {
		t.Fatal("no admission drops: the storm never exceeded the crawler's bucket")
	}
	if baseline.AdmissionDrops != drops {
		t.Fatalf("Result.AdmissionDrops = %d, per-tenant drops sum to %d", baseline.AdmissionDrops, drops)
	}

	want := reportBytes(t, baseline)
	for _, shards := range shardCounts[1:] {
		o := opts
		o.Shards = shards
		res, err := Run(o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := reportBytes(t, res); string(got) != string(want) {
			t.Errorf("report at -shards %d diverged (per-tenant p99/drops included)\nshards: %s\nseq:    %s",
				shards, got, want)
		}
	}

	// Workers × shards: replication aggregates carry every per-tenant
	// breakdown in their Runs, so DeepEqual pins those too.
	small := opts
	small.Requests = 3000
	var ref Aggregate
	for i, combo := range []struct{ workers, shards int }{{1, 1}, {4, 2}, {8, 4}, {2, 8}} {
		o := small
		o.Shards = combo.shards
		agg, err := RunManyWorkers(o, 3, combo.workers)
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", combo.workers, combo.shards, err)
		}
		agg.Workers = 0 // wall-clock budgeting detail, legitimately varies
		if i == 0 {
			ref = agg
			continue
		}
		if !reflect.DeepEqual(agg, ref) {
			t.Errorf("aggregate at workers=%d shards=%d diverged from workers=1 shards=1",
				combo.workers, combo.shards)
		}
	}
}

// writeSyntheticTrace writes an n-arrival NDJSON trace at roughly the
// given rate, tenant-tagged, for steering tests that need more headroom
// than the checked-in fixture.
func writeSyntheticTrace(t *testing.T, n int, rate float64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "steer.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src := xrand.New(7)
	now := 0.0
	for i := 0; i < n; i++ {
		now += src.Exp(1 / rate)
		tenant := "blue"
		if i%3 == 0 {
			tenant = "green"
		}
		fmt.Fprintf(f, "{\"t\": %.9f, \"tenant\": %q}\n", now, tenant)
	}
	return path
}

// TestSteeringComposesWithTrafficSources pins the tentpole's API claim:
// every Controller steering verb acts on any traffic.Source, not just the
// scalar Poisson stream. Rate steps and sinusoidal modulation over trace
// replay and session populations change the run (speed scaling is real)
// and stay byte-identical at every shard count.
func TestSteeringComposesWithTrafficSources(t *testing.T) {
	tracePath := writeSyntheticTrace(t, 2500, 60)
	specs := map[string]*TrafficSpec{
		"trace":    {Kind: "trace", Path: tracePath},
		"sessions": {Kind: "sessions", Users: 120, ThinkSeconds: 2},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			steered := func(shards int) Result {
				o := equivOpts(Basic, "", 47)
				o.Traffic = spec
				o.Shards = shards
				s, err := NewSimulation(o)
				if err != nil {
					t.Fatal(err)
				}
				ctrl := s.Controller()
				h := s.Horizon()
				if err := ctrl.SetArrivalRateAt(0.2*h, 110); err != nil {
					t.Fatal(err)
				}
				if err := ctrl.SetArrivalRateAt(0.5*h, 60); err != nil {
					t.Fatal(err)
				}
				if err := ctrl.ModulateArrivalRate(h/2, 0.4, 8); err != nil {
					t.Fatal(err)
				}
				return s.Finish()
			}
			base := steered(1)

			// Steering must actually reshape the run relative to the same
			// source left alone.
			o := equivOpts(Basic, "", 47)
			o.Traffic = spec
			flat, err := Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if base.VirtualSeconds == flat.VirtualSeconds && base.AvgOverallMs == flat.AvgOverallMs {
				t.Fatalf("steering had no effect on the %s source", name)
			}

			want := reportBytes(t, base)
			for _, shards := range shardCounts[1:] {
				if got := reportBytes(t, steered(shards)); string(got) != string(want) {
					t.Errorf("steered %s run at -shards %d diverged\nshards: %s\nseq:    %s",
						name, shards, got, want)
				}
			}
		})
	}
}

// TestAdmissionFactorOverTrafficSources pins the third steering surface —
// hard admission scaling (the PID throttle's actuator) — over non-Poisson
// sources, and the Snapshot gauges that expose it: OfferedRate stays the
// nominal intensity while AdmittedRate tracks OfferedRate × factor.
func TestAdmissionFactorOverTrafficSources(t *testing.T) {
	tracePath := writeSyntheticTrace(t, 2500, 60)
	specs := map[string]*TrafficSpec{
		"trace":    {Kind: "trace", Path: tracePath},
		"sessions": {Kind: "sessions", Users: 120, ThinkSeconds: 2},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			run := func(shards int) (Result, Snapshot) {
				o := equivOpts(Basic, "", 53)
				o.Traffic = spec
				o.Shards = shards
				s, err := NewSimulation(o)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Controller().SetAdmissionFactorAt(0.25*s.Horizon(), 0.5); err != nil {
					t.Fatal(err)
				}
				s.RunTo(0.5 * s.Horizon())
				mid := s.Snapshot()
				return s.Finish(), mid
			}
			base, mid := run(1)
			if mid.AdmissionFactor != 0.5 {
				t.Fatalf("admission factor %g at mid-run, want 0.5", mid.AdmissionFactor)
			}
			if mid.OfferedRate <= 0 {
				t.Fatalf("OfferedRate gauge %g, want the positive nominal intensity", mid.OfferedRate)
			}
			// Sessions report nominal × speed exactly; a replay reports its
			// windowed empirical rate, so the halving shows as a band.
			ratio := mid.AdmittedRate / mid.OfferedRate
			if name == "sessions" && ratio != 0.5 {
				t.Fatalf("gauges offered=%g admitted=%g, want admitted = offered × 0.5",
					mid.OfferedRate, mid.AdmittedRate)
			}
			if ratio <= 0.3 || ratio >= 0.75 {
				t.Fatalf("throttle invisible in gauges: offered=%g admitted=%g",
					mid.OfferedRate, mid.AdmittedRate)
			}
			want := reportBytes(t, base)
			for _, shards := range []int{2, 8} {
				res, _ := run(shards)
				if got := reportBytes(t, res); string(got) != string(want) {
					t.Errorf("throttled %s run at -shards %d diverged", name, shards)
				}
			}
		})
	}
}

// TestSessionDiurnalModulatesOfferedLoad drives the session-diurnal
// scenario with snapshot sampling: the diurnal steering script must
// actually swing the population's offered rate over the run.
func TestSessionDiurnalModulatesOfferedLoad(t *testing.T) {
	o := Options{
		Technique:   Basic,
		Scenario:    "session-diurnal",
		Seed:        59,
		ArrivalRate: 100,
		Requests:    2000,
	}
	s, err := NewSimulation(o)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 0.0, 0.0
	if err := s.SampleEvery(s.Horizon()/64, func(sn Snapshot) {
		if min == 0 || sn.AdmittedRate < min {
			min = sn.AdmittedRate
		}
		if sn.AdmittedRate > max {
			max = sn.AdmittedRate
		}
	}); err != nil {
		t.Fatal(err)
	}
	res := s.Finish()
	if res.Traffic == "" || res.Completed == 0 {
		t.Fatalf("session-diurnal run incomplete: %+v", res)
	}
	// ±50% amplitude: the sampled admitted rate must swing well beyond
	// numeric noise around the 100 req/s nominal.
	if min == 0 || max/min < 1.5 {
		t.Fatalf("diurnal modulation missing: admitted rate stayed in [%g, %g]", min, max)
	}
}

// TestPolicyOverSessionTraffic composes the closed-loop layer with a
// session population: the PID admission throttle runs against a sessions
// source (its actuator lands on Source.SetRate speed scaling) and the run
// stays deterministic.
func TestPolicyOverSessionTraffic(t *testing.T) {
	o := equivOpts(Basic, "", 61)
	o.Traffic = &TrafficSpec{Kind: "sessions", Users: 400, ThinkSeconds: 1}
	o.Policy = "pid-throttle"
	first, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if first.Policy != "pid-throttle" {
		t.Fatalf("policy %q did not run", first.Policy)
	}
	again, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportBytes(t, again), reportBytes(t, first); string(got) != string(want) {
		t.Fatalf("policy over sessions not deterministic:\nfirst: %s\nagain: %s", want, got)
	}
}
