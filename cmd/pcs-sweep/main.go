// Command pcs-sweep regenerates the paper's Fig. 6: average overall service
// latency and 99th-percentile component latency for Basic, RED-3, RED-5,
// RI-90, RI-99 and PCS across the six arrival rates, plus the headline
// aggregate reductions (paper: −67.05 % p99 component latency and −64.16 %
// average overall latency versus the redundancy/reissue techniques).
//
// The sweep runs any registered scenario (-scenario) and any technique
// subset (-techniques); the defaults reproduce the paper's figure.
// With -stream, every individual run of the sweep is additionally written
// to a file as one NDJSON line (technique, rate, replication, seed, full
// result) so huge sweeps leave a per-run record on disk.
//
// -policy runs every cell under a closed-loop policy ("none" forces the
// scenario's scripted policy off). -policies switches to the policy
// comparison driver instead: a policy × technique grid on one scenario at
// one rate, with deltas against the open-loop baseline —
//
//	pcs-sweep -scenario autoscale-burst -policies none,threshold-autoscale \
//	    -techniques Basic,PCS -rates 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	sf := cliutil.AddSpec(flag.CommandLine).AddReplication()
	var (
		rates      = flag.String("rates", "10,20,50,100,200,500", "comma-separated arrival rates")
		techniques = flag.String("techniques", "", "comma-separated technique subset (empty = all six)")
		policyList = flag.String("policies", "", "run the closed-loop policy comparison instead of the Fig. 6 sweep:\ncomma-separated policies × techniques on the first -rates value\n(\"none\" is the open-loop baseline; \"all\" selects none + every\nregistered policy)")
		streamPath = flag.String("stream", "", "write every run of the sweep (cell coordinates, seed, full result) to this\nfile as NDJSON, alongside the aggregated tables")
	)
	flag.Parse()

	spec, err := sf.Spec()
	if err != nil {
		log.Fatal(err)
	}
	rateList, err := cliutil.ParseRates(*rates)
	if err != nil {
		log.Fatal(err)
	}
	techList, err := cliutil.ParseTechniques(*techniques)
	if err != nil {
		log.Fatal(err)
	}

	if *policyList != "" {
		var pols []string
		if *policyList != "all" {
			for _, p := range strings.Split(*policyList, ",") {
				pols = append(pols, strings.TrimSpace(p))
			}
		}
		cfg := experiments.PolicyGridConfig{
			Seed:             spec.Seed,
			Scenario:         spec.Scenario,
			Traffic:          spec.Traffic,
			Graph:            spec.Graph,
			GraphFile:        spec.GraphFile,
			Policies:         pols,
			Techniques:       techList,
			Rate:             rateList[0],
			Requests:         spec.Requests,
			Nodes:            spec.Nodes,
			SearchComponents: spec.SearchComponents,
			Replications:     spec.Replications,
			Workers:          spec.Workers,
			Shards:           spec.Shards,
			Lanes:            spec.Lanes,
		}
		if *streamPath != "" {
			f, err := os.Create(*streamPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			cfg.Stream = f
		}
		res, err := experiments.RunPolicyGrid(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res.WriteTable(os.Stdout, cfg)
		if *streamPath != "" {
			fmt.Printf("per-run results streamed to %s\n", *streamPath)
		}
		return
	}

	cfg := experiments.Fig6Config{
		Seed:             spec.Seed,
		Scenario:         spec.Scenario,
		Traffic:          spec.Traffic,
		Graph:            spec.Graph,
		GraphFile:        spec.GraphFile,
		Policy:           spec.Policy,
		Rates:            rateList,
		Techniques:       techList,
		Requests:         spec.Requests,
		Nodes:            spec.Nodes,
		SearchComponents: spec.SearchComponents,
		Replications:     spec.Replications,
		Workers:          spec.Workers,
		Shards:           spec.Shards,
		Lanes:            spec.Lanes,
	}
	if *streamPath != "" {
		f, err := os.Create(*streamPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.Stream = f
	}
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.WriteTable(os.Stdout, cfg)
	if *streamPath != "" {
		fmt.Printf("per-run results streamed to %s\n", *streamPath)
	}
}
