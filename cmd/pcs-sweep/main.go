// Command pcs-sweep regenerates the paper's Fig. 6: average overall service
// latency and 99th-percentile component latency for Basic, RED-3, RED-5,
// RI-90, RI-99 and PCS across the six arrival rates, plus the headline
// aggregate reductions (paper: −67.05 % p99 component latency and −64.16 %
// average overall latency versus the redundancy/reissue techniques).
//
// The sweep runs any registered scenario (-scenario) and any technique
// subset (-techniques); the defaults reproduce the paper's figure.
// With -stream, every individual run of the sweep is additionally written
// to a file as one NDJSON line (technique, rate, replication, seed, full
// result) so huge sweeps leave a per-run record on disk.
//
// -policy runs every cell under a closed-loop policy ("none" forces the
// scenario's scripted policy off). -policies switches to the policy
// comparison driver instead: a policy × technique grid on one scenario at
// one rate, with deltas against the open-loop baseline —
//
//	pcs-sweep -scenario autoscale-burst -policies none,threshold-autoscale \
//	    -techniques Basic,PCS -rates 100
//
// -remote fans the sweep out over a fleet of pcs-serve daemons instead of
// running locally: the canonical cells shard round-robin across the listed
// base URLs, each cell's NDJSON frame stream comes back over SSE and is
// merged centrally, and a daemon that dies mid-sweep has its shard retried
// on the survivors. Because the cell→seed derivation lives in
// pcs.SweepSpec.Cells, the fleet's reports are byte-identical to a local
// run of the same sweep —
//
//	pcs-sweep -remote http://a:8344,http://b:8344 -rates 10,20,50
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	sf := cliutil.AddSpec(flag.CommandLine).AddReplication()
	var (
		rates      = flag.String("rates", "10,20,50,100,200,500", "comma-separated arrival rates")
		techniques = flag.String("techniques", "", "comma-separated technique subset (empty = all six)")
		policyList = flag.String("policies", "", "run the closed-loop policy comparison instead of the Fig. 6 sweep:\ncomma-separated policies × techniques on the first -rates value\n(\"none\" is the open-loop baseline; \"all\" selects none + every\nregistered policy)")
		streamPath = flag.String("stream", "", "write every run of the sweep (cell coordinates, seed, full result) to this\nfile as NDJSON, alongside the aggregated tables")
		remotes    = flag.String("remote", "", "fan the sweep out across these pcs-serve daemons (comma-separated base\nURLs) instead of running locally: cells shard round-robin, stream back\nover SSE and merge centrally — reports byte-identical to a local run")
	)
	flag.Parse()

	spec, err := sf.Spec()
	if err != nil {
		log.Fatal(err)
	}
	rateList, err := cliutil.ParseRates(*rates)
	if err != nil {
		log.Fatal(err)
	}
	techList, err := cliutil.ParseTechniques(*techniques)
	if err != nil {
		log.Fatal(err)
	}

	if *remotes != "" {
		workers, err := cliutil.ParseRemotes(*remotes)
		if err != nil {
			log.Fatal(err)
		}
		if *policyList != "" || *streamPath != "" {
			log.Fatal("-remote runs the spec sweep only; -policies and -stream are local-mode flags")
		}
		runRemote(spec, techList, rateList, workers)
		return
	}

	if *policyList != "" {
		var pols []string
		if *policyList != "all" {
			for _, p := range strings.Split(*policyList, ",") {
				pols = append(pols, strings.TrimSpace(p))
			}
		}
		cfg := experiments.PolicyGridConfig{
			Seed:             spec.Seed,
			Scenario:         spec.Scenario,
			Traffic:          spec.Traffic,
			Graph:            spec.Graph,
			GraphFile:        spec.GraphFile,
			Policies:         pols,
			Techniques:       techList,
			Rate:             rateList[0],
			Requests:         spec.Requests,
			Nodes:            spec.Nodes,
			SearchComponents: spec.SearchComponents,
			Replications:     spec.Replications,
			Workers:          spec.Workers,
			Shards:           spec.Shards,
			Lanes:            spec.Lanes,
		}
		if *streamPath != "" {
			f, err := os.Create(*streamPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			cfg.Stream = f
		}
		res, err := experiments.RunPolicyGrid(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res.WriteTable(os.Stdout, cfg)
		if *streamPath != "" {
			fmt.Printf("per-run results streamed to %s\n", *streamPath)
		}
		return
	}

	cfg := experiments.Fig6Config{
		Seed:             spec.Seed,
		Scenario:         spec.Scenario,
		Traffic:          spec.Traffic,
		Graph:            spec.Graph,
		GraphFile:        spec.GraphFile,
		Policy:           spec.Policy,
		Rates:            rateList,
		Techniques:       techList,
		Requests:         spec.Requests,
		Nodes:            spec.Nodes,
		SearchComponents: spec.SearchComponents,
		Replications:     spec.Replications,
		Workers:          spec.Workers,
		Shards:           spec.Shards,
		Lanes:            spec.Lanes,
	}
	if *streamPath != "" {
		f, err := os.Create(*streamPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.Stream = f
	}
	res, err := experiments.RunFig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.WriteTable(os.Stdout, cfg)
	if *streamPath != "" {
		fmt.Printf("per-run results streamed to %s\n", *streamPath)
	}
}

// runRemote dispatches the sweep across a pcs-serve fleet and prints the
// per-cell table from the centrally merged reports.
func runRemote(base pcs.RunSpec, techList []pcs.Technique, rates []float64, workers []string) {
	var names []string
	if len(techList) == 0 {
		// Mirror the local driver's "empty = all six" default.
		for _, info := range pcs.TechniqueInfos() {
			names = append(names, info.Name)
		}
	} else {
		for _, t := range techList {
			names = append(names, t.String())
		}
	}
	d := serve.SweepDispatch{
		Spec:    pcs.SweepSpec{Base: base, Techniques: names, Rates: rates},
		Workers: workers,
	}
	cells, err := d.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\trate\tavg overall (ms)\tp99 component (ms)\tworker\tretries")
	for _, cell := range cells {
		fmt.Fprintf(tw, "%s\t%g\t%.3f ± %.3f\t%.3f ± %.3f\t%s\t%d\n",
			cell.Spec.Technique, cell.Spec.Rate,
			cell.Report.AvgOverallMs.Mean, cell.Report.AvgOverallMs.CI95,
			cell.Report.P99ComponentMs.Mean, cell.Report.P99ComponentMs.CI95,
			cell.Worker, cell.Retries)
	}
	tw.Flush()
	fmt.Printf("%d cells across %d daemons; reports merged centrally (byte-identical to a local sweep)\n",
		len(cells), len(workers))
}
