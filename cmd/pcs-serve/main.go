// Command pcs-serve is the simulation daemon: a long-running HTTP
// management plane that accepts runs and sweeps as pcs.RunSpec JSON,
// executes them on a bounded work-queue executor, and streams each run's
// NDJSON replication records over SSE — the exact frames pcs.MergeStream
// folds back into the canonical report.
//
// Usage:
//
//	pcs-serve                        # listen on 127.0.0.1:8344
//	pcs-serve -addr 127.0.0.1:0      # pick a free port (printed on stdout)
//	pcs-serve -capacity 8            # budget 8 core tokens (default: all cores)
//	pcs-serve -state-dir /var/pcs    # durable: runs survive a crash/restart
//
//	curl -d @run.json localhost:8344/v1/runs
//	curl localhost:8344/v1/runs/run-1?wait=1
//	curl -N localhost:8344/v1/runs/run-1/stream
//	curl -d @sweep.json localhost:8344/v1/sweeps
//	curl localhost:8344/metrics
//
// The API reference lives in docs/serve.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"

	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		addr     = flag.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free one)")
		capacity = flag.Int("capacity", 0, "executor core-token budget a run's workers × shards/lanes width is\nadmitted against (0 = all cores); queued work waits, in FIFO order")
		stateDir = flag.String("state-dir", "", "persist every run's spec and NDJSON frames under this directory and\nreplay it on startup: completed runs come back queryable with reports\nrecomputed from the stored bytes, interrupted runs resume from their\ncompleted-replication frontier (empty = in-memory only)")
	)
	flag.Parse()

	tokens := *capacity
	if tokens <= 0 {
		tokens = runtime.GOMAXPROCS(0)
	}
	var s *serve.Server
	if *stateDir != "" {
		var err error
		if s, err = serve.NewWithStore(tokens, *stateDir); err != nil {
			log.Fatal(err)
		}
	} else {
		s = serve.New(tokens)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address on stdout is the startup handshake: scripts
	// (like the CI smoke) read it to find the port when -addr ends in :0.
	fmt.Printf("pcs-serve listening on http://%s (capacity %d tokens)\n", ln.Addr(), tokens)
	log.Fatal(http.Serve(ln, s.Handler()))
}
