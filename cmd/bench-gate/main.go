// Command bench-gate is the CI benchmark-regression gate: it parses the
// text output of `go test -bench`, writes it as a JSON snapshot in the same
// schema as the repo's BENCH_SEED.json, and fails (exit 1) when any
// benchmark's ns/op regressed beyond the allowed ratio against the seed.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | tee bench.txt
//	go run ./cmd/bench-gate -input bench.txt -seed BENCH_SEED.json -out BENCH_PR.json
//
// Benchmarks present in the run but absent from the seed are reported and
// skipped — a new benchmark must not fail the gate that predates it.
// Benchmarks in the seed but absent from the run are likewise only
// reported: CI may shard or filter the pass. Sub-millisecond benchmarks
// are exempt from the ratio check (-min-ns); at one iteration their
// timings are scheduler noise, not signal.
//
// The seed and the CI runner are different machines, so raw ns/op ratios
// carry a machine-speed factor. The gate calibrates it away: the median
// pr/seed ratio across all compared benchmarks is taken as the machine
// factor, and a benchmark fails only when it regressed more than
// -max-ratio beyond that median. A single slow code path stands out; a
// uniformly slower runner does not fail the board (and a uniformly faster
// one does not mask a real regression). -calibrate=false restores raw
// ratios for same-machine comparisons.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's record, schema-compatible with the entries
// of BENCH_SEED.json.
type Benchmark struct {
	Name     string             `json:"name"`
	Iters    int64              `json:"iterations"`
	NsPerOp  float64            `json:"ns_per_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
	AllocsOp *float64           `json:"allocs_per_op,omitempty"`
	BytesOp  *float64           `json:"bytes_per_op,omitempty"`
}

// Snapshot is the JSON file layout shared by BENCH_SEED.json and the
// BENCH_PR.json this tool emits.
type Snapshot struct {
	Command    string      `json:"command"`
	GoVersion  string      `json:"go_version,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Cores      int         `json:"cores,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines:
//
//	BenchmarkName-8   12  345 ns/op  1.5 metric-name  24 B/op  3 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so snapshots from machines with
// different core counts compare by benchmark identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iters: iters}
		fields := strings.Fields(m[3])
		// Result fields come in (value, unit) pairs.
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench-gate: bad value %q on line %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesOp = &v
			case "allocs/op":
				b.AllocsOp = &v
			case "MB/s":
				// throughput is derived from ns/op; not gated
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// gate compares a parsed benchmark run against the seed snapshot and
// returns how many benchmarks regressed beyond maxRatio. A benchmark in
// the run but absent from the seed is reported as NEW and never fails the
// gate — a newly added benchmark (e.g. the BenchmarkTraffic* family) must
// not fail the board that predates it; the seed picks it up when it is
// next regenerated.
func gate(w io.Writer, benches, seed []Benchmark, maxRatio, minNs float64, calibrate bool) int {
	seedBy := make(map[string]Benchmark, len(seed))
	for _, b := range seed {
		seedBy[b.Name] = b
	}

	// Machine-speed calibration: the median pr/seed ratio over the
	// benchmarks eligible for gating.
	factor := 1.0
	if calibrate {
		var ratios []float64
		for _, b := range benches {
			if ref, ok := seedBy[b.Name]; ok && ref.NsPerOp >= minNs {
				ratios = append(ratios, b.NsPerOp/ref.NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			factor = ratios[len(ratios)/2]
			fmt.Fprintf(w, "bench-gate: machine-speed factor %.2fx (median of %d ratios)\n", factor, len(ratios))
		}
	}

	var failed int
	seen := make(map[string]bool, len(benches))
	for _, b := range benches {
		seen[b.Name] = true
		ref, ok := seedBy[b.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "NEW   %-60s %14.0f ns/op (not in seed, skipped)\n", b.Name, b.NsPerOp)
		case ref.NsPerOp < minNs:
			fmt.Fprintf(w, "SKIP  %-60s %14.0f ns/op (seed %.0f below -min-ns)\n", b.Name, b.NsPerOp, ref.NsPerOp)
		case b.NsPerOp > ref.NsPerOp*factor*maxRatio:
			failed++
			fmt.Fprintf(w, "FAIL  %-60s %14.0f ns/op vs seed %.0f (%.2fx > %.2fx allowed)\n",
				b.Name, b.NsPerOp, ref.NsPerOp, b.NsPerOp/(ref.NsPerOp*factor), maxRatio)
		default:
			fmt.Fprintf(w, "ok    %-60s %14.0f ns/op vs seed %.0f (%.2fx)\n",
				b.Name, b.NsPerOp, ref.NsPerOp, b.NsPerOp/(ref.NsPerOp*factor))
		}
	}
	for _, b := range seed {
		if !seen[b.Name] {
			fmt.Fprintf(w, "GONE  %-60s (in seed, not in this run)\n", b.Name)
		}
	}
	return failed
}

func main() {
	log.SetFlags(0)
	var (
		input     = flag.String("input", "-", "benchmark text output to parse ('-' = stdin)")
		seedPath  = flag.String("seed", "BENCH_SEED.json", "seed snapshot to compare against")
		outPath   = flag.String("out", "", "write the parsed run as a JSON snapshot to this path")
		maxRatio  = flag.Float64("max-ratio", 1.25, "fail when ns/op exceeds seed × machine factor × this ratio")
		minNs     = flag.Float64("min-ns", 1e6, "ignore benchmarks whose seed ns/op is below this (timing noise)")
		calibrate = flag.Bool("calibrate", true, "divide out the median pr/seed ratio (machine-speed factor) before gating")
	)
	flag.Parse()

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	benches, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(benches) == 0 {
		log.Fatal("bench-gate: no benchmark result lines found in input")
	}

	// The environment header travels with the snapshot so a seed regenerated
	// on a different machine is legible: speedup-asserting benchmarks
	// (BenchmarkShardedRun, BenchmarkLanedRun, BenchmarkParallelSweep)
	// self-skip their ratio checks when the recorded core count is below the
	// parallelism they exercise, and a reader of BENCH_SEED.json can tell a
	// 1-core seed's ~1x speedups from a regression.
	fmt.Printf("bench-gate: %s, %d cores (GOMAXPROCS), %d cpus\n",
		runtime.Version(), runtime.GOMAXPROCS(0), runtime.NumCPU())

	if *outPath != "" {
		snap := Snapshot{
			Command:    "go test -bench . -benchtime 1x -run ^$ ./...",
			GoVersion:  runtime.Version(),
			Cores:      runtime.GOMAXPROCS(0),
			Benchmarks: benches,
		}
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	seedData, err := os.ReadFile(*seedPath)
	if err != nil {
		log.Fatal(err)
	}
	var seed Snapshot
	if err := json.Unmarshal(seedData, &seed); err != nil {
		log.Fatalf("bench-gate: parsing %s: %v", *seedPath, err)
	}

	failed := gate(os.Stdout, benches, seed.Benchmarks, *maxRatio, *minNs, *calibrate)
	if failed > 0 {
		log.Fatalf("bench-gate: %d benchmark(s) regressed more than %.0f%% vs %s",
			failed, (*maxRatio-1)*100, *seedPath)
	}
	fmt.Printf("bench-gate: %d benchmarks within %.0f%% of %s\n", len(benches), (*maxRatio-1)*100, *seedPath)
}
