package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig5PredictionAccuracy 	       1	 3582327 ns/op	         2.691 mean-err-%	        60.00 cases<3%-%
BenchmarkFig6ServicePerformance/RED-3/λ=10-8         	       1	1474171700 ns/op	         1.657 avg-overall-ms
BenchmarkAblationThreshold/eps=0us-8 	       1	1047724405 ns/op	        41.00 migrations
BenchmarkMatrixBuild-8  	       5	  24249250 ns/op	 1024 B/op	      12 allocs/op
PASS
ok  	repro	142.5s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(benches), benches)
	}
	by := map[string]Benchmark{}
	for _, b := range benches {
		by[b.Name] = b
	}

	// The GOMAXPROCS suffix must be stripped without eating name-internal
	// dashes (RED-3) or digits (eps=0us).
	red3, ok := by["BenchmarkFig6ServicePerformance/RED-3/λ=10"]
	if !ok {
		t.Fatalf("RED-3 sub-benchmark not found: %v", by)
	}
	if red3.NsPerOp != 1474171700 || red3.Metrics["avg-overall-ms"] != 1.657 {
		t.Fatalf("RED-3 parsed wrong: %+v", red3)
	}
	if _, ok := by["BenchmarkAblationThreshold/eps=0us"]; !ok {
		t.Fatalf("eps=0us sub-benchmark not found: %v", by)
	}

	fig5 := by["BenchmarkFig5PredictionAccuracy"]
	if fig5.Iters != 1 || fig5.NsPerOp != 3582327 {
		t.Fatalf("fig5 parsed wrong: %+v", fig5)
	}
	if fig5.Metrics["mean-err-%"] != 2.691 || fig5.Metrics["cases<3%-%"] != 60 {
		t.Fatalf("fig5 metrics parsed wrong: %+v", fig5.Metrics)
	}

	mb := by["BenchmarkMatrixBuild"]
	if mb.Iters != 5 || mb.BytesOp == nil || *mb.BytesOp != 1024 || mb.AllocsOp == nil || *mb.AllocsOp != 12 {
		t.Fatalf("alloc fields parsed wrong: %+v", mb)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	benches, err := parseBench(strings.NewReader("PASS\nok \trepro\t1.0s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(benches))
	}
}
