package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig5PredictionAccuracy 	       1	 3582327 ns/op	         2.691 mean-err-%	        60.00 cases<3%-%
BenchmarkFig6ServicePerformance/RED-3/λ=10-8         	       1	1474171700 ns/op	         1.657 avg-overall-ms
BenchmarkAblationThreshold/eps=0us-8 	       1	1047724405 ns/op	        41.00 migrations
BenchmarkMatrixBuild-8  	       5	  24249250 ns/op	 1024 B/op	      12 allocs/op
PASS
ok  	repro	142.5s
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(benches), benches)
	}
	by := map[string]Benchmark{}
	for _, b := range benches {
		by[b.Name] = b
	}

	// The GOMAXPROCS suffix must be stripped without eating name-internal
	// dashes (RED-3) or digits (eps=0us).
	red3, ok := by["BenchmarkFig6ServicePerformance/RED-3/λ=10"]
	if !ok {
		t.Fatalf("RED-3 sub-benchmark not found: %v", by)
	}
	if red3.NsPerOp != 1474171700 || red3.Metrics["avg-overall-ms"] != 1.657 {
		t.Fatalf("RED-3 parsed wrong: %+v", red3)
	}
	if _, ok := by["BenchmarkAblationThreshold/eps=0us"]; !ok {
		t.Fatalf("eps=0us sub-benchmark not found: %v", by)
	}

	fig5 := by["BenchmarkFig5PredictionAccuracy"]
	if fig5.Iters != 1 || fig5.NsPerOp != 3582327 {
		t.Fatalf("fig5 parsed wrong: %+v", fig5)
	}
	if fig5.Metrics["mean-err-%"] != 2.691 || fig5.Metrics["cases<3%-%"] != 60 {
		t.Fatalf("fig5 metrics parsed wrong: %+v", fig5.Metrics)
	}

	mb := by["BenchmarkMatrixBuild"]
	if mb.Iters != 5 || mb.BytesOp == nil || *mb.BytesOp != 1024 || mb.AllocsOp == nil || *mb.AllocsOp != 12 {
		t.Fatalf("alloc fields parsed wrong: %+v", mb)
	}
}

func TestGateSkipsBenchmarksAbsentFromSeed(t *testing.T) {
	seed := []Benchmark{
		{Name: "BenchmarkFig6ServicePerformance/Basic/λ=10", NsPerOp: 1e9},
	}
	run := []Benchmark{
		{Name: "BenchmarkFig6ServicePerformance/Basic/λ=10", NsPerOp: 1.1e9},
		// Postdates the seed (the BenchmarkTraffic* family): reported as
		// NEW, never failed, however slow it is.
		{Name: "BenchmarkTrafficTenantStorm", NsPerOp: 9e12},
	}
	var out strings.Builder
	if failed := gate(&out, run, seed, 1.25, 1e6, false); failed != 0 {
		t.Fatalf("gate failed %d benchmark(s) on a run with only NEW additions:\n%s", failed, out.String())
	}
	if !strings.Contains(out.String(), "NEW   BenchmarkTrafficTenantStorm") {
		t.Fatalf("NEW benchmark not reported:\n%s", out.String())
	}

	// The same benchmark present in the seed is gated normally.
	seed = append(seed, Benchmark{Name: "BenchmarkTrafficTenantStorm", NsPerOp: 1e9})
	out.Reset()
	if failed := gate(&out, run, seed, 1.25, 1e6, false); failed != 1 {
		t.Fatalf("gate passed a 9000x regression once seeded:\n%s", out.String())
	}
}

func TestGateCalibratesMachineSpeed(t *testing.T) {
	// A uniformly 2x slower runner must not fail the board: the median
	// ratio is divided out before gating.
	seed := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1e9},
		{Name: "BenchmarkB", NsPerOp: 2e9},
		{Name: "BenchmarkC", NsPerOp: 3e9},
	}
	run := []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 2e9},
		{Name: "BenchmarkB", NsPerOp: 4e9},
		{Name: "BenchmarkC", NsPerOp: 6e9},
	}
	var out strings.Builder
	if failed := gate(&out, run, seed, 1.25, 1e6, true); failed != 0 {
		t.Fatalf("uniform 2x slowdown failed the calibrated gate:\n%s", out.String())
	}
	// One benchmark regressing far beyond the machine factor still fails.
	run[1].NsPerOp = 20e9
	out.Reset()
	if failed := gate(&out, run, seed, 1.25, 1e6, true); failed != 1 {
		t.Fatalf("isolated regression hidden by calibration (failed=%d):\n%s", failed, out.String())
	}
}

func TestParseBenchEmpty(t *testing.T) {
	benches, err := parseBench(strings.NewReader("PASS\nok \trepro\t1.0s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 0 {
		t.Fatalf("parsed %d benchmarks from non-bench output", len(benches))
	}
}
