// Command pcs-predict regenerates the paper's Fig. 5: prediction errors of
// the performance model for a searching component co-located with Hadoop
// and Spark batch jobs across input sizes.
//
// Paper reference points: errors < 3 % / 5 % / 8 % in 63.33 % / 82.22 % /
// 96.67 % of the 90 cases; average error 2.68 %.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		seed         = flag.Int64("seed", 1, "random seed")
		scenarioName = cliutil.AddScenario(flag.CommandLine)
		hadoop       = flag.Int("hadoop-sizes", 20, "number of Hadoop input sizes (50MB..4GB)")
		spark        = flag.Int("spark-sizes", 10, "number of Spark input sizes (200MB..7GB)")
		probes       = flag.Int("probes", 100, "probe requests per measurement")
		replications = flag.Int("replications", 1, "independent replications to average (mean±CI95)")
		workers      = flag.Int("workers", 0, "parallel workers (0 = all cores); never affects the results")
		verbose      = flag.Bool("v", false, "print every case, not just the summary")
	)
	flag.Parse()

	cfg := experiments.Fig5Config{
		Seed:        *seed,
		Scenario:    *scenarioName,
		HadoopSizes: *hadoop,
		SparkSizes:  *spark,
		Probes:      *probes,
	}
	agg, err := experiments.RunFig5Many(cfg, *replications, *workers)
	if err != nil {
		log.Fatal(err)
	}
	res := agg.Results[0]
	if *verbose {
		res.WriteTable(os.Stdout)
		if *replications > 1 {
			fmt.Printf("\nacross %d replications: average error %.2f%% ± %.2f%%\n",
				agg.Replications, agg.MeanErrPct, agg.MeanErrCI95)
		}
		return
	}
	// Summary only.
	log.Printf("cases: %d × %d replications", len(res.Cases), agg.Replications)
	log.Printf("error < 3%%: %.2f%% of cases (paper: 63.33%%)", 100*agg.FracBelow3)
	log.Printf("error < 5%%: %.2f%% of cases (paper: 82.22%%)", 100*agg.FracBelow5)
	log.Printf("error < 8%%: %.2f%% of cases (paper: 96.67%%)", 100*agg.FracBelow8)
	if *replications > 1 {
		log.Printf("average error: %.2f%% ± %.2f%% (paper: 2.68%%)", agg.MeanErrPct, agg.MeanErrCI95)
	} else {
		log.Printf("average error: %.2f%% (paper: 2.68%%)", agg.MeanErrPct)
	}
}
