// Command pcs-predict regenerates the paper's Fig. 5: prediction errors of
// the performance model for a searching component co-located with Hadoop
// and Spark batch jobs across input sizes.
//
// Paper reference points: errors < 3 % / 5 % / 8 % in 63.33 % / 82.22 % /
// 96.67 % of the 90 cases; average error 2.68 %.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		hadoop  = flag.Int("hadoop-sizes", 20, "number of Hadoop input sizes (50MB..4GB)")
		spark   = flag.Int("spark-sizes", 10, "number of Spark input sizes (200MB..7GB)")
		probes  = flag.Int("probes", 100, "probe requests per measurement")
		verbose = flag.Bool("v", false, "print every case, not just the summary")
	)
	flag.Parse()

	res, err := experiments.RunFig5(experiments.Fig5Config{
		Seed:        *seed,
		HadoopSizes: *hadoop,
		SparkSizes:  *spark,
		Probes:      *probes,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		res.WriteTable(os.Stdout)
		return
	}
	// Summary only.
	log.Printf("cases: %d", len(res.Cases))
	log.Printf("error < 3%%: %.2f%% of cases (paper: 63.33%%)", 100*res.FracBelow3)
	log.Printf("error < 5%%: %.2f%% of cases (paper: 82.22%%)", 100*res.FracBelow5)
	log.Printf("error < 8%%: %.2f%% of cases (paper: 96.67%%)", 100*res.FracBelow8)
	log.Printf("average error: %.2f%% (paper: 2.68%%)", res.MeanErrPct)
}
