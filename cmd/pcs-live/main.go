// Command pcs-live runs one simulation and renders its metrics time-series
// as a live terminal dashboard: progress, arrival rate, throughput, latency
// quantiles, utilization, queue depth and failure state, each as a
// sparkline over the whole run so far. It is the interactive face of the
// observability layer — the same Snapshot sampling the library exposes via
// Simulation.SampleEvery, drawn at a wall-clock frame rate while virtual
// time advances underneath.
//
// Usage:
//
//	pcs-live -technique PCS -scenario node-failure
//	pcs-live -scenario diurnal-load -throttle 10   # 10 virtual s per wall s
//	pcs-live -plain                                # line-per-sample, no ANSI
//
// Sampling and rendering are observationally free: the Result printed at
// the end is bit-identical to pcs-sim's for the same options.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/metrics"
	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	sf := cliutil.AddSpec(flag.CommandLine).AddRun()
	var (
		sampleEvery = flag.Float64("sample-interval", 0, "virtual seconds between samples (0 = horizon/240)")
		refresh     = flag.Int("refresh", 80, "minimum wall-clock milliseconds between dashboard frames")
		throttle    = flag.Float64("throttle", 0, "virtual seconds simulated per wall-clock second (0 = as fast as possible)")
		plain       = flag.Bool("plain", false, "no ANSI dashboard: print one line per sample (default when stdout is not a terminal)")
		width       = flag.Int("width", 48, "sparkline width in columns")
		listOnly    = flag.Bool("list-scenarios", false, "print the registered scenario names, one per line, and exit\n(lets scripts — like the CI smoke — iterate the registry)")
	)
	flag.Parse()

	if *listOnly {
		for _, name := range pcs.Scenarios() {
			fmt.Println(name)
		}
		return
	}

	spec, err := sf.Spec()
	if err != nil {
		log.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		log.Fatal(err)
	}
	sim, err := pcs.NewSimulation(opts)
	if err != nil {
		log.Fatal(err)
	}

	dt := *sampleEvery
	if dt <= 0 {
		dt = sim.Horizon() / 240
	}
	ansi := !*plain && stdoutIsTerminal()
	d := &dashboard{
		sim:    sim,
		series: metrics.NewSeries[pcs.Snapshot](960),
		ansi:   ansi,
		width:  *width,
	}
	if err := sim.SampleEvery(dt, func(sn pcs.Snapshot) {
		d.series.Observe(sn.Now, sn)
		if !ansi {
			d.plainLine(sn)
		}
	}); err != nil {
		log.Fatal(err)
	}

	frameEvery := time.Duration(*refresh) * time.Millisecond
	lastFrame := time.Time{}
	wallStart := time.Now()
	for sim.Now() < sim.Horizon() {
		sim.RunTo(sim.Now() + dt)
		if *throttle > 0 {
			ahead := time.Duration(sim.Now()/(*throttle)*float64(time.Second)) - time.Since(wallStart)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
		if ansi && time.Since(lastFrame) >= frameEvery {
			d.frame()
			lastFrame = time.Now()
		}
	}
	res := sim.Finish()
	if ansi {
		d.frame()
	}
	fmt.Println()
	res.WriteReport(os.Stdout)
}

// stdoutIsTerminal reports whether stdout is a character device — the
// cheap, dependency-free TTY test.
func stdoutIsTerminal() bool {
	fi, err := os.Stdout.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// dashboard renders the run: either as redrawn ANSI frames or as plain
// line-per-sample output.
type dashboard struct {
	sim           *pcs.Simulation
	series        *metrics.Series[pcs.Snapshot]
	ansi          bool
	width         int
	drawn         int // lines of the previous frame, for the cursor rewind
	loggedActions int // policy actions already printed in plain mode
}

// plainLine prints one sample as a single log line, preceded by any policy
// actions applied since the previous sample.
func (d *dashboard) plainLine(sn pcs.Snapshot) {
	log := d.sim.PolicyLog()
	for ; d.loggedActions < len(log); d.loggedActions++ {
		a := log[d.loggedActions]
		fmt.Printf("t=%8.2fs policy %s: %s=%g (%s)\n", a.T, d.sim.PolicyName(), a.Kind, a.Value, a.Reason)
	}
	fmt.Printf("t=%8.2fs λadm=%6.1f arrived=%7d done=%7d inflight=%5d queued=%5d util=%.2f/%.2f failed=%d avg=%7.3fms p99c=%7.3fms",
		sn.Now, sn.AdmittedRate, sn.Arrivals, sn.Completed, sn.InFlight,
		sn.QueuedExecutions, sn.MeanCoreUtilization, sn.MaxCoreUtilization,
		sn.FailedNodes, sn.AvgOverallMs, sn.P99ComponentMs)
	if d.sim.PolicyName() != "" {
		fmt.Printf(" replicas=%d work=%.2f admit=%.2f", sn.ActiveReplicas, sn.WorkFactor, sn.AdmissionFactor)
	}
	fmt.Println()
}

// frame redraws the ANSI dashboard in place.
func (d *dashboard) frame() {
	samples := d.series.Samples()
	if len(samples) == 0 {
		return
	}
	last := samples[len(samples)-1].Value
	var b strings.Builder
	if d.drawn > 0 {
		fmt.Fprintf(&b, "\x1b[%dA", d.drawn) // rewind to the frame top
	}
	line := func(format string, args ...any) {
		b.WriteString(fmt.Sprintf(format, args...))
		b.WriteString("\x1b[K\n") // clear stale tail of the line
	}

	opts := d.sim.Options()
	progress := last.Now / last.Horizon
	line("pcs-live · scenario %s · technique %s · seed %d", d.sim.Scenario(), opts.Technique, opts.Seed)
	line("t %8.1fs / %.1fs  [%s] %5.1f%%", last.Now, last.Horizon,
		metrics.Gauge(progress, 24), 100*progress)
	line("arrivals %-8d completed %-8d in-flight %-6d migrations %-5d batch jobs %-5d failed nodes %d",
		last.Arrivals, last.Completed, last.InFlight, last.Migrations,
		last.BatchJobsStarted, last.FailedNodes)
	row := func(name string, vals []float64, cur string) {
		line("%-16s %s  %s", name, metrics.Sparkline(vals, d.width), cur)
	}
	row("λ adm req/s", metrics.Values(samples, func(s pcs.Snapshot) float64 { return s.AdmittedRate }),
		fmt.Sprintf("%7.1f", last.AdmittedRate))
	thr := metrics.Rates(samples, func(s pcs.Snapshot) float64 { return float64(s.Completed) })
	row("done req/s", thr, fmt.Sprintf("%7.1f", thr[len(thr)-1]))
	row("avg overall ms", metrics.Values(samples, func(s pcs.Snapshot) float64 { return s.AvgOverallMs }),
		fmt.Sprintf("%7.3f", last.AvgOverallMs))
	row("p99 comp ms", metrics.Values(samples, func(s pcs.Snapshot) float64 { return s.P99ComponentMs }),
		fmt.Sprintf("%7.3f", last.P99ComponentMs))
	row("core util mean", metrics.Values(samples, func(s pcs.Snapshot) float64 { return s.MeanCoreUtilization }),
		fmt.Sprintf("%4.2f  [%s] max %.2f", last.MeanCoreUtilization,
			metrics.Gauge(last.MaxCoreUtilization, 10), last.MaxCoreUtilization))
	row("queued execs", metrics.Values(samples, func(s pcs.Snapshot) float64 { return float64(s.QueuedExecutions) }),
		fmt.Sprintf("%7d", last.QueuedExecutions))
	if name := d.sim.PolicyName(); name != "" {
		row("active replicas", metrics.Values(samples, func(s pcs.Snapshot) float64 { return float64(s.ActiveReplicas) }),
			fmt.Sprintf("%7d  work %.2f  admit %.0f%%", last.ActiveReplicas, last.WorkFactor,
				100*last.AdmissionFactor))
		log := d.sim.PolicyLog()
		annot := "—"
		if n := len(log); n > 0 {
			a := log[n-1]
			annot = fmt.Sprintf("t=%.1fs %s=%g (%s)", a.T, a.Kind, a.Value, a.Reason)
		}
		line("policy %s · %d actions · last: %s", name, len(log), annot)
	}

	d.drawn = strings.Count(b.String(), "\x1b[K\n")
	os.Stdout.WriteString(b.String())
}
