// Command pcs-sim runs one simulation of a multi-stage service under a
// chosen technique and prints a full latency report.
//
// Usage:
//
//	pcs-sim -technique PCS -rate 200 -requests 20000 -seed 1
//	pcs-sim -scenario ecommerce -technique PCS
//	pcs-sim -technique Basic -replications 16
//	pcs-sim -technique Basic -ci-target 0.05
//	pcs-sim -technique Basic -sample-interval 1              # print the run's time-series
//	pcs-sim -scenario autoscale-burst                        # closed-loop: scenario's scripted policy
//	pcs-sim -scenario autoscale-burst -policy none           # the same run open-loop
//	pcs-sim -policy pid-throttle -rate 300                   # admission throttling on any scenario
//	pcs-sim -replications 32 -stream runs.ndjson             # per-replication NDJSON to disk
//	pcs-sim -merge runs.ndjson                               # re-aggregate a stored stream
//	pcs-sim -spec-file run.json                              # run a stored RunSpec
//	pcs-sim -spec-file run.json -json                        # canonical report JSON (daemon-identical)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/cliutil"
	"repro/internal/metrics"
	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	sf := cliutil.AddSpec(flag.CommandLine).AddRun().AddReplication().AddTuning()
	var (
		prof        = cliutil.AddProfile(flag.CommandLine)
		ciTarget    = flag.Float64("ci-target", 0, "adaptive replications: replicate until the relative CI95 half-width\nof both headline metrics falls below this (e.g. 0.05 for ±5%); 0 disables")
		maxReps     = flag.Int("max-replications", 64, "hard replication cap for -ci-target")
		sampleEvery = flag.Float64("sample-interval", 0, "sample a Snapshot every this many virtual seconds during a single run\nand print the time-series after the report; 0 disables. Sampling never\nchanges the results")
		streamPath  = flag.String("stream", "", "with -replications or -ci-target: write each replication's result to this\nfile as NDJSON instead of holding all of them in memory")
		mergePath   = flag.String("merge", "", "aggregate an NDJSON file written by pcs-sim -stream and exit (no simulation).\npcs-sweep -stream files are per-cell records with repeating replication\nindices and are not mergeable here")
		jsonOut     = flag.Bool("json", false, "print the canonical aggregate report as JSON — the RunSpec.Report\nencoding pcs-serve returns for the same spec — instead of the tables")
	)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *mergePath != "" {
		f, err := os.Open(*mergePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		agg, err := pcs.MergeStream(f)
		if err != nil {
			log.Fatal(err, "\n(only pcs-sim -stream files are mergeable; pcs-sweep -stream files are "+
				"per-cell records with repeating replication indices)")
		}
		if *jsonOut {
			printJSON(agg)
		} else {
			printAggregate(agg)
		}
		return
	}

	spec, err := sf.Spec()
	if err != nil {
		log.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		log.Fatal(err)
	}
	replications, workers := spec.Replications, spec.Workers
	if replications <= 0 {
		replications = 1
	}
	if *sampleEvery > 0 && (replications > 1 || *ciTarget > 0) {
		log.Fatal("-sample-interval applies to a single run: drop -replications/-ci-target " +
			"(or watch a replication live with pcs-live)")
	}
	if *jsonOut {
		if *ciTarget > 0 || *sampleEvery > 0 || *streamPath != "" {
			log.Fatal("-json prints the spec's canonical report: drop -ci-target/-sample-interval/-stream")
		}
		agg, err := spec.Report()
		if err != nil {
			log.Fatal(err)
		}
		printJSON(agg)
		return
	}

	var sink *os.File
	if *streamPath != "" {
		if replications <= 1 && *ciTarget <= 0 {
			log.Fatal("-stream needs -replications or -ci-target: a single run has nothing to stream")
		}
		var err error
		sink, err = os.Create(*streamPath)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
	}

	if *ciTarget > 0 {
		if replications > 1 {
			log.Fatal("-replications and -ci-target are mutually exclusive: " +
				"use -replications for a fixed count or -ci-target to stop on CI width")
		}
		target := pcs.CITarget{
			RelHalfWidth:    *ciTarget,
			MaxReplications: *maxReps,
			Workers:         workers,
		}
		if sink != nil {
			target.Sink = sink
		}
		agg, err := pcs.RunUntil(opts, target)
		if err != nil {
			log.Fatal(err)
		}
		printAggregate(agg)
		if agg.Converged {
			fmt.Printf("\nconverged: relative CI95 ≤ %.1f%% after %d replications\n",
				100**ciTarget, agg.Replications)
		} else {
			fmt.Printf("\nNOT converged: CI target %.1f%% missed at the %d-replication cap\n",
				100**ciTarget, agg.Replications)
		}
		if sink != nil {
			fmt.Printf("\nper-replication results streamed to %s (merge with -merge)\n", *streamPath)
		}
		return
	}
	if replications > 1 {
		var agg pcs.Aggregate
		var err error
		if sink != nil {
			agg, err = pcs.RunManyStream(opts, replications, workers, sink)
		} else {
			agg, err = pcs.RunManyWorkers(opts, replications, workers)
		}
		if err != nil {
			log.Fatal(err)
		}
		printAggregate(agg)
		if sink != nil {
			fmt.Printf("\nper-replication results streamed to %s (merge with -merge)\n", *streamPath)
		}
		return
	}

	sim, err := pcs.NewSimulation(opts)
	if err != nil {
		log.Fatal(err)
	}
	series := metrics.NewSeries[pcs.Snapshot](512)
	if *sampleEvery > 0 {
		if err := sim.SampleEvery(*sampleEvery, func(sn pcs.Snapshot) {
			series.Observe(sn.Now, sn)
		}); err != nil {
			log.Fatal(err)
		}
	}
	res := sim.Finish()
	res.WriteReport(os.Stdout)
	if *sampleEvery > 0 {
		printSeries(series)
	}
	printPolicyLog(sim)
}

// printPolicyLog renders the closed-loop action log of a single run: every
// actuation the policy applied, with its reason.
func printPolicyLog(sim *pcs.Simulation) {
	log := sim.PolicyLog()
	if len(log) == 0 {
		return
	}
	fmt.Printf("\npolicy %s applied %d actions\n", sim.PolicyName(), len(log))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t(s)\taction\tvalue\treason")
	for _, a := range log {
		fmt.Fprintf(tw, "%.1f\t%s\t%g\t%s\n", a.T, a.Kind, a.Value, a.Reason)
	}
	tw.Flush()
}

// printSeries renders the sampled time-series as a compact table: at most
// 16 evenly spaced rows of the retained (already decimated) samples.
func printSeries(series *metrics.Series[pcs.Snapshot]) {
	samples := series.Samples()
	if len(samples) == 0 {
		return
	}
	fmt.Printf("\ntime-series (%d samples retained of %d taken)\n", series.Len(), series.Offered())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "t(s)\tλ adm\tarrived\tdone\tin-flight\tqueued\tutil µ/max\tavg ms\tp99 comp ms")
	step := 1
	if len(samples) > 16 {
		step = (len(samples) + 15) / 16
	}
	row := func(sn pcs.Snapshot) {
		fmt.Fprintf(tw, "%.1f\t%.0f\t%d\t%d\t%d\t%d\t%.2f/%.2f\t%.3f\t%.3f\n",
			sn.Now, sn.AdmittedRate, sn.Arrivals, sn.Completed, sn.InFlight,
			sn.QueuedExecutions, sn.MeanCoreUtilization, sn.MaxCoreUtilization,
			sn.AvgOverallMs, sn.P99ComponentMs)
	}
	last := len(samples) - 1
	for i := 0; i < last; i += step {
		row(samples[i].Value)
	}
	row(samples[last].Value) // end-of-run state always shown
	tw.Flush()
}

// printJSON prints an aggregate in the canonical report encoding: the
// MergeStream-normal form (execution-detail fields zeroed), indented, so
// the bytes diff cleanly against a pcs-serve response for the same spec.
func printJSON(agg pcs.Aggregate) {
	agg.Workers = 0
	agg.Runs = nil
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(agg); err != nil {
		log.Fatal(err)
	}
}

// printAggregate renders a multi-replication run: across-replication means
// with 95 % confidence intervals plus the per-replication spread.
func printAggregate(agg pcs.Aggregate) {
	fmt.Printf("technique           %s\n", agg.Technique)
	fmt.Printf("scenario            %s\n", agg.Scenario)
	fmt.Printf("arrival rate        %.0f req/s\n", agg.ArrivalRate)
	fmt.Printf("replications        %d (on %d workers)\n", agg.Replications, agg.Workers)
	fmt.Printf("requests            %d arrived, %d completed (all replications)\n", agg.Arrivals, agg.Completed)
	fmt.Println()
	row := func(name string, m pcs.MetricSummary) {
		fmt.Printf("%-24s %10.3f ± %.3f ms   (p50 %.3f, p99 %.3f, min %.3f, max %.3f)\n",
			name, m.Mean, m.CI95, m.P50, m.P99, m.Min, m.Max)
	}
	row("avg overall latency", agg.AvgOverallMs)
	row("p99 component latency", agg.P99ComponentMs)
	row("overall p50", agg.OverallP50Ms)
	row("overall p99", agg.OverallP99Ms)
	row("component mean", agg.ComponentMeanMs)
	if agg.Migrations > 0 {
		fmt.Println()
		fmt.Printf("migrations enforced       %d (all replications)\n", agg.Migrations)
	}
}
