// Command pcs-sim runs one simulation of the multi-stage service under a
// chosen technique and prints a full latency report.
//
// Usage:
//
//	pcs-sim -technique PCS -rate 200 -requests 20000 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/pcs"
)

func parseTechnique(s string) (pcs.Technique, error) {
	for _, t := range pcs.Techniques() {
		if strings.EqualFold(t.String(), s) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown technique %q (want one of Basic, RED-3, RED-5, RI-90, RI-99, PCS)", s)
}

func main() {
	log.SetFlags(0)
	var (
		technique    = flag.String("technique", "PCS", "execution technique: Basic, RED-3, RED-5, RI-90, RI-99 or PCS")
		rate         = flag.Float64("rate", 100, "request arrival rate (requests/second)")
		requests     = flag.Int("requests", 20000, "number of requests to simulate")
		nodes        = flag.Int("nodes", 30, "cluster size")
		search       = flag.Int("search-components", 100, "searching-stage fan-out")
		seed         = flag.Int64("seed", 1, "random seed")
		interval     = flag.Float64("interval", 5, "PCS scheduling interval (seconds)")
		epsilon      = flag.Float64("epsilon", 0.000005, "PCS migration threshold ε (seconds)")
		queue        = flag.String("queue", "mg1", "PCS queue model: mg1, mm1 or none")
		replications = flag.Int("replications", 1, "independent replications to run and aggregate (mean±CI95)")
		workers      = flag.Int("workers", 0, "parallel simulation workers (0 = all cores); never affects the results")
	)
	flag.Parse()

	tech, err := parseTechnique(*technique)
	if err != nil {
		log.Fatal(err)
	}
	opts := pcs.Options{
		Technique:          tech,
		ArrivalRate:        *rate,
		Requests:           *requests,
		Nodes:              *nodes,
		SearchComponents:   *search,
		Seed:               *seed,
		SchedulingInterval: *interval,
		EpsilonSeconds:     *epsilon,
		QueueModel:         *queue,
	}
	if *replications > 1 {
		agg, err := pcs.RunManyWorkers(opts, *replications, *workers)
		if err != nil {
			log.Fatal(err)
		}
		printAggregate(agg)
		return
	}
	res, err := pcs.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("technique           %s\n", res.Technique)
	fmt.Printf("arrival rate        %.0f req/s\n", res.ArrivalRate)
	fmt.Printf("requests            %d arrived, %d completed\n", res.Arrivals, res.Completed)
	fmt.Printf("virtual time        %.1f s\n", res.VirtualSeconds)
	fmt.Printf("batch jobs          %d started\n", res.BatchJobsStarted)
	fmt.Println()
	fmt.Printf("avg overall latency       %10.3f ms   (paper metric 2)\n", res.AvgOverallMs)
	fmt.Printf("p99 component latency     %10.3f ms   (paper metric 1)\n", res.P99ComponentMs)
	fmt.Printf("overall p50 / p99 / max   %10.3f / %.3f / %.3f ms\n",
		res.OverallP50Ms, res.OverallP99Ms, res.OverallMaxMs)
	fmt.Printf("component mean / p50      %10.3f / %.3f ms\n", res.ComponentMeanMs, res.ComponentP50Ms)
	for s, m := range res.StageMeanMs {
		fmt.Printf("stage %d mean              %10.3f ms\n", s, m)
	}
	if tech == pcs.PCS {
		fmt.Println()
		fmt.Printf("scheduling intervals      %d\n", res.SchedulingIntervals)
		fmt.Printf("migrations enforced       %d\n", res.Migrations)
	}
}

// printAggregate renders a multi-replication run: across-replication means
// with 95 % confidence intervals plus the per-replication spread.
func printAggregate(agg pcs.Aggregate) {
	fmt.Printf("technique           %s\n", agg.Technique)
	fmt.Printf("arrival rate        %.0f req/s\n", agg.ArrivalRate)
	fmt.Printf("replications        %d (on %d workers)\n", agg.Replications, agg.Workers)
	fmt.Printf("requests            %d arrived, %d completed (all replications)\n", agg.Arrivals, agg.Completed)
	fmt.Println()
	row := func(name string, m pcs.MetricSummary) {
		fmt.Printf("%-24s %10.3f ± %.3f ms   (p50 %.3f, p99 %.3f, min %.3f, max %.3f)\n",
			name, m.Mean, m.CI95, m.P50, m.P99, m.Min, m.Max)
	}
	row("avg overall latency", agg.AvgOverallMs)
	row("p99 component latency", agg.P99ComponentMs)
	row("overall p50", agg.OverallP50Ms)
	row("overall p99", agg.OverallP99Ms)
	row("component mean", agg.ComponentMeanMs)
	if agg.Migrations > 0 {
		fmt.Println()
		fmt.Printf("migrations enforced       %d (all replications)\n", agg.Migrations)
	}
}
