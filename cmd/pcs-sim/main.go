// Command pcs-sim runs one simulation of a multi-stage service under a
// chosen technique and prints a full latency report.
//
// Usage:
//
//	pcs-sim -technique PCS -rate 200 -requests 20000 -seed 1
//	pcs-sim -scenario ecommerce -technique PCS
//	pcs-sim -technique Basic -replications 16
//	pcs-sim -technique Basic -ci-target 0.05
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	var (
		technique    = flag.String("technique", "PCS", "execution technique: Basic, RED-3, RED-5, RI-90, RI-99 or PCS")
		scenarioName = flag.String("scenario", "", "deployment scenario; empty selects nutch-search.\nRegistered:\n"+pcs.DescribeScenarios())
		rate         = flag.Float64("rate", 100, "request arrival rate (requests/second)")
		requests     = flag.Int("requests", 20000, "number of requests to simulate")
		nodes        = flag.Int("nodes", 0, "cluster size (0 = scenario default)")
		fanOut       = flag.Int("search-components", 0, "dominant-stage fan-out (0 = scenario default)")
		seed         = flag.Int64("seed", 1, "random seed")
		interval     = flag.Float64("interval", 5, "PCS scheduling interval (seconds)")
		epsilon      = flag.Float64("epsilon", 0.000005, "PCS migration threshold ε (seconds)")
		queue        = flag.String("queue", "mg1", "PCS queue model: mg1, mm1 or none")
		replications = flag.Int("replications", 1, "independent replications to run and aggregate (mean±CI95)")
		ciTarget     = flag.Float64("ci-target", 0, "adaptive replications: replicate until the relative CI95 half-width\nof both headline metrics falls below this (e.g. 0.05 for ±5%); 0 disables")
		maxReps      = flag.Int("max-replications", 64, "hard replication cap for -ci-target")
		workers      = flag.Int("workers", 0, "parallel simulation workers (0 = all cores); never affects the results")
	)
	flag.Parse()

	tech, err := pcs.ParseTechnique(*technique)
	if err != nil {
		log.Fatal(err)
	}
	opts := pcs.Options{
		Technique:          tech,
		Scenario:           *scenarioName,
		ArrivalRate:        *rate,
		Requests:           *requests,
		Nodes:              *nodes,
		SearchComponents:   *fanOut,
		Seed:               *seed,
		SchedulingInterval: *interval,
		EpsilonSeconds:     *epsilon,
		QueueModel:         *queue,
	}
	if *ciTarget > 0 {
		if *replications > 1 {
			log.Fatal("-replications and -ci-target are mutually exclusive: " +
				"use -replications for a fixed count or -ci-target to stop on CI width")
		}
		agg, err := pcs.RunUntil(opts, pcs.CITarget{
			RelHalfWidth:    *ciTarget,
			MaxReplications: *maxReps,
			Workers:         *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		printAggregate(agg)
		if agg.Converged {
			fmt.Printf("\nconverged: relative CI95 ≤ %.1f%% after %d replications\n",
				100**ciTarget, agg.Replications)
		} else {
			fmt.Printf("\nNOT converged: CI target %.1f%% missed at the %d-replication cap\n",
				100**ciTarget, agg.Replications)
		}
		return
	}
	if *replications > 1 {
		agg, err := pcs.RunManyWorkers(opts, *replications, *workers)
		if err != nil {
			log.Fatal(err)
		}
		printAggregate(agg)
		return
	}
	res, err := pcs.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("technique           %s\n", res.Technique)
	fmt.Printf("scenario            %s\n", res.Scenario)
	fmt.Printf("arrival rate        %.0f req/s\n", res.ArrivalRate)
	fmt.Printf("requests            %d arrived, %d completed\n", res.Arrivals, res.Completed)
	fmt.Printf("virtual time        %.1f s\n", res.VirtualSeconds)
	fmt.Printf("batch jobs          %d started\n", res.BatchJobsStarted)
	fmt.Println()
	fmt.Printf("avg overall latency       %10.3f ms   (paper metric 2)\n", res.AvgOverallMs)
	fmt.Printf("p99 component latency     %10.3f ms   (paper metric 1)\n", res.P99ComponentMs)
	fmt.Printf("overall p50 / p99 / max   %10.3f / %.3f / %.3f ms\n",
		res.OverallP50Ms, res.OverallP99Ms, res.OverallMaxMs)
	fmt.Printf("component mean / p50      %10.3f / %.3f ms\n", res.ComponentMeanMs, res.ComponentP50Ms)
	for s, m := range res.StageMeanMs {
		fmt.Printf("stage %d mean              %10.3f ms\n", s, m)
	}
	if tech == pcs.PCS {
		fmt.Println()
		fmt.Printf("scheduling intervals      %d\n", res.SchedulingIntervals)
		fmt.Printf("migrations enforced       %d\n", res.Migrations)
	}
}

// printAggregate renders a multi-replication run: across-replication means
// with 95 % confidence intervals plus the per-replication spread.
func printAggregate(agg pcs.Aggregate) {
	fmt.Printf("technique           %s\n", agg.Technique)
	fmt.Printf("scenario            %s\n", agg.Scenario)
	fmt.Printf("arrival rate        %.0f req/s\n", agg.ArrivalRate)
	fmt.Printf("replications        %d (on %d workers)\n", agg.Replications, agg.Workers)
	fmt.Printf("requests            %d arrived, %d completed (all replications)\n", agg.Arrivals, agg.Completed)
	fmt.Println()
	row := func(name string, m pcs.MetricSummary) {
		fmt.Printf("%-24s %10.3f ± %.3f ms   (p50 %.3f, p99 %.3f, min %.3f, max %.3f)\n",
			name, m.Mean, m.CI95, m.P50, m.P99, m.Min, m.Max)
	}
	row("avg overall latency", agg.AvgOverallMs)
	row("p99 component latency", agg.P99ComponentMs)
	row("overall p50", agg.OverallP50Ms)
	row("overall p99", agg.OverallP99Ms)
	row("component mean", agg.ComponentMeanMs)
	if agg.Migrations > 0 {
		fmt.Println()
		fmt.Printf("migrations enforced       %d (all replications)\n", agg.Migrations)
	}
}
