// Command pcs-scale regenerates the paper's Fig. 7: wall-clock time of the
// scheduling algorithm (performance-matrix construction = "analysis", plus
// the greedy search) as the number of components grows to 640 and the
// number of nodes to 128. The paper reports 551 ms total at the largest
// size — under 0.1 % of its 600 s scheduling interval.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/cliutil"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		seed         = flag.Int64("seed", 1, "random seed")
		scenarioName = cliutil.AddScenario(flag.CommandLine)
		repeats      = flag.Int("repeats", 3, "timing repetitions per point")
		window       = flag.Int("window", 10, "monitor window length per node")
		lambda       = flag.Float64("lambda", 100, "assumed arrival rate")
	)
	flag.Parse()

	points, err := experiments.RunFig7(experiments.Fig7Config{
		Seed:     *seed,
		Scenario: *scenarioName,
		Repeats:  *repeats,
		Window:   *window,
		Lambda:   *lambda,
	})
	if err != nil {
		log.Fatal(err)
	}
	experiments.WriteFig7Table(os.Stdout, points)
}
