package repro

// Documentation gates, run by the CI docs job:
//
//   - TestDocsLinks: every markdown link in README.md, DESIGN.md and
//     docs/*.md that points inside the repository must resolve — to an
//     existing file, and (for markdown targets with a fragment) to a real
//     heading anchor.
//   - TestDocsExportedIdentifiersDocumented: every exported identifier in
//     the public pcs package — and in the packages that form documented
//     authoring surfaces (internal/policy for docs/policies.md,
//     internal/scenario for the scenario guide) — carries a doc comment.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files the link check covers.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md"}
	extra, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, extra...)
}

// mdLink matches inline markdown links: [text](target). Images and badges
// share the syntax and are checked the same way.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// proseLines returns a markdown file's lines with fenced code blocks
// blanked out, so neither the link scan nor the heading scan is fooled by
// shell comments or example snippets inside ``` fences.
func proseLines(t *testing.T, file string) []string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	lines := strings.Split(string(data), "\n")
	fenced := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			lines[i] = ""
			continue
		}
		if fenced {
			lines[i] = ""
		}
	}
	return lines
}

func TestDocsLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		prose := strings.Join(proseLines(t, file), "\n")
		for _, m := range mdLink.FindAllStringSubmatch(prose, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: not checkable offline
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" {
				// Intra-document anchor.
				if !anchorExists(t, file, frag) {
					t.Errorf("%s: anchor #%s not found in this file", file, frag)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), path)
			if !strings.HasPrefix(filepath.Clean(resolved), "..") {
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: link target %q does not exist", file, target)
					continue
				}
				if frag != "" && strings.HasSuffix(resolved, ".md") && !anchorExists(t, resolved, frag) {
					t.Errorf("%s: anchor %q not found in %s", file, frag, resolved)
				}
			} else {
				// Targets escaping the repo (e.g. the CI badge's
				// ../../actions/... GitHub path) are host-side URLs.
				continue
			}
		}
	}
}

// anchorExists reports whether a markdown file contains a heading (outside
// code fences) whose GitHub-style slug equals frag.
func anchorExists(t *testing.T, file, frag string) bool {
	t.Helper()
	for _, line := range proseLines(t, file) {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		if slugify(strings.TrimLeft(line, "# ")) == strings.ToLower(frag) {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase, drop
// everything but letters/digits/spaces/hyphens, spaces to hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// godocCoveredDirs are the package directories whose exported identifiers
// must carry doc comments: the public API, plus the internal packages
// docs/policies.md, docs/traffic.md, docs/scenarios.md, docs/serve.md and
// the scenario registry present as authoring/operating surfaces — a
// policy, traffic-source, scenario or service-graph author, or a daemon
// API client, reads their godoc, so it must exist.
var godocCoveredDirs = []string{"pcs", "internal/graph", "internal/policy", "internal/scenario", "internal/serve", "internal/traffic"}

func TestDocsExportedIdentifiersDocumented(t *testing.T) {
	var missing []string
	for _, dir := range godocCoveredDirs {
		missing = append(missing, undocumentedExports(t, dir)...)
	}
	if len(missing) > 0 {
		t.Errorf("exported identifiers without doc comments:\n  %s",
			strings.Join(missing, "\n  "))
	}
}

// undocumentedExports parses one package directory (tests excluded) and
// returns a report line per exported identifier lacking a doc comment.
func undocumentedExports(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		missing = append(missing, fmt.Sprintf("%s: %s %s", fset.Position(pos), kind, name))
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "func", d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
									report(s.Pos(), "value", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing
}
