// Command quickstart is the minimal PCS session: simulate a multi-stage
// service co-located with batch jobs, once under Basic execution and once
// under PCS, and compare the two latency metrics of the paper. The
// -scenario flag selects any registered deployment; the default is the
// paper's Nutch-style search service.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	scenarioName := flag.String("scenario", "", pcs.ScenarioFlagUsage())
	rate := flag.Float64("rate", 100, "request arrival rate (requests/second)")
	requests := flag.Int("requests", 8000, "number of requests to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("λ=%.0f req/s, %d requests, seed %d\n\n", *rate, *requests, *seed)

	for _, tech := range []pcs.Technique{pcs.Basic, pcs.PCS} {
		res, err := pcs.Run(pcs.Options{
			Technique:   tech,
			Scenario:    *scenarioName,
			ArrivalRate: *rate,
			Requests:    *requests,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatalf("run %s: %v", tech, err)
		}
		fmt.Printf("%-6s %-12s avg overall %8.2f ms | p99 component %8.2f ms | completed %d/%d",
			res.Technique, res.Scenario, res.AvgOverallMs, res.P99ComponentMs, res.Completed, res.Arrivals)
		if tech == pcs.PCS {
			fmt.Printf(" | %d migrations over %d intervals", res.Migrations, res.SchedulingIntervals)
		}
		fmt.Println()
	}
}
