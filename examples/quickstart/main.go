// Command quickstart is the minimal PCS session: simulate the Nutch-style
// search service co-located with batch jobs, once under Basic execution and
// once under PCS, and compare the two latency metrics of the paper.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	rate := flag.Float64("rate", 100, "request arrival rate (requests/second)")
	requests := flag.Int("requests", 8000, "number of requests to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("Nutch-style service, λ=%.0f req/s, %d requests, seed %d\n\n",
		*rate, *requests, *seed)

	for _, tech := range []pcs.Technique{pcs.Basic, pcs.PCS} {
		res, err := pcs.Run(pcs.Options{
			Technique:   tech,
			ArrivalRate: *rate,
			Requests:    *requests,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatalf("run %s: %v", tech, err)
		}
		fmt.Printf("%-6s avg overall %8.2f ms | p99 component %8.2f ms | completed %d/%d",
			res.Technique, res.AvgOverallMs, res.P99ComponentMs, res.Completed, res.Arrivals)
		if tech == pcs.PCS {
			fmt.Printf(" | %d migrations over %d intervals", res.Migrations, res.SchedulingIntervals)
		}
		fmt.Println()
	}
}
