// Command searchengine reproduces the paper's primary scenario: a
// Nutch-style three-stage web search service (segmenting → searching ×100
// → aggregating) co-located with a churning mix of Hadoop and Spark batch
// jobs on 30 nodes, compared across all six latency-reduction techniques.
//
// This is a scaled-down interactive version of the Fig. 6 sweep (one
// arrival rate, all techniques); use cmd/pcs-sweep for the full figure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	scenarioName := flag.String("scenario", "", pcs.ScenarioFlagUsage())
	rate := flag.Float64("rate", 200, "request arrival rate (requests/second)")
	requests := flag.Int("requests", 12000, "requests per technique run")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *scenarioName == "" {
		fmt.Printf("Nutch search engine: 3 stages, 100 searching components, 30 nodes\n")
		fmt.Printf("Batch interference: Hadoop/Spark jobs, 1 MB–10 GB inputs, ~2 jobs/node\n")
	} else {
		fmt.Printf("scenario %s\n", *scenarioName)
	}
	fmt.Printf("λ=%.0f req/s, %d requests per run\n\n", *rate, *requests)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tavg overall (ms)\tp99 component (ms)\tmigrations")
	for _, tech := range pcs.Techniques() {
		res, err := pcs.Run(pcs.Options{
			Technique:   tech,
			Scenario:    *scenarioName,
			ArrivalRate: *rate,
			Requests:    *requests,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatalf("%s: %v", tech, err)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%d\n",
			res.Technique, res.AvgOverallMs, res.P99ComponentMs, res.Migrations)
	}
	tw.Flush()
	fmt.Println("\nExpected shape (paper Fig. 6): PCS lowest; redundancy helps only at")
	fmt.Println("light load and degrades beyond Basic as load grows, RED-5 worst;")
	fmt.Println("reissue degrades more gracefully than redundancy.")
}
