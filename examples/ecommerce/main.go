// Command ecommerce exercises the public API on a second service topology:
// a four-stage e-commerce site (front-end → catalog ×32 → recommendation
// ×16 → pricing ×8) under a diurnal load curve, comparing Basic execution
// against PCS. The paper's introduction names e-commerce sites as a target
// class of multi-stage online services.
//
// It drives the lower-level building blocks directly (cluster, workload
// generator, service, monitor, controller) rather than pcs.Run, showing
// how to embed PCS scheduling in a custom setup. The deployment itself —
// topology, cluster size, batch-interference defaults — comes from the
// scenario registry, the same "ecommerce" entry pcs.Run resolves.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func runOnce(seed int64, usePCS bool, peak float64, cycleSeconds float64) (avgMs, p99Ms float64, migrations int) {
	sc := scenario.MustGet("ecommerce")
	root := xrand.New(seed)
	engine := sim.NewEngine()
	cl := cluster.New(sc.Nodes, cluster.DefaultCapacity())

	gen := workload.NewGenerator(engine, cl, root.Fork(), workload.GeneratorConfig{
		TargetConcurrency: sc.Workload.BatchConcurrency,
		MinInputMB:        sc.Workload.MinInputMB,
		MaxInputMB:        sc.Workload.MaxInputMB,
		TwoPhase:          sc.Workload.TwoPhaseJobs, // map→reduce demand shifts
	})

	topo := sc.Topology(0)
	svc, err := service.New(engine, cl, root.Fork(), baseline.Basic{}, service.Config{
		Topology: topo,
		Warmup:   10,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon := monitor.New(engine, cl, root.Fork(), monitor.Config{NoiseSigma: 0.02})
	svc.OnArrival = mon.RecordArrival

	var ctrl *scheduler.Controller
	if usePCS {
		backgrounds := workload.KindSizeGrid(workload.JobKinds(), workload.LinearSizes(12, 1, 10240))
		backgrounds = append(backgrounds, workload.TrainingMixes(root.Fork(), 150, 3, 1, 10240)...)
		models, err := profiling.TrainStageModels(topo, svc.Law(), backgrounds,
			profiling.Config{Probes: 200, MonitorNoiseSigma: 0.02, Degree: 1}, root.Fork())
		if err != nil {
			log.Fatal(err)
		}
		ctrl = scheduler.NewController(svc, mon, models, root.Fork(), scheduler.ControllerConfig{
			Interval:       5,
			Scheduler:      scheduler.Config{Epsilon: 0.000005, MaxMigrations: 20},
			FallbackLambda: peak / 2,
		})
	}

	gen.Start()
	mon.Start()
	if ctrl != nil {
		ctrl.Start()
	}

	// Diurnal load: a triangle wave between 20 % and 100 % of peak,
	// re-injected by scheduling individual arrivals (open loop).
	arrivals := root.Fork()
	var schedule func(now float64)
	schedule = func(now float64) {
		phase := now / cycleSeconds
		frac := phase - float64(int(phase))
		level := 0.2 + 1.6*frac
		if level > 1 {
			level = 2 - level // descending half
		}
		rate := peak * level
		gap := arrivals.Exp(1 / rate)
		engine.After(gap, func(next float64) {
			svc.InjectRequest()
			schedule(next)
		})
	}
	schedule(0)
	engine.Run(2 * cycleSeconds)

	rep := svc.Collector().Report()
	if ctrl != nil {
		migrations = svc.Migrations()
	}
	return rep.AvgOverallMs, rep.P99ComponentMs, migrations
}

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "random seed")
	peak := flag.Float64("peak", 250, "peak arrival rate (requests/second)")
	cycle := flag.Float64("cycle", 60, "diurnal cycle length in virtual seconds")
	flag.Parse()

	fmt.Printf("E-commerce service: 4 stages (4+32+16+8 components), 16 nodes\n")
	fmt.Printf("Diurnal load: 20%%–100%% of peak %.0f req/s over %.0fs cycles, two cycles\n\n", *peak, *cycle)

	basicAvg, basicP99, _ := runOnce(*seed, false, *peak, *cycle)
	pcsAvg, pcsP99, migrations := runOnce(*seed, true, *peak, *cycle)

	fmt.Printf("Basic  avg overall %8.2f ms | p99 component %8.2f ms\n", basicAvg, basicP99)
	fmt.Printf("PCS    avg overall %8.2f ms | p99 component %8.2f ms | %d migrations\n",
		pcsAvg, pcsP99, migrations)
	if basicAvg > 0 {
		fmt.Printf("\nPCS reduction: overall %.1f%%, p99 component %.1f%%\n",
			100*(1-pcsAvg/basicAvg), 100*(1-pcsP99/basicP99))
	}
}
