// Command interference demonstrates the performance predictor in
// isolation: it profiles a searching component against single batch-job
// co-runners, trains the paper's per-resource regressions (Eq. 1), and then
// predicts the component's service time and M/G/1 latency (Eq. 2) under
// co-runner mixes it never saw in training — the §IV workflow without the
// scheduler.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/profiling"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	log.SetFlags(0)
	seed := flag.Int64("seed", 1, "random seed")
	scenarioName := flag.String("scenario", "", "scenario whose dominant-stage component is profiled;\nempty selects nutch-search. Registered:\n"+scenario.Describe())
	lambda := flag.Float64("lambda", 200, "arrival rate for the latency prediction (req/s)")
	flag.Parse()

	sc, err := scenario.Get(*scenarioName)
	if err != nil {
		log.Fatal(err)
	}
	src := xrand.New(*seed)
	capacity := cluster.DefaultCapacity()
	law := service.DefaultLaw(capacity)
	search := sc.Topology(0).Stages[sc.DominantStage]

	// Profile: single co-runners over the kind × size grid plus random
	// mixes, as PCS does at startup.
	backgrounds := workload.KindSizeGrid(workload.JobKinds(), workload.LinearSizes(12, 1, 10240))
	backgrounds = append(backgrounds, workload.TrainingMixes(src.Fork(), 100, 3, 1, 10240)...)
	samples := profiling.ProfileBackgrounds(law, search.BaseServiceTime, backgrounds,
		profiling.Config{Probes: 300, MonitorNoiseSigma: 0.02, Degree: 1}, src.Fork())
	model, err := predictor.Train(samples, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Trained service-time model for the searching component (Eq. 1)")
	fmt.Println("relevance weights w_sr (R² of each per-resource regression):")
	for _, r := range cluster.Resources() {
		fmt.Printf("  %-10s %.3f\n", r, model.Weights[r])
	}
	fmt.Println()

	// Predict under unseen co-runner scenarios.
	scenarios := []struct {
		name string
		bg   cluster.Vector
	}{
		{"idle node", cluster.Vector{}},
		{"hadoop-wordcount 2GB", workload.Demand(workload.HadoopWordCount, 2048)},
		{"spark-sort 7GB", workload.Demand(workload.SparkSort, 7168)},
		{"wordcount 2GB + sort 4GB", workload.Demand(workload.HadoopWordCount, 2048).
			Add(workload.Demand(workload.SparkSort, 4096))},
		{"three heavy jobs", workload.Demand(workload.HadoopBayes, 4096).
			Add(workload.Demand(workload.SparkSort, 7168)).
			Add(workload.Demand(workload.HadoopPageIndex, 3072))},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "co-runners\ttrue mean x (ms)\tpredicted x (ms)\terr %\tpredicted latency @λ (ms)")
	for _, sc := range scenarios {
		truth := law.MeanServiceTime(search.BaseServiceTime, sc.bg)
		pred := model.Predict(sc.bg.Clamp(capacity))
		errPct := 100 * (pred - truth) / truth
		// Eq. 2 with the service-time variance implied by the intrinsic
		// noise (C² = exp(σ²)−1).
		c2 := 0.0
		if law.NoiseSigma > 0 {
			s := law.NoiseSigma
			c2 = (s*s + s*s*s*s/2) // ≈ exp(σ²)−1 for small σ
		}
		latency := predictor.ExpectedLatency(predictor.MG1, pred, c2*pred*pred, *lambda,
			predictor.DefaultLatencyParams())
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.1f\t%.4f\n",
			sc.name, truth*1000, pred*1000, errPct, latency*1000)
	}
	tw.Flush()
	fmt.Printf("\nλ = %.0f req/s; latency = x̄ + λ(1+C²x)/(2µ²(1−ρ)) (paper Eq. 2)\n", *lambda)
}
