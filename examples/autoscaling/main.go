// Command autoscaling demonstrates the closed-loop policy layer: the same
// burst-hit deployment (the autoscale-burst scenario — nutch-search with a
// 3.5× arrival burst through the middle of the run) is simulated twice,
// once open-loop and once with the threshold autoscaler activating extra
// component replicas as queue pressure moves. The example prints each
// actuation the policy applied, the replica count the snapshots observed,
// and the paired latency comparison — paired meaning both runs share one
// seed, so the policy is the only difference between them.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/pcs"
)

func main() {
	log.SetFlags(0)
	policyName := flag.String("policy", "threshold-autoscale", pcs.PolicyFlagUsage())
	scenarioName := flag.String("scenario", "autoscale-burst", pcs.ScenarioFlagUsage())
	rate := flag.Float64("rate", 100, "base request arrival rate (requests/second); the scenario's burst scales it")
	requests := flag.Int("requests", 6000, "number of requests to simulate")
	seed := flag.Int64("seed", 1, "random seed (shared by both runs — the comparison is paired)")
	flag.Parse()

	run := func(policy string) pcs.Result {
		sim, err := pcs.NewSimulation(pcs.Options{
			Scenario:    *scenarioName,
			Policy:      policy,
			ArrivalRate: *rate,
			Requests:    *requests,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatalf("building %s run: %v", policy, err)
		}
		maxReplicas := 1
		if err := sim.SampleEvery(sim.Horizon()/120, func(sn pcs.Snapshot) {
			if sn.ActiveReplicas > maxReplicas {
				maxReplicas = sn.ActiveReplicas
			}
		}); err != nil {
			log.Fatal(err)
		}
		res := sim.Finish()
		if name := sim.PolicyName(); name != "" {
			fmt.Printf("policy %s applied %d actions (peak %d active replicas/component):\n",
				name, len(sim.PolicyLog()), maxReplicas)
			for _, a := range sim.PolicyLog() {
				fmt.Printf("  t=%6.1fs  %s=%g  (%s)\n", a.T, a.Kind, a.Value, a.Reason)
			}
			fmt.Println()
		}
		return res
	}

	fmt.Printf("scenario %s · λ=%.0f req/s base · %d requests · seed %d\n\n",
		*scenarioName, *rate, *requests, *seed)
	closed := run(*policyName)
	open := run("none")

	fmt.Printf("%-22s %15s %15s\n", "", "open-loop", "closed-loop")
	row := func(name string, a, b float64) {
		fmt.Printf("%-22s %12.3f ms %12.3f ms   (%+.1f%%)\n", name, a, b, 100*(b/a-1))
	}
	row("avg overall latency", open.AvgOverallMs, closed.AvgOverallMs)
	row("p99 component latency", open.P99ComponentMs, closed.P99ComponentMs)
	row("overall p99", open.OverallP99Ms, closed.OverallP99Ms)
}
