// Package workload models the offline batch jobs that co-locate with the
// online service and cause time-varying performance interference (paper
// §II-B), plus generators that keep a stream of short jobs running on each
// node.
//
// Two axes drive a job's resource demand, exactly as the paper describes:
//
//   - Workload type: computation semantics (Bayes, WordCount, Sort,
//     PageIndex) combined with the software stack (Hadoop jobs skew
//     CPU-intensive, Spark jobs skew I/O-intensive — the paper's example is
//     that Hadoop Bayes is CPU-bound while Spark Bayes is I/O-bound).
//   - Input data size: demand grows with input size along a saturating
//     curve. The paper's §II-B example (WordCount at 31 %/61 %/79 % CPU for
//     500 MB/2 GB/8 GB inputs on a 12-core Xeon) anchors the curve shape.
package workload

import (
	"fmt"

	"repro/internal/cluster"
)

// JobKind identifies a batch-job archetype: a computation semantic on a
// software stack.
type JobKind int

const (
	// HadoopBayes is CPU-intensive with dominated floating-point operations.
	HadoopBayes JobKind = iota
	// HadoopWordCount is CPU-intensive with integer calculations.
	HadoopWordCount
	// HadoopPageIndex has similar demands for CPU and I/O resources.
	HadoopPageIndex
	// SparkBayes is I/O-intensive (same semantics as HadoopBayes, different
	// stack — the paper's example of stack-dependent demand).
	SparkBayes
	// SparkWordCount is I/O-intensive.
	SparkWordCount
	// SparkSort is strongly I/O-intensive.
	SparkSort

	// NumJobKinds is the number of archetypes.
	NumJobKinds = 6
)

// String returns the archetype name as used in the paper's evaluation.
func (k JobKind) String() string {
	switch k {
	case HadoopBayes:
		return "hadoop-bayes"
	case HadoopWordCount:
		return "hadoop-wordcount"
	case HadoopPageIndex:
		return "hadoop-pageindex"
	case SparkBayes:
		return "spark-bayes"
	case SparkWordCount:
		return "spark-wordcount"
	case SparkSort:
		return "spark-sort"
	default:
		return fmt.Sprintf("jobkind(%d)", int(k))
	}
}

// JobKinds lists all archetypes.
func JobKinds() []JobKind {
	return []JobKind{HadoopBayes, HadoopWordCount, HadoopPageIndex,
		SparkBayes, SparkWordCount, SparkSort}
}

// IsHadoop reports whether the archetype runs on the Hadoop stack.
func (k JobKind) IsHadoop() bool {
	return k == HadoopBayes || k == HadoopWordCount || k == HadoopPageIndex
}

// demandProfile holds the asymptotic demand of an archetype at very large
// input plus the input size (MB) at which each metric reaches half of it.
type demandProfile struct {
	maxCore   float64 // cores' worth of usage at saturation
	maxCache  float64 // MPKI contributed at saturation
	maxDiskBW float64 // MB/s at saturation
	maxNetBW  float64 // MB/s at saturation
	halfMB    float64 // input size at half-saturation
}

// profiles encodes the paper's qualitative characterisation of each
// archetype. Absolute values are calibrated to the Table II capacities in
// cluster.DefaultCapacity (12 cores, 200 MB/s disk, 125 MB/s net).
var profiles = [NumJobKinds]demandProfile{
	HadoopBayes:     {maxCore: 8.5, maxCache: 22, maxDiskBW: 15, maxNetBW: 8, halfMB: 1500},
	HadoopWordCount: {maxCore: 11.4, maxCache: 18, maxDiskBW: 25, maxNetBW: 10, halfMB: 1100},
	HadoopPageIndex: {maxCore: 6.0, maxCache: 25, maxDiskBW: 80, maxNetBW: 35, halfMB: 1800},
	SparkBayes:      {maxCore: 3.0, maxCache: 30, maxDiskBW: 120, maxNetBW: 55, halfMB: 2500},
	SparkWordCount:  {maxCore: 3.5, maxCache: 26, maxDiskBW: 110, maxNetBW: 60, halfMB: 2200},
	SparkSort:       {maxCore: 2.2, maxCache: 35, maxDiskBW: 160, maxNetBW: 80, halfMB: 3000},
}

// Demand returns the resource-demand vector of a job of the given kind and
// input size in MB. Demand follows a saturating curve in input size:
// metric(in) = max · in/(in + half).
//
// Sanity anchor from the paper: HadoopWordCount at 500 MB/2 GB/8 GB inputs
// yields core usage of ≈3.6/6.9/9.8 cores on a 12-core node, i.e. ≈30 %,
// 59 % and 82 % CPU utilisation, matching §II-B's 31 %/61 %/79 %.
func Demand(kind JobKind, inputMB float64) cluster.Vector {
	if inputMB < 0 {
		inputMB = 0
	}
	p := profiles[kind]
	f := inputMB / (inputMB + p.halfMB)
	return cluster.Vector{
		cluster.Core:   p.maxCore * f,
		cluster.Cache:  p.maxCache * f,
		cluster.DiskBW: p.maxDiskBW * f,
		cluster.NetBW:  p.maxNetBW * f,
	}
}

// Duration returns the nominal execution time in seconds of a job of the
// given kind and input size, before random jitter. Short batch jobs
// dominate data-center workloads (§I cites >90 % small jobs); we model a
// base of a few seconds plus time proportional to input size.
func Duration(kind JobKind, inputMB float64) float64 {
	perGB := 25.0 // seconds per GB of input
	if !kind.IsHadoop() {
		perGB = 15.0 // Spark's in-memory processing finishes sooner
	}
	return 5 + inputMB/1024*perGB
}
