package workload

import (
	"repro/internal/cluster"
	"repro/internal/xrand"
)

// KindSizeGrid returns the contention vectors of single batch jobs over a
// grid of kinds × input sizes — the co-runner configurations of the paper's
// Fig. 5 prediction-accuracy experiment (Hadoop jobs at 20 sizes, Spark
// jobs at 10 sizes).
func KindSizeGrid(kinds []JobKind, sizesMB []float64) []cluster.Vector {
	out := make([]cluster.Vector, 0, len(kinds)*len(sizesMB))
	for _, k := range kinds {
		for _, s := range sizesMB {
			out = append(out, Demand(k, s))
		}
	}
	return out
}

// TrainingMixes generates n random co-runner contention vectors, each the
// sum of 0–maxJobs batch jobs with random kinds and bounded-Pareto input
// sizes. These stand in for the "historical running logs" the paper trains
// its regressions from: they cover the contention space the service will
// actually encounter, including multi-job co-location.
func TrainingMixes(src *xrand.Source, n, maxJobs int, minMB, maxMB float64) []cluster.Vector {
	if maxJobs < 1 {
		maxJobs = 3
	}
	if minMB <= 0 {
		minMB = 1
	}
	if maxMB <= minMB {
		maxMB = 10 * 1024
	}
	kinds := JobKinds()
	out := make([]cluster.Vector, n)
	for i := range out {
		jobs := src.Intn(maxJobs + 1)
		var u cluster.Vector
		for j := 0; j < jobs; j++ {
			kind := kinds[src.Intn(len(kinds))]
			size := src.BoundedPareto(0.9, minMB, maxMB)
			u = u.Add(Demand(kind, size))
		}
		out[i] = u
	}
	return out
}

// LinearSizes returns n input sizes evenly spaced in [minMB, maxMB],
// matching the paper's Fig. 5 sweep (e.g. 20 Hadoop sizes from 50 MB to
// 4 GB and 10 Spark sizes from 200 MB to 7 GB).
func LinearSizes(n int, minMB, maxMB float64) []float64 {
	if n == 1 {
		return []float64{minMB}
	}
	out := make([]float64, n)
	step := (maxMB - minMB) / float64(n-1)
	for i := range out {
		out[i] = minMB + float64(i)*step
	}
	return out
}
