package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func TestDemandPaperAnchor(t *testing.T) {
	// §II-B: WordCount on a 12-core Xeon uses ≈31 %, 61 %, 79 % CPU at
	// 500 MB, 2 GB, 8 GB inputs. Our curve should land near those points.
	cases := []struct {
		inputMB float64
		wantCPU float64 // fraction of 12 cores
	}{
		{500, 0.31},
		{2048, 0.61},
		{8192, 0.79},
	}
	for _, tc := range cases {
		d := Demand(HadoopWordCount, tc.inputMB)
		gotFrac := d[cluster.Core] / 12
		if math.Abs(gotFrac-tc.wantCPU) > 0.06 {
			t.Errorf("WordCount %vMB: CPU fraction = %.2f, want ≈%.2f", tc.inputMB, gotFrac, tc.wantCPU)
		}
	}
}

func TestDemandMonotoneInInputSize(t *testing.T) {
	for _, kind := range JobKinds() {
		prev := Demand(kind, 0)
		for _, size := range []float64{10, 100, 1000, 10000, 100000} {
			cur := Demand(kind, size)
			for r := 0; r < cluster.NumResources; r++ {
				if cur[r] < prev[r]-1e-12 {
					t.Fatalf("%s: demand[%d] not monotone at %vMB", kind, r, size)
				}
			}
			prev = cur
		}
	}
}

func TestDemandZeroAndNegativeInput(t *testing.T) {
	for _, kind := range JobKinds() {
		if !Demand(kind, 0).IsZero() {
			t.Errorf("%s: zero input should have zero demand", kind)
		}
		if !Demand(kind, -5).IsZero() {
			t.Errorf("%s: negative input should clamp to zero demand", kind)
		}
	}
}

func TestStackCharacterisation(t *testing.T) {
	// The paper's example: Hadoop Bayes is CPU-intensive, Spark Bayes is
	// I/O-intensive (§II-B). At a common large input, Hadoop Bayes must
	// dominate on cores and Spark Bayes on disk bandwidth.
	const size = 4096
	hb := Demand(HadoopBayes, size)
	sb := Demand(SparkBayes, size)
	if hb[cluster.Core] <= sb[cluster.Core] {
		t.Errorf("Hadoop Bayes core %.2f should exceed Spark Bayes %.2f", hb[cluster.Core], sb[cluster.Core])
	}
	if sb[cluster.DiskBW] <= hb[cluster.DiskBW] {
		t.Errorf("Spark Bayes diskBW %.2f should exceed Hadoop Bayes %.2f", sb[cluster.DiskBW], hb[cluster.DiskBW])
	}
}

func TestIsHadoop(t *testing.T) {
	for _, k := range []JobKind{HadoopBayes, HadoopWordCount, HadoopPageIndex} {
		if !k.IsHadoop() {
			t.Errorf("%s should be Hadoop", k)
		}
	}
	for _, k := range []JobKind{SparkBayes, SparkWordCount, SparkSort} {
		if k.IsHadoop() {
			t.Errorf("%s should not be Hadoop", k)
		}
	}
}

func TestJobKindStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range JobKinds() {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has empty or duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if JobKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestDurationScalesWithInput(t *testing.T) {
	if Duration(HadoopWordCount, 100) >= Duration(HadoopWordCount, 10000) {
		t.Error("duration should grow with input size")
	}
	// Spark completes faster than Hadoop on the same input (in-memory).
	if Duration(SparkSort, 4096) >= Duration(HadoopWordCount, 4096) {
		t.Error("Spark should finish sooner than Hadoop at equal input")
	}
	if Duration(HadoopBayes, 0) < 1 {
		t.Error("even tiny jobs take a few seconds")
	}
}

func TestBatchJobProgramInterface(t *testing.T) {
	j := NewBatchJob("job-1", SparkSort, 1000, 1.0)
	if j.ProgramID() != "job-1" {
		t.Fatalf("id = %q", j.ProgramID())
	}
	want := Demand(SparkSort, 1000)
	if j.Demand() != want {
		t.Fatalf("demand = %v, want %v", j.Demand(), want)
	}
	if j.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBatchJobJitter(t *testing.T) {
	base := NewBatchJob("a", HadoopBayes, 1000, 1.0)
	scaled := NewBatchJob("b", HadoopBayes, 1000, 1.5)
	for r := 0; r < cluster.NumResources; r++ {
		if math.Abs(scaled.Demand()[r]-1.5*base.Demand()[r]) > 1e-9 {
			t.Fatalf("jitter not applied: %v vs %v", scaled.Demand(), base.Demand())
		}
	}
	// Non-positive jitter falls back to nominal.
	fallback := NewBatchJob("c", HadoopBayes, 1000, 0)
	if fallback.Demand() != base.Demand() {
		t.Fatal("zero jitter should mean nominal demand")
	}
}

func TestPhasedJobShiftsDemand(t *testing.T) {
	j := NewPhasedJob("p", HadoopWordCount, 2000, 1.0)
	before := j.Demand()
	j.EnterReducePhase()
	after := j.Demand()
	if !j.InReducePhase() {
		t.Fatal("phase flag not set")
	}
	if after[cluster.Core] >= before[cluster.Core] {
		t.Error("reduce phase should lower core demand")
	}
	if after[cluster.DiskBW] <= before[cluster.DiskBW] {
		t.Error("reduce phase should raise disk demand")
	}
	// Idempotent.
	j.EnterReducePhase()
	if j.Demand() != after {
		t.Error("EnterReducePhase is not idempotent")
	}
}

func TestGeneratorMaintainsConcurrency(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(10, cluster.DefaultCapacity())
	src := xrand.New(3)
	g := NewGenerator(engine, cl, src, GeneratorConfig{TargetConcurrency: 2, Heterogeneity: -1})
	g.Start()
	engine.Run(300)

	if g.Started() == 0 {
		t.Fatal("no jobs started")
	}
	if g.Ended() == 0 {
		t.Fatal("no jobs ended")
	}
	perNode := float64(g.Active()) / 10
	if perNode < 0.5 || perNode > 6 {
		t.Fatalf("steady-state concurrency per node = %.2f, want around 2", perNode)
	}
	// Active accounting is consistent.
	if g.Active() != g.Started()-g.Ended() {
		t.Fatalf("active=%d started=%d ended=%d inconsistent", g.Active(), g.Started(), g.Ended())
	}
}

func TestGeneratorProducesContention(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(4, cluster.DefaultCapacity())
	g := NewGenerator(engine, cl, xrand.New(4), GeneratorConfig{TargetConcurrency: 3})
	g.Start()
	engine.Run(60)
	total := 0.0
	for _, v := range cl.Contentions() {
		total += v[cluster.Core]
	}
	if total == 0 {
		t.Fatal("no core contention from batch jobs after 60s")
	}
}

func TestGeneratorHeterogeneitySpreadsTargets(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(20, cluster.DefaultCapacity())
	g := NewGenerator(engine, cl, xrand.New(5), GeneratorConfig{TargetConcurrency: 2, Heterogeneity: 0.6})
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 20; i++ {
		v := g.NodeTarget(i)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if v < 2*0.4-1e-9 || v > 2*1.6+1e-9 {
			t.Fatalf("node target %v outside [0.8, 3.2]", v)
		}
	}
	if max-min < 0.3 {
		t.Fatalf("heterogeneity spread too small: [%v, %v]", min, max)
	}
}

func TestGeneratorTwoPhaseJobsShiftNodeDemand(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(2, cluster.DefaultCapacity())
	g := NewGenerator(engine, cl, xrand.New(6), GeneratorConfig{
		TargetConcurrency: 3, TwoPhase: true, MinInputMB: 2000, MaxInputMB: 8000,
	})
	g.Start()
	engine.Run(120)
	if g.Started() == 0 {
		t.Fatal("no jobs")
	}
	// Smoke: the run completes without panics and jobs churn.
	if g.Ended() == 0 {
		t.Fatal("no two-phase jobs completed")
	}
}

func TestKindSizeGrid(t *testing.T) {
	kinds := []JobKind{HadoopBayes, SparkSort}
	sizes := []float64{100, 200, 300}
	grid := KindSizeGrid(kinds, sizes)
	if len(grid) != 6 {
		t.Fatalf("grid size = %d, want 6", len(grid))
	}
	if grid[0] != Demand(HadoopBayes, 100) {
		t.Fatal("grid[0] mismatch")
	}
	if grid[5] != Demand(SparkSort, 300) {
		t.Fatal("grid[5] mismatch")
	}
}

func TestLinearSizes(t *testing.T) {
	s := LinearSizes(5, 0, 100)
	want := []float64{0, 25, 50, 75, 100}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Fatalf("sizes = %v", s)
		}
	}
	if got := LinearSizes(1, 7, 100); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single size = %v", got)
	}
}

func TestTrainingMixesProperties(t *testing.T) {
	f := func(seed int64) bool {
		src := xrand.New(seed)
		mixes := TrainingMixes(src, 20, 3, 1, 1000)
		if len(mixes) != 20 {
			return false
		}
		for _, m := range mixes {
			for r := 0; r < cluster.NumResources; r++ {
				if m[r] < 0 || math.IsNaN(m[r]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTrainingMixesDefaults(t *testing.T) {
	src := xrand.New(1)
	mixes := TrainingMixes(src, 10, 0, 0, 0) // all defaults
	if len(mixes) != 10 {
		t.Fatalf("len = %d", len(mixes))
	}
}
