package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// GeneratorConfig controls a per-node batch-job stream.
type GeneratorConfig struct {
	// TargetConcurrency is the average number of batch jobs to keep running
	// on each node. Job arrivals are Poisson with rate chosen so that the
	// steady-state concurrency matches this target (Little's law).
	TargetConcurrency float64
	// MinInputMB and MaxInputMB bound the input-size distribution. The
	// paper's Fig. 6 setting sweeps 1 MB to 10 GB.
	MinInputMB, MaxInputMB float64
	// InputAlpha is the bounded-Pareto shape for input sizes; smaller means
	// heavier tail (more large jobs). 0 selects the default of 0.9.
	InputAlpha float64
	// DurationSigma is the lognormal sigma applied as jitter on nominal job
	// duration. 0 selects the default of 0.5.
	DurationSigma float64
	// DemandJitterSigma is the lognormal sigma applied to the demand
	// vector. 0 selects the default of 0.15.
	DemandJitterSigma float64
	// Kinds restricts generated jobs to a subset of archetypes; nil means
	// all six.
	Kinds []JobKind
	// TwoPhase makes jobs shift demand toward I/O halfway through their
	// lifetime (map → reduce), exercising intra-job dynamics.
	TwoPhase bool
	// Heterogeneity spreads per-node batch intensity: each node's
	// concurrency target is drawn uniformly from
	// TargetConcurrency·[1−h, 1+h]. Persistent hot and cold nodes are what
	// make component placement matter (the paper's premise that components
	// on different nodes see different interference). 0 selects the
	// default of 0.6; negative disables the spread.
	Heterogeneity float64
}

func (c *GeneratorConfig) withDefaults() GeneratorConfig {
	out := *c
	if out.TargetConcurrency <= 0 {
		out.TargetConcurrency = 2
	}
	if out.MinInputMB <= 0 {
		out.MinInputMB = 1
	}
	if out.MaxInputMB <= out.MinInputMB {
		out.MaxInputMB = 10 * 1024
	}
	if out.InputAlpha <= 0 {
		out.InputAlpha = 0.7
	}
	if out.DurationSigma <= 0 {
		out.DurationSigma = 0.5
	}
	if out.DemandJitterSigma <= 0 {
		out.DemandJitterSigma = 0.15
	}
	if len(out.Kinds) == 0 {
		out.Kinds = JobKinds()
	}
	if out.Heterogeneity == 0 {
		out.Heterogeneity = 0.6
	} else if out.Heterogeneity < 0 {
		out.Heterogeneity = 0
	}
	if out.Heterogeneity > 1 {
		out.Heterogeneity = 1
	}
	return out
}

// Generator keeps a stream of short batch jobs running on every node of a
// cluster, producing the continuously changing performance interference the
// paper attributes to co-located batch workloads.
type Generator struct {
	cfg     GeneratorConfig
	cluster *cluster.Cluster
	engine  *sim.Engine
	src     *xrand.Source

	nextID  int
	started int
	ended   int
	active  int

	// nodeTarget is each node's concurrency target after the
	// heterogeneity spread.
	nodeTarget []float64
	meanDur    float64
}

// NewGenerator creates a generator over the cluster. Call Start to begin
// spawning jobs.
func NewGenerator(e *sim.Engine, cl *cluster.Cluster, src *xrand.Source, cfg GeneratorConfig) *Generator {
	g := &Generator{cfg: cfg.withDefaults(), cluster: cl, engine: e, src: src}
	g.nodeTarget = make([]float64, cl.NumNodes())
	h := g.cfg.Heterogeneity
	for i := range g.nodeTarget {
		g.nodeTarget[i] = g.cfg.TargetConcurrency * (1 + h*(2*src.Float64()-1))
	}
	return g
}

// NodeTarget reports the heterogeneity-spread concurrency target of a node.
func (g *Generator) NodeTarget(nodeID int) float64 { return g.nodeTarget[nodeID] }

// Started, Ended and Active report job counts for observability.
func (g *Generator) Started() int { return g.started }

// Ended reports the number of jobs that have completed.
func (g *Generator) Ended() int { return g.ended }

// Active reports the number of currently running jobs.
func (g *Generator) Active() int { return g.active }

// Start seeds each node with an initial set of jobs and schedules Poisson
// job arrivals per node so that the average concurrency per node equals
// TargetConcurrency.
func (g *Generator) Start() {
	for _, n := range g.cluster.Nodes() {
		// Initial population: Poisson around the node's target so nodes
		// start heterogeneous, which is what makes migration useful at
		// t=0.
		init := g.src.Poisson(g.nodeTarget[n.ID])
		for i := 0; i < init; i++ {
			g.spawn(n, true)
		}
		g.scheduleNextArrival(n)
	}
}

// meanDuration estimates the mean job duration under the configured kind
// and input-size distributions by Monte Carlo over a dedicated stream, so
// the arrival rate hits the concurrency target via Little's law. Cached
// after the first call.
func (g *Generator) meanDuration() float64 {
	if g.meanDur > 0 {
		return g.meanDur
	}
	est := g.src.Fork()
	const n = 2000
	sum := 0.0
	for i := 0; i < n; i++ {
		kind := g.cfg.Kinds[est.Intn(len(g.cfg.Kinds))]
		size := est.BoundedPareto(g.cfg.InputAlpha, g.cfg.MinInputMB, g.cfg.MaxInputMB)
		sum += Duration(kind, size)
	}
	g.meanDur = sum / n
	return g.meanDur
}

func (g *Generator) scheduleNextArrival(n *cluster.Node) {
	rate := g.nodeTarget[n.ID] / g.meanDuration() // arrivals/sec per node
	gap := g.src.Exp(1 / rate)
	g.engine.After(gap, func(now float64) {
		g.spawn(n, false)
		g.scheduleNextArrival(n)
	})
}

// spawn creates one job on node n and schedules its departure. When
// initial is true the job is mid-flight: its remaining lifetime is a
// uniform fraction of a full duration.
func (g *Generator) spawn(n *cluster.Node, initial bool) {
	kind := g.cfg.Kinds[g.src.Intn(len(g.cfg.Kinds))]
	inputMB := g.src.BoundedPareto(g.cfg.InputAlpha, g.cfg.MinInputMB, g.cfg.MaxInputMB)
	jitter := g.src.LogNormalMean(1, g.cfg.DemandJitterSigma)

	id := fmt.Sprintf("job-%d", g.nextID)
	g.nextID++

	dur := Duration(kind, inputMB) * g.src.LogNormalMean(1, g.cfg.DurationSigma)
	if initial {
		dur *= g.src.Float64() // already partway done
		if dur < 0.5 {
			dur = 0.5
		}
	}

	now := g.engine.Now()
	if g.cfg.TwoPhase {
		job := NewPhasedJob(id, kind, inputMB, jitter)
		job.Start, job.End = now, now+dur
		n.Host(job)
		g.engine.After(dur/2, func(float64) {
			if n.Hosts(id) {
				job.EnterReducePhase()
				n.Refresh()
			}
		})
		g.scheduleEnd(n, id, dur)
	} else {
		job := NewBatchJob(id, kind, inputMB, jitter)
		job.Start, job.End = now, now+dur
		n.Host(job)
		g.scheduleEnd(n, id, dur)
	}
	g.started++
	g.active++
}

func (g *Generator) scheduleEnd(n *cluster.Node, id string, dur float64) {
	g.engine.After(dur, func(float64) {
		if n.Evict(id) {
			g.ended++
			g.active--
		}
	})
}
