package workload

import (
	"fmt"

	"repro/internal/cluster"
)

// BatchJob is one running batch job occupying resources on a node. It
// implements cluster.Program with a demand vector fixed at creation (the
// job-level dynamism the paper describes comes from jobs arriving and
// departing, not from intra-job phase changes; see PhasedJob for the
// two-phase extension).
type BatchJob struct {
	id      string
	Kind    JobKind
	InputMB float64
	demand  cluster.Vector
	// Start and End are virtual times in seconds, filled by the generator.
	Start, End float64
}

// NewBatchJob creates a job of the given kind and input size. jitter scales
// the demand vector (1.0 = nominal) to model run-to-run variation.
func NewBatchJob(id string, kind JobKind, inputMB, jitter float64) *BatchJob {
	if jitter <= 0 {
		jitter = 1
	}
	return &BatchJob{
		id:      id,
		Kind:    kind,
		InputMB: inputMB,
		demand:  Demand(kind, inputMB).Scale(jitter),
	}
}

// ProgramID implements cluster.Program.
func (j *BatchJob) ProgramID() string { return j.id }

// Demand implements cluster.Program.
func (j *BatchJob) Demand() cluster.Vector { return j.demand }

// String describes the job.
func (j *BatchJob) String() string {
	return fmt.Sprintf("%s[%s %.0fMB]", j.id, j.Kind, j.InputMB)
}

// PhasedJob wraps a BatchJob with a two-phase demand profile: a map-like
// phase using the nominal demand and a reduce-like phase that shifts weight
// from CPU toward I/O. The generator flips the phase halfway through the
// job's lifetime; the hosting node must be Refresh()ed afterwards because
// the demand mutates in place.
type PhasedJob struct {
	BatchJob
	inReduce bool
}

// NewPhasedJob creates a two-phase job.
func NewPhasedJob(id string, kind JobKind, inputMB, jitter float64) *PhasedJob {
	j := NewBatchJob(id, kind, inputMB, jitter)
	return &PhasedJob{BatchJob: *j}
}

// EnterReducePhase shifts the job's demand toward I/O: core demand halves
// and disk/network demand grows by half. Idempotent.
func (j *PhasedJob) EnterReducePhase() {
	if j.inReduce {
		return
	}
	j.inReduce = true
	j.demand[cluster.Core] *= 0.5
	j.demand[cluster.DiskBW] *= 1.5
	j.demand[cluster.NetBW] *= 1.5
}

// InReducePhase reports whether the job has entered its reduce phase.
func (j *PhasedJob) InReducePhase() bool { return j.inReduce }
