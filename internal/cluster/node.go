package cluster

import (
	"fmt"
	"sort"
)

// Program is anything that occupies resources on a node: a service
// component's VM or a batch job's VM. The node tracks each program's demand
// vector and exposes the aggregate as the node's contention state.
type Program interface {
	// ProgramID returns a unique identifier for the program.
	ProgramID() string
	// Demand returns the program's current resource demand vector.
	Demand() Vector
}

// Node is a physical machine hosting programs that share its resources.
type Node struct {
	ID       int
	Name     string
	Capacity Vector // saturation point per resource; zero entries = unlimited

	programs map[string]Program
	// failed marks a node that has gone dark: its observable contention
	// pins to full capacity, so everything hosted there runs at the
	// interference law's saturation multiplier until Restore. This is a
	// fail-slow model — requests on a failed node crawl rather than
	// vanish — which keeps failures inside the contention framework the
	// monitor, predictor and scheduler already understand.
	failed bool
	// order keeps hosted programs in arrival order. Refresh must sum
	// demands in a deterministic order: float addition is not
	// associative, so iterating the map directly would let Go's random
	// map order perturb the aggregate by an ulp from run to run —
	// breaking the simulator's bit-for-bit reproducibility per seed.
	order []Program
	// cached aggregate demand; maintained incrementally where possible
	// and recomputed on Refresh.
	aggregate Vector
}

// NewNode creates a node with the given identifier and resource capacities.
func NewNode(id int, capacity Vector) *Node {
	return &Node{
		ID:       id,
		Name:     fmt.Sprintf("n%d", id),
		Capacity: capacity,
		programs: make(map[string]Program),
	}
}

// Host places a program on the node. It panics if a program with the same
// ID is already hosted: double-placement is a scheduling bug.
func (n *Node) Host(p Program) {
	id := p.ProgramID()
	if _, ok := n.programs[id]; ok {
		panic(fmt.Sprintf("cluster: program %q already hosted on %s", id, n.Name))
	}
	n.programs[id] = p
	n.order = append(n.order, p)
	n.aggregate = n.aggregate.Add(p.Demand())
}

// Evict removes a program from the node. It reports whether the program was
// present.
func (n *Node) Evict(id string) bool {
	p, ok := n.programs[id]
	if !ok {
		return false
	}
	delete(n.programs, id)
	for i, q := range n.order {
		if q.ProgramID() == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	n.aggregate = n.aggregate.Sub(p.Demand())
	return true
}

// Hosts reports whether the node currently hosts the program.
func (n *Node) Hosts(id string) bool {
	_, ok := n.programs[id]
	return ok
}

// NumPrograms reports the number of hosted programs.
func (n *Node) NumPrograms() int { return len(n.programs) }

// ProgramIDs returns the hosted program IDs in sorted order (for
// deterministic iteration).
func (n *Node) ProgramIDs() []string {
	ids := make([]string, 0, len(n.programs))
	for id := range n.programs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Refresh recomputes the aggregate demand from scratch. Call it after
// programs mutate their demand vectors in place (e.g. a batch job entering
// a new phase); hosting and eviction keep the aggregate current on their
// own.
func (n *Node) Refresh() {
	var agg Vector
	for _, p := range n.order {
		agg = agg.Add(p.Demand())
	}
	n.aggregate = agg
}

// Fail marks the node failed: Contention, ContentionExcluding and
// Utilization report full saturation until Restore, so hosted programs
// experience the worst-case interference and the monitor sees a node it
// should route and migrate away from. Failing an already failed node is a
// no-op.
func (n *Node) Fail() { n.failed = true }

// Restore clears a failure; observable contention reverts to the hosted
// programs' aggregate demand.
func (n *Node) Restore() { n.failed = false }

// Failed reports whether the node is currently failed.
func (n *Node) Failed() bool { return n.failed }

// Contention returns the node's current aggregate contention vector,
// saturated at the node's capacity. This is what the paper's monitors
// observe via /proc and hardware counters. A failed node reports full
// capacity on every bounded resource.
func (n *Node) Contention() Vector {
	if n.failed {
		return n.Capacity
	}
	return n.aggregate.Clamp(n.Capacity)
}

// RawDemand returns the unsaturated aggregate demand (useful for detecting
// oversubscription).
func (n *Node) RawDemand() Vector { return n.aggregate }

// ContentionExcluding returns the node's contention with one program's
// demand removed — the "background" a component would see around itself.
// On a failed node the background is saturation regardless of who asks.
func (n *Node) ContentionExcluding(id string) Vector {
	if n.failed {
		return n.Capacity
	}
	agg := n.aggregate
	if p, ok := n.programs[id]; ok {
		agg = agg.Sub(p.Demand())
	}
	return agg.Clamp(n.Capacity)
}

// Utilization returns contention normalised by capacity for resource r in
// [0, 1]; unlimited resources report 0.
func (n *Node) Utilization(r Resource) float64 {
	if n.Capacity[r] <= 0 {
		return 0
	}
	u := n.Contention()[r] / n.Capacity[r]
	if u > 1 {
		u = 1
	}
	return u
}
