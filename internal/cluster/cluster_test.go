package cluster

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

type fakeProgram struct {
	id     string
	demand Vector
}

func (p *fakeProgram) ProgramID() string { return p.id }
func (p *fakeProgram) Demand() Vector    { return p.demand }

func vecAlmostEqual(a, b Vector, tol float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestVectorAddSub(t *testing.T) {
	a := Vector{1, 2, 3, 4}
	b := Vector{0.5, 1, 1.5, 2}
	sum := a.Add(b)
	if !vecAlmostEqual(sum, Vector{1.5, 3, 4.5, 6}, 1e-12) {
		t.Fatalf("Add = %v", sum)
	}
	diff := sum.Sub(b)
	if !vecAlmostEqual(diff, a, 1e-12) {
		t.Fatalf("Sub = %v, want %v", diff, a)
	}
}

func TestVectorSubClampsAtZero(t *testing.T) {
	a := Vector{1, 0, 0, 0}
	b := Vector{2, 1, 0, 0}
	got := a.Sub(b)
	if !got.IsZero() {
		t.Fatalf("Sub should clamp to zero, got %v", got)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, 2, 3, 4}.Scale(0.5)
	if !vecAlmostEqual(v, Vector{0.5, 1, 1.5, 2}, 1e-12) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestVectorClamp(t *testing.T) {
	v := Vector{10, 5, 300, 50}
	cap := Vector{8, 0, 200, 100} // zero capacity = unlimited
	got := v.Clamp(cap)
	want := Vector{8, 5, 200, 50}
	if !vecAlmostEqual(got, want, 1e-12) {
		t.Fatalf("Clamp = %v, want %v", got, want)
	}
}

func TestVectorAddCommutative(t *testing.T) {
	f := func(a, b Vector) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
		}
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorAddSubRoundTripNonNegative(t *testing.T) {
	// For non-negative vectors, (a+b)−b == a (Sub clamps, but the result
	// never goes below zero here).
	f := func(a, b Vector) bool {
		for i := range a {
			a[i] = math.Abs(math.Mod(a[i], 1e6))
			b[i] = math.Abs(math.Mod(b[i], 1e6))
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true
			}
		}
		got := a.Add(b).Sub(b)
		return vecAlmostEqual(got, a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceStrings(t *testing.T) {
	want := map[Resource]string{
		Core: "core", Cache: "cache", DiskBW: "diskBW", NetBW: "networkBW",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
	if Resource(99).String() == "" {
		t.Error("unknown resource should still format")
	}
	if len(Resources()) != NumResources {
		t.Error("Resources() must cover all resource kinds")
	}
}

func TestNodeHostEvict(t *testing.T) {
	n := NewNode(0, DefaultCapacity())
	p := &fakeProgram{id: "a", demand: Vector{1, 2, 3, 4}}
	n.Host(p)
	if !n.Hosts("a") || n.NumPrograms() != 1 {
		t.Fatal("program not hosted")
	}
	if !vecAlmostEqual(n.Contention(), p.demand, 1e-12) {
		t.Fatalf("contention = %v", n.Contention())
	}
	if !n.Evict("a") {
		t.Fatal("evict failed")
	}
	if n.Hosts("a") || !n.Contention().IsZero() {
		t.Fatal("program still present after evict")
	}
	if n.Evict("a") {
		t.Fatal("second evict should report false")
	}
}

func TestNodeDoubleHostPanics(t *testing.T) {
	n := NewNode(0, DefaultCapacity())
	p := &fakeProgram{id: "a"}
	n.Host(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double host did not panic")
		}
	}()
	n.Host(p)
}

func TestNodeContentionAggregatesAndClamps(t *testing.T) {
	cap := Vector{10, 10, 10, 10}
	n := NewNode(0, cap)
	n.Host(&fakeProgram{id: "a", demand: Vector{6, 1, 2, 3}})
	n.Host(&fakeProgram{id: "b", demand: Vector{6, 1, 2, 3}})
	got := n.Contention()
	want := Vector{10, 2, 4, 6} // core clamped at capacity
	if !vecAlmostEqual(got, want, 1e-12) {
		t.Fatalf("contention = %v, want %v", got, want)
	}
	raw := n.RawDemand()
	if !vecAlmostEqual(raw, Vector{12, 2, 4, 6}, 1e-12) {
		t.Fatalf("raw demand = %v", raw)
	}
}

func TestNodeContentionExcluding(t *testing.T) {
	n := NewNode(0, DefaultCapacity())
	a := &fakeProgram{id: "a", demand: Vector{1, 1, 1, 1}}
	b := &fakeProgram{id: "b", demand: Vector{2, 2, 2, 2}}
	n.Host(a)
	n.Host(b)
	got := n.ContentionExcluding("a")
	if !vecAlmostEqual(got, b.demand, 1e-12) {
		t.Fatalf("ContentionExcluding = %v, want %v", got, b.demand)
	}
	// Excluding an unknown program returns the full aggregate.
	all := n.ContentionExcluding("zzz")
	if !vecAlmostEqual(all, Vector{3, 3, 3, 3}, 1e-12) {
		t.Fatalf("ContentionExcluding(unknown) = %v", all)
	}
}

func TestNodeRefreshAfterDemandMutation(t *testing.T) {
	n := NewNode(0, DefaultCapacity())
	p := &fakeProgram{id: "a", demand: Vector{1, 1, 1, 1}}
	n.Host(p)
	p.demand = Vector{5, 5, 5, 5}
	// Aggregate is stale until Refresh.
	if vecAlmostEqual(n.Contention(), p.demand, 1e-12) {
		t.Fatal("aggregate unexpectedly tracked mutation without Refresh")
	}
	n.Refresh()
	if !vecAlmostEqual(n.Contention(), p.demand, 1e-12) {
		t.Fatalf("after Refresh contention = %v", n.Contention())
	}
}

func TestNodeUtilization(t *testing.T) {
	n := NewNode(0, Vector{10, 0, 100, 100})
	n.Host(&fakeProgram{id: "a", demand: Vector{5, 3, 250, 0}})
	if got := n.Utilization(Core); !almostEq(got, 0.5) {
		t.Errorf("core util = %v", got)
	}
	if got := n.Utilization(Cache); got != 0 {
		t.Errorf("unlimited resource util = %v, want 0", got)
	}
	if got := n.Utilization(DiskBW); got != 1 {
		t.Errorf("oversubscribed util = %v, want 1", got)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestNodeProgramIDsSorted(t *testing.T) {
	n := NewNode(0, DefaultCapacity())
	for _, id := range []string{"c", "a", "b"} {
		n.Host(&fakeProgram{id: id})
	}
	ids := n.ProgramIDs()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestClusterNew(t *testing.T) {
	c := New(5, DefaultCapacity())
	if c.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	for i := 0; i < 5; i++ {
		if c.Node(i).ID != i {
			t.Fatalf("node %d has ID %d", i, c.Node(i).ID)
		}
	}
}

func TestClusterNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, DefaultCapacity())
}

func TestClusterNodeOutOfRangePanics(t *testing.T) {
	c := New(2, DefaultCapacity())
	defer func() {
		if recover() == nil {
			t.Fatal("Node(5) did not panic")
		}
	}()
	c.Node(5)
}

func TestClusterMove(t *testing.T) {
	c := New(3, DefaultCapacity())
	p := &fakeProgram{id: "x", demand: Vector{1, 0, 0, 0}}
	c.Node(0).Host(p)
	c.Move(p, 0, 2)
	if c.Node(0).Hosts("x") {
		t.Fatal("program still on source")
	}
	if !c.Node(2).Hosts("x") {
		t.Fatal("program not on destination")
	}
	if got := c.LocateProgram("x"); got != 2 {
		t.Fatalf("LocateProgram = %d", got)
	}
	// Move to same node is a no-op.
	c.Move(p, 2, 2)
	if !c.Node(2).Hosts("x") {
		t.Fatal("no-op move lost the program")
	}
}

func TestClusterMovePanicsWhenNotHosted(t *testing.T) {
	c := New(2, DefaultCapacity())
	p := &fakeProgram{id: "x"}
	defer func() {
		if recover() == nil {
			t.Fatal("Move of unhosted program did not panic")
		}
	}()
	c.Move(p, 0, 1)
}

func TestClusterContentions(t *testing.T) {
	c := New(2, DefaultCapacity())
	c.Node(1).Host(&fakeProgram{id: "a", demand: Vector{1, 2, 3, 4}})
	vs := c.Contentions()
	if len(vs) != 2 {
		t.Fatalf("len = %d", len(vs))
	}
	if !vs[0].IsZero() {
		t.Fatalf("node 0 contention = %v", vs[0])
	}
	if !vecAlmostEqual(vs[1], Vector{1, 2, 3, 4}, 1e-12) {
		t.Fatalf("node 1 contention = %v", vs[1])
	}
}

func TestClusterLocateProgramMissing(t *testing.T) {
	c := New(2, DefaultCapacity())
	if got := c.LocateProgram("nope"); got != -1 {
		t.Fatalf("LocateProgram(missing) = %d, want -1", got)
	}
}

func TestClusterRefresh(t *testing.T) {
	c := New(2, DefaultCapacity())
	p := &fakeProgram{id: "a", demand: Vector{1, 1, 1, 1}}
	c.Node(0).Host(p)
	p.demand = Vector{2, 2, 2, 2}
	c.Refresh()
	if !vecAlmostEqual(c.Node(0).Contention(), p.demand, 1e-12) {
		t.Fatalf("refresh did not recompute: %v", c.Node(0).Contention())
	}
}

func TestVectorString(t *testing.T) {
	s := Vector{1, 2, 3, 4}.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

// TestRefreshSumsInHostingOrder pins Refresh's summation order: float
// addition is not associative, so the aggregate must be the in-order sum
// of hosted programs' demands, not a random map-order sum. (A map-order
// Refresh once made same-seed simulations diverge by an ulp.)
func TestRefreshSumsInHostingOrder(t *testing.T) {
	// Magnitudes chosen so order changes the floating-point sum.
	demands := []float64{1e16, 1.5, -0, 3.25, 1e-3, 7e15, 2.125}
	var want Vector
	n := NewNode(0, Vector{}) // unlimited capacity: no clamping
	for i, d := range demands {
		p := &fakeProgram{id: fmt.Sprintf("p%d", i), demand: Vector{Core: d}}
		n.Host(p)
		want[Core] += d
	}
	for trial := 0; trial < 20; trial++ {
		n.Refresh()
		if got := n.RawDemand()[Core]; got != want[Core] {
			t.Fatalf("trial %d: Refresh sum = %.20g, want in-order %.20g", trial, got, want[Core])
		}
	}
	// Eviction must preserve the order of the remaining programs.
	n.Evict("p1")
	want[Core] = 0
	for i, d := range demands {
		if i == 1 {
			continue
		}
		want[Core] += d
	}
	n.Refresh()
	if got := n.RawDemand()[Core]; got != want[Core] {
		t.Fatalf("post-evict Refresh sum = %.20g, want %.20g", got, want[Core])
	}
}

func TestNodeFailRestore(t *testing.T) {
	cap := DefaultCapacity()
	n := NewNode(0, cap)
	n.Host(&fakeProgram{id: "p", demand: Vector{Core: 1}})
	if n.Failed() {
		t.Fatal("fresh node reports failed")
	}
	healthy := n.Contention()
	n.Fail()
	if !n.Failed() {
		t.Fatal("Fail did not mark the node")
	}
	if got := n.Contention(); got != cap {
		t.Fatalf("failed node contention = %v, want full capacity %v", got, cap)
	}
	if got := n.ContentionExcluding("p"); got != cap {
		t.Fatalf("failed node background = %v, want full capacity %v", got, cap)
	}
	if u := n.Utilization(Core); u != 1 {
		t.Fatalf("failed node core utilization = %v, want 1", u)
	}
	n.Restore()
	if n.Failed() {
		t.Fatal("Restore did not clear the failure")
	}
	if got := n.Contention(); got != healthy {
		t.Fatalf("restored contention = %v, want pre-failure %v", got, healthy)
	}
}

func TestClusterFailedNodes(t *testing.T) {
	c := New(4, DefaultCapacity())
	if c.FailedNodes() != 0 {
		t.Fatalf("fresh cluster failed nodes = %d", c.FailedNodes())
	}
	c.Node(1).Fail()
	c.Node(3).Fail()
	if c.FailedNodes() != 2 {
		t.Fatalf("failed nodes = %d, want 2", c.FailedNodes())
	}
	c.Node(1).Restore()
	if c.FailedNodes() != 1 {
		t.Fatalf("after restore failed nodes = %d, want 1", c.FailedNodes())
	}
}
