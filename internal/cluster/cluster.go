package cluster

import "fmt"

// Cluster is a fixed set of nodes. Node IDs are dense indices [0, N).
type Cluster struct {
	nodes []*Node
}

// DefaultCapacity mirrors the paper's testbed nodes (two 6-core Xeon E5645,
// 1 GbE): 12 cores' worth of core usage, an MPKI saturation level, ~200 MB/s
// of disk bandwidth and ~125 MB/s of network bandwidth.
func DefaultCapacity() Vector {
	return Vector{
		Core:   12,  // aggregate core usage (cores' worth of runnable time)
		Cache:  100, // MPKI saturation level across co-runners
		DiskBW: 200, // MB/s
		NetBW:  125, // MB/s (1 Gb Ethernet)
	}
}

// New creates a cluster of n identical nodes with the given capacity.
func New(n int, capacity Vector) *Cluster {
	if n <= 0 {
		panic("cluster: need at least one node")
	}
	c := &Cluster{nodes: make([]*Node, n)}
	for i := range c.nodes {
		c.nodes[i] = NewNode(i, capacity)
	}
	return c
}

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the node with the given ID. It panics on an out-of-range ID,
// which indicates a scheduling bug.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		panic(fmt.Sprintf("cluster: node id %d out of range [0,%d)", id, len(c.nodes)))
	}
	return c.nodes[id]
}

// Nodes returns the nodes slice. Callers must not mutate it.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Contentions returns the contention vector of every node, indexed by node
// ID. This is the bulk snapshot the monitor takes each sampling period.
func (c *Cluster) Contentions() []Vector {
	out := make([]Vector, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Contention()
	}
	return out
}

// FailedNodes reports how many nodes are currently failed.
func (c *Cluster) FailedNodes() int {
	n := 0
	for _, node := range c.nodes {
		if node.Failed() {
			n++
		}
	}
	return n
}

// Move relocates a hosted program from one node to another. It panics if
// the program is not hosted on `from` or already hosted on `to`; migrations
// are driven by the scheduler, which must keep its allocation array
// consistent with the cluster.
func (c *Cluster) Move(p Program, from, to int) {
	if from == to {
		return
	}
	src, dst := c.Node(from), c.Node(to)
	if !src.Evict(p.ProgramID()) {
		panic(fmt.Sprintf("cluster: program %q not hosted on %s", p.ProgramID(), src.Name))
	}
	dst.Host(p)
}

// LocateProgram returns the ID of the node hosting the program, or -1.
// It is O(nodes) and intended for tests and assertions, not hot paths.
func (c *Cluster) LocateProgram(id string) int {
	for _, n := range c.nodes {
		if n.Hosts(id) {
			return n.ID
		}
	}
	return -1
}

// Refresh recomputes every node's aggregate demand. Call once per
// monitoring period after batch jobs have mutated their demands.
func (c *Cluster) Refresh() {
	for _, n := range c.nodes {
		n.Refresh()
	}
}
