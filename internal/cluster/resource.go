// Package cluster models the data-center substrate the paper deploys on: a
// set of nodes (physical machines), each hosting VMs/containers whose
// programs share and contend four classes of resources (paper Table II):
// processing cores, shared caches (expressed as MPKI), disk bandwidth and
// network bandwidth.
//
// A node's contention state is a Vector of the four metrics, equal to the
// sum of the demands of every program hosted on it, optionally saturated at
// the node's capacity. The performance predictor consumes these vectors.
package cluster

import "fmt"

// Resource identifies one of the four shared resource classes of Table II.
type Resource int

const (
	// Core is processing-unit contention, measured as core usage (the
	// ratio of time running instructions on the cores).
	Core Resource = iota
	// Cache is shared-cache contention (LLC, ITLB, DTLB), measured as
	// misses per kilo-instruction (MPKI).
	Cache
	// DiskBW is disk-bandwidth contention, measured as MB/s read+written.
	DiskBW
	// NetBW is network-bandwidth contention, measured as MB/s sent+received.
	NetBW

	// NumResources is the number of shared resource classes.
	NumResources = 4
)

// String returns the metric name used in Table II.
func (r Resource) String() string {
	switch r {
	case Core:
		return "core"
	case Cache:
		return "cache"
	case DiskBW:
		return "diskBW"
	case NetBW:
		return "networkBW"
	default:
		return fmt.Sprintf("resource(%d)", int(r))
	}
}

// Resources lists all resource classes in canonical order.
func Resources() [NumResources]Resource {
	return [NumResources]Resource{Core, Cache, DiskBW, NetBW}
}

// Vector is a resource-contention vector U = {Ucore, Ucache, UdiskBW,
// UnetworkBW} (paper Table I/II). Vectors add when programs co-locate and
// subtract when a program leaves a node (Table III).
type Vector [NumResources]float64

// Add returns u + v.
func (u Vector) Add(v Vector) Vector {
	for i := range u {
		u[i] += v[i]
	}
	return u
}

// Sub returns u − v, clamped at zero: contention metrics are non-negative
// by construction, and clamping guards against float drift when a program's
// demand is subtracted from an aggregate it contributed to.
func (u Vector) Sub(v Vector) Vector {
	for i := range u {
		u[i] -= v[i]
		if u[i] < 0 {
			u[i] = 0
		}
	}
	return u
}

// Scale returns u with every metric multiplied by f.
func (u Vector) Scale(f float64) Vector {
	for i := range u {
		u[i] *= f
	}
	return u
}

// Clamp returns u with each metric limited to the corresponding capacity in
// cap. Zero capacity entries are treated as "unlimited".
func (u Vector) Clamp(cap Vector) Vector {
	for i := range u {
		if cap[i] > 0 && u[i] > cap[i] {
			u[i] = cap[i]
		}
	}
	return u
}

// Get returns the metric for resource r.
func (u Vector) Get(r Resource) float64 { return u[r] }

// IsZero reports whether all metrics are zero.
func (u Vector) IsZero() bool {
	for _, x := range u {
		if x != 0 {
			return false
		}
	}
	return true
}

// String renders the vector with Table II metric names.
func (u Vector) String() string {
	return fmt.Sprintf("{core:%.3f cache:%.2f diskBW:%.1f netBW:%.1f}",
		u[Core], u[Cache], u[DiskBW], u[NetBW])
}
