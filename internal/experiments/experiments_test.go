package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
	"repro/pcs"
)

func TestFig5SmallRunMatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 takes a few seconds")
	}
	res, err := RunFig5(Fig5Config{Seed: 1, HadoopSizes: 6, SparkSizes: 4, Probes: 80})
	if err != nil {
		t.Fatal(err)
	}
	// 3 Hadoop kinds × 6 sizes + 3 Spark kinds × 4 sizes.
	if len(res.Cases) != 30 {
		t.Fatalf("cases = %d, want 30", len(res.Cases))
	}
	// The paper's average error is 2.68 %; at reduced size we accept a
	// loose band that still catches a broken predictor.
	if res.MeanErrPct <= 0 || res.MeanErrPct > 10 {
		t.Fatalf("mean error = %.2f%%, outside sanity band (0, 10]", res.MeanErrPct)
	}
	if res.FracBelow8 < 0.7 {
		t.Fatalf("only %.0f%% of cases below 8%% error", 100*res.FracBelow8)
	}
	// Bands are nested by construction.
	if res.FracBelow3 > res.FracBelow5 || res.FracBelow5 > res.FracBelow8 {
		t.Fatal("error bands not nested")
	}
	for _, c := range res.Cases {
		if c.MeasuredMs <= 0 || c.PredictedMs <= 0 {
			t.Fatalf("non-positive latencies in case %+v", c)
		}
	}
}

func TestFig5TableRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 takes a few seconds")
	}
	res, err := RunFig5(Fig5Config{Seed: 2, HadoopSizes: 3, SparkSizes: 2, Probes: 50})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"hadoop-bayes", "spark-sort", "average error", "paper: 2.68%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 takes a few seconds")
	}
	a, err := RunFig5(Fig5Config{Seed: 3, HadoopSizes: 3, SparkSizes: 2, Probes: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig5(Fig5Config{Seed: 3, HadoopSizes: 3, SparkSizes: 2, Probes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanErrPct != b.MeanErrPct {
		t.Fatalf("same seed differs: %v vs %v", a.MeanErrPct, b.MeanErrPct)
	}
}

func TestFig6TinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep is expensive")
	}
	cfg := Fig6Config{
		Seed:             1,
		Rates:            []float64{50},
		Techniques:       []pcs.Technique{pcs.Basic, pcs.PCS},
		Requests:         1500,
		Nodes:            10,
		SearchComponents: 20,
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	basic := res.Cell("Basic", 50)
	p := res.Cell("PCS", 50)
	if basic == nil || p == nil {
		t.Fatal("missing cells")
	}
	if basic.Result.AvgOverallMs <= 0 || p.Result.AvgOverallMs <= 0 {
		t.Fatal("latencies not measured")
	}
	if p.Result.Migrations == 0 {
		t.Error("PCS cell made no migrations")
	}
	var sb strings.Builder
	res.WriteTable(&sb, cfg)
	// With no redundancy/reissue baselines in the subset there is nothing
	// for the headline aggregate to compare against, so it is omitted.
	if strings.Contains(sb.String(), "PCS reduction") {
		t.Fatalf("headline printed without baselines:\n%s", sb.String())
	}

	// A subset that includes a baseline prints the headline.
	cfg.Techniques = []pcs.Technique{pcs.RED3, pcs.PCS}
	withBase, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	withBase.WriteTable(&sb, cfg)
	if !strings.Contains(sb.String(), "PCS reduction") {
		t.Fatalf("table missing headline:\n%s", sb.String())
	}
}

func TestFig6ScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep is expensive")
	}
	cfg := Fig6Config{
		Seed:             1,
		Scenario:         "social-feed",
		Rates:            []float64{50},
		Techniques:       []pcs.Technique{pcs.Basic},
		Requests:         1200,
		Nodes:            10,
		SearchComponents: 24,
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cell("Basic", 50)
	if cell == nil || cell.Result.Completed == 0 {
		t.Fatal("scenario sweep produced no results")
	}
	if cell.Result.Scenario != "social-feed" {
		t.Fatalf("cell scenario = %q", cell.Result.Scenario)
	}
	// The social-feed topology has four stages.
	if len(cell.Result.StageMeanMs) != 4 {
		t.Fatalf("stage means = %v", cell.Result.StageMeanMs)
	}

	if _, err := RunFig6(Fig6Config{Scenario: "bogus", Rates: []float64{10},
		Techniques: []pcs.Technique{pcs.Basic}, Requests: 100}); err == nil {
		t.Fatal("unknown scenario accepted by RunFig6")
	}
}

func TestFig5ScenarioSelectsDominantStage(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 takes a few seconds")
	}
	res, err := RunFig5(Fig5Config{Seed: 3, Scenario: "ecommerce", HadoopSizes: 3, SparkSizes: 2, Probes: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 15 {
		t.Fatalf("cases = %d, want 15", len(res.Cases))
	}
	if res.MeanErrPct <= 0 || res.MeanErrPct > 15 {
		t.Fatalf("mean error = %.2f%% outside sanity band", res.MeanErrPct)
	}
	if _, err := RunFig5(Fig5Config{Scenario: "bogus"}); err == nil {
		t.Fatal("unknown scenario accepted by RunFig5")
	}
}

func TestFig7SmallLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 timing is a second or two")
	}
	points, err := RunFig7(Fig7Config{
		Seed:    1,
		Points:  []Fig7Point{{M: 20, K: 4}, {M: 40, K: 8}},
		Repeats: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.AnalysisMs <= 0 {
			t.Fatalf("analysis time not measured at m=%d", p.M)
		}
		if p.TotalMs < p.AnalysisMs {
			t.Fatal("total < analysis")
		}
	}
	// Larger instances take longer to analyse (O(m²k) trend).
	if points[1].AnalysisMs <= points[0].AnalysisMs*0.5 {
		t.Errorf("scaling suspicious: m=20 %.3fms vs m=40 %.3fms",
			points[0].AnalysisMs, points[1].AnalysisMs)
	}
	var sb strings.Builder
	WriteFig7Table(&sb, points)
	if !strings.Contains(sb.String(), "551 ms") {
		t.Fatal("table missing paper reference")
	}
}

func TestSyntheticMatrixInputIsSchedulable(t *testing.T) {
	in, err := SyntheticMatrixInput("", 12, 4, 5, 100, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Components) != 12 || in.NumNodes != 4 {
		t.Fatal("dimensions wrong")
	}
	for _, c := range in.Components {
		if c.Node < 0 || c.Node >= 4 {
			t.Fatal("bad node assignment")
		}
	}
	for _, w := range in.NodeSamples {
		if len(w) != 5 {
			t.Fatal("window length wrong")
		}
	}
}

func TestFig6ReplicatedSweepDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated fig6 sweep is expensive")
	}
	base := Fig6Config{
		Seed:             5,
		Rates:            []float64{50},
		Techniques:       []pcs.Technique{pcs.Basic, pcs.RED3},
		Requests:         800,
		Nodes:            8,
		SearchComponents: 12,
		Replications:     3,
	}
	one := base
	one.Workers = 1
	many := base
	many.Workers = 8
	a, err := RunFig6(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFig6(many)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Result.AvgOverallMs != cb.Result.AvgOverallMs ||
			ca.Result.P99ComponentMs != cb.Result.P99ComponentMs ||
			ca.AvgOverallCI95Ms != cb.AvgOverallCI95Ms {
			t.Fatalf("cell %d differs between worker counts:\n%+v\nvs\n%+v", i, ca, cb)
		}
		if ca.AvgOverallCI95Ms <= 0 {
			t.Fatalf("cell %d has no confidence interval despite 3 replications", i)
		}
	}
	if a.P99ReductionPct != b.P99ReductionPct || a.OverallReductionPct != b.OverallReductionPct {
		t.Fatal("headline reductions differ between worker counts")
	}
}

func TestFig6SingleReplicationMatchesHistoricalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep is expensive")
	}
	// The runner-based sweep with Replications=1 must produce exactly the
	// result of calling pcs.Run directly with the historical cell seed.
	cfg := Fig6Config{
		Seed:             3,
		Rates:            []float64{50},
		Techniques:       []pcs.Technique{pcs.Basic},
		Requests:         800,
		Nodes:            8,
		SearchComponents: 12,
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := pcs.Run(pcs.Options{
		Technique:        pcs.Basic,
		Seed:             cfg.Seed ^ int64(50)<<16 ^ int64(pcs.Basic)<<8,
		Nodes:            8,
		SearchComponents: 12,
		ArrivalRate:      50,
		Requests:         int(90 * 50), // the sweep's 90-virtual-second floor
	})
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cell("Basic", 50)
	if cell == nil {
		t.Fatal("missing cell")
	}
	if cell.Result.AvgOverallMs != direct.AvgOverallMs ||
		cell.Result.P99ComponentMs != direct.P99ComponentMs {
		t.Fatalf("sweep cell %v/%v differs from direct run %v/%v",
			cell.Result.AvgOverallMs, cell.Result.P99ComponentMs,
			direct.AvgOverallMs, direct.P99ComponentMs)
	}
	if cell.AvgOverallCI95Ms != 0 {
		t.Fatal("single replication must not report a confidence interval")
	}
}

func TestFig5ManyAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 takes a few seconds")
	}
	cfg := Fig5Config{Seed: 4, HadoopSizes: 3, SparkSizes: 2, Probes: 40}
	agg, err := RunFig5Many(cfg, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Replications != 2 || len(agg.Results) != 2 {
		t.Fatalf("replications = %d, results = %d", agg.Replications, len(agg.Results))
	}
	single, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replication 0 runs the root seed, so it must match a direct call.
	if agg.Results[0].MeanErrPct != single.MeanErrPct {
		t.Fatalf("replication 0 err %v, direct run %v", agg.Results[0].MeanErrPct, single.MeanErrPct)
	}
	want := (agg.Results[0].MeanErrPct + agg.Results[1].MeanErrPct) / 2
	if diff := agg.MeanErrPct - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("aggregate mean %v, want %v", agg.MeanErrPct, want)
	}
}

func TestFig7ParallelConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 timing is a second or two")
	}
	points, err := RunFig7(Fig7Config{
		Seed:    2,
		Points:  []Fig7Point{{M: 20, K: 4}},
		Repeats: 2,
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].AnalysisMs <= 0 {
		t.Fatalf("bad points: %+v", points)
	}
}

func TestFig6StreamWritesEveryRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep is expensive")
	}
	var buf bytes.Buffer
	cfg := Fig6Config{
		Seed:             9,
		Rates:            []float64{40, 80},
		Techniques:       []pcs.Technique{pcs.Basic, pcs.RED3},
		Requests:         600,
		Nodes:            8,
		SearchComponents: 12,
		Replications:     2,
		Stream:           &buf,
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	var recs []Fig6StreamedRun
	for dec.More() {
		var rec Fig6StreamedRun
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	want := len(cfg.Rates) * len(cfg.Techniques) * cfg.Replications
	if len(recs) != want {
		t.Fatalf("streamed %d runs, want %d", len(recs), want)
	}
	// Cell order deterministic: rate-major, technique, then replication;
	// each line reproducible and consistent with its cell aggregate.
	if recs[0].Technique != "Basic" || recs[0].Rate != 40 || recs[0].Rep != 0 {
		t.Fatalf("first record %+v not (Basic, 40, rep 0)", recs[0])
	}
	cell := res.Cell("Basic", 40)
	if cell == nil {
		t.Fatal("missing cell")
	}
	mean := (recs[0].Result.AvgOverallMs + recs[1].Result.AvgOverallMs) / 2
	if math.Abs(mean-cell.Result.AvgOverallMs) > 1e-12 {
		t.Fatalf("streamed runs' mean %v disagrees with cell %v", mean, cell.Result.AvgOverallMs)
	}
}

func TestFig7ScenarioShapedInputs(t *testing.T) {
	// Each scenario's topology shapes the synthetic components: stage
	// count must match and every stage must be populated.
	for _, name := range []string{"", "microservice-chain", "social-feed"} {
		in, err := SyntheticMatrixInput(name, 40, 8, 5, 100, xrand.New(11))
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if len(in.Components) != 40 {
			t.Fatalf("%q: %d components, want 40", name, len(in.Components))
		}
		seen := make(map[int]int)
		for _, c := range in.Components {
			seen[c.Stage]++
		}
		if len(seen) != in.NumStages {
			t.Fatalf("%q: %d of %d stages populated", name, len(seen), in.NumStages)
		}
	}
	if _, err := SyntheticMatrixInput("no-such", 40, 8, 5, 100, xrand.New(11)); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// Too few components to cover a deep topology must error, not panic.
	if _, err := SyntheticMatrixInput("microservice-chain", 2, 4, 5, 100, xrand.New(11)); err == nil {
		t.Fatal("2 components across 8 stages accepted")
	}
}
