package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/pcs"
)

// policyGridConfig is the small-but-hot grid the policy tests share: the
// deployment is tiny, so the closed loop only engages when the arrival
// rate carries real per-instance load (see the pcs policy tests for the
// same sizing argument).
func policyGridConfig() PolicyGridConfig {
	return PolicyGridConfig{
		Seed:             7,
		Scenario:         "autoscale-burst",
		Policies:         []string{"none", "threshold-autoscale"},
		Techniques:       []pcs.Technique{pcs.Basic},
		Rate:             400,
		Requests:         6000,
		Nodes:            8,
		SearchComponents: 12,
	}
}

// TestPolicyGridAutoscaleBeatsOpenLoop is the PR's acceptance criterion:
// in the experiment driver's output, autoscale-burst under the threshold
// autoscaler shows lower p99 component latency than the same scenario run
// open-loop — closing the loop must actually buy the latency it promises.
// The comparison runs at the scenario's designed scale (30 nodes, the
// default λ): elasticity pays when the cluster has headroom to absorb the
// burst; on a saturated toy deployment, scale-up just adds interference.
func TestPolicyGridAutoscaleBeatsOpenLoop(t *testing.T) {
	cfg := PolicyGridConfig{
		Seed:       7,
		Scenario:   "autoscale-burst",
		Policies:   []string{"none", "threshold-autoscale"},
		Techniques: []pcs.Technique{pcs.Basic},
		Requests:   6000,
	}
	res, err := RunPolicyGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	open := res.Cell("Basic", "none")
	closed := res.Cell("Basic", "threshold-autoscale")
	if open == nil || closed == nil {
		t.Fatalf("grid missing cells: %+v", res.Cells)
	}
	if open.Result.PolicyActions != 0 {
		t.Fatalf("open-loop cell applied %d actions", open.Result.PolicyActions)
	}
	if closed.Result.PolicyActions == 0 {
		t.Fatal("autoscaler cell never acted — the comparison is vacuous")
	}
	if closed.Result.P99ComponentMs >= open.Result.P99ComponentMs {
		t.Fatalf("threshold autoscaler did not beat open-loop p99: %.3f ≥ %.3f ms",
			closed.Result.P99ComponentMs, open.Result.P99ComponentMs)
	}
	// The paired design: both cells faced the identical world, so the
	// delta is attributable to the policy alone.
	if open.Result.Arrivals != closed.Result.Arrivals {
		t.Fatalf("cells saw different workloads: %d vs %d arrivals (seeds must pair)",
			open.Result.Arrivals, closed.Result.Arrivals)
	}

	var table strings.Builder
	res.WriteTable(&table, cfg)
	out := table.String()
	for _, want := range []string{"threshold-autoscale", "none", "Δp99", "autoscale-burst"} {
		if !strings.Contains(out, want) {
			t.Errorf("grid table missing %q:\n%s", want, out)
		}
	}
}

// TestPolicyGridDeterministicAcrossWorkersAndShards pins invariant #8 at
// the driver level: the grid computes identical cells at any worker and
// shard count, and its NDJSON stream is byte-identical.
func TestPolicyGridDeterministicAcrossWorkersAndShards(t *testing.T) {
	if testing.Short() {
		t.Skip("policy grid is expensive")
	}
	run := func(workers, shards int) (PolicyGridResult, []byte) {
		cfg := policyGridConfig()
		cfg.Workers = workers
		cfg.Shards = shards
		var buf bytes.Buffer
		cfg.Stream = &buf
		res, err := RunPolicyGrid(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	baseRes, baseStream := run(1, 1)
	for _, v := range []struct{ workers, shards int }{{8, 1}, {2, 2}} {
		res, stream := run(v.workers, v.shards)
		for i := range baseRes.Cells {
			a, b := baseRes.Cells[i], res.Cells[i]
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("workers=%d shards=%d: cell %d diverged\n%+v\nvs\n%+v",
					v.workers, v.shards, i, a, b)
			}
		}
		if !bytes.Equal(stream, baseStream) {
			t.Fatalf("workers=%d shards=%d: NDJSON stream diverged", v.workers, v.shards)
		}
	}
	// Every stream line re-runs to exactly its recorded result.
	dec := json.NewDecoder(bytes.NewReader(baseStream))
	lines := 0
	for dec.More() {
		var rec PolicyStreamedRun
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		lines++
		if rec.Rep != 0 || rec.Technique != "Basic" {
			t.Fatalf("unexpected stream record %+v", rec)
		}
	}
	if lines != len(baseRes.Cells) {
		t.Fatalf("stream has %d lines for %d cells", lines, len(baseRes.Cells))
	}
}

// TestPolicyGridReplicatedCellsCarryCIs checks the replication fold: with
// 3 replications per cell the headline metrics gain confidence intervals
// and the actuation count becomes a mean.
func TestPolicyGridReplicatedCellsCarryCIs(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated policy grid is expensive")
	}
	cfg := policyGridConfig()
	cfg.Requests = 3000
	cfg.Replications = 3
	res, err := RunPolicyGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Cells {
		if cell.AvgOverallCI95Ms <= 0 || cell.P99ComponentCI95Ms <= 0 {
			t.Fatalf("cell %s/%s has no confidence interval despite 3 replications: %+v",
				cell.Technique, cell.Policy, cell)
		}
	}
	closed := res.Cell("Basic", "threshold-autoscale")
	if closed == nil || closed.Result.PolicyActions == 0 {
		t.Fatal("replicated autoscaler cells never acted")
	}
}

// TestFig6PolicyOption checks the Fig. 6 sweep's -policy plumbing: a
// policy-carrying sweep runs every cell closed-loop.
func TestFig6PolicyOption(t *testing.T) {
	cfg := Fig6Config{
		Seed:             9,
		Scenario:         "brownout-overload",
		Policy:           "brownout",
		Rates:            []float64{400},
		Techniques:       []pcs.Technique{pcs.Basic},
		Requests:         4000,
		Nodes:            8,
		SearchComponents: 12,
	}
	res, err := RunFig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cell("Basic", 400)
	if cell == nil {
		t.Fatal("missing cell")
	}
	if cell.Result.Policy != "brownout" {
		t.Fatalf("cell policy = %q, want brownout", cell.Result.Policy)
	}
	if cell.Result.PolicyActions == 0 {
		t.Fatal("brownout never acted in the sweep cell")
	}
}
