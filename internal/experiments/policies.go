package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/runner"
	"repro/internal/shard"
	"repro/internal/xrand"
	"repro/pcs"
)

// PolicyGridConfig parameterises the closed-loop policy comparison: a
// policy × technique grid on one scenario at one arrival rate, with
// "none" as the open-loop baseline column. It is the experiment the
// closed-loop layer exists for — does closing the loop beat the same
// deployment left open-loop?
type PolicyGridConfig struct {
	// Seed is the grid's root seed; every cell derives its own from its
	// coordinates, so adding policies or techniques never perturbs other
	// cells.
	Seed int64
	// Scenario names the deployment (empty = "autoscale-burst", the
	// burst-elasticity scenario built for this comparison).
	Scenario string
	// Policies are the closed-loop policies to compare; "none" is the
	// open-loop baseline. Nil selects "none" plus every registered policy.
	Policies []string
	// Traffic, when non-nil, runs every cell under this arrival process
	// instead of the scenario's scripted traffic or the scalar Poisson
	// stream (pcs.Options.Traffic).
	Traffic *pcs.TrafficSpec
	// Graph and GraphFile deploy a custom service DAG in every cell
	// instead of a registered scenario (pcs.RunSpec semantics: at most one
	// of Scenario, Graph and GraphFile may be set).
	Graph     *pcs.GraphSpec
	GraphFile string
	// Techniques to run each policy under; nil means Basic and PCS (the
	// two wirings: no control loop vs the paper's scheduler, each with
	// and without the closed loop on top).
	Techniques []pcs.Technique
	// Rate is the base arrival rate λ in requests/second (0 selects 100);
	// scenario steering scripts its bursts relative to it.
	Rate float64
	// Requests per run (0 selects 20000).
	Requests int
	// Nodes and SearchComponents size the deployment; 0 selects the
	// scenario's defaults.
	Nodes, SearchComponents int
	// Replications per cell (default 1); with more, cells report
	// across-replication means and the headline metrics carry CI95s.
	Replications int
	// Workers bounds the worker pool the cells × replications fan out on;
	// 0 selects GOMAXPROCS (divided by Shards when sharding is on).
	Workers int
	// Shards is the per-run intra-simulation shard count; results are
	// bit-identical at any value.
	Shards int
	// Lanes is the per-run parallel data-plane lane count
	// (pcs.Options.Lanes); 0 keeps the sequential engine. Laned runs are
	// byte-identical at any lane count ≥ 1 but are a different physical
	// model from Lanes == 0, so a grid must not mix the two.
	Lanes int
	// Stream, when non-nil, receives every run as one NDJSON line
	// (PolicyStreamedRun) in deterministic (cell, replication) order.
	Stream io.Writer
}

// PolicyStreamedRun is one NDJSON line of a streamed policy grid: the cell
// coordinates, the replication index, the derived seed that reproduces the
// run, and its Result.
type PolicyStreamedRun struct {
	Technique string     `json:"technique"`
	Policy    string     `json:"policy"`
	Rep       int        `json:"rep"`
	Seed      int64      `json:"seed"`
	Result    pcs.Result `json:"result"`
}

func (c PolicyGridConfig) withDefaults() PolicyGridConfig {
	if c.Scenario == "" && c.Graph == nil && c.GraphFile == "" {
		c.Scenario = "autoscale-burst"
	}
	if len(c.Policies) == 0 {
		c.Policies = append([]string{"none"}, pcs.Policies()...)
	}
	if len(c.Techniques) == 0 {
		c.Techniques = []pcs.Technique{pcs.Basic, pcs.PCS}
	}
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.Replications <= 0 {
		c.Replications = 1
	}
	return c
}

// PolicyCell is one (technique, policy) measurement. With Replications > 1
// the Result's latency metrics are across-replication means and the CI
// fields carry the 95% confidence half-widths of the headline metrics;
// PolicyActions is the mean actuation count.
type PolicyCell struct {
	Technique string
	Policy    string
	Result    pcs.Result
	// AvgOverallCI95Ms and P99ComponentCI95Ms are zero for a single
	// replication.
	AvgOverallCI95Ms   float64
	P99ComponentCI95Ms float64
}

// PolicyGridResult holds the grid plus per-technique headline deltas of
// every policy against the open-loop baseline.
type PolicyGridResult struct {
	Cells []PolicyCell
}

// Cell returns the measurement for a technique under a policy, or nil.
// The open-loop baseline is policy "none".
func (r PolicyGridResult) Cell(technique, policyName string) *PolicyCell {
	for i := range r.Cells {
		if r.Cells[i].Technique == technique && r.Cells[i].Policy == policyName {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunPolicyGrid executes the policy × technique grid on the replication
// runner. Every job's seed is a pure function of its (cell, replication)
// coordinates and each run builds a fresh policy instance, so the grid is
// deterministic for any worker or shard count — closed-loop runs included
// (determinism invariant #8).
func RunPolicyGrid(cfg PolicyGridConfig) (PolicyGridResult, error) {
	c := cfg.withDefaults()

	type cellSpec struct {
		tech   pcs.Technique
		policy string
		opts   pcs.Options
	}
	// A cell's seed depends on its technique's identity but NOT its
	// policy: the whole point of the grid is a paired comparison, so a
	// policy-on run must face exactly the arrival stream and batch
	// interference its open-loop baseline faced — the policy is the only
	// difference between the rows of one technique. Deriving from the
	// technique value (not its slice position) keeps a cell's numbers
	// stable when techniques are added or reordered.
	var specs []cellSpec
	for _, tech := range c.Techniques {
		for _, pol := range c.Policies {
			cell := pcs.RunSpec{
				Technique:        tech.String(),
				Scenario:         c.Scenario,
				Policy:           pol,
				Traffic:          c.Traffic,
				Graph:            c.Graph,
				GraphFile:        c.GraphFile,
				Seed:             c.Seed ^ int64(tech)<<16,
				Nodes:            c.Nodes,
				SearchComponents: c.SearchComponents,
				Rate:             c.Rate,
				Requests:         c.Requests,
				Shards:           c.Shards,
				Lanes:            c.Lanes,
			}
			o, err := cell.Options()
			if err != nil {
				return PolicyGridResult{}, fmt.Errorf("experiments: policy grid %s/%s: %w", tech, pol, err)
			}
			specs = append(specs, cellSpec{tech, pol, o})
		}
	}

	reps := c.Replications
	jobs := len(specs) * reps
	var enc *json.Encoder
	if c.Stream != nil {
		enc = json.NewEncoder(c.Stream)
	}
	workers := shard.ReplicationWorkers(c.Workers, c.Shards)
	results := make([]pcs.Result, jobs)
	err := runner.Stream(c.Seed, jobs, runner.Options{Workers: workers},
		func(idx int, _ int64) (pcs.Result, error) {
			spec := specs[idx/reps]
			o := spec.opts
			o.Seed = xrand.StreamSeed(o.Seed, idx%reps)
			res, runErr := pcs.Run(o)
			if runErr != nil {
				return pcs.Result{}, fmt.Errorf("experiments: policy grid %s/%s: %w",
					spec.tech, spec.policy, runErr)
			}
			return res, nil
		},
		func(idx int, res pcs.Result) error {
			results[idx] = res
			if enc == nil {
				return nil
			}
			spec := specs[idx/reps]
			rec := PolicyStreamedRun{
				Technique: spec.tech.String(),
				Policy:    spec.policy,
				Rep:       idx % reps,
				Seed:      xrand.StreamSeed(spec.opts.Seed, idx%reps),
				Result:    res,
			}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("experiments: streaming policy run %d: %w", idx, err)
			}
			return nil
		})
	if err != nil {
		return PolicyGridResult{}, err
	}

	var out PolicyGridResult
	for i, spec := range specs {
		out.Cells = append(out.Cells, mergePolicyCell(spec.tech.String(), spec.policy,
			results[i*reps:(i+1)*reps]))
	}
	return out, nil
}

// mergePolicyCell folds a cell's replications through foldResults (shared
// with the Fig. 6 sweep): every latency metric and count in the merged
// Result becomes an across-replication mean (counts rounded to nearest),
// with CI95s on the headline pair — so each number a reader sees in a
// replicated cell is a cell-level statistic, never one replication's raw
// sample.
func mergePolicyCell(technique, policyName string, runs []pcs.Result) PolicyCell {
	if len(runs) == 1 {
		return PolicyCell{Technique: technique, Policy: policyName, Result: runs[0]}
	}
	merged, avgCI, p99CI := foldResults(runs)
	return PolicyCell{Technique: technique, Policy: policyName, Result: merged,
		AvgOverallCI95Ms: avgCI, P99ComponentCI95Ms: p99CI}
}

// WriteTable renders the grid: one row per (technique, policy) cell with
// the headline latency metrics, the actuation count, and the deltas
// against the technique's open-loop ("none") baseline — negative deltas
// mean the closed loop improved the metric.
func (r PolicyGridResult) WriteTable(w io.Writer, cfg PolicyGridConfig) {
	c := cfg.withDefaults()
	fmt.Fprintf(w, "closed-loop policy grid · scenario %s · λ=%.0f req/s · %d replication(s)\n\n",
		c.Scenario, c.Rate, c.Replications)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "technique\tpolicy\tavg overall ms\tp99 comp ms\tactions\tΔavg vs open-loop\tΔp99 vs open-loop")
	for _, tech := range c.Techniques {
		base := r.Cell(tech.String(), "none")
		for _, pol := range c.Policies {
			cell := r.Cell(tech.String(), pol)
			if cell == nil {
				continue
			}
			fmt.Fprintf(tw, "%s\t%s", tech, pol)
			if cell.AvgOverallCI95Ms > 0 {
				fmt.Fprintf(tw, "\t%.3f±%.3f\t%.3f±%.3f", cell.Result.AvgOverallMs,
					cell.AvgOverallCI95Ms, cell.Result.P99ComponentMs, cell.P99ComponentCI95Ms)
			} else {
				fmt.Fprintf(tw, "\t%.3f\t%.3f", cell.Result.AvgOverallMs, cell.Result.P99ComponentMs)
			}
			fmt.Fprintf(tw, "\t%d", cell.Result.PolicyActions)
			if base != nil && pol != "none" && base.Result.AvgOverallMs > 0 && base.Result.P99ComponentMs > 0 {
				fmt.Fprintf(tw, "\t%+.1f%%\t%+.1f%%",
					100*(cell.Result.AvgOverallMs/base.Result.AvgOverallMs-1),
					100*(cell.Result.P99ComponentMs/base.Result.P99ComponentMs-1))
			} else {
				fmt.Fprint(tw, "\t-\t-")
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}
