package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/profiling"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/scheduler"
	"repro/internal/service"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Fig7Config parameterises the scheduling-scalability measurement (§VI-D /
// Fig. 7): wall-clock time to build the performance matrix ("analysis")
// and run the greedy search, for growing numbers of components and nodes.
type Fig7Config struct {
	Seed int64
	// Scenario names the deployment whose topology shapes the synthetic
	// components (stage mix and demand vectors); empty selects
	// nutch-search, the paper's own.
	Scenario string
	// Points are the (m, k) sizes to measure; nil selects the paper's
	// ladder up to m=640 components on k=128 nodes.
	Points []Fig7Point
	// Window is the monitor window length per node.
	Window int
	// Lambda is the assumed arrival rate.
	Lambda float64
	// Epsilon is the migration threshold in seconds.
	Epsilon float64
	// Repeats averages the timing over this many runs (default 3).
	Repeats int
	// Workers bounds the pool that builds the synthetic matrix inputs in
	// parallel (0 selects GOMAXPROCS). Construction dominates the wall
	// clock of the experiment and is deterministic per (point, repeat);
	// the timed BuildAndSchedule calls always run serially so the
	// measured analysis/search times stay uncontended.
	Workers int
}

// Fig7Point is one measurement: sizes in, times out.
type Fig7Point struct {
	M, K int
	// AnalysisMs is the matrix-construction time, SearchMs the greedy
	// search (both averaged over Repeats), TotalMs their sum.
	AnalysisMs, SearchMs, TotalMs float64
	Migrations                    int
}

func (c Fig7Config) withDefaults() Fig7Config {
	if len(c.Points) == 0 {
		c.Points = []Fig7Point{
			{M: 40, K: 8}, {M: 80, K: 16}, {M: 160, K: 32},
			{M: 320, K: 64}, {M: 640, K: 128},
		}
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.Lambda <= 0 {
		c.Lambda = 100
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.005
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

// SyntheticMatrixInput builds a randomised but deterministic MatrixInput of
// the given size from the named scenario's topology: m components spread
// across the topology's stages in proportion to their real widths (the
// dominant stage absorbs the remainder — 92 %+ searching-like for the
// Nutch shape), k nodes with random batch mixes in their sample windows,
// and a model trained from a short profiling pass. An empty scenario name
// selects the default.
func SyntheticMatrixInput(scenarioName string, m, k, window int, lambda float64, src *xrand.Source) (predictor.MatrixInput, error) {
	capacity := cluster.DefaultCapacity()
	law := service.DefaultLaw(capacity)
	sc, err := scenario.Get(scenarioName)
	if err != nil {
		return predictor.MatrixInput{}, err
	}
	topo := sc.Topology(0)

	// One model per stage from a compact profiling pass.
	backgrounds := workload.TrainingMixes(src.Fork(), 60, 3, 1, 8192)
	models := make([]*predictor.ServiceTimeModel, len(topo.Stages))
	for i, spec := range topo.Stages {
		samples := profiling.ProfileBackgrounds(law, spec.BaseServiceTime, backgrounds,
			profiling.Config{Probes: 100}, src.Fork())
		model, err := predictor.Train(samples, 2)
		if err != nil {
			panic(fmt.Sprintf("experiments: synthetic model training failed: %v", err))
		}
		models[i] = model
	}

	// Stage membership scales the topology's real stage widths to m
	// components, at least one per stage, with the dominant stage
	// absorbing the rounding remainder.
	widths := make([]int, len(topo.Stages))
	total := 0
	for si, spec := range topo.Stages {
		widths[si] = spec.Components
		total += spec.Components
	}
	perStage := make([]int, len(widths))
	assigned := 0
	for si, w := range widths {
		n := m * w / total
		if n < 1 {
			n = 1
		}
		perStage[si] = n
		assigned += n
	}
	perStage[sc.DominantStage] += m - assigned
	if perStage[sc.DominantStage] < 1 {
		return predictor.MatrixInput{}, fmt.Errorf(
			"experiments: %d components cannot cover the %d stages of scenario %q",
			m, len(topo.Stages), sc.Name)
	}
	comps := make([]predictor.ComponentState, 0, m)
	for si := range topo.Stages {
		for i := 0; i < perStage[si]; i++ {
			comps = append(comps, predictor.ComponentState{
				Stage:  si,
				Node:   src.Intn(k),
				Demand: topo.Stages[si].Demand,
			})
		}
	}

	// Per-node windows: a random batch mix drifting over the window.
	nodeSamples := make([][]cluster.Vector, k)
	for n := 0; n < k; n++ {
		base := workload.TrainingMixes(src.Fork(), 1, 3, 1, 8192)[0]
		win := make([]cluster.Vector, window)
		for w := range win {
			v := base
			for r := 0; r < cluster.NumResources; r++ {
				v[r] *= src.LogNormalMean(1, 0.05)
			}
			win[w] = v
		}
		nodeSamples[n] = win
	}
	// Components contribute their demand to their node's samples, as a
	// real monitor would observe.
	for _, cstate := range comps {
		for w := range nodeSamples[cstate.Node] {
			nodeSamples[cstate.Node][w] = nodeSamples[cstate.Node][w].Add(cstate.Demand)
		}
	}

	return predictor.MatrixInput{
		Components:  comps,
		NumStages:   len(topo.Stages),
		NumNodes:    k,
		NodeSamples: nodeSamples,
		Lambda:      lambda,
		Models:      models,
		Queue:       predictor.MG1,
		Params:      predictor.DefaultLatencyParams(),
	}, nil
}

// RunFig7 measures analysis and search times across the configured sizes.
// The synthetic inputs for every (point, repeat) pair are built in parallel
// on the replication runner — each from a seed that is a pure function of
// its coordinates — and then timed one at a time.
func RunFig7(cfg Fig7Config) ([]Fig7Point, error) {
	c := cfg.withDefaults()

	jobs := len(c.Points) * c.Repeats
	inputs, err := runner.Run(c.Seed^0xf167, jobs, runner.Options{Workers: c.Workers},
		func(idx int, seed int64) (predictor.MatrixInput, error) {
			p := c.Points[idx/c.Repeats]
			return SyntheticMatrixInput(c.Scenario, p.M, p.K, c.Window, c.Lambda, xrand.New(seed))
		})
	if err != nil {
		return nil, err
	}

	out := make([]Fig7Point, 0, len(c.Points))
	for i, p := range c.Points {
		var analysisMs, searchMs float64
		migrations := 0
		for rep := 0; rep < c.Repeats; rep++ {
			res, _, err := scheduler.BuildAndSchedule(inputs[i*c.Repeats+rep], scheduler.Config{Epsilon: c.Epsilon})
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 m=%d k=%d: %w", p.M, p.K, err)
			}
			analysisMs += float64(res.AnalysisTime.Microseconds()) / 1000
			searchMs += float64(res.SearchTime.Microseconds()) / 1000
			migrations += len(res.Decisions)
		}
		n := float64(c.Repeats)
		pt := Fig7Point{
			M: p.M, K: p.K,
			AnalysisMs: analysisMs / n,
			SearchMs:   searchMs / n,
			Migrations: migrations / c.Repeats,
		}
		pt.TotalMs = pt.AnalysisMs + pt.SearchMs
		out = append(out, pt)
	}
	return out, nil
}

// WriteFig7Table renders the scalability ladder; the paper's reference
// point is 551 ms total at m=640, k=128.
func WriteFig7Table(w io.Writer, points []Fig7Point) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "components(m)\tnodes(k)\tanalysis(ms)\tsearch(ms)\ttotal(ms)\tmigrations")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\t%.2f\t%d\n",
			p.M, p.K, p.AnalysisMs, p.SearchMs, p.TotalMs, p.Migrations)
	}
	tw.Flush()
	fmt.Fprintln(w, "\npaper reference: 551 ms total at m=640, k=128 (scheduling interval 600 s)")
}
