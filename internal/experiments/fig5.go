// Package experiments contains the drivers that regenerate every figure of
// the paper's evaluation (§VI): Fig. 5 (prediction accuracy), Fig. 6
// (service performance under six techniques and six arrival rates) and
// Fig. 7 (scheduling scalability). The cmd/ tools and the benchmark
// harness are thin wrappers around these drivers; EXPERIMENTS.md records
// their outputs against the paper's numbers.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/profiling"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Fig5Config parameterises the prediction-accuracy experiment (§VI-B): one
// searching component co-located with a single batch job of a given kind
// and input size; the model is trained on historical profiling runs and
// must predict the component's service time for each co-location.
type Fig5Config struct {
	Seed int64
	// Scenario selects whose dominant-stage component is profiled (empty =
	// nutch-search, whose searching stage the paper profiles).
	Scenario string
	// HadoopSizes is the number of Hadoop input sizes (paper: 20, from
	// 50 MB to 4 GB).
	HadoopSizes int
	// SparkSizes is the number of Spark input sizes (paper: 10, from
	// 200 MB to 7 GB).
	SparkSizes int
	// Probes is the number of probe requests averaged per measurement.
	Probes int
	// TrainRepeats is the number of historical samples per co-location
	// configuration used for training.
	TrainRepeats int
	// MonitorNoiseSigma is the monitor's relative measurement noise.
	MonitorNoiseSigma float64
	// Degree is the regression degree (default 2).
	Degree int
}

func (c Fig5Config) withDefaults() Fig5Config {
	if c.HadoopSizes <= 0 {
		c.HadoopSizes = 20
	}
	if c.SparkSizes <= 0 {
		c.SparkSizes = 10
	}
	if c.Probes <= 0 {
		c.Probes = 100
	}
	if c.TrainRepeats <= 0 {
		c.TrainRepeats = 2
	}
	if c.MonitorNoiseSigma <= 0 {
		c.MonitorNoiseSigma = 0.12
	}
	if c.Degree <= 0 {
		c.Degree = 2
	}
	return c
}

// Fig5Case is one evaluation case: one batch workload at one input size.
type Fig5Case struct {
	Kind        workload.JobKind
	InputMB     float64
	MeasuredMs  float64
	PredictedMs float64
	ErrPct      float64
}

// Fig5Result aggregates the experiment.
type Fig5Result struct {
	Cases []Fig5Case
	// MeanErrPct is the average prediction error (paper: 2.68 %).
	MeanErrPct float64
	// FracBelow3/5/8 are the fractions of cases with error below 3 %, 5 %
	// and 8 % (paper: 63.33 %, 82.22 %, 96.67 %).
	FracBelow3, FracBelow5, FracBelow8 float64
	// PerResourceWeight reports the trained relevance weights w_sr of the
	// searching component's model, for inspection.
	PerResourceWeight [cluster.NumResources]float64
}

// RunFig5 executes the prediction-accuracy experiment.
func RunFig5(cfg Fig5Config) (Fig5Result, error) {
	c := cfg.withDefaults()
	sc, err := scenario.Get(c.Scenario)
	if err != nil {
		return Fig5Result{}, err
	}
	src := xrand.New(c.Seed ^ 0xf165)
	capacity := cluster.DefaultCapacity()
	law := service.DefaultLaw(capacity)
	// The profiled component: the paper profiles a searching component;
	// other scenarios profile their own dominant stage.
	searchSpec := sc.Topology(0).Stages[sc.DominantStage]

	hadoopKinds := []workload.JobKind{workload.HadoopBayes, workload.HadoopWordCount, workload.HadoopPageIndex}
	sparkKinds := []workload.JobKind{workload.SparkBayes, workload.SparkWordCount, workload.SparkSort}
	hadoopSizes := workload.LinearSizes(c.HadoopSizes, 50, 4096)
	sparkSizes := workload.LinearSizes(c.SparkSizes, 200, 7168)

	type testCase struct {
		kind workload.JobKind
		size float64
	}
	var cases []testCase
	for _, k := range hadoopKinds {
		for _, s := range hadoopSizes {
			cases = append(cases, testCase{k, s})
		}
	}
	for _, k := range sparkKinds {
		for _, s := range sparkSizes {
			cases = append(cases, testCase{k, s})
		}
	}

	// Training: one model per batch-workload kind, from historical
	// profiling runs of that kind across its input-size sweep (the paper
	// trains "based on the historical running information" of each tested
	// co-location), with per-run demand jitter so train and test
	// observations differ.
	trainSrc := src.Fork()
	models := make(map[workload.JobKind]*predictor.ServiceTimeModel)
	sizesFor := func(k workload.JobKind) []float64 {
		if k.IsHadoop() {
			return hadoopSizes
		}
		return sparkSizes
	}
	for _, k := range append(append([]workload.JobKind(nil), hadoopKinds...), sparkKinds...) {
		var backgrounds []cluster.Vector
		for _, size := range sizesFor(k) {
			for r := 0; r < c.TrainRepeats; r++ {
				jitter := trainSrc.LogNormalMean(1, 0.12)
				backgrounds = append(backgrounds, workload.Demand(k, size).Scale(jitter))
			}
		}
		samples := profiling.ProfileBackgrounds(law, searchSpec.BaseServiceTime, backgrounds, profiling.Config{
			Probes:            c.Probes,
			MonitorNoiseSigma: c.MonitorNoiseSigma,
			Degree:            c.Degree,
		}, trainSrc)
		m, err := predictor.Train(samples, c.Degree)
		if err != nil {
			return Fig5Result{}, fmt.Errorf("experiments: training fig5 model for %s: %w", k, err)
		}
		models[k] = m
	}

	// Test: measure each co-location fresh and compare to the model's
	// prediction from the (noisily) monitored contention vector.
	testSrc := src.Fork()
	res := Fig5Result{PerResourceWeight: models[workload.HadoopWordCount].Weights}
	var errSum float64
	var below3, below5, below8 int
	for _, tc := range cases {
		bg := workload.Demand(tc.kind, tc.size)
		measured := profiling.MeasureServiceTime(law, searchSpec.BaseServiceTime, bg, c.Probes, testSrc)
		u := bg.Clamp(law.Capacity)
		for r := 0; r < cluster.NumResources; r++ {
			u[r] *= testSrc.LogNormalMean(1, c.MonitorNoiseSigma)
		}
		predicted := models[tc.kind].Predict(u)
		errPct := 100 * abs(predicted-measured) / measured
		res.Cases = append(res.Cases, Fig5Case{
			Kind:        tc.kind,
			InputMB:     tc.size,
			MeasuredMs:  measured * 1000,
			PredictedMs: predicted * 1000,
			ErrPct:      errPct,
		})
		errSum += errPct
		if errPct < 3 {
			below3++
		}
		if errPct < 5 {
			below5++
		}
		if errPct < 8 {
			below8++
		}
	}
	n := float64(len(res.Cases))
	res.MeanErrPct = errSum / n
	res.FracBelow3 = float64(below3) / n
	res.FracBelow5 = float64(below5) / n
	res.FracBelow8 = float64(below8) / n
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Fig5Aggregate summarises RunFig5Many: the headline accuracy numbers
// averaged over independent replications, with a confidence interval on the
// mean error.
type Fig5Aggregate struct {
	Replications int
	// MeanErrPct is the across-replication mean of the average prediction
	// error; MeanErrCI95 its 95 % confidence half-width.
	MeanErrPct, MeanErrCI95 float64
	// FracBelow3/5/8 are across-replication means of the error bands.
	FracBelow3, FracBelow5, FracBelow8 float64
	// Results holds the per-replication results in replication order;
	// Results[0] ran with cfg.Seed itself.
	Results []Fig5Result
}

// RunFig5Many executes n independent replications of the prediction-
// accuracy experiment in parallel (workers <= 0 selects GOMAXPROCS) and
// averages the headline numbers. Replication i runs with the seed stream
// xrand.StreamSeed(cfg.Seed, i), so the aggregate is identical for any
// worker count.
func RunFig5Many(cfg Fig5Config, n, workers int) (Fig5Aggregate, error) {
	results, err := runner.Run(cfg.Seed, n, runner.Options{Workers: workers},
		func(rep int, seed int64) (Fig5Result, error) {
			c := cfg
			c.Seed = seed
			return RunFig5(c)
		})
	if err != nil {
		return Fig5Aggregate{}, err
	}
	agg := Fig5Aggregate{Replications: n, Results: results}
	var errW, b3, b5, b8 stats.Welford
	for _, r := range results {
		errW.Add(r.MeanErrPct)
		b3.Add(r.FracBelow3)
		b5.Add(r.FracBelow5)
		b8.Add(r.FracBelow8)
	}
	agg.MeanErrPct = errW.Mean()
	agg.MeanErrCI95 = errW.MeanCI95()
	agg.FracBelow3 = b3.Mean()
	agg.FracBelow5 = b5.Mean()
	agg.FracBelow8 = b8.Mean()
	return agg, nil
}

// WriteTable renders the per-case errors and the summary bands in the
// layout of the paper's Fig. 5 discussion.
func (r Fig5Result) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tinput(MB)\tmeasured(ms)\tpredicted(ms)\terror(%)")
	cases := append([]Fig5Case(nil), r.Cases...)
	sort.SliceStable(cases, func(i, j int) bool {
		if cases[i].Kind != cases[j].Kind {
			return cases[i].Kind < cases[j].Kind
		}
		return cases[i].InputMB < cases[j].InputMB
	})
	for _, c := range cases {
		fmt.Fprintf(tw, "%s\t%.0f\t%.4f\t%.4f\t%.2f\n",
			c.Kind, c.InputMB, c.MeasuredMs, c.PredictedMs, c.ErrPct)
	}
	tw.Flush()
	fmt.Fprintf(w, "\ncases: %d\n", len(r.Cases))
	fmt.Fprintf(w, "error < 3%%: %.2f%% of cases (paper: 63.33%%)\n", 100*r.FracBelow3)
	fmt.Fprintf(w, "error < 5%%: %.2f%% of cases (paper: 82.22%%)\n", 100*r.FracBelow5)
	fmt.Fprintf(w, "error < 8%%: %.2f%% of cases (paper: 96.67%%)\n", 100*r.FracBelow8)
	fmt.Fprintf(w, "average error: %.2f%% (paper: 2.68%%)\n", r.MeanErrPct)
}
