package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/runner"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/xrand"
	"repro/pcs"
)

// Fig6Config parameterises the service-performance comparison (§VI-C /
// Fig. 6): all six techniques across the paper's six arrival rates.
type Fig6Config struct {
	Seed int64
	// Scenario names the deployment to sweep (empty = nutch-search, the
	// paper's own; see the scenario registry for alternatives).
	Scenario string
	// Rates are the arrival rates λ in requests/second (paper: 10, 20, 50,
	// 100, 200, 500).
	Rates []float64
	// Techniques to compare; nil means all six.
	Techniques []pcs.Technique
	// Policy, when set, runs every cell under the named closed-loop policy
	// ("none" forces the scenario's scripted policy off; empty keeps it).
	Policy string
	// Traffic, when non-nil, runs every cell under this arrival process
	// instead of the scenario's scripted traffic or the scalar Poisson
	// stream (pcs.Options.Traffic); each rate still sets the nominal
	// intensity the source is scaled to.
	Traffic *pcs.TrafficSpec
	// Graph and GraphFile deploy a custom service DAG in every cell
	// instead of a registered scenario (pcs.RunSpec semantics: at most one
	// of Scenario, Graph and GraphFile may be set).
	Graph     *pcs.GraphSpec
	GraphFile string
	// Requests per run; the run's virtual duration is Requests/λ.
	Requests int
	// Nodes and SearchComponents size the deployment; 0 selects the
	// scenario's defaults (paper: 30 nodes, 100 searching components for
	// nutch-search).
	Nodes, SearchComponents int
	// Replications is the number of independent replications per
	// (technique, rate) cell; each cell then reports across-replication
	// means with confidence intervals (default 1, the single-run sweep).
	Replications int
	// Workers bounds the worker pool that the cells × replications jobs
	// fan out on; 0 selects GOMAXPROCS (divided by Shards when intra-run
	// sharding is on, so shards × concurrent runs stays at machine width).
	Workers int
	// Shards is the per-run intra-simulation shard count
	// (pcs.Options.Shards); results are bit-identical at any value.
	Shards int
	// Lanes is the per-run parallel data-plane lane count
	// (pcs.Options.Lanes); 0 keeps the sequential engine. Laned runs are
	// byte-identical at any lane count ≥ 1 but are a different physical
	// model from Lanes == 0 (network-transit delays), so a sweep must not
	// mix the two.
	Lanes int
	// Stream, when non-nil, receives every run of the sweep as one NDJSON
	// line (Fig6StreamedRun) in deterministic (cell, replication) order,
	// so huge sweeps leave a per-run record on disk alongside the
	// aggregated tables. Streaming never changes the computed cells.
	Stream io.Writer
}

// Fig6StreamedRun is one NDJSON line of a streamed sweep: the cell
// coordinates, the replication index within the cell, the derived seed that
// reproduces the run, and its Result.
type Fig6StreamedRun struct {
	Technique string     `json:"technique"`
	Rate      float64    `json:"rate"`
	Rep       int        `json:"rep"`
	Seed      int64      `json:"seed"`
	Result    pcs.Result `json:"result"`
}

func (c Fig6Config) withDefaults() Fig6Config {
	if len(c.Rates) == 0 {
		c.Rates = []float64{10, 20, 50, 100, 200, 500}
	}
	if len(c.Techniques) == 0 {
		c.Techniques = pcs.Techniques()
	}
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.Replications <= 0 {
		c.Replications = 1
	}
	return c
}

// Fig6Cell is one (technique, rate) measurement. With Replications > 1 the
// Result's latency metrics are across-replication means and the CI fields
// carry the 95 % confidence half-widths of the two headline metrics.
type Fig6Cell struct {
	Technique string
	Rate      float64
	Result    pcs.Result
	// AvgOverallCI95Ms / P99ComponentCI95Ms are zero for a single
	// replication.
	AvgOverallCI95Ms   float64
	P99ComponentCI95Ms float64
}

// Fig6Result holds the full sweep plus the paper's headline aggregates.
type Fig6Result struct {
	Cells []Fig6Cell
	// P99ReductionPct is PCS's average reduction in 99th-percentile
	// component latency versus the four redundancy/reissue techniques
	// across all rates (paper: 67.05 %).
	P99ReductionPct float64
	// OverallReductionPct is the same for average overall latency
	// (paper: 64.16 %).
	OverallReductionPct float64
}

// Cell returns the measurement for a technique at a rate, or nil.
func (r Fig6Result) Cell(technique string, rate float64) *Fig6Cell {
	for i := range r.Cells {
		if r.Cells[i].Technique == technique && r.Cells[i].Rate == rate {
			return &r.Cells[i]
		}
	}
	return nil
}

// sweepSpec assembles the canonical pcs.SweepSpec the config means: the
// cell template plus the technique and rate axes. SweepSpec.Cells owns the
// seed derivation and the ≥90-virtual-second requests floor, so the
// daemon's POST /v1/sweeps and this driver can never expand the same grid
// into different runs.
func (c Fig6Config) sweepSpec() pcs.SweepSpec {
	techniques := make([]string, len(c.Techniques))
	for i, tech := range c.Techniques {
		techniques[i] = tech.String()
	}
	return pcs.SweepSpec{
		Base: pcs.RunSpec{
			Scenario:         c.Scenario,
			Policy:           c.Policy,
			Traffic:          c.Traffic,
			Graph:            c.Graph,
			GraphFile:        c.GraphFile,
			Seed:             c.Seed,
			Nodes:            c.Nodes,
			SearchComponents: c.SearchComponents,
			Requests:         c.Requests,
			Shards:           c.Shards,
			Lanes:            c.Lanes,
		},
		Techniques: techniques,
		Rates:      c.Rates,
	}
}

// RunFig6 executes the sweep on the replication runner: all cells ×
// replications fan out across the worker pool, and every job's seed is a
// pure function of its (cell, replication) coordinates, so the sweep is
// deterministic for any worker count. The cells come from the canonical
// SweepSpec expansion — each (technique, rate) cell uses its own derived
// seed so adding techniques does not perturb other cells; with
// Replications == 1 the cell values are identical to the historical serial
// sweep.
func RunFig6(cfg Fig6Config) (Fig6Result, error) {
	c := cfg.withDefaults()

	cells, err := c.sweepSpec().Cells()
	if err != nil {
		return Fig6Result{}, fmt.Errorf("experiments: fig6: %w", err)
	}
	type cellSpec struct {
		tech pcs.Technique
		opts pcs.Options
	}
	specs := make([]cellSpec, len(cells))
	for i, cell := range cells {
		o, err := cell.Options()
		if err != nil {
			return Fig6Result{}, fmt.Errorf("experiments: fig6: %w", err)
		}
		specs[i] = cellSpec{o.Technique, o}
	}

	reps := c.Replications
	jobs := len(specs) * reps
	// The runs fan out on the streaming runner so NDJSON lines land on the
	// sink as their replications complete (in deterministic order), not in
	// a post-hoc pass; the cell tables still need every Result, so those
	// are collected alongside. The runner's own root-seed stream is
	// unused: every job derives its seed from its cell's root so cells
	// stay independent of each other.
	var enc *json.Encoder
	if c.Stream != nil {
		enc = json.NewEncoder(c.Stream)
	}
	workers := shard.ReplicationWorkers(c.Workers, c.Shards)
	results := make([]pcs.Result, jobs)
	err = runner.Stream(c.Seed, jobs, runner.Options{Workers: workers},
		func(idx int, _ int64) (pcs.Result, error) {
			spec := specs[idx/reps]
			o := spec.opts
			o.Seed = xrand.StreamSeed(o.Seed, idx%reps)
			res, runErr := pcs.Run(o)
			if runErr != nil {
				return pcs.Result{}, fmt.Errorf("experiments: fig6 %s at λ=%.0f: %w",
					spec.tech, o.ArrivalRate, runErr)
			}
			return res, nil
		},
		func(idx int, res pcs.Result) error {
			results[idx] = res
			if enc == nil {
				return nil
			}
			spec := specs[idx/reps]
			rec := Fig6StreamedRun{
				Technique: spec.tech.String(),
				Rate:      spec.opts.ArrivalRate,
				Rep:       idx % reps,
				Seed:      xrand.StreamSeed(spec.opts.Seed, idx%reps),
				Result:    res,
			}
			if err := enc.Encode(rec); err != nil {
				return fmt.Errorf("experiments: streaming fig6 run %d: %w", idx, err)
			}
			return nil
		})
	if err != nil {
		return Fig6Result{}, err
	}

	var out Fig6Result
	for i, spec := range specs {
		cell := mergeCell(spec.tech.String(), spec.opts.ArrivalRate, results[i*reps:(i+1)*reps])
		out.Cells = append(out.Cells, cell)
	}
	out.P99ReductionPct, out.OverallReductionPct = headlineReductions(out, c.Rates)
	return out, nil
}

// mergeCell folds a cell's replications into one Fig6Cell: latency metrics
// and counts become across-replication means (a single replication passes
// through untouched), and the headline metrics gain confidence intervals.
func mergeCell(technique string, rate float64, runs []pcs.Result) Fig6Cell {
	if len(runs) == 1 {
		return Fig6Cell{Technique: technique, Rate: rate, Result: runs[0]}
	}
	merged, avgCI, p99CI := foldResults(runs)
	return Fig6Cell{Technique: technique, Rate: rate, Result: merged,
		AvgOverallCI95Ms: avgCI, P99ComponentCI95Ms: p99CI}
}

// foldResults merges one cell's replications into a single Result whose
// latency metrics and counts are across-replication means (counts rounded
// to nearest), plus the CI95 half-widths of the two headline metrics. It
// is the one place a new Result field must be taught about aggregation —
// the Fig. 6 sweep and the policy grid both fold through it, so their
// replicated cells can never disagree about what a number means.
func foldResults(runs []pcs.Result) (merged pcs.Result, avgCI, p99CI float64) {
	merged = runs[0]
	mean := func(f func(pcs.Result) float64) (float64, float64) {
		var w stats.Welford
		for _, r := range runs {
			w.Add(f(r))
		}
		return w.Mean(), w.MeanCI95()
	}
	meanInt := func(f func(pcs.Result) int) int {
		sum := 0
		for _, r := range runs {
			sum += f(r)
		}
		return (sum + len(runs)/2) / len(runs)
	}
	merged.AvgOverallMs, avgCI = mean(func(r pcs.Result) float64 { return r.AvgOverallMs })
	merged.P99ComponentMs, p99CI = mean(func(r pcs.Result) float64 { return r.P99ComponentMs })
	merged.OverallP50Ms, _ = mean(func(r pcs.Result) float64 { return r.OverallP50Ms })
	merged.OverallP99Ms, _ = mean(func(r pcs.Result) float64 { return r.OverallP99Ms })
	merged.OverallMaxMs, _ = mean(func(r pcs.Result) float64 { return r.OverallMaxMs })
	merged.ComponentMeanMs, _ = mean(func(r pcs.Result) float64 { return r.ComponentMeanMs })
	merged.ComponentP50Ms, _ = mean(func(r pcs.Result) float64 { return r.ComponentP50Ms })
	merged.VirtualSeconds, _ = mean(func(r pcs.Result) float64 { return r.VirtualSeconds })
	stage := make([]float64, len(merged.StageMeanMs))
	for s := range stage {
		stage[s], _ = mean(func(r pcs.Result) float64 {
			if s < len(r.StageMeanMs) {
				return r.StageMeanMs[s]
			}
			return 0
		})
	}
	merged.StageMeanMs = stage
	merged.Arrivals = meanInt(func(r pcs.Result) int { return r.Arrivals })
	merged.Completed = meanInt(func(r pcs.Result) int { return r.Completed })
	merged.Migrations = meanInt(func(r pcs.Result) int { return r.Migrations })
	merged.SchedulingIntervals = meanInt(func(r pcs.Result) int { return r.SchedulingIntervals })
	merged.BatchJobsStarted = meanInt(func(r pcs.Result) int { return r.BatchJobsStarted })
	merged.PolicyActions = meanInt(func(r pcs.Result) int { return r.PolicyActions })
	return merged, avgCI, p99CI
}

// headlineReductions computes the paper's headline aggregates: PCS's
// average reduction versus the redundancy and reissue techniques, averaged
// over arrival rates.
func headlineReductions(r Fig6Result, rates []float64) (p99, overall float64) {
	baselines := []string{"RED-3", "RED-5", "RI-90", "RI-99"}
	var p99Sum, overallSum float64
	var n int
	for _, rate := range rates {
		pcsCell := r.Cell("PCS", rate)
		if pcsCell == nil {
			continue
		}
		for _, b := range baselines {
			bc := r.Cell(b, rate)
			if bc == nil || bc.Result.P99ComponentMs <= 0 || bc.Result.AvgOverallMs <= 0 {
				continue
			}
			p99Sum += 100 * (1 - pcsCell.Result.P99ComponentMs/bc.Result.P99ComponentMs)
			overallSum += 100 * (1 - pcsCell.Result.AvgOverallMs/bc.Result.AvgOverallMs)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return p99Sum / float64(n), overallSum / float64(n)
}

// WriteTable renders the sweep as two tables (average overall latency and
// p99 component latency), one row per technique, one column per rate —
// the shape of the paper's Fig. 6. Cells aggregated over multiple
// replications are rendered as mean±CI95.
func (r Fig6Result) WriteTable(w io.Writer, cfg Fig6Config) {
	c := cfg.withDefaults()
	writeOne := func(title string, pick func(Fig6Cell) (float64, float64)) {
		fmt.Fprintf(w, "%s (ms)\n", title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "technique")
		for _, rate := range c.Rates {
			fmt.Fprintf(tw, "\tλ=%.0f", rate)
		}
		fmt.Fprintln(tw)
		for _, tech := range c.Techniques {
			fmt.Fprint(tw, tech.String())
			for _, rate := range c.Rates {
				cell := r.Cell(tech.String(), rate)
				if cell == nil {
					fmt.Fprint(tw, "\t-")
					continue
				}
				v, ci := pick(*cell)
				if ci > 0 {
					fmt.Fprintf(tw, "\t%.2f±%.2f", v, ci)
				} else {
					fmt.Fprintf(tw, "\t%.2f", v)
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	writeOne("Average overall service latency", func(cell Fig6Cell) (float64, float64) {
		return cell.Result.AvgOverallMs, cell.AvgOverallCI95Ms
	})
	writeOne("99th-percentile component latency", func(cell Fig6Cell) (float64, float64) {
		return cell.Result.P99ComponentMs, cell.P99ComponentCI95Ms
	})
	// The headline aggregate compares PCS against the redundancy/reissue
	// techniques; with a technique subset that lacks them there is nothing
	// to report.
	hasBaseline := false
	for _, tech := range c.Techniques {
		switch tech {
		case pcs.RED3, pcs.RED5, pcs.RI90, pcs.RI99:
			hasBaseline = true
		}
	}
	if hasBaseline && r.Cell("PCS", c.Rates[0]) != nil {
		fmt.Fprintf(w, "PCS reduction vs redundancy/reissue: p99 component %.2f%% (paper: 67.05%%), avg overall %.2f%% (paper: 64.16%%)\n",
			r.P99ReductionPct, r.OverallReductionPct)
	}
}
