package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/pcs"
)

// Fig6Config parameterises the service-performance comparison (§VI-C /
// Fig. 6): all six techniques across the paper's six arrival rates.
type Fig6Config struct {
	Seed int64
	// Rates are the arrival rates λ in requests/second (paper: 10, 20, 50,
	// 100, 200, 500).
	Rates []float64
	// Techniques to compare; nil means all six.
	Techniques []pcs.Technique
	// Requests per run; the run's virtual duration is Requests/λ.
	Requests int
	// Nodes and SearchComponents size the deployment (paper: 30 nodes, 100
	// searching components).
	Nodes, SearchComponents int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if len(c.Rates) == 0 {
		c.Rates = []float64{10, 20, 50, 100, 200, 500}
	}
	if len(c.Techniques) == 0 {
		c.Techniques = pcs.Techniques()
	}
	if c.Requests <= 0 {
		c.Requests = 20000
	}
	if c.Nodes <= 0 {
		c.Nodes = 30
	}
	if c.SearchComponents <= 0 {
		c.SearchComponents = 100
	}
	return c
}

// Fig6Cell is one (technique, rate) measurement.
type Fig6Cell struct {
	Technique string
	Rate      float64
	Result    pcs.Result
}

// Fig6Result holds the full sweep plus the paper's headline aggregates.
type Fig6Result struct {
	Cells []Fig6Cell
	// P99ReductionPct is PCS's average reduction in 99th-percentile
	// component latency versus the four redundancy/reissue techniques
	// across all rates (paper: 67.05 %).
	P99ReductionPct float64
	// OverallReductionPct is the same for average overall latency
	// (paper: 64.16 %).
	OverallReductionPct float64
}

// Cell returns the measurement for a technique at a rate, or nil.
func (r Fig6Result) Cell(technique string, rate float64) *Fig6Cell {
	for i := range r.Cells {
		if r.Cells[i].Technique == technique && r.Cells[i].Rate == rate {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunFig6 executes the sweep. Runs are independent and deterministic given
// the seed; each (technique, rate) cell uses its own derived seed so adding
// techniques does not perturb other cells.
func RunFig6(cfg Fig6Config) (Fig6Result, error) {
	c := cfg.withDefaults()
	var out Fig6Result
	for _, rate := range c.Rates {
		// Every run lasts at least 90 virtual seconds so PCS sees a
		// meaningful number of scheduling intervals even at low rates.
		requests := c.Requests
		if min := int(90 * rate); requests < min {
			requests = min
		}
		for _, tech := range c.Techniques {
			res, err := pcs.Run(pcs.Options{
				Technique:        tech,
				Seed:             c.Seed ^ int64(rate)<<16 ^ int64(tech)<<8,
				Nodes:            c.Nodes,
				SearchComponents: c.SearchComponents,
				ArrivalRate:      rate,
				Requests:         requests,
			})
			if err != nil {
				return out, fmt.Errorf("experiments: fig6 %s at λ=%.0f: %w", tech, rate, err)
			}
			out.Cells = append(out.Cells, Fig6Cell{Technique: tech.String(), Rate: rate, Result: res})
		}
	}
	out.P99ReductionPct, out.OverallReductionPct = headlineReductions(out, c.Rates)
	return out, nil
}

// headlineReductions computes the paper's headline aggregates: PCS's
// average reduction versus the redundancy and reissue techniques, averaged
// over arrival rates.
func headlineReductions(r Fig6Result, rates []float64) (p99, overall float64) {
	baselines := []string{"RED-3", "RED-5", "RI-90", "RI-99"}
	var p99Sum, overallSum float64
	var n int
	for _, rate := range rates {
		pcsCell := r.Cell("PCS", rate)
		if pcsCell == nil {
			continue
		}
		for _, b := range baselines {
			bc := r.Cell(b, rate)
			if bc == nil || bc.Result.P99ComponentMs <= 0 || bc.Result.AvgOverallMs <= 0 {
				continue
			}
			p99Sum += 100 * (1 - pcsCell.Result.P99ComponentMs/bc.Result.P99ComponentMs)
			overallSum += 100 * (1 - pcsCell.Result.AvgOverallMs/bc.Result.AvgOverallMs)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return p99Sum / float64(n), overallSum / float64(n)
}

// WriteTable renders the sweep as two tables (average overall latency and
// p99 component latency), one row per technique, one column per rate —
// the shape of the paper's Fig. 6.
func (r Fig6Result) WriteTable(w io.Writer, cfg Fig6Config) {
	c := cfg.withDefaults()
	writeOne := func(title string, pick func(pcs.Result) float64) {
		fmt.Fprintf(w, "%s (ms)\n", title)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "technique")
		for _, rate := range c.Rates {
			fmt.Fprintf(tw, "\tλ=%.0f", rate)
		}
		fmt.Fprintln(tw)
		for _, tech := range c.Techniques {
			fmt.Fprint(tw, tech.String())
			for _, rate := range c.Rates {
				cell := r.Cell(tech.String(), rate)
				if cell == nil {
					fmt.Fprint(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%.2f", pick(cell.Result))
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
	writeOne("Average overall service latency", func(res pcs.Result) float64 { return res.AvgOverallMs })
	writeOne("99th-percentile component latency", func(res pcs.Result) float64 { return res.P99ComponentMs })
	fmt.Fprintf(w, "PCS reduction vs redundancy/reissue: p99 component %.2f%% (paper: 67.05%%), avg overall %.2f%% (paper: 64.16%%)\n",
		r.P99ReductionPct, r.OverallReductionPct)
}
