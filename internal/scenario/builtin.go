package scenario

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/traffic"
)

// The built-in scenarios. "nutch-search" and "ecommerce" promote the
// topologies that predate the registry; "microservice-chain" and
// "social-feed" stress the two structural extremes the paper's Eqs. 3–4
// expose: overall latency as a sum of many sequential stages, and stage
// latency as the max over a very wide fan-out.
func init() {
	mustRegister(Scenario{
		Name: "nutch-search",
		Description: "paper's 3-stage Nutch web search: segmenting → searching ×100 → " +
			"aggregating on 30 nodes (Fig. 6 deployment)",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
	})
	mustRegister(Scenario{
		Name: "ecommerce",
		Description: "4-stage e-commerce site: frontend → catalog ×32 → recommend ×16 → " +
			"pricing ×8 on 16 nodes, two-phase batch jobs",
		Topology: func(fanOut int) service.Topology {
			return resizeStage(service.EcommerceTopology(), 1, fanOut)
		},
		DominantStage: 1,
		Nodes:         16,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
			TwoPhaseJobs:     true,
		},
	})
	mustRegister(Scenario{
		Name: "microservice-chain",
		Description: "deep 8-stage microservice call chain with narrow fan-outs: " +
			"overall latency is dominated by the sum over stages (Eq. 4), not any one max",
		Topology:      chainTopology,
		DominantStage: 3,
		Nodes:         24,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       4 * 1024,
			TwoPhaseJobs:     true,
		},
	})
	// The two steered scenarios exercise the Controller path: identical
	// topology and workload to nutch-search, plus a deterministic
	// mid-run script. Fault nodes use low indices so the script survives
	// aggressive -nodes overrides.
	mustRegister(Scenario{
		Name: "node-failure",
		Description: "nutch-search deployment where two nodes fail to saturation mid-run " +
			"and later recover — stresses straggler queues, drain after recovery and " +
			"(for PCS) migration away from dark nodes",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Steering: &Steering{
			Faults: []Fault{
				{Node: 1, FailAt: 0.25, RestoreAt: 0.60},
				{Node: 2, FailAt: 0.40, RestoreAt: 0.75},
			},
		},
	})
	mustRegister(Scenario{
		Name: "diurnal-load",
		Description: "nutch-search under a sinusoidal arrival rate (two cycles, ±60%) — " +
			"stresses queue build-up at the peaks and whether techniques recover in the troughs",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Steering: &Steering{
			Diurnal: &Diurnal{Cycles: 2, Amplitude: 0.6},
		},
	})
	mustRegister(Scenario{
		Name: "large-cluster",
		Description: "datacenter-scale nutch-style search: searching ×192 on 96 nodes — the " +
			"control-plane stress case (O(m·k) matrix work per interval) that " +
			"intra-run sharding (-shards) accelerates",
		Topology: func(fanOut int) service.Topology {
			if fanOut <= 0 {
				fanOut = 192
			}
			return service.NutchTopology(fanOut)
		},
		DominantStage: 1,
		Nodes:         96,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
	})
	// The two policy scenarios exercise the closed-loop layer: the same
	// nutch deployment, plus a scripted load disturbance (rate steps) and
	// a scripted policy.Spec the simulation compiles into a live
	// controller. `-policy none` runs the disturbance open-loop — the
	// comparison the policy experiment driver makes.
	mustRegister(Scenario{
		Name: "autoscale-burst",
		Description: "nutch-search hit by a 3.5× arrival burst through the middle of the " +
			"run, with the threshold autoscaler activating (and later retiring) extra " +
			"component replicas as queue pressure moves — the elasticity case the paper " +
			"motivates but leaves open-loop",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Steering: &Steering{
			RateSteps: []RateStep{
				{At: 0.30, Factor: 3.5},
				{At: 0.70, Factor: 1},
			},
		},
		Policy: &policy.Spec{Kind: "autoscale"},
	})
	mustRegister(Scenario{
		Name: "brownout-overload",
		Description: "nutch-search under sustained 3× overload from early in the run, with " +
			"the brownout controller trading per-request work for latency: degrade under " +
			"queue pressure, restore under slack",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Steering: &Steering{
			RateSteps: []RateStep{{At: 0.15, Factor: 3}},
		},
		Policy: &policy.Spec{Kind: "brownout"},
	})
	// The two traffic scenarios exercise the production-shaped arrival
	// layer (traffic.Spec): multi-tenant admission control, and load that
	// emerges from a session population instead of a rate constant.
	mustRegister(Scenario{
		Name: "tenant-storm",
		Description: "nutch-search shared by three tenants — steady search traffic, a " +
			"bucket-limited feed, and a bursty MMPP crawler whose storms blow through its " +
			"admission budget — per-tenant p99 and drop counts expose who pays for the storm",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Traffic: &traffic.Spec{
			Kind: traffic.KindMultiTenant,
			Tenants: []traffic.TenantSpec{
				{Name: "search", Source: traffic.Spec{Kind: traffic.KindPoisson, Rate: 60}},
				{Name: "feed", Source: traffic.Spec{Kind: traffic.KindPoisson, Rate: 25},
					AdmitRate: 40, Burst: 20},
				{Name: "crawler", Source: traffic.Spec{
					Kind:     traffic.KindMMPP,
					Rates:    []float64{5, 180},
					Sojourns: []float64{20, 4},
				}, AdmitRate: 30, Burst: 15},
			},
		},
	})
	mustRegister(Scenario{
		Name: "session-diurnal",
		Description: "nutch-search driven by 400 concurrent user sessions with lognormal " +
			"think time, compressed and stretched through two diurnal cycles — offered load " +
			"emerges from the population instead of a rate constant",
		Topology:      service.NutchTopology,
		DominantStage: 1,
		Nodes:         30,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Traffic: &traffic.Spec{
			Kind:         traffic.KindSessions,
			Users:        400,
			ThinkSeconds: 4,
			ThinkSigma:   0.6,
		},
		Steering: &Steering{
			Diurnal: &Diurnal{Cycles: 2, Amplitude: 0.5},
		},
	})
	mustRegister(Scenario{
		Name: "social-feed",
		Description: "wide fan-out social-feed read path: gateway → timeline ×160 → " +
			"rank ×12 → mix, where one slow timeline shard drags the whole stage (Eq. 3)",
		Topology:      socialFeedTopology,
		DominantStage: 1,
		Nodes:         40,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2.5,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
	})
}

func mustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(fmt.Sprintf("scenario: registering built-in: %v", err))
	}
}

// resizeStage returns topo with the given stage's fan-out set to fanOut;
// fanOut <= 0 keeps the topology's own width.
func resizeStage(topo service.Topology, stage, fanOut int) service.Topology {
	if fanOut <= 0 {
		return topo
	}
	stages := make([]service.StageSpec, len(topo.Stages))
	copy(stages, topo.Stages)
	stages[stage].Components = fanOut
	topo.Stages = stages
	return topo
}

// chainTopology is a deep request path: eight sequential services, each a
// handful of instances wide. Per-stage base times are small, but they sum
// (Eq. 4), so a single contended stage anywhere in the chain inflates
// every request — the regime where migrating the one hot component pays
// off across the whole chain. fanOut widens the mid-chain "inventory"
// lookup stage.
func chainTopology(fanOut int) service.Topology {
	if fanOut <= 0 {
		fanOut = 12
	}
	mk := func(name string, comps int, base float64, core, cache, disk, net float64) service.StageSpec {
		return service.StageSpec{
			Name: name, Components: comps, BaseServiceTime: base,
			Demand: cluster.Vector{
				cluster.Core: core, cluster.Cache: cache, cluster.DiskBW: disk, cluster.NetBW: net,
			},
		}
	}
	return service.Topology{
		Name: "microservice-chain",
		Stages: []service.StageSpec{
			mk("edge", 4, 0.0002, 0.5, 3, 1, 7),
			mk("auth", 6, 0.0003, 0.7, 4, 2, 4),
			mk("session", 6, 0.0003, 0.6, 5, 3, 3),
			mk("inventory", fanOut, 0.0006, 0.9, 6, 9, 4),
			mk("pricing", 8, 0.0004, 0.8, 5, 2, 3),
			mk("basket", 6, 0.0003, 0.6, 4, 4, 3),
			mk("render", 6, 0.0004, 0.8, 6, 1, 5),
			mk("egress", 4, 0.0002, 0.4, 2, 1, 8),
		},
	}
}

// socialFeedTopology is the opposite extreme: a read path whose middle
// stage fans out to many timeline shards and completes only when the last
// shard answers (Eq. 3), so the p99 of a single shard becomes the stage
// latency almost surely — the tail-at-scale regime redundancy targets and
// PCS attacks by moving the straggler shards. fanOut widens the timeline
// stage (default 160 shards).
func socialFeedTopology(fanOut int) service.Topology {
	if fanOut <= 0 {
		fanOut = 160
	}
	return service.Topology{
		Name: "social-feed",
		Stages: []service.StageSpec{
			{Name: "gateway", Components: 6, BaseServiceTime: 0.0002,
				Demand: cluster.Vector{cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 1, cluster.NetBW: 8}},
			{Name: "timeline", Components: fanOut, BaseServiceTime: 0.0007,
				Demand: cluster.Vector{cluster.Core: 0.8, cluster.Cache: 6, cluster.DiskBW: 7, cluster.NetBW: 5}},
			{Name: "rank", Components: 12, BaseServiceTime: 0.0009,
				Demand: cluster.Vector{cluster.Core: 1.2, cluster.Cache: 8, cluster.DiskBW: 2, cluster.NetBW: 3}},
			{Name: "mix", Components: 5, BaseServiceTime: 0.0003,
				Demand: cluster.Vector{cluster.Core: 0.6, cluster.Cache: 4, cluster.DiskBW: 1, cluster.NetBW: 7}},
		},
	}
}
