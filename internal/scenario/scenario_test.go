package scenario

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/traffic"
)

func TestBuiltinsRegistered(t *testing.T) {
	for _, name := range []string{"nutch-search", "ecommerce", "microservice-chain", "social-feed"} {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Get(%q).Name = %q", name, s.Name)
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", name)
		}
		topo := s.Topology(0)
		if err := topo.Validate(); err != nil {
			t.Errorf("%s default topology: %v", name, err)
		}
		if s.DominantStage < 0 || s.DominantStage >= len(topo.Stages) {
			t.Errorf("%s: dominant stage %d out of range", name, s.DominantStage)
		}
	}
	if len(Names()) < 4 {
		t.Fatalf("Names() = %v, want at least the four built-ins", Names())
	}
}

func TestGetDefaultAndCaseInsensitive(t *testing.T) {
	def, err := Get("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != Default {
		t.Fatalf("empty name resolved to %q, want %q", def.Name, Default)
	}
	upper, err := Get("ECommerce")
	if err != nil {
		t.Fatal(err)
	}
	if upper.Name != "ecommerce" {
		t.Fatalf("case-insensitive lookup resolved to %q", upper.Name)
	}
}

func TestGetUnknownErrors(t *testing.T) {
	_, err := Get("no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	// The error must be actionable: name the offender and the options.
	msg := err.Error()
	if !strings.Contains(msg, "no-such-scenario") || !strings.Contains(msg, "nutch-search") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on unknown name did not panic")
		}
	}()
	MustGet("no-such-scenario")
}

func TestRegisterRejectsBadScenarios(t *testing.T) {
	cases := map[string]Scenario{
		"empty name": {Topology: service.NutchTopology, Nodes: 4,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2}},
		"nil topology": {Name: "t1", Nodes: 4,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2}},
		"no nodes": {Name: "t2", Topology: service.NutchTopology,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2}},
		"bad workload": {Name: "t3", Topology: service.NutchTopology, Nodes: 4,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 5, MaxInputMB: 2}},
		"bad dominant stage": {Name: "t4", Topology: service.NutchTopology, Nodes: 4, DominantStage: 9,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2}},
		"duplicate": {Name: "nutch-search", Topology: service.NutchTopology, Nodes: 4,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2}},
		"case-variant duplicate": {Name: "Nutch-Search", Topology: service.NutchTopology, Nodes: 4,
			Workload: WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2}},
	}
	for label, s := range cases {
		if err := Register(s); err == nil {
			t.Errorf("%s: Register accepted %+v", label, s)
		}
	}
}

func TestFanOutResizesDominantStage(t *testing.T) {
	for _, name := range Names() {
		s := MustGet(name)
		topo := s.Topology(7)
		if got := topo.Stages[s.DominantStage].Components; got != 7 {
			t.Errorf("%s: Topology(7) dominant stage has %d components", name, got)
		}
		def := s.Topology(0)
		if def.Stages[s.DominantStage].Components == 7 {
			t.Errorf("%s: default topology unexpectedly 7 wide", name)
		}
	}
}

func TestPromotedTopologiesMatchServicePackage(t *testing.T) {
	// The registry must not fork the topologies it promoted: nutch-search
	// and ecommerce stay bit-identical to the service package's builders,
	// which pcs.Run used before the registry existed.
	nutch := MustGet("nutch-search").Topology(100)
	want := service.NutchTopology(100)
	if len(nutch.Stages) != len(want.Stages) || nutch.Name != want.Name {
		t.Fatalf("nutch-search diverged: %+v vs %+v", nutch, want)
	}
	for i := range want.Stages {
		if nutch.Stages[i] != want.Stages[i] {
			t.Fatalf("nutch-search stage %d diverged", i)
		}
	}
	ec := MustGet("ecommerce").Topology(0)
	wantEc := service.EcommerceTopology()
	for i := range wantEc.Stages {
		if ec.Stages[i] != wantEc.Stages[i] {
			t.Fatalf("ecommerce stage %d diverged", i)
		}
	}
}

func TestDescribeListsEveryScenario(t *testing.T) {
	out := Describe()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Errorf("Describe() missing %s:\n%s", name, out)
		}
	}
}

func TestSteeringValidation(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:        "steer-test",
			Description: "x",
			Topology:    service.NutchTopology,
			Nodes:       4,
			Workload:    WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 10},
		}
	}
	bad := []Steering{
		{Faults: []Fault{{Node: -1, FailAt: 0.2}}},
		{Faults: []Fault{{Node: 0, FailAt: 1.0}}},
		{Faults: []Fault{{Node: 0, FailAt: 0.2, RestoreAt: 1.5}}},
		{Diurnal: &Diurnal{Cycles: 0, Amplitude: 0.5}},
		{Diurnal: &Diurnal{Cycles: 2, Amplitude: 1.0}},
		{Diurnal: &Diurnal{Cycles: 2, Amplitude: 0.5, StepsPerCycle: -1}},
	}
	for i := range bad {
		s := base()
		s.Steering = &bad[i]
		if err := Register(s); err == nil {
			t.Fatalf("bad steering %d accepted: %+v", i, bad[i])
		}
	}
	s := base()
	s.Steering = &Steering{
		Faults:  []Fault{{Node: 0, FailAt: 0.2, RestoreAt: 0.6}},
		Diurnal: &Diurnal{Cycles: 2, Amplitude: 0.5},
	}
	if err := s.validate(); err != nil {
		t.Fatalf("valid steering rejected: %v", err)
	}
}

func TestBuiltinSteeredScenariosPresent(t *testing.T) {
	for _, name := range []string{"node-failure", "diurnal-load"} {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Steering == nil {
			t.Fatalf("%s has no steering script", name)
		}
	}
	if MustGet("node-failure").Steering.Faults == nil {
		t.Fatal("node-failure script has no faults")
	}
	if MustGet("diurnal-load").Steering.Diurnal == nil {
		t.Fatal("diurnal-load script has no diurnal modulation")
	}
}

func TestRateStepValidation(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:        "rate-step-test",
			Description: "x",
			Topology:    service.NutchTopology,
			Nodes:       4,
			Workload:    WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 10},
		}
	}
	bad := []Steering{
		{RateSteps: []RateStep{{At: -0.1, Factor: 2}}},
		{RateSteps: []RateStep{{At: 1.0, Factor: 2}}},
		{RateSteps: []RateStep{{At: 0.5, Factor: 0}}},
		{RateSteps: []RateStep{{At: 0.5, Factor: -1}}},
	}
	for i := range bad {
		s := base()
		s.Steering = &bad[i]
		if err := s.validate(); err == nil {
			t.Fatalf("bad rate step %d accepted: %+v", i, bad[i])
		}
	}
	s := base()
	s.Steering = &Steering{RateSteps: []RateStep{{At: 0.3, Factor: 2.5}, {At: 0.7, Factor: 1}}}
	if err := s.validate(); err != nil {
		t.Fatalf("valid rate steps rejected: %v", err)
	}
}

func TestPolicySpecValidation(t *testing.T) {
	s := Scenario{
		Name:        "policy-test",
		Description: "x",
		Topology:    service.NutchTopology,
		Nodes:       4,
		Workload:    WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 10},
		Policy:      &policy.Spec{Kind: "warp-drive"},
	}
	if err := s.validate(); err == nil {
		t.Fatal("unknown policy kind accepted")
	}
	s.Policy = &policy.Spec{Kind: "autoscale"}
	if err := s.validate(); err != nil {
		t.Fatalf("valid policy spec rejected: %v", err)
	}
}

func TestBuiltinPolicyScenariosPresent(t *testing.T) {
	if n := len(Names()); n != 15 {
		t.Fatalf("registry holds %d scenarios, want 15: %v", n, Names())
	}
	wantKind := map[string]string{
		"autoscale-burst":   "autoscale",
		"brownout-overload": "brownout",
	}
	for name, kind := range wantKind {
		sc := MustGet(name)
		if sc.Policy == nil || sc.Policy.Kind != kind {
			t.Fatalf("%s: policy script %+v, want kind %q", name, sc.Policy, kind)
		}
		if sc.Steering == nil || len(sc.Steering.RateSteps) == 0 {
			t.Fatalf("%s: no rate-step disturbance scripted", name)
		}
	}
}

func TestBuiltinTrafficScenariosPresent(t *testing.T) {
	storm := MustGet("tenant-storm")
	if storm.Traffic == nil || storm.Traffic.Kind != traffic.KindMultiTenant {
		t.Fatalf("tenant-storm traffic script %+v, want multi-tenant", storm.Traffic)
	}
	if n := len(storm.Traffic.Tenants); n != 3 {
		t.Fatalf("tenant-storm scripts %d tenants, want 3", n)
	}
	throttled := 0
	for _, ten := range storm.Traffic.Tenants {
		if ten.AdmitRate > 0 {
			throttled++
		}
	}
	if throttled == 0 {
		t.Fatal("tenant-storm scripts no admission-limited tenant")
	}

	sd := MustGet("session-diurnal")
	if sd.Traffic == nil || sd.Traffic.Kind != traffic.KindSessions {
		t.Fatalf("session-diurnal traffic script %+v, want sessions", sd.Traffic)
	}
	if sd.Steering == nil || sd.Steering.Diurnal == nil {
		t.Fatal("session-diurnal scripts no diurnal steering")
	}
}

func TestTrafficSpecValidation(t *testing.T) {
	s := Scenario{
		Name:        "traffic-test",
		Description: "x",
		Topology:    service.NutchTopology,
		Nodes:       4,
		Workload:    WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 10},
		Traffic:     &traffic.Spec{Kind: "warp-drive"},
	}
	if err := s.validate(); err == nil {
		t.Fatal("unknown traffic kind accepted")
	}
	s.Traffic = &traffic.Spec{Kind: traffic.KindSessions, Users: 10, ThinkSeconds: 1}
	if err := s.validate(); err != nil {
		t.Fatalf("valid traffic spec rejected: %v", err)
	}
}
