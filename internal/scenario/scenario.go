// Package scenario is the registry of named simulation scenarios: a
// scenario bundles a service topology with the workload/interference
// defaults the world around it should use. The paper evaluates one
// deployment (the Nutch-style search engine); the reproduction grows
// "as many scenarios as you can imagine" by registering more entries here
// and selecting them by name via pcs.Options.Scenario or the -scenario
// flag of the cmd/ tools.
//
// Scenarios are self-describing: Names/Describe let CLIs list what is
// available, and every entry carries enough defaults that
// pcs.Run(pcs.Options{Scenario: name}) is a complete, runnable world.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/traffic"
)

// Default is the scenario selected when none is named: the paper's own
// deployment.
const Default = "nutch-search"

// WorkloadDefaults are the batch-interference settings a scenario runs
// under when the caller does not override them.
type WorkloadDefaults struct {
	// BatchConcurrency is the average number of co-located batch jobs per
	// node.
	BatchConcurrency float64
	// MinInputMB and MaxInputMB bound batch-job input sizes.
	MinInputMB, MaxInputMB float64
	// TwoPhaseJobs enables map→reduce demand shifts inside batch jobs.
	TwoPhaseJobs bool
}

// Steering scripts deterministic mid-run interventions for a scenario. The
// simulation layer (pcs) translates it into Controller actions scheduled at
// fixed virtual times when the world is built, so steered runs stay exactly
// as reproducible as unsteered ones: the script is data, all randomness
// still flows from the run's seed.
type Steering struct {
	// Faults fail (and optionally restore) nodes mid-run.
	Faults []Fault
	// Diurnal, if set, modulates the arrival rate sinusoidally.
	Diurnal *Diurnal
	// RateSteps step the arrival rate to a multiple of the run's base λ at
	// fixed fractions of the arrival window — load bursts and sustained
	// overload for the closed-loop policy scenarios.
	RateSteps []RateStep
}

// RateStep sets λ to Factor times the run's base arrival rate at a fixed
// point of the run. Steps are scheduled in slice order; a later step with
// Factor 1 restores the base rate.
type RateStep struct {
	// At is when the step lands, as a fraction of the arrival window in
	// [0, 1).
	At float64
	// Factor multiplies the base arrival rate; it must be positive.
	Factor float64
}

// Fault fails one node partway through the run. Times are fractions of the
// arrival window so the script scales with any -rate/-requests choice.
type Fault struct {
	// Node is the node index to fail. Scenarios should use low indices so
	// the script survives cluster-size overrides; the simulation rejects a
	// fault aimed past the actual cluster.
	Node int
	// FailAt is when the node fails, as a fraction of the arrival window
	// in [0, 1).
	FailAt float64
	// RestoreAt is when it recovers, as a fraction of the arrival window.
	// A value ≤ FailAt means the node never recovers.
	RestoreAt float64
}

// Diurnal modulates the arrival rate as
//
//	λ(t) = base · (1 + Amplitude · sin(2π · t · Cycles / window))
//
// updated in discrete steps so the modulation is identical on every run.
type Diurnal struct {
	// Cycles is how many full sinusoid periods fit in the arrival window.
	Cycles float64
	// Amplitude is the relative swing, in (0, 1) so λ stays positive.
	Amplitude float64
	// StepsPerCycle is how many rate updates approximate each cycle
	// (0 selects 32).
	StepsPerCycle int
}

func (st *Steering) validate(name string) error {
	for i, f := range st.Faults {
		if f.Node < 0 {
			return fmt.Errorf("scenario %q: fault %d on negative node %d", name, i, f.Node)
		}
		if f.FailAt < 0 || f.FailAt >= 1 {
			return fmt.Errorf("scenario %q: fault %d FailAt %g outside [0,1)", name, i, f.FailAt)
		}
		if f.RestoreAt < 0 || f.RestoreAt > 1 {
			return fmt.Errorf("scenario %q: fault %d RestoreAt %g outside [0,1]", name, i, f.RestoreAt)
		}
	}
	for i, rs := range st.RateSteps {
		if rs.At < 0 || rs.At >= 1 {
			return fmt.Errorf("scenario %q: rate step %d At %g outside [0,1)", name, i, rs.At)
		}
		if rs.Factor <= 0 {
			return fmt.Errorf("scenario %q: rate step %d factor %g must be positive", name, i, rs.Factor)
		}
	}
	if d := st.Diurnal; d != nil {
		if d.Cycles <= 0 {
			return fmt.Errorf("scenario %q: diurnal cycles must be positive, got %g", name, d.Cycles)
		}
		if d.Amplitude <= 0 || d.Amplitude >= 1 {
			return fmt.Errorf("scenario %q: diurnal amplitude %g outside (0,1)", name, d.Amplitude)
		}
		if d.StepsPerCycle < 0 {
			return fmt.Errorf("scenario %q: negative diurnal steps", name)
		}
	}
	return nil
}

// Scenario is one named, self-describing deployment.
type Scenario struct {
	// Name is the registry key (e.g. "nutch-search").
	Name string
	// Description is a one-line summary for CLI listings.
	Description string
	// Topology builds the service topology. fanOut sizes the scenario's
	// dominant stage; fanOut <= 0 selects the scenario's default width.
	Topology func(fanOut int) service.Topology
	// DominantStage is the index of the stage that dominates the
	// scenario's latency — the stage fanOut resizes, and the one
	// prediction experiments (Fig. 5) profile.
	DominantStage int
	// Nodes is the default cluster size.
	Nodes int
	// Workload carries the scenario's batch-interference defaults.
	Workload WorkloadDefaults
	// Steering, if non-nil, scripts mid-run interventions (node faults,
	// diurnal load, rate steps) applied deterministically by the
	// simulation layer.
	Steering *Steering
	// Policy, if non-nil, scripts a closed-loop policy for the scenario: a
	// pure-data policy.Spec the simulation layer builds a fresh controller
	// from on every run. The -policy flag overrides it ("none" disables).
	Policy *policy.Spec
	// Traffic, if non-nil, scripts the scenario's arrival process: a
	// pure-data traffic.Spec the simulation layer builds a fresh source
	// from on every run (sessions, traces, bursty MMPP, multi-tenant
	// mixes). Nil keeps the scalar Poisson workload at the run's
	// ArrivalRate; Options.Traffic overrides a scripted spec.
	Traffic *traffic.Spec
	// Graph, if non-nil, makes this a service-DAG scenario: a pure-data
	// graph.Spec the simulation layer compiles into the runtime plan on
	// every run. Register derives Topology and DominantStage from the
	// spec when they are left unset; a scenario that sets both must keep
	// them consistent (one stage per graph node).
	Graph *graph.Spec
}

func (s Scenario) validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.Topology == nil {
		return fmt.Errorf("scenario %q: nil topology builder", s.Name)
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("scenario %q: default node count must be positive, got %d", s.Name, s.Nodes)
	}
	topo := s.Topology(0)
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("scenario %q: topology: %w", s.Name, err)
	}
	if s.DominantStage < 0 || s.DominantStage >= len(topo.Stages) {
		return fmt.Errorf("scenario %q: dominant stage %d out of range [0, %d)",
			s.Name, s.DominantStage, len(topo.Stages))
	}
	// Workload errors name the field at fault so a bad registration reads
	// as "fix this knob", not as a struct dump.
	w := s.Workload
	switch {
	case w.BatchConcurrency <= 0:
		return fmt.Errorf("scenario %q: workload BatchConcurrency must be positive, got %g",
			s.Name, w.BatchConcurrency)
	case w.MinInputMB <= 0:
		return fmt.Errorf("scenario %q: workload MinInputMB must be positive, got %g",
			s.Name, w.MinInputMB)
	case w.MaxInputMB <= w.MinInputMB:
		return fmt.Errorf("scenario %q: workload MaxInputMB (%g) must exceed MinInputMB (%g)",
			s.Name, w.MaxInputMB, w.MinInputMB)
	}
	if s.Steering != nil {
		if err := s.Steering.validate(s.Name); err != nil {
			return err
		}
	}
	if s.Policy != nil {
		if err := s.Policy.Validate(); err != nil {
			return fmt.Errorf("scenario %q: policy spec: %w", s.Name, err)
		}
	}
	if s.Traffic != nil {
		if err := s.Traffic.Validate(); err != nil {
			return fmt.Errorf("scenario %q: traffic spec: %w", s.Name, err)
		}
	}
	if s.Graph != nil {
		if err := s.Graph.Validate(); err != nil {
			return fmt.Errorf("scenario %q: graph spec: %w", s.Name, err)
		}
		if got, want := len(topo.Stages), len(s.Graph.Nodes); got != want {
			return fmt.Errorf("scenario %q: graph spec %q has %d nodes but the topology has %d stages",
				s.Name, s.Graph.Name, want, got)
		}
	}
	return nil
}

// FromGraph builds an unregistered scenario around a caller-supplied
// service DAG — the path a -graph-file flag or a RunSpec's inline graph
// takes. The scenario gets the DAG workload defaults the built-in graph
// scenarios use (24 nodes, 2 co-located batch jobs, 1 MB–10 GB inputs),
// its topology and dominant stage derived from the spec, and a
// "graph:<name>" scenario name so reports distinguish custom DAGs from
// registry entries. The spec is validated exactly as a registered
// scenario's would be.
func FromGraph(g *graph.Spec) (Scenario, error) {
	if g == nil {
		return Scenario{}, fmt.Errorf("scenario: nil graph spec")
	}
	if err := g.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("scenario: graph spec: %w", err)
	}
	s := Scenario{
		Name:          "graph:" + g.Name,
		Description:   "custom service DAG loaded at run time",
		Topology:      func(fanOut int) service.Topology { return g.Topology(fanOut) },
		DominantStage: g.DominantIndex(),
		Nodes:         24,
		Workload: WorkloadDefaults{
			BatchConcurrency: 2,
			MinInputMB:       1,
			MaxInputMB:       10 * 1024,
		},
		Graph: g,
	}
	if err := s.validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

var registry = map[string]Scenario{}

// Register adds a scenario to the registry. It returns an error for
// incomplete entries or duplicate names; built-ins register at init and
// panic on failure, since a broken built-in is a programming error. A
// scenario carrying a Graph spec may leave Topology and DominantStage
// unset — they are derived from the spec here, so a DAG scenario is
// authored as pure data plus defaults.
func Register(s Scenario) error {
	if g := s.Graph; g != nil && s.Topology == nil {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("scenario %q: graph spec: %w", s.Name, err)
		}
		s.Topology = func(fanOut int) service.Topology { return g.Topology(fanOut) }
		s.DominantStage = g.DominantIndex()
	}
	if err := s.validate(); err != nil {
		return err
	}
	// Lookups are case-insensitive, so registration must be too: two
	// names differing only by case would make Get's answer depend on map
	// iteration order.
	for name := range registry {
		if strings.EqualFold(name, s.Name) {
			return fmt.Errorf("scenario %q: already registered as %q", s.Name, name)
		}
	}
	registry[s.Name] = s
	return nil
}

// Get looks a scenario up by name (case-insensitive). The empty name
// selects Default. Unknown names error, listing what is registered.
func Get(name string) (Scenario, error) {
	if name == "" {
		name = Default
	}
	if s, ok := registry[name]; ok {
		return s, nil
	}
	// Accept case variations so CLI usage stays forgiving.
	for k, s := range registry {
		if strings.EqualFold(k, name) {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (registered: %s)",
		name, strings.Join(Names(), ", "))
}

// MustGet is Get for names known at compile time; it panics on error.
func MustGet(name string) Scenario {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names lists the registered scenario names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Describe renders a "name — description" line per registered scenario,
// for CLI usage text.
func Describe() string {
	var b strings.Builder
	for i, name := range Names() {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s — %s", name, registry[name].Description)
	}
	return b.String()
}
