package scenario

import (
	"repro/internal/cluster"
	"repro/internal/graph"
)

// The built-in service-DAG scenarios. Each is pure data — a graph.Spec the
// registry derives the topology from and the simulation layer compiles
// into the runtime plan — and together they cover the failure-semantics
// surface: probabilistic branching and async fan-out with retries
// (fanout-retry), storage tiers with hit-ratio-dependent service times
// (storage-cache), circuit breakers under a scripted overload
// (circuit-storm), and deadline-bounded aggregation where timeouts fail
// requests outright (dag-timeout).
func init() {
	dagWorkload := WorkloadDefaults{
		BatchConcurrency: 2,
		MinInputMB:       1,
		MaxInputMB:       10 * 1024,
	}
	mustRegister(Scenario{
		Name: "fanout-retry",
		Description: "service DAG: front fans to a wide search tier (retried on timeout " +
			"with exponential backoff), a probabilistic profile branch and an async audit " +
			"trail — convergent paths re-invoke the merge tier per caller",
		Nodes:    24,
		Workload: dagWorkload,
		Graph: &graph.Spec{
			Name:     "fanout-retry",
			Dominant: "search",
			Nodes: []graph.Node{
				{
					Name: "front", Components: 4, BaseServiceTime: 0.0002,
					Demand: cluster.Vector{cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 1, cluster.NetBW: 7},
					Calls: []graph.Call{
						{To: "search", Retries: 2, Backoff: 0.002},
						{To: "profile", Prob: 0.7},
						{To: "audit", Async: true},
					},
				},
				{
					Name: "search", Components: 16, BaseServiceTime: 0.0006,
					Timeout: 0.012,
					Demand:  cluster.Vector{cluster.Core: 0.9, cluster.Cache: 6, cluster.DiskBW: 8, cluster.NetBW: 5},
					Calls:   []graph.Call{{To: "merge"}},
				},
				{
					Name: "profile", Components: 6, BaseServiceTime: 0.0004,
					Calls: []graph.Call{{To: "merge"}},
				},
				{Name: "merge", Components: 4, BaseServiceTime: 0.0003},
				{Name: "audit", Components: 3, BaseServiceTime: 0.0003},
			},
		},
	})
	mustRegister(Scenario{
		Name: "storage-cache",
		Description: "service DAG over storage tiers: api → cache (85% hits at 0.15 ms, " +
			"misses 6× dearer) with a fall-through to a mixed read/write database, plus an " +
			"async write-heavy log store — per-operation service times drawn from the hit " +
			"ratio and write mix",
		Nodes:    16,
		Workload: dagWorkload,
		Graph: &graph.Spec{
			Name:     "storage-cache",
			Dominant: "db",
			Nodes: []graph.Node{
				{
					Name: "api", Components: 6, BaseServiceTime: 0.00025,
					Demand: cluster.Vector{cluster.Core: 0.6, cluster.Cache: 4, cluster.DiskBW: 1, cluster.NetBW: 7},
					Calls: []graph.Call{
						{To: "cache"},
						{To: "logstore", Async: true},
					},
				},
				{
					Name: "cache", Components: 8,
					Storage: &graph.Storage{HitRatio: 0.85, HitTime: 0.00015, MissTime: 0.0009},
					Demand:  cluster.Vector{cluster.Core: 0.7, cluster.Cache: 8, cluster.DiskBW: 2, cluster.NetBW: 5},
					// The fall-through probability approximates the miss+stale
					// fraction that needs the backing store.
					Calls: []graph.Call{{To: "db", Prob: 0.35, Retries: 1, Backoff: 0.003}},
				},
				{
					Name: "db", Components: 12,
					Storage: &graph.Storage{
						HitRatio: 0.5, HitTime: 0.0006, MissTime: 0.0022,
						WriteFraction: 0.25, WriteTime: 0.0018,
					},
					Timeout: 0.015,
					Demand:  cluster.Vector{cluster.Core: 0.9, cluster.Cache: 6, cluster.DiskBW: 12, cluster.NetBW: 4},
				},
				{
					Name: "logstore", Components: 4,
					Storage: &graph.Storage{
						HitRatio: 0.7, HitTime: 0.0002, MissTime: 0.001,
						WriteFraction: 0.8, WriteTime: 0.0007,
					},
					Demand: cluster.Vector{cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 9, cluster.NetBW: 3},
				},
			},
		},
	})
	mustRegister(Scenario{
		Name: "circuit-storm",
		Description: "service DAG behind a circuit breaker hit by a 3× overload burst: the " +
			"upstream tier's tight deadline starts timing out under queue growth, consecutive " +
			"failures trip the breaker, fast-fails shed load through the cooldown, and " +
			"half-open probes close it again as the storm passes",
		Nodes:    24,
		Workload: dagWorkload,
		Steering: &Steering{
			RateSteps: []RateStep{
				{At: 0.35, Factor: 3},
				{At: 0.70, Factor: 1},
			},
		},
		Graph: &graph.Spec{
			Name:     "circuit-storm",
			Dominant: "upstream",
			Nodes: []graph.Node{
				{
					Name: "gateway", Components: 5, BaseServiceTime: 0.0002,
					Demand: cluster.Vector{cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 1, cluster.NetBW: 8},
					Calls:  []graph.Call{{To: "upstream", Retries: 1, Backoff: 0.003}},
				},
				{
					Name: "upstream", Components: 14, BaseServiceTime: 0.0007,
					Timeout: 0.006,
					Breaker: &graph.Breaker{Failures: 5, Cooldown: 0.5},
					Demand:  cluster.Vector{cluster.Core: 1.0, cluster.Cache: 7, cluster.DiskBW: 6, cluster.NetBW: 5},
					Calls:   []graph.Call{{To: "backend"}},
				},
				{Name: "backend", Components: 4, BaseServiceTime: 0.0003},
			},
		},
	})
	mustRegister(Scenario{
		Name: "dag-timeout",
		Description: "deadline-bounded aggregation DAG: ingress fans to a quick tier, a " +
			"heavy tier that gets one retry before its deadline fails the request, and a " +
			"flaky tier whose tight deadline has no retry budget at all — timed-out requests " +
			"are first-class outcomes, not long-tail completions",
		Nodes:    20,
		Workload: dagWorkload,
		Graph: &graph.Spec{
			Name:     "dag-timeout",
			Dominant: "heavy",
			Nodes: []graph.Node{
				{
					Name: "ingress", Components: 4, BaseServiceTime: 0.0002,
					Demand: cluster.Vector{cluster.Core: 0.5, cluster.Cache: 3, cluster.DiskBW: 1, cluster.NetBW: 7},
					Calls: []graph.Call{
						{To: "quick"},
						{To: "heavy", Retries: 1, Backoff: 0.004},
						{To: "flaky"},
					},
				},
				{Name: "quick", Components: 8, BaseServiceTime: 0.0003},
				{
					Name: "heavy", Components: 12, BaseServiceTime: 0.0008,
					Timeout: 0.008,
					Demand:  cluster.Vector{cluster.Core: 1.1, cluster.Cache: 8, cluster.DiskBW: 9, cluster.NetBW: 4},
					Calls:   []graph.Call{{To: "collate"}},
				},
				{Name: "flaky", Components: 6, BaseServiceTime: 0.0005, Timeout: 0.005},
				{Name: "collate", Components: 4, BaseServiceTime: 0.00025},
			},
		},
	})
}
