package scenario

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/traffic"
)

// graphQuartet are the built-in DAG scenarios.
var graphQuartet = []string{"fanout-retry", "storage-cache", "circuit-storm", "dag-timeout"}

// TestBuiltinGraphScenariosPresent pins the DAG quartet: each carries a
// graph spec, compiles to a runtime plan, derives a topology with one
// stage per node, and resizes its named dominant node under the
// -components knob (the derived DominantStage must point at it).
func TestBuiltinGraphScenariosPresent(t *testing.T) {
	for _, name := range graphQuartet {
		s := MustGet(name)
		if s.Graph == nil {
			t.Fatalf("%s: no graph spec", name)
		}
		if _, err := s.Graph.Plan(); err != nil {
			t.Fatalf("%s: plan: %v", name, err)
		}
		topo := s.Topology(0)
		if got, want := len(topo.Stages), len(s.Graph.Nodes); got != want {
			t.Fatalf("%s: derived topology has %d stages for %d nodes", name, got, want)
		}
		if got := s.Graph.Nodes[s.DominantStage].Name; got != s.Graph.Dominant {
			t.Fatalf("%s: derived dominant stage %d is node %q, spec names %q",
				name, s.DominantStage, got, s.Graph.Dominant)
		}
	}
}

// graphScenarioFixture is a minimal valid DAG scenario the error-naming
// tests mutate one field at a time.
func graphScenarioFixture(name string) Scenario {
	return Scenario{
		Name:        name,
		Description: "fixture",
		Nodes:       4,
		Workload:    WorkloadDefaults{BatchConcurrency: 1, MinInputMB: 1, MaxInputMB: 2},
		Graph: &graph.Spec{
			Name: name,
			Nodes: []graph.Node{
				{Name: "a", Components: 2, BaseServiceTime: 0.001, Calls: []graph.Call{{To: "b"}}},
				{Name: "b", Components: 2, BaseServiceTime: 0.001},
			},
		},
	}
}

// TestRegisterErrorsNameBadField pins the registry's error contract: a
// rejected registration names the scenario and the spec field at fault,
// so a bad entry reads as "fix this knob", never as a struct dump.
func TestRegisterErrorsNameBadField(t *testing.T) {
	cases := []struct {
		label  string
		want   []string
		mutate func(*Scenario)
	}{
		{"negative batch concurrency", []string{"BatchConcurrency"},
			func(s *Scenario) { s.Workload.BatchConcurrency = -1 }},
		{"zero min input", []string{"MinInputMB"},
			func(s *Scenario) { s.Workload.MinInputMB = 0 }},
		{"inverted input bounds", []string{"MaxInputMB", "MinInputMB"},
			func(s *Scenario) { s.Workload.MaxInputMB = 0.5 }},
		{"bad graph probability", []string{"graph spec:", "probability"},
			func(s *Scenario) { s.Graph.Nodes[0].Calls[0].Prob = 1.5 }},
		{"graph call cycle", []string{"graph spec:", "cycle"},
			func(s *Scenario) {
				s.Graph.Nodes[1].Calls = []graph.Call{{To: "a"}}
			}},
		{"node/stage count mismatch", []string{"2 nodes", "1 stages"},
			func(s *Scenario) {
				s.Topology = func(fanOut int) service.Topology {
					return service.Topology{Name: "t", Stages: []service.StageSpec{
						{Name: "only", Components: 1, BaseServiceTime: 0.001,
							Demand: service.NutchTopology(1).Stages[0].Demand},
					}}
				}
			}},
		{"bad policy kind", []string{"policy spec:"},
			func(s *Scenario) { s.Policy = &policy.Spec{Kind: "warp-drive"} }},
		{"bad traffic kind", []string{"traffic spec:"},
			func(s *Scenario) { s.Traffic = &traffic.Spec{Kind: "warp-drive"} }},
	}
	for _, tc := range cases {
		s := graphScenarioFixture("err-" + strings.ReplaceAll(tc.label, " ", "-"))
		tc.mutate(&s)
		err := Register(s)
		if err == nil {
			t.Errorf("%s: Register accepted the scenario", tc.label)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, s.Name) {
			t.Errorf("%s: error does not name the scenario: %v", tc.label, err)
		}
		for _, want := range tc.want {
			if !strings.Contains(msg, want) {
				t.Errorf("%s: error does not name the field (%q missing): %v", tc.label, want, err)
			}
		}
	}
}
