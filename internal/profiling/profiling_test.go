package profiling

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/service"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestMeasureServiceTimeConverges(t *testing.T) {
	law := service.DefaultLaw(cluster.DefaultCapacity())
	bg := cluster.DefaultCapacity().Scale(0.4)
	want := law.MeanServiceTime(0.001, bg)
	got := MeasureServiceTime(law, 0.001, bg, 20000, xrand.New(1))
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("measured %v, law mean %v", got, want)
	}
}

func TestProfileBackgroundsShapesAndClamping(t *testing.T) {
	law := service.DefaultLaw(cluster.DefaultCapacity())
	over := cluster.DefaultCapacity().Scale(3) // beyond capacity
	under := cluster.DefaultCapacity().Scale(0.2)
	samples := ProfileBackgrounds(law, 0.001, []cluster.Vector{over, under}, Config{
		Probes: 50, Repeats: 2, MonitorNoiseSigma: 0,
	}, xrand.New(2))
	if len(samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(samples))
	}
	cap := law.Capacity
	for _, s := range samples[:2] {
		for r := 0; r < cluster.NumResources; r++ {
			if s.U[r] > cap[r]+1e-9 {
				t.Fatalf("profiled U not clamped at capacity: %v", s.U)
			}
		}
	}
	for _, s := range samples {
		if s.X <= 0 {
			t.Fatalf("non-positive measured service time %v", s.X)
		}
	}
}

func TestTrainStageModelsEndToEnd(t *testing.T) {
	topo := service.NutchTopology(10)
	law := service.DefaultLaw(cluster.DefaultCapacity())
	backgrounds := workload.TrainingMixes(xrand.New(3), 50, 3, 1, 8192)
	models, err := TrainStageModels(topo, law, backgrounds, Config{Probes: 100, Degree: 1}, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("models = %d", len(models))
	}
	// The Eq. 1 combined model is only unbiased on the training
	// distribution (each single-feature regression conditions on the
	// correlated co-features), so we assert the properties scheduling
	// needs: positive predictions, monotone growth in contention, and
	// stage ordering (searching has the largest base time).
	mid := cluster.DefaultCapacity().Scale(0.3)
	high := cluster.DefaultCapacity().Scale(0.8)
	for si, m := range models {
		lo, hi := m.Predict(mid), m.Predict(high)
		if lo <= 0 || hi <= 0 {
			t.Errorf("stage %d: non-positive predictions %v, %v", si, lo, hi)
		}
		if hi <= lo {
			t.Errorf("stage %d: prediction not increasing in contention (%v → %v)", si, lo, hi)
		}
	}
	if models[1].Predict(mid) <= models[0].Predict(mid) {
		t.Error("searching should be slower than segmenting")
	}
	if models[1].Predict(mid) <= models[2].Predict(mid) {
		t.Error("searching should be slower than aggregating")
	}
}

func TestTrainStageModelsErrorOnNoBackgrounds(t *testing.T) {
	topo := service.NutchTopology(5)
	law := service.DefaultLaw(cluster.DefaultCapacity())
	if _, err := TrainStageModels(topo, law, nil, Config{}, xrand.New(5)); err == nil {
		t.Fatal("no backgrounds accepted")
	}
}

func TestProfiledModelPredictsHeldOutMixes(t *testing.T) {
	// The full chain: profile on one set of mixes, predict another.
	law := service.DefaultLaw(cluster.DefaultCapacity())
	train := workload.TrainingMixes(xrand.New(6), 120, 3, 1, 8192)
	samples := ProfileBackgrounds(law, 0.0008, train, Config{Probes: 200, MonitorNoiseSigma: 0.02}, xrand.New(7))
	model, err := predictor.Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	test := workload.TrainingMixes(xrand.New(8), 40, 3, 1, 8192)
	var errSum float64
	for _, bg := range test {
		want := law.MeanServiceTime(0.0008, bg)
		got := model.Predict(bg.Clamp(law.Capacity))
		errSum += math.Abs(got-want) / want
	}
	if avg := errSum / float64(len(test)); avg > 0.12 {
		t.Fatalf("held-out error = %.1f%%, want < 12%%", avg*100)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Probes != 300 || cfg.Repeats != 1 || cfg.Degree != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
