// Package profiling implements the offline profiling runs the paper trains
// its regressions from (§IV-A: "training samples are obtained from
// profiling runs or historical running logs").
//
// A profiling run co-locates one component with a configured background on
// an otherwise idle node, issues a batch of probe requests back-to-back,
// and records the measured mean service time against the (noisily)
// monitored contention vector. The predictor only ever sees these
// measurements — never the simulator's ground-truth law directly.
package profiling

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/service"
	"repro/internal/xrand"
)

// Config controls profiling fidelity.
type Config struct {
	// Probes is the number of probe requests averaged per sample. The
	// sample's measurement error shrinks as 1/√Probes.
	Probes int
	// MonitorNoiseSigma is the relative noise on the recorded contention
	// vector, mirroring monitor.Config.NoiseSigma.
	MonitorNoiseSigma float64
	// Repeats is how many samples to take per background configuration.
	Repeats int
	// Degree is the polynomial degree of the per-resource regressions.
	Degree int
}

func (c Config) withDefaults() Config {
	if c.Probes <= 0 {
		c.Probes = 300
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.Degree <= 0 {
		c.Degree = 2
	}
	return c
}

// MeasureServiceTime runs one profiling measurement: the mean of `probes`
// service-time draws for a component with the given base time under the
// given background contention. This is what a real profiling run measures
// by timing back-to-back probe requests.
func MeasureServiceTime(law service.InterferenceLaw, base float64, background cluster.Vector, probes int, src *xrand.Source) float64 {
	sum := 0.0
	for p := 0; p < probes; p++ {
		sum += law.Sample(base, background, src)
	}
	return sum / float64(probes)
}

// ProfileBackgrounds produces one training sample per background
// configuration (times Repeats): the noisy monitored contention vector
// paired with the measured mean service time.
func ProfileBackgrounds(law service.InterferenceLaw, base float64, backgrounds []cluster.Vector, cfg Config, src *xrand.Source) []predictor.Sample {
	cfg = cfg.withDefaults()
	samples := make([]predictor.Sample, 0, len(backgrounds)*cfg.Repeats)
	for _, bg := range backgrounds {
		for rep := 0; rep < cfg.Repeats; rep++ {
			// Record what the monitor would observe: contention saturates
			// at node capacity (node.Contention clamps the same way), plus
			// measurement noise. Training inputs must live on the same
			// scale as the runtime monitor's readings.
			u := bg.Clamp(law.Capacity)
			if cfg.MonitorNoiseSigma > 0 {
				for r := 0; r < cluster.NumResources; r++ {
					u[r] *= src.LogNormalMean(1, cfg.MonitorNoiseSigma)
				}
			}
			x := MeasureServiceTime(law, base, bg, cfg.Probes, src)
			samples = append(samples, predictor.Sample{U: u, X: x})
		}
	}
	return samples
}

// TrainStageModels profiles and trains one service-time model per stage of
// the topology. Only one component per stage class needs profiling — the
// paper's scalability argument (§VI-D) — because components of a stage are
// homogeneous.
func TrainStageModels(topo service.Topology, law service.InterferenceLaw, backgrounds []cluster.Vector, cfg Config, src *xrand.Source) ([]*predictor.ServiceTimeModel, error) {
	cfg = cfg.withDefaults()
	models := make([]*predictor.ServiceTimeModel, len(topo.Stages))
	for si, spec := range topo.Stages {
		samples := ProfileBackgrounds(law, spec.BaseServiceTime, backgrounds, cfg, src)
		m, err := predictor.Train(samples, cfg.Degree)
		if err != nil {
			return nil, fmt.Errorf("profiling: training stage %d (%s): %w", si, spec.Name, err)
		}
		models[si] = m
	}
	return models, nil
}
