// Package profiling implements the offline profiling runs the paper trains
// its regressions from (§IV-A: "training samples are obtained from
// profiling runs or historical running logs").
//
// A profiling run co-locates one component with a configured background on
// an otherwise idle node, issues a batch of probe requests back-to-back,
// and records the measured mean service time against the (noisily)
// monitored contention vector. The predictor only ever sees these
// measurements — never the simulator's ground-truth law directly.
package profiling

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/xrand"
)

// Config controls profiling fidelity.
type Config struct {
	// Probes is the number of probe requests averaged per sample. The
	// sample's measurement error shrinks as 1/√Probes.
	Probes int
	// MonitorNoiseSigma is the relative noise on the recorded contention
	// vector, mirroring monitor.Config.NoiseSigma.
	MonitorNoiseSigma float64
	// Repeats is how many samples to take per background configuration.
	Repeats int
	// Degree is the polynomial degree of the per-resource regressions.
	Degree int
	// Pool, when non-nil, shards TrainStageModels' profiling measurements
	// across its workers. Each (stage, background) measurement draws from
	// its own stream forked in canonical order and fills its own sample
	// slot, so the training set — and the trained models — are
	// bit-identical at any shard count. Nil profiles inline.
	Pool *shard.Pool
}

func (c Config) withDefaults() Config {
	if c.Probes <= 0 {
		c.Probes = 300
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	if c.Degree <= 0 {
		c.Degree = 2
	}
	return c
}

// MeasureServiceTime runs one profiling measurement: the mean of `probes`
// service-time draws for a component with the given base time under the
// given background contention. This is what a real profiling run measures
// by timing back-to-back probe requests.
func MeasureServiceTime(law service.InterferenceLaw, base float64, background cluster.Vector, probes int, src *xrand.Source) float64 {
	sum := 0.0
	for p := 0; p < probes; p++ {
		sum += law.Sample(base, background, src)
	}
	return sum / float64(probes)
}

// ProfileBackgrounds produces one training sample per background
// configuration (times Repeats): the noisy monitored contention vector
// paired with the measured mean service time.
func ProfileBackgrounds(law service.InterferenceLaw, base float64, backgrounds []cluster.Vector, cfg Config, src *xrand.Source) []predictor.Sample {
	cfg = cfg.withDefaults()
	samples := make([]predictor.Sample, len(backgrounds)*cfg.Repeats)
	for bi, bg := range backgrounds {
		profileOne(law, base, bg, cfg, src, samples[bi*cfg.Repeats:(bi+1)*cfg.Repeats])
	}
	return samples
}

// profileOne is one profiling unit: Repeats samples of one component class
// under one background, drawn from the given stream (its own, when units
// fan out across a pool). Each sample records what the monitor would
// observe — contention saturated at node capacity (node.Contention clamps
// the same way) plus measurement noise — because training inputs must live
// on the same scale as the runtime monitor's readings.
func profileOne(law service.InterferenceLaw, base float64, bg cluster.Vector, cfg Config, src *xrand.Source, out []predictor.Sample) {
	for rep := 0; rep < cfg.Repeats; rep++ {
		u := bg.Clamp(law.Capacity)
		if cfg.MonitorNoiseSigma > 0 {
			for r := 0; r < cluster.NumResources; r++ {
				u[r] *= src.LogNormalMean(1, cfg.MonitorNoiseSigma)
			}
		}
		out[rep] = predictor.Sample{U: u, X: MeasureServiceTime(law, base, bg, cfg.Probes, src)}
	}
}

// TrainStageModels profiles and trains one service-time model per stage of
// the topology. Only one component per stage class needs profiling — the
// paper's scalability argument (§VI-D) — because components of a stage are
// homogeneous.
//
// Profiling dominates PCS's setup cost (stages × backgrounds × probes
// service-time draws), and its units are independent, so this is the
// largest sharded region of a run: one stream per (stage, background)
// unit, forked in canonical order up front; units fan out across the
// pool's workers and their samples fold back in (stage, background,
// repeat) order before each stage's regression is fit.
func TrainStageModels(topo service.Topology, law service.InterferenceLaw, backgrounds []cluster.Vector, cfg Config, src *xrand.Source) ([]*predictor.ServiceTimeModel, error) {
	cfg = cfg.withDefaults()
	nStages, nbg := len(topo.Stages), len(backgrounds)
	units := nStages * nbg
	srcs := make([]*xrand.Source, units)
	for u := range srcs {
		srcs[u] = src.Fork()
	}
	samples := make([]predictor.Sample, units*cfg.Repeats)
	cfg.Pool.Run(units, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			spec := topo.Stages[u/nbg]
			profileOne(law, spec.BaseServiceTime, backgrounds[u%nbg], cfg, srcs[u],
				samples[u*cfg.Repeats:(u+1)*cfg.Repeats])
		}
	})

	models := make([]*predictor.ServiceTimeModel, nStages)
	for si, spec := range topo.Stages {
		stageSamples := samples[si*nbg*cfg.Repeats : (si+1)*nbg*cfg.Repeats]
		m, err := predictor.Train(stageSamples, cfg.Degree)
		if err != nil {
			return nil, fmt.Errorf("profiling: training stage %d (%s): %w", si, spec.Name, err)
		}
		models[si] = m
	}
	return models, nil
}
