package graph

import (
	"encoding/json"
	"testing"
)

// FuzzSpecValidate pins the authoring surface against arbitrary JSON: a
// decoded Spec either fails Validate with an error, or compiles all the
// way — Plan succeeds, the plan keeps the spec's shape with at least one
// entry node, and the derived topology is itself valid at any fan-out.
// Nothing on this path may panic, whatever the bytes say.
func FuzzSpecValidate(f *testing.F) {
	f.Add([]byte(`{"Name":"g","Nodes":[
		{"Name":"a","Components":2,"BaseServiceTime":0.001,
		 "Calls":[{"To":"b","Prob":0.5,"Retries":2,"Backoff":0.002},{"To":"c","Async":true}]},
		{"Name":"b","Components":4,"BaseServiceTime":0.002,"Timeout":0.01,
		 "Breaker":{"Failures":3,"Cooldown":0.5}},
		{"Name":"c","Components":1,
		 "Storage":{"HitRatio":0.9,"HitTime":0.0001,"MissTime":0.001,"WriteFraction":0.2,"WriteTime":0.0005}}]}`))
	f.Add([]byte(`{"Name":"loop","Nodes":[
		{"Name":"a","Components":1,"BaseServiceTime":1,"Calls":[{"To":"b"}]},
		{"Name":"b","Components":1,"BaseServiceTime":1,"Calls":[{"To":"a"}]}]}`))
	f.Add([]byte(`{"Name":"bad","Nodes":[{"Name":"a","Components":1,"BaseServiceTime":1,
		"Storage":{"HitRatio":2}}]}`))
	f.Add([]byte(`{"Name":"demand","Dominant":"a","Nodes":[
		{"Name":"a","Components":8,"BaseServiceTime":0.003,"Demand":[0.5,3,1,7]}]}`))
	f.Add([]byte(`{"Nodes":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Spec
		if json.Unmarshal(data, &s) != nil {
			return
		}
		if s.Validate() != nil {
			return
		}
		p, err := s.Plan()
		if err != nil {
			t.Fatalf("spec passed Validate but Plan failed: %v", err)
		}
		if len(p.Nodes) != len(s.Nodes) {
			t.Fatalf("plan has %d nodes for a %d-node spec", len(p.Nodes), len(s.Nodes))
		}
		if len(p.Entries) == 0 {
			t.Fatal("acyclic graph compiled with no entry nodes")
		}
		for _, n := range p.Nodes {
			for _, c := range n.Calls {
				if !(c.Prob > 0 && c.Prob <= 1) {
					t.Fatalf("plan call carries unusable probability %g", c.Prob)
				}
				if c.Retries > 0 && c.Backoff <= 0 {
					t.Fatalf("plan call has %d retries but backoff %g", c.Retries, c.Backoff)
				}
			}
		}
		for _, fan := range []int{0, 8} {
			topo := s.Topology(fan)
			if err := topo.Validate(); err != nil {
				t.Fatalf("valid spec produced invalid topology at fanOut %d: %v", fan, err)
			}
		}
	})
}
