// Package graph is the pure-data authoring surface for service-DAG
// scenarios: a Spec describes nodes (stages) wired by calls with
// branching probabilities, sync/async fan-out, per-edge retries with
// exponential backoff, per-node timeouts and circuit breakers, and
// storage-backend nodes whose per-operation service times depend on a
// cache hit ratio and a read/write mix. Specs mirror policy.Spec and
// traffic.Spec: plain data with Validate, compiled by Plan into the
// runtime service.GraphPlan and by Topology into the deployment's stage
// list, so a DAG scenario registers and runs like any other.
package graph

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/service"
)

// Authoring bounds and defaults. Validate enforces the bounds; Plan
// applies the defaults, so a Spec stays plain data with meaningful zero
// values.
const (
	// MaxNodes bounds a graph's node count.
	MaxNodes = 64
	// MaxComponents bounds one node's component fan-out.
	MaxComponents = 1024
	// MaxRetries bounds one call's retry budget.
	MaxRetries = 8
	// DefaultBackoff is the first-retry delay (seconds) for calls that
	// set Retries but leave Backoff zero.
	DefaultBackoff = 0.005
	// DefaultBreakerFailures and DefaultBreakerCooldown fill a Breaker's
	// zero fields: trip after 5 consecutive failures, hold open 1 s.
	DefaultBreakerFailures = 5
	DefaultBreakerCooldown = 1.0
)

// defaultDemand is the VM footprint used for nodes that leave Demand
// zero — a mid-weight tier comparable to the built-in topologies.
var defaultDemand = cluster.Vector{
	cluster.Core: 0.6, cluster.Cache: 4, cluster.DiskBW: 3, cluster.NetBW: 4,
}

// Spec is a declarative service DAG. Node order is stage order: node i of
// the spec executes as stage i of the deployment's topology.
type Spec struct {
	// Name identifies the graph in errors and reports.
	Name string
	// Dominant names the node whose fan-out the run's -components knob
	// resizes (the nutch "searching" role); empty selects the widest
	// node.
	Dominant string
	// Nodes are the DAG's nodes; calls reference them by name.
	Nodes []Node
}

// Node is one DAG node: a service tier with failure semantics and
// out-edges.
type Node struct {
	// Name identifies the node; unique within the spec and non-empty.
	Name string
	// Components is the node's parallel fan-out (the stage's component
	// count).
	Components int
	// BaseServiceTime is the mean nominal service time in seconds of one
	// sub-request; required unless Storage is set (which derives it from
	// the operation mix), in which case it must stay zero.
	BaseServiceTime float64
	// Demand is the VM footprint of one component instance; the zero
	// vector selects a mid-weight default.
	Demand cluster.Vector
	// Timeout is the visit deadline in seconds; 0 disables it.
	Timeout float64
	// Breaker, when non-nil, puts a circuit breaker in front of the
	// node; zero fields take the package defaults.
	Breaker *Breaker
	// Storage, when non-nil, makes the node a storage backend with
	// per-operation service times.
	Storage *Storage
	// Calls are the node's out-edges, followed when a visit to it
	// succeeds.
	Calls []Call
}

// Call is one out-edge of a node.
type Call struct {
	// To names the callee node.
	To string
	// Prob is the branching probability; 0 means 1 (always call),
	// otherwise it must lie in (0, 1].
	Prob float64
	// Async marks the call fire-and-forget: the request never waits for
	// it and failures below it are swallowed.
	Async bool
	// Retries is how many times a failed visit over this edge is retried
	// (0..MaxRetries).
	Retries int
	// Backoff is the delay in seconds before the first retry, doubling
	// each further attempt; 0 with Retries set selects DefaultBackoff.
	Backoff float64
}

// Breaker configures a node's circuit breaker.
type Breaker struct {
	// Failures is the consecutive-failure count that opens the circuit;
	// 0 selects DefaultBreakerFailures.
	Failures int
	// Cooldown is the seconds an open circuit waits before admitting a
	// half-open probe; 0 selects DefaultBreakerCooldown.
	Cooldown float64
}

// Storage configures a storage-backend node. Each sub-request draws one
// operation: a write with probability WriteFraction, otherwise a read
// that hits the cache tier with probability HitRatio.
type Storage struct {
	// HitRatio is the cache hit probability of a read, in [0, 1].
	HitRatio float64
	// HitTime and MissTime are the nominal service times in seconds of a
	// cache hit and of a read falling through to the backing store.
	HitTime  float64
	MissTime float64
	// WriteFraction is the probability an operation is a write, in
	// [0, 1); WriteTime is a write's nominal service time, required when
	// WriteFraction is positive.
	WriteFraction float64
	WriteTime     float64
}

// posFinite reports whether x is a positive finite number (rejects NaN
// and infinities, which JSON-authored specs can smuggle in).
func posFinite(x float64) bool { return x > 0 && !math.IsInf(x, 1) }

// finiteInUnit reports whether x lies in [0, 1] (NaN fails).
func finiteInUnit(x float64) bool { return x >= 0 && x <= 1 }

// Validate checks the spec is a well-formed DAG without constructing
// anything. Errors name the graph, node and field at fault.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("graph: spec has no name")
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("graph %q: no nodes", s.Name)
	}
	if len(s.Nodes) > MaxNodes {
		return fmt.Errorf("graph %q: %d nodes exceed the %d-node bound", s.Name, len(s.Nodes), MaxNodes)
	}
	index := make(map[string]int, len(s.Nodes))
	for i, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("graph %q: node %d has no name", s.Name, i)
		}
		if _, dup := index[n.Name]; dup {
			return fmt.Errorf("graph %q: duplicate node %q", s.Name, n.Name)
		}
		index[n.Name] = i
	}
	if s.Dominant != "" {
		if _, ok := index[s.Dominant]; !ok {
			return fmt.Errorf("graph %q: dominant node %q does not exist", s.Name, s.Dominant)
		}
	}
	for _, n := range s.Nodes {
		if err := n.validate(s.Name, index); err != nil {
			return err
		}
	}
	return s.checkAcyclic(index)
}

// validate checks one node's fields and edges.
func (n *Node) validate(graphName string, index map[string]int) error {
	at := func(format string, args ...any) error {
		return fmt.Errorf("graph %q: node %q: %s", graphName, n.Name, fmt.Sprintf(format, args...))
	}
	if n.Components < 1 || n.Components > MaxComponents {
		return at("components must be in [1, %d], got %d", MaxComponents, n.Components)
	}
	if st := n.Storage; st != nil {
		if n.BaseServiceTime != 0 {
			return at("sets both a base service time and a storage profile; storage nodes derive their mean from the operation mix")
		}
		if !finiteInUnit(st.HitRatio) {
			return at("storage hit ratio must be in [0, 1], got %g", st.HitRatio)
		}
		if !posFinite(st.HitTime) {
			return at("storage hit time must be positive, got %g", st.HitTime)
		}
		if !posFinite(st.MissTime) {
			return at("storage miss time must be positive, got %g", st.MissTime)
		}
		if !(st.WriteFraction >= 0 && st.WriteFraction < 1) {
			return at("storage write fraction must be in [0, 1), got %g", st.WriteFraction)
		}
		if st.WriteFraction > 0 && !posFinite(st.WriteTime) {
			return at("storage write time must be positive when writes occur, got %g", st.WriteTime)
		}
		if st.WriteFraction == 0 && st.WriteTime != 0 {
			return at("storage sets a write time without a write fraction")
		}
	} else if !posFinite(n.BaseServiceTime) {
		return at("base service time must be positive, got %g", n.BaseServiceTime)
	}
	if !(n.Timeout >= 0) || math.IsInf(n.Timeout, 1) {
		return at("timeout must be a finite non-negative number of seconds, got %g", n.Timeout)
	}
	for _, d := range n.Demand {
		if !(d >= 0) || math.IsInf(d, 1) {
			return at("demand entries must be finite and non-negative, got %v", n.Demand)
		}
	}
	if b := n.Breaker; b != nil {
		if b.Failures < 0 {
			return at("breaker failure threshold must be non-negative, got %d", b.Failures)
		}
		if !(b.Cooldown >= 0) || math.IsInf(b.Cooldown, 1) {
			return at("breaker cooldown must be a finite non-negative number of seconds, got %g", b.Cooldown)
		}
	}
	for ci, c := range n.Calls {
		atc := func(format string, args ...any) error {
			return fmt.Errorf("graph %q: node %q: call %d → %q: %s",
				graphName, n.Name, ci, c.To, fmt.Sprintf(format, args...))
		}
		if c.To == "" {
			return atc("no callee")
		}
		if _, ok := index[c.To]; !ok {
			return atc("callee does not exist")
		}
		if c.To == n.Name {
			return atc("a node cannot call itself")
		}
		if !finiteInUnit(c.Prob) {
			return atc("probability must be in [0, 1] (0 means always), got %g", c.Prob)
		}
		if c.Retries < 0 || c.Retries > MaxRetries {
			return atc("retries must be in [0, %d], got %d", MaxRetries, c.Retries)
		}
		if !(c.Backoff >= 0) || math.IsInf(c.Backoff, 1) {
			return atc("backoff must be a finite non-negative number of seconds, got %g", c.Backoff)
		}
		if c.Backoff > 0 && c.Retries == 0 {
			return atc("sets a backoff without retries")
		}
	}
	return nil
}

// checkAcyclic rejects call cycles via Kahn's algorithm; any node left
// with incoming edges after peeling sits on a cycle.
func (s *Spec) checkAcyclic(index map[string]int) error {
	indeg := make([]int, len(s.Nodes))
	for _, n := range s.Nodes {
		for _, c := range n.Calls {
			indeg[index[c.To]]++
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, c := range s.Nodes[i].Calls {
			j := index[c.To]
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != len(s.Nodes) {
		for i, d := range indeg {
			if d > 0 {
				return fmt.Errorf("graph %q: call cycle through node %q", s.Name, s.Nodes[i].Name)
			}
		}
	}
	return nil
}

// DominantIndex returns the stage index the -components knob resizes: the
// Dominant node if named, otherwise the widest node (first wins on ties).
// The spec must be valid.
func (s *Spec) DominantIndex() int {
	if s.Dominant != "" {
		for i, n := range s.Nodes {
			if n.Name == s.Dominant {
				return i
			}
		}
	}
	best := 0
	for i, n := range s.Nodes {
		if n.Components > s.Nodes[best].Components {
			best = i
		}
	}
	return best
}

// nominalServiceTime is the node's mean nominal work: the base service
// time, or the storage profile's expected operation time.
func (n *Node) nominalServiceTime() float64 {
	if n.Storage != nil {
		rt := service.GraphStorage(*n.Storage)
		return rt.ExpectedServiceTime()
	}
	return n.BaseServiceTime
}

// Topology compiles the spec's nodes into the deployment's stage list,
// one stage per node in spec order. fanOut, when positive, resizes the
// dominant node's component count (the run's -components knob); storage
// nodes publish their expected mean as the stage's base service time so
// profiling and reissue estimates see the true average work. The spec
// must be valid (Plan and the scenario registry validate first).
func (s *Spec) Topology(fanOut int) service.Topology {
	dom := s.DominantIndex()
	stages := make([]service.StageSpec, len(s.Nodes))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		comps := n.Components
		if i == dom && fanOut > 0 {
			comps = fanOut
		}
		demand := n.Demand
		if demand == (cluster.Vector{}) {
			demand = defaultDemand
		}
		stages[i] = service.StageSpec{
			Name:            n.Name,
			Components:      comps,
			BaseServiceTime: n.nominalServiceTime(),
			Demand:          demand,
		}
	}
	return service.Topology{Name: s.Name, Stages: stages}
}

// Plan validates the spec and compiles it into the runtime
// service.GraphPlan, applying the package defaults (branch probability 0
// → 1, backoff 0 → DefaultBackoff, zero breaker fields → the default
// trip threshold and cooldown) and resolving call names to node indices.
func (s *Spec) Plan() (*service.GraphPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	index := make(map[string]int, len(s.Nodes))
	for i, n := range s.Nodes {
		index[n.Name] = i
	}
	p := &service.GraphPlan{Name: s.Name, Nodes: make([]service.GraphNode, len(s.Nodes))}
	callee := make([]bool, len(s.Nodes))
	for i := range s.Nodes {
		n := &s.Nodes[i]
		rn := service.GraphNode{Name: n.Name, Timeout: n.Timeout}
		if b := n.Breaker; b != nil {
			rb := service.GraphBreaker{Failures: b.Failures, Cooldown: b.Cooldown}
			if rb.Failures == 0 {
				rb.Failures = DefaultBreakerFailures
			}
			if rb.Cooldown == 0 {
				rb.Cooldown = DefaultBreakerCooldown
			}
			rn.Breaker = &rb
		}
		if st := n.Storage; st != nil {
			rs := service.GraphStorage(*st)
			rn.Storage = &rs
		}
		rn.Calls = make([]service.GraphCall, len(n.Calls))
		for ci, c := range n.Calls {
			rc := service.GraphCall{
				To:      index[c.To],
				Prob:    c.Prob,
				Async:   c.Async,
				Retries: c.Retries,
				Backoff: c.Backoff,
			}
			if rc.Prob == 0 {
				rc.Prob = 1
			}
			if rc.Retries > 0 && rc.Backoff == 0 {
				rc.Backoff = DefaultBackoff
			}
			callee[rc.To] = true
			rn.Calls[ci] = rc
		}
		p.Nodes[i] = rn
	}
	for i, c := range callee {
		if !c {
			p.Entries = append(p.Entries, i)
		}
	}
	return p, nil
}
