package graph

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// validSpec is a small spec touching every authoring feature: branching,
// async fan-out, retries, a timeout, a breaker and a storage node.
func validSpec() Spec {
	return Spec{
		Name:     "t",
		Dominant: "b",
		Nodes: []Node{
			{Name: "a", Components: 2, BaseServiceTime: 0.001, Calls: []Call{
				{To: "b", Prob: 0.5, Retries: 2},
				{To: "c", Async: true},
			}},
			{Name: "b", Components: 4, BaseServiceTime: 0.002, Timeout: 0.01,
				Breaker: &Breaker{}},
			{Name: "c", Components: 1,
				Storage: &Storage{HitRatio: 0.8, HitTime: 0.0001, MissTime: 0.001,
					WriteFraction: 0.25, WriteTime: 0.0005}},
		},
	}
}

func TestValidateAcceptsFullSurface(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateErrorsNameTheField pins the error contract the scenario
// registry builds on: every rejection names the graph, the node (and
// call, where one is at fault) and the offending field.
func TestValidateErrorsNameTheField(t *testing.T) {
	cases := []struct {
		label  string
		want   string
		mutate func(*Spec)
	}{
		{"no name", "no name", func(s *Spec) { s.Name = "" }},
		{"no nodes", "no nodes", func(s *Spec) { s.Nodes = nil }},
		{"too many nodes", "node bound", func(s *Spec) {
			for i := 0; i < MaxNodes; i++ {
				s.Nodes = append(s.Nodes, Node{Name: "x"})
			}
		}},
		{"unnamed node", "has no name", func(s *Spec) { s.Nodes[1].Name = "" }},
		{"duplicate node", "duplicate node", func(s *Spec) { s.Nodes[2].Name = "a" }},
		{"unknown dominant", "dominant node", func(s *Spec) { s.Dominant = "zz" }},
		{"zero components", "components", func(s *Spec) { s.Nodes[0].Components = 0 }},
		{"nan service time", "base service time", func(s *Spec) { s.Nodes[0].BaseServiceTime = math.NaN() }},
		{"storage plus base time", "both", func(s *Spec) { s.Nodes[2].BaseServiceTime = 1 }},
		{"hit ratio above one", "hit ratio", func(s *Spec) { s.Nodes[2].Storage.HitRatio = 1.5 }},
		{"nan hit time", "hit time", func(s *Spec) { s.Nodes[2].Storage.HitTime = math.NaN() }},
		{"infinite miss time", "miss time", func(s *Spec) { s.Nodes[2].Storage.MissTime = math.Inf(1) }},
		{"write fraction of one", "write fraction", func(s *Spec) { s.Nodes[2].Storage.WriteFraction = 1 }},
		{"writes without time", "write time", func(s *Spec) { s.Nodes[2].Storage.WriteTime = 0 }},
		{"write time without writes", "write time", func(s *Spec) {
			s.Nodes[2].Storage.WriteFraction = 0
		}},
		{"negative timeout", "timeout", func(s *Spec) { s.Nodes[1].Timeout = -1 }},
		{"nan demand", "demand", func(s *Spec) { s.Nodes[0].Demand[cluster.Core] = math.NaN() }},
		{"negative breaker failures", "breaker failure", func(s *Spec) { s.Nodes[1].Breaker.Failures = -1 }},
		{"nan breaker cooldown", "breaker cooldown", func(s *Spec) { s.Nodes[1].Breaker.Cooldown = math.NaN() }},
		{"empty callee", "no callee", func(s *Spec) { s.Nodes[0].Calls[0].To = "" }},
		{"unknown callee", "does not exist", func(s *Spec) { s.Nodes[0].Calls[0].To = "zz" }},
		{"self call", "call itself", func(s *Spec) { s.Nodes[0].Calls[0].To = "a" }},
		{"probability above one", "probability", func(s *Spec) { s.Nodes[0].Calls[0].Prob = 2 }},
		{"nan probability", "probability", func(s *Spec) { s.Nodes[0].Calls[0].Prob = math.NaN() }},
		{"too many retries", "retries", func(s *Spec) { s.Nodes[0].Calls[0].Retries = MaxRetries + 1 }},
		{"negative backoff", "backoff", func(s *Spec) { s.Nodes[0].Calls[0].Backoff = -1 }},
		{"backoff without retries", "backoff without retries", func(s *Spec) {
			s.Nodes[0].Calls[1].Backoff = 0.001
		}},
		{"call cycle", "cycle", func(s *Spec) {
			s.Nodes[1].Calls = []Call{{To: "c"}}
			s.Nodes[2].Calls = []Call{{To: "b"}}
		}},
	}
	for _, tc := range cases {
		s := validSpec()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.label, err, tc.want)
		}
	}
}

// TestPlanAppliesDefaults pins Plan's zero-value semantics: probability
// 0 → 1, retrying calls get the default backoff, breaker zeros take the
// default threshold and cooldown, and entries are the non-callee nodes
// in spec order.
func TestPlanAppliesDefaults(t *testing.T) {
	s := validSpec()
	p, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	a := p.Nodes[0]
	if got := a.Calls[1].Prob; got != 1 {
		t.Errorf("unset probability compiled to %g, want 1", got)
	}
	if got := a.Calls[0].Backoff; got != DefaultBackoff {
		t.Errorf("unset backoff on a retrying call compiled to %g, want %g", got, DefaultBackoff)
	}
	if got := a.Calls[1].Backoff; got != 0 {
		t.Errorf("non-retrying call grew a backoff %g", got)
	}
	b := p.Nodes[1].Breaker
	if b == nil || b.Failures != DefaultBreakerFailures || b.Cooldown != DefaultBreakerCooldown {
		t.Errorf("zero breaker compiled to %+v, want defaults %d/%g",
			b, DefaultBreakerFailures, DefaultBreakerCooldown)
	}
	if len(p.Entries) != 1 || p.Entries[0] != 0 {
		t.Errorf("entries = %v, want [0]", p.Entries)
	}
	if p.Nodes[0].Calls[0].To != 1 || p.Nodes[0].Calls[1].To != 2 {
		t.Errorf("call targets resolved to %d and %d, want 1 and 2",
			p.Nodes[0].Calls[0].To, p.Nodes[0].Calls[1].To)
	}
}

// TestTopologyCompilation pins the stage list: one stage per node in
// order, fan-out resizing the dominant node only, the default demand for
// zero-demand nodes, and the storage profile's expected mean as the
// stage's base service time.
func TestTopologyCompilation(t *testing.T) {
	s := validSpec()
	topo := s.Topology(0)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Stages) != 3 || topo.Stages[0].Name != "a" || topo.Stages[2].Name != "c" {
		t.Fatalf("stage list %+v does not mirror node order", topo.Stages)
	}
	if got := topo.Stages[0].Demand; got != defaultDemand {
		t.Errorf("zero demand compiled to %v, want the package default", got)
	}
	// Expected storage mean: 0.25·write + 0.75·(0.8·hit + 0.2·miss).
	want := 0.25*0.0005 + 0.75*(0.8*0.0001+0.2*0.001)
	if got := topo.Stages[2].BaseServiceTime; math.Abs(got-want) > 1e-15 {
		t.Errorf("storage stage base time %g, want %g", got, want)
	}
	wide := s.Topology(32)
	if got := wide.Stages[1].Components; got != 32 {
		t.Errorf("fanOut resized dominant stage to %d, want 32", got)
	}
	if got := wide.Stages[0].Components; got != 2 {
		t.Errorf("fanOut leaked onto stage 0: %d components, want 2", got)
	}
}

func TestDominantIndex(t *testing.T) {
	s := validSpec()
	if got := s.DominantIndex(); got != 1 {
		t.Fatalf("named dominant resolved to %d, want 1", got)
	}
	s.Dominant = ""
	if got := s.DominantIndex(); got != 1 {
		t.Fatalf("widest-node fallback resolved to %d, want 1 (4 components)", got)
	}
}
