// Package xrand provides deterministic random-variate generation for the
// simulator: exponential, Poisson, lognormal, uniform and bounded-Pareto
// draws, plus an open-loop Poisson arrival process. Every source is seeded
// explicitly so that experiments are reproducible.
package xrand

import (
	"math"
	"math/rand"
)

// Source is a seeded random variate generator. It wraps math/rand.Rand and
// adds the distributions the workload and service models need.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with the given seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child source from this one. Use it to give
// each simulated entity its own stream so that adding entities does not
// perturb the draws of others.
func (s *Source) Fork() *Source {
	return New(s.r.Int63())
}

// StreamSeed derives the seed of stream i from a root seed. Stream 0 is the
// root seed itself, so single-stream consumers reproduce the unstreamed
// run bit for bit; streams i > 0 are SplitMix64 outputs, which are well
// distributed even for adjacent roots and indices. Unlike Fork, the
// derivation is positional — stream i's seed depends only on (root, i), so
// replications can be claimed by concurrent workers in any order without
// perturbing each other's draws.
func StreamSeed(root int64, i int) int64 {
	if i == 0 {
		return root
	}
	return int64(splitmix64(uint64(root) + uint64(i)*0x9e3779b97f4a7c15))
}

// splitmix64 is the finalizer of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators", OOPSLA 2014).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0, n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.r.Int63() }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Exp returns an exponential draw with the given mean (not rate). It panics
// if mean <= 0, which is a programming error.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: exponential mean must be positive")
	}
	return s.r.ExpFloat64() * mean
}

// Normal returns a normal draw with the given mean and standard deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return s.r.NormFloat64()*stddev + mean
}

// LogNormal returns a lognormal draw where the underlying normal has
// parameters mu and sigma. Its mean is exp(mu + sigma²/2).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.r.NormFloat64()*sigma + mu)
}

// LogNormalMean returns a lognormal draw with the given distribution mean
// and sigma parameter; it solves for mu so that E[X] = mean.
func (s *Source) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		panic("xrand: lognormal mean must be positive")
	}
	mu := math.Log(mean) - sigma*sigma/2
	return s.LogNormal(mu, sigma)
}

// BoundedPareto returns a draw from a Pareto distribution with shape alpha
// truncated to [lo, hi]. Heavy-tailed job sizes in the workload generator
// use this.
func (s *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("xrand: bounded pareto needs 0 < lo < hi and alpha > 0")
	}
	u := s.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		// Normal approximation with continuity correction.
		n := int(math.Round(s.Normal(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Choice returns a uniformly random index in [0, n) excluding the given
// index. It panics if n < 2.
func (s *Source) Choice(n, excluding int) int {
	if n < 2 {
		panic("xrand: Choice needs n >= 2")
	}
	i := s.r.Intn(n - 1)
	if i >= excluding {
		i++
	}
	return i
}

// Shuffle permutes xs in place.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// ArrivalProcess generates open-loop arrival timestamps. Interarrival times
// are exponential (a Poisson process, the M in the paper's M/G/1 model), and
// the rate can be changed mid-run to model diurnal load.
type ArrivalProcess struct {
	src  *Source
	rate float64 // arrivals per second
	now  float64
}

// NewArrivalProcess returns a Poisson arrival process with the given rate in
// arrivals per second, starting at time 0.
func NewArrivalProcess(src *Source, rate float64) *ArrivalProcess {
	if rate <= 0 {
		panic("xrand: arrival rate must be positive")
	}
	return &ArrivalProcess{src: src, rate: rate}
}

// Rate returns the current arrival rate.
func (p *ArrivalProcess) Rate() float64 { return p.rate }

// SetRate changes the arrival rate for subsequent draws.
func (p *ArrivalProcess) SetRate(rate float64) {
	if rate <= 0 {
		panic("xrand: arrival rate must be positive")
	}
	p.rate = rate
}

// Next advances the process and returns the absolute time of the next
// arrival in seconds.
func (p *ArrivalProcess) Next() float64 {
	p.now += p.src.Exp(1 / p.rate)
	return p.now
}
