package xrand

import (
	"math"
	"testing"
)

func TestDeterminismWithSameSeed(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(7)
	child := a.Fork()
	// The child stream must differ from the parent's continued stream.
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != child.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("forked source mirrors parent")
	}
}

func TestExpMean(t *testing.T) {
	src := New(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += src.Exp(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("exponential mean = %v, want ≈2.5", mean)
	}
}

func TestExpPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestLogNormalMean(t *testing.T) {
	src := New(2)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += src.LogNormalMean(3, 0.5)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.08 {
		t.Fatalf("lognormal mean = %v, want ≈3", mean)
	}
}

func TestLogNormalMeanPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogNormalMean(0, ...) did not panic")
		}
	}()
	New(1).LogNormalMean(0, 1)
}

func TestUniformRange(t *testing.T) {
	src := New(3)
	for i := 0; i < 1000; i++ {
		v := src.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	src := New(4)
	for i := 0; i < 5000; i++ {
		v := src.BoundedPareto(0.9, 1, 1000)
		if v < 1-1e-9 || v > 1000+1e-9 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestBoundedParetoSkewsLow(t *testing.T) {
	src := New(5)
	const n = 20000
	below := 0
	for i := 0; i < n; i++ {
		if src.BoundedPareto(1.0, 1, 1000) < 100 {
			below++
		}
	}
	// A Pareto with α=1 on [1,1000] puts the vast majority of mass below
	// a tenth of the range.
	if frac := float64(below) / n; frac < 0.85 {
		t.Fatalf("only %.2f of draws below 100; distribution not heavy at the low end", frac)
	}
}

func TestBoundedParetoPanicsOnBadParams(t *testing.T) {
	cases := [][3]float64{{0, 1, 2}, {1, 0, 2}, {1, 2, 2}, {1, 3, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BoundedPareto(%v) did not panic", c)
				}
			}()
			New(1).BoundedPareto(c[0], c[1], c[2])
		}()
	}
}

func TestPoissonMean(t *testing.T) {
	src := New(6)
	for _, mean := range []float64{0.5, 3, 20, 80} { // spans Knuth and normal-approx paths
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += src.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, got)
		}
	}
	if src.Poisson(0) != 0 || src.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestChoiceExcludes(t *testing.T) {
	src := New(7)
	for i := 0; i < 1000; i++ {
		got := src.Choice(5, 2)
		if got == 2 || got < 0 || got >= 5 {
			t.Fatalf("Choice(5, excluding 2) = %d", got)
		}
	}
}

func TestChoiceCoversAllOthers(t *testing.T) {
	src := New(8)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[src.Choice(4, 1)] = true
	}
	for _, want := range []int{0, 2, 3} {
		if !seen[want] {
			t.Fatalf("Choice never produced %d", want)
		}
	}
}

func TestChoicePanicsOnSmallN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(1, 0) did not panic")
		}
	}()
	New(1).Choice(1, 0)
}

func TestArrivalProcessRate(t *testing.T) {
	src := New(9)
	p := NewArrivalProcess(src, 50)
	const n = 50000
	var last float64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	rate := n / last
	if math.Abs(rate-50) > 1.5 {
		t.Fatalf("realised rate = %v, want ≈50", rate)
	}
}

func TestArrivalProcessMonotone(t *testing.T) {
	p := NewArrivalProcess(New(10), 100)
	prev := 0.0
	for i := 0; i < 1000; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatalf("arrival times not strictly increasing: %v after %v", next, prev)
		}
		prev = next
	}
}

func TestArrivalProcessSetRate(t *testing.T) {
	p := NewArrivalProcess(New(11), 10)
	if p.Rate() != 10 {
		t.Fatalf("Rate = %v", p.Rate())
	}
	p.SetRate(100)
	if p.Rate() != 100 {
		t.Fatalf("Rate after SetRate = %v", p.Rate())
	}
	start := p.Next()
	const n = 20000
	var last float64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	rate := n / (last - start)
	if math.Abs(rate-100) > 3 {
		t.Fatalf("realised rate after SetRate = %v, want ≈100", rate)
	}
}

func TestArrivalProcessPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArrivalProcess(rate=0) did not panic")
		}
	}()
	NewArrivalProcess(New(1), 0)
}

func TestNormalMoments(t *testing.T) {
	src := New(12)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestStreamSeedZeroIsRoot(t *testing.T) {
	for _, root := range []int64{0, 1, -5, 1 << 40} {
		if got := StreamSeed(root, 0); got != root {
			t.Fatalf("StreamSeed(%d, 0) = %d, want the root", root, got)
		}
	}
}

func TestStreamSeedsDistinct(t *testing.T) {
	// Adjacent roots and adjacent stream indices must not collide — the
	// runner derives every replication's seed this way.
	seen := make(map[int64]bool)
	for root := int64(0); root < 8; root++ {
		for i := 1; i < 64; i++ {
			s := StreamSeed(root, i)
			if seen[s] {
				t.Fatalf("seed collision at root=%d i=%d", root, i)
			}
			seen[s] = true
		}
	}
}

func TestStreamSeedDeterministic(t *testing.T) {
	if StreamSeed(99, 7) != StreamSeed(99, 7) {
		t.Fatal("StreamSeed is not a pure function")
	}
	a := New(StreamSeed(1, 3)).Float64()
	b := New(StreamSeed(1, 3)).Float64()
	if a != b {
		t.Fatal("sources from the same stream seed diverge")
	}
}
