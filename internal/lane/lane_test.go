package lane

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/shard"
	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.1, 4, nil); err == nil {
		t.Error("0 lanes accepted")
	}
	if _, err := New(2, 0, 4, nil); err == nil {
		t.Error("zero lookahead accepted")
	}
	if _, err := New(2, -1, 4, nil); err == nil {
		t.Error("negative lookahead accepted")
	}
	if _, err := New(2, 0.1, 0, nil); err == nil {
		t.Error("0 classes accepted")
	}
	if _, err := New(2, 0.1, 4, nil); err != nil {
		t.Errorf("valid plane rejected: %v", err)
	}
}

func TestHeapPopsInKeyOrder(t *testing.T) {
	ls := &laneState{}
	// Push in scrambled order; pops must come out sorted by
	// (at, src, seq) regardless.
	evs := []event{
		{at: 2, src: 0, seq: 0},
		{at: 1, src: 1, seq: 5},
		{at: 1, src: 0, seq: 9},
		{at: 1, src: 1, seq: 2},
		{at: 3, src: 2, seq: 0},
		{at: 1, src: 0, seq: 1},
	}
	for _, ev := range evs {
		ls.push(ev)
	}
	want := []event{
		{at: 1, src: 0, seq: 1},
		{at: 1, src: 0, seq: 9},
		{at: 1, src: 1, seq: 2},
		{at: 1, src: 1, seq: 5},
		{at: 2, src: 0, seq: 0},
		{at: 3, src: 2, seq: 0},
	}
	for i, w := range want {
		got := ls.pop()
		if got.at != w.at || got.src != w.src || got.seq != w.seq {
			t.Fatalf("pop %d = (%v,%d,%d), want (%v,%d,%d)",
				i, got.at, got.src, got.seq, w.at, w.src, w.seq)
		}
	}
}

// cascade schedules a deterministic message storm across classes and
// returns the per-class execution log: each class relays work to the next
// class (cross-class, one lookahead later) and to itself (same-class,
// arbitrarily soon), so the log exercises windows, run-ahead and outbox
// folding together.
func cascade(t *testing.T, lanes int, pool *shard.Pool) map[int][]string {
	t.Helper()
	const classes, depth = 5, 6
	const la = 0.001
	p, err := New(lanes, la, classes, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	log := make(map[int][]string)
	var relay func(cls, d int) sim.Event
	relay = func(cls, d int) sim.Event {
		return func(now float64) {
			log[cls] = append(log[cls], fmt.Sprintf("%d@%.6f", d, now))
			if d >= depth {
				return
			}
			next := (cls + 1) % classes
			p.Schedule(cls, next, now+la, relay(next, d+1))
			// Same-class follow-up well inside the lookahead: exercises
			// in-window run-ahead.
			p.Schedule(cls, cls, now+la/7, relay(cls, d+1))
		}
	}
	for c := 0; c < classes; c++ {
		p.Schedule(c, c, 0.01*float64(c+1), relay(c, 0))
	}
	p.Advance(eng, 1)
	if p.Pending() != 0 {
		t.Fatalf("lanes=%d: %d events left pending", lanes, p.Pending())
	}
	return log
}

func TestCascadeIdenticalAtAnyLaneCount(t *testing.T) {
	pool := shard.NewPool(4)
	defer pool.Close()
	want := cascade(t, 1, nil)
	for _, lanes := range []int{2, 3, 4} {
		got := cascade(t, lanes, pool)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("lanes=%d: per-class execution log diverged from lanes=1", lanes)
		}
	}
}

func TestAdvanceRunsDataBeforeControlAtEqualTimes(t *testing.T) {
	p, err := New(2, 0.001, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	var order []string
	eng.At(0.5, func(float64) { order = append(order, "control") })
	p.Schedule(0, 0, 0.5, func(float64) { order = append(order, "data") })
	p.Advance(eng, 1)
	want := []string{"data", "control"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if eng.Now() != 1 {
		t.Fatalf("clock = %v, want 1", eng.Now())
	}
}

func TestAdvanceHonorsHorizon(t *testing.T) {
	p, err := New(2, 0.001, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	fired := 0
	p.Schedule(0, 0, 0.5, func(float64) { fired++ })
	p.Schedule(1, 1, 2.0, func(float64) { fired++ })
	p.Advance(eng, 1)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (event beyond horizon ran)", fired)
	}
	if at, ok := p.NextEventTime(); !ok || at != 2.0 {
		t.Fatalf("NextEventTime = %v, %v; want 2.0, true", at, ok)
	}
	p.Advance(eng, 3)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if got := p.Fired(); got != 2 {
		t.Fatalf("Fired() = %d, want 2", got)
	}
}

func TestScheduleUnderLookaheadPanicsInWindow(t *testing.T) {
	pool := shard.NewPool(2)
	defer pool.Close()
	p, err := New(2, 0.01, 2, pool)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	panicked := make(chan interface{}, 1)
	// Two lanes must be active so the window takes the pooled path where
	// the outbox validates the conservative bound.
	p.Schedule(1, 1, 0.5, func(float64) {})
	p.Schedule(0, 0, 0.5, func(now float64) {
		defer func() { panicked <- recover() }()
		p.Schedule(0, 1, now+0.001, func(float64) {}) // under the 0.01 lookahead
	})
	p.Advance(eng, 1)
	if r := <-panicked; r == nil {
		t.Fatal("cross-lane send under the lookahead did not panic")
	}
}
