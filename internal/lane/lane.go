// Package lane runs the simulation's data plane as a conservative
// parallel discrete-event system. Every data-plane event carries an
// affinity class (one class per component instance, plus a root class for
// request bookkeeping); classes are partitioned across N lanes, each with
// its own event queue, and lanes execute concurrently inside windows
// bounded by the plane's lookahead — the minimum cross-class message
// delay the service physics guarantees.
//
// Determinism contract (the lane extension of internal/shard's rules):
//
//  1. Every event is keyed (fireTime, srcClass, srcSeq), where srcSeq is
//     the sending class's emission counter. The key is assigned by the
//     sender, so it is a pure function of the sender's deterministic
//     execution order — never of lane count or scheduling interleaving.
//  2. Each lane pops its queue in key order. Because class state is only
//     touched by that class's events, and srcClass/srcSeq totally order
//     same-time messages, every class observes an identical event
//     sequence at any lane count.
//  3. Cross-lane messages must fire at least one lookahead after their
//     send time. A window that processes events in [m, m+lookahead)
//     therefore cannot miss a message generated inside it: anything sent
//     by an event at time t ≥ m lands at t+lookahead ≥ m+lookahead,
//     beyond the window. Same-lane messages may fire sooner — the lane's
//     own heap keeps them in key order.
//  4. Lanes synchronize at a barrier after every window; cross-lane
//     messages are folded into the destination heaps there. Heap order is
//     the total key order, so fold order is irrelevant.
//
// Control-plane events (monitor ticks, demand refreshes, scheduling,
// policy evaluation, arrivals) stay on the sim.Engine; Advance interleaves
// them with lane windows so that at an engine event's fire time every
// data-plane event up to and including that time has executed
// (data-plane-before-control). Engine events therefore observe — and may
// freely mutate — lane-owned state: the lanes are parked at a barrier.
package lane

import (
	"fmt"
	"math"

	"repro/internal/shard"
	"repro/internal/sim"
)

// event is one scheduled data-plane callback with its canonical key.
type event struct {
	at  float64
	src int    // sending affinity class
	seq uint64 // sender's emission counter at send time
	fn  sim.Event
}

// keyLess is the canonical total order: (fireTime, srcClass, srcSeq).
// srcSeq is unique per class, so distinct events never compare equal and
// heap pop order is independent of insertion order.
func keyLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// laneState is one lane: a key-ordered event heap plus counters. A lane's
// heap is touched only by its own goroutine during a window and only by
// the coordinator between windows.
type laneState struct {
	heap  []event
	now   float64 // fire time of the event being (or last) processed
	fired uint64
}

func (ls *laneState) push(ev event) {
	ls.heap = append(ls.heap, ev)
	i := len(ls.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(ls.heap[i], ls.heap[parent]) {
			break
		}
		ls.heap[i], ls.heap[parent] = ls.heap[parent], ls.heap[i]
		i = parent
	}
}

func (ls *laneState) pop() event {
	top := ls.heap[0]
	n := len(ls.heap) - 1
	ls.heap[0] = ls.heap[n]
	ls.heap[n] = event{}
	ls.heap = ls.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && keyLess(ls.heap[l], ls.heap[least]) {
			least = l
		}
		if r < n && keyLess(ls.heap[r], ls.heap[least]) {
			least = r
		}
		if least == i {
			break
		}
		ls.heap[i], ls.heap[least] = ls.heap[least], ls.heap[i]
		i = least
	}
	return top
}

// Plane is the laned data plane. Construct with New, schedule data-plane
// events with Schedule, and drive it — interleaved with the control-plane
// engine — with Advance. A Plane is not safe for concurrent use by
// callers; concurrency happens only inside Advance's windows, between the
// lanes themselves.
type Plane struct {
	n         int
	lookahead float64
	pool      *shard.Pool

	lanes []*laneState
	seqs  []uint64 // per-class emission counters

	// outbox[src][dst] buffers cross-lane messages during a window; the
	// coordinator folds them into the destination heaps at the barrier.
	outbox [][][]event

	// inWindow marks that lane goroutines are running: cross-lane sends
	// must go through the outbox. Written by the coordinator around
	// pool.Run, whose channels order it against the lanes' reads.
	inWindow bool

	active []int // scratch: lanes eligible in the current window
}

// New builds a plane with n lanes. lookahead is the minimum cross-class
// message delay the caller's physics guarantees (seconds, > 0); classes
// names must stay below maxClasses. pool, when non-nil, supplies the
// worker goroutines windows fan out on (it may be shared with the
// control-plane shard regions — windows and shard regions never overlap);
// nil runs lanes inline, which with n == 1 is the zero-overhead case.
func New(n int, lookahead float64, maxClasses int, pool *shard.Pool) (*Plane, error) {
	if n < 1 {
		return nil, fmt.Errorf("lane: need at least 1 lane, got %d", n)
	}
	if !(lookahead > 0) {
		return nil, fmt.Errorf("lane: lookahead must be positive, got %g", lookahead)
	}
	if maxClasses < 1 {
		return nil, fmt.Errorf("lane: need at least 1 affinity class, got %d", maxClasses)
	}
	p := &Plane{
		n:         n,
		lookahead: lookahead,
		pool:      pool,
		lanes:     make([]*laneState, n),
		seqs:      make([]uint64, maxClasses),
		outbox:    make([][][]event, n),
		active:    make([]int, 0, n),
	}
	for i := range p.lanes {
		p.lanes[i] = &laneState{}
		p.outbox[i] = make([][]event, n)
	}
	return p, nil
}

// Lanes returns the lane count.
func (p *Plane) Lanes() int { return p.n }

// Lookahead returns the minimum cross-class message delay the plane
// synchronizes on.
func (p *Plane) Lookahead() float64 { return p.lookahead }

// Pending reports the number of scheduled data-plane events not yet
// executed. Between windows (the only time callers run) the outboxes are
// empty, so the lane heaps are the whole story.
func (p *Plane) Pending() int {
	n := 0
	for _, ls := range p.lanes {
		n += len(ls.heap)
	}
	return n
}

// Fired reports the total number of data-plane events executed.
func (p *Plane) Fired() uint64 {
	var n uint64
	for _, ls := range p.lanes {
		n += ls.fired
	}
	return n
}

// NextEventTime reports the fire time of the earliest pending data-plane
// event, false if none remain.
func (p *Plane) NextEventTime() (float64, bool) {
	at, ok := 0.0, false
	for _, ls := range p.lanes {
		if len(ls.heap) > 0 && (!ok || ls.heap[0].at < at) {
			at, ok = ls.heap[0].at, true
		}
	}
	return at, ok
}

// Schedule schedules fn at absolute virtual time at, sent by affinity
// class src to class dst's lane. Inside a window only the goroutine
// running src's lane may send as src; cross-lane sends must then respect
// the lookahead (at ≥ sender's clock + lookahead — violating it would
// break the conservative bound, so it panics). Between windows — engine
// events, setup — any send is fine: the lanes are parked.
func (p *Plane) Schedule(src, dst int, at float64, fn sim.Event) {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic("lane: scheduling at non-finite time")
	}
	ev := event{at: at, src: src, seq: p.seqs[src], fn: fn}
	p.seqs[src]++
	sl, dl := src%p.n, dst%p.n
	if !p.inWindow || sl == dl {
		p.lanes[dl].push(ev)
		return
	}
	if at < p.lanes[sl].now+p.lookahead {
		panic(fmt.Sprintf("lane: cross-lane message from class %d at %.9f fires at %.9f, under the %.9f lookahead",
			src, p.lanes[sl].now, at, p.lookahead))
	}
	p.outbox[sl][dl] = append(p.outbox[sl][dl], ev)
}

// runLane drains one lane: events with fire time strictly below strict
// (the conservative bound m+lookahead) and at most incl (the horizon /
// control-plane bound, inclusive so data-plane events at an engine
// event's exact time run first). Same-lane messages generated along the
// way join the heap and are drained in key order within the same window —
// this run-ahead inside a lane is where laning wins over a global clock.
func (p *Plane) runLane(ls *laneState, strict, incl float64) {
	for len(ls.heap) > 0 {
		at := ls.heap[0].at
		if at >= strict || at > incl {
			return
		}
		ev := ls.pop()
		ls.now = ev.at
		ls.fired++
		ev.fn(ev.at)
	}
}

// fold delivers every outbox message into its destination heap. Key order
// makes delivery order irrelevant, so a plain nested loop is canonical.
func (p *Plane) fold() {
	for sl := range p.outbox {
		for dl, msgs := range p.outbox[sl] {
			for _, ev := range msgs {
				p.lanes[dl].push(ev)
			}
			p.outbox[sl][dl] = msgs[:0]
		}
	}
}

// Advance drives the data plane and the control-plane engine together to
// virtual time t: lane windows execute data-plane events in conservative
// parallel, engine events execute one at a time with the lanes parked,
// and at every engine event's fire time all data-plane events up to and
// including that time have already run. The executed event sequence per
// class — and therefore every observable — is identical at any lane
// count and under any slicing of t (pinned as determinism invariant #10).
// The engine clock ends at t.
func (p *Plane) Advance(eng *sim.Engine, t float64) {
	for {
		m, ok := p.NextEventTime()
		if ok && m > t {
			ok = false
		}
		ctl, cok := eng.PeekNextTime()
		if cok && ctl > t {
			cok = false
		}
		if !ok {
			if !cok {
				break
			}
			eng.Step()
			continue
		}
		if cok && ctl < m {
			// The next event anywhere is the engine's: run it with the
			// lanes parked.
			eng.Step()
			continue
		}
		// Window [m, min(m+lookahead, ctl, t)]: every lane drains its
		// eligible prefix. ctl == m still windows first — data plane
		// before control plane at equal times.
		strict := m + p.lookahead
		incl := t
		if cok && ctl < incl {
			incl = ctl
		}
		p.window(strict, incl)
	}
	eng.Run(t)
}

// window runs one synchronous window over all lanes. A window with a
// single eligible lane runs inline on the coordinator — no barrier, no
// outbox; with one lane total, every window takes this path and the plane
// degenerates to a sequential key-ordered loop.
func (p *Plane) window(strict, incl float64) {
	p.active = p.active[:0]
	for i, ls := range p.lanes {
		if len(ls.heap) > 0 && ls.heap[0].at < strict && ls.heap[0].at <= incl {
			p.active = append(p.active, i)
		}
	}
	if len(p.active) == 1 {
		// Direct sends are safe: no other lane is executing, and
		// cross-lane messages land at ≥ strict by the lookahead contract,
		// beyond this window's bound on every lane.
		p.runLane(p.lanes[p.active[0]], strict, incl)
		return
	}
	p.inWindow = true
	p.pool.Run(p.n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.runLane(p.lanes[i], strict, incl)
		}
	})
	p.inWindow = false
	p.fold()
}
