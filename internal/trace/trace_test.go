package trace

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestReservoirBelowCapacity(t *testing.T) {
	r := NewReservoir(10, xrand.New(1))
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 5 || r.Seen() != 5 {
		t.Fatalf("len=%d seen=%d", r.Len(), r.Seen())
	}
	for i, v := range r.Values() {
		if v != float64(i) {
			t.Fatalf("values = %v", r.Values())
		}
	}
}

func TestReservoirCapsMemory(t *testing.T) {
	r := NewReservoir(100, xrand.New(2))
	for i := 0; i < 100000; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 100 {
		t.Fatalf("len = %d, want 100", r.Len())
	}
	if r.Seen() != 100000 {
		t.Fatalf("seen = %d", r.Seen())
	}
}

func TestReservoirIsApproximatelyUniform(t *testing.T) {
	// The retained sample's mean should approximate the stream's mean.
	r := NewReservoir(2000, xrand.New(3))
	const n = 200000
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	mean := 0.0
	for _, v := range r.Values() {
		mean += v
	}
	mean /= float64(r.Len())
	want := float64(n-1) / 2
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("reservoir mean = %v, want ≈%v", mean, want)
	}
}

func TestReservoirPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReservoir(0) did not panic")
		}
	}()
	NewReservoir(0, xrand.New(1))
}

func TestCollectorWarmupFiltering(t *testing.T) {
	c := NewCollector(2, 100, xrand.New(4))
	c.WarmupUntil = 10
	c.RecordOverall(5, 1.0)    // dropped
	c.RecordOverall(15, 0.002) // kept
	c.RecordComponent(5, 0, 1.0)
	c.RecordComponent(15, 0, 0.001)
	if c.NumOverall() != 1 {
		t.Fatalf("kept %d overall, want 1", c.NumOverall())
	}
	rep := c.Report()
	if rep.Requests != 1 {
		t.Fatalf("requests = %d", rep.Requests)
	}
	if math.Abs(rep.AvgOverallMs-2.0) > 1e-9 {
		t.Fatalf("avg overall = %v ms, want 2", rep.AvgOverallMs)
	}
}

func TestCollectorReportUnits(t *testing.T) {
	c := NewCollector(1, 100, xrand.New(5))
	for i := 0; i < 100; i++ {
		c.RecordOverall(1, 0.010) // 10ms
		c.RecordComponent(1, 0, 0.005)
	}
	rep := c.Report()
	if math.Abs(rep.AvgOverallMs-10) > 1e-9 {
		t.Fatalf("avg overall = %v, want 10ms", rep.AvgOverallMs)
	}
	if math.Abs(rep.P99ComponentMs-5) > 1e-9 {
		t.Fatalf("p99 comp = %v, want 5ms", rep.P99ComponentMs)
	}
	if math.Abs(rep.StageMeanMs[0]-5) > 1e-9 {
		t.Fatalf("stage mean = %v", rep.StageMeanMs[0])
	}
}

func TestCollectorStageOutOfRangeIgnored(t *testing.T) {
	c := NewCollector(1, 100, xrand.New(6))
	c.RecordComponent(1, 5, 0.001) // stage out of range: recorded globally, not per-stage
	rep := c.Report()
	if rep.Component.N != 1 {
		t.Fatalf("component sample lost: %d", rep.Component.N)
	}
}

func TestCollectorEmptyReport(t *testing.T) {
	c := NewCollector(3, 10, xrand.New(7))
	rep := c.Report()
	if rep.Requests != 0 || rep.AvgOverallMs != 0 || rep.P99ComponentMs != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
	if len(rep.StageMeanMs) != 3 {
		t.Fatalf("stage means = %v", rep.StageMeanMs)
	}
}
