// Package trace collects latency observations from simulation runs and
// renders the summaries the evaluation reports: average overall service
// latency and the 99th-percentile component latency.
package trace

import "repro/internal/xrand"

// Reservoir keeps a uniform random sample of a stream of float64
// observations with bounded memory (Vitter's Algorithm R). High-rate runs
// produce millions of per-component latencies; a 100k-element reservoir
// estimates p99 to well under a percent of relative error.
type Reservoir struct {
	cap    int
	seen   int
	values []float64
	src    *xrand.Source
}

// NewReservoir creates a reservoir holding at most cap observations.
func NewReservoir(cap int, src *xrand.Source) *Reservoir {
	if cap <= 0 {
		panic("trace: reservoir capacity must be positive")
	}
	return &Reservoir{cap: cap, values: make([]float64, 0, cap), src: src}
}

// Add records one observation.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.values) < r.cap {
		r.values = append(r.values, x)
		return
	}
	if i := r.src.Intn(r.seen); i < r.cap {
		r.values[i] = x
	}
}

// Seen reports the total number of observations offered.
func (r *Reservoir) Seen() int { return r.seen }

// Len reports the number of retained observations.
func (r *Reservoir) Len() int { return len(r.values) }

// Values returns the retained sample. Callers must not mutate it.
func (r *Reservoir) Values() []float64 { return r.values }
