package trace

import (
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Collector accumulates the two metrics of the paper's evaluation (§VI-A):
//
//   - the overall service latency of every request (reported as an average),
//   - the component latency of every winning sub-request (reported as p99).
//
// Observations before the warmup horizon are dropped so queue fill-up does
// not bias the distributions. Component latencies go through a reservoir to
// bound memory at high request rates.
type Collector struct {
	WarmupUntil float64 // virtual time before which observations are dropped

	overall   []float64
	component *Reservoir
	perStage  []stats.Welford

	// tenants maps tenant name → retained overall latencies for tenanted
	// requests. Plain slices, allocated lazily on the first tenanted
	// request: per-tenant recording draws no randomness and costs nothing
	// when traffic is untenanted, so tenanted breakdowns never perturb —
	// and untenanted runs never pay for — the shared streams.
	tenants map[string][]float64

	droppedOverall   int
	droppedComponent int
}

// NewCollector creates a collector for a service with numStages stages.
// componentCap bounds the component-latency reservoir.
func NewCollector(numStages, componentCap int, src *xrand.Source) *Collector {
	return &Collector{
		component: NewReservoir(componentCap, src),
		perStage:  make([]stats.Welford, numStages),
	}
}

// RecordOverall records one request's end-to-end latency observed at time
// now (both in seconds).
func (c *Collector) RecordOverall(now, latency float64) {
	if now < c.WarmupUntil {
		c.droppedOverall++
		return
	}
	c.overall = append(c.overall, latency)
}

// RecordTenantOverall records one request's end-to-end latency under its
// tenant's breakdown; callers pair it with RecordOverall for tenanted
// requests (the overall distribution always includes every request).
func (c *Collector) RecordTenantOverall(tenant string, now, latency float64) {
	if now < c.WarmupUntil {
		return
	}
	if c.tenants == nil {
		c.tenants = make(map[string][]float64)
	}
	c.tenants[tenant] = append(c.tenants[tenant], latency)
}

// TenantLatencies returns the retained per-tenant end-to-end latencies in
// seconds, nil when no tenanted request completed.
func (c *Collector) TenantLatencies() map[string][]float64 { return c.tenants }

// RecordComponent records one winning sub-request latency for a component
// in the given stage.
func (c *Collector) RecordComponent(now float64, stage int, latency float64) {
	if now < c.WarmupUntil {
		c.droppedComponent++
		return
	}
	c.component.Add(latency)
	if stage >= 0 && stage < len(c.perStage) {
		c.perStage[stage].Add(latency)
	}
}

// NumOverall reports how many overall latencies were kept.
func (c *Collector) NumOverall() int { return len(c.overall) }

// OverallLatencies returns the retained end-to-end latencies in seconds.
func (c *Collector) OverallLatencies() []float64 { return c.overall }

// Report summarises a run. All latencies are in milliseconds.
type Report struct {
	Requests int // completed requests counted
	// AvgOverallMs is the average overall service latency (paper metric 2).
	AvgOverallMs float64
	// P99ComponentMs is the 99th-percentile component latency (paper
	// metric 1).
	P99ComponentMs float64
	// Overall and Component hold full descriptive statistics (ms).
	Overall   stats.Summary
	Component stats.Summary
	// StageMeanMs is the mean component latency per stage (ms).
	StageMeanMs []float64
}

// Report computes the run summary.
func (c *Collector) Report() Report {
	toMs := func(s stats.Summary) stats.Summary {
		s.Mean *= 1000
		s.P50 *= 1000
		s.P90 *= 1000
		s.P95 *= 1000
		s.P99 *= 1000
		s.Min *= 1000
		s.Max *= 1000
		return s
	}
	overall := toMs(stats.Summarize(c.overall))
	comp := toMs(stats.Summarize(c.component.Values()))
	stageMeans := make([]float64, len(c.perStage))
	for i := range c.perStage {
		stageMeans[i] = c.perStage[i].Mean() * 1000
	}
	return Report{
		Requests:       len(c.overall),
		AvgOverallMs:   overall.Mean,
		P99ComponentMs: comp.P99,
		Overall:        overall,
		Component:      comp,
		StageMeanMs:    stageMeans,
	}
}
