// Package policy implements the closed-loop control layer: policies that
// observe a running simulation at a fixed virtual cadence and emit
// deployment-changing actions — scale replicas, degrade per-request work
// (brownout), throttle admission — closing the loop the paper's dispatch
// techniques leave open (they pick replicas from a performance matrix but
// never change the deployment in response to observed load).
//
// The contract, documented for authors in docs/policies.md, is:
//
//	Observation (snapshot gauges) → Policy.Decide → []Action (actuation)
//
// Determinism is non-negotiable. A policy is evaluated only at fixed
// virtual times (the simulation layer schedules the evaluation as an
// ordinary engine event), sees only the Observation it is handed, and must
// derive its decisions from that observation and its own deterministic
// state. Policies draw no randomness and never read wall-clock time, so a
// policy-on run replays bit-identically at any worker or shard count —
// determinism invariant #8 in docs/architecture.md.
//
// This package knows nothing about the simulation: Observation is plain
// data filled in by the pcs layer, and Action is plain data the pcs layer
// applies through the same actuation surface pcs.Controller exposes
// (SetReplicasAt, SetWorkFactorAt, SetAdmissionFactorAt). Policies are built
// from Specs — pure-data parameter blocks — so scenarios can script them
// (scenario.Policy) and every run constructs a fresh instance, keeping
// replications independent.
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Observation is what a policy sees at each evaluation: the simulation's
// snapshot gauges plus the current actuator positions, frozen at a fixed
// virtual time. All fields are plain data — reading them cannot perturb
// the run.
type Observation struct {
	// Now and Horizon locate the run in virtual time.
	Now, Horizon float64
	// ArrivalRate is the admitted λ (requests/second) the arrival process
	// currently runs at; OfferedArrivalRate is the λ the workload offers
	// (what steering scripts move) before admission throttling;
	// BaseArrivalRate is the configured λ the run started with.
	ArrivalRate, OfferedArrivalRate, BaseArrivalRate float64
	// AdmissionFactor is the admission throttle's current position in
	// (0, 1]: ArrivalRate = OfferedArrivalRate × AdmissionFactor.
	AdmissionFactor float64
	// AdmissionDrops counts arrivals the traffic layer's per-tenant token
	// buckets have denied so far (0 for unthrottled traffic). It is the
	// hard-admission counterpart of the AdmissionFactor soft throttle: a
	// rising count means some tenant is offering more than its bucket
	// admits.
	AdmissionDrops int
	// Arrivals, Completed and InFlight count requests so far.
	Arrivals, Completed, InFlight int
	// QueuedExecutions counts executions waiting in instance queues across
	// the deployment; BusyInstances counts occupied servers;
	// ActiveInstances counts the instances dispatch may currently use.
	// QueuedExecutions/ActiveInstances is the queue-pressure gauge the
	// built-in policies key on.
	QueuedExecutions, BusyInstances, ActiveInstances int
	// MeanCoreUtilization and MaxCoreUtilization summarise node core
	// saturation in [0, 1]; FailedNodes counts nodes currently failed.
	MeanCoreUtilization, MaxCoreUtilization float64
	FailedNodes                             int
	// AvgOverallMs and P99ComponentMs are the paper's two latency metrics
	// over post-warmup observations so far (cumulative, so they respond
	// slowly — prefer the queue and utilization gauges for fast loops).
	AvgOverallMs, P99ComponentMs float64
	// ActiveReplicas is the per-component replica count dispatch currently
	// spreads over; MinReplicas and MaxReplicas are the hard bounds the
	// actuator will accept — the active dispatch policy's replica need
	// (RED-3 cannot drop below 3) and the cluster size (replicas of one
	// component never share a node). Policies must keep SetReplicas
	// inside them; outside requests are dropped by the actuator.
	ActiveReplicas, MinReplicas, MaxReplicas int
	// DispatchSpreads reports whether the active dispatch policy routes
	// work across the active replicas (Basic/PCS least-loaded dispatch).
	// Redundancy and reissue techniques fan to a fixed replica set, so
	// when this is false extra active replicas add VM footprint without
	// absorbing load — replica-scaling policies should hold still.
	DispatchSpreads bool
	// WorkFactor is the current per-request work multiplier in (0, 1]:
	// 1 is full fidelity, lower values are brownout degradation.
	WorkFactor float64
}

// QueuePressure returns queued executions per active instance — the
// normalized backlog gauge the built-in policies trigger on. Zero when the
// deployment has no active instances.
func (o Observation) QueuePressure() float64 {
	if o.ActiveInstances <= 0 {
		return 0
	}
	return float64(o.QueuedExecutions) / float64(o.ActiveInstances)
}

// ActionKind enumerates the actuation verbs a policy may emit.
type ActionKind int

const (
	// SetReplicas changes the per-component active replica count to
	// Action.Replicas (clamped by the simulation to what the deployment
	// and the dispatch policy allow).
	SetReplicas ActionKind = iota
	// SetWorkFactor sets the per-request work multiplier to
	// Action.WorkFactor in (0, 1] — the brownout knob.
	SetWorkFactor
	// SetAdmissionFactor sets the admission throttle to
	// Action.AdmissionFactor in (0, 1]: the arrival process runs at
	// offered λ × factor, so throttling composes with scripted load
	// (rate steps, diurnal modulation) instead of overwriting it.
	SetAdmissionFactor
)

// String names the verb as shown in logs and dashboards.
func (k ActionKind) String() string {
	switch k {
	case SetReplicas:
		return "set-replicas"
	case SetWorkFactor:
		return "set-work-factor"
	case SetAdmissionFactor:
		return "set-admission-factor"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one actuation a policy emits: a verb, its argument, and a
// human-readable reason surfaced by dashboards and the experiment driver.
type Action struct {
	// Kind selects the verb; exactly one of the argument fields below is
	// meaningful for it.
	Kind ActionKind
	// Replicas is SetReplicas's target active replica count.
	Replicas int
	// WorkFactor is SetWorkFactor's target multiplier in (0, 1].
	WorkFactor float64
	// AdmissionFactor is SetAdmissionFactor's target fraction in (0, 1].
	AdmissionFactor float64
	// Reason explains the decision (e.g. "queue pressure 1.31 > 0.50").
	Reason string
}

// Value returns the action's numeric argument, whichever field its kind
// uses — convenient for rendering and logging.
func (a Action) Value() float64 {
	switch a.Kind {
	case SetReplicas:
		return float64(a.Replicas)
	case SetWorkFactor:
		return a.WorkFactor
	default:
		return a.AdmissionFactor
	}
}

// Policy is one closed-loop controller. Decide is called at a fixed
// virtual cadence with the current Observation and returns the actions to
// apply, in order, at that same virtual instant. Implementations may keep
// deterministic internal state (cooldown counters, PID integrals) but must
// not draw randomness or consult anything outside the Observation.
type Policy interface {
	// Name identifies the policy in results, logs and dashboards.
	Name() string
	// Decide returns the actions to apply at this evaluation; nil or an
	// empty slice means "no change".
	Decide(o Observation) []Action
}

// Spec is a pure-data policy description: a kind plus the knobs the kind
// understands, each with a zero-value-selects-default convention. Specs are
// what scenarios embed (scenario.Policy) and what the registry stores, so
// every run can build its own fresh Policy instance via New.
type Spec struct {
	// Kind selects the implementation: "autoscale", "brownout" or
	// "pid-throttle".
	Kind string

	// Autoscale holds the threshold autoscaler's knobs (Kind "autoscale").
	Autoscale AutoscaleSpec
	// Brownout holds the brownout controller's knobs (Kind "brownout").
	Brownout BrownoutSpec
	// PID holds the admission throttle's knobs (Kind "pid-throttle").
	PID PIDSpec
}

// Validate checks the spec is buildable: known kind, knobs in range.
func (s Spec) Validate() error {
	switch s.Kind {
	case "autoscale":
		return s.Autoscale.validate()
	case "brownout":
		return s.Brownout.validate()
	case "pid-throttle":
		return s.PID.validate()
	case "":
		return fmt.Errorf("policy: empty spec kind")
	default:
		return fmt.Errorf("policy: unknown spec kind %q (want autoscale, brownout or pid-throttle)", s.Kind)
	}
}

// New builds a fresh Policy instance from the spec, with defaults filled.
// Each simulation run must construct its own instance: policies are
// stateful (cooldowns, integrals) and sharing one across replications
// would break replay determinism.
func (s Spec) New() (Policy, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case "autoscale":
		return newThresholdAutoscaler(s.Autoscale), nil
	case "brownout":
		return newBrownout(s.Brownout), nil
	case "pid-throttle":
		return newPIDThrottle(s.PID), nil
	default: // unreachable after Validate
		return nil, fmt.Errorf("policy: unknown spec kind %q", s.Kind)
	}
}

// None is the reserved policy name that disables closed-loop control, even
// when the selected scenario scripts a policy.
const None = "none"

type registered struct {
	spec        Spec
	description string
}

var registry = map[string]registered{}

// Register adds a named spec to the registry. CLIs resolve -policy through
// it; the name "none" is reserved for "no policy". Registration errors on
// invalid specs and duplicate or reserved names; built-ins register at
// init and panic on failure, since a broken built-in is a programming
// error.
func Register(name, description string, s Spec) error {
	if name == "" {
		return fmt.Errorf("policy: empty name")
	}
	if strings.EqualFold(name, None) {
		return fmt.Errorf("policy: name %q is reserved", None)
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("policy %q: %w", name, err)
	}
	for existing := range registry {
		if strings.EqualFold(existing, name) {
			return fmt.Errorf("policy %q: already registered as %q", name, existing)
		}
	}
	registry[name] = registered{spec: s, description: description}
	return nil
}

// Get looks a registered spec up by name (case-insensitive). The empty
// name and "none" both return ok == false with no error: no policy.
// Unknown names error, listing what is registered.
func Get(name string) (Spec, bool, error) {
	if name == "" || strings.EqualFold(name, None) {
		return Spec{}, false, nil
	}
	if r, ok := registry[name]; ok {
		return r.spec, true, nil
	}
	for k, r := range registry {
		if strings.EqualFold(k, name) {
			return r.spec, true, nil
		}
	}
	return Spec{}, false, fmt.Errorf("policy: unknown policy %q (registered: %s, or %q)",
		name, strings.Join(Names(), ", "), None)
}

// Names lists the registered policy names in sorted order ("none" is
// implicit and not listed).
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Info is one registry listing entry: a policy name with its one-line
// description, for clients that render their own listings (the pcs-serve
// introspection endpoints).
type Info struct {
	Name        string
	Description string
}

// List returns the registered policies with their descriptions, sorted by
// name ("none" is implicit and not listed).
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range Names() {
		out = append(out, Info{Name: name, Description: registry[name].description})
	}
	return out
}

// Describe renders a "name — description" line per registered policy, for
// CLI usage text.
func Describe() string {
	var b strings.Builder
	for i, name := range Names() {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s — %s", name, registry[name].description)
	}
	return b.String()
}

func mustRegister(name, description string, s Spec) {
	if err := Register(name, description, s); err != nil {
		panic(fmt.Sprintf("policy: registering built-in: %v", err))
	}
}

// The built-in policies, registered with the defaults each *Spec documents.
func init() {
	mustRegister("threshold-autoscale",
		"add an active replica per component when queue pressure or core utilization "+
			"crosses the high threshold, retire one under slack (hysteresis + cooldown)",
		Spec{Kind: "autoscale"})
	mustRegister("brownout",
		"degrade per-request work multiplicatively under queue pressure and restore "+
			"it under slack, trading fidelity for latency",
		Spec{Kind: "brownout"})
	mustRegister("pid-throttle",
		"PID controller on queue pressure that throttles the admitted fraction of the "+
			"offered arrival rate λ under overload (composes with scripted load)",
		Spec{Kind: "pid-throttle"})
}
