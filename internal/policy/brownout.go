package policy

import "fmt"

// BrownoutSpec parameterises the brownout controller. Zero values select
// the documented defaults.
type BrownoutSpec struct {
	// DegradeQueuePressure degrades work when queued executions per active
	// instance exceed it (default 0.5).
	DegradeQueuePressure float64
	// RestoreQueuePressure restores work only while pressure is below it
	// (default 0.1 — the gap to DegradeQueuePressure is the hysteresis
	// band).
	RestoreQueuePressure float64
	// Step is the multiplicative step applied to the work factor per
	// degrade decision (and divided back out per restore decision), in
	// (0, 1) (default 0.8).
	Step float64
	// MinWorkFactor floors the degradation (default 0.4: never shed more
	// than 60% of per-request work).
	MinWorkFactor float64
}

func (s BrownoutSpec) withDefaults() BrownoutSpec {
	if s.DegradeQueuePressure <= 0 {
		s.DegradeQueuePressure = 0.5
	}
	if s.RestoreQueuePressure <= 0 {
		s.RestoreQueuePressure = 0.1
	}
	if s.Step <= 0 {
		s.Step = 0.8
	}
	if s.MinWorkFactor <= 0 {
		s.MinWorkFactor = 0.4
	}
	return s
}

func (s BrownoutSpec) validate() error {
	d := s.withDefaults()
	if d.RestoreQueuePressure >= d.DegradeQueuePressure {
		return fmt.Errorf("policy: brownout restore pressure %g must be below degrade %g",
			d.RestoreQueuePressure, d.DegradeQueuePressure)
	}
	if d.Step >= 1 {
		return fmt.Errorf("policy: brownout step %g must be in (0, 1)", d.Step)
	}
	if d.MinWorkFactor > 1 {
		return fmt.Errorf("policy: brownout min work factor %g above 1", d.MinWorkFactor)
	}
	return nil
}

// brownout trades request fidelity for latency: under queue pressure it
// multiplies the per-request work factor down one Step; under slack it
// divides the factor back up toward 1. The controller is stateless across
// evaluations — the current factor is read from the observation — so its
// decisions are a pure function of the observation sequence.
type brownout struct {
	spec BrownoutSpec
}

func newBrownout(s BrownoutSpec) *brownout { return &brownout{spec: s.withDefaults()} }

// Name implements Policy.
func (p *brownout) Name() string { return "brownout" }

// Decide implements Policy: one multiplicative step per evaluation, only
// emitted when the factor actually changes.
func (p *brownout) Decide(o Observation) []Action {
	pressure := o.QueuePressure()
	if pressure > p.spec.DegradeQueuePressure {
		f := o.WorkFactor * p.spec.Step
		if f < p.spec.MinWorkFactor {
			f = p.spec.MinWorkFactor
		}
		if f == o.WorkFactor {
			return nil
		}
		return []Action{{
			Kind:       SetWorkFactor,
			WorkFactor: f,
			Reason: fmt.Sprintf("degrade: queue pressure %.2f > %.2f",
				pressure, p.spec.DegradeQueuePressure),
		}}
	}
	if pressure < p.spec.RestoreQueuePressure && o.WorkFactor < 1 {
		f := o.WorkFactor / p.spec.Step
		if f > 1 {
			f = 1
		}
		return []Action{{
			Kind:       SetWorkFactor,
			WorkFactor: f,
			Reason: fmt.Sprintf("restore: queue pressure %.2f < %.2f",
				pressure, p.spec.RestoreQueuePressure),
		}}
	}
	return nil
}
