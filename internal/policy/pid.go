package policy

import "fmt"

// PIDSpec parameterises the admission throttle. Zero values select the
// documented defaults.
type PIDSpec struct {
	// TargetQueuePressure is the set point the controller regulates
	// toward: queued executions per active instance (default 0.2 — a
	// little backlog is healthy occupancy; sustained excess is overload).
	TargetQueuePressure float64
	// Kp, Ki and Kd are the proportional, integral and derivative gains on
	// the pressure error (defaults 1.5, 0.3, 0 — PI by default; the
	// derivative term mostly amplifies gauge noise at snapshot cadence).
	// The error is clamped to ±1 before the gains apply, so a pressure
	// blow-up saturates the response instead of winding the state up.
	Kp, Ki, Kd float64
	// MinAdmissionFactor floors the admitted fraction of the offered
	// arrival rate (default 0.2: never shed more than 80% of offered
	// load). The throttle only sheds — the admitted rate never exceeds
	// the offered rate.
	MinAdmissionFactor float64
	// IntegralLimit bounds the magnitude of the accumulated integral term
	// (anti-windup, default 2).
	IntegralLimit float64
}

func (s PIDSpec) withDefaults() PIDSpec {
	if s.TargetQueuePressure <= 0 {
		s.TargetQueuePressure = 0.2
	}
	if s.Kp <= 0 {
		s.Kp = 1.5
	}
	if s.Ki <= 0 {
		s.Ki = 0.3
	}
	if s.MinAdmissionFactor <= 0 {
		s.MinAdmissionFactor = 0.2
	}
	if s.IntegralLimit <= 0 {
		s.IntegralLimit = 2
	}
	return s
}

func (s PIDSpec) validate() error {
	d := s.withDefaults()
	if d.MinAdmissionFactor > 1 {
		return fmt.Errorf("policy: pid min admission factor %g above 1", d.MinAdmissionFactor)
	}
	if s.Kd < 0 {
		return fmt.Errorf("policy: pid negative derivative gain %g", s.Kd)
	}
	return nil
}

// pidThrottle is a PID controller on queue pressure that sheds offered
// load through the admission factor: admitted λ = offered λ ·
// clamp(1 − u, MinAdmissionFactor, 1) where u is the PID output on the
// clamped pressure error. Emitting a *factor* rather than a rate is what
// lets the throttle coexist with scripted load: a rate step or diurnal
// swing moves the offered rate and the throttle keeps shaving its
// fraction off, instead of overwriting the script. The controller state
// (integral, previous error, previous evaluation time) is a
// deterministic function of the observation sequence, so throttled runs
// replay bit-identically.
type pidThrottle struct {
	spec     PIDSpec
	integral float64
	prevErr  float64
	prevAt   float64
	primed   bool
}

func newPIDThrottle(s PIDSpec) *pidThrottle { return &pidThrottle{spec: s.withDefaults()} }

// Name implements Policy.
func (p *pidThrottle) Name() string { return "pid-throttle" }

// Decide implements Policy.
func (p *pidThrottle) Decide(o Observation) []Action {
	err := o.QueuePressure() - p.spec.TargetQueuePressure
	// Queue pressure is unbounded above (a melted-down deployment can
	// queue hundreds per instance); clamp the error so the response
	// saturates rather than scaling with the depth of the collapse.
	if err > 1 {
		err = 1
	} else if err < -1 {
		err = -1
	}
	dt := o.Now - p.prevAt
	var deriv float64
	if p.primed && dt > 0 {
		p.integral += err * dt
		if p.integral > p.spec.IntegralLimit {
			p.integral = p.spec.IntegralLimit
		} else if p.integral < -p.spec.IntegralLimit {
			p.integral = -p.spec.IntegralLimit
		}
		deriv = (err - p.prevErr) / dt
	}
	p.prevErr = err
	p.prevAt = o.Now
	p.primed = true

	u := p.spec.Kp*err + p.spec.Ki*p.integral + p.spec.Kd*deriv
	factor := 1 - u
	if factor > 1 {
		factor = 1
	}
	if factor < p.spec.MinAdmissionFactor {
		factor = p.spec.MinAdmissionFactor
	}
	// Only emit when the throttle position moves materially: sub-0.1%
	// twitches would flood the action log without changing the dynamics.
	if diff := factor - o.AdmissionFactor; diff < 0.001 && diff > -0.001 {
		return nil
	}
	return []Action{{
		Kind:            SetAdmissionFactor,
		AdmissionFactor: factor,
		Reason: fmt.Sprintf("queue pressure %.2f vs target %.2f: admit %.0f%% of offered λ",
			o.QueuePressure(), p.spec.TargetQueuePressure, 100*factor),
	}}
}
