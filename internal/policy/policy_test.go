package policy

import (
	"reflect"
	"strings"
	"testing"
)

// baseObs is a calm deployment: no queues, moderate utilization, everything
// at its actuator defaults.
func baseObs() Observation {
	return Observation{
		Now: 10, Horizon: 100,
		ArrivalRate: 100, OfferedArrivalRate: 100, BaseArrivalRate: 100,
		AdmissionFactor: 1,
		ActiveInstances: 100, ActiveReplicas: 1, MaxReplicas: 30,
		DispatchSpreads:     true,
		MeanCoreUtilization: 0.6,
		WorkFactor:          1,
	}
}

func TestRegistryBuiltins(t *testing.T) {
	want := []string{"brownout", "pid-throttle", "threshold-autoscale"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		spec, ok, err := Get(name)
		if err != nil || !ok {
			t.Fatalf("Get(%q) = ok=%v err=%v", name, ok, err)
		}
		p, err := spec.New()
		if err != nil {
			t.Fatalf("building %q: %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("%q: empty policy name", name)
		}
		if !strings.Contains(Describe(), name) {
			t.Fatalf("Describe() missing %q", name)
		}
	}
	// Case-insensitive lookup, like the scenario registry.
	if _, ok, err := Get("Threshold-Autoscale"); err != nil || !ok {
		t.Fatalf("case-insensitive Get failed: ok=%v err=%v", ok, err)
	}
}

func TestRegistryNoneAndUnknown(t *testing.T) {
	for _, name := range []string{"", "none", "NONE"} {
		if _, ok, err := Get(name); err != nil || ok {
			t.Fatalf("Get(%q) = ok=%v err=%v, want no policy, no error", name, ok, err)
		}
	}
	if _, _, err := Get("nonsense"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
	if err := Register("none", "reserved", Spec{Kind: "brownout"}); err == nil {
		t.Fatal("reserved name registered")
	}
	if err := Register("brownout", "dup", Spec{Kind: "brownout"}); err == nil {
		t.Fatal("duplicate name registered")
	}
	if err := Register("", "empty", Spec{Kind: "brownout"}); err == nil {
		t.Fatal("empty name registered")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},
		{Kind: "warp-drive"},
		{Kind: "autoscale", Autoscale: AutoscaleSpec{UpQueuePressure: 0.1, DownQueuePressure: 0.2}},
		{Kind: "autoscale", Autoscale: AutoscaleSpec{UpUtilization: 1.5}},
		{Kind: "autoscale", Autoscale: AutoscaleSpec{MinReplicas: 5, MaxReplicas: 2}},
		{Kind: "brownout", Brownout: BrownoutSpec{DegradeQueuePressure: 0.1, RestoreQueuePressure: 0.2}},
		{Kind: "brownout", Brownout: BrownoutSpec{Step: 1.5}},
		{Kind: "brownout", Brownout: BrownoutSpec{MinWorkFactor: 2}},
		{Kind: "pid-throttle", PID: PIDSpec{MinAdmissionFactor: 3}},
		{Kind: "pid-throttle", PID: PIDSpec{Kd: -1}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d (%+v) validated", i, s)
		}
		if _, err := s.New(); err == nil {
			t.Errorf("bad spec %d (%+v) built", i, s)
		}
	}
	good := []Spec{
		{Kind: "autoscale"},
		{Kind: "brownout", Brownout: BrownoutSpec{Step: 0.5, MinWorkFactor: 0.25}},
		{Kind: "pid-throttle", PID: PIDSpec{TargetQueuePressure: 0.4, Kp: 2}},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}
}

func TestQueuePressure(t *testing.T) {
	o := Observation{QueuedExecutions: 50, ActiveInstances: 100}
	if got := o.QueuePressure(); got != 0.5 {
		t.Fatalf("QueuePressure = %v, want 0.5", got)
	}
	if got := (Observation{QueuedExecutions: 7}).QueuePressure(); got != 0 {
		t.Fatalf("QueuePressure with no instances = %v, want 0", got)
	}
}

func TestAutoscalerScalesUpOnPressureAndHoldsCooldown(t *testing.T) {
	p := newThresholdAutoscaler(AutoscaleSpec{})
	o := baseObs()
	o.QueuedExecutions = 100 // pressure 1.0 > 0.35
	acts := p.Decide(o)
	if len(acts) != 1 || acts[0].Kind != SetReplicas || acts[0].Replicas != 2 {
		t.Fatalf("pressured Decide = %+v, want one SetReplicas(2)", acts)
	}
	if acts[0].Reason == "" {
		t.Fatal("action carries no reason")
	}
	// Cooldown: the next UpCooldown evaluations hold still even under
	// pressure.
	for i := 0; i < 3; i++ {
		if got := p.Decide(o); got != nil {
			t.Fatalf("evaluation %d during cooldown acted: %+v", i, got)
		}
	}
	o.ActiveReplicas = 2
	acts = p.Decide(o)
	if len(acts) != 1 || acts[0].Replicas != 3 {
		t.Fatalf("post-cooldown Decide = %+v, want SetReplicas(3)", acts)
	}
}

func TestAutoscalerUtilizationBackstopAndCeiling(t *testing.T) {
	p := newThresholdAutoscaler(AutoscaleSpec{})
	o := baseObs()
	o.MeanCoreUtilization = 0.95 // no queues, saturated cores
	acts := p.Decide(o)
	if len(acts) != 1 || acts[0].Replicas != 2 {
		t.Fatalf("saturated Decide = %+v, want SetReplicas(2)", acts)
	}
	// At the ceiling (cluster size) the policy must not scale further.
	p2 := newThresholdAutoscaler(AutoscaleSpec{})
	o2 := baseObs()
	o2.QueuedExecutions = 500
	o2.ActiveReplicas = o2.MaxReplicas
	if got := p2.Decide(o2); got != nil {
		t.Fatalf("scale past the cluster ceiling: %+v", got)
	}
}

func TestAutoscalerHoldsStillWhenDispatchCannotSpread(t *testing.T) {
	// Under RED-k/reissue dispatch, extra replicas never receive work —
	// the autoscaler must not scale regardless of pressure or slack.
	p := newThresholdAutoscaler(AutoscaleSpec{})
	o := baseObs()
	o.DispatchSpreads = false
	o.ActiveReplicas = 3
	o.QueuedExecutions = 500
	for i := 0; i < 10; i++ {
		if got := p.Decide(o); got != nil {
			t.Fatalf("scaled under fixed-fan-out dispatch: %+v", got)
		}
	}
	o.QueuedExecutions = 0
	o.MeanCoreUtilization = 0.1
	for i := 0; i < 20; i++ {
		if got := p.Decide(o); got != nil {
			t.Fatalf("retired replicas under fixed-fan-out dispatch: %+v", got)
		}
	}
}

func TestAutoscalerScalesDownUnderSustainedSlack(t *testing.T) {
	p := newThresholdAutoscaler(AutoscaleSpec{})
	o := baseObs()
	o.ActiveReplicas = 3
	o.QueuedExecutions = 0
	o.MeanCoreUtilization = 0.3
	// Slack must be sustained: the first SlackEvals-1 quiet evaluations do
	// nothing, the SlackEvals-th retires one replica.
	for i := 0; i < 5; i++ {
		if got := p.Decide(o); got != nil {
			t.Fatalf("slack evaluation %d acted early: %+v", i, got)
		}
	}
	acts := p.Decide(o)
	if len(acts) != 1 || acts[0].Replicas != 2 {
		t.Fatalf("sustained-slack Decide = %+v, want SetReplicas(2)", acts)
	}
	// A pressured evaluation resets the streak.
	p2 := newThresholdAutoscaler(AutoscaleSpec{})
	o2 := o
	o2.ActiveReplicas = 3
	for i := 0; i < 5; i++ {
		p2.Decide(o2)
	}
	burst := o2
	burst.QueuedExecutions = 30 // pressure 0.3: in the band, but not slack
	p2.Decide(burst)
	if got := p2.Decide(o2); got != nil {
		t.Fatalf("slack streak survived a pressured evaluation: %+v", got)
	}
	// Never below MinReplicas.
	p3 := newThresholdAutoscaler(AutoscaleSpec{})
	o3 := o
	o3.ActiveReplicas = 1
	for i := 0; i < 20; i++ {
		if got := p3.Decide(o3); got != nil {
			t.Fatalf("scaled below MinReplicas: %+v", got)
		}
	}
	// In the hysteresis band (between thresholds) nothing happens.
	p4 := newThresholdAutoscaler(AutoscaleSpec{})
	o4 := baseObs()
	o4.ActiveReplicas = 2
	o4.QueuedExecutions = 20 // pressure 0.2: above down, below up
	for i := 0; i < 20; i++ {
		if got := p4.Decide(o4); got != nil {
			t.Fatalf("acted inside the hysteresis band: %+v", got)
		}
	}
}

func TestBrownoutDegradesAndRestores(t *testing.T) {
	p := newBrownout(BrownoutSpec{})
	o := baseObs()
	o.QueuedExecutions = 100 // pressure 1.0 > 0.5
	acts := p.Decide(o)
	if len(acts) != 1 || acts[0].Kind != SetWorkFactor {
		t.Fatalf("pressured Decide = %+v, want one SetWorkFactor", acts)
	}
	if got := acts[0].WorkFactor; got != 0.8 {
		t.Fatalf("degrade step = %v, want 0.8", got)
	}
	// Repeated pressure walks the factor down to the floor, then stops
	// emitting.
	o.WorkFactor = 0.4
	if got := p.Decide(o); got != nil {
		t.Fatalf("degrade below the floor: %+v", got)
	}
	// Slack restores toward 1 and caps there.
	o.QueuedExecutions = 0
	o.WorkFactor = 0.9
	acts = p.Decide(o)
	if len(acts) != 1 || acts[0].WorkFactor != 1 {
		t.Fatalf("restore Decide = %+v, want SetWorkFactor(1)", acts)
	}
	// Fully restored: nothing to do.
	o.WorkFactor = 1
	if got := p.Decide(o); got != nil {
		t.Fatalf("restore past 1: %+v", got)
	}
	// Hysteresis band: no action.
	o.QueuedExecutions = 30 // pressure 0.3
	o.WorkFactor = 0.8
	if got := p.Decide(o); got != nil {
		t.Fatalf("acted inside the hysteresis band: %+v", got)
	}
}

func TestPIDThrottlesUnderOverloadAndRecovers(t *testing.T) {
	p := newPIDThrottle(PIDSpec{})
	o := baseObs()
	o.QueuedExecutions = 100 // pressure 1.0, target 0.2
	acts := p.Decide(o)
	if len(acts) != 1 || acts[0].Kind != SetAdmissionFactor {
		t.Fatalf("overload Decide = %+v, want one SetAdmissionFactor", acts)
	}
	if acts[0].AdmissionFactor >= 1 {
		t.Fatalf("overloaded throttle admitted factor %v, want < 1", acts[0].AdmissionFactor)
	}
	// Sustained (even exploding) overload saturates at the floor: the
	// error clamp keeps a meltdown from scaling the response, and the
	// factor never drops below MinAdmissionFactor.
	for i := 0; i < 50; i++ {
		o.Now += 1
		o.QueuedExecutions = 100 * (i + 1) // pressure grows without bound
		o.AdmissionFactor = -1             // force emission so the clamp is observable
		acts = p.Decide(o)
		if len(acts) != 1 {
			t.Fatalf("evaluation %d: no action under forced emission", i)
		}
		if acts[0].AdmissionFactor < 0.2-1e-9 {
			t.Fatalf("admitted factor %v below floor 0.2", acts[0].AdmissionFactor)
		}
	}
	// Deep slack unwinds the throttle back to admitting everything.
	o.QueuedExecutions = 0
	var last float64
	for i := 0; i < 200; i++ {
		o.Now += 1
		o.AdmissionFactor = -1
		acts = p.Decide(o)
		if len(acts) != 1 {
			t.Fatalf("slack evaluation %d: no action", i)
		}
		last = acts[0].AdmissionFactor
	}
	if last != 1 {
		t.Fatalf("after sustained slack admitted factor %v, want 1", last)
	}
	// At the set point with the factor already in place, the throttle
	// stays quiet (sub-0.1% emission filter).
	o.QueuedExecutions = 20 // pressure exactly at target
	o.Now += 1
	o.AdmissionFactor = last
	if got := p.Decide(o); got != nil {
		t.Fatalf("twitched at the set point: %+v", got)
	}
}

// TestPoliciesDeterministic: identical observation sequences produce
// identical action sequences from fresh instances — the unit-level face of
// determinism invariant #8.
func TestPoliciesDeterministic(t *testing.T) {
	seq := func() []Observation {
		var obs []Observation
		o := baseObs()
		for i := 0; i < 40; i++ {
			o.Now = float64(i)
			o.QueuedExecutions = (i * 37) % 200
			o.MeanCoreUtilization = 0.3 + float64((i*13)%70)/100
			o.ActiveReplicas = 1 + i%4
			o.WorkFactor = 1 - float64(i%5)*0.1
			obs = append(obs, o)
		}
		return obs
	}
	for _, name := range Names() {
		spec, _, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() [][]Action {
			p, err := spec.New()
			if err != nil {
				t.Fatal(err)
			}
			var out [][]Action
			for _, o := range seq() {
				out = append(out, p.Decide(o))
			}
			return out
		}
		if a, b := run(), run(); !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical observation sequences produced different actions", name)
		}
	}
}

func TestActionKindStringAndValue(t *testing.T) {
	cases := []struct {
		a    Action
		kind string
		val  float64
	}{
		{Action{Kind: SetReplicas, Replicas: 3}, "set-replicas", 3},
		{Action{Kind: SetWorkFactor, WorkFactor: 0.8}, "set-work-factor", 0.8},
		{Action{Kind: SetAdmissionFactor, AdmissionFactor: 0.6}, "set-admission-factor", 0.6},
	}
	for _, c := range cases {
		if got := c.a.Kind.String(); got != c.kind {
			t.Errorf("Kind.String() = %q, want %q", got, c.kind)
		}
		if got := c.a.Value(); got != c.val {
			t.Errorf("%s Value() = %v, want %v", c.kind, got, c.val)
		}
	}
}
