package policy

import "fmt"

// AutoscaleSpec parameterises the threshold autoscaler. Zero values select
// the documented defaults.
type AutoscaleSpec struct {
	// UpQueuePressure scales up when queued executions per active instance
	// exceed it (default 0.35).
	UpQueuePressure float64
	// DownQueuePressure allows scale-down only while pressure is below it
	// (default 0.05).
	DownQueuePressure float64
	// UpUtilization scales up when mean core utilization exceeds it even
	// if queues look fine (default 0.92; utilization includes co-located
	// batch jobs, so this is a saturation backstop, not the primary
	// signal).
	UpUtilization float64
	// DownUtilization allows scale-down only while mean core utilization
	// is below it (default 0.55).
	DownUtilization float64
	// MinReplicas and MaxReplicas bound the active replica count the
	// policy will request (defaults: 1, and 0 meaning "the observation's
	// MaxReplicas", i.e. the cluster size).
	MinReplicas, MaxReplicas int
	// UpCooldown and DownCooldown are how many evaluations the policy
	// holds still after scaling up and down respectively (defaults 3 and
	// 8 — retiring capacity should be much lazier than adding it).
	UpCooldown, DownCooldown int
	// SlackEvals is how many consecutive slack evaluations must pass
	// before a scale-down (default 6): one quiet sample mid-burst — a
	// momentarily drained queue — must not retire capacity the next
	// arrival wave still needs. Any pressured evaluation resets the
	// streak.
	SlackEvals int
}

func (s AutoscaleSpec) withDefaults() AutoscaleSpec {
	if s.UpQueuePressure <= 0 {
		s.UpQueuePressure = 0.35
	}
	if s.DownQueuePressure <= 0 {
		s.DownQueuePressure = 0.05
	}
	if s.UpUtilization <= 0 {
		s.UpUtilization = 0.92
	}
	if s.DownUtilization <= 0 {
		s.DownUtilization = 0.55
	}
	if s.MinReplicas <= 0 {
		s.MinReplicas = 1
	}
	if s.UpCooldown <= 0 {
		s.UpCooldown = 3
	}
	if s.DownCooldown <= 0 {
		s.DownCooldown = 8
	}
	if s.SlackEvals <= 0 {
		s.SlackEvals = 6
	}
	return s
}

func (s AutoscaleSpec) validate() error {
	d := s.withDefaults()
	if d.DownQueuePressure >= d.UpQueuePressure {
		return fmt.Errorf("policy: autoscale down queue pressure %g must be below up %g",
			d.DownQueuePressure, d.UpQueuePressure)
	}
	if d.DownUtilization >= d.UpUtilization {
		return fmt.Errorf("policy: autoscale down utilization %g must be below up %g",
			d.DownUtilization, d.UpUtilization)
	}
	if d.UpUtilization > 1 {
		return fmt.Errorf("policy: autoscale up utilization %g above 1", d.UpUtilization)
	}
	if s.MaxReplicas != 0 && s.MaxReplicas < d.MinReplicas {
		return fmt.Errorf("policy: autoscale max replicas %d below min %d", s.MaxReplicas, d.MinReplicas)
	}
	return nil
}

// thresholdAutoscaler adds an active replica per component when the
// deployment looks pressured and retires one under sustained slack.
// Hysteresis (distinct up/down thresholds) plus per-direction cooldowns
// keep it from oscillating; all state is a deterministic function of the
// observation sequence.
type thresholdAutoscaler struct {
	spec     AutoscaleSpec
	cooldown int // evaluations to hold still after the last action
	slack    int // consecutive slack evaluations seen so far
}

func newThresholdAutoscaler(s AutoscaleSpec) *thresholdAutoscaler {
	return &thresholdAutoscaler{spec: s.withDefaults()}
}

// Name implements Policy.
func (p *thresholdAutoscaler) Name() string { return "threshold-autoscale" }

// Decide implements Policy: at most one scale step per evaluation. The
// slack streak is tracked on every evaluation (cooldown included) so a
// scale-down needs SlackEvals of genuinely sustained quiet, not merely
// quiet at the moments the cooldown happens to end.
func (p *thresholdAutoscaler) Decide(o Observation) []Action {
	// Under a dispatch policy that fans to a fixed replica set (RED-k,
	// reissue), activating more replicas parks idle VMs on nodes and
	// dilutes the queue-pressure gauge without absorbing any load —
	// scaling would be pure cost, so the autoscaler holds still.
	if !o.DispatchSpreads {
		return nil
	}
	pressure := o.QueuePressure()
	slackNow := pressure < p.spec.DownQueuePressure && o.MeanCoreUtilization < p.spec.DownUtilization
	if slackNow {
		p.slack++
	} else {
		p.slack = 0
	}
	if p.cooldown > 0 {
		p.cooldown--
		return nil
	}
	max := p.spec.MaxReplicas
	if max <= 0 || max > o.MaxReplicas {
		max = o.MaxReplicas
	}
	// The effective floor is the stricter of the spec's and the
	// actuator's (the dispatch policy's replica need): emitting a scale
	// the actuator would reject wastes a cooldown on a no-op and blinds
	// the policy to the next real burst for its duration.
	min := p.spec.MinReplicas
	if min < o.MinReplicas {
		min = o.MinReplicas
	}
	if (pressure > p.spec.UpQueuePressure || o.MeanCoreUtilization > p.spec.UpUtilization) &&
		o.ActiveReplicas < max {
		p.cooldown = p.spec.UpCooldown
		reason := fmt.Sprintf("queue pressure %.2f > %.2f", pressure, p.spec.UpQueuePressure)
		if pressure <= p.spec.UpQueuePressure {
			reason = fmt.Sprintf("mean core utilization %.2f > %.2f",
				o.MeanCoreUtilization, p.spec.UpUtilization)
		}
		return []Action{{Kind: SetReplicas, Replicas: o.ActiveReplicas + 1, Reason: reason}}
	}
	if slackNow && p.slack >= p.spec.SlackEvals && o.ActiveReplicas > min {
		p.cooldown = p.spec.DownCooldown
		return []Action{{
			Kind:     SetReplicas,
			Replicas: o.ActiveReplicas - 1,
			Reason: fmt.Sprintf("slack for %d evals: queue pressure %.2f < %.2f, utilization %.2f < %.2f",
				p.slack, pressure, p.spec.DownQueuePressure, o.MeanCoreUtilization, p.spec.DownUtilization),
		}}
	}
	return nil
}
