// Package cliutil holds the flag wiring the cmd/ binaries share: the
// technique/scenario/policy selectors, the comma-separated list parsers,
// and the production-shaped traffic flags (-trace-file, -tenants). Six
// CLIs registering the same flags by hand drifted in usage text and
// validation; this package is the single copy.
//
// Helpers take an explicit *flag.FlagSet so tests can build throwaway
// sets; the binaries pass flag.CommandLine.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/pcs"
)

// AddTechnique registers the -technique selector and returns its value.
func AddTechnique(fs *flag.FlagSet) *string {
	return fs.String("technique", "PCS", "execution technique: Basic, RED-3, RED-5, RI-90, RI-99 or PCS")
}

// AddScenario registers the -scenario selector, whose usage text lists
// every registered scenario, and returns its value.
func AddScenario(fs *flag.FlagSet) *string {
	return fs.String("scenario", "", pcs.ScenarioFlagUsage())
}

// AddPolicy registers the -policy selector, whose usage text lists every
// registered closed-loop policy, and returns its value.
func AddPolicy(fs *flag.FlagSet) *string {
	return fs.String("policy", "", pcs.PolicyFlagUsage())
}

// AddLanes registers the -lanes selector for the parallel data plane and
// returns its value.
func AddLanes(fs *flag.FlagSet) *int {
	return fs.Int("lanes", 0, "parallel data-plane lanes: 0 runs the sequential engine (default\n"+
		"physics), N >= 1 runs the affinity-laned conservative engine — reports\n"+
		"are byte-identical at any lane count, so pick the core count; -1 uses\n"+
		"all cores")
}

// ParseTechniques parses a comma-separated technique list ("Basic,PCS").
// The empty string parses to nil, which the experiment drivers read as
// "all six".
func ParseTechniques(csv string) ([]pcs.Technique, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []pcs.Technique
	for _, s := range strings.Split(csv, ",") {
		t, err := pcs.ParseTechnique(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ParseRates parses a comma-separated arrival-rate list ("10,20,50").
func ParseRates(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", strings.TrimSpace(s), err)
		}
		out = append(out, v)
	}
	return out, nil
}

// TrafficFlags carries the production-shaped traffic selectors shared by
// pcs-sim, pcs-sweep and pcs-live. Register with AddTraffic, then call
// Spec after flag.Parse.
type TrafficFlags struct {
	// TraceFile replays a recorded arrival trace ("trace" kind).
	TraceFile *string
	// Tenants composes Poisson tenants under token-bucket admission
	// ("multi-tenant" kind).
	Tenants *string
}

// AddTraffic registers -trace-file and -tenants and returns their values.
func AddTraffic(fs *flag.FlagSet) TrafficFlags {
	return TrafficFlags{
		TraceFile: fs.String("trace-file", "", "replay arrivals from this trace file instead of generating them:\n"+
			"NDJSON {\"t\": seconds, \"tenant\": \"...\"} lines or CSV t[,tenant[,class]]\n"+
			"rows (format inferred from the extension). -rate rescales the replay's\n"+
			"pacing; mutually exclusive with -tenants"),
		Tenants: fs.String("tenants", "", "multi-tenant Poisson mix: comma-separated name:rate[:admitRate[:burst]]\n"+
			"entries, e.g. \"search:60,feed:25:40:20\". admitRate caps the tenant's\n"+
			"admitted req/s via a deterministic token bucket of depth burst;\n"+
			"mutually exclusive with -trace-file"),
	}
}

// Spec translates the parsed traffic flags into an Options.Traffic value.
// Nil (with a nil error) means neither flag was given: the run keeps the
// scenario's scripted traffic or the scalar Poisson path.
func (tf TrafficFlags) Spec() (*pcs.TrafficSpec, error) {
	trace := strings.TrimSpace(*tf.TraceFile)
	tenants := strings.TrimSpace(*tf.Tenants)
	switch {
	case trace == "" && tenants == "":
		return nil, nil
	case trace != "" && tenants != "":
		return nil, fmt.Errorf("-trace-file and -tenants are mutually exclusive: a run has one arrival source\n" +
			"(tenant mixes that include traces can be scripted as a scenario traffic.Spec)")
	case trace != "":
		return &pcs.TrafficSpec{Kind: "trace", Path: trace}, nil
	}
	spec := &pcs.TrafficSpec{Kind: "multi-tenant"}
	for _, entry := range strings.Split(tenants, ",") {
		t, err := parseTenant(strings.TrimSpace(entry))
		if err != nil {
			return nil, err
		}
		spec.Tenants = append(spec.Tenants, t)
	}
	return spec, nil
}

// parseTenant parses one -tenants entry: name:rate[:admitRate[:burst]].
func parseTenant(entry string) (pcs.TenantTraffic, error) {
	fail := func(msg string) (pcs.TenantTraffic, error) {
		return pcs.TenantTraffic{}, fmt.Errorf(
			"bad -tenants entry %q: %s (want name:rate[:admitRate[:burst]])", entry, msg)
	}
	parts := strings.Split(entry, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return fail("wrong number of fields")
	}
	if parts[0] == "" {
		return fail("empty tenant name")
	}
	t := pcs.TenantTraffic{Name: parts[0], Source: pcs.TrafficSpec{Kind: "poisson"}}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || rate <= 0 {
		return fail("rate must be a positive number")
	}
	t.Source.Rate = rate
	if len(parts) >= 3 {
		admit, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || admit < 0 {
			return fail("admitRate must be a non-negative number")
		}
		t.AdmitRate = admit
	}
	if len(parts) == 4 {
		burst, err := strconv.Atoi(parts[3])
		if err != nil || burst < 0 {
			return fail("burst must be a non-negative integer")
		}
		t.Burst = burst
	}
	return t, nil
}
