// Package cliutil holds the flag wiring the cmd/ binaries share: the
// technique/scenario/policy selectors, the comma-separated list parsers,
// and the production-shaped traffic flags (-trace-file, -tenants). Six
// CLIs registering the same flags by hand drifted in usage text and
// validation; this package is the single copy.
//
// Helpers take an explicit *flag.FlagSet so tests can build throwaway
// sets; the binaries pass flag.CommandLine.
package cliutil

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/pcs"
)

// AddTechnique registers the -technique selector and returns its value.
func AddTechnique(fs *flag.FlagSet) *string {
	return fs.String("technique", "PCS", "execution technique: Basic, RED-3, RED-5, RI-90, RI-99 or PCS")
}

// AddScenario registers the -scenario selector, whose usage text lists
// every registered scenario, and returns its value.
func AddScenario(fs *flag.FlagSet) *string {
	return fs.String("scenario", "", pcs.ScenarioFlagUsage())
}

// AddPolicy registers the -policy selector, whose usage text lists every
// registered closed-loop policy, and returns its value.
func AddPolicy(fs *flag.FlagSet) *string {
	return fs.String("policy", "", pcs.PolicyFlagUsage())
}

// AddLanes registers the -lanes selector for the parallel data plane and
// returns its value.
func AddLanes(fs *flag.FlagSet) *int {
	return fs.Int("lanes", 0, "parallel data-plane lanes: 0 runs the sequential engine (default\n"+
		"physics), N >= 1 runs the affinity-laned conservative engine — reports\n"+
		"are byte-identical at any lane count, so pick the core count; -1 uses\n"+
		"all cores")
}

// ParseTechniques parses a comma-separated technique list ("Basic,PCS").
// The empty string parses to nil, which the experiment drivers read as
// "all six".
func ParseTechniques(csv string) ([]pcs.Technique, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []pcs.Technique
	for _, s := range strings.Split(csv, ",") {
		t, err := pcs.ParseTechnique(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ParseRemotes parses a comma-separated list of pcs-serve base URLs
// ("http://a:8344,http://b:8344") into the worker list a fleet dispatch
// shards over. The empty string parses to nil — run locally. Entries must
// be http(s) URLs; trailing slashes are trimmed so joined API paths never
// double them.
func ParseRemotes(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []string
	for _, s := range strings.Split(csv, ",") {
		u := strings.TrimRight(strings.TrimSpace(s), "/")
		if u == "" {
			return nil, fmt.Errorf("empty daemon URL in remote list %q", csv)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("bad daemon URL %q: want http:// or https://", u)
		}
		out = append(out, u)
	}
	return out, nil
}

// ParseRates parses a comma-separated arrival-rate list ("10,20,50").
func ParseRates(csv string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", strings.TrimSpace(s), err)
		}
		out = append(out, v)
	}
	return out, nil
}

// TrafficFlags carries the production-shaped traffic selectors shared by
// pcs-sim, pcs-sweep and pcs-live. Register with AddTraffic, then call
// Spec after flag.Parse.
type TrafficFlags struct {
	// TraceFile replays a recorded arrival trace ("trace" kind).
	TraceFile *string
	// Tenants composes Poisson tenants under token-bucket admission
	// ("multi-tenant" kind).
	Tenants *string
}

// AddTraffic registers -trace-file and -tenants and returns their values.
func AddTraffic(fs *flag.FlagSet) TrafficFlags {
	return TrafficFlags{
		TraceFile: fs.String("trace-file", "", "replay arrivals from this trace file instead of generating them:\n"+
			"NDJSON {\"t\": seconds, \"tenant\": \"...\"} lines or CSV t[,tenant[,class]]\n"+
			"rows (format inferred from the extension). -rate rescales the replay's\n"+
			"pacing; mutually exclusive with -tenants"),
		Tenants: fs.String("tenants", "", "multi-tenant Poisson mix: comma-separated name:rate[:admitRate[:burst]]\n"+
			"entries, e.g. \"search:60,feed:25:40:20\". admitRate caps the tenant's\n"+
			"admitted req/s via a deterministic token bucket of depth burst;\n"+
			"mutually exclusive with -trace-file"),
	}
}

// Spec translates the parsed traffic flags into an Options.Traffic value.
// Nil (with a nil error) means neither flag was given: the run keeps the
// scenario's scripted traffic or the scalar Poisson path.
func (tf TrafficFlags) Spec() (*pcs.TrafficSpec, error) {
	trace := strings.TrimSpace(*tf.TraceFile)
	tenants := strings.TrimSpace(*tf.Tenants)
	switch {
	case trace == "" && tenants == "":
		return nil, nil
	case trace != "" && tenants != "":
		return nil, fmt.Errorf("-trace-file and -tenants are mutually exclusive: a run has one arrival source\n" +
			"(tenant mixes that include traces can be scripted as a scenario traffic.Spec)")
	case trace != "":
		return &pcs.TrafficSpec{Kind: "trace", Path: trace}, nil
	}
	spec := &pcs.TrafficSpec{Kind: "multi-tenant"}
	for _, entry := range strings.Split(tenants, ",") {
		t, err := parseTenant(strings.TrimSpace(entry))
		if err != nil {
			return nil, err
		}
		spec.Tenants = append(spec.Tenants, t)
	}
	return spec, nil
}

// SpecFlags binds the run-defining flags the cmd/ binaries share onto one
// pcs.RunSpec — the flag face of the canonical spec API. AddSpec registers
// the core selectors (-spec-file, -graph-file, -scenario, -policy, the
// traffic flags, -requests, -nodes, -search-components, -seed, -shards,
// -lanes); a binary then opts into the groups it carries — AddRun
// (-technique, -rate), AddReplication (-replications, -workers), AddTuning
// (-interval, -epsilon, -queue) — and calls Spec after parsing.
//
// Precedence is file-then-flags: -spec-file (when given) loads the base
// RunSpec and every flag the command line explicitly set overrides the
// matching field; without -spec-file the flags alone define the spec,
// defaults included, so a bare invocation still means the evaluation
// default run.
type SpecFlags struct {
	fs *flag.FlagSet

	specFile  *string
	graphFile *string
	scenario  *string
	policy    *string
	traffic   TrafficFlags
	requests  *int
	nodes     *int
	fanOut    *int
	seed      *int64
	shards    *int
	lanes     *int

	technique *string  // AddRun
	rate      *float64 // AddRun

	replications *int // AddReplication
	workers      *int // AddReplication

	interval *float64 // AddTuning
	epsilon  *float64 // AddTuning
	queue    *string  // AddTuning
}

// AddSpec registers the core run-defining flags on fs and returns the
// SpecFlags to extend and resolve.
func AddSpec(fs *flag.FlagSet) *SpecFlags {
	return &SpecFlags{
		fs: fs,
		specFile: fs.String("spec-file", "", "load the run from this pcs.RunSpec JSON file; flags set explicitly on\n"+
			"the command line override the file's fields (the same spec JSON drives\n"+
			"POST /v1/runs on pcs-serve — see docs/serve.md)"),
		graphFile: fs.String("graph-file", "", "deploy a custom service DAG loaded from this JSON graph spec instead of\n"+
			"a registered scenario (mutually exclusive with -scenario; the format is\n"+
			"the graph.Spec encoding, see docs/scenarios.md)"),
		scenario: AddScenario(fs),
		policy:   AddPolicy(fs),
		traffic:  AddTraffic(fs),
		requests: fs.Int("requests", 20000, "number of requests to simulate"),
		nodes:    fs.Int("nodes", 0, "cluster size (0 = scenario default)"),
		fanOut:   fs.Int("search-components", 0, "dominant-stage fan-out (0 = scenario default)"),
		seed:     fs.Int64("seed", 1, "random seed"),
		shards: fs.Int("shards", 1, "intra-run shard workers per simulation: profiling, matrix construction,\n"+
			"monitor sampling and demand ticks fan out across this many cores\n"+
			"(-1 = all cores); results are bit-identical at any value"),
		lanes: AddLanes(fs),
	}
}

// AddRun registers the single-run selectors -technique and -rate
// (pcs-sim, pcs-live; pcs-sweep's axes come from -techniques/-rates).
func (sf *SpecFlags) AddRun() *SpecFlags {
	sf.technique = AddTechnique(sf.fs)
	sf.rate = sf.fs.Float64("rate", 100, "request arrival rate (requests/second)")
	return sf
}

// AddReplication registers -replications and -workers.
func (sf *SpecFlags) AddReplication() *SpecFlags {
	sf.replications = sf.fs.Int("replications", 1, "independent replications to run and aggregate (mean±CI95)")
	sf.workers = sf.fs.Int("workers", 0, "parallel simulation workers (0 = all cores); never affects the results")
	return sf
}

// AddTuning registers the PCS tuning knobs -interval, -epsilon and -queue.
func (sf *SpecFlags) AddTuning() *SpecFlags {
	sf.interval = sf.fs.Float64("interval", 5, "PCS scheduling interval (seconds)")
	sf.epsilon = sf.fs.Float64("epsilon", 0.000005, "PCS migration threshold ε (seconds)")
	sf.queue = sf.fs.String("queue", "mg1", "PCS queue model: mg1, mm1 or none")
	return sf
}

// Spec resolves the parsed flags into a validated RunSpec: the -spec-file
// base (if any) with explicit flags layered on top. An explicit -scenario
// clears a file's graph deployment and vice versa, so overriding the
// deployment never trips the one-service check by accident.
func (sf *SpecFlags) Spec() (pcs.RunSpec, error) {
	var spec pcs.RunSpec
	fromFile := strings.TrimSpace(*sf.specFile) != ""
	if fromFile {
		var err error
		if spec, err = pcs.LoadRunSpec(strings.TrimSpace(*sf.specFile)); err != nil {
			return pcs.RunSpec{}, err
		}
	}
	set := map[string]bool{}
	sf.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	use := func(name string) bool { return !fromFile || set[name] }

	if use("scenario") {
		spec.Scenario = *sf.scenario
	}
	if use("graph-file") {
		spec.GraphFile = *sf.graphFile
	}
	if fromFile && set["scenario"] && !set["graph-file"] {
		spec.Graph, spec.GraphFile = nil, ""
	}
	if fromFile && set["graph-file"] && !set["scenario"] {
		spec.Scenario, spec.Graph = "", nil
	}
	if use("policy") {
		spec.Policy = *sf.policy
	}
	if use("requests") {
		spec.Requests = *sf.requests
	}
	if use("nodes") {
		spec.Nodes = *sf.nodes
	}
	if use("search-components") {
		spec.SearchComponents = *sf.fanOut
	}
	if use("seed") {
		spec.Seed = *sf.seed
	}
	if use("shards") {
		spec.Shards = *sf.shards
	}
	if use("lanes") {
		spec.Lanes = *sf.lanes
	}
	if sf.technique != nil && use("technique") {
		spec.Technique = *sf.technique
	}
	if sf.rate != nil && use("rate") {
		spec.Rate = *sf.rate
	}
	if sf.replications != nil && use("replications") {
		spec.Replications = *sf.replications
	}
	if sf.workers != nil && use("workers") {
		spec.Workers = *sf.workers
	}
	if sf.interval != nil && use("interval") {
		spec.SchedulingInterval = *sf.interval
	}
	if sf.epsilon != nil && use("epsilon") {
		spec.EpsilonSeconds = *sf.epsilon
	}
	if sf.queue != nil && use("queue") {
		spec.QueueModel = *sf.queue
	}

	tspec, err := sf.traffic.Spec()
	if err != nil {
		return pcs.RunSpec{}, err
	}
	if tspec != nil {
		spec.Traffic = tspec
	}
	if err := spec.Validate(); err != nil {
		return pcs.RunSpec{}, err
	}
	return spec, nil
}

// parseTenant parses one -tenants entry: name:rate[:admitRate[:burst]].
func parseTenant(entry string) (pcs.TenantTraffic, error) {
	fail := func(msg string) (pcs.TenantTraffic, error) {
		return pcs.TenantTraffic{}, fmt.Errorf(
			"bad -tenants entry %q: %s (want name:rate[:admitRate[:burst]])", entry, msg)
	}
	parts := strings.Split(entry, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return fail("wrong number of fields")
	}
	if parts[0] == "" {
		return fail("empty tenant name")
	}
	t := pcs.TenantTraffic{Name: parts[0], Source: pcs.TrafficSpec{Kind: "poisson"}}
	rate, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || rate <= 0 {
		return fail("rate must be a positive number")
	}
	t.Source.Rate = rate
	if len(parts) >= 3 {
		admit, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || admit < 0 {
			return fail("admitRate must be a non-negative number")
		}
		t.AdmitRate = admit
	}
	if len(parts) == 4 {
		burst, err := strconv.Atoi(parts[3])
		if err != nil || burst < 0 {
			return fail("burst must be a non-negative integer")
		}
		t.Burst = burst
	}
	return t, nil
}
