package cliutil

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/pcs"
)

func newSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestSelectorsRegister(t *testing.T) {
	fs := newSet()
	tech := AddTechnique(fs)
	sc := AddScenario(fs)
	pol := AddPolicy(fs)
	if err := fs.Parse([]string{"-technique", "Basic", "-scenario", "ecommerce", "-policy", "none"}); err != nil {
		t.Fatal(err)
	}
	if *tech != "Basic" || *sc != "ecommerce" || *pol != "none" {
		t.Fatalf("parsed %q/%q/%q", *tech, *sc, *pol)
	}
	// The scenario usage text must list the registry so -h stays in sync
	// with what Register saw.
	if u := fs.Lookup("scenario").Usage; !strings.Contains(u, "tenant-storm") {
		t.Fatalf("scenario usage does not list the registry: %q", u)
	}
}

func TestParseTechniques(t *testing.T) {
	got, err := ParseTechniques(" Basic, PCS ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pcs.Basic || got[1] != pcs.PCS {
		t.Fatalf("ParseTechniques = %v", got)
	}
	if got, err := ParseTechniques(""); err != nil || got != nil {
		t.Fatalf("empty list parsed to %v, %v", got, err)
	}
	if _, err := ParseTechniques("Basic,warp"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates("10, 20,50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 50 {
		t.Fatalf("ParseRates = %v", got)
	}
	if _, err := ParseRates("10,fast"); err == nil {
		t.Fatal("non-numeric rate accepted")
	}
}

func TestParseRemotes(t *testing.T) {
	got, err := ParseRemotes(" http://a:8344, https://b/ ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "http://a:8344" || got[1] != "https://b" {
		t.Fatalf("ParseRemotes = %v", got)
	}
	if got, err := ParseRemotes("  "); err != nil || got != nil {
		t.Fatalf("empty remote list = %v, %v", got, err)
	}
	for _, bad := range []string{"a:8344", "http://a,,http://b", "ftp://x"} {
		if _, err := ParseRemotes(bad); err == nil {
			t.Fatalf("remote list %q accepted", bad)
		}
	}
}

func trafficFlags(t *testing.T, args ...string) TrafficFlags {
	t.Helper()
	fs := newSet()
	tf := AddTraffic(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return tf
}

func TestTrafficFlagsSpec(t *testing.T) {
	// Neither flag: nil spec, keep the scenario/scalar path.
	spec, err := trafficFlags(t).Spec()
	if err != nil || spec != nil {
		t.Fatalf("no flags gave %+v, %v", spec, err)
	}

	spec, err = trafficFlags(t, "-trace-file", "arrivals.ndjson").Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "trace" || spec.Path != "arrivals.ndjson" {
		t.Fatalf("-trace-file spec %+v", spec)
	}

	spec, err = trafficFlags(t, "-tenants", "search:60,feed:25:40:20,crawler:5:30").Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "multi-tenant" || len(spec.Tenants) != 3 {
		t.Fatalf("-tenants spec %+v", spec)
	}
	feed := spec.Tenants[1]
	if feed.Name != "feed" || feed.Source.Rate != 25 || feed.AdmitRate != 40 || feed.Burst != 20 {
		t.Fatalf("feed tenant %+v", feed)
	}
	if c := spec.Tenants[2]; c.AdmitRate != 30 || c.Burst != 0 {
		t.Fatalf("crawler tenant %+v", c)
	}
	if _, err := trafficFlags(t, "-trace-file", "a.ndjson", "-tenants", "x:1").Spec(); err == nil {
		t.Fatal("-trace-file with -tenants accepted")
	}
	for _, bad := range []string{"search", "search:-2", ":5", "a:1:2:3:4", "a:1:x", "a:1:2:-1"} {
		if _, err := trafficFlags(t, "-tenants", bad).Spec(); err == nil {
			t.Fatalf("bad -tenants entry %q accepted", bad)
		}
	}
}

func specFlags(t *testing.T, args ...string) pcs.RunSpec {
	t.Helper()
	fs := newSet()
	sf := AddSpec(fs).AddRun().AddReplication().AddTuning()
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSpecFlagsDefaults pins the flags-only path: a bare invocation still
// means the evaluation default run.
func TestSpecFlagsDefaults(t *testing.T) {
	spec := specFlags(t)
	if spec.Technique != "PCS" || spec.Requests != 20000 || spec.Seed != 1 ||
		spec.Rate != 100 || spec.Replications != 1 || spec.Shards != 1 ||
		spec.SchedulingInterval != 5 || spec.QueueModel != "mg1" {
		t.Fatalf("default spec %+v", spec)
	}
	spec = specFlags(t, "-technique", "Basic", "-rate", "250", "-seed", "9")
	if spec.Technique != "Basic" || spec.Rate != 250 || spec.Seed != 9 {
		t.Fatalf("flag spec %+v", spec)
	}
}

// TestSpecFlagsFilePrecedence pins file-then-flags: the spec file is the
// base, explicitly-set flags override it, untouched defaults do not.
func TestSpecFlagsFilePrecedence(t *testing.T) {
	path := writeFile(t, "run.json",
		`{"technique": "RED-3", "scenario": "ecommerce", "seed": 77, "rate": 40, "requests": 900}`)

	spec := specFlags(t, "-spec-file", path)
	if spec.Technique != "RED-3" || spec.Seed != 77 || spec.Rate != 40 || spec.Requests != 900 {
		t.Fatalf("file spec %+v", spec)
	}
	// Flag defaults (technique PCS, requests 20000...) must NOT clobber
	// the file's fields when the flag was not set explicitly.
	if spec.Scenario != "ecommerce" {
		t.Fatalf("scenario lost: %+v", spec)
	}

	spec = specFlags(t, "-spec-file", path, "-seed", "5", "-technique", "PCS")
	if spec.Seed != 5 || spec.Technique != "PCS" {
		t.Fatalf("explicit flags did not override the file: %+v", spec)
	}
	if spec.Rate != 40 || spec.Requests != 900 {
		t.Fatalf("untouched fields changed: %+v", spec)
	}
}

// TestSpecFlagsDeploymentOverride pins the clearing rule: an explicit
// -scenario clears a file's graph deployment and vice versa, so overriding
// the deployment never trips the one-service check.
func TestSpecFlagsDeploymentOverride(t *testing.T) {
	graphPath := writeFile(t, "g.json", `{
	  "name": "mini",
	  "nodes": [{"name": "solo", "components": 2, "baseServiceTime": 0.001}]
	}`)
	withGraph := writeFile(t, "graph-run.json",
		`{"graphFile": `+strconv.Quote(graphPath)+`, "seed": 3}`)
	spec := specFlags(t, "-spec-file", withGraph, "-scenario", "ecommerce")
	if spec.Scenario != "ecommerce" || spec.GraphFile != "" || spec.Graph != nil {
		t.Fatalf("-scenario did not clear the file's graph: %+v", spec)
	}

	withScenario := writeFile(t, "scenario-run.json", `{"scenario": "ecommerce", "seed": 3}`)
	spec = specFlags(t, "-spec-file", withScenario, "-graph-file", graphPath)
	if spec.Scenario != "" || spec.GraphFile != graphPath {
		t.Fatalf("-graph-file did not clear the file's scenario: %+v", spec)
	}

	// Both set explicitly is still the one-service conflict.
	fs := newSet()
	sf := AddSpec(fs)
	if err := fs.Parse([]string{"-scenario", "ecommerce", "-graph-file", graphPath}); err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Spec(); err == nil {
		t.Fatal("explicit -scenario with -graph-file accepted")
	}
}

// TestSpecFlagsTrafficOverride pins that traffic flags replace a file's
// traffic spec, and that absent flags keep it.
func TestSpecFlagsTrafficOverride(t *testing.T) {
	path := writeFile(t, "traffic-run.json",
		`{"traffic": {"kind": "poisson", "rate": 10}, "seed": 2}`)
	spec := specFlags(t, "-spec-file", path)
	if spec.Traffic == nil || spec.Traffic.Kind != "poisson" || spec.Traffic.Rate != 10 {
		t.Fatalf("file traffic lost: %+v", spec.Traffic)
	}
	spec = specFlags(t, "-spec-file", path, "-tenants", "search:60")
	if spec.Traffic == nil || spec.Traffic.Kind != "multi-tenant" || len(spec.Traffic.Tenants) != 1 {
		t.Fatalf("-tenants did not override the file's traffic: %+v", spec.Traffic)
	}
}
