package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro/pcs"
)

func newSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestSelectorsRegister(t *testing.T) {
	fs := newSet()
	tech := AddTechnique(fs)
	sc := AddScenario(fs)
	pol := AddPolicy(fs)
	if err := fs.Parse([]string{"-technique", "Basic", "-scenario", "ecommerce", "-policy", "none"}); err != nil {
		t.Fatal(err)
	}
	if *tech != "Basic" || *sc != "ecommerce" || *pol != "none" {
		t.Fatalf("parsed %q/%q/%q", *tech, *sc, *pol)
	}
	// The scenario usage text must list the registry so -h stays in sync
	// with what Register saw.
	if u := fs.Lookup("scenario").Usage; !strings.Contains(u, "tenant-storm") {
		t.Fatalf("scenario usage does not list the registry: %q", u)
	}
}

func TestParseTechniques(t *testing.T) {
	got, err := ParseTechniques(" Basic, PCS ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != pcs.Basic || got[1] != pcs.PCS {
		t.Fatalf("ParseTechniques = %v", got)
	}
	if got, err := ParseTechniques(""); err != nil || got != nil {
		t.Fatalf("empty list parsed to %v, %v", got, err)
	}
	if _, err := ParseTechniques("Basic,warp"); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestParseRates(t *testing.T) {
	got, err := ParseRates("10, 20,50")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 50 {
		t.Fatalf("ParseRates = %v", got)
	}
	if _, err := ParseRates("10,fast"); err == nil {
		t.Fatal("non-numeric rate accepted")
	}
}

func trafficFlags(t *testing.T, args ...string) TrafficFlags {
	t.Helper()
	fs := newSet()
	tf := AddTraffic(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return tf
}

func TestTrafficFlagsSpec(t *testing.T) {
	// Neither flag: nil spec, keep the scenario/scalar path.
	spec, err := trafficFlags(t).Spec()
	if err != nil || spec != nil {
		t.Fatalf("no flags gave %+v, %v", spec, err)
	}

	spec, err = trafficFlags(t, "-trace-file", "arrivals.ndjson").Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "trace" || spec.Path != "arrivals.ndjson" {
		t.Fatalf("-trace-file spec %+v", spec)
	}

	spec, err = trafficFlags(t, "-tenants", "search:60,feed:25:40:20,crawler:5:30").Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "multi-tenant" || len(spec.Tenants) != 3 {
		t.Fatalf("-tenants spec %+v", spec)
	}
	feed := spec.Tenants[1]
	if feed.Name != "feed" || feed.Source.Rate != 25 || feed.AdmitRate != 40 || feed.Burst != 20 {
		t.Fatalf("feed tenant %+v", feed)
	}
	if c := spec.Tenants[2]; c.AdmitRate != 30 || c.Burst != 0 {
		t.Fatalf("crawler tenant %+v", c)
	}
	if _, err := trafficFlags(t, "-trace-file", "a.ndjson", "-tenants", "x:1").Spec(); err == nil {
		t.Fatal("-trace-file with -tenants accepted")
	}
	for _, bad := range []string{"search", "search:-2", ":5", "a:1:2:3:4", "a:1:x", "a:1:2:-1"} {
		if _, err := trafficFlags(t, "-tenants", bad).Spec(); err == nil {
			t.Fatalf("bad -tenants entry %q accepted", bad)
		}
	}
}
