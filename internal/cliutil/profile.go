package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags carries the stdlib pprof selectors. Register with
// AddProfile, then call Start after flag.Parse and defer the returned
// stop function.
type ProfileFlags struct {
	// CPU is the path the CPU profile is written to ("" = off).
	CPU *string
	// Mem is the path the heap profile is written to ("" = off).
	Mem *string
}

// AddProfile registers -cpuprofile and -memprofile and returns their
// values.
func AddProfile(fs *flag.FlagSet) ProfileFlags {
	return ProfileFlags{
		CPU: fs.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)"),
		Mem: fs.String("memprofile", "", "write a heap profile to this file on exit (inspect with go tool pprof)"),
	}
}

// Start begins CPU profiling if requested and returns a stop function
// that finishes the CPU profile and writes the heap profile. The stop
// function must run on every exit path — defer it right after Start:
//
//	stop, err := prof.Start()
//	if err != nil { ... }
//	defer stop()
//
// Profiling failures after startup (e.g. an unwritable heap-profile path
// discovered at exit) are reported on stderr rather than returned; by
// then the run's real output has already been produced.
func (pf ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if *pf.CPU != "" {
		cpuFile, err = os.Create(*pf.CPU)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %v", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "warning: closing CPU profile: %v\n", err)
			}
		}
		if *pf.Mem != "" {
			f, err := os.Create(*pf.Mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "warning: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "warning: -memprofile: %v\n", err)
			}
		}
	}, nil
}
