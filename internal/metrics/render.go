package metrics

import (
	"math"
	"strings"
)

// sparkLevels are the eight block glyphs a sparkline quantises into.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a fixed-width unicode sparkline. Values are
// bucketed to width columns (averaging within a bucket) and scaled to the
// series' own min–max range; a flat series renders at the lowest level.
// Non-finite values render as spaces. An empty series renders all spaces.
func Sparkline(vals []float64, width int) string {
	if width <= 0 {
		return ""
	}
	cols := bucket(vals, width)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range cols {
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range cols {
		switch {
		case math.IsNaN(v):
			b.WriteRune(' ')
		case hi <= lo:
			b.WriteRune(sparkLevels[0])
		default:
			lvl := int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= len(sparkLevels) {
				lvl = len(sparkLevels) - 1
			}
			b.WriteRune(sparkLevels[lvl])
		}
	}
	return b.String()
}

// bucket resamples vals to exactly width columns. With fewer values than
// columns the leading columns are NaN-padded so the sparkline grows from
// the left edge as a run progresses; with more, each column averages its
// share of the finite values.
func bucket(vals []float64, width int) []float64 {
	cols := make([]float64, width)
	for i := range cols {
		cols[i] = math.NaN()
	}
	n := len(vals)
	if n == 0 {
		return cols
	}
	if n <= width {
		for i, v := range vals {
			if math.IsInf(v, 0) {
				v = math.NaN() // render as the documented blank column
			}
			cols[width-n+i] = v
		}
		return cols
	}
	for c := 0; c < width; c++ {
		lo := c * n / width
		hi := (c + 1) * n / width
		sum, cnt := 0.0, 0
		for _, v := range vals[lo:hi] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			sum += v
			cnt++
		}
		if cnt > 0 {
			cols[c] = sum / float64(cnt)
		}
	}
	return cols
}

// Gauge renders v in [0, 1] as a width-column horizontal bar, e.g.
// "███████░░░" — the progress and utilization meters of the live dashboard.
func Gauge(v float64, width int) string {
	if width <= 0 {
		return ""
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	filled := int(v*float64(width) + 0.5)
	return strings.Repeat("█", filled) + strings.Repeat("░", width-filled)
}
