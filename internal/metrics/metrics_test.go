package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSeriesKeepsEverythingUnderCapacity(t *testing.T) {
	s := NewSeries[int](16)
	for i := 0; i < 10; i++ {
		s.Observe(float64(i), i)
	}
	if s.Len() != 10 || s.Stride() != 1 {
		t.Fatalf("len=%d stride=%d, want 10/1", s.Len(), s.Stride())
	}
	for i, smp := range s.Samples() {
		if smp.Value != i || smp.Time != float64(i) {
			t.Fatalf("sample %d = %+v", i, smp)
		}
	}
}

func TestSeriesDecimatesAtCapacity(t *testing.T) {
	const cap = 8
	s := NewSeries[int](cap)
	n := 1000
	for i := 0; i < n; i++ {
		s.Observe(float64(i), i)
	}
	if s.Len() > cap {
		t.Fatalf("series grew past capacity: %d > %d", s.Len(), cap)
	}
	if s.Offered() != n {
		t.Fatalf("offered %d, want %d", s.Offered(), n)
	}
	// Retained samples are evenly spaced at the final stride and span the
	// run from its very first observation.
	samples := s.Samples()
	if samples[0].Value != 0 {
		t.Fatalf("first sample lost: %+v", samples[0])
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Value-samples[i-1].Value != s.Stride() {
			t.Fatalf("uneven spacing at %d: %d → %d with stride %d",
				i, samples[i-1].Value, samples[i].Value, s.Stride())
		}
	}
	// The stride must be exactly the doubling count: 2^k where k is the
	// number of decimations.
	if s.Stride()&(s.Stride()-1) != 0 {
		t.Fatalf("stride %d is not a power of two", s.Stride())
	}
	// The newest retained sample is within one stride of the newest offered.
	last, _ := s.Last()
	if n-1-last.Value >= s.Stride() {
		t.Fatalf("tail too stale: last value %d of %d at stride %d", last.Value, n, s.Stride())
	}
}

func TestSeriesOddCapacityRoundsUp(t *testing.T) {
	s := NewSeries[int](7)
	for i := 0; i < 100; i++ {
		s.Observe(float64(i), i)
	}
	if s.Len() > 8 {
		t.Fatalf("len %d exceeds rounded capacity 8", s.Len())
	}
}

func TestSeriesTinyCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSeries(1) did not panic")
		}
	}()
	NewSeries[int](1)
}

func TestValuesAndRates(t *testing.T) {
	type point struct{ completed float64 }
	s := NewSeries[point](8)
	// Cumulative counter growing 10/s.
	for i := 1; i <= 4; i++ {
		s.Observe(float64(i), point{completed: float64(10 * i)})
	}
	vals := Values(s.Samples(), func(p point) float64 { return p.completed })
	if len(vals) != 4 || vals[3] != 40 {
		t.Fatalf("values = %v", vals)
	}
	rates := Rates(s.Samples(), func(p point) float64 { return p.completed })
	for i, r := range rates {
		if math.Abs(r-10) > 1e-9 {
			t.Fatalf("rate[%d] = %v, want 10", i, r)
		}
	}
}

func TestSparklineWidthAndLevels(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	sp := Sparkline(vals, 8)
	if utf8.RuneCountInString(sp) != 8 {
		t.Fatalf("sparkline %q has %d runes, want 8", sp, utf8.RuneCountInString(sp))
	}
	if !strings.HasPrefix(sp, "▁") || !strings.HasSuffix(sp, "█") {
		t.Fatalf("sparkline %q does not span min→max", sp)
	}
	// Flat series renders at the lowest level, not blank.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if flat != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", flat)
	}
	// Short series grows from the left: leading columns blank.
	short := Sparkline([]float64{1, 2}, 4)
	if utf8.RuneCountInString(short) != 4 || !strings.HasPrefix(short, "  ") {
		t.Fatalf("short sparkline = %q", short)
	}
	// Empty and zero-width are safe.
	if got := Sparkline(nil, 3); got != "   " {
		t.Fatalf("empty sparkline = %q", got)
	}
	if Sparkline(vals, 0) != "" {
		t.Fatal("zero-width sparkline not empty")
	}
	// Downsampling: more values than columns still yields width runes.
	long := make([]float64, 1000)
	for i := range long {
		long[i] = math.Sin(float64(i) / 50)
	}
	if got := Sparkline(long, 12); utf8.RuneCountInString(got) != 12 {
		t.Fatalf("downsampled sparkline %q wrong width", got)
	}
}

func TestGauge(t *testing.T) {
	if g := Gauge(0.5, 10); utf8.RuneCountInString(g) != 10 {
		t.Fatalf("gauge %q wrong width", g)
	}
	if g := Gauge(0, 4); g != "░░░░" {
		t.Fatalf("empty gauge = %q", g)
	}
	if g := Gauge(1, 4); g != "████" {
		t.Fatalf("full gauge = %q", g)
	}
	if g := Gauge(2, 4); g != "████" { // clamped
		t.Fatalf("overfull gauge = %q", g)
	}
	if g := Gauge(math.NaN(), 4); g != "░░░░" {
		t.Fatalf("NaN gauge = %q", g)
	}
}
