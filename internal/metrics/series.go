// Package metrics provides bounded time-series collection and terminal
// rendering for live observability of simulation runs. A Series records
// timestamped samples (typically pcs.Snapshot values taken on a fixed
// virtual-time cadence) in O(capacity) memory: when the buffer fills, every
// other retained sample is dropped and the recording stride doubles, so the
// series always spans the whole run at progressively coarser resolution
// instead of truncating its head or tail.
//
// Collection is pure observation — a Series never touches the simulation it
// describes, which is what keeps sampled runs bit-identical to unsampled
// ones (see docs/architecture.md, "Determinism invariants").
package metrics

// Sample is one timestamped observation.
type Sample[T any] struct {
	// Time is the virtual time of the observation in seconds.
	Time float64
	// Value is the observed state.
	Value T
}

// Series is a bounded time-series of samples. Observations are offered on a
// fixed cadence; the Series keeps every stride-th one, and doubles the
// stride (dropping every other retained sample) whenever the buffer reaches
// capacity. Retained samples are therefore always evenly spaced at
// stride × the offering cadence, covering the full observed range.
//
// The zero value is not usable; call NewSeries.
type Series[T any] struct {
	capacity int
	stride   int
	offered  int
	samples  []Sample[T]
}

// NewSeries returns a Series holding at most capacity samples. Capacities
// below 2 panic (decimation needs at least two slots); odd capacities are
// rounded up so halving keeps retained samples aligned to the doubled
// stride.
func NewSeries[T any](capacity int) *Series[T] {
	if capacity < 2 {
		panic("metrics: series capacity must be at least 2")
	}
	if capacity%2 != 0 {
		capacity++
	}
	return &Series[T]{
		capacity: capacity,
		stride:   1,
		samples:  make([]Sample[T], 0, capacity),
	}
}

// Observe offers one observation at virtual time t. The Series records it
// if it falls on the current stride, decimating first if the buffer is
// full. Offerings must be made in nondecreasing time order; the Series does
// not check, it simply stores what it is given.
func (s *Series[T]) Observe(t float64, v T) {
	keep := s.offered%s.stride == 0
	s.offered++
	if !keep {
		return
	}
	if len(s.samples) == s.capacity {
		// Halve: keep even positions. The incoming observation's index is
		// capacity × stride, which is a multiple of the doubled stride
		// because capacity is even — retained samples stay evenly spaced.
		kept := s.samples[:0]
		for i := 0; i < len(s.samples); i += 2 {
			kept = append(kept, s.samples[i])
		}
		s.samples = kept
		s.stride *= 2
	}
	s.samples = append(s.samples, Sample[T]{Time: t, Value: v})
}

// Len reports the number of retained samples.
func (s *Series[T]) Len() int { return len(s.samples) }

// Offered reports how many observations were offered in total.
func (s *Series[T]) Offered() int { return s.offered }

// Stride reports how many offered observations one retained sample
// currently stands for (1 until the first decimation, then doubling).
func (s *Series[T]) Stride() int { return s.stride }

// Samples returns the retained samples in time order. Callers must not
// mutate the returned slice; it is invalidated by the next Observe.
func (s *Series[T]) Samples() []Sample[T] { return s.samples }

// Last returns the most recent retained sample, false if none.
func (s *Series[T]) Last() (Sample[T], bool) {
	if len(s.samples) == 0 {
		return Sample[T]{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Values extracts one numeric field from every retained sample, in time
// order — the shape the render helpers consume.
func Values[T any](samples []Sample[T], pick func(T) float64) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = pick(s.Value)
	}
	return out
}

// Rates turns a cumulative counter into a per-second rate between
// consecutive retained samples: out[i] = (c[i]-c[i-1])/(t[i]-t[i-1]), with
// out[0] measured from the origin (0 at time 0). Decimation preserves
// correctness because the counters are cumulative — dropping intermediate
// samples only widens the averaging window.
func Rates[T any](samples []Sample[T], pick func(T) float64) []float64 {
	out := make([]float64, len(samples))
	prevT, prevC := 0.0, 0.0
	for i, s := range samples {
		dt := s.Time - prevT
		if dt > 0 {
			out[i] = (pick(s.Value) - prevC) / dt
		}
		prevT, prevC = s.Time, pick(s.Value)
	}
	return out
}
