package sim

import (
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func(float64) { order = append(order, 3) })
	e.At(1, func(float64) { order = append(order, 1) })
	e.At(2, func(float64) { order = append(order, 2) })
	e.RunUntilEmpty()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(float64) { order = append(order, i) })
	}
	e.RunUntilEmpty()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(2.5, func(now float64) { at = now })
	e.RunUntilEmpty()
	if at != 2.5 {
		t.Fatalf("callback saw now=%v", at)
	}
	if e.Now() != 2.5 {
		t.Fatalf("engine now=%v", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(1, func(now float64) {
		e.After(2, func(now2 float64) { times = append(times, now2) })
	})
	e.RunUntilEmpty()
	if len(times) != 1 || times[0] != 3 {
		t.Fatalf("After fired at %v, want [3]", times)
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(10, func(float64) { fired = true })
	end := e.Run(5)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != 5 || e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	// A later Run picks the event up.
	e.Run(20)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestRunAdvancesClockToHorizonWhenQueueDrains(t *testing.T) {
	e := NewEngine()
	e.At(1, func(float64) {})
	if end := e.Run(100); end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func(float64) { count++; e.Stop() })
	e.At(2, func(float64) { count++ })
	e.Run(10)
	if count != 1 {
		t.Fatalf("count = %d, want 1 (stopped)", count)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(1, func(float64) { fired = true })
	if !h.Cancel() {
		t.Fatal("first cancel should report true")
	}
	if h.Cancel() {
		t.Fatal("second cancel should report false")
	}
	e.RunUntilEmpty()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(1, func(float64) { order = append(order, 1) })
	h2 := e.At(2, func(float64) { order = append(order, 2) })
	e.At(3, func(float64) { order = append(order, 3) })
	h2.Cancel()
	e.RunUntilEmpty()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func(float64) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func(float64) {})
	})
	e.RunUntilEmpty()
}

func TestSchedulingNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling at NaN did not panic")
		}
	}()
	e.At(math.NaN(), func(float64) {})
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var times []float64
	tk := e.Every(2, func(now float64) { times = append(times, now) })
	e.Run(9)
	tk.Stop()
	want := []float64{2, 4, 6, 8}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(1, func(float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestEveryAt(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.EveryAt(0.5, 1, func(now float64) { times = append(times, now) })
	e.Run(3)
	want := []float64{0.5, 1.5, 2.5}
	if len(times) != len(want) {
		t.Fatalf("fired at %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestEveryPanicsOnBadPeriod(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	e.Every(0, func(float64) {})
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func(float64) {})
	}
	e.RunUntilEmpty()
	if e.Fired() != 5 {
		t.Fatalf("fired = %d, want 5", e.Fired())
	}
}

func TestNestedScheduling(t *testing.T) {
	// Events scheduled from inside events interleave correctly.
	e := NewEngine()
	var order []string
	e.At(1, func(float64) {
		order = append(order, "a")
		e.At(1.5, func(float64) { order = append(order, "b") })
	})
	e.At(2, func(float64) { order = append(order, "c") })
	e.RunUntilEmpty()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestManyEventsStress(t *testing.T) {
	e := NewEngine()
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		e.At(float64(i%100), func(float64) { count++ })
	}
	e.RunUntilEmpty()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestEventPoolingReusesStructs(t *testing.T) {
	// After an event fires its struct returns to the pool; a stale handle
	// must not cancel the struct's next occupant.
	e := NewEngine()
	h1 := e.At(1, func(float64) {})
	e.Run(2)
	fired := false
	e.At(3, func(float64) { fired = true }) // likely reuses h1's struct
	if h1.Cancel() {
		t.Fatal("stale handle cancelled a recycled event")
	}
	e.Run(4)
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

func TestCancelledEventStructIsRecycled(t *testing.T) {
	e := NewEngine()
	h := e.At(5, func(float64) { t.Fatal("cancelled event fired") })
	if !h.Cancel() {
		t.Fatal("first cancel failed")
	}
	if h.Cancel() {
		t.Fatal("second cancel succeeded")
	}
	count := 0
	e.At(1, func(float64) { count++ })
	e.RunUntilEmpty()
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestHandleTimeSurvivesRecycling(t *testing.T) {
	e := NewEngine()
	h := e.At(2.5, func(float64) {})
	e.RunUntilEmpty()
	e.At(9, func(float64) {})
	if h.Time() != 2.5 {
		t.Fatalf("Time() = %v after recycling, want 2.5", h.Time())
	}
}

func TestPeekNextTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekNextTime(); ok {
		t.Fatal("empty engine has a next event")
	}
	e.At(3, func(float64) {})
	e.At(1, func(float64) {})
	if next, ok := e.PeekNextTime(); !ok || next != 1 {
		t.Fatalf("PeekNextTime = %v, %v; want 1, true", next, ok)
	}
	if e.Now() != 0 {
		t.Fatal("peek advanced the clock")
	}
}

func TestStepExecutesOneEvent(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(1, func(now float64) { fired = append(fired, now) })
	e.At(2, func(now float64) { fired = append(fired, now) })
	if !e.Step() {
		t.Fatal("Step on non-empty queue returned false")
	}
	if len(fired) != 1 || fired[0] != 1 || e.Now() != 1 {
		t.Fatalf("after one step: fired=%v now=%v", fired, e.Now())
	}
	if !e.Step() {
		t.Fatal("second step returned false")
	}
	if e.Step() {
		t.Fatal("Step on drained queue returned true")
	}
	if len(fired) != 2 || e.Now() != 2 {
		t.Fatalf("after stepping dry: fired=%v now=%v", fired, e.Now())
	}
}

// TestStepLoopMatchesRun drives an identical schedule once with Run and
// once with the Peek/Step primitives, checking fire order, times and the
// fired counter all agree — the contract the steppable Simulation relies
// on.
func TestStepLoopMatchesRun(t *testing.T) {
	build := func(e *Engine, log *[]float64) {
		var reschedule func(now float64)
		reschedule = func(now float64) {
			*log = append(*log, now)
			if now < 5 {
				e.After(0.7, reschedule)
				e.After(1.3, func(at float64) { *log = append(*log, at) })
			}
		}
		e.At(0.5, reschedule)
		e.Every(1.1, func(now float64) { *log = append(*log, -now) })
	}

	ran := NewEngine()
	var ranLog []float64
	build(ran, &ranLog)
	ran.Run(8)

	stepped := NewEngine()
	var stepLog []float64
	build(stepped, &stepLog)
	for {
		next, ok := stepped.PeekNextTime()
		if !ok || next > 8 {
			break
		}
		stepped.Step()
	}

	if len(ranLog) != len(stepLog) {
		t.Fatalf("event counts differ: Run %d vs stepped %d", len(ranLog), len(stepLog))
	}
	for i := range ranLog {
		if ranLog[i] != stepLog[i] {
			t.Fatalf("event %d differs: Run %v vs stepped %v", i, ranLog[i], stepLog[i])
		}
	}
	if ran.Fired() != stepped.Fired() {
		t.Fatalf("fired counters differ: %d vs %d", ran.Fired(), stepped.Fired())
	}
}

// TestRunResumesAfterPartialRun checks that Run(h1) then Run(h2) executes
// the same events as a single Run(h2) — the property that lets
// Simulation.RunTo slice a run at arbitrary points.
func TestRunResumesAfterPartialRun(t *testing.T) {
	build := func(e *Engine, log *[]float64) {
		for i := 1; i <= 10; i++ {
			at := float64(i) * 0.9
			e.At(at, func(now float64) { *log = append(*log, now) })
		}
	}
	whole := NewEngine()
	var wholeLog []float64
	build(whole, &wholeLog)
	whole.Run(9)

	sliced := NewEngine()
	var slicedLog []float64
	build(sliced, &slicedLog)
	for _, h := range []float64{1.0, 2.5, 2.5, 6.0, 9} {
		sliced.Run(h)
	}
	if sliced.Now() != whole.Now() {
		t.Fatalf("clocks differ: %v vs %v", sliced.Now(), whole.Now())
	}
	if len(wholeLog) != len(slicedLog) {
		t.Fatalf("event counts differ: %d vs %d", len(wholeLog), len(slicedLog))
	}
	for i := range wholeLog {
		if wholeLog[i] != slicedLog[i] {
			t.Fatalf("event %d differs: %v vs %v", i, wholeLog[i], slicedLog[i])
		}
	}
}
