// Package sim implements a deterministic discrete-event simulation engine:
// a virtual clock, a binary-heap event queue, and periodic tasks. All of the
// PCS reproduction's cluster, workload and service dynamics run on top of
// this engine.
//
// Time is a float64 number of seconds of virtual time. Events scheduled for
// the same instant fire in FIFO order of scheduling, which keeps runs
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback scheduled to run at a point in virtual time.
type Event func(now float64)

type scheduledEvent struct {
	at    float64
	seq   uint64 // tie-break: FIFO among same-time events
	fn    Event
	index int // heap index, -1 once popped or cancelled
}

// EventHandle allows a scheduled event to be cancelled before it fires. It
// is a small value: copy it freely. The zero value is an inert handle whose
// Cancel is a no-op.
type EventHandle struct {
	ev     *scheduledEvent
	engine *Engine
	seq    uint64 // guards against the pooled event being reused
	at     float64
}

// Cancel removes the event from the queue. Cancelling an event that already
// fired or was already cancelled is a no-op — the event structs are pooled,
// so the handle's sequence number distinguishes its event from a later one
// reusing the same struct. It reports whether the event was actually
// removed.
func (h EventHandle) Cancel() bool {
	if h.ev == nil || h.ev.index < 0 || h.ev.seq != h.seq {
		return false
	}
	heap.Remove(&h.engine.queue, h.ev.index)
	h.engine.recycle(h.ev)
	return true
}

// Time returns the virtual time the event is (or was) scheduled for.
func (h EventHandle) Time() float64 { return h.at }

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*scheduledEvent)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     float64
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	free    []*scheduledEvent // recycled event structs (hot-path pooling)
}

// NewEngine returns an engine with the clock at 0. The event queue is
// pre-sized so steady-state simulation rarely grows it; the event pool
// fills lazily from fired events.
func NewEngine() *Engine {
	return &Engine{queue: make(eventQueue, 0, 1024)}
}

// alloc takes an event struct from the pool, or allocates a fresh one.
func (e *Engine) alloc() *scheduledEvent {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &scheduledEvent{}
}

// recycle returns a popped or cancelled event struct to the pool. The
// struct's sequence number stays until reuse; outstanding handles detect
// staleness via index < 0 now and the seq mismatch after reuse.
func (e *Engine) recycle(ev *scheduledEvent) {
	ev.fn = nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a logic bug that would silently corrupt causality.
func (e *Engine) At(t float64, fn Event) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %.9f before now %.9f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic("sim: scheduling at non-finite time")
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.queue, ev)
	return EventHandle{ev: ev, engine: e, seq: ev.seq, at: t}
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn Event) EventHandle {
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// PeekNextTime reports the virtual time of the earliest queued event
// without executing it. The second return is false when the queue is empty.
// Together with Step it lets callers interleave observation with execution
// instead of handing the whole run to Run.
func (e *Engine) PeekNextTime() (float64, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// Step pops the earliest queued event, advances the clock to its fire time
// and executes it. It reports false (and leaves the clock untouched) when
// the queue is empty. Step ignores the horizon and Stop — bounding a
// stepped run is the caller's job, typically via PeekNextTime.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	next := e.queue[0]
	heap.Pop(&e.queue)
	e.now = next.at
	fn := next.fn
	e.recycle(next) // fn is saved; the struct may be reused by fn's own scheduling
	e.fired++
	fn(e.now)
	return true
}

// Run executes events in time order until the queue drains, the horizon is
// reached, or Stop is called. It returns the final virtual time. Events
// scheduled beyond the horizon remain queued; the clock is left at the
// horizon if it was reached. Run is a loop over the PeekNextTime/Step
// primitives; stepped and monolithic execution are interchangeable.
func (e *Engine) Run(horizon float64) float64 {
	e.stopped = false
	for !e.stopped {
		next, ok := e.PeekNextTime()
		if !ok {
			break
		}
		if next > horizon {
			e.now = horizon
			return e.now
		}
		e.Step()
	}
	if e.now < horizon && !e.stopped && !math.IsInf(horizon, 1) {
		e.now = horizon
	}
	return e.now
}

// RunUntilEmpty executes all queued events regardless of time.
func (e *Engine) RunUntilEmpty() float64 {
	return e.Run(math.Inf(1))
}

// Every schedules fn to run now+period, now+2·period, ... until the returned
// Ticker is stopped. The first invocation is one period from now (or at
// start if a positive start offset is supplied via EveryAt).
func (e *Engine) Every(period float64, fn Event) *Ticker {
	return e.EveryAt(e.now+period, period, fn)
}

// EveryAt schedules fn at absolute time first and then every period
// thereafter.
func (e *Engine) EveryAt(first, period float64, fn Event) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.handle = e.At(first, t.tick)
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual-time period.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      Event
	handle  EventHandle
	stopped bool
}

func (t *Ticker) tick(now float64) {
	if t.stopped {
		return
	}
	t.fn(now)
	if !t.stopped {
		t.handle = t.engine.At(now+t.period, t.tick)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}
