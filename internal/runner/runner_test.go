package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// jobValue is a deterministic function of (rep, seed) so result slices can
// be compared across worker counts.
func jobValue(rep int, seed int64) float64 {
	src := xrand.New(seed)
	return float64(rep) + src.Float64()
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	const root, n = 42, 37
	var want []float64
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := Run(root, n, Options{Workers: workers}, func(rep int, seed int64) (float64, error) {
			return jobValue(rep, seed), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunStreamZeroIsRootSeed(t *testing.T) {
	seeds, err := Run(7, 3, Options{Workers: 1}, func(rep int, seed int64) (int64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 7 {
		t.Fatalf("replication 0 seed = %d, want the root seed 7", seeds[0])
	}
	if seeds[1] == seeds[0] || seeds[2] == seeds[1] || seeds[2] == seeds[0] {
		t.Fatalf("replication seeds collide: %v", seeds)
	}
}

func TestRunMergeMatchesSerialReference(t *testing.T) {
	// A parallel run's merged statistics must equal a plain serial loop
	// folding the same observations in replication order.
	const root, n = 9, 24
	results, err := Run(root, n, Options{Workers: 6}, func(rep int, seed int64) (float64, error) {
		return jobValue(rep, seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var merged stats.Welford
	hist := stats.NewHistogram(0, float64(n)+1, 8)
	for _, v := range results {
		merged.Add(v)
		hist.Add(v)
	}

	var ref stats.Welford
	refHist := stats.NewHistogram(0, float64(n)+1, 8)
	for rep := 0; rep < n; rep++ {
		v := jobValue(rep, xrand.StreamSeed(root, rep))
		ref.Add(v)
		refHist.Add(v)
	}
	if merged.N() != ref.N() || merged.Mean() != ref.Mean() || merged.Variance() != ref.Variance() {
		t.Fatalf("merged stats differ: mean %v vs %v, var %v vs %v",
			merged.Mean(), ref.Mean(), merged.Variance(), ref.Variance())
	}
	for i := 0; i < hist.NumBuckets(); i++ {
		if hist.Bucket(i) != refHist.Bucket(i) {
			t.Fatalf("bucket %d: %d vs %d", i, hist.Bucket(i), refHist.Bucket(i))
		}
	}
}

func TestRunErrorReportsLowestFailedReplication(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(1, 16, Options{Workers: workers}, func(rep int, seed int64) (int, error) {
			if rep%5 == 3 { // replications 3, 8, 13 fail
				return 0, fmt.Errorf("rep %d: %w", rep, errBoom)
			}
			return rep, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: error chain lost: %v", workers, err)
		}
	}
}

func TestRunRejectsNonPositiveN(t *testing.T) {
	if _, err := Run(1, 0, Options{}, func(int, int64) (int, error) { return 0, nil }); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestRunActuallyRunsConcurrently(t *testing.T) {
	// With more workers than GOMAXPROCS=1 would suggest, replications must
	// still all execute exactly once.
	var calls atomic.Int64
	res, err := Run(3, 50, Options{Workers: 8}, func(rep int, seed int64) (int, error) {
		calls.Add(1)
		return rep, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 50 {
		t.Fatalf("job ran %d times, want 50", calls.Load())
	}
	for i, v := range res {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestStreamDeliversInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var got []int
		err := Stream(42, 50, Options{Workers: workers},
			func(rep int, seed int64) (int, error) {
				// Finish in scrambled order: later replications sleep less.
				time.Sleep(time.Duration((rep%7)*100) * time.Microsecond)
				return rep * 10, nil
			},
			func(rep int, res int) error {
				got = append(got, res)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 50 {
			t.Fatalf("workers=%d: emitted %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*10 {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
	}
}

func TestStreamMatchesRunSeeds(t *testing.T) {
	runRes, err := Run(7, 12, Options{Workers: 4}, func(rep int, seed int64) (int64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var streamRes []int64
	if err := Stream(7, 12, Options{Workers: 4}, func(rep int, seed int64) (int64, error) {
		return seed, nil
	}, func(rep int, seed int64) error {
		streamRes = append(streamRes, seed)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runRes, streamRes) {
		t.Fatalf("Stream seeds differ from Run:\n%v\n%v", runRes, streamRes)
	}
}

func TestStreamJobError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		emitted := 0
		err := Stream(1, 20, Options{Workers: workers},
			func(rep int, seed int64) (int, error) {
				if rep == 5 {
					return 0, boom
				}
				return rep, nil
			},
			func(rep int, res int) error {
				emitted++
				return nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if emitted > 20 {
			t.Fatalf("workers=%d: emitted %d", workers, emitted)
		}
	}
}

func TestStreamEmitError(t *testing.T) {
	stopErr := errors.New("sink full")
	err := Stream(1, 30, Options{Workers: 4},
		func(rep int, seed int64) (int, error) { return rep, nil },
		func(rep int, res int) error {
			if rep == 3 {
				return stopErr
			}
			return nil
		})
	if !errors.Is(err, stopErr) {
		t.Fatalf("err = %v, want sink error unwrapped", err)
	}
}

func TestStreamRejectsZeroReplications(t *testing.T) {
	err := Stream(1, 0, Options{}, func(int, int64) (int, error) { return 0, nil },
		func(int, int) error { return nil })
	if err == nil {
		t.Fatal("Stream accepted n=0")
	}
}

func TestStreamClaimWindowBounded(t *testing.T) {
	// Replication 0 is much slower than its peers: the pool must not run
	// arbitrarily far ahead of the oldest unemitted replication, or the
	// reorder buffer grows O(n) and the streaming memory contract is void.
	const workers = 4
	var emitted atomic.Int64
	maxAhead := int64(0)
	var mu sync.Mutex
	err := Stream(3, 200, Options{Workers: workers},
		func(rep int, seed int64) (int, error) {
			ahead := int64(rep) - emitted.Load()
			mu.Lock()
			if ahead > maxAhead {
				maxAhead = ahead
			}
			mu.Unlock()
			if rep == 0 {
				time.Sleep(30 * time.Millisecond)
			}
			return rep, nil
		},
		func(rep int, res int) error {
			emitted.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The claim window is 2×workers; allow slack for claims racing emits.
	if limit := int64(3 * workers); maxAhead > limit {
		t.Fatalf("pool ran %d replications ahead of the emitter (window should cap near %d)",
			maxAhead, 2*workers)
	}
}
