package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// jobValue is a deterministic function of (rep, seed) so result slices can
// be compared across worker counts.
func jobValue(rep int, seed int64) float64 {
	src := xrand.New(seed)
	return float64(rep) + src.Float64()
}

func TestRunIdenticalAcrossWorkerCounts(t *testing.T) {
	const root, n = 42, 37
	var want []float64
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := Run(root, n, Options{Workers: workers}, func(rep int, seed int64) (float64, error) {
			return jobValue(rep, seed), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunStreamZeroIsRootSeed(t *testing.T) {
	seeds, err := Run(7, 3, Options{Workers: 1}, func(rep int, seed int64) (int64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seeds[0] != 7 {
		t.Fatalf("replication 0 seed = %d, want the root seed 7", seeds[0])
	}
	if seeds[1] == seeds[0] || seeds[2] == seeds[1] || seeds[2] == seeds[0] {
		t.Fatalf("replication seeds collide: %v", seeds)
	}
}

func TestRunMergeMatchesSerialReference(t *testing.T) {
	// A parallel run's merged statistics must equal a plain serial loop
	// folding the same observations in replication order.
	const root, n = 9, 24
	results, err := Run(root, n, Options{Workers: 6}, func(rep int, seed int64) (float64, error) {
		return jobValue(rep, seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var merged stats.Welford
	hist := stats.NewHistogram(0, float64(n)+1, 8)
	for _, v := range results {
		merged.Add(v)
		hist.Add(v)
	}

	var ref stats.Welford
	refHist := stats.NewHistogram(0, float64(n)+1, 8)
	for rep := 0; rep < n; rep++ {
		v := jobValue(rep, xrand.StreamSeed(root, rep))
		ref.Add(v)
		refHist.Add(v)
	}
	if merged.N() != ref.N() || merged.Mean() != ref.Mean() || merged.Variance() != ref.Variance() {
		t.Fatalf("merged stats differ: mean %v vs %v, var %v vs %v",
			merged.Mean(), ref.Mean(), merged.Variance(), ref.Variance())
	}
	for i := 0; i < hist.NumBuckets(); i++ {
		if hist.Bucket(i) != refHist.Bucket(i) {
			t.Fatalf("bucket %d: %d vs %d", i, hist.Bucket(i), refHist.Bucket(i))
		}
	}
}

func TestRunErrorReportsLowestFailedReplication(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(1, 16, Options{Workers: workers}, func(rep int, seed int64) (int, error) {
			if rep%5 == 3 { // replications 3, 8, 13 fail
				return 0, fmt.Errorf("rep %d: %w", rep, errBoom)
			}
			return rep, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: error chain lost: %v", workers, err)
		}
	}
}

func TestRunRejectsNonPositiveN(t *testing.T) {
	if _, err := Run(1, 0, Options{}, func(int, int64) (int, error) { return 0, nil }); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestRunActuallyRunsConcurrently(t *testing.T) {
	// With more workers than GOMAXPROCS=1 would suggest, replications must
	// still all execute exactly once.
	var calls atomic.Int64
	res, err := Run(3, 50, Options{Workers: 8}, func(rep int, seed int64) (int, error) {
		calls.Add(1)
		return rep, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 50 {
		t.Fatalf("job ran %d times, want 50", calls.Load())
	}
	for i, v := range res {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}
