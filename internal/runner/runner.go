// Package runner executes independent simulation replications across a
// pool of worker goroutines. The paper's evaluation (§VI) derives every
// headline number from repeated runs — six arrival rates × six techniques,
// each ideally averaged over many seeds — and those runs share nothing, so
// they parallelise perfectly.
//
// Determinism is the design constraint: replication i always runs with the
// seed xrand.StreamSeed(root, i), and results are collected into a slice
// indexed by replication, so the output is bit-identical regardless of the
// number of workers or the order in which the scheduler interleaves them.
// Aggregation (Welford merge, percentiles over per-replication metrics)
// happens after the pool drains, on the ordered slice.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

// Job computes one replication. rep is the replication index in [0, n);
// seed is the replication's deterministic RNG seed derived from the root
// seed. A Job must not share mutable state with other replications: it runs
// concurrently with them.
type Job[T any] func(rep int, seed int64) (T, error)

// Options configures the pool.
type Options struct {
	// Workers is the number of concurrent worker goroutines. Zero or
	// negative selects GOMAXPROCS, the number of usable cores.
	Workers int
}

// EffectiveWorkers reports the worker count Run actually uses for n
// replications: the configured count (or GOMAXPROCS when unset), clamped
// to n.
func (o Options) EffectiveWorkers(n int) int { return o.workers(n) }

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes n replications of job across the pool and returns their
// results ordered by replication index. Replication i runs with seed
// xrand.StreamSeed(root, i) — stream 0 is the root seed itself, so a
// 1-replication run reproduces a direct call with the root seed.
//
// If any replication fails, Run stops handing out new replications, waits
// for in-flight ones, and returns the error of the lowest-indexed
// replication that failed. Which replications are still attempted after the
// first failure depends on scheduling, so on error only the presence of a
// failure is deterministic, not the reported index; successful runs are
// fully deterministic.
func Run[T any](root int64, n int, opts Options, job Job[T]) ([]T, error) {
	if n <= 0 {
		return nil, fmt.Errorf("runner: need at least one replication, got %d", n)
	}
	results := make([]T, n)
	errs := make([]error, n)

	workers := opts.workers(n)
	if workers == 1 {
		// Serial fast path: no goroutines, same seeds, same results.
		for rep := 0; rep < n; rep++ {
			res, err := job(rep, xrand.StreamSeed(root, rep))
			if err != nil {
				return nil, fmt.Errorf("runner: replication %d: %w", rep, err)
			}
			results[rep] = res
		}
		return results, nil
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				rep := int(next.Add(1)) - 1
				if rep >= n || failed.Load() {
					return
				}
				res, err := job(rep, xrand.StreamSeed(root, rep))
				if err != nil {
					errs[rep] = err
					failed.Store(true)
					return
				}
				results[rep] = res
			}
		}()
	}
	wg.Wait()

	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("runner: replication %d: %w", rep, err)
		}
	}
	return results, nil
}

// Stream executes n replications of job across the pool and hands each
// result to emit in replication-index order, without collecting them into a
// slice — the memory contract behind streaming sinks for huge sweeps. The
// seeds and therefore the results are exactly Run's; only the delivery
// differs. emit runs on the coordinating goroutine, serially and in order;
// out-of-order completions wait in a reorder buffer. A claim window
// (2 × workers) gates how far the pool may run ahead of the oldest
// unemitted replication, so the buffer holds O(workers) results even when
// one replication is much slower than its peers — never O(n).
//
// An emit error stops the pool and is returned as-is. A job error is
// reported like Run's: the lowest-indexed failure observed, wrapped with
// its replication index; which later replications were still attempted
// depends on scheduling.
func Stream[T any](root int64, n int, opts Options, job Job[T], emit func(rep int, result T) error) error {
	if n <= 0 {
		return fmt.Errorf("runner: need at least one replication, got %d", n)
	}
	workers := opts.workers(n)
	if workers == 1 {
		// Serial fast path: already ordered.
		for rep := 0; rep < n; rep++ {
			res, err := job(rep, xrand.StreamSeed(root, rep))
			if err != nil {
				return fmt.Errorf("runner: replication %d: %w", rep, err)
			}
			if err := emit(rep, res); err != nil {
				return err
			}
		}
		return nil
	}

	type item struct {
		rep int
		res T
		err error
	}
	ch := make(chan item, workers)
	// window tokens bound in-flight + buffered replications: a worker takes
	// a token to claim a replication, the coordinator returns it when the
	// replication is emitted. window ≥ workers is required so the final
	// "discover rep >= n" claims cannot starve; 2× keeps the pool busy
	// while the oldest replication straggles.
	window := 2 * workers
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	stopped := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(stopped) }) }

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-tokens:
				case <-stopped:
					return
				}
				rep := int(next.Add(1)) - 1
				if rep >= n {
					return
				}
				select {
				case <-stopped:
					return
				default:
				}
				res, err := job(rep, xrand.StreamSeed(root, rep))
				ch <- item{rep: rep, res: res, err: err}
				if err != nil {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	pending := make(map[int]T)
	nextEmit := 0
	var jobErr error
	jobErrRep := n
	var emitErr error
	for it := range ch {
		if it.err != nil {
			stop()
			if it.rep < jobErrRep {
				jobErr, jobErrRep = it.err, it.rep
			}
			continue
		}
		if emitErr != nil || jobErr != nil {
			continue // draining
		}
		pending[it.rep] = it.res
		for {
			res, ok := pending[nextEmit]
			if !ok {
				break
			}
			delete(pending, nextEmit)
			if err := emit(nextEmit, res); err != nil {
				emitErr = err
				stop()
				break
			}
			nextEmit++
			tokens <- struct{}{} // capacity == window ≥ outstanding: never blocks
		}
	}
	if emitErr != nil {
		return emitErr
	}
	if jobErr != nil {
		return fmt.Errorf("runner: replication %d: %w", jobErrRep, jobErr)
	}
	return nil
}
