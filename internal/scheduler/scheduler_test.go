package scheduler

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/predictor"
	"repro/internal/xrand"
)

// buildInput creates a deterministic scheduling problem: m components on k
// nodes with heterogeneous contention windows.
func buildInput(t *testing.T, m, k int, lambda float64, seed int64) predictor.MatrixInput {
	t.Helper()
	src := xrand.New(seed)
	samples := make([]predictor.Sample, 0, 200)
	cap := cluster.DefaultCapacity()
	for i := 0; i < 200; i++ {
		driver := src.Float64()
		var u cluster.Vector
		for r := 0; r < cluster.NumResources; r++ {
			u[r] = driver * cap[r] * (0.8 + 0.4*src.Float64())
		}
		x := 0.001 * (1 + 1.2*driver)
		samples = append(samples, predictor.Sample{U: u, X: x})
	}
	model, err := predictor.Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	demand := cluster.Vector{0.5, 3, 4, 3}
	comps := make([]predictor.ComponentState, m)
	for i := range comps {
		comps[i] = predictor.ComponentState{Stage: 0, Node: src.Intn(k), Demand: demand}
	}
	nodeSamples := make([][]cluster.Vector, k)
	for n := 0; n < k; n++ {
		level := cap.Scale(0.05 + 0.7*src.Float64())
		win := make([]cluster.Vector, 5)
		for w := range win {
			v := level
			for r := 0; r < cluster.NumResources; r++ {
				v[r] *= src.LogNormalMean(1, 0.02)
			}
			win[w] = v
		}
		nodeSamples[n] = win
	}
	for _, c := range comps {
		for w := range nodeSamples[c.Node] {
			nodeSamples[c.Node][w] = nodeSamples[c.Node][w].Add(c.Demand)
		}
	}
	return predictor.MatrixInput{
		Components:  comps,
		NumStages:   1,
		NumNodes:    k,
		NodeSamples: nodeSamples,
		Lambda:      lambda,
		Models:      []*predictor.ServiceTimeModel{model},
		Queue:       predictor.MG1,
		Params:      predictor.DefaultLatencyParams(),
	}
}

func TestScheduleNeverIncreasesPredictedLatency(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		in := buildInput(t, 8, 4, 100, seed)
		res, _, err := BuildAndSchedule(in, Config{Epsilon: 0})
		if err != nil {
			t.Fatal(err)
		}
		if res.PredictedAfter > res.PredictedBefore+1e-12 {
			t.Fatalf("seed %d: predicted latency increased %v → %v",
				seed, res.PredictedBefore, res.PredictedAfter)
		}
	}
}

func TestScheduleDecisionsRespectEpsilon(t *testing.T) {
	in := buildInput(t, 8, 4, 100, 1)
	res, _, err := BuildAndSchedule(in, Config{Epsilon: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Gain <= 0.0001 {
			t.Fatalf("decision gain %v below ε", d.Gain)
		}
	}
}

func TestScheduleHighEpsilonBlocksEverything(t *testing.T) {
	in := buildInput(t, 8, 4, 100, 2)
	res, _, err := BuildAndSchedule(in, Config{Epsilon: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("decisions = %d, want 0", len(res.Decisions))
	}
	if res.PredictedAfter != res.PredictedBefore {
		t.Fatal("no decisions but predicted latency changed")
	}
}

func TestScheduleMaxMigrationsCap(t *testing.T) {
	in := buildInput(t, 10, 5, 100, 3)
	res, _, err := BuildAndSchedule(in, Config{Epsilon: 0, MaxMigrations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) > 2 {
		t.Fatalf("decisions = %d, cap 2", len(res.Decisions))
	}
}

func TestScheduleEachComponentMigratesAtMostOnce(t *testing.T) {
	// Algorithm 1 removes migrated components from the candidate set.
	in := buildInput(t, 10, 5, 150, 4)
	res, _, err := BuildAndSchedule(in, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, d := range res.Decisions {
		if seen[d.Component] {
			t.Fatalf("component %d migrated twice", d.Component)
		}
		seen[d.Component] = true
		if d.From == d.To {
			t.Fatalf("no-op migration of %d", d.Component)
		}
	}
}

func TestScheduleMovesOffHotNodes(t *testing.T) {
	// Construct an extreme world: node 0 saturated, others idle. All
	// components start on node 0; the greedy must move some away, and
	// never move anything onto node 0.
	src := xrand.New(5)
	cap := cluster.DefaultCapacity()
	samples := make([]predictor.Sample, 0, 200)
	for i := 0; i < 200; i++ {
		driver := src.Float64()
		var u cluster.Vector
		for r := 0; r < cluster.NumResources; r++ {
			u[r] = driver * cap[r]
		}
		samples = append(samples, predictor.Sample{U: u, X: 0.001 * (1 + 2*driver)})
	}
	model, err := predictor.Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	demand := cluster.Vector{0.3, 1, 1, 1}
	m := 6
	comps := make([]predictor.ComponentState, m)
	for i := range comps {
		comps[i] = predictor.ComponentState{Stage: 0, Node: 0, Demand: demand}
	}
	hot := cap.Scale(0.8)
	idle := cap.Scale(0.02)
	in := predictor.MatrixInput{
		Components:  comps,
		NumStages:   1,
		NumNodes:    3,
		NodeSamples: [][]cluster.Vector{{hot, hot}, {idle, idle}, {idle, idle}},
		Lambda:      100,
		Models:      []*predictor.ServiceTimeModel{model},
		Queue:       predictor.MG1,
		Params:      predictor.DefaultLatencyParams(),
	}
	res, mat, err := BuildAndSchedule(in, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("greedy made no migrations off a saturated node")
	}
	for _, d := range res.Decisions {
		if d.To == 0 {
			t.Fatalf("migration onto the saturated node: %+v", d)
		}
		if d.From != 0 {
			t.Fatalf("migration from an idle node: %+v", d)
		}
	}
	if res.PredictedAfter >= res.PredictedBefore {
		t.Fatalf("no predicted improvement: %v → %v", res.PredictedBefore, res.PredictedAfter)
	}
	_ = mat
}

// exhaustiveBest finds the optimal allocation of a tiny instance by brute
// force, evaluating predicted overall latency for every assignment via a
// fresh matrix whose virtual allocation is forced through migrations.
func exhaustiveBest(t *testing.T, in predictor.MatrixInput) float64 {
	t.Helper()
	m := len(in.Components)
	k := in.NumNodes
	best := math.Inf(1)
	assign := make([]int, m)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			mat, err := predictor.BuildMatrix(in)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < m; c++ {
				if assign[c] != in.Components[c].Node {
					mat.Migrate(c, assign[c])
				}
			}
			if v := mat.CurrentOverall(); v < best {
				best = v
			}
			return
		}
		for n := 0; n < k; n++ {
			assign[i] = n
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestGreedyWithinFactorOfExhaustive(t *testing.T) {
	// O(k^m) search on a tiny instance (3 components × 3 nodes): the
	// greedy's predicted overall latency should be close to optimal.
	in := buildInput(t, 3, 3, 120, 6)
	res, _, err := BuildAndSchedule(in, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	opt := exhaustiveBest(t, in)
	if res.PredictedAfter < opt-1e-9 {
		t.Fatalf("greedy %v beat exhaustive %v — exhaustive search is broken", res.PredictedAfter, opt)
	}
	if res.PredictedAfter > opt*1.5+1e-9 {
		t.Fatalf("greedy %v too far from optimal %v", res.PredictedAfter, opt)
	}
}

func TestBuildAndScheduleReportsTimings(t *testing.T) {
	in := buildInput(t, 8, 4, 100, 7)
	res, _, err := BuildAndSchedule(in, Config{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalysisTime <= 0 {
		t.Fatal("analysis time not measured")
	}
	if res.SearchTime < 0 {
		t.Fatal("negative search time")
	}
}

func TestBuildAndScheduleInvalidInput(t *testing.T) {
	if _, _, err := BuildAndSchedule(predictor.MatrixInput{}, Config{}); err == nil {
		t.Fatal("invalid input accepted")
	}
}
