package scheduler

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/profiling"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// newControlledWorld wires a small end-to-end PCS stack: cluster + batch
// generator + service + monitor + controller.
func newControlledWorld(t *testing.T, seed int64) (*Controller, *service.Service, *sim.Engine) {
	t.Helper()
	root := xrand.New(seed)
	engine := sim.NewEngine()
	cl := cluster.New(8, cluster.DefaultCapacity())
	gen := workload.NewGenerator(engine, cl, root.Fork(), workload.GeneratorConfig{TargetConcurrency: 2})

	topo := service.Topology{
		Name: "small",
		Stages: []service.StageSpec{
			{Name: "front", Components: 2, BaseServiceTime: 0.0005,
				Demand: cluster.Vector{0.5, 3, 2, 3}},
			{Name: "work", Components: 10, BaseServiceTime: 0.001,
				Demand: cluster.Vector{0.9, 6, 8, 6}},
		},
	}
	svc, err := service.New(engine, cl, root.Fork(), baseline.Basic{}, service.Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	mon := monitor.New(engine, cl, root.Fork(), monitor.Config{NoiseSigma: 0.02})
	svc.OnArrival = mon.RecordArrival

	backgrounds := workload.TrainingMixes(root.Fork(), 60, 3, 1, 8192)
	models, err := profiling.TrainStageModels(topo, svc.Law(), backgrounds,
		profiling.Config{Probes: 100, Degree: 1}, root.Fork())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(svc, mon, models, root.Fork(), ControllerConfig{
		Interval:       5,
		Scheduler:      Config{Epsilon: 0.000005, MaxMigrations: 10},
		FallbackLambda: 100,
	})
	gen.Start()
	mon.Start()
	return ctrl, svc, engine
}

func TestControllerRunsIntervalsAndMigrates(t *testing.T) {
	ctrl, svc, engine := newControlledWorld(t, 1)
	ctrl.Start()
	svc.StartArrivals(100, 6000)
	engine.Run(60)

	if ctrl.Intervals < 10 {
		t.Fatalf("intervals = %d, want ≥10 over 60s at 5s period", ctrl.Intervals)
	}
	if ctrl.BuildErrors > 0 {
		t.Fatalf("build errors = %d (%v)", ctrl.BuildErrors, ctrl.LastErr)
	}
	if ctrl.TotalMigrations() == 0 {
		t.Fatal("controller never migrated despite heterogeneous interference")
	}
	if svc.Migrations() == 0 {
		t.Fatal("migrations not enforced on the service")
	}
	if len(ctrl.Results()) != ctrl.Intervals {
		t.Fatalf("results %d != intervals %d", len(ctrl.Results()), ctrl.Intervals)
	}
}

func TestControllerRespectsMigrationCap(t *testing.T) {
	ctrl, svc, engine := newControlledWorld(t, 2)
	ctrl.Start()
	svc.StartArrivals(100, 4000)
	engine.Run(40)
	for _, r := range ctrl.Results() {
		if len(r.Decisions) > 10 {
			t.Fatalf("interval migrated %d > cap 10", len(r.Decisions))
		}
	}
}

func TestControllerStop(t *testing.T) {
	ctrl, svc, engine := newControlledWorld(t, 3)
	ctrl.Start()
	svc.StartArrivals(100, 2000)
	engine.Run(12)
	n := ctrl.Intervals
	ctrl.Stop()
	engine.Run(60)
	if ctrl.Intervals != n {
		t.Fatal("controller kept scheduling after Stop")
	}
}

func TestControllerMatrixInputConsistency(t *testing.T) {
	ctrl, svc, engine := newControlledWorld(t, 4)
	svc.StartArrivals(100, 2000)
	engine.Run(10)
	in := ctrl.MatrixInput()
	if len(in.Components) != 12 {
		t.Fatalf("components = %d", len(in.Components))
	}
	if in.NumNodes != 8 || len(in.NodeSamples) != 8 {
		t.Fatal("node coverage wrong")
	}
	if in.Lambda <= 0 {
		t.Fatal("lambda not populated")
	}
	alloc := svc.Allocation()
	for i, c := range in.Components {
		if c.Node != alloc[i] {
			t.Fatalf("component %d node mismatch: %d vs %d", i, c.Node, alloc[i])
		}
	}
}

func TestControllerFallbackLambdaUsedWhenCold(t *testing.T) {
	ctrl, _, _ := newControlledWorld(t, 5)
	// No arrivals recorded: monitor reports 0, fallback applies.
	in := ctrl.MatrixInput()
	if in.Lambda != 100 {
		t.Fatalf("lambda = %v, want fallback 100", in.Lambda)
	}
}

func TestControllerConfigDefaults(t *testing.T) {
	cfg := ControllerConfig{}.withDefaults()
	if cfg.Interval != 10 {
		t.Fatalf("interval default = %v", cfg.Interval)
	}
	if cfg.MigrationDelayMin <= 0 || cfg.MigrationDelayMax != 3 {
		t.Fatalf("migration delay defaults = %v..%v", cfg.MigrationDelayMin, cfg.MigrationDelayMax)
	}
	if cfg.Params.RhoMax <= 0 {
		t.Fatal("latency params default missing")
	}
}
