package scheduler

import (
	"repro/internal/monitor"
	"repro/internal/predictor"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// ControllerConfig wires the PCS control loop: monitor → predictor →
// scheduler → migration enforcement, once per scheduling interval.
type ControllerConfig struct {
	// Interval is the scheduling interval in virtual seconds. The paper
	// used 600 s against minutes-long batch jobs; the simulation compresses
	// job lifetimes to tens of seconds, so the default interval is 10 s.
	Interval float64
	// Scheduler carries ε and the migration cap.
	Scheduler Config
	// Queue selects the latency formula (M/G/1 by default).
	Queue predictor.QueueModel
	// Params bounds the queueing formula near saturation.
	Params predictor.LatencyParams
	// MigrationDelayMin/Max bound the uniform migration latency applied to
	// each enforced migration (the paper reports ≤3 s via Storm/ZooKeeper
	// redeployment).
	MigrationDelayMin, MigrationDelayMax float64
	// FallbackLambda is used while the monitor has not yet observed enough
	// arrivals to estimate λ.
	FallbackLambda float64
	// Pool, when non-nil, shards performance-matrix construction and the
	// Algorithm 2 updates of every scheduling interval across its workers
	// (see predictor.MatrixInput.Pool). Decisions are bit-identical at any
	// shard count.
	Pool *shard.Pool
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Interval <= 0 {
		c.Interval = 10
	}
	if c.Params.RhoMax <= 0 {
		c.Params = predictor.DefaultLatencyParams()
	}
	if c.MigrationDelayMax <= 0 {
		c.MigrationDelayMin, c.MigrationDelayMax = 1, 3
	}
	if c.MigrationDelayMin < 0 || c.MigrationDelayMin > c.MigrationDelayMax {
		c.MigrationDelayMin = c.MigrationDelayMax / 2
	}
	return c
}

// Controller is the PCS runtime: it periodically rebuilds the performance
// matrix from monitored state and enforces the greedy schedule by migrating
// component instances.
type Controller struct {
	cfg    ControllerConfig
	svc    *service.Service
	mon    *monitor.Monitor
	models []*predictor.ServiceTimeModel
	src    *xrand.Source

	ticker  *sim.Ticker
	results []Result
	// Intervals counts scheduling rounds executed.
	Intervals int
	// BuildErrors counts rounds skipped because the matrix could not be
	// built (e.g. no monitor samples yet); LastErr keeps the most recent
	// cause for diagnostics.
	BuildErrors int
	LastErr     error
}

// NewController creates the PCS control loop over a running service. The
// per-stage models come from offline profiling (profiling.TrainStageModels).
func NewController(svc *service.Service, mon *monitor.Monitor, models []*predictor.ServiceTimeModel, src *xrand.Source, cfg ControllerConfig) *Controller {
	return &Controller{
		cfg:    cfg.withDefaults(),
		svc:    svc,
		mon:    mon,
		models: models,
		src:    src,
	}
}

// Start arms the periodic scheduling loop on the service's engine.
func (c *Controller) Start() {
	c.ticker = c.svc.Engine().Every(c.cfg.Interval, func(float64) { c.RunInterval() })
}

// Stop disarms the loop.
func (c *Controller) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Results returns per-interval scheduling results.
func (c *Controller) Results() []Result { return c.results }

// TotalMigrations sums enforced migrations across intervals.
func (c *Controller) TotalMigrations() int {
	n := 0
	for _, r := range c.results {
		n += len(r.Decisions)
	}
	return n
}

// MatrixInput assembles the predictor input from the service's current
// allocation and the monitor's windows — the hand-off from §III's monitors
// to §IV's predictor.
func (c *Controller) MatrixInput() predictor.MatrixInput {
	comps := c.svc.Components()
	states := make([]predictor.ComponentState, len(comps))
	for i, comp := range comps {
		in := comp.Primary()
		// Per-VM monitors (Oprofile in the paper, §III) measure each
		// component's demand independently, so readings for identical
		// components differ by a small measurement error. This also
		// breaks exact prediction ties between same-stage components on
		// the same node, which would otherwise stall the greedy search on
		// plateaus.
		demand := in.Demand()
		for r := range demand {
			demand[r] *= c.src.LogNormalMean(1, 0.02)
		}
		states[i] = predictor.ComponentState{
			Stage:  comp.Stage,
			Node:   in.NodeID(),
			Demand: demand,
		}
	}
	lambda := c.mon.ArrivalRate()
	if lambda <= 0 {
		lambda = c.cfg.FallbackLambda
	}
	return predictor.MatrixInput{
		Components:  states,
		NumStages:   c.svc.NumStages(),
		NumNodes:    c.svc.Cluster().NumNodes(),
		NodeSamples: c.mon.AllNodeSamples(),
		Lambda:      lambda,
		Models:      c.models,
		Queue:       c.cfg.Queue,
		Params:      c.cfg.Params,
		Pool:        c.cfg.Pool,
	}
}

// RunInterval executes one scheduling interval immediately: build the
// matrix, run Algorithm 1, and enforce the chosen migrations with the
// configured migration delay.
func (c *Controller) RunInterval() {
	c.Intervals++
	res, _, err := BuildAndSchedule(c.MatrixInput(), c.cfg.Scheduler)
	if err != nil {
		// No monitored samples yet (e.g. the first interval of a cold
		// start); skip this round rather than abort the run.
		c.BuildErrors++
		c.LastErr = err
		return
	}
	for _, d := range res.Decisions {
		inst := c.svc.Component(d.Component).Primary()
		delay := c.src.Uniform(c.cfg.MigrationDelayMin, c.cfg.MigrationDelayMax)
		// An instance still mid-migration from a previous interval is
		// skipped; the scheduler will reconsider it next round.
		_ = inst.MigrateTo(d.To, delay)
	}
	c.results = append(c.results, res)
}
