// Package scheduler implements the paper's component-level scheduling
// algorithm (§V): at each scheduling interval, build the performance
// matrix, then greedily pick the migration with the largest predicted
// reduction in overall service latency (ties broken by the migrated
// component's own latency reduction), commit it, incrementally update the
// matrix (Algorithm 2, implemented by predictor.Matrix.Migrate), and repeat
// until no remaining migration beats the threshold ε.
package scheduler

import (
	"time"

	"repro/internal/predictor"
)

// Config parameterises Algorithm 1.
type Config struct {
	// Epsilon is the migration threshold ε in seconds of predicted overall
	// latency reduction; migrations predicted to gain less are throttled
	// (the paper uses 5 ms = 5 % of the 100 ms acceptable latency).
	Epsilon float64
	// MaxMigrations caps migrations per interval; 0 means unlimited (the
	// algorithm naturally stops after at most m migrations because each
	// component is removed from the candidate set once migrated).
	MaxMigrations int
}

// Decision is one chosen migration.
type Decision struct {
	Component int
	From, To  int
	// Gain is the predicted reduction in overall service latency (s).
	Gain float64
	// SelfGain is the predicted reduction in the component's own latency.
	SelfGain float64
}

// Result summarises one scheduling interval.
type Result struct {
	Decisions []Decision
	// PredictedBefore/After are the predicted overall latencies around the
	// chosen migrations (s).
	PredictedBefore, PredictedAfter float64
	// AnalysisTime is the wall time spent building the matrix (Fig. 7's
	// "analysis"); SearchTime covers the greedy loop including matrix
	// updates (Fig. 7's "searching").
	AnalysisTime, SearchTime time.Duration
}

// Schedule runs Algorithm 1 on a pre-built matrix. The matrix's virtual
// allocation is advanced in place; callers enforce the returned decisions
// on the real system.
func Schedule(mat *predictor.Matrix, cfg Config) Result {
	res := Result{PredictedBefore: mat.CurrentOverall()}
	start := time.Now()
	for {
		if cfg.MaxMigrations > 0 && len(res.Decisions) >= cfg.MaxMigrations {
			break
		}
		i, j, gain, ok := mat.Best()
		if !ok || gain <= cfg.Epsilon {
			break
		}
		from := mat.Allocation()[i]
		self := mat.SelfGain[i][j]
		mat.Migrate(i, j)
		res.Decisions = append(res.Decisions, Decision{
			Component: i, From: from, To: j, Gain: gain, SelfGain: self,
		})
	}
	res.SearchTime = time.Since(start)
	res.PredictedAfter = mat.CurrentOverall()
	return res
}

// BuildAndSchedule constructs the matrix from the monitored inputs and runs
// Algorithm 1, reporting the analysis and search times separately (the two
// series of Fig. 7).
func BuildAndSchedule(in predictor.MatrixInput, cfg Config) (Result, *predictor.Matrix, error) {
	start := time.Now()
	mat, err := predictor.BuildMatrix(in)
	if err != nil {
		return Result{}, nil, err
	}
	analysis := time.Since(start)
	res := Schedule(mat, cfg)
	res.AnalysisTime = analysis
	return res, mat, nil
}
