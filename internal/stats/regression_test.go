package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitPolyRecoversLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	r, err := FitPoly(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.Coef[0], 3, 1e-9) || !almostEqual(r.Coef[1], 2, 1e-9) {
		t.Fatalf("coefficients = %v, want [3 2]", r.Coef)
	}
	if !almostEqual(r.R2, 1, 1e-9) {
		t.Fatalf("R² = %v, want 1", r.R2)
	}
	if got := r.Predict(10); !almostEqual(got, 23, 1e-9) {
		t.Fatalf("Predict(10) = %v, want 23", got)
	}
}

func TestFitPolyRecoversQuadratic(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 - x + 0.5*x*x
	}
	r, err := FitPoly(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -1, 0.5}
	for d, c := range want {
		if !almostEqual(r.Coef[d], c, 1e-9) {
			t.Fatalf("coef[%d] = %v, want %v (all %v)", d, r.Coef[d], c, r.Coef)
		}
	}
	if r.Degree() != 2 {
		t.Fatalf("degree = %d", r.Degree())
	}
}

func TestFitPolyConstantInputIsSingular(t *testing.T) {
	xs := []float64{2, 2, 2, 2}
	ys := []float64{1, 2, 3, 4}
	if _, err := FitPoly(xs, ys, 1); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestFitPolyTooFewSamples(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2}, []float64{1, 2}, 2); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
}

func TestFitPolyMismatchedLengths(t *testing.T) {
	if _, err := FitPoly([]float64{1, 2, 3}, []float64{1, 2}, 1); err == nil {
		t.Fatal("expected error on mismatched lengths")
	}
}

func TestFitPolyNegativeDegree(t *testing.T) {
	if _, err := FitPoly([]float64{1}, []float64{1}, -1); err == nil {
		t.Fatal("expected error on negative degree")
	}
}

func TestFitPolyR2OnNoisyData(t *testing.T) {
	// With modest noise, R² should be high but below 1.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) / 20
		ys[i] = 5 + 1.5*xs[i] + rng.NormFloat64()*0.3
	}
	r, err := FitPoly(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.R2 < 0.9 || r.R2 >= 1 {
		t.Fatalf("R² = %v, want in [0.9, 1)", r.R2)
	}
}

func TestFitPolyRecoversRandomLines(t *testing.T) {
	f := func(a, b float64, seed int64) bool {
		a = math.Mod(a, 100)
		b = math.Mod(b, 100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 10)
		ys := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = a + b*xs[i]
		}
		// Degenerate draws (all x equal) are legitimately singular.
		allSame := true
		for _, x := range xs[1:] {
			if x != xs[0] {
				allSame = false
				break
			}
		}
		if allSame {
			return true
		}
		r, err := FitPoly(xs, ys, 1)
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + math.Abs(a) + math.Abs(b))
		return almostEqual(r.Coef[0], a, tol) && almostEqual(r.Coef[1], b, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonNoVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with constant series = %v, want 0", got)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		xs, ys = xs[:n], ys[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) || math.IsNaN(ys[i]) || math.IsInf(ys[i], 0) {
				return true
			}
			xs[i] = math.Mod(xs[i], 1e6)
			ys[i] = math.Mod(ys[i], 1e6)
		}
		r := Pearson(xs, ys)
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearSystemKnown(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinearSystem(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearSystemBadDims(t *testing.T) {
	if _, err := SolveLinearSystem([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := SolveLinearSystem(nil, nil); err == nil {
		t.Fatal("expected error on empty system")
	}
}

func TestSolveLinearSystemDoesNotMutate(t *testing.T) {
	a := [][]float64{{3, 1}, {1, 2}}
	b := []float64{5, 5}
	if _, err := SolveLinearSystem(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 3 || a[1][1] != 2 || b[0] != 5 {
		t.Fatal("inputs mutated")
	}
}

func TestSolveLinearSystemRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		// Diagonally dominant matrix ⇒ well conditioned.
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) * 10
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := SolveLinearSystem(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-6*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanAbsPctError(t *testing.T) {
	actual := []float64{100, 200}
	pred := []float64{110, 180}
	// (10% + 10%) / 2 = 10%
	if got := MeanAbsPctError(actual, pred); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("MAPE = %v, want 10", got)
	}
	if got := MeanAbsPctError([]float64{0, 100}, []float64{5, 100}); got != 0 {
		t.Fatalf("MAPE skipping zero actuals = %v, want 0", got)
	}
	if MeanAbsPctError(nil, nil) != 0 {
		t.Fatal("empty MAPE should be 0")
	}
}
