package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatalf("zero-value Welford should report zeros, got n=%d mean=%v var=%v", w.N(), w.Mean(), w.Variance())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.N() != 1 {
		t.Fatalf("n = %d, want 1", w.N())
	}
	if w.Mean() != 42 {
		t.Fatalf("mean = %v, want 42", w.Mean())
	}
	if w.Variance() != 0 {
		t.Fatalf("variance of one observation = %v, want 0", w.Variance())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	w.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.Variance(), 4, 1e-12) {
		t.Errorf("population variance = %v, want 4", w.Variance())
	}
	if !almostEqual(w.SampleVariance(), 32.0/7, 1e-12) {
		t.Errorf("sample variance = %v, want %v", w.SampleVariance(), 32.0/7)
	}
	if !almostEqual(w.StdDev(), 2, 1e-12) {
		t.Errorf("stddev = %v, want 2", w.StdDev())
	}
}

func TestWelfordSquaredCV(t *testing.T) {
	var w Welford
	w.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 4.0 / 25.0
	if !almostEqual(w.SquaredCV(), want, 1e-12) {
		t.Errorf("C² = %v, want %v", w.SquaredCV(), want)
	}
}

func TestWelfordSquaredCVZeroMean(t *testing.T) {
	var w Welford
	w.AddAll([]float64{-1, 1})
	if w.SquaredCV() != 0 {
		t.Errorf("C² with zero mean = %v, want 0", w.SquaredCV())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.AddAll([]float64{1, 2, 3})
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Fatalf("reset accumulator not empty: n=%d mean=%v", w.N(), w.Mean())
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	// Property: streaming mean/variance match the two-pass formulas.
	f := func(xs []float64) bool {
		// Bound magnitudes to keep the two-pass reference numerically sane.
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
			xs[i] = math.Mod(xs[i], 1e6)
		}
		var w Welford
		w.AddAll(xs)
		if len(xs) == 0 {
			return w.N() == 0
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs))
		tol := 1e-6 * (1 + math.Abs(mean) + wantVar)
		return almostEqual(w.Mean(), mean, tol) && almostEqual(w.Variance(), wantVar, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEquivalentToSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 1e6)
		}
		for i := range b {
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			b[i] = math.Mod(b[i], 1e6)
		}
		var w1, w2, all Welford
		w1.AddAll(a)
		w2.AddAll(b)
		all.AddAll(a)
		all.AddAll(b)
		w1.Merge(&w2)
		if w1.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()) + all.Variance())
		return almostEqual(w1.Mean(), all.Mean(), tol) && almostEqual(w1.Variance(), all.Variance(), tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeIntoEmpty(t *testing.T) {
	var empty, full Welford
	full.AddAll([]float64{1, 2, 3})
	empty.Merge(&full)
	if empty.N() != 3 || !almostEqual(empty.Mean(), 2, 1e-12) {
		t.Fatalf("merge into empty: n=%d mean=%v", empty.N(), empty.Mean())
	}
	var other Welford
	full.Merge(&other) // merging empty is a no-op
	if full.N() != 3 {
		t.Fatalf("merge of empty changed n to %d", full.N())
	}
}

func TestMeanCI95(t *testing.T) {
	var w Welford
	if w.MeanCI95() != 0 {
		t.Fatal("empty accumulator should have zero CI")
	}
	w.Add(5)
	if w.MeanCI95() != 0 {
		t.Fatal("single observation should have zero CI")
	}
	// Two observations: df=1, t=12.706, s=sqrt(2)/... check exact formula.
	w.Add(7)
	// mean 6, sample variance 2, CI = 12.706*sqrt(2/2) = 12.706
	if got := w.MeanCI95(); math.Abs(got-12.706) > 1e-9 {
		t.Fatalf("CI95 = %v, want 12.706", got)
	}
	// Large n: CI shrinks as t*s/sqrt(n) with t ≈ 1.98 at df=99.
	var big Welford
	for i := 0; i < 100; i++ {
		big.Add(float64(i % 10))
	}
	want := 1.980 * math.Sqrt(big.SampleVariance()/100)
	if got := big.MeanCI95(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
}
