package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It does not modify xs. It returns 0
// for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already-sorted slice; it performs no
// copy and no sort.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	w.AddAll(xs)
	return w.Variance()
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Summary captures the descriptive statistics the evaluation reports for a
// latency trace: mean, p50/p90/p95/p99, min and max.
type Summary struct {
	N    int
	Mean float64
	P50  float64
	P90  float64
	P95  float64
	P99  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. It sorts a copy of the input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:    len(sorted),
		Mean: Mean(sorted),
		P50:  PercentileSorted(sorted, 50),
		P90:  PercentileSorted(sorted, 90),
		P95:  PercentileSorted(sorted, 95),
		P99:  PercentileSorted(sorted, 99),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
	}
}
