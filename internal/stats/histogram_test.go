package stats

import (
	"strings"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, h.Bucket(i))
		}
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.5)
	h.Add(2.5)
	h.Add(1.0) // upper edge is exclusive → overflow
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Total() != 3 {
		t.Errorf("total = %d, want 3", h.Total())
	}
}

func TestHistogramUpperEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	h.Add(0.9999999999999999) // rounds to bucket index 3 without the guard
	if h.Overflow() != 0 {
		t.Fatalf("value below Hi counted as overflow")
	}
	if h.Bucket(2) != 1 {
		t.Fatalf("last bucket = %d, want 1", h.Bucket(2))
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	if got := h.FractionBelow(5); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("FractionBelow(5) = %v, want 0.5", got)
	}
	if got := h.FractionBelow(100); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("FractionBelow(100) = %v, want 1", got)
	}
	var empty = NewHistogram(0, 1, 2)
	if empty.FractionBelow(0.5) != 0 {
		t.Fatal("empty histogram FractionBelow should be 0")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	h.Add(-1)
	s := h.String()
	if !strings.Contains(s, "underflow 1") {
		t.Errorf("String() missing underflow: %q", s)
	}
	if !strings.Contains(s, "#") {
		t.Errorf("String() missing bars: %q", s)
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 0},
		{1, 1, 4},
		{2, 1, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.n)
		}()
	}
}

func TestHistogramNumBuckets(t *testing.T) {
	h := NewHistogram(0, 1, 7)
	if h.NumBuckets() != 7 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	ref := NewHistogram(0, 10, 5)
	for i, x := range []float64{-1, 0.5, 3, 3.9, 7, 11, 9.99, 2} {
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		ref.Add(x)
	}
	a.Merge(b)
	if a.Total() != ref.Total() {
		t.Fatalf("total = %d, want %d", a.Total(), ref.Total())
	}
	for i := 0; i < ref.NumBuckets(); i++ {
		if a.Bucket(i) != ref.Bucket(i) {
			t.Fatalf("bucket %d = %d, want %d", i, a.Bucket(i), ref.Bucket(i))
		}
	}
	if a.Underflow() != ref.Underflow() || a.Overflow() != ref.Overflow() {
		t.Fatalf("under/overflow = %d/%d, want %d/%d",
			a.Underflow(), a.Overflow(), ref.Underflow(), ref.Overflow())
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched histograms did not panic")
		}
	}()
	NewHistogram(0, 10, 5).Merge(NewHistogram(0, 10, 6))
}
