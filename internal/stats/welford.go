// Package stats provides the numerical building blocks used throughout the
// PCS reproduction: online moment accumulators, percentile estimation,
// histograms, Pearson correlation, and polynomial least-squares regression.
//
// Everything in this package is deterministic and allocation-conscious; the
// scheduler calls into it on the hot path when rebuilding the performance
// matrix, and the benchmark harness uses it to summarise latency traces.
package stats

import "math"

// Welford accumulates mean and variance of a stream of observations using
// Welford's numerically stable online algorithm. The zero value is ready to
// use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll folds every value of xs into the accumulator.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// N reports the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance of the observations seen so far.
// It returns 0 for fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased (n-1) sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// SquaredCV returns the squared coefficient of variation C²x = var(x)/x̄²,
// the quantity the M/G/1 latency formula (paper Eq. 2) depends on. It
// returns 0 when the mean is 0.
func (w *Welford) SquaredCV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Variance() / (w.mean * w.mean)
}

// Reset returns the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }

// MeanCI95 returns the half-width of the 95 % confidence interval of the
// mean, using Student's t quantile for small samples and the normal 1.96
// beyond. It returns 0 for fewer than two observations.
func (w *Welford) MeanCI95() float64 {
	if w.n < 2 {
		return 0
	}
	return tQuantile975(w.n-1) * math.Sqrt(w.SampleVariance()/float64(w.n))
}

// tQuantile975 returns the 97.5th-percentile quantile of Student's t
// distribution with df degrees of freedom (two-sided 95 % interval),
// tabulated for small df, stepped through standard anchor rows in the
// medium range, and 1.96 asymptotically.
func tQuantile975(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df < 1:
		return 0
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.96
	}
}

// Merge combines another accumulator into this one, as if every observation
// added to other had been added to w. Uses the parallel variance formula.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	mean := w.mean + delta*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}
