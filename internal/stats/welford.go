// Package stats provides the numerical building blocks used throughout the
// PCS reproduction: online moment accumulators, percentile estimation,
// histograms, Pearson correlation, and polynomial least-squares regression.
//
// Everything in this package is deterministic and allocation-conscious; the
// scheduler calls into it on the hot path when rebuilding the performance
// matrix, and the benchmark harness uses it to summarise latency traces.
package stats

import "math"

// Welford accumulates mean and variance of a stream of observations using
// Welford's numerically stable online algorithm. The zero value is ready to
// use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddAll folds every value of xs into the accumulator.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// N reports the number of observations added so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance of the observations seen so far.
// It returns 0 for fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the unbiased (n-1) sample variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// SquaredCV returns the squared coefficient of variation C²x = var(x)/x̄²,
// the quantity the M/G/1 latency formula (paper Eq. 2) depends on. It
// returns 0 when the mean is 0.
func (w *Welford) SquaredCV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Variance() / (w.mean * w.mean)
}

// Reset returns the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }

// Merge combines another accumulator into this one, as if every observation
// added to other had been added to w. Uses the parallel variance formula.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	mean := w.mean + delta*float64(other.n)/float64(n)
	m2 := w.m2 + other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}
