package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 99, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("p%v of single element = %v, want 7", p, got)
		}
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5},
		{25, 3.25},
		{90, 9.1},
	}
	for _, tc := range tests {
		if got := Percentile(xs, tc.p); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileMonotoneInP(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileWithinBounds(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
		}
		p = math.Mod(math.Abs(p), 100)
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{4, -2, 9, 0}
	if got := Mean(xs); !almostEqual(got, 2.75, 1e-12) {
		t.Errorf("Mean = %v, want 2.75", got)
	}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v, want -2", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty-slice aggregates should be 0")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	if s.N != 100 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 50.5, 1e-9) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almostEqual(s.P50, 50.5, 1e-9) {
		t.Errorf("p50 = %v", s.P50)
	}
	if !almostEqual(s.P99, 99.01, 1e-9) {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentileSortedAgreesWithPercentile(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
		}
		p = math.Mod(math.Abs(p), 100)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return almostEqual(Percentile(xs, p), PercentileSorted(sorted, p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
