package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a regression's normal equations are singular,
// e.g. when all training inputs are identical.
var ErrSingular = errors.New("stats: singular system (training inputs lack variation)")

// ErrTooFewSamples is returned when a fit is requested with fewer samples
// than model coefficients.
var ErrTooFewSamples = errors.New("stats: too few samples for requested degree")

// PolyRegression is a univariate polynomial least-squares model
// y ≈ Σ coef[d]·x^d. It is the concrete form of the paper's per-resource
// regression RG(Usr) (§IV-A): the input is one shared-resource contention
// metric and the output is the component's service time.
type PolyRegression struct {
	// Coef holds the polynomial coefficients, constant term first.
	Coef []float64
	// R2 is the coefficient of determination on the training set, used as
	// the relevance weight w_sr in the combined model (paper Eq. 1).
	R2 float64
}

// FitPoly fits a polynomial of the given degree to samples (xs[i], ys[i])
// using the normal equations. degree 1 is ordinary linear regression.
func FitPoly(xs, ys []float64, degree int) (*PolyRegression, error) {
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative degree %d", degree)
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched sample lengths %d vs %d", len(xs), len(ys))
	}
	n := degree + 1
	if len(xs) < n {
		return nil, ErrTooFewSamples
	}

	// Build the normal equations A·c = b where A[i][j] = Σ x^(i+j) and
	// b[i] = Σ y·x^i. For the small degrees used here (≤3) this is
	// numerically adequate, especially with mean-centred inputs.
	pow := make([]float64, 2*n-1)
	b := make([]float64, n)
	for k, x := range xs {
		xp := 1.0
		for d := 0; d < 2*n-1; d++ {
			pow[d] += xp
			if d < n {
				b[d] += ys[k] * xp
			}
			xp *= x
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = pow[i+j]
		}
	}
	coef, err := SolveLinearSystem(a, b)
	if err != nil {
		return nil, err
	}

	r := &PolyRegression{Coef: coef}
	r.R2 = rSquared(xs, ys, r.Predict)
	return r, nil
}

// Predict evaluates the fitted polynomial at x using Horner's rule.
func (r *PolyRegression) Predict(x float64) float64 {
	y := 0.0
	for d := len(r.Coef) - 1; d >= 0; d-- {
		y = y*x + r.Coef[d]
	}
	return y
}

// Degree reports the degree of the fitted polynomial.
func (r *PolyRegression) Degree() int { return len(r.Coef) - 1 }

// rSquared computes the coefficient of determination of predict on the
// sample set. A constant target yields R² = 0 by convention (no variance to
// explain).
func rSquared(xs, ys []float64, predict func(float64) float64) float64 {
	meanY := Mean(ys)
	var ssTot, ssRes float64
	for i, x := range xs {
		d := ys[i] - meanY
		ssTot += d * d
		e := ys[i] - predict(x)
		ssRes += e * e
	}
	if ssTot == 0 {
		return 0
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0 {
		return 0
	}
	return r2
}

// Pearson returns the Pearson correlation coefficient of xs and ys, or 0
// when either series has no variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// SolveLinearSystem solves A·x = b by Gaussian elimination with partial
// pivoting. A and b are not modified. It returns ErrSingular when no unique
// solution exists.
func SolveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: bad system dimensions %dx%d", n, len(b))
	}
	// Work on an augmented copy.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: non-square matrix row %d", i)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back-substitute.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// MeanAbsPctError returns the mean absolute percentage error of predictions
// against actuals, in percent. Pairs with a zero actual value are skipped.
func MeanAbsPctError(actual, predicted []float64) float64 {
	if len(actual) != len(predicted) || len(actual) == 0 {
		return 0
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(predicted[i]-actual[i]) / math.Abs(actual[i]) * 100
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
