package stats

import (
	"fmt"
	"strings"
)

// Histogram is a fixed-bucket histogram over [Lo, Hi) with uniform bucket
// width. Observations outside the range are counted in the under/overflow
// counters rather than dropped, so totals always balance.
type Histogram struct {
	Lo, Hi    float64
	buckets   []int
	underflow int
	overflow  int
	total     int
}

// NewHistogram creates a histogram with n uniform buckets spanning [lo, hi).
// It panics if n < 1 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.buckets)))
		if i >= len(h.buckets) { // guard float rounding at the upper edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Total reports the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow and Overflow report the out-of-range counts.
func (h *Histogram) Underflow() int { return h.underflow }

// Overflow reports the count of observations at or above Hi.
func (h *Histogram) Overflow() int { return h.overflow }

// Merge folds another histogram's counts into h, as if every observation
// added to other had been added to h. The two histograms must have the same
// range and bucket count; merging mismatched shapes panics, since silently
// rebinning would corrupt the distribution. This lets consumers that each
// fill a private histogram (e.g. one per replication) combine them after
// the fact.
func (h *Histogram) Merge(other *Histogram) {
	if other.Lo != h.Lo || other.Hi != h.Hi || len(other.buckets) != len(h.buckets) {
		panic(fmt.Sprintf("stats: merging mismatched histograms: [%g,%g)×%d vs [%g,%g)×%d",
			h.Lo, h.Hi, len(h.buckets), other.Lo, other.Hi, len(other.buckets)))
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.underflow += other.underflow
	h.overflow += other.overflow
	h.total += other.total
}

// FractionBelow reports the fraction of observations strictly below x,
// approximated at bucket granularity (each bucket's mass is attributed to
// its lower edge).
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	count := h.underflow
	width := (h.Hi - h.Lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		edge := h.Lo + float64(i)*width
		if edge >= x {
			break
		}
		count += c
	}
	return float64(count) / float64(h.total)
}

// String renders a compact ASCII view, one line per non-empty bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.buckets))
	maxCount := 0
	for _, c := range h.buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := 1
		if maxCount > 0 {
			bar = c * 40 / maxCount
			if bar == 0 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "[%8.2f, %8.2f) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow  %d\n", h.overflow)
	}
	return b.String()
}
