// Package shard provides the deterministic intra-run parallelism primitive
// of the simulator: a fixed pool of shard workers that fan node-indexed
// work out at window boundaries and join at a barrier before the engine
// executes the next event.
//
// The determinism contract every parallel region must obey (and the reason
// sharded runs are bit-identical to sequential ones for any shard count):
//
//  1. Inputs are frozen at the barrier entry. A region reads only state
//     that no shard mutates during the region.
//  2. Writes land in disjoint, index-addressed slots (a node's aggregate, a
//     matrix row, a sample slot). No two shards write the same word.
//  3. Randomness inside a region comes from per-entity streams forked in
//     canonical index order before the region starts — a draw depends only
//     on its entity and position, never on shard interleaving.
//  4. Reductions fold the slots on the coordinating goroutine, in index
//     order, after the barrier.
//
// Under these rules a region computes the same floats in the same slots
// whether it runs on 1 shard or 16, so parallelism moves only the wall
// clock. The simulation's data-plane events (request dispatch, execution
// completions, cancellations) have zero cross-shard lookahead and stay on
// the engine's sequential event order; the control-plane windows — demand
// ticks, monitor refreshes, performance-matrix construction, profiling —
// are where the cluster-sized O(nodes) and O(components × nodes) work
// lives, and those are the regions this pool parallelises.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Cut returns the half-open range [lo, hi) of n items owned by shard s of
// k: contiguous, balanced to within one item, covering [0, n) exactly.
func Cut(n, k, s int) (lo, hi int) {
	return s * n / k, (s + 1) * n / k
}

// Pool is a fixed set of shard workers executing fork-join regions. A nil
// *Pool is valid and runs every region inline on the caller — integration
// points take an optional *Pool and need no branching.
//
// Workers are long-lived goroutines parked between regions, so a region
// costs two channel hops per shard rather than goroutine spawns; a
// simulation crosses thousands of window barriers. Close releases the
// workers; a closed (or single-shard) pool runs regions inline.
type Pool struct {
	shards int
	tasks  chan func()
	closed atomic.Bool
	once   sync.Once
}

// NewPool creates a pool of k shards. k <= 1 (and k == 1 in particular)
// spawns no goroutines: regions run inline, making the single-shard path
// byte-for-byte the sequential code path.
func NewPool(k int) *Pool {
	if k < 1 {
		k = 1
	}
	p := &Pool{shards: k}
	if k > 1 {
		p.tasks = make(chan func())
		for i := 0; i < k-1; i++ {
			go func() {
				for fn := range p.tasks {
					fn()
				}
			}()
		}
	}
	return p
}

// Shards reports the pool's shard count; a nil pool has one shard.
func (p *Pool) Shards() int {
	if p == nil {
		return 1
	}
	return p.shards
}

// Run executes one fork-join region over n items: fn(s, lo, hi) runs once
// per shard s with its contiguous item range, concurrently across shards,
// and Run returns only when every shard finished — the window barrier.
// With fewer items than shards, surplus shards sit the region out. Panics
// inside fn are re-raised on the caller after the barrier (lowest shard
// first), so a bug surfaces identically at any shard count. Regions must
// not nest: fn must not call Run on the same pool.
func (p *Pool) Run(n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	k := p.Shards()
	if k > n {
		k = n
	}
	if k == 1 || p == nil || p.closed.Load() {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	panics := make([]any, k)
	run := func(s int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panics[s] = r
			}
		}()
		lo, hi := Cut(n, k, s)
		fn(s, lo, hi)
	}
	wg.Add(k)
	for s := 1; s < k; s++ {
		s := s
		p.tasks <- func() { run(s) }
	}
	run(0)
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// ReplicationWorkers budgets a replication pool's worker count against
// intra-run sharding, so workers × shards stays at the machine's width
// instead of oversubscribing it. An explicit (positive) worker count
// always wins. shards follows pcs.Options.Shards semantics: <= 1 is
// sequential (return the caller's value unchanged, letting the runner
// default to GOMAXPROCS), negative means all cores. Worker counts never
// reach results; this is a wall-clock decision only.
func ReplicationWorkers(explicit, shards int) int {
	if explicit > 0 {
		return explicit
	}
	if shards < 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards <= 1 {
		return explicit
	}
	w := runtime.GOMAXPROCS(0) / shards
	if w < 1 {
		w = 1
	}
	return w
}

// Close releases the worker goroutines. Closing is idempotent; Run on a
// closed pool degrades to inline execution with identical results. Do not
// call Close concurrently with an in-flight Run.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		p.closed.Store(true)
		if p.tasks != nil {
			close(p.tasks)
		}
	})
}
