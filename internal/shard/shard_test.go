package shard

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestCutCoversAndBalances(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 97, 1000} {
		for _, k := range []int{1, 2, 3, 4, 8, 16} {
			prev := 0
			for s := 0; s < k; s++ {
				lo, hi := Cut(n, k, s)
				if lo != prev {
					t.Fatalf("n=%d k=%d s=%d: range starts at %d, want %d", n, k, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d k=%d s=%d: inverted range [%d,%d)", n, k, s, lo, hi)
				}
				if size := hi - lo; size > n/k+1 {
					t.Fatalf("n=%d k=%d s=%d: unbalanced range size %d", n, k, s, size)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d k=%d: ranges cover %d items", n, k, prev)
			}
		}
	}
}

// TestRunDisjointWritesAnyShardCount is the pool's determinism contract in
// miniature: a region writing index-addressed slots produces the same
// output at every shard count, including nil and closed pools.
func TestRunDisjointWritesAnyShardCount(t *testing.T) {
	const n = 103
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	pools := map[string]*Pool{
		"nil": nil, "k=1": NewPool(1), "k=2": NewPool(2), "k=4": NewPool(4), "k=16": NewPool(16),
	}
	closed := NewPool(4)
	closed.Close()
	pools["closed"] = closed
	for name, p := range pools {
		got := make([]int, n)
		p.Run(n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: slot %d = %d, want %d", name, i, got[i], want[i])
			}
		}
		p.Close()
	}
}

func TestRunIsABarrier(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var done atomic.Int32
	for round := 0; round < 50; round++ {
		done.Store(0)
		p.Run(64, func(_, lo, hi int) {
			done.Add(int32(hi - lo))
		})
		if got := done.Load(); got != 64 {
			t.Fatalf("round %d: Run returned with %d/64 items done", round, got)
		}
	}
}

func TestRunSurplusShardsSitOut(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var calls atomic.Int32
	p.Run(3, func(_, lo, hi int) {
		if hi <= lo {
			t.Error("empty shard range dispatched")
		}
		calls.Add(1)
	})
	if got := calls.Load(); got != 3 {
		t.Fatalf("3 items across 8 shards ran %d regions, want 3", got)
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
		// The pool must survive a panicking region.
		var after atomic.Int32
		p.Run(8, func(_, lo, hi int) { after.Add(int32(hi - lo)) })
		if after.Load() != 8 {
			t.Fatalf("pool unusable after panic: %d/8 items", after.Load())
		}
	}()
	p.Run(16, func(s, lo, hi int) {
		if s == 2 {
			panic("boom")
		}
	})
}

func TestReplicationWorkersBudget(t *testing.T) {
	cores := runtime.GOMAXPROCS(0)
	// On a 1-core machine shards=-1 resolves to 1 shard, which is the
	// sequential passthrough; multi-core machines budget one worker for
	// machine-wide sharding.
	wide := 0
	if cores > 1 {
		wide = 1
	}
	cases := []struct {
		explicit, shards, want int
	}{
		{8, 16, 8},        // explicit always wins
		{0, 0, 0},         // sequential: keep the runner's default
		{0, 1, 0},         // ditto
		{-3, 1, -3},       // non-positive explicit passes through when sequential
		{0, 2 * cores, 1}, // more shards than cores: still one worker
		{0, -1, wide},     // all-cores shards: GOMAXPROCS/GOMAXPROCS
		{0, cores, wide},  // exactly machine-wide sharding
	}
	for _, c := range cases {
		if got := ReplicationWorkers(c.explicit, c.shards); got != c.want {
			t.Errorf("ReplicationWorkers(%d, %d) = %d, want %d", c.explicit, c.shards, got, c.want)
		}
	}
}

func TestNilPoolShards(t *testing.T) {
	var p *Pool
	if p.Shards() != 1 {
		t.Fatalf("nil pool has %d shards", p.Shards())
	}
	p.Close() // must not panic
	p.Run(0, func(_, _, _ int) { t.Fatal("region ran for zero items") })
}
