package baseline

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/xrand"
)

func testTopology() service.Topology {
	return service.Topology{
		Name: "test",
		Stages: []service.StageSpec{
			{Name: "a", Components: 2, BaseServiceTime: 0.001,
				Demand: cluster.Vector{0.5, 2, 1, 1}},
			{Name: "b", Components: 2, BaseServiceTime: 0.002,
				Demand: cluster.Vector{0.8, 3, 2, 2}},
		},
	}
}

func newService(t *testing.T, policy service.Policy) (*service.Service, *sim.Engine) {
	t.Helper()
	engine := sim.NewEngine()
	cl := cluster.New(6, cluster.DefaultCapacity())
	svc, err := service.New(engine, cl, xrand.New(1), policy, service.Config{Topology: testTopology()})
	if err != nil {
		t.Fatal(err)
	}
	return svc, engine
}

func TestBasicPolicyMetadata(t *testing.T) {
	p := Basic{}
	if p.Name() != "Basic" || p.Replicas() != 1 {
		t.Fatalf("Basic metadata: %s/%d", p.Name(), p.Replicas())
	}
}

func TestBasicPolicySingleExecution(t *testing.T) {
	svc, engine := newService(t, Basic{})
	svc.InjectRequest()
	engine.Run(10)
	if svc.Completed() != 1 {
		t.Fatalf("completed = %d", svc.Completed())
	}
	for _, comp := range svc.Components() {
		if got := comp.Primary().Served; got != 1 {
			t.Fatalf("primary served %d, want 1", got)
		}
	}
}

func TestRedundancyMetadata(t *testing.T) {
	p := NewRedundancy(3, 0.001)
	if p.Name() != "RED-3" || p.Replicas() != 3 {
		t.Fatalf("metadata: %s/%d", p.Name(), p.Replicas())
	}
	if NewRedundancy(5, 0.001).Name() != "RED-5" {
		t.Fatal("RED-5 name")
	}
}

func TestRedundancyPanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewRedundancy(1, 0.001) },
		func() { NewRedundancy(3, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad redundancy config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRedundancyExecutesOnAllReplicasWhenIdle(t *testing.T) {
	// At zero load, every replica is idle, so all k start immediately and
	// all run to completion (cancellation cannot claw back started work).
	svc, engine := newService(t, NewRedundancy(3, 0.001))
	svc.InjectRequest()
	engine.Run(10)
	for _, comp := range svc.Components() {
		total := 0
		for _, in := range comp.Instances {
			total += in.Served
		}
		if total != 3 {
			t.Fatalf("component %d executed %d replicas, want 3 (all idle)", comp.Global, total)
		}
	}
}

func TestRedundancyCancellationUnderLoad(t *testing.T) {
	svc, engine := newService(t, NewRedundancy(3, 0.0002))
	for i := 0; i < 300; i++ {
		svc.InjectRequest()
	}
	engine.Run(30)
	cancelled := 0
	for _, comp := range svc.Components() {
		for _, in := range comp.Instances {
			cancelled += in.Cancelled
		}
	}
	if cancelled == 0 {
		t.Fatal("redundancy under load should cancel queued replicas")
	}
	if svc.Completed() != 300 {
		t.Fatalf("completed = %d", svc.Completed())
	}
}

func TestRedundancyLargerCancelDelayWastesMoreWork(t *testing.T) {
	run := func(delay float64) int {
		svc, engine := newService(t, NewRedundancy(3, delay))
		for i := 0; i < 300; i++ {
			svc.InjectRequest()
		}
		engine.Run(60)
		served := 0
		for _, comp := range svc.Components() {
			for _, in := range comp.Instances {
				served += in.Served
			}
		}
		return served
	}
	fast := run(0.0001)
	slow := run(0.01)
	if slow <= fast {
		t.Fatalf("slow cancellation should execute more replicas: fast=%d slow=%d", fast, slow)
	}
}

func TestReissueMetadata(t *testing.T) {
	if p := NewReissue(90); p.Name() != "RI-90" || p.Replicas() != 2 {
		t.Fatalf("metadata: %s/%d", p.Name(), p.Replicas())
	}
	if NewReissue(99).Name() != "RI-99" {
		t.Fatal("RI-99 name")
	}
}

func TestReissuePanicsOnBadPercentile(t *testing.T) {
	for _, p := range []float64{0, 100, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewReissue(%v) did not panic", p)
				}
			}()
			NewReissue(p)
		}()
	}
}

func TestReissueRarelyIssuesBackupAtLightLoad(t *testing.T) {
	// RI-99 with no queueing: roughly 1 % of sub-requests exceed the p99
	// estimate, so backups should serve only a small fraction of work.
	svc, engine := newService(t, NewReissue(99))
	svc.StartArrivals(20, 2000)
	engine.Run(200)
	primary, backup := 0, 0
	for _, comp := range svc.Components() {
		primary += comp.Instances[0].Served
		backup += comp.Instances[1].Served
	}
	if primary == 0 {
		t.Fatal("no primary executions")
	}
	frac := float64(backup) / float64(primary)
	if frac > 0.15 {
		t.Fatalf("backup fraction = %.3f, want small at light load", frac)
	}
}

func TestReissue90IssuesMoreThan99(t *testing.T) {
	run := func(pct float64) int {
		svc, engine := newService(t, NewReissue(pct))
		svc.StartArrivals(50, 3000)
		engine.Run(200)
		backup := 0
		for _, comp := range svc.Components() {
			backup += comp.Instances[1].Served
		}
		return backup
	}
	b90 := run(90)
	b99 := run(99)
	if b90 <= b99 {
		t.Fatalf("RI-90 backups (%d) should exceed RI-99 backups (%d)", b90, b99)
	}
}

func TestReissueStillCompletesEverything(t *testing.T) {
	svc, engine := newService(t, NewReissue(90))
	svc.StartArrivals(100, 1000)
	engine.Run(60)
	if svc.Completed() != 1000 {
		t.Fatalf("completed = %d, want 1000", svc.Completed())
	}
}

func TestQuantileEstimatorColdStart(t *testing.T) {
	q := newQuantileEstimator(128, 16)
	if _, ok := q.Quantile(90); ok {
		t.Fatal("estimator should report not-ok before 32 samples")
	}
	for i := 0; i < 31; i++ {
		q.Add(float64(i))
	}
	if _, ok := q.Quantile(90); ok {
		t.Fatal("still cold at 31 samples")
	}
	q.Add(31)
	if _, ok := q.Quantile(90); !ok {
		t.Fatal("warm at 32 samples")
	}
}

func TestQuantileEstimatorAccuracy(t *testing.T) {
	q := newQuantileEstimator(1000, 100)
	for i := 0; i < 1000; i++ {
		q.Add(float64(i))
	}
	v, ok := q.Quantile(90)
	if !ok {
		t.Fatal("not warm")
	}
	if v < 850 || v > 950 {
		t.Fatalf("p90 = %v, want ≈900", v)
	}
}

func TestQuantileEstimatorSlidesWindow(t *testing.T) {
	q := newQuantileEstimator(100, 10)
	for i := 0; i < 100; i++ {
		q.Add(1000)
	}
	// Overwrite the window with small values; the estimate must follow.
	for i := 0; i < 100; i++ {
		q.Add(1)
	}
	v, ok := q.Quantile(50)
	if !ok || v != 1 {
		t.Fatalf("p50 after slide = %v (ok=%v), want 1", v, ok)
	}
}

func TestQuantileEstimatorExtremePercentiles(t *testing.T) {
	q := newQuantileEstimator(64, 8)
	for i := 0; i < 64; i++ {
		q.Add(float64(i))
	}
	lo, _ := q.Quantile(0)
	hi, _ := q.Quantile(100)
	if lo != 0 || hi != 63 {
		t.Fatalf("extremes = %v, %v", lo, hi)
	}
}

func TestQuantileEstimatorDefaults(t *testing.T) {
	q := newQuantileEstimator(0, 0)
	if len(q.ring) == 0 || q.refresh == 0 {
		t.Fatal("defaults not applied")
	}
}
