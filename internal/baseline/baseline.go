// Package baseline implements the execution policies the paper compares
// against PCS (§VI-A):
//
//   - Basic: one execution per sub-request, no redundancy (also the policy
//     PCS runs under — PCS adds scheduling, not redundancy).
//   - RED-k (request redundancy): every sub-request executes on k replicas,
//     the quickest wins, and cancellation messages retire queued siblings
//     once one replica starts — imperfectly, because the messages take a
//     network delay to land.
//   - RI-p (request reissue): a sub-request goes to its primary replica; if
//     it has not completed after the p-th percentile of the expected
//     latency for its class, one backup replica is issued and the quickest
//     wins.
package baseline

import (
	"fmt"

	"repro/internal/service"
)

// Basic is the no-redundancy policy.
type Basic struct{}

// Name implements service.Policy.
func (Basic) Name() string { return "Basic" }

// Replicas implements service.Policy.
func (Basic) Replicas() int { return 1 }

// Dispatch sends the sub-request to the component's primary instance —
// or, when closed-loop autoscaling has activated extra replicas, to the
// least-loaded active instance (a deterministic choice; with one active
// replica it is exactly the primary, the historical behavior).
func (Basic) Dispatch(svc *service.Service, sub *service.SubRequest, now float64) {
	sub.IssueTo(svc.PickInstance(sub.Comp), now)
}

// Redundancy is the RED-k policy of [27], [11], [26]: create k replicas of
// every request, use the quickest, cancel the rest on first start.
type Redundancy struct {
	// K is the number of replicas per sub-request (3 and 5 in the paper).
	K int
	// CancelDelay is the network delay before a cancellation message takes
	// effect. Replicas that start service within this window of each other
	// all run to completion.
	CancelDelay float64
}

// NewRedundancy returns a RED-k policy with the given replica count and
// cancellation-message delay in seconds.
func NewRedundancy(k int, cancelDelay float64) *Redundancy {
	if k < 2 {
		panic("baseline: redundancy needs k >= 2")
	}
	if cancelDelay < 0 {
		panic("baseline: negative cancel delay")
	}
	return &Redundancy{K: k, CancelDelay: cancelDelay}
}

// Name implements service.Policy.
func (p *Redundancy) Name() string { return fmt.Sprintf("RED-%d", p.K) }

// Replicas implements service.Policy.
func (p *Redundancy) Replicas() int { return p.K }

// Dispatch fans the sub-request out to K replicas simultaneously with
// cancel-on-start semantics: the first K active instances, which is every
// deployed replica unless autoscaling has activated more (RED-k stays
// k-way redundant regardless of the scale).
func (p *Redundancy) Dispatch(_ *service.Service, sub *service.SubRequest, now float64) {
	sub.EnableCancelOnStart(p.CancelDelay)
	for _, in := range sub.Comp.ActiveInstances()[:p.K] {
		sub.IssueTo(in, now)
	}
}

// Reissue is the RI-p policy of [14], [18]: send to the primary, and if the
// sub-request is still outstanding after the p-th percentile of the
// expected latency for its component class, send one replica to a backup
// instance; the quickest wins.
type Reissue struct {
	// Percentile is the reissue trigger (90 or 99 in the paper).
	Percentile float64
	// ColdStartFactor multiplies the stage's base service time to form the
	// timeout before enough latency history exists. 0 selects 5.
	ColdStartFactor float64

	est []*quantileEstimator // per stage, lazily sized
}

// NewReissue returns an RI-p policy.
func NewReissue(percentile float64) *Reissue {
	if percentile <= 0 || percentile >= 100 {
		panic("baseline: reissue percentile must be in (0, 100)")
	}
	return &Reissue{Percentile: percentile}
}

// Name implements service.Policy.
func (p *Reissue) Name() string { return fmt.Sprintf("RI-%d", int(p.Percentile)) }

// Replicas implements service.Policy: a primary plus one backup.
func (p *Reissue) Replicas() int { return 2 }

// Dispatch sends to the primary and arms the reissue timer. The timer
// runs on the request path's root context (service.AfterData), so it
// reads sub.Done and reissues safely in laned mode too.
func (p *Reissue) Dispatch(svc *service.Service, sub *service.SubRequest, now float64) {
	stage := sub.Comp.Stage
	for len(p.est) <= stage {
		p.est = append(p.est, newQuantileEstimator(2048, 256))
	}
	est := p.est[stage]

	sub.OnDone = func(_ *service.Execution, doneNow float64) {
		est.Add(doneNow - sub.IssuedAt)
	}
	sub.IssueTo(sub.Comp.Primary(), now)

	timeout, ok := est.Quantile(p.Percentile)
	if !ok {
		f := p.ColdStartFactor
		if f <= 0 {
			f = 5
		}
		timeout = sub.Comp.Spec.BaseServiceTime * f
	}
	svc.AfterData(now, timeout, func(fireNow float64) {
		if sub.Done() {
			return
		}
		backup := sub.Comp.Instances[1]
		sub.IssueTo(backup, fireNow)
	})
}
