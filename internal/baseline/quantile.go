package baseline

import (
	"sort"
)

// quantileEstimator estimates running quantiles of a latency stream from a
// sliding window: a ring buffer of the most recent observations with a
// cached sorted copy refreshed every `refresh` insertions. The reissue
// policy consults it on every dispatch, so reads must be cheap.
type quantileEstimator struct {
	ring    []float64
	size    int
	next    int
	refresh int
	pending int
	sorted  []float64
}

func newQuantileEstimator(window, refresh int) *quantileEstimator {
	if window <= 0 {
		window = 1024
	}
	if refresh <= 0 {
		refresh = window / 8
	}
	return &quantileEstimator{
		ring:    make([]float64, window),
		refresh: refresh,
	}
}

// Add records one observation.
func (q *quantileEstimator) Add(x float64) {
	q.ring[q.next] = x
	q.next = (q.next + 1) % len(q.ring)
	if q.size < len(q.ring) {
		q.size++
	}
	q.pending++
}

// Quantile returns the p-th percentile of the window. ok is false until at
// least 32 observations have been seen (cold start).
func (q *quantileEstimator) Quantile(p float64) (value float64, ok bool) {
	if q.size < 32 {
		return 0, false
	}
	if q.sorted == nil || q.pending >= q.refresh {
		q.sorted = append(q.sorted[:0], q.ring[:q.size]...)
		sort.Float64s(q.sorted)
		q.pending = 0
	}
	idx := int(p / 100 * float64(len(q.sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(q.sorted) {
		idx = len(q.sorted) - 1
	}
	return q.sorted[idx], true
}
