package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// readAllLimited reads r to EOF, erroring once the payload exceeds limit
// bytes — the dependency-free request-body cap.
func readAllLimited(r io.Reader, limit int64) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("body exceeds the %d-byte limit", limit)
	}
	return data, nil
}

// handleMetrics serves the Prometheus text exposition format, hand-rolled
// so the daemon stays dependency-free: run/sweep registry gauges, the
// executor's queue and token occupancy, and per-endpoint request counters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	states := map[string]int{StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0}
	s.mu.Lock()
	for _, r := range s.runs {
		state, _, _ := r.snapshot()
		states[state]++
	}
	sweeps := len(s.sweeps)
	reps := s.specReps
	cells := s.cellsSeen
	endpoints := make(map[string]int, len(s.requests))
	for k, v := range s.requests {
		endpoints[k] = v
	}
	s.mu.Unlock()
	queued, inUse := s.exec.stats()

	var b strings.Builder
	gauge := func(name, help string, write func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		write()
	}
	counter := func(name, help string, write func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		write()
	}
	gauge("pcs_serve_runs", "Runs registered, by current state.", func() {
		for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
			fmt.Fprintf(&b, "pcs_serve_runs{state=%q} %d\n", state, states[state])
		}
	})
	gauge("pcs_serve_sweeps", "Sweeps registered.", func() {
		fmt.Fprintf(&b, "pcs_serve_sweeps %d\n", sweeps)
	})
	counter("pcs_serve_replications_accepted_total", "Replications accepted across all runs.", func() {
		fmt.Fprintf(&b, "pcs_serve_replications_accepted_total %d\n", reps)
	})
	counter("pcs_serve_sweep_cells_accepted_total", "Sweep cells accepted.", func() {
		fmt.Fprintf(&b, "pcs_serve_sweep_cells_accepted_total %d\n", cells)
	})
	gauge("pcs_serve_executor_queue_depth", "Jobs waiting for executor tokens.", func() {
		fmt.Fprintf(&b, "pcs_serve_executor_queue_depth %d\n", queued)
	})
	gauge("pcs_serve_executor_tokens", "Executor core-token budget and occupancy.", func() {
		fmt.Fprintf(&b, "pcs_serve_executor_tokens{kind=\"capacity\"} %d\n", s.capacity)
		fmt.Fprintf(&b, "pcs_serve_executor_tokens{kind=\"in_use\"} %d\n", inUse)
	})
	counter("pcs_serve_http_requests_total", "HTTP requests served, by endpoint pattern.", func() {
		names := make([]string, 0, len(endpoints))
		for k := range endpoints {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, "pcs_serve_http_requests_total{endpoint=%q} %d\n", k, endpoints[k])
		}
	})

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}
