package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// checkGoroutines registers a leak assertion: by the time the test's other
// cleanups have run (the httptest server must be created AFTER this call so
// its Close runs first), the goroutine count must be back to the baseline.
// Canceled and deleted runs must not strand SSE followers or executor
// workers — the satellite this helper pins across the suite.
func checkGoroutines(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(3 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d running, %d at start\n%s",
					runtime.NumGoroutine(), base, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// longRun is a spec whose many small replications give cancellation wide
// replication-boundary windows to land in before it finishes naturally.
const longRun = `{"technique": "Basic", "requests": 200, "rate": 100, "seed": 11, "replications": 400}`

func deleteRun(t *testing.T, url string) RunStatus {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE %s: %d", url, resp.StatusCode)
	}
	var status RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	return status
}

func waitState(t *testing.T, url string) RunStatus {
	t.Helper()
	var status RunStatus
	getJSON(t, url+"?wait=1", &status)
	return status
}

// TestCancelQueuedRun cancels a run that never started: it dequeues on the
// spot (the DELETE response already reads canceled — its tokens were never
// held), the queue's FIFO order of survivors is untouched, and the
// survivors still run to completion.
func TestCancelQueuedRun(t *testing.T) {
	checkGoroutines(t)
	ts := newTestServer(t, 1)

	var ids []string
	for _, body := range []string{longRun, smallRun, smallRun, smallRun} {
		_, data := postJSON(t, ts.URL+"/v1/runs", body)
		var created RunStatus
		if err := json.Unmarshal(data, &created); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, created.ID)
	}
	// The long head occupies the whole budget; the rest queue in order.
	var q QueueStatus
	getJSON(t, ts.URL+"/v1/queue", &q)
	if q.Depth != 3 || q.Queued[0].RunID != ids[1] || q.Queued[2].RunID != ids[3] {
		t.Fatalf("queue before cancel %+v", q)
	}
	if q.Capacity != 1 || q.InUse != 1 {
		t.Fatalf("occupancy %+v", q)
	}

	// Cancel the middle queued run: synchronous, and survivors keep order.
	if got := deleteRun(t, ts.URL+"/v1/runs/"+ids[2]); got.State != StateCanceled {
		t.Fatalf("DELETE of a queued run answered %+v", got)
	}
	getJSON(t, ts.URL+"/v1/queue", &q)
	if q.Depth != 2 || q.Queued[0].RunID != ids[1] || q.Queued[1].RunID != ids[3] {
		t.Fatalf("queue after cancel %+v", q)
	}

	// Cancel the running head too; the survivors must then drain to done.
	deleteRun(t, ts.URL+"/v1/runs/"+ids[0])
	if got := waitState(t, ts.URL+"/v1/runs/"+ids[0]); got.State != StateCanceled {
		t.Fatalf("running head finished %+v", got)
	}
	for _, id := range []string{ids[1], ids[3]} {
		if got := waitState(t, ts.URL+"/v1/runs/"+id); got.State != StateDone || got.Report == nil {
			t.Fatalf("survivor %s finished %+v", id, got)
		}
	}
	// All tokens released exactly once: empty queue, zero occupancy. (The
	// executor's release panics on a double release, backstopping this.)
	getJSON(t, ts.URL+"/v1/queue", &q)
	if q.Depth != 0 || q.InUse != 0 {
		t.Fatalf("executor did not drain: %+v", q)
	}
}

// TestCancelRunningRun cancels mid-execution: the run lands canceled at a
// replication boundary, its SSE followers are woken into a terminal end
// event (not stranded), and its stream stays a valid strict prefix of the
// spec's full stream.
func TestCancelRunningRun(t *testing.T) {
	checkGoroutines(t)
	ts := newTestServer(t, 2)
	_, body := postJSON(t, ts.URL+"/v1/runs", longRun)
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/runs/" + created.ID

	// Follow the stream from before the cancel: the follower must be
	// released by the terminal event, not left blocked.
	type streamResult struct {
		frames []byte
		end    string
	}
	streamed := make(chan streamResult, 1)
	go func() {
		frames, end := readSSE(t, url+"/stream")
		streamed <- streamResult{frames, end}
	}()

	// Wait until it is actually running so the cancel exercises the
	// context path, not the queue-abort path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var status RunStatus
		getJSON(t, url, &status)
		if status.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never reached running: %+v", status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deleteRun(t, url)

	final := waitState(t, url)
	if final.State != StateCanceled || final.Report != nil || final.Error != "" {
		t.Fatalf("canceled run %+v", final)
	}
	select {
	case got := <-streamed:
		if !strings.Contains(got.end, `"state":"canceled"`) {
			t.Fatalf("end event %s", got.end)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SSE follower still blocked after cancel")
	}

	// Metrics see the canceled state.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), `pcs_serve_runs{state="canceled"} 1`) {
		t.Fatalf("metrics missing canceled gauge:\n%s", text)
	}
}

// TestCancelAfterCompletion pins the first-terminal-wins rule: DELETE on a
// done run is a no-op — the state stays done and the report survives.
func TestCancelAfterCompletion(t *testing.T) {
	checkGoroutines(t)
	ts := newTestServer(t, 2)
	_, body := postJSON(t, ts.URL+"/v1/runs", smallRun)
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/runs/" + created.ID
	done := waitState(t, url)
	if done.State != StateDone {
		t.Fatalf("run finished %+v", done)
	}
	if got := deleteRun(t, url); got.State != StateDone || got.Report == nil {
		t.Fatalf("DELETE after completion answered %+v", got)
	}
	if got := waitState(t, url); got.State != StateDone || got.Report == nil {
		t.Fatalf("done run mutated by late cancel: %+v", got)
	}
}

// TestCancelConcurrently races two clients DELETEing the same running run
// (run under -race in CI): exactly one terminal transition lands, tokens
// release exactly once, and the freed budget admits a follow-up run.
func TestCancelConcurrently(t *testing.T) {
	checkGoroutines(t)
	ts := newTestServer(t, 1)
	_, body := postJSON(t, ts.URL+"/v1/runs", longRun)
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/v1/runs/" + created.ID

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deleteRun(t, url)
		}()
	}
	wg.Wait()
	if got := waitState(t, url); got.State != StateCanceled {
		t.Fatalf("doubly-canceled run %+v", got)
	}

	// If tokens leaked (or double-released, which panics) this follow-up
	// would never be admitted at capacity 1.
	_, body = postJSON(t, ts.URL+"/v1/runs", smallRun)
	var after RunStatus
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if got := waitState(t, ts.URL+"/v1/runs/"+after.ID); got.State != StateDone {
		t.Fatalf("post-cancel run finished %+v", got)
	}
	var q QueueStatus
	getJSON(t, ts.URL+"/v1/queue", &q)
	if q.Depth != 0 || q.InUse != 0 {
		t.Fatalf("executor did not drain: %+v", q)
	}
}

// TestCancelSweep cancels a whole sweep mid-flight: every non-terminal
// cell lands canceled, the sweep folds to canceled, and the executor
// drains.
func TestCancelSweep(t *testing.T) {
	checkGoroutines(t)
	ts := newTestServer(t, 1)
	// A sweep of long cells at capacity 1: one runs, three queue.
	sweep := `{
	  "base": {"seed": 3, "requests": 200, "replications": 50},
	  "techniques": ["Basic", "RED-3"],
	  "rates": [1, 2]
	}`
	_, body := postJSON(t, ts.URL+"/v1/sweeps", sweep)
	var created SweepStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE sweep: %d", resp.StatusCode)
	}
	var final SweepStatus
	getJSON(t, ts.URL+"/v1/sweeps/"+created.ID+"?wait=1", &final)
	if final.State != StateCanceled {
		t.Fatalf("canceled sweep folded to %q", final.State)
	}
	for _, cell := range final.Cells {
		if cell.State != StateCanceled && cell.State != StateDone {
			t.Fatalf("cell %s left %q", cell.RunID, cell.State)
		}
	}
	var q QueueStatus
	getJSON(t, ts.URL+"/v1/queue", &q)
	if q.Depth != 0 || q.InUse != 0 {
		t.Fatalf("executor did not drain: %+v", q)
	}
}
