package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/pcs"
)

// Client is a minimal pcs-serve API client: enough surface to submit a
// run, follow its SSE frame stream, and cancel it. The zero value is not
// usable — set Base to the daemon's base URL ("http://host:port").
type Client struct {
	// Base is the daemon's base URL, without a trailing slash.
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// url joins a path onto the daemon base.
func (c *Client) url(path string) string { return strings.TrimRight(c.Base, "/") + path }

// decodeResponse reads an API response, mapping non-2xx statuses (and
// their {"error": ...} bodies) to errors.
func decodeResponse(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := readAllLimited(resp.Body, 1<<26)
	if err != nil {
		return fmt.Errorf("serve: reading response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("serve: %s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("serve: %s", resp.Status)
	}
	if v == nil {
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: decoding response: %w", err)
	}
	return nil
}

// CreateRun submits a RunSpec (POST /v1/runs) and returns the accepted
// run's status.
func (c *Client) CreateRun(ctx context.Context, spec pcs.RunSpec) (RunStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return RunStatus{}, fmt.Errorf("serve: encoding spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/runs"), bytes.NewReader(body))
	if err != nil {
		return RunStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return RunStatus{}, fmt.Errorf("serve: POST /v1/runs: %w", err)
	}
	var status RunStatus
	if err := decodeResponse(resp, &status); err != nil {
		return RunStatus{}, err
	}
	return status, nil
}

// CancelRun cancels a run (DELETE /v1/runs/{id}).
func (c *Client) CancelRun(ctx context.Context, id string) (RunStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/runs/"+id), nil)
	if err != nil {
		return RunStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return RunStatus{}, fmt.Errorf("serve: DELETE /v1/runs/%s: %w", id, err)
	}
	var status RunStatus
	if err := decodeResponse(resp, &status); err != nil {
		return RunStatus{}, err
	}
	return status, nil
}

// StreamRun subscribes to a run's SSE stream and returns its NDJSON
// replication frames — the exact bytes pcs.RunManyStream would write
// locally for the run's spec — once the stream's end event reports a
// terminal state. A stream that ends without its end event (the daemon
// died mid-run) is a transport error; a stream whose end event reports
// failed or canceled returns an error naming that state, because re-running
// the same spec elsewhere would deterministically repeat a spec-level
// failure.
func (c *Client) StreamRun(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/runs/"+id+"/stream"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: streaming %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: streaming %s: %s", id, resp.Status)
	}
	var frames bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	inEnd := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			inEnd = true
		case strings.HasPrefix(line, "data: ") && inEnd:
			var end struct {
				State string `json:"state"`
				Error string `json:"error"`
			}
			payload := strings.TrimPrefix(line, "data: ")
			if err := json.Unmarshal([]byte(payload), &end); err != nil {
				return nil, fmt.Errorf("serve: streaming %s: bad end event %q", id, payload)
			}
			if end.State != StateDone {
				return nil, fmt.Errorf("serve: run %s ended %s: %s", id, end.State, end.Error)
			}
			return frames.Bytes(), nil
		case strings.HasPrefix(line, "data: "):
			frames.WriteString(strings.TrimPrefix(line, "data: "))
			frames.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: streaming %s: %w", id, err)
	}
	return nil, fmt.Errorf("serve: streaming %s: stream closed before its end event", id)
}

// SweepDispatch fans a sweep out across a fleet of pcs-serve daemons:
// the sweep's canonical cells are sharded round-robin over Workers, each
// cell runs remotely with its NDJSON frame stream pulled back over SSE,
// and the frames are merged centrally with pcs.MergeStream. Because the
// cell→seed derivation lives in pcs.SweepSpec.Cells — not in any daemon —
// the merged reports are byte-identical to running the same sweep on a
// single daemon, or locally with pcs-sim, whatever the fleet shape.
//
// A worker that errors (refused connection, non-2xx, a stream cut
// mid-run) does not sink its shard: each affected cell is retried on the
// surviving workers in turn, and only a cell no worker can complete fails
// the dispatch. Spec-level failures (the run itself ends failed) are not
// retried — they would deterministically repeat anywhere.
type SweepDispatch struct {
	// Spec is the sweep to expand and shard.
	Spec pcs.SweepSpec
	// Workers are the daemon base URLs the cells shard across (cell i
	// starts on Workers[i % len(Workers)]). At least one is required.
	Workers []string
	// HTTP is the shared transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// CellResult is one fan-out cell, merged centrally.
type CellResult struct {
	// Spec is the cell's RunSpec (canonical expansion order).
	Spec pcs.RunSpec `json:"spec"`
	// Worker is the daemon that completed the cell; RunID its id there.
	Worker string `json:"worker"`
	RunID  string `json:"runId"`
	// Retries counts the workers that failed the cell before one
	// completed it.
	Retries int `json:"retries,omitempty"`
	// Frames is the cell's NDJSON replication stream, byte-identical to a
	// local pcs.RunManyStream at the cell's spec.
	Frames []byte `json:"-"`
	// Report is pcs.MergeStream folded over Frames — the canonical
	// aggregate, byte-identical to the cell spec's local Report.
	Report pcs.Aggregate `json:"report"`
}

// Run dispatches the sweep and returns its cells in canonical order.
func (d SweepDispatch) Run(ctx context.Context) ([]CellResult, error) {
	if len(d.Workers) == 0 {
		return nil, fmt.Errorf("serve: sweep dispatch needs at least one worker URL")
	}
	cells, err := d.Spec.Cells()
	if err != nil {
		return nil, err
	}
	clients := make([]*Client, len(d.Workers))
	for i, base := range d.Workers {
		clients[i] = &Client{Base: base, HTTP: d.HTTP}
	}

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	var wg sync.WaitGroup
	// One lane per worker: a worker's home cells run in submission order
	// against its FIFO executor, and lanes proceed independently so one
	// slow or dead daemon does not stall the fleet.
	for w := range clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cells); i += len(clients) {
				results[i], errs[i] = d.runCell(ctx, clients, w, cells[i])
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: sweep cell %d (%s/λ=%g): %w",
				i, cells[i].Technique, cells[i].Rate, err)
		}
	}
	return results, nil
}

// runCell runs one cell on its home worker, falling over to each surviving
// worker in turn on transport-level failure.
func (d SweepDispatch) runCell(ctx context.Context, clients []*Client, home int, spec pcs.RunSpec) (CellResult, error) {
	var lastErr error
	for attempt := 0; attempt < len(clients); attempt++ {
		c := clients[(home+attempt)%len(clients)]
		if err := ctx.Err(); err != nil {
			return CellResult{}, err
		}
		created, err := c.CreateRun(ctx, spec)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", c.Base, err)
			continue
		}
		frames, err := c.StreamRun(ctx, created.ID)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", c.Base, err)
			if strings.Contains(err.Error(), "ended "+StateFailed) {
				return CellResult{}, lastErr // deterministic spec failure: retrying cannot help
			}
			continue
		}
		report, err := pcs.MergeStream(bytes.NewReader(frames))
		if err != nil {
			lastErr = fmt.Errorf("%s: merging streamed frames: %w", c.Base, err)
			continue
		}
		return CellResult{
			Spec:    spec,
			Worker:  c.Base,
			RunID:   created.ID,
			Retries: attempt,
			Frames:  frames,
			Report:  report,
		}, nil
	}
	return CellResult{}, lastErr
}

// WriteFrames concatenates every cell's NDJSON frames to w in canonical
// cell order — the fleet-merged sweep stream, one replication record per
// line, cell after cell, for archival or offline per-cell re-merging.
func WriteFrames(w io.Writer, cells []CellResult) error {
	for _, cell := range cells {
		if _, err := w.Write(cell.Frames); err != nil {
			return err
		}
	}
	return nil
}
