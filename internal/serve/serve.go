// Package serve is the pcs-serve management plane: a long-running HTTP
// daemon that accepts runs and sweeps as pcs.RunSpec / pcs.SweepSpec JSON,
// executes them on a bounded work-queue executor, and exposes their
// progress as the same NDJSON replication records the CLI streams — over
// SSE, so pcs.MergeStream re-aggregates a subscription bit-identically to
// a local pcs.RunManyStream at the same spec.
//
// The API surface (see docs/serve.md for the reference with examples):
//
//	POST /v1/runs            run a RunSpec         → {"id": "run-1", ...}
//	GET  /v1/runs/{id}       status + final report (?wait=1 blocks)
//	GET  /v1/runs/{id}/stream  SSE of the run's NDJSON replication frames
//	POST /v1/sweeps          run a SweepSpec grid  → cells as child runs
//	GET  /v1/sweeps/{id}     sweep status + per-cell reports (?wait=1)
//	GET  /v1/scenarios|policies|techniques  registry introspection
//	GET  /metrics            Prometheus text exposition (hand-rolled)
//
// Reports returned by the daemon are the canonical MergeStream-normal
// pcs.Aggregate — byte-identical JSON to `pcs-sim -spec-file spec.json
// -json` for the same spec, which the CI smoke diffs.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/pcs"
)

// Run states, in lifecycle order. A run is terminal in StateDone or
// StateFailed.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// run is one executing RunSpec: the daemon-side record a run id resolves
// to, whether submitted directly or as a sweep cell.
type run struct {
	id   string
	spec pcs.RunSpec
	buf  *lineBuffer
	done chan struct{}

	mu     sync.Mutex
	state  string
	errMsg string
	report *pcs.Aggregate
}

// setState transitions the run; terminal states close done exactly once.
func (r *run) setState(state, errMsg string, report *pcs.Aggregate) {
	r.mu.Lock()
	r.state, r.errMsg, r.report = state, errMsg, report
	r.mu.Unlock()
	if state == StateDone || state == StateFailed {
		close(r.done)
	}
}

// snapshot reads the run's mutable fields consistently.
func (r *run) snapshot() (state, errMsg string, report *pcs.Aggregate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.errMsg, r.report
}

// sweep is one executing SweepSpec: its cells are ordinary runs (each with
// its own id and SSE stream) held in canonical cell order.
type sweep struct {
	id    string
	spec  pcs.SweepSpec
	cells []*run
}

// RunStatus is the GET /v1/runs/{id} (and POST /v1/runs) response body.
type RunStatus struct {
	// ID names the run; its stream lives at /v1/runs/{id}/stream.
	ID string `json:"id"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Spec echoes the accepted RunSpec.
	Spec pcs.RunSpec `json:"spec"`
	// Error carries the failure reason in state "failed".
	Error string `json:"error,omitempty"`
	// Report is the canonical MergeStream-normal aggregate, present in
	// state "done".
	Report *pcs.Aggregate `json:"report,omitempty"`
}

// SweepCellStatus is one cell of a sweep response: the cell's coordinates
// plus its run's status.
type SweepCellStatus struct {
	// RunID is the cell's run id — streamable like any run's.
	RunID string `json:"runId"`
	// Technique, Rate and Policy are the cell's sweep coordinates.
	Technique string  `json:"technique"`
	Rate      float64 `json:"rate"`
	Policy    string  `json:"policy,omitempty"`
	// Seed is the cell's derived seed (pcs.SweepSpec.Cells derivation).
	Seed int64 `json:"seed"`
	// State, Error and Report mirror the cell run's RunStatus fields.
	State  string         `json:"state"`
	Error  string         `json:"error,omitempty"`
	Report *pcs.Aggregate `json:"report,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} (and POST /v1/sweeps) response
// body. Cells are in canonical expansion order (rates outer, then
// techniques, then policies) regardless of execution interleaving.
type SweepStatus struct {
	// ID names the sweep.
	ID string `json:"id"`
	// State folds the cells: queued (none started), failed (any cell
	// failed), done (all cells done), else running.
	State string `json:"state"`
	// Cells is the per-cell status in canonical order.
	Cells []SweepCellStatus `json:"cells"`
}

// Server is the management plane's state: the run/sweep registries, the
// bounded executor they share, and the HTTP handler over them. Create with
// New, serve via Handler.
type Server struct {
	capacity int
	exec     *executor
	mux      *http.ServeMux

	mu        sync.Mutex
	runs      map[string]*run
	sweeps    map[string]*sweep
	runSeq    int
	sweepSeq  int
	requests  map[string]int // per-endpoint request counter, for /metrics
	specReps  int            // total replications accepted, for /metrics
	cellsSeen int            // total sweep cells accepted, for /metrics
}

// New builds a Server whose executor budgets the given number of core
// tokens (capacity < 1 clamps to 1; pass runtime.GOMAXPROCS(0) to budget
// the machine).
func New(capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	s := &Server{
		capacity: capacity,
		exec:     newExecutor(capacity),
		mux:      http.NewServeMux(),
		runs:     make(map[string]*run),
		sweeps:   make(map[string]*sweep),
		requests: make(map[string]int),
	}
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.count(pattern)
			h(w, r)
		})
	}
	handle("POST /v1/runs", s.handleCreateRun)
	handle("GET /v1/runs/{id}", s.handleGetRun)
	handle("GET /v1/runs/{id}/stream", s.handleStreamRun)
	handle("POST /v1/sweeps", s.handleCreateSweep)
	handle("GET /v1/sweeps/{id}", s.handleGetSweep)
	handle("GET /v1/scenarios", s.handleScenarios)
	handle("GET /v1/policies", s.handlePolicies)
	handle("GET /v1/techniques", s.handleTechniques)
	handle("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// count bumps an endpoint's request counter.
func (s *Server) count(pattern string) {
	s.mu.Lock()
	s.requests[pattern]++
	s.mu.Unlock()
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body: {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// runCost estimates the core tokens a spec occupies while executing:
// concurrent replication workers × the per-replication shard/lane width.
// A "use all cores" request (workers/shards/lanes ≤ 0 beyond their
// defaults) costs the whole budget, which the executor clamps.
func (s *Server) runCost(spec pcs.RunSpec) int {
	reps := spec.Replications
	if reps < 1 {
		reps = 1
	}
	workers := spec.Workers
	if workers <= 0 || workers > reps {
		workers = reps
	}
	width := 1
	if spec.Shards > width {
		width = spec.Shards
	}
	if spec.Lanes > width {
		width = spec.Lanes
	}
	if spec.Shards < 0 || spec.Lanes < 0 {
		return s.capacity
	}
	return workers * width
}

// newRun registers a run for the spec and submits it to the executor.
// Callers must have validated the spec (including Options resolution).
func (s *Server) newRun(spec pcs.RunSpec) *run {
	s.mu.Lock()
	s.runSeq++
	r := &run{
		id:    fmt.Sprintf("run-%d", s.runSeq),
		spec:  spec,
		buf:   newLineBuffer(),
		done:  make(chan struct{}),
		state: StateQueued,
	}
	s.runs[r.id] = r
	n := spec.Replications
	if n < 1 {
		n = 1
	}
	s.specReps += n
	s.mu.Unlock()
	s.exec.submit(s.runCost(spec), func() { s.execute(r) })
	return r
}

// execute runs a registered run to a terminal state: the replications
// stream as NDJSON into the run's broadcast buffer (feeding any SSE
// subscribers live), and the final report is MergeStream's fold over
// exactly those frames — the same bytes a subscriber saw — so the daemon
// can never report something its stream does not support.
func (s *Server) execute(r *run) {
	r.mu.Lock()
	r.state = StateRunning
	r.mu.Unlock()

	fail := func(err error) {
		r.buf.close()
		r.setState(StateFailed, err.Error(), nil)
	}
	opts, err := r.spec.Options()
	if err != nil {
		fail(err)
		return
	}
	n := r.spec.Replications
	if n < 1 {
		n = 1
	}
	if _, err := pcs.RunManyStream(opts, n, r.spec.Workers, r.buf); err != nil {
		fail(err)
		return
	}
	r.buf.close()
	agg, err := pcs.MergeStream(strings.NewReader(string(r.buf.bytes())))
	if err != nil {
		r.setState(StateFailed, fmt.Sprintf("merging own stream: %v", err), nil)
		return
	}
	r.setState(StateDone, "", &agg)
}

// status assembles a run's response body.
func (s *Server) status(r *run) RunStatus {
	state, errMsg, report := r.snapshot()
	return RunStatus{ID: r.id, State: state, Spec: r.spec, Error: errMsg, Report: report}
}

// handleCreateRun accepts a RunSpec, validates it (strict JSON, spec
// validation, and an Options dry resolution so e.g. a missing graph file
// rejects at submit time), and queues it.
func (s *Server) handleCreateRun(w http.ResponseWriter, req *http.Request) {
	spec, err := readRunSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r := s.newRun(spec)
	writeJSON(w, http.StatusAccepted, s.status(r))
}

// readRunSpec decodes and fully validates the request body as a RunSpec.
func readRunSpec(req *http.Request) (pcs.RunSpec, error) {
	body, err := readBody(req)
	if err != nil {
		return pcs.RunSpec{}, err
	}
	spec, err := pcs.ParseRunSpec(body)
	if err != nil {
		return pcs.RunSpec{}, err
	}
	if _, err := spec.Options(); err != nil {
		return pcs.RunSpec{}, err
	}
	return spec, nil
}

// readBody reads the request body under the daemon's 1 MiB spec cap.
func readBody(req *http.Request) ([]byte, error) {
	defer req.Body.Close()
	body, err := readAllLimited(req.Body, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

// lookupRun resolves {id} or writes 404.
func (s *Server) lookupRun(w http.ResponseWriter, req *http.Request) (*run, bool) {
	id := req.PathValue("id")
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %q", id))
	}
	return r, ok
}

// handleGetRun returns a run's status; ?wait=1 blocks until the run is
// terminal (or the client goes away).
func (s *Server) handleGetRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(w, req)
	if !ok {
		return
	}
	if wantWait(req) {
		select {
		case <-r.done:
		case <-req.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, s.status(r))
}

// wantWait reports whether the request opts into blocking for completion.
func wantWait(req *http.Request) bool {
	v := req.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// handleStreamRun serves the run's NDJSON replication records over SSE:
// every frame already streamed is replayed, then frames follow live, and a
// terminal "end" event carries the final state. Collecting the data lines
// and folding them with pcs.MergeStream reproduces the run's report
// byte-identically — the frames are the same records pcs.RunManyStream
// writes for this spec.
func (s *Server) handleStreamRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(w, req)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	next := 0
	for {
		lines, closed, wake := r.buf.since(next)
		for _, ln := range lines {
			fmt.Fprintf(w, "data: %s\n\n", ln)
			next++
		}
		fl.Flush()
		if closed {
			break
		}
		select {
		case <-wake:
		case <-req.Context().Done():
			return
		}
	}
	// The buffer only seals when the run reaches a terminal state, so this
	// cannot block; it also guarantees the "end" event reports that state.
	<-r.done
	state, errMsg, _ := r.snapshot()
	fmt.Fprintf(w, "event: end\ndata: {\"state\":%q,\"error\":%q}\n\n", state, errMsg)
	fl.Flush()
}

// handleCreateSweep accepts a SweepSpec, expands it into its canonical
// cells, and queues every cell as a child run in expansion order — the
// executor's FIFO admission then makes start order deterministic too.
func (s *Server) handleCreateSweep(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := pcs.ParseSweepSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cells, err := spec.Cells()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, cell := range cells {
		if _, err := cell.Options(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	sw := &sweep{spec: spec}
	for _, cell := range cells {
		sw.cells = append(sw.cells, s.newRun(cell))
	}
	s.mu.Lock()
	s.sweepSeq++
	sw.id = fmt.Sprintf("sweep-%d", s.sweepSeq)
	s.sweeps[sw.id] = sw
	s.cellsSeen += len(cells)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, s.sweepStatus(sw))
}

// sweepStatus assembles a sweep's response body from its cells.
func (s *Server) sweepStatus(sw *sweep) SweepStatus {
	out := SweepStatus{ID: sw.id}
	allQueued, allDone, anyFailed := true, true, false
	for _, cell := range sw.cells {
		state, errMsg, report := cell.snapshot()
		if state != StateQueued {
			allQueued = false
		}
		if state != StateDone {
			allDone = false
		}
		if state == StateFailed {
			anyFailed = true
		}
		out.Cells = append(out.Cells, SweepCellStatus{
			RunID:     cell.id,
			Technique: cell.spec.Technique,
			Rate:      cell.spec.Rate,
			Policy:    cell.spec.Policy,
			Seed:      cell.spec.Seed,
			State:     state,
			Error:     errMsg,
			Report:    report,
		})
	}
	switch {
	case anyFailed:
		out.State = StateFailed
	case allDone:
		out.State = StateDone
	case allQueued:
		out.State = StateQueued
	default:
		out.State = StateRunning
	}
	return out
}

// lookupSweep resolves {id} or writes 404.
func (s *Server) lookupSweep(w http.ResponseWriter, req *http.Request) (*sweep, bool) {
	id := req.PathValue("id")
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", id))
	}
	return sw, ok
}

// handleGetSweep returns a sweep's status; ?wait=1 blocks until every cell
// is terminal.
func (s *Server) handleGetSweep(w http.ResponseWriter, req *http.Request) {
	sw, ok := s.lookupSweep(w, req)
	if !ok {
		return
	}
	if wantWait(req) {
		for _, cell := range sw.cells {
			select {
			case <-cell.done:
			case <-req.Context().Done():
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}

// handleScenarios lists the scenario registry.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, pcs.ScenarioInfos())
}

// handlePolicies lists the closed-loop policy registry.
func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, pcs.PolicyInfos())
}

// handleTechniques lists the six techniques.
func (s *Server) handleTechniques(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, pcs.TechniqueInfos())
}
