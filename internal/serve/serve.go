// Package serve is the pcs-serve management plane: a long-running HTTP
// daemon that accepts runs and sweeps as pcs.RunSpec / pcs.SweepSpec JSON,
// executes them on a bounded work-queue executor, and exposes their
// progress as the same NDJSON replication records the CLI streams — over
// SSE, so pcs.MergeStream re-aggregates a subscription bit-identically to
// a local pcs.RunManyStream at the same spec.
//
// The API surface (see docs/serve.md for the reference with examples):
//
//	POST   /v1/runs            run a RunSpec         → {"id": "run-1", ...}
//	GET    /v1/runs/{id}       status + final report (?wait=1 blocks)
//	GET    /v1/runs/{id}/stream  SSE of the run's NDJSON replication frames
//	DELETE /v1/runs/{id}       cancel the run (dequeue, or stop at the next
//	                           replication boundary)
//	POST   /v1/sweeps          run a SweepSpec grid  → cells as child runs
//	GET    /v1/sweeps/{id}     sweep status + per-cell reports (?wait=1)
//	DELETE /v1/sweeps/{id}     cancel every non-terminal cell
//	GET    /v1/queue           executor depth + per-run token costs
//	GET    /v1/scenarios|policies|techniques  registry introspection
//	GET    /metrics            Prometheus text exposition (hand-rolled)
//
// Reports returned by the daemon are the canonical MergeStream-normal
// pcs.Aggregate — byte-identical JSON to `pcs-sim -spec-file spec.json
// -json` for the same spec, which the CI smoke diffs.
//
// With a state dir (NewWithStore, pcs-serve -state-dir) every run is also
// durable: the spec and the NDJSON frames persist as they stream, and a
// restarted daemon replays the store — completed runs come back queryable
// with reports recomputed by pcs.MergeStream over the stored bytes
// (byte-identical to the pre-crash reports), interrupted runs resume from
// their completed-replication frontier, and unrecoverable records surface
// as failed runs with a diagnostic.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/pcs"
)

// Run states, in lifecycle order. A run is terminal in StateDone,
// StateFailed or StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminalState reports whether a state ends the run's lifecycle.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// run is one executing RunSpec: the daemon-side record a run id resolves
// to, whether submitted directly, as a sweep cell, or replayed from the
// store on restart.
type run struct {
	id     string
	spec   pcs.RunSpec
	buf    *lineBuffer
	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	ticket *ticket

	// resumeFrom and intactBytes carry a recovered run's
	// completed-replication frontier: execution starts at replication
	// resumeFrom, appending to the intactBytes-long stored frame prefix.
	resumeFrom  int
	intactBytes int64

	mu     sync.Mutex
	state  string
	errMsg string
	report *pcs.Aggregate
}

// setState transitions the run unless it is already terminal — the first
// terminal transition wins, so a cancel racing a natural completion can
// never flip a done run to canceled or close done twice. It reports
// whether the transition applied.
func (r *run) setState(state, errMsg string, report *pcs.Aggregate) bool {
	r.mu.Lock()
	if terminalState(r.state) {
		r.mu.Unlock()
		return false
	}
	r.state, r.errMsg, r.report = state, errMsg, report
	r.mu.Unlock()
	if terminalState(state) {
		close(r.done)
	}
	return true
}

// snapshot reads the run's mutable fields consistently.
func (r *run) snapshot() (state, errMsg string, report *pcs.Aggregate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, r.errMsg, r.report
}

// sweep is one executing SweepSpec: its cells are ordinary runs (each with
// its own id and SSE stream) held in canonical cell order.
type sweep struct {
	id    string
	spec  pcs.SweepSpec
	cells []*run
}

// RunStatus is the GET /v1/runs/{id} (and POST /v1/runs) response body.
type RunStatus struct {
	// ID names the run; its stream lives at /v1/runs/{id}/stream.
	ID string `json:"id"`
	// State is one of queued, running, done, failed, canceled.
	State string `json:"state"`
	// Spec echoes the accepted RunSpec.
	Spec pcs.RunSpec `json:"spec"`
	// Error carries the failure reason in state "failed".
	Error string `json:"error,omitempty"`
	// Report is the canonical MergeStream-normal aggregate, present in
	// state "done".
	Report *pcs.Aggregate `json:"report,omitempty"`
}

// SweepCellStatus is one cell of a sweep response: the cell's coordinates
// plus its run's status.
type SweepCellStatus struct {
	// RunID is the cell's run id — streamable like any run's.
	RunID string `json:"runId"`
	// Technique, Rate and Policy are the cell's sweep coordinates.
	Technique string  `json:"technique"`
	Rate      float64 `json:"rate"`
	Policy    string  `json:"policy,omitempty"`
	// Seed is the cell's derived seed (pcs.SweepSpec.Cells derivation).
	Seed int64 `json:"seed"`
	// State, Error and Report mirror the cell run's RunStatus fields.
	State  string         `json:"state"`
	Error  string         `json:"error,omitempty"`
	Report *pcs.Aggregate `json:"report,omitempty"`
}

// SweepStatus is the GET /v1/sweeps/{id} (and POST /v1/sweeps) response
// body. Cells are in canonical expansion order (rates outer, then
// techniques, then policies) regardless of execution interleaving.
type SweepStatus struct {
	// ID names the sweep.
	ID string `json:"id"`
	// State folds the cells: queued (none started), failed (any cell
	// failed), canceled (any cell canceled, none failed), done (all cells
	// done), else running.
	State string `json:"state"`
	// Cells is the per-cell status in canonical order.
	Cells []SweepCellStatus `json:"cells"`
}

// QueueStatus is the GET /v1/queue response body: the executor's token
// budget and occupancy plus every waiting job with the tokens it will
// hold — the admission cost a client can read before deciding what to
// cancel.
type QueueStatus struct {
	// Capacity is the executor's core-token budget; InUse the tokens
	// currently held by running jobs.
	Capacity int `json:"capacity"`
	InUse    int `json:"inUse"`
	// Depth is len(Queued), echoed for cheap polling.
	Depth int `json:"depth"`
	// Queued lists the waiting jobs in FIFO (admission) order.
	Queued []QueueEntry `json:"queued"`
}

// Server is the management plane's state: the run/sweep registries, the
// bounded executor they share, the optional durable store, and the HTTP
// handler over them. Create with New (in-memory) or NewWithStore
// (durable), serve via Handler.
type Server struct {
	capacity int
	exec     *executor
	mux      *http.ServeMux
	store    *store // nil = in-memory only

	mu        sync.Mutex
	runs      map[string]*run
	sweeps    map[string]*sweep
	runSeq    int
	sweepSeq  int
	requests  map[string]int // per-endpoint request counter, for /metrics
	specReps  int            // total replications accepted, for /metrics
	cellsSeen int            // total sweep cells accepted, for /metrics
}

// New builds a Server whose executor budgets the given number of core
// tokens (capacity < 1 clamps to 1; pass runtime.GOMAXPROCS(0) to budget
// the machine). Runs live in memory only; see NewWithStore for the
// durable daemon.
func New(capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	s := &Server{
		capacity: capacity,
		exec:     newExecutor(capacity),
		mux:      http.NewServeMux(),
		runs:     make(map[string]*run),
		sweeps:   make(map[string]*sweep),
		requests: make(map[string]int),
	}
	handle := func(pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.count(pattern)
			h(w, r)
		})
	}
	handle("POST /v1/runs", s.handleCreateRun)
	handle("GET /v1/runs/{id}", s.handleGetRun)
	handle("GET /v1/runs/{id}/stream", s.handleStreamRun)
	handle("DELETE /v1/runs/{id}", s.handleCancelRun)
	handle("POST /v1/sweeps", s.handleCreateSweep)
	handle("GET /v1/sweeps/{id}", s.handleGetSweep)
	handle("DELETE /v1/sweeps/{id}", s.handleCancelSweep)
	handle("GET /v1/queue", s.handleQueue)
	handle("GET /v1/scenarios", s.handleScenarios)
	handle("GET /v1/policies", s.handlePolicies)
	handle("GET /v1/techniques", s.handleTechniques)
	handle("GET /metrics", s.handleMetrics)
	return s
}

// NewWithStore builds a durable Server: every admitted run persists its
// spec and NDJSON frames under stateDir, and the store's existing records
// are replayed before the first request — terminal runs come back with
// reports recomputed by pcs.MergeStream over their stored bytes,
// interrupted runs are resubmitted from their completed-replication
// frontier, and records too damaged to resume surface as failed runs
// whose error names the damage.
func NewWithStore(capacity int, stateDir string) (*Server, error) {
	s := New(capacity)
	st, err := openStore(stateDir)
	if err != nil {
		return nil, err
	}
	s.store = st
	if err := s.replay(); err != nil {
		return nil, err
	}
	return s, nil
}

// replay reconstructs the registries from the store. Runs are restored in
// id order, so resumed work re-enters the executor in its original FIFO
// admission order.
func (s *Server) replay() error {
	stored, err := s.store.loadRuns()
	if err != nil {
		return err
	}
	for _, sr := range stored {
		r := s.restoreRun(sr)
		s.mu.Lock()
		s.runs[r.id] = r
		if sr.seq > s.runSeq {
			s.runSeq = sr.seq
		}
		n := sr.spec.Replications
		if n < 1 {
			n = 1
		}
		s.specReps += n
		s.mu.Unlock()
		if !terminalState(r.snapshotState()) {
			r.ticket = s.exec.submit(r.id, s.runCost(r.spec), func() { s.execute(r) })
		}
	}
	sweepIDs, sweepRecs, err := s.store.loadSweeps()
	if err != nil {
		return err
	}
	for i, id := range sweepIDs {
		sw := &sweep{id: id, spec: sweepRecs[i].Spec}
		s.mu.Lock()
		complete := true
		for _, cellID := range sweepRecs[i].Cells {
			cell, ok := s.runs[cellID]
			if !ok {
				complete = false
				break
			}
			sw.cells = append(sw.cells, cell)
		}
		if complete {
			s.sweeps[id] = sw
			s.cellsSeen += len(sw.cells)
		}
		if seq, ok := sweepSeqOf(id); ok && seq > s.sweepSeq {
			s.sweepSeq = seq
		}
		s.mu.Unlock()
	}
	return nil
}

// restoreRun rebuilds one run from its stored record, deciding between
// done (recompute the report from the bytes), failed (with a diagnostic),
// canceled, and resume-from-frontier.
func (s *Server) restoreRun(sr storedRun) *run {
	r := newRunRecord(sr.id, sr.spec)
	r.buf.Write(sr.intact)
	needed := sr.spec.Replications
	if needed < 1 {
		needed = 1
	}

	restoreTerminal := func(state, errMsg string, report *pcs.Aggregate) {
		r.setState(state, errMsg, report)
		r.buf.close()
	}
	finalizeDone := func() bool {
		agg, err := pcs.MergeStream(bytes.NewReader(sr.intact))
		if err != nil {
			restoreTerminal(StateFailed, fmt.Sprintf("recovering %s: merging stored frames: %v", sr.id, err), nil)
			return false
		}
		restoreTerminal(StateDone, "", &agg)
		return true
	}

	switch {
	case sr.specErr != nil:
		restoreTerminal(StateFailed, fmt.Sprintf("recovering %s: %v", sr.id, sr.specErr), nil)
	case sr.terminal != nil && sr.terminal.State == StateDone:
		if sr.complete != needed {
			diag := sr.frameDiag
			if diag == "" {
				diag = fmt.Sprintf("%d of %d frames", sr.complete, needed)
			}
			restoreTerminal(StateFailed,
				fmt.Sprintf("recovering %s: marked done but stored frames are damaged: %s", sr.id, diag), nil)
		} else {
			finalizeDone()
		}
	case sr.terminal != nil:
		restoreTerminal(sr.terminal.State, sr.terminal.Error, nil)
	case sr.complete >= needed:
		// Crashed between the last frame and the terminal marker: the
		// stored stream is complete, so finish the bookkeeping now.
		if finalizeDone() {
			s.store.markTerminal(sr.id, StateDone, "")
		}
	default:
		// Interrupted mid-stream: resume past the intact prefix. The
		// frames file is truncated to the prefix when execution opens it.
		r.resumeFrom = sr.complete
		r.intactBytes = int64(len(sr.intact))
	}
	return r
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// count bumps an endpoint's request counter.
func (s *Server) count(pattern string) {
	s.mu.Lock()
	s.requests[pattern]++
	s.mu.Unlock()
}

// writeJSON writes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body: {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// runCost estimates the core tokens a spec occupies while executing:
// concurrent replication workers × the per-replication shard/lane width.
// A "use all cores" request (workers/shards/lanes ≤ 0 beyond their
// defaults) costs the whole budget, which the executor clamps.
func (s *Server) runCost(spec pcs.RunSpec) int {
	reps := spec.Replications
	if reps < 1 {
		reps = 1
	}
	workers := spec.Workers
	if workers <= 0 || workers > reps {
		workers = reps
	}
	width := 1
	if spec.Shards > width {
		width = spec.Shards
	}
	if spec.Lanes > width {
		width = spec.Lanes
	}
	if spec.Shards < 0 || spec.Lanes < 0 {
		return s.capacity
	}
	return workers * width
}

// newRunRecord builds the in-memory record shared by fresh and restored
// runs: an open broadcast buffer and a cancellation context of its own.
func newRunRecord(id string, spec pcs.RunSpec) *run {
	ctx, cancel := context.WithCancel(context.Background())
	return &run{
		id:     id,
		spec:   spec,
		buf:    newLineBuffer(),
		done:   make(chan struct{}),
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
	}
}

// snapshotState reads the run's current state.
func (r *run) snapshotState() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// newRun registers a run for the spec, persists it (when durable), and
// submits it to the executor. Callers must have validated the spec
// (including Options resolution).
func (s *Server) newRun(spec pcs.RunSpec) (*run, error) {
	s.mu.Lock()
	s.runSeq++
	r := newRunRecord(fmt.Sprintf("run-%d", s.runSeq), spec)
	s.runs[r.id] = r
	n := spec.Replications
	if n < 1 {
		n = 1
	}
	s.specReps += n
	s.mu.Unlock()
	if s.store != nil {
		if err := s.store.createRun(r.id, spec); err != nil {
			s.finish(r, StateFailed, err.Error(), nil)
			return nil, err
		}
	}
	r.ticket = s.exec.submit(r.id, s.runCost(spec), func() { s.execute(r) })
	return r, nil
}

// finish lands a run's terminal state exactly once: the broadcast buffer
// seals (waking SSE followers into their end event), and the durable
// marker is written so a restart restores the same state. Losing the
// terminal race (the run already ended) is a no-op.
func (s *Server) finish(r *run, state, errMsg string, report *pcs.Aggregate) {
	if !r.setState(state, errMsg, report) {
		return
	}
	r.buf.close()
	if s.store != nil {
		// Best-effort: if the marker write fails the in-memory state is
		// still correct, and a restart replays the frames — a complete
		// stream finalizes to the same done report, an incomplete one
		// resumes.
		s.store.markTerminal(r.id, state, errMsg)
	}
}

// execute runs a registered run to a terminal state: the replications
// stream as NDJSON into the run's broadcast buffer (feeding any SSE
// subscribers live) and, when durable, into the store's fsynced frames
// file; the final report is MergeStream's fold over exactly those frames —
// the same bytes a subscriber saw — so the daemon can never report
// something its stream does not support. A canceled context stops the run
// at the next replication boundary and lands StateCanceled.
func (s *Server) execute(r *run) {
	r.mu.Lock()
	if terminalState(r.state) {
		// Canceled between dispatch and here; nothing to run.
		r.mu.Unlock()
		return
	}
	r.state = StateRunning
	r.mu.Unlock()

	opts, err := r.spec.Options()
	if err != nil {
		s.finish(r, StateFailed, err.Error(), nil)
		return
	}
	n := r.spec.Replications
	if n < 1 {
		n = 1
	}
	var sink io.Writer = r.buf
	if s.store != nil {
		ff, err := s.store.frameWriter(r.id, r.intactBytes)
		if err != nil {
			s.finish(r, StateFailed, err.Error(), nil)
			return
		}
		defer ff.Close()
		// Durable before broadcast: a frame an SSE subscriber saw is a
		// frame the store can replay.
		sink = io.MultiWriter(ff, r.buf)
	}
	err = pcs.RunManyStreamFrom(r.ctx, opts, n, r.spec.Workers, r.resumeFrom, sink)
	switch {
	case err == nil:
		agg, merr := pcs.MergeStream(bytes.NewReader(r.buf.bytes()))
		if merr != nil {
			s.finish(r, StateFailed, fmt.Sprintf("merging own stream: %v", merr), nil)
			return
		}
		s.finish(r, StateDone, "", &agg)
	case errors.Is(err, context.Canceled):
		s.finish(r, StateCanceled, "", nil)
	default:
		s.finish(r, StateFailed, err.Error(), nil)
	}
}

// cancelRun drives a run toward StateCanceled: a still-queued run is
// dequeued (its tokens were never held) and canceled on the spot; a
// running run gets its context canceled and stops at the next replication
// boundary, with the executor releasing its tokens when the worker
// returns; a terminal run is left untouched.
func (s *Server) cancelRun(r *run) {
	if r.ticket != nil && r.ticket.Abort() {
		s.finish(r, StateCanceled, "", nil)
		return
	}
	r.cancel()
}

// status assembles a run's response body.
func (s *Server) status(r *run) RunStatus {
	state, errMsg, report := r.snapshot()
	return RunStatus{ID: r.id, State: state, Spec: r.spec, Error: errMsg, Report: report}
}

// handleCreateRun accepts a RunSpec, validates it (strict JSON, spec
// validation, and an Options dry resolution so e.g. a missing graph file
// rejects at submit time), and queues it.
func (s *Server) handleCreateRun(w http.ResponseWriter, req *http.Request) {
	spec, err := readRunSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	r, err := s.newRun(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.status(r))
}

// handleCancelRun is DELETE /v1/runs/{id}: cooperative cancellation. The
// response is the run's status at the moment of the call — cancellation of
// a running run is asynchronous (it lands at the next replication
// boundary), so poll ?wait=1 for the terminal state. Canceling a terminal
// run is a no-op.
func (s *Server) handleCancelRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(w, req)
	if !ok {
		return
	}
	s.cancelRun(r)
	writeJSON(w, http.StatusOK, s.status(r))
}

// handleCancelSweep is DELETE /v1/sweeps/{id}: cancels every non-terminal
// cell (queued cells dequeue immediately, running cells stop at their next
// replication boundary) and returns the sweep's status.
func (s *Server) handleCancelSweep(w http.ResponseWriter, req *http.Request) {
	sw, ok := s.lookupSweep(w, req)
	if !ok {
		return
	}
	for _, cell := range sw.cells {
		s.cancelRun(cell)
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}

// handleQueue is GET /v1/queue: the executor's occupancy and the waiting
// jobs with their token costs, in admission order.
func (s *Server) handleQueue(w http.ResponseWriter, _ *http.Request) {
	queued := s.exec.pending()
	_, inUse := s.exec.stats()
	writeJSON(w, http.StatusOK, QueueStatus{
		Capacity: s.capacity,
		InUse:    inUse,
		Depth:    len(queued),
		Queued:   queued,
	})
}

// readRunSpec decodes and fully validates the request body as a RunSpec.
func readRunSpec(req *http.Request) (pcs.RunSpec, error) {
	body, err := readBody(req)
	if err != nil {
		return pcs.RunSpec{}, err
	}
	spec, err := pcs.ParseRunSpec(body)
	if err != nil {
		return pcs.RunSpec{}, err
	}
	if _, err := spec.Options(); err != nil {
		return pcs.RunSpec{}, err
	}
	return spec, nil
}

// readBody reads the request body under the daemon's 1 MiB spec cap.
func readBody(req *http.Request) ([]byte, error) {
	defer req.Body.Close()
	body, err := readAllLimited(req.Body, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return body, nil
}

// lookupRun resolves {id} or writes 404.
func (s *Server) lookupRun(w http.ResponseWriter, req *http.Request) (*run, bool) {
	id := req.PathValue("id")
	s.mu.Lock()
	r, ok := s.runs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %q", id))
	}
	return r, ok
}

// handleGetRun returns a run's status; ?wait=1 blocks until the run is
// terminal (or the client goes away).
func (s *Server) handleGetRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(w, req)
	if !ok {
		return
	}
	if wantWait(req) {
		select {
		case <-r.done:
		case <-req.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, s.status(r))
}

// wantWait reports whether the request opts into blocking for completion.
func wantWait(req *http.Request) bool {
	v := req.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// handleStreamRun serves the run's NDJSON replication records over SSE:
// every frame already streamed is replayed, then frames follow live, and a
// terminal "end" event carries the final state. Collecting the data lines
// and folding them with pcs.MergeStream reproduces the run's report
// byte-identically — the frames are the same records pcs.RunManyStream
// writes for this spec.
func (s *Server) handleStreamRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookupRun(w, req)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	next := 0
	for {
		lines, closed, wake := r.buf.since(next)
		for _, ln := range lines {
			fmt.Fprintf(w, "data: %s\n\n", ln)
			next++
		}
		fl.Flush()
		if closed {
			break
		}
		select {
		case <-wake:
		case <-req.Context().Done():
			return
		}
	}
	// The buffer only seals when the run reaches a terminal state, so this
	// cannot block; it also guarantees the "end" event reports that state.
	<-r.done
	state, errMsg, _ := r.snapshot()
	fmt.Fprintf(w, "event: end\ndata: {\"state\":%q,\"error\":%q}\n\n", state, errMsg)
	fl.Flush()
}

// handleCreateSweep accepts a SweepSpec, expands it into its canonical
// cells, and queues every cell as a child run in expansion order — the
// executor's FIFO admission then makes start order deterministic too.
func (s *Server) handleCreateSweep(w http.ResponseWriter, req *http.Request) {
	body, err := readBody(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := pcs.ParseSweepSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cells, err := spec.Cells()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, cell := range cells {
		if _, err := cell.Options(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	sw := &sweep{spec: spec}
	for _, cell := range cells {
		r, err := s.newRun(cell)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		sw.cells = append(sw.cells, r)
	}
	s.mu.Lock()
	s.sweepSeq++
	sw.id = fmt.Sprintf("sweep-%d", s.sweepSeq)
	s.sweeps[sw.id] = sw
	s.cellsSeen += len(cells)
	s.mu.Unlock()
	if s.store != nil {
		rec := sweepRecord{Spec: spec}
		for _, cell := range sw.cells {
			rec.Cells = append(rec.Cells, cell.id)
		}
		if err := s.store.createSweep(sw.id, rec); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusAccepted, s.sweepStatus(sw))
}

// sweepStatus assembles a sweep's response body from its cells.
func (s *Server) sweepStatus(sw *sweep) SweepStatus {
	out := SweepStatus{ID: sw.id}
	allQueued, allDone, anyFailed, anyCanceled := true, true, false, false
	for _, cell := range sw.cells {
		state, errMsg, report := cell.snapshot()
		if state != StateQueued {
			allQueued = false
		}
		if state != StateDone {
			allDone = false
		}
		if state == StateFailed {
			anyFailed = true
		}
		if state == StateCanceled {
			anyCanceled = true
		}
		out.Cells = append(out.Cells, SweepCellStatus{
			RunID:     cell.id,
			Technique: cell.spec.Technique,
			Rate:      cell.spec.Rate,
			Policy:    cell.spec.Policy,
			Seed:      cell.spec.Seed,
			State:     state,
			Error:     errMsg,
			Report:    report,
		})
	}
	switch {
	case anyFailed:
		out.State = StateFailed
	case anyCanceled:
		out.State = StateCanceled
	case allDone:
		out.State = StateDone
	case allQueued:
		out.State = StateQueued
	default:
		out.State = StateRunning
	}
	return out
}

// lookupSweep resolves {id} or writes 404.
func (s *Server) lookupSweep(w http.ResponseWriter, req *http.Request) (*sweep, bool) {
	id := req.PathValue("id")
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no sweep %q", id))
	}
	return sw, ok
}

// handleGetSweep returns a sweep's status; ?wait=1 blocks until every cell
// is terminal.
func (s *Server) handleGetSweep(w http.ResponseWriter, req *http.Request) {
	sw, ok := s.lookupSweep(w, req)
	if !ok {
		return
	}
	if wantWait(req) {
		for _, cell := range sw.cells {
			select {
			case <-cell.done:
			case <-req.Context().Done():
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw))
}

// handleScenarios lists the scenario registry.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, pcs.ScenarioInfos())
}

// handlePolicies lists the closed-loop policy registry.
func (s *Server) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, pcs.PolicyInfos())
}

// handleTechniques lists the six techniques.
func (s *Server) handleTechniques(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, pcs.TechniqueInfos())
}
