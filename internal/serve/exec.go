package serve

import (
	"bytes"
	"fmt"
	"sync"
)

// job is one queued unit of work: an execution closure with the token cost
// it holds while running, labelled with the run id it executes so the
// queue is introspectable (GET /v1/queue) and cancellable by id.
type job struct {
	id      string
	cost    int
	fn      func()
	aborted bool
	started bool
}

// ticket is a submitter's handle on a queued job: Abort dequeues the job
// if — and only if — it has not started yet.
type ticket struct {
	e *executor
	j *job
}

// Abort removes the job from the queue if it is still waiting there.
// It returns true exactly when the job will never run: the caller then
// owns the terminal transition (no tokens were ever held, so none are
// released). A false return means the job already started (or finished) —
// cancellation must then go through the job's own context.
func (t *ticket) Abort() bool {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if t.j.started || t.j.aborted {
		return false
	}
	t.j.aborted = true
	for i, j := range t.e.queue {
		if j == t.j {
			t.e.queue = append(t.e.queue[:i], t.e.queue[i+1:]...)
			break
		}
	}
	// Removing a wide job from the head can unblock the jobs behind it.
	t.e.dispatchLocked()
	return true
}

// executor is the daemon's bounded work queue: a FIFO of jobs admitted
// against a fixed token budget, where a job's cost is the core width it
// occupies (replication workers × intra-run shard/lane width). Admission
// is strictly head-of-line: a wide job at the head waits for tokens rather
// than being overtaken, so submission order is start order — the property
// that keeps a sweep's execution deterministic under any concurrency.
// Aborting a queued job dequeues it without disturbing the FIFO order of
// the survivors.
type executor struct {
	capacity int

	mu    sync.Mutex
	avail int
	queue []*job
}

// newExecutor sizes the queue's token budget; capacity < 1 is clamped to 1.
func newExecutor(capacity int) *executor {
	if capacity < 1 {
		capacity = 1
	}
	return &executor{capacity: capacity, avail: capacity}
}

// submit enqueues fn at the given cost (clamped to [1, capacity] so no job
// is unrunnable) and starts it as soon as it reaches the queue head with
// enough tokens free. The returned ticket can dequeue the job before it
// starts.
func (e *executor) submit(id string, cost int, fn func()) *ticket {
	if cost < 1 {
		cost = 1
	}
	if cost > e.capacity {
		cost = e.capacity
	}
	j := &job{id: id, cost: cost, fn: fn}
	e.mu.Lock()
	e.queue = append(e.queue, j)
	e.dispatchLocked()
	e.mu.Unlock()
	return &ticket{e: e, j: j}
}

// dispatchLocked starts queued jobs while the head fits in the free
// tokens. Caller holds e.mu.
func (e *executor) dispatchLocked() {
	for len(e.queue) > 0 && e.queue[0].cost <= e.avail {
		j := e.queue[0]
		e.queue = e.queue[1:]
		j.started = true
		e.avail -= j.cost
		go func() {
			defer e.release(j.cost)
			j.fn()
		}()
	}
}

// release returns a finished job's tokens and re-dispatches. Tokens are
// released exactly once per started job (the deferred call in
// dispatchLocked is the only caller); over-release would mean a bookkeeping
// bug upstream, so it panics rather than silently widening the budget.
func (e *executor) release(cost int) {
	e.mu.Lock()
	e.avail += cost
	if e.avail > e.capacity {
		panic(fmt.Sprintf("serve: executor released past capacity (%d > %d)", e.avail, e.capacity))
	}
	e.dispatchLocked()
	e.mu.Unlock()
}

// stats reports the queue depth and the tokens currently held, for
// /metrics.
func (e *executor) stats() (queued, inUse int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue), e.capacity - e.avail
}

// QueueEntry is one waiting job as GET /v1/queue reports it: the run it
// will execute and the tokens it will hold.
type QueueEntry struct {
	RunID string `json:"runId"`
	Cost  int    `json:"cost"`
}

// pending snapshots the waiting jobs in FIFO order.
func (e *executor) pending() []QueueEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]QueueEntry, 0, len(e.queue))
	for _, j := range e.queue {
		out = append(out, QueueEntry{RunID: j.id, Cost: j.cost})
	}
	return out
}

// lineBuffer accumulates the NDJSON lines a run streams and broadcasts
// their arrival: an io.Writer on the producer side (fed by
// pcs.RunManyStream's encoder), a replay-then-follow reader on the SSE
// side. Every subscriber sees the full line sequence from the first frame
// regardless of when it attached, so MergeStream over a subscription is
// always MergeStream over the whole stream.
type lineBuffer struct {
	mu      sync.Mutex
	partial []byte
	lines   []string
	closed  bool
	wake    chan struct{}
}

// newLineBuffer returns an open, empty buffer.
func newLineBuffer() *lineBuffer {
	return &lineBuffer{wake: make(chan struct{})}
}

// Write appends encoder output, splitting completed lines off into the
// broadcast log. It never fails; the error is the io.Writer contract.
func (b *lineBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.partial = append(b.partial, p...)
	for {
		i := bytes.IndexByte(b.partial, '\n')
		if i < 0 {
			break
		}
		b.lines = append(b.lines, string(b.partial[:i]))
		b.partial = b.partial[i+1:]
	}
	b.wakeLocked()
	return len(p), nil
}

// close seals the buffer: a trailing unterminated line is flushed, and
// followers are woken a final time so they observe the end of the stream.
func (b *lineBuffer) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.partial) > 0 {
		b.lines = append(b.lines, string(b.partial))
		b.partial = nil
	}
	b.closed = true
	b.wakeLocked()
}

// wakeLocked rotates the broadcast channel, releasing current waiters.
// Caller holds b.mu.
func (b *lineBuffer) wakeLocked() {
	close(b.wake)
	b.wake = make(chan struct{})
}

// since returns the lines appended at or after index from, whether the
// buffer is sealed, and a channel that closes on the next append — the
// follow protocol: drain, then wait unless closed.
func (b *lineBuffer) since(from int) (lines []string, closed bool, wake <-chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from < len(b.lines) {
		lines = append(lines, b.lines[from:]...)
	}
	return lines, b.closed, b.wake
}

// bytes returns the whole stream so far as NDJSON bytes (one trailing
// newline per line) — the MergeStream input.
func (b *lineBuffer) bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out bytes.Buffer
	for _, ln := range b.lines {
		out.WriteString(ln)
		out.WriteByte('\n')
	}
	return out.Bytes()
}
