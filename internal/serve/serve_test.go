package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pcs"
)

func newTestServer(t *testing.T, capacity int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(capacity).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

const smallRun = `{"technique": "Basic", "requests": 300, "rate": 100, "seed": 7, "replications": 2}`

// TestRunLifecycle drives a run through the API: accepted queued, report
// present and canonical after ?wait=1.
func TestRunLifecycle(t *testing.T) {
	ts := newTestServer(t, 2)
	resp, body := postJSON(t, ts.URL+"/v1/runs", smallRun)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/runs: %d %s", resp.StatusCode, body)
	}
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Spec.Seed != 7 {
		t.Fatalf("created %+v", created)
	}

	var done RunStatus
	getJSON(t, ts.URL+"/v1/runs/"+created.ID+"?wait=1", &done)
	if done.State != StateDone || done.Report == nil || done.Error != "" {
		t.Fatalf("finished run %+v", done)
	}
	if done.Report.Replications != 2 || done.Report.Workers != 0 || done.Report.Runs != nil {
		t.Fatalf("report not canonical: %+v", done.Report)
	}

	// The daemon's report must be byte-identical to the local canonical
	// report for the same spec — the cross-entry-point identity.
	local, err := created.Spec.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(local)
	gotJSON, _ := json.Marshal(done.Report)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("daemon report diverged from RunSpec.Report:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestRejections walks the API's error surface.
func TestRejections(t *testing.T) {
	ts := newTestServer(t, 1)
	cases := []struct{ path, body string }{
		{"/v1/runs", `{"technique": "warp"}`},         // unknown technique
		{"/v1/runs", `{"tecnique": "PCS"}`},           // unknown field (strict decode)
		{"/v1/runs", `not json`},                      // malformed
		{"/v1/runs", `{"graphFile": "/nope/g.json"}`}, // missing graph file caught at submit
		{"/v1/sweeps", `{"base": {"scenario": "missing"}}`},
		{"/v1/sweeps", `{"base": {}, "techniques": ["warp"]}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: %d %s, want 400", c.path, c.body, resp.StatusCode, body)
		}
		if !bytes.Contains(body, []byte(`"error"`)) {
			t.Errorf("POST %s %q: no error body: %s", c.path, c.body, body)
		}
	}
	for _, path := range []string{"/v1/runs/run-99", "/v1/runs/run-99/stream", "/v1/sweeps/sweep-9"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
}

// readSSE collects a stream's data lines until the end event, returning
// the NDJSON payload and the terminal event body.
func readSSE(t *testing.T, url string) (ndjson []byte, end string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	var buf bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	inEnd := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			inEnd = true
		case strings.HasPrefix(line, "data: ") && inEnd:
			return buf.Bytes(), strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, "data: "):
			buf.WriteString(strings.TrimPrefix(line, "data: "))
			buf.WriteByte('\n')
		}
	}
	t.Fatalf("stream ended without end event (got %d bytes): %v", buf.Len(), sc.Err())
	return nil, ""
}

// TestStreamMergesBitIdentically is the tentpole invariant: the SSE frames
// are the same NDJSON records pcs.RunManyStream writes locally for the
// spec, so MergeStream over a subscription reproduces the local aggregate
// byte for byte — and the daemon's own report matches both.
func TestStreamMergesBitIdentically(t *testing.T) {
	ts := newTestServer(t, 2)
	_, body := postJSON(t, ts.URL+"/v1/runs", smallRun)
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	// Subscribe immediately — likely mid-run — to exercise replay+follow.
	streamed, end := readSSE(t, ts.URL+"/v1/runs/"+created.ID+"/stream")
	if !strings.Contains(end, `"state":"done"`) {
		t.Fatalf("end event %s", end)
	}

	opts, err := created.Spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	var local bytes.Buffer
	localAgg, err := pcs.RunManyStream(opts, 2, 0, &local)
	if err != nil {
		t.Fatal(err)
	}
	if string(streamed) != local.String() {
		t.Fatalf("SSE frames diverged from local RunManyStream:\n got %s\nwant %s", streamed, local.Bytes())
	}

	merged, err := pcs.MergeStream(bytes.NewReader(streamed))
	if err != nil {
		t.Fatal(err)
	}
	localAgg.Workers = 0
	localAgg.Runs = nil
	wantJSON, _ := json.Marshal(localAgg)
	gotJSON, _ := json.Marshal(merged)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("MergeStream over SSE diverged:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// A second subscription after completion replays the whole stream.
	replayed, _ := readSSE(t, ts.URL+"/v1/runs/"+created.ID+"/stream")
	if string(replayed) != string(streamed) {
		t.Fatal("replayed stream differs from the live one")
	}
}

const smallSweep = `{
  "base": {"seed": 3, "requests": 60},
  "techniques": ["Basic", "RED-3"],
  "rates": [1, 2]
}`

// TestSweepDeterministicUnderConcurrency pins the executor contract: the
// same sweep returns cells in canonical order with byte-identical reports
// whether the queue runs them one at a time or concurrently, and each
// cell's report equals the cell spec's local canonical report.
func TestSweepDeterministicUnderConcurrency(t *testing.T) {
	finish := func(capacity int) SweepStatus {
		ts := newTestServer(t, capacity)
		resp, body := postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/sweeps: %d %s", resp.StatusCode, body)
		}
		var created SweepStatus
		if err := json.Unmarshal(body, &created); err != nil {
			t.Fatal(err)
		}
		var done SweepStatus
		getJSON(t, ts.URL+"/v1/sweeps/"+created.ID+"?wait=1", &done)
		if done.State != StateDone {
			t.Fatalf("sweep at capacity %d finished %+v", capacity, done)
		}
		return done
	}

	serial, wide := finish(1), finish(4)
	if len(serial.Cells) != 4 || len(wide.Cells) != 4 {
		t.Fatalf("cell counts %d/%d, want 4", len(serial.Cells), len(wide.Cells))
	}
	order := []string{"Basic", "RED-3", "Basic", "RED-3"}
	for i, cell := range serial.Cells {
		if cell.Technique != order[i] {
			t.Fatalf("cell %d technique %s, want %s", i, cell.Technique, order[i])
		}
		wantJSON, _ := json.Marshal(wide.Cells[i].Report)
		gotJSON, _ := json.Marshal(cell.Report)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("cell %d diverged between capacity 1 and 4", i)
		}
	}
	// Rate-major order and the canonical seed derivation.
	if serial.Cells[0].Rate != 1 || serial.Cells[2].Rate != 2 {
		t.Fatalf("cell rates %+v", serial.Cells)
	}

	// Each cell equals its spec run locally — the sweep is just runs.
	sweep, err := pcs.ParseSweepSpec([]byte(smallSweep))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	local, err := cells[1].Report()
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(local)
	gotJSON, _ := json.Marshal(serial.Cells[1].Report)
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("sweep cell diverged from its spec's local report")
	}
	if serial.Cells[1].Seed != cells[1].Seed {
		t.Fatalf("cell seed %d, want %d", serial.Cells[1].Seed, cells[1].Seed)
	}
}

// TestIntrospectionAndMetrics covers the registry listings and the
// Prometheus text endpoint.
func TestIntrospectionAndMetrics(t *testing.T) {
	ts := newTestServer(t, 1)
	var scenarios, policies, techniques []pcs.Info
	getJSON(t, ts.URL+"/v1/scenarios", &scenarios)
	getJSON(t, ts.URL+"/v1/policies", &policies)
	getJSON(t, ts.URL+"/v1/techniques", &techniques)
	if len(scenarios) == 0 || len(policies) == 0 || len(techniques) != 6 {
		t.Fatalf("introspection sizes %d/%d/%d", len(scenarios), len(policies), len(techniques))
	}
	for _, info := range scenarios {
		if info.Name == "" || info.Description == "" {
			t.Fatalf("undescribed scenario %+v", info)
		}
	}

	_, body := postJSON(t, ts.URL+"/v1/runs", smallRun)
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	var done RunStatus
	getJSON(t, ts.URL+"/v1/runs/"+created.ID+"?wait=1", &done)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type %q", ct)
	}
	for _, want := range []string{
		`pcs_serve_runs{state="done"} 1`,
		`pcs_serve_executor_tokens{kind="capacity"} 1`,
		`pcs_serve_replications_accepted_total 2`,
		`pcs_serve_http_requests_total{endpoint="POST /v1/runs"} 1`,
		"# TYPE pcs_serve_runs gauge",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestExecutorFIFO pins the queue semantics: head-of-line admission (no
// overtaking) against the token budget.
func TestExecutorFIFO(t *testing.T) {
	e := newExecutor(2)
	release1 := make(chan struct{})
	release2 := make(chan struct{})
	started := make(chan int, 3)
	e.submit("run-1", 1, func() { started <- 1; <-release1 })
	e.submit("run-2", 2, func() { started <- 2; <-release2 })
	e.submit("run-3", 1, func() { started <- 3 })

	if got := <-started; got != 1 {
		t.Fatalf("first start %d", got)
	}
	// One token is free — enough for job 3 but not for job 2 at the head
	// of the queue. Strict FIFO means job 3 must not overtake.
	select {
	case got := <-started:
		t.Fatalf("job %d overtook the queue head", got)
	case <-time.After(50 * time.Millisecond):
	}
	if queued, inUse := e.stats(); queued != 2 || inUse != 1 {
		t.Fatalf("stats %d queued / %d in use", queued, inUse)
	}
	close(release1)
	if got := <-started; got != 2 {
		t.Fatalf("second start %d", got)
	}
	// Job 2 now holds both tokens; job 3 waits again.
	select {
	case got := <-started:
		t.Fatalf("job %d started while tokens were exhausted", got)
	case <-time.After(50 * time.Millisecond):
	}
	close(release2)
	if got := <-started; got != 3 {
		t.Fatalf("third start %d", got)
	}
}

// TestExecutorAbort extends the FIFO pin to cancellation: aborting a
// queued job dequeues it without disturbing the survivors' order, a wide
// abort at the head unblocks the jobs behind it, and a started job cannot
// be aborted (its tokens are released exactly once, by its own return).
func TestExecutorAbort(t *testing.T) {
	e := newExecutor(2)
	blockA := make(chan struct{})
	started := make(chan string, 4)
	tA := e.submit("a", 2, func() { started <- "a"; <-blockA })
	tB := e.submit("b", 2, func() { started <- "b" })
	tC := e.submit("c", 1, func() { started <- "c" })
	tD := e.submit("d", 1, func() { started <- "d" })

	if got := <-started; got != "a" {
		t.Fatalf("first start %q", got)
	}
	if tA.Abort() {
		t.Fatal("started job reported aborted")
	}
	if got := e.pending(); len(got) != 3 || got[0].RunID != "b" || got[0].Cost != 2 {
		t.Fatalf("pending = %+v", got)
	}
	// Abort the wide head: c and d (still in order) must both start even
	// though a still holds the full budget — only once a returns.
	if !tB.Abort() {
		t.Fatal("queued head not aborted")
	}
	if tB.Abort() {
		t.Fatal("second abort of the same job succeeded")
	}
	select {
	case got := <-started:
		t.Fatalf("job %q started while tokens were exhausted", got)
	case <-time.After(50 * time.Millisecond):
	}
	close(blockA)
	// c and d dispatch in FIFO order but run concurrently (both fit in the
	// freed budget), so assert the set, not the channel arrival order.
	got := map[string]bool{<-started: true, <-started: true}
	if !got["c"] || !got["d"] {
		t.Fatalf("post-abort starts %v, want c and d", got)
	}
	deadline := time.After(time.Second)
	for {
		if q, inUse := e.stats(); q == 0 && inUse == 0 {
			break
		}
		select {
		case <-deadline:
			q, inUse := e.stats()
			t.Fatalf("executor did not drain: %d queued, %d in use", q, inUse)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if tC.Abort() || tD.Abort() {
		t.Fatal("finished jobs reported aborted")
	}
}

// TestLineBuffer pins the broadcast buffer: partial writes coalesce into
// lines, followers replay then follow, close flushes and wakes.
func TestLineBuffer(t *testing.T) {
	b := newLineBuffer()
	fmt.Fprintf(b, "alpha\nbra")
	lines, closed, wake := b.since(0)
	if len(lines) != 1 || lines[0] != "alpha" || closed {
		t.Fatalf("since(0) = %v, %v", lines, closed)
	}
	fmt.Fprintf(b, "vo\n")
	select {
	case <-wake:
	case <-time.After(time.Second):
		t.Fatal("append did not wake the follower")
	}
	lines, _, _ = b.since(1)
	if len(lines) != 1 || lines[0] != "bravo" {
		t.Fatalf("second line %v", lines)
	}
	fmt.Fprintf(b, "tail-no-newline")
	b.close()
	lines, closed, _ = b.since(2)
	if !closed || len(lines) != 1 || lines[0] != "tail-no-newline" {
		t.Fatalf("after close: %v, %v", lines, closed)
	}
	if got := string(b.bytes()); got != "alpha\nbravo\ntail-no-newline\n" {
		t.Fatalf("bytes = %q", got)
	}
}
