package serve

import (
	"bytes"
	"testing"

	"repro/pcs"
)

// FuzzStoreRecover pins the crash-recovery scanner against arbitrary
// stored frame bytes — whatever a crash, a partial fsync, or a corrupted
// disk leaves in frames.ndjson. The invariants: recoverFrames never
// panics; its intact result is always a byte prefix of the input made of
// exactly `complete` whole in-order frames; that prefix re-reads cleanly
// through the pcs stream decoders (MergeStream succeeds whenever any
// frame survived); and recovery is idempotent — recovering the recovered
// prefix changes nothing and reports no damage.
func FuzzStoreRecover(f *testing.F) {
	// Seed with the genuine article: a real stream from a testdata/specs
	// style run, plus the corruption shapes the unit table walks.
	spec := pcs.RunSpec{Technique: "Basic", Requests: 200, Rate: 100, Seed: 7, Replications: 3}
	opts, err := spec.Options()
	if err != nil {
		f.Fatal(err)
	}
	var full bytes.Buffer
	if _, err := pcs.RunManyStream(opts, spec.Replications, 0, &full); err != nil {
		f.Fatal(err)
	}
	stream := full.Bytes()
	first := stream[:bytes.IndexByte(stream, '\n')+1]
	f.Add(stream)
	f.Add(stream[:len(stream)-5])                       // torn last line
	f.Add(append(append([]byte{}, first...), first...)) // duplicate frame
	f.Add([]byte(`{"rep":0,"seed":7,"result":{}}` + "\n"))
	f.Add([]byte(`{"rep":1}` + "\n")) // starts mid-stream
	f.Add([]byte("not json\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		intact, complete, diag := recoverFrames(data)
		if !bytes.HasPrefix(data, intact) {
			t.Fatalf("intact is not a byte prefix of the input")
		}
		if complete < 0 {
			t.Fatalf("negative frame count %d", complete)
		}
		if len(intact) > 0 && intact[len(intact)-1] != '\n' {
			t.Fatalf("intact prefix does not end at a frame boundary: %q", intact)
		}
		if len(intact) < len(data) && diag == "" {
			t.Fatalf("dropped %d bytes without a diagnostic", len(data)-len(intact))
		}
		recs, err := pcs.ReadStream(bytes.NewReader(intact))
		if err != nil {
			t.Fatalf("intact prefix does not re-read: %v", err)
		}
		if len(recs) != complete {
			t.Fatalf("prefix re-reads as %d records, recovery said %d", len(recs), complete)
		}
		if complete > 0 {
			if _, err := pcs.MergeStream(bytes.NewReader(intact)); err != nil {
				t.Fatalf("MergeStream over intact prefix: %v", err)
			}
		}
		again, n, d := recoverFrames(intact)
		if !bytes.Equal(again, intact) || n != complete || d != "" {
			t.Fatalf("recovery not idempotent: %d frames, diag %q", n, d)
		}
	})
}
