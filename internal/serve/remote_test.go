package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/pcs"
)

// fleetSweep expands to 12 cells (2 techniques × 6 rates) — enough to
// shard 3 ways with every daemon owning four cells.
var fleetSweep = pcs.SweepSpec{
	Base:       pcs.RunSpec{Seed: 3, Requests: 60},
	Techniques: []string{"Basic", "RED-3"},
	Rates:      []float64{1, 2, 3, 4, 5, 6},
}

// newFleet starts n in-process daemons and returns their base URLs.
func newFleet(t *testing.T, n, capacity int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(New(capacity).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestFleetFanOutIdentity is the fan-out tentpole invariant: a 12-cell
// sweep sharded across a 3-daemon fleet merges to reports byte-identical
// to each cell's local canonical report — and to a single-daemon dispatch
// of the same sweep — because the cell→seed derivation lives in
// SweepSpec.Cells, not in any daemon.
func TestFleetFanOutIdentity(t *testing.T) {
	checkGoroutines(t)
	cells, err := fleetSweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("sweep expands to %d cells, want 12", len(cells))
	}

	fleet := SweepDispatch{Spec: fleetSweep, Workers: newFleet(t, 3, 2)}
	fleetCells, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	solo := SweepDispatch{Spec: fleetSweep, Workers: newFleet(t, 1, 2)}
	soloCells, err := solo.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(fleetCells) != 12 || len(soloCells) != 12 {
		t.Fatalf("dispatch returned %d/%d cells, want 12", len(fleetCells), len(soloCells))
	}

	workersSeen := map[string]int{}
	for i, cell := range fleetCells {
		if cell.Spec.Technique != cells[i].Technique || cell.Spec.Rate != cells[i].Rate {
			t.Fatalf("cell %d out of canonical order: %+v", i, cell.Spec)
		}
		workersSeen[cell.Worker]++
		if cell.Retries != 0 {
			t.Fatalf("healthy fleet retried cell %d on %s", i, cell.Worker)
		}
		// Byte-identity #1: fleet vs single-daemon, frames and reports.
		if !bytes.Equal(cell.Frames, soloCells[i].Frames) {
			t.Fatalf("cell %d frames diverged between fleet shapes", i)
		}
		fleetJSON, _ := json.Marshal(cell.Report)
		soloJSON, _ := json.Marshal(soloCells[i].Report)
		if !bytes.Equal(fleetJSON, soloJSON) {
			t.Fatalf("cell %d report diverged between fleet shapes:\n got %s\nwant %s", i, fleetJSON, soloJSON)
		}
		// Byte-identity #2: fleet vs local canonical report for the cell.
		local, err := cells[i].Report()
		if err != nil {
			t.Fatal(err)
		}
		localJSON, _ := json.Marshal(local)
		if !bytes.Equal(fleetJSON, localJSON) {
			t.Fatalf("cell %d report diverged from local:\n got %s\nwant %s", i, fleetJSON, localJSON)
		}
	}
	// The shard actually spread: every daemon completed its 4 home cells.
	if len(workersSeen) != 3 {
		t.Fatalf("cells completed on %d workers, want 3: %v", len(workersSeen), workersSeen)
	}
	for url, n := range workersSeen {
		if n != 4 {
			t.Fatalf("worker %s completed %d cells, want 4", url, n)
		}
	}

	// The concatenated fleet stream re-merges per cell offline.
	var archive bytes.Buffer
	if err := WriteFrames(&archive, fleetCells); err != nil {
		t.Fatal(err)
	}
	if got, want := bytes.Count(archive.Bytes(), []byte("\n")), 12; got != want {
		t.Fatalf("archived stream has %d frames, want %d", got, want)
	}
}

// TestFleetRetriesDeadWorker is the fault case: one of three daemons 500s
// every request, and the client re-dispatches its shard on the survivors —
// the merged reports still come out byte-identical to local.
func TestFleetRetriesDeadWorker(t *testing.T) {
	checkGoroutines(t)
	var hits atomic.Int64
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error": "disk on fire"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)

	workers := newFleet(t, 2, 2)
	workers = append(workers[:1], append([]string{dead.URL}, workers[1:]...)...) // dead in the middle
	d := SweepDispatch{Spec: fleetSweep, Workers: workers}
	results, err := d.Run(context.Background())
	if err != nil {
		t.Fatalf("dispatch with one dead worker failed: %v", err)
	}
	if hits.Load() == 0 {
		t.Fatal("dead worker was never tried — shard placement changed?")
	}

	cells, err := fleetSweep.Cells()
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for i, cell := range results {
		if cell.Worker == dead.URL {
			t.Fatalf("cell %d reported completion on the dead worker", i)
		}
		if cell.Retries > 0 {
			retried++
		}
		local, err := cells[i].Report()
		if err != nil {
			t.Fatal(err)
		}
		localJSON, _ := json.Marshal(local)
		gotJSON, _ := json.Marshal(cell.Report)
		if !bytes.Equal(gotJSON, localJSON) {
			t.Fatalf("cell %d report diverged after retry:\n got %s\nwant %s", i, gotJSON, localJSON)
		}
	}
	// The dead worker's home shard is cells 1, 4, 7, 10 — all retried.
	if retried != 4 {
		t.Fatalf("%d cells retried, want the dead worker's 4 home cells", retried)
	}
}

// TestFleetAllWorkersDead pins the exhaustion path: when no worker can
// complete a cell the dispatch fails with the last worker error, naming
// the cell.
func TestFleetAllWorkersDead(t *testing.T) {
	checkGoroutines(t)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, `{"error": "no"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(dead.Close)
	d := SweepDispatch{Spec: fleetSweep, Workers: []string{dead.URL}}
	if _, err := d.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "sweep cell") {
		t.Fatalf("dispatch with no live workers: %v", err)
	}
	if _, err := (SweepDispatch{Spec: fleetSweep}).Run(context.Background()); err == nil {
		t.Fatal("dispatch with no workers accepted")
	}
}
