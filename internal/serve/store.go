package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/pcs"
)

// store is the daemon's durable run record: one directory per run holding
// the accepted spec, the NDJSON replication frames as they stream
// (append-only, fsynced per appended frame batch), and a terminal marker
// written when the run ends. The frames are the same bytes the SSE stream
// carries and pcs.MergeStream folds, so recovery is pure re-reading: a
// restarted daemon recomputes every report from the stored bytes and gets
// the pre-crash answer byte for byte.
//
// Layout under the state dir:
//
//	runs/run-3/spec.json      the pcs.RunSpec, written at admission
//	runs/run-3/frames.ndjson  StreamedRun lines, appended + fsynced
//	runs/run-3/state.json     {"state": ..., "error": ...} once terminal
//	sweeps/sweep-1.json       {"spec": ..., "cells": ["run-3", ...]}
//
// Marker and spec writes are atomic (temp file + rename); the frames file
// is the one append-only surface, and recoverFrames tolerates whatever a
// crash left at its tail.
type store struct {
	dir string
}

// terminalMark is the state.json payload: the run's terminal state and, for
// failures, its diagnostic.
type terminalMark struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// sweepRecord is the sweeps/{id}.json payload: the accepted SweepSpec and
// the run ids of its cells in canonical order.
type sweepRecord struct {
	Spec  pcs.SweepSpec `json:"spec"`
	Cells []string      `json:"cells"`
}

// openStore creates (or reopens) the state directory.
func openStore(dir string) (*store, error) {
	for _, sub := range []string{"runs", "sweeps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: opening state dir: %w", err)
		}
	}
	return &store{dir: dir}, nil
}

// runDir is the directory holding one run's record.
func (st *store) runDir(id string) string { return filepath.Join(st.dir, "runs", id) }

// writeAtomic writes data to path via a temp file + rename, so a crash
// never leaves a half-written spec or marker.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	for _, err := range []error{werr, serr, cerr} {
		if err != nil {
			os.Remove(tmp.Name())
			return err
		}
	}
	return os.Rename(tmp.Name(), path)
}

// createRun records a freshly admitted run: its directory and its spec.
func (st *store) createRun(id string, spec pcs.RunSpec) error {
	dir := st.runDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("serve: creating run record: %w", err)
	}
	data, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("serve: encoding spec: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, "spec.json"), append(data, '\n')); err != nil {
		return fmt.Errorf("serve: writing spec: %w", err)
	}
	return nil
}

// markTerminal durably records the run's terminal state.
func (st *store) markTerminal(id, state, errMsg string) error {
	data, err := json.Marshal(terminalMark{State: state, Error: errMsg})
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(st.runDir(id), "state.json"), append(data, '\n'))
}

// createSweep records an admitted sweep after its cell runs exist.
func (st *store) createSweep(id string, rec sweepRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: encoding sweep record: %w", err)
	}
	path := filepath.Join(st.dir, "sweeps", id+".json")
	if err := writeAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("serve: writing sweep record: %w", err)
	}
	return nil
}

// frameWriter opens the run's frames file for appending (resuming a
// recovered run keeps its intact prefix; intactBytes says how long that
// prefix is, and anything past it — a torn tail from the crash — is
// truncated first so the file only ever holds whole, in-order frames).
func (st *store) frameWriter(id string, intactBytes int64) (*frameFile, error) {
	path := filepath.Join(st.runDir(id), "frames.ndjson")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening frames file: %w", err)
	}
	if err := f.Truncate(intactBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: truncating torn frames: %w", err)
	}
	if _, err := f.Seek(intactBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: seeking frames file: %w", err)
	}
	return &frameFile{f: f}, nil
}

// frameFile appends NDJSON frames durably: every Write (the stream encoder
// hands one whole frame per call, so a Write is a frame batch of one or
// more complete lines) is followed by an fsync before it is acknowledged —
// a frame the in-memory buffer has broadcast is a frame the store can
// replay.
type frameFile struct {
	f *os.File
}

// Write appends the frame bytes and fsyncs before acknowledging.
func (w *frameFile) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	if err != nil {
		return n, fmt.Errorf("serve: appending frame: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return n, fmt.Errorf("serve: syncing frames: %w", err)
	}
	return n, nil
}

// Close closes the underlying frames file.
func (w *frameFile) Close() error { return w.f.Close() }

// recoverFrames scans stored frame bytes and keeps the longest intact
// prefix: whole '\n'-terminated lines that decode as StreamedRun records
// numbered 0, 1, 2, ... with no gap or duplicate. Everything a crash can
// leave behind — an empty file, a torn last line, partial JSON, a
// duplicated or reordered frame — reduces to "the prefix before the first
// violation", reported with a diagnostic naming what ended it. intact is
// always a byte prefix of data, so truncating the file to len(intact)
// re-establishes the append-only invariant.
func recoverFrames(data []byte) (intact []byte, complete int, diag string) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return data[:off], complete, fmt.Sprintf("torn frame after replication %d (no newline)", complete-1)
		}
		line := data[off : off+nl]
		var rec pcs.StreamedRun
		dec := json.NewDecoder(bytes.NewReader(line))
		if err := dec.Decode(&rec); err != nil {
			return data[:off], complete, fmt.Sprintf("frame %d does not parse: %v", complete, err)
		}
		// Anything after the value (dec.More is not enough: it reports false
		// for a stray '}' or ']') is trailing data the stream decoder would
		// choke on, so the line cannot join the intact prefix.
		if rest, _ := io.ReadAll(dec.Buffered()); len(bytes.TrimSpace(rest)) > 0 {
			return data[:off], complete, fmt.Sprintf("frame %d has trailing data", complete)
		}
		if rec.Rep != complete {
			return data[:off], complete, fmt.Sprintf("frame %d carries replication %d", complete, rec.Rep)
		}
		complete++
		off += nl + 1
	}
	return data[:off], complete, ""
}

// storedRun is one run as the replay pass reconstructs it.
type storedRun struct {
	id        string
	seq       int
	spec      pcs.RunSpec
	specErr   error // spec.json unreadable/unparseable
	terminal  *terminalMark
	intact    []byte // longest valid frame prefix
	complete  int    // frames in the intact prefix
	frameDiag string
}

// loadRuns reads every run record under the state dir, in run-id order.
func (st *store) loadRuns() ([]storedRun, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("serve: reading run records: %w", err)
	}
	var runs []storedRun
	for _, e := range entries {
		seq, ok := runSeqOf(e.Name())
		if !ok || !e.IsDir() {
			continue // not a run record; leave foreign files alone
		}
		r := storedRun{id: e.Name(), seq: seq}
		dir := st.runDir(r.id)

		specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			r.specErr = fmt.Errorf("reading spec: %w", err)
		} else if r.spec, err = pcs.ParseRunSpec(specData); err != nil {
			r.specErr = err
		}

		if markData, err := os.ReadFile(filepath.Join(dir, "state.json")); err == nil {
			var mark terminalMark
			if json.Unmarshal(markData, &mark) == nil && mark.State != "" {
				r.terminal = &mark
			}
		}

		frames, err := os.ReadFile(filepath.Join(dir, "frames.ndjson"))
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("serve: reading frames for %s: %w", r.id, err)
		}
		r.intact, r.complete, r.frameDiag = recoverFrames(frames)
		runs = append(runs, r)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].seq < runs[j].seq })
	return runs, nil
}

// loadSweeps reads every sweep record, in sweep-id order.
func (st *store) loadSweeps() (ids []string, recs []sweepRecord, err error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "sweeps"))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: reading sweep records: %w", err)
	}
	type loaded struct {
		id  string
		seq int
		rec sweepRecord
	}
	var all []loaded
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".json")
		seq, ok := sweepSeqOf(name)
		if !ok || name == e.Name() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(st.dir, "sweeps", e.Name()))
		if err != nil {
			return nil, nil, fmt.Errorf("serve: reading sweep record %s: %w", e.Name(), err)
		}
		var rec sweepRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			continue // torn sweep record: its cells survive as plain runs
		}
		all = append(all, loaded{id: name, seq: seq, rec: rec})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for _, l := range all {
		ids = append(ids, l.id)
		recs = append(recs, l.rec)
	}
	return ids, recs, nil
}

// runSeqOf parses the N of "run-N".
func runSeqOf(id string) (int, bool) { return seqOf(id, "run-") }

// sweepSeqOf parses the N of "sweep-N".
func sweepSeqOf(id string) (int, bool) { return seqOf(id, "sweep-") }

func seqOf(id, prefix string) (int, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}
