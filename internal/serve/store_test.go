package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pcs"
)

// storeSpec is the run the recovery tests stream: small enough to be fast,
// three replications so the frontier has interior resume points.
var storeSpec = pcs.RunSpec{Technique: "Basic", Requests: 300, Rate: 100, Seed: 7, Replications: 3}

// streamFor renders the spec's full local NDJSON stream — the reference
// bytes every recovery path must reproduce.
func streamFor(t *testing.T, spec pcs.RunSpec) []byte {
	t.Helper()
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pcs.RunManyStream(opts, spec.Replications, 0, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// lines splits a stream into its whole NDJSON lines (without newlines).
func streamLines(data []byte) []string {
	return strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
}

// TestRecoverFrames walks the corruption shapes a crash can leave in the
// frames file. For every shape, recoverFrames must keep exactly the
// longest intact in-order prefix, report it as a byte prefix of the input,
// and name the damage in its diagnostic.
func TestRecoverFrames(t *testing.T) {
	full := streamFor(t, storeSpec)
	lns := streamLines(full)
	if len(lns) != 3 {
		t.Fatalf("reference stream has %d lines, want 3", len(lns))
	}
	join := func(ls ...string) []byte {
		if len(ls) == 0 {
			return nil
		}
		return []byte(strings.Join(ls, "\n") + "\n")
	}

	cases := []struct {
		name     string
		data     []byte
		complete int
		diag     string // substring the diagnostic must carry; "" = clean
	}{
		{"empty file", nil, 0, ""},
		{"intact stream", full, 3, ""},
		{"torn last line", full[:len(full)-4], 2, "torn frame"},
		{"no newline at all", []byte(`{"rep":0`), 0, "torn frame"},
		{"partial json", join(lns[0], `{"rep": 1, "seed":`), 1, "does not parse"},
		{"garbage line", join(lns[0], lns[1], "not json at all"), 2, "does not parse"},
		{"duplicate frame", join(lns[0], lns[0], lns[1]), 1, "carries replication 0"},
		{"gap", join(lns[0], lns[2]), 1, "carries replication 2"},
		{"trailing data on line", join(lns[0], lns[1]+` {"x":1}`), 1, "trailing data"},
		{"missing report tail", join(lns[0]), 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			intact, complete, diag := recoverFrames(c.data)
			if complete != c.complete {
				t.Fatalf("complete = %d, want %d (diag %q)", complete, c.complete, diag)
			}
			if !bytes.HasPrefix(c.data, intact) {
				t.Fatalf("intact is not a byte prefix of the input")
			}
			if c.diag == "" && diag != "" {
				t.Fatalf("unexpected diagnostic %q", diag)
			}
			if c.diag != "" && !strings.Contains(diag, c.diag) {
				t.Fatalf("diagnostic %q does not mention %q", diag, c.diag)
			}
			// The intact prefix must be exactly the first `complete` reference
			// lines and re-recover cleanly (idempotence).
			if want := join(lns[:complete]...); !bytes.Equal(intact, want) && c.complete > 0 {
				// Cases built from doctored lines (duplicate/gap/trailing) still
				// start with true reference lines, so this holds for all cases.
				t.Fatalf("intact prefix:\n got %q\nwant %q", intact, want)
			}
			again, n2, d2 := recoverFrames(intact)
			if !bytes.Equal(again, intact) || n2 != complete || d2 != "" {
				t.Fatalf("recovery not idempotent: %d %q", n2, d2)
			}
			// The satellite contract: the recovered report is MergeStream over
			// the intact prefix — and that fold must succeed whenever any
			// frames survived.
			if complete > 0 {
				if _, err := pcs.MergeStream(bytes.NewReader(intact)); err != nil {
					t.Fatalf("MergeStream over intact prefix: %v", err)
				}
			}
		})
	}
}

// newDurableServer builds a durable daemon over dir and serves it.
func newDurableServer(t *testing.T, capacity int, dir string) *httptest.Server {
	t.Helper()
	s, err := NewWithStore(capacity, dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRestartRecoversDoneRun is the crash-recovery identity: run to done,
// "crash" (drop the server), restart over the same state dir, and the
// recovered run is immediately queryable with a byte-identical report and
// a byte-identical SSE replay — recomputed from the stored frames, not
// re-run.
func TestRestartRecoversDoneRun(t *testing.T) {
	checkGoroutines(t)
	dir := t.TempDir()

	ts := newDurableServer(t, 2, dir)
	_, body := postJSON(t, ts.URL+"/v1/runs", smallRun)
	var created RunStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	var done RunStatus
	getJSON(t, ts.URL+"/v1/runs/"+created.ID+"?wait=1", &done)
	if done.State != StateDone {
		t.Fatalf("pre-crash run %+v", done)
	}
	preReport, _ := json.Marshal(done.Report)
	preStream, _ := readSSE(t, ts.URL+"/v1/runs/"+created.ID+"/stream")
	ts.Close()

	ts2 := newDurableServer(t, 2, dir)
	var recovered RunStatus
	getJSON(t, ts2.URL+"/v1/runs/"+created.ID, &recovered)
	if recovered.State != StateDone || recovered.Error != "" {
		t.Fatalf("recovered run %+v", recovered)
	}
	postReport, _ := json.Marshal(recovered.Report)
	if !bytes.Equal(preReport, postReport) {
		t.Fatalf("recovered report diverged:\n got %s\nwant %s", postReport, preReport)
	}
	postStream, end := readSSE(t, ts2.URL+"/v1/runs/"+created.ID+"/stream")
	if !bytes.Equal(preStream, postStream) {
		t.Fatal("recovered SSE replay diverged from the pre-crash stream")
	}
	if !strings.Contains(end, `"state":"done"`) {
		t.Fatalf("recovered end event %s", end)
	}
	// Fresh ids keep counting past the recovered ones.
	_, body = postJSON(t, ts2.URL+"/v1/runs", smallRun)
	var fresh RunStatus
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.ID == created.ID {
		t.Fatalf("restart reissued id %s", fresh.ID)
	}
}

// TestRestartRecoversSweep pins that sweeps survive too: the record
// reconnects to its recovered cell runs and the folded status is intact.
func TestRestartRecoversSweep(t *testing.T) {
	dir := t.TempDir()
	ts := newDurableServer(t, 4, dir)
	_, body := postJSON(t, ts.URL+"/v1/sweeps", smallSweep)
	var created SweepStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	var done SweepStatus
	getJSON(t, ts.URL+"/v1/sweeps/"+created.ID+"?wait=1", &done)
	if done.State != StateDone {
		t.Fatalf("pre-crash sweep %+v", done)
	}
	pre, _ := json.Marshal(done.Cells)
	ts.Close()

	ts2 := newDurableServer(t, 4, dir)
	var recovered SweepStatus
	getJSON(t, ts2.URL+"/v1/sweeps/"+created.ID, &recovered)
	if recovered.State != StateDone {
		t.Fatalf("recovered sweep %+v", recovered)
	}
	post, _ := json.Marshal(recovered.Cells)
	if !bytes.Equal(pre, post) {
		t.Fatalf("recovered sweep cells diverged:\n got %s\nwant %s", post, pre)
	}
}

// writeStoredRun lays a run record down by hand, simulating what a crash
// left behind.
func writeStoredRun(t *testing.T, dir, id string, spec []byte, frames []byte, mark *terminalMark) {
	t.Helper()
	rd := filepath.Join(dir, "runs", id)
	if err := os.MkdirAll(rd, 0o755); err != nil {
		t.Fatal(err)
	}
	if spec != nil {
		if err := os.WriteFile(filepath.Join(rd, "spec.json"), spec, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if frames != nil {
		if err := os.WriteFile(filepath.Join(rd, "frames.ndjson"), frames, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if mark != nil {
		data, _ := json.Marshal(mark)
		if err := os.WriteFile(filepath.Join(rd, "state.json"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestartResumesInterruptedRun is the resume-from-frontier identity: a
// record interrupted mid-stream (intact prefix + torn tail, no terminal
// marker) restarts, resumes past the prefix, and both the final report and
// the on-disk frames come out byte-identical to an uninterrupted run.
func TestRestartResumesInterruptedRun(t *testing.T) {
	full := streamFor(t, storeSpec)
	lns := streamLines(full)
	specJSON, _ := json.Marshal(storeSpec)
	localReport, err := storeSpec.Report()
	if err != nil {
		t.Fatal(err)
	}
	wantReport, _ := json.Marshal(localReport)

	// One sub-test per frontier: crashed before any frame, after one, after
	// two; each with a torn tail the resume must truncate away.
	for frontier := 0; frontier < 3; frontier++ {
		dir := t.TempDir()
		frames := []byte(strings.Join(lns[:frontier], "\n"))
		if frontier > 0 {
			frames = append(frames, '\n')
		}
		frames = append(frames, []byte(`{"rep":`)...) // torn tail, no newline

		writeStoredRun(t, dir, "run-1", specJSON, frames, nil)
		ts := newDurableServer(t, 2, dir)
		var done RunStatus
		getJSON(t, ts.URL+"/v1/runs/run-1?wait=1", &done)
		if done.State != StateDone || done.Error != "" {
			t.Fatalf("frontier %d: resumed run %+v", frontier, done)
		}
		got, _ := json.Marshal(done.Report)
		if !bytes.Equal(got, wantReport) {
			t.Fatalf("frontier %d: resumed report diverged:\n got %s\nwant %s", frontier, got, wantReport)
		}
		stored, err := os.ReadFile(filepath.Join(dir, "runs", "run-1", "frames.ndjson"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(stored, full) {
			t.Fatalf("frontier %d: stored frames diverged from the uninterrupted stream:\n got %q\nwant %q",
				frontier, stored, full)
		}
	}
}

// TestRestartRecomputesFromBytes proves recovery reads, it does not re-run:
// a done-marked record whose frames were produced by a different seed
// restores the report MergeStream computes from those bytes — not what
// re-running the spec would produce.
func TestRestartRecomputesFromBytes(t *testing.T) {
	doctored := storeSpec
	doctored.Seed = 99 // frames from seed 99...
	frames := streamFor(t, doctored)
	specJSON, _ := json.Marshal(storeSpec) // ...under a spec that says seed 7

	dir := t.TempDir()
	writeStoredRun(t, dir, "run-1", specJSON, frames, &terminalMark{State: StateDone})
	ts := newDurableServer(t, 2, dir)

	var got RunStatus
	getJSON(t, ts.URL+"/v1/runs/run-1", &got)
	if got.State != StateDone {
		t.Fatalf("doctored run %+v", got)
	}
	fromBytes, err := pcs.MergeStream(bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(fromBytes)
	gotJSON, _ := json.Marshal(got.Report)
	if !bytes.Equal(gotJSON, want) {
		t.Fatalf("recovery did not fold the stored bytes:\n got %s\nwant %s", gotJSON, want)
	}
	rerun, err := storeSpec.Report()
	if err != nil {
		t.Fatal(err)
	}
	rerunJSON, _ := json.Marshal(rerun)
	if bytes.Equal(gotJSON, rerunJSON) {
		t.Fatal("doctored report matches a re-run — recovery re-executed the spec")
	}
}

// TestRestartSurfacesDamage pins the failure diagnostics: a done marker
// over damaged frames, an unreadable spec, and a restored canceled state.
func TestRestartSurfacesDamage(t *testing.T) {
	full := streamFor(t, storeSpec)
	lns := streamLines(full)
	specJSON, _ := json.Marshal(storeSpec)

	dir := t.TempDir()
	// run-1: marked done but only 2 of 3 frames survived.
	writeStoredRun(t, dir, "run-1", specJSON,
		[]byte(lns[0]+"\n"+lns[1]+"\n"), &terminalMark{State: StateDone})
	// run-2: spec.json does not parse.
	writeStoredRun(t, dir, "run-2", []byte(`{"technique":`), nil, nil)
	// run-3: terminal canceled, partial frames — restored as-is, no resume.
	writeStoredRun(t, dir, "run-3", specJSON, []byte(lns[0]+"\n"), &terminalMark{State: StateCanceled})

	ts := newDurableServer(t, 2, dir)
	var r1, r2, r3 RunStatus
	getJSON(t, ts.URL+"/v1/runs/run-1", &r1)
	getJSON(t, ts.URL+"/v1/runs/run-2", &r2)
	getJSON(t, ts.URL+"/v1/runs/run-3", &r3)
	if r1.State != StateFailed || !strings.Contains(r1.Error, "marked done but stored frames are damaged") {
		t.Fatalf("damaged done run %+v", r1)
	}
	if r2.State != StateFailed || !strings.Contains(r2.Error, "recovering run-2") {
		t.Fatalf("unreadable spec run %+v", r2)
	}
	if r3.State != StateCanceled || r3.Report != nil {
		t.Fatalf("canceled run %+v", r3)
	}
}
