package traffic

import (
	"fmt"

	"repro/internal/xrand"
)

// Spec kinds. Kind selects which Source a Spec constructs.
const (
	// KindPoisson is the memoryless constant-rate process (the paper's
	// default workload).
	KindPoisson = "poisson"
	// KindTrace replays a recorded NDJSON/CSV arrival trace from Path.
	KindTrace = "trace"
	// KindSessions derives load from a closed population of Users flows
	// with think time.
	KindSessions = "sessions"
	// KindMMPP is the bursty Markov-modulated process over Rates/Sojourns
	// states.
	KindMMPP = "mmpp"
	// KindMultiTenant composes Tenants into one stream with per-tenant
	// admission buckets.
	KindMultiTenant = "multi-tenant"
)

// Spec is the pure-data description of a traffic source, mirroring the
// policy.Spec pattern: scenarios and Options carry Specs, and every
// replication constructs a fresh Source from its own stream — sources are
// stateful and must never be shared across runs. Fields beyond Kind apply
// per kind; Validate rejects mixtures that don't parse.
type Spec struct {
	// Kind selects the source: one of the Kind constants.
	Kind string

	// Rate is the Poisson λ, or the nominal pacing rate of a trace
	// replay; 0 defers to the run's ArrivalRate. Sessions and MMPP derive
	// their intensity from their own fields and ignore Rate.
	Rate float64

	// Path and Format configure KindTrace: Path is the trace file,
	// Format one of FormatAuto/FormatNDJSON/FormatCSV.
	Path   string
	Format string

	// Users, ThinkSeconds and ThinkSigma configure KindSessions: Users
	// concurrent flows with lognormal(ThinkSeconds, ThinkSigma) think
	// times (sigma 0 selects 0.5).
	Users        int
	ThinkSeconds float64
	ThinkSigma   float64

	// Rates, Sojourns and HeavyTail configure KindMMPP: state i runs at
	// Rates[i] arrivals/second for a mean of Sojourns[i] seconds;
	// HeavyTail draws sojourns from a bounded Pareto instead of an
	// exponential.
	Rates     []float64
	Sojourns  []float64
	HeavyTail bool

	// Tenants configures KindMultiTenant.
	Tenants []TenantSpec
}

// TenantSpec is one tenant inside a KindMultiTenant spec.
type TenantSpec struct {
	// Name tags the tenant's arrivals; unique and non-empty.
	Name string
	// Source describes the tenant's own arrival process; nesting another
	// multi-tenant is rejected.
	Source Spec
	// AdmitRate and Burst configure the tenant's token bucket: at most
	// AdmitRate admitted requests/second with Burst depth. AdmitRate 0
	// means unlimited.
	AdmitRate float64
	Burst     int
}

// Validate checks the spec is well-formed without constructing anything.
func (s *Spec) Validate() error {
	switch s.Kind {
	case KindPoisson:
		if s.Rate < 0 {
			return fmt.Errorf("traffic: poisson rate must be non-negative, got %g", s.Rate)
		}
	case KindTrace:
		if s.Path == "" {
			return fmt.Errorf("traffic: trace spec needs a path")
		}
		switch s.Format {
		case FormatAuto, FormatNDJSON, FormatCSV:
		default:
			return fmt.Errorf("traffic: unknown trace format %q", s.Format)
		}
		if s.Rate < 0 {
			return fmt.Errorf("traffic: trace nominal rate must be non-negative, got %g", s.Rate)
		}
	case KindSessions:
		if s.Users < 1 {
			return fmt.Errorf("traffic: sessions need at least 1 user, got %d", s.Users)
		}
		if s.ThinkSeconds <= 0 {
			return fmt.Errorf("traffic: sessions think time must be positive, got %g", s.ThinkSeconds)
		}
		if s.ThinkSigma < 0 {
			return fmt.Errorf("traffic: sessions think sigma must be non-negative, got %g", s.ThinkSigma)
		}
	case KindMMPP:
		if len(s.Rates) < 2 {
			return fmt.Errorf("traffic: mmpp needs at least 2 states, got %d", len(s.Rates))
		}
		if len(s.Sojourns) != len(s.Rates) {
			return fmt.Errorf("traffic: mmpp has %d rates but %d sojourns", len(s.Rates), len(s.Sojourns))
		}
		for i := range s.Rates {
			if s.Rates[i] <= 0 {
				return fmt.Errorf("traffic: mmpp state %d rate must be positive, got %g", i, s.Rates[i])
			}
			if s.Sojourns[i] <= 0 {
				return fmt.Errorf("traffic: mmpp state %d sojourn must be positive, got %g", i, s.Sojourns[i])
			}
		}
	case KindMultiTenant:
		if len(s.Tenants) == 0 {
			return fmt.Errorf("traffic: multi-tenant spec needs at least one tenant")
		}
		seen := make(map[string]bool)
		for i, t := range s.Tenants {
			if t.Name == "" {
				return fmt.Errorf("traffic: tenant %d has no name", i)
			}
			if seen[t.Name] {
				return fmt.Errorf("traffic: duplicate tenant %q", t.Name)
			}
			seen[t.Name] = true
			if t.Source.Kind == KindMultiTenant {
				return fmt.Errorf("traffic: tenant %q nests a multi-tenant source", t.Name)
			}
			if err := t.Source.Validate(); err != nil {
				return fmt.Errorf("traffic: tenant %q: %w", t.Name, err)
			}
			if t.AdmitRate < 0 {
				return fmt.Errorf("traffic: tenant %q admit rate must be non-negative, got %g", t.Name, t.AdmitRate)
			}
			if t.AdmitRate == 0 && t.Burst != 0 {
				return fmt.Errorf("traffic: tenant %q sets burst without an admit rate", t.Name)
			}
			if t.Burst < 0 {
				return fmt.Errorf("traffic: tenant %q burst must be non-negative, got %d", t.Name, t.Burst)
			}
		}
	case "":
		return fmt.Errorf("traffic: spec has no kind")
	default:
		return fmt.Errorf("traffic: unknown traffic kind %q", s.Kind)
	}
	return nil
}

// New constructs a fresh Source from the spec. src is the source's random
// stream — the top-level source consumes it directly (so an explicit
// poisson spec lands on the exact stream the scalar compat shim uses);
// multi-tenant children each get a fork, taken in tenant order. nominal
// is the run's ArrivalRate, the fallback intensity for kinds whose Rate
// field is 0.
func (s *Spec) New(src *xrand.Source, nominal float64) (Source, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rate := s.Rate
	if rate == 0 {
		rate = nominal
	}
	switch s.Kind {
	case KindPoisson:
		if rate <= 0 {
			return nil, fmt.Errorf("traffic: poisson needs a positive rate (spec rate %g, run rate %g)", s.Rate, nominal)
		}
		return NewPoisson(src, rate), nil
	case KindTrace:
		if rate <= 0 {
			return nil, fmt.Errorf("traffic: trace needs a positive nominal rate (spec rate %g, run rate %g)", s.Rate, nominal)
		}
		return NewTraceReplay(s.Path, s.Format, rate)
	case KindSessions:
		return NewSessions(src, s.Users, s.ThinkSeconds, s.ThinkSigma)
	case KindMMPP:
		return NewMMPP(src, s.Rates, s.Sojourns, s.HeavyTail)
	case KindMultiTenant:
		tenants := make([]Tenant, 0, len(s.Tenants))
		for _, ts := range s.Tenants {
			child, err := ts.Source.New(src.Fork(), nominal)
			if err != nil {
				return nil, fmt.Errorf("traffic: tenant %q: %w", ts.Name, err)
			}
			tenants = append(tenants, Tenant{
				Name:      ts.Name,
				Source:    child,
				AdmitRate: ts.AdmitRate,
				Burst:     ts.Burst,
			})
		}
		return NewMultiTenant(tenants)
	}
	return nil, fmt.Errorf("traffic: unknown traffic kind %q", s.Kind)
}
