// Package traffic is the arrival-process layer: deterministic sources of
// request arrivals that replace the single scalar Poisson λ the paper's
// evaluation drives every technique with. A Source yields one arrival at a
// time — a virtual timestamp plus per-request metadata (tenant, class) —
// and the service layer turns each into an engine event, so "production-
// shaped" workloads (replayed traces, session populations with think time,
// bursty modulated processes, multi-tenant mixes with per-tenant admission
// control) plug into the exact event path the scalar rate used.
//
// Determinism is non-negotiable, exactly as for internal/policy: a source
// draws randomness only from the seeded xrand stream it was constructed
// with, never reads wall-clock time, and is driven from the engine's
// sequential event chain — one Next call per arrival, in arrival order. A
// run over any source therefore replays bit-identically at any worker or
// shard count, and the scalar Options.ArrivalRate path survives as a
// compat shim constructing a Poisson source from the same stream fork the
// pre-redesign code used (pinned byte-for-byte against PR 5 goldens).
//
// Sources are built from pure-data Specs (see spec.go) so scenarios can
// script them and every replication constructs a fresh instance — sources
// are stateful, and sharing one across runs would break replay
// determinism. The authoring contract is documented in docs/traffic.md.
package traffic

// Meta is the per-arrival metadata a source attaches to each request.
// Sources that model undifferentiated load leave it zero.
type Meta struct {
	// Tenant names the tenant the request belongs to; "" is untenanted.
	// Tenanted requests get per-tenant latency breakdowns in reports.
	Tenant string
	// Class is an optional request class from trace metadata (e.g.
	// "search", "feed"); the simulator records it but does not act on it.
	Class string
	// User identifies the session-source user flow the arrival belongs to
	// (0 for non-session sources).
	User int
	// Denied marks an arrival rejected by admission control (a tenant's
	// token bucket ran dry). Denied arrivals consume request budget and
	// are counted as drops, but never enter the service.
	Denied bool
}

// Arrival is one request arrival: an absolute virtual timestamp and its
// metadata. Timestamps from one source are non-decreasing.
type Arrival struct {
	// At is the arrival's absolute virtual time in seconds.
	At float64
	// Meta carries the arrival's metadata.
	Meta Meta
}

// Source is a deterministic arrival process. The service layer drives it
// from the engine's sequential event chain: Next is called once per
// arrival, at the virtual time of the previous arrival, and the returned
// timestamp schedules the next one. Implementations must be deterministic
// functions of their construction parameters, their seeded xrand stream
// and the call sequence — no wall-clock, no global state.
type Source interface {
	// Name identifies the source in reports and gauges (e.g. "poisson",
	// "trace:arrivals.ndjson", "sessions:400").
	Name() string
	// Next returns the next arrival. now is the virtual time of the
	// previous arrival from this source (0 before the first). ok reports
	// false when the source is exhausted — a trace ran out, or a fatal
	// parse error stopped replay (see TraceReplay.Err).
	Next(now float64) (a Arrival, ok bool)
	// Rate reports the source's current offered intensity in arrivals per
	// second — exact for rate-based sources, a windowed estimate for
	// replayed traces. It is the OfferedRate/AdmittedRate gauge feed.
	Rate() float64
	// SetRate retargets the source's effective intensity to rate
	// arrivals/second: rate-based sources set λ directly; replay and
	// session sources scale time by rate/nominal (their configured
	// nominal intensity), so rate steps, diurnal modulation and admission
	// throttling all compose through this one verb. The rate must be
	// positive.
	SetRate(rate float64) error
}
