package traffic

import (
	"fmt"

	"repro/internal/xrand"
)

// MMPP is a Markov-modulated Poisson process: the source cycles through
// states, each a Poisson process at its own rate, holding each state for
// a random sojourn. A two-state MMPP with a quiet rate and a storm rate
// is the canonical bursty workload — sustained calm punctuated by load
// spikes — and heavy-tailed sojourns make the spikes' durations
// themselves bursty.
//
// State transitions are handled by discard-and-redraw: when a candidate
// gap crosses the current state's end, the clock advances to the boundary
// and the gap is redrawn at the new state's rate. For exponential gaps
// this is exact (memorylessness), so the process is a true MMPP, not an
// approximation.
type MMPP struct {
	src      *xrand.Source
	rates    []float64 // per-state Poisson rate, arrivals/second
	sojourns []float64 // per-state mean sojourn, seconds
	heavy    bool      // bounded-Pareto sojourns instead of exponential

	nominal float64 // time-averaged rate at speed 1
	speed   float64

	state    int
	now      float64
	stateEnd float64
}

// NewMMPP returns a modulated source cycling through len(rates) states in
// order: state i runs a Poisson process at rates[i] and holds for a
// random sojourn with mean sojourns[i] seconds (exponential, or
// approximately-bounded-Pareto when heavyTail is set — spike durations
// then have a power-law tail). The process starts in state 0 at a full
// sojourn.
func NewMMPP(src *xrand.Source, rates, sojourns []float64, heavyTail bool) (*MMPP, error) {
	if len(rates) < 2 {
		return nil, fmt.Errorf("traffic: mmpp needs at least 2 states, got %d", len(rates))
	}
	if len(sojourns) != len(rates) {
		return nil, fmt.Errorf("traffic: mmpp has %d rates but %d sojourns", len(rates), len(sojourns))
	}
	var weighted, total float64
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("traffic: mmpp state %d rate must be positive, got %g", i, r)
		}
		if sojourns[i] <= 0 {
			return nil, fmt.Errorf("traffic: mmpp state %d sojourn must be positive, got %g", i, sojourns[i])
		}
		weighted += r * sojourns[i]
		total += sojourns[i]
	}
	m := &MMPP{
		src:      src,
		rates:    append([]float64(nil), rates...),
		sojourns: append([]float64(nil), sojourns...),
		heavy:    heavyTail,
		nominal:  weighted / total,
		speed:    1,
	}
	m.stateEnd = m.drawSojourn()
	return m, nil
}

// drawSojourn returns a speed-scaled sojourn for the current state.
func (m *MMPP) drawSojourn() float64 {
	mean := m.sojourns[m.state]
	var d float64
	if m.heavy {
		// Bounded Pareto with shape 1.5 and lo = mean/3: the unbounded
		// mean is alpha·lo/(alpha−1) = mean, truncated at 20× so a single
		// sojourn cannot swallow a run.
		d = m.src.BoundedPareto(1.5, mean/3, mean*20)
	} else {
		d = m.src.Exp(mean)
	}
	return d / m.speed
}

// Name implements Source.
func (m *MMPP) Name() string {
	if m.heavy {
		return fmt.Sprintf("mmpp:%d-state-heavy", len(m.rates))
	}
	return fmt.Sprintf("mmpp:%d-state", len(m.rates))
}

// Next implements Source: draw a gap at the current state's rate; if it
// crosses the state boundary, move to the boundary, rotate states, redraw.
func (m *MMPP) Next(now float64) (Arrival, bool) {
	for {
		gap := m.src.Exp(1 / (m.rates[m.state] * m.speed))
		if cand := m.now + gap; cand <= m.stateEnd {
			m.now = cand
			return Arrival{At: cand, Meta: Meta{}}, true
		}
		m.now = m.stateEnd
		m.state = (m.state + 1) % len(m.rates)
		m.stateEnd = m.now + m.drawSojourn()
	}
}

// Rate implements Source: the current state's instantaneous rate at the
// current speed — the gauge shows the storm while the storm is on.
func (m *MMPP) Rate() float64 { return m.rates[m.state] * m.speed }

// SetRate implements Source: scales all state rates by rate/nominal
// (nominal is the sojourn-weighted time average), preserving the
// burst-to-calm ratio while steering overall intensity.
func (m *MMPP) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: mmpp rate must be positive, got %g", rate)
	}
	m.speed = rate / m.nominal
	return nil
}
