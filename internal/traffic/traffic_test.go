package traffic

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// TestPoissonMatchesArrivalProcess is the compat cornerstone: Poisson must
// consume the identical draw sequence — and produce the identical float64
// timestamps — as the pre-redesign xrand.ArrivalProcess, including across
// mid-stream rate changes, because the Options.ArrivalRate shim's
// byte-identity to PR 5 rests on it.
func TestPoissonMatchesArrivalProcess(t *testing.T) {
	const seed = 12345
	old := xrand.NewArrivalProcess(xrand.New(seed), 60)
	src := NewPoisson(xrand.New(seed), 60)
	var now float64
	for i := 0; i < 10_000; i++ {
		if i == 2500 {
			old.SetRate(95)
			if err := src.SetRate(95); err != nil {
				t.Fatal(err)
			}
		}
		if i == 7000 {
			old.SetRate(12.5)
			if err := src.SetRate(12.5); err != nil {
				t.Fatal(err)
			}
		}
		want := old.Next()
		a, ok := src.Next(now)
		if !ok {
			t.Fatalf("draw %d: poisson source exhausted", i)
		}
		if a.At != want {
			t.Fatalf("draw %d: timestamps diverged: poisson %v, arrival process %v", i, a.At, want)
		}
		now = a.At
	}
}

func TestPoissonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPoisson(rate<=0) did not panic")
		}
	}()
	p := NewPoisson(xrand.New(1), 10)
	if err := p.SetRate(0); err == nil {
		t.Error("SetRate(0) accepted")
	}
	if err := p.SetRate(-5); err == nil {
		t.Error("SetRate(-5) accepted")
	}
	if err := p.SetRate(20); err != nil || p.Rate() != 20 {
		t.Errorf("SetRate(20): err=%v rate=%g", err, p.Rate())
	}
	NewPoisson(xrand.New(1), 0)
}

func writeTrace(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func drain(t *testing.T, src Source, max int) []Arrival {
	t.Helper()
	var out []Arrival
	now := 0.0
	for len(out) < max {
		a, ok := src.Next(now)
		if !ok {
			break
		}
		if a.At < now {
			t.Fatalf("arrival %d at %g before previous %g", len(out), a.At, now)
		}
		out = append(out, a)
		now = a.At
	}
	return out
}

func TestTraceReplayNDJSON(t *testing.T) {
	path := writeTrace(t, "arrivals.ndjson", `
{"t": 0.5, "tenant": "search", "class": "query"}
{"t": 1.0, "tenant": "feed"}

# a comment
{"t": 1.25}
{"t": 4.0, "tenant": "search"}
`)
	tr, err := NewTraceReplay(path, FormatAuto, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if got := tr.Name(); got != "trace:arrivals.ndjson" {
		t.Errorf("Name() = %q", got)
	}
	as := drain(t, tr, 10)
	if len(as) != 4 {
		t.Fatalf("got %d arrivals, want 4: %+v", len(as), as)
	}
	want := []Arrival{
		{At: 0.5, Meta: Meta{Tenant: "search", Class: "query"}},
		{At: 1.0, Meta: Meta{Tenant: "feed"}},
		{At: 1.25},
		{At: 4.0, Meta: Meta{Tenant: "search"}},
	}
	for i := range want {
		if as[i] != want[i] {
			t.Errorf("arrival %d = %+v, want %+v", i, as[i], want[i])
		}
	}
	if err := tr.Err(); err != nil {
		t.Errorf("clean trace reported error: %v", err)
	}
}

func TestTraceReplayCSV(t *testing.T) {
	path := writeTrace(t, "arrivals.csv", `t,tenant,class
0.25,alpha,query
0.75,beta
2.0
`)
	tr, err := NewTraceReplay(path, FormatAuto, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	as := drain(t, tr, 10)
	if len(as) != 3 {
		t.Fatalf("got %d arrivals, want 3", len(as))
	}
	if as[0] != (Arrival{At: 0.25, Meta: Meta{Tenant: "alpha", Class: "query"}}) {
		t.Errorf("arrival 0 = %+v", as[0])
	}
	if as[1] != (Arrival{At: 0.75, Meta: Meta{Tenant: "beta"}}) {
		t.Errorf("arrival 1 = %+v", as[1])
	}
}

func TestTraceReplaySpeedScaling(t *testing.T) {
	tr, err := NewTraceReplayReader(strings.NewReader("1.0\n2.0\n4.0\n"), FormatCSV, "test", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Double speed: recorded gaps halve.
	if err := tr.SetRate(20); err != nil {
		t.Fatal(err)
	}
	as := drain(t, tr, 3)
	want := []float64{0.5, 1.0, 2.0}
	for i, w := range want {
		if as[i].At != w {
			t.Errorf("arrival %d at %g, want %g", i, as[i].At, w)
		}
	}
}

func TestTraceReplayErrors(t *testing.T) {
	if _, err := NewTraceReplayReader(strings.NewReader(""), FormatNDJSON, "empty", 10); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTraceReplayReader(strings.NewReader("not json\n"), FormatNDJSON, "bad", 10); err == nil {
		t.Error("malformed first record accepted")
	}
	if _, err := NewTraceReplayReader(strings.NewReader("1.0\n"), "xml", "fmt", 10); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewTraceReplayReader(strings.NewReader("1.0\n"), FormatCSV, "rate", 0); err == nil {
		t.Error("zero nominal rate accepted")
	}

	// A trace that breaks mid-file: replay stops there and Err reports it.
	tr, err := NewTraceReplayReader(strings.NewReader("1.0\n2.0\nbroken\n"), FormatCSV, "mid", 10)
	if err != nil {
		t.Fatal(err)
	}
	as := drain(t, tr, 10)
	if len(as) != 2 {
		t.Fatalf("got %d arrivals before break, want 2", len(as))
	}
	if tr.Err() == nil {
		t.Error("broken trace reported no error")
	}

	// Non-monotone timestamps are a break, not a reorder.
	tr, err = NewTraceReplayReader(strings.NewReader("1.0\n0.5\n"), FormatCSV, "mono", 10)
	if err != nil {
		t.Fatal(err)
	}
	if as := drain(t, tr, 10); len(as) != 1 {
		t.Fatalf("got %d arrivals, want 1", len(as))
	}
	if tr.Err() == nil || !strings.Contains(tr.Err().Error(), "non-decreasing") {
		t.Errorf("non-monotone trace error = %v", tr.Err())
	}
}

func TestSessionsRateEmergesFromPopulation(t *testing.T) {
	s, err := NewSessions(xrand.New(7), 100, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Rate(), 50.0; got != want {
		t.Errorf("nominal rate %g, want %g", got, want)
	}
	as := drain(t, s, 5000)
	span := as[len(as)-1].At - as[0].At
	rate := float64(len(as)-1) / span
	if rate < 40 || rate > 60 {
		t.Errorf("empirical rate %g too far from nominal 50", rate)
	}
	// User IDs cover the population.
	seen := make(map[int]bool)
	for _, a := range as {
		seen[a.Meta.User] = true
	}
	if len(seen) != 100 {
		t.Errorf("saw %d distinct users, want 100", len(seen))
	}
}

func TestSessionsDeterministicAndSteerable(t *testing.T) {
	run := func() []Arrival {
		s, err := NewSessions(xrand.New(11), 10, 1, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		as := drain(t, s, 50)
		if err := s.SetRate(40); err != nil { // 4× speed
			t.Fatal(err)
		}
		return append(as, drain(t, s, 50)...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverged between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMMPPModulatesRate(t *testing.T) {
	m, err := NewMMPP(xrand.New(3), []float64{5, 200}, []float64{10, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Time-averaged nominal: (5·10 + 200·2)/12 = 37.5.
	if got := m.Rate(); got != 5 {
		t.Errorf("initial state rate %g, want 5 (state 0)", got)
	}
	as := drain(t, m, 20_000)
	span := as[len(as)-1].At
	rate := float64(len(as)) / span
	if rate < 25 || rate > 55 {
		t.Errorf("empirical long-run rate %g too far from nominal 37.5", rate)
	}
	// Burstiness: interarrival CV must exceed Poisson's 1.
	var gaps []float64
	for i := 1; i < len(as); i++ {
		gaps = append(gaps, as[i].At-as[i-1].At)
	}
	var sum, sq float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	for _, g := range gaps {
		sq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sq/float64(len(gaps))) / mean
	if cv < 1.2 {
		t.Errorf("interarrival CV %g not bursty (Poisson is 1)", cv)
	}
}

func TestMMPPHeavyTailDeterministic(t *testing.T) {
	run := func() []Arrival {
		m, err := NewMMPP(xrand.New(9), []float64{10, 300}, []float64{8, 1}, true)
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, m, 2000)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("heavy-tail arrival %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTokenBucketDeterministicDrops(t *testing.T) {
	// 2 tokens/s with burst 2 against a 10/s offered stream: the bucket
	// admits the burst then roughly one in five.
	b := newTokenBucket(2, 2)
	admitted, denied := 0, 0
	for i := 0; i < 100; i++ {
		if b.admit(float64(i) * 0.1) {
			admitted++
		} else {
			denied++
		}
	}
	// 10 s elapsed: 2 burst + ~20 refilled.
	if admitted < 20 || admitted > 24 {
		t.Errorf("admitted %d of 100, want ≈22", admitted)
	}
	if admitted+denied != 100 {
		t.Errorf("admitted %d + denied %d != 100", admitted, denied)
	}
}

func TestMultiTenantMergeAndAdmission(t *testing.T) {
	build := func() *MultiTenant {
		root := xrand.New(21)
		m, err := NewMultiTenant([]Tenant{
			{Name: "search", Source: NewPoisson(root.Fork(), 50)},
			{Name: "feed", Source: NewPoisson(root.Fork(), 30), AdmitRate: 10, Burst: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := build()
	as := drain(t, m, 3000)
	counts := map[string]int{}
	drops := map[string]int{}
	for _, a := range as {
		counts[a.Meta.Tenant]++
		if a.Meta.Denied {
			drops[a.Meta.Tenant]++
		}
	}
	if counts["search"] == 0 || counts["feed"] == 0 {
		t.Fatalf("tenant mix collapsed: %v", counts)
	}
	if drops["search"] != 0 {
		t.Errorf("unlimited tenant saw %d drops", drops["search"])
	}
	if drops["feed"] == 0 {
		t.Error("throttled tenant saw no drops at 3× its admit rate")
	}
	// Offered 30/s, admitted 10/s: roughly two thirds denied.
	frac := float64(drops["feed"]) / float64(counts["feed"])
	if frac < 0.5 || frac > 0.8 {
		t.Errorf("feed drop fraction %g, want ≈2/3", frac)
	}
	if got := m.Drops()["feed"]; got != drops["feed"] {
		t.Errorf("Drops() = %d, stream says %d", got, drops["feed"])
	}

	// Bit-determinism of the merged, bucketed stream.
	bs := drain(t, build(), 3000)
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("merged arrival %d diverged: %+v vs %+v", i, as[i], bs[i])
		}
	}
}

func TestMultiTenantValidation(t *testing.T) {
	src := func() Source { return NewPoisson(xrand.New(1), 10) }
	cases := []struct {
		name    string
		tenants []Tenant
	}{
		{"empty", nil},
		{"unnamed", []Tenant{{Source: src()}}},
		{"duplicate", []Tenant{{Name: "a", Source: src()}, {Name: "a", Source: src()}}},
		{"nil source", []Tenant{{Name: "a"}}},
		{"burst without rate", []Tenant{{Name: "a", Source: src(), Burst: 5}}},
	}
	for _, c := range cases {
		if _, err := NewMultiTenant(c.tenants); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSpecValidateAndNew(t *testing.T) {
	bad := []Spec{
		{},
		{Kind: "warp"},
		{Kind: KindTrace},
		{Kind: KindTrace, Path: "x.ndjson", Format: "xml"},
		{Kind: KindSessions},
		{Kind: KindSessions, Users: 5},
		{Kind: KindMMPP, Rates: []float64{1}, Sojourns: []float64{1}},
		{Kind: KindMMPP, Rates: []float64{1, 2}, Sojourns: []float64{1}},
		{Kind: KindMultiTenant},
		{Kind: KindMultiTenant, Tenants: []TenantSpec{{Name: "a", Source: Spec{Kind: KindMultiTenant, Tenants: []TenantSpec{{Name: "b", Source: Spec{Kind: KindPoisson}}}}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}

	// An explicit poisson spec lands on the stream it is given directly,
	// so it reproduces the scalar path's draws.
	root := xrand.New(5)
	direct := NewPoisson(xrand.New(5), 80)
	spec := Spec{Kind: KindPoisson}
	built, err := spec.New(root, 80)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		w, _ := direct.Next(0)
		g, _ := built.Next(0)
		if g.At != w.At {
			t.Fatalf("draw %d: spec-built poisson diverged from direct: %v vs %v", i, g.At, w.At)
		}
	}

	// Multi-tenant specs fork children in tenant order; same spec + same
	// seed → same stream.
	mt := Spec{Kind: KindMultiTenant, Tenants: []TenantSpec{
		{Name: "a", Source: Spec{Kind: KindPoisson, Rate: 40}},
		{Name: "b", Source: Spec{Kind: KindMMPP, Rates: []float64{5, 100}, Sojourns: []float64{5, 1}}, AdmitRate: 20, Burst: 10},
	}}
	if err := mt.Validate(); err != nil {
		t.Fatal(err)
	}
	s1, err := mt.New(xrand.New(33), 60)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := mt.New(xrand.New(33), 60)
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(t, s1, 1000), drain(t, s2, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec-built multi-tenant arrival %d diverged", i)
		}
	}
}

func TestSpecNewNeedsRate(t *testing.T) {
	if _, err := (&Spec{Kind: KindPoisson}).New(xrand.New(1), 0); err == nil {
		t.Error("poisson with no rate anywhere accepted")
	}
	if _, err := (&Spec{Kind: KindTrace, Path: "nope.ndjson"}).New(xrand.New(1), 0); err == nil {
		t.Error("trace with no rate anywhere accepted")
	}
}
