package traffic

import (
	"fmt"
	"io"
	"strings"
)

// tokenScale is the fixed-point scale of the admission bucket: one token
// is 1e6 micro-tokens, and refill arithmetic happens on int64 micro-token
// counts so bucket state never accumulates float error — two shards
// replaying the same arrival times always make the same admit/deny
// decisions (the inference-sim PR4 token-bucket design).
const tokenScale = 1e6

// tokenBucket is a deterministic token bucket: capacity burst tokens,
// refilled at rate tokens/second, integer micro-token arithmetic.
type tokenBucket struct {
	rate  float64 // tokens per second
	cap   int64   // micro-tokens
	level int64   // micro-tokens
	last  float64 // virtual time of last refill
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := &tokenBucket{rate: rate, cap: int64(burst) * tokenScale}
	b.level = b.cap // start full: a fresh tenant can burst immediately
	return b
}

// admit refills the bucket to virtual time now and spends one token if
// available, reporting whether the request is admitted.
func (b *tokenBucket) admit(now float64) bool {
	if now > b.last {
		b.level += int64((now - b.last) * b.rate * tokenScale)
		if b.level > b.cap {
			b.level = b.cap
		}
		b.last = now
	}
	if b.level >= tokenScale {
		b.level -= tokenScale
		return true
	}
	return false
}

// Tenant is one tenant inside a MultiTenant source: a named child source
// with an optional token-bucket admission limit.
type Tenant struct {
	// Name tags every arrival of this tenant; per-tenant latency and drop
	// breakdowns key on it. Must be unique within the composition.
	Name string
	// Source generates this tenant's arrivals; its own Meta.Tenant is
	// overwritten with Name.
	Source Source
	// AdmitRate caps the tenant at this many admitted requests/second via
	// a token bucket; 0 means unlimited (no bucket).
	AdmitRate float64
	// Burst is the bucket depth in requests (how far above AdmitRate a
	// tenant may spike before denials start); 0 with a positive AdmitRate
	// selects a depth of 1.
	Burst int
}

// MultiTenant interleaves per-tenant child sources into one arrival
// stream with per-tenant token-bucket admission. Each arrival is tagged
// with its tenant's name; arrivals that find the tenant's bucket empty
// are emitted with Meta.Denied set — the service counts them as
// admission drops without ever starting them, so a noisy tenant's storm
// shows up as its own drop count instead of as everyone's latency.
//
// Merging is deterministic: each child's next arrival is buffered, and
// the earliest timestamp wins, tenant index breaking ties. Children draw
// from their own streams (forked in tenant order by Spec.New), so one
// tenant's behavior never perturbs another's draws.
type MultiTenant struct {
	tenants []mtTenant
	nominal float64 // sum of child rates at construction
	speed   float64
	drops   map[string]int
}

type mtTenant struct {
	name    string
	src     Source
	bucket  *tokenBucket
	nominal float64 // child's Rate at construction
	pending Arrival
	ok      bool
}

// NewMultiTenant composes tenants into one source. Tenant names must be
// non-empty and unique; each child is immediately asked for its first
// arrival so merging starts with every tenant buffered.
func NewMultiTenant(tenants []Tenant) (*MultiTenant, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("traffic: multi-tenant needs at least one tenant")
	}
	m := &MultiTenant{speed: 1, drops: make(map[string]int)}
	seen := make(map[string]bool)
	for i, t := range tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("traffic: tenant %d has no name", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("traffic: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Source == nil {
			return nil, fmt.Errorf("traffic: tenant %q has no source", t.Name)
		}
		var bucket *tokenBucket
		if t.AdmitRate > 0 {
			burst := t.Burst
			if burst <= 0 {
				burst = 1
			}
			bucket = newTokenBucket(t.AdmitRate, burst)
		} else if t.Burst != 0 {
			return nil, fmt.Errorf("traffic: tenant %q sets burst without an admit rate", t.Name)
		}
		mt := mtTenant{name: t.Name, src: t.Source, bucket: bucket, nominal: t.Source.Rate()}
		mt.pending, mt.ok = t.Source.Next(0)
		m.nominal += mt.nominal
		m.tenants = append(m.tenants, mt)
	}
	return m, nil
}

// Name implements Source.
func (m *MultiTenant) Name() string {
	names := make([]string, len(m.tenants))
	for i, t := range m.tenants {
		names[i] = t.name
	}
	return "tenants:" + strings.Join(names, "+")
}

// Next implements Source: emit the earliest buffered child arrival
// (tenant index breaks timestamp ties), stamped with the tenant name and
// the bucket's admit/deny decision, then refill that child's buffer.
func (m *MultiTenant) Next(now float64) (Arrival, bool) {
	best := -1
	for i := range m.tenants {
		t := &m.tenants[i]
		if !t.ok {
			continue
		}
		if best < 0 || t.pending.At < m.tenants[best].pending.At {
			best = i
		}
	}
	if best < 0 {
		return Arrival{}, false
	}
	t := &m.tenants[best]
	a := t.pending
	a.Meta.Tenant = t.name
	if t.bucket != nil && !t.bucket.admit(a.At) {
		a.Meta.Denied = true
		m.drops[t.name]++
	}
	t.pending, t.ok = t.src.Next(a.At)
	return a, true
}

// Rate implements Source: the sum of live children's current offered
// rates.
func (m *MultiTenant) Rate() float64 {
	var sum float64
	for i := range m.tenants {
		if m.tenants[i].ok {
			sum += m.tenants[i].src.Rate()
		}
	}
	return sum
}

// SetRate implements Source: scales every tenant proportionally — each
// child is retargeted to its construction-time share of the new total, so
// steering the composition preserves the tenant mix.
func (m *MultiTenant) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: multi-tenant rate must be positive, got %g", rate)
	}
	m.speed = rate / m.nominal
	for i := range m.tenants {
		t := &m.tenants[i]
		if err := t.src.SetRate(t.nominal * m.speed); err != nil {
			return fmt.Errorf("traffic: tenant %q: %w", t.name, err)
		}
	}
	return nil
}

// Drops reports per-tenant denied-arrival counts so far.
func (m *MultiTenant) Drops() map[string]int { return m.drops }

// Err reports the first child error (a tenant's trace replay broke), nil
// otherwise.
func (m *MultiTenant) Err() error {
	for i := range m.tenants {
		if e, ok := m.tenants[i].src.(interface{ Err() error }); ok {
			if err := e.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close closes every child source that holds resources (trace replays).
func (m *MultiTenant) Close() error {
	var first error
	for i := range m.tenants {
		if c, ok := m.tenants[i].src.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
