package traffic

import (
	"math"
	"strings"
	"testing"
)

// fuzzTraceReplay is the shared fuzz harness for both trace formats. The
// contract it pins: arbitrary bytes either fail construction with an
// error, or yield a replay whose emitted arrivals are finite and
// non-decreasing until the trace ends cleanly or Err reports the broken
// line — never a panic, never a NaN arrival time, never an arrival after
// exhaustion.
func fuzzTraceReplay(t *testing.T, format string, data []byte) {
	tr, err := NewTraceReplayReader(strings.NewReader(string(data)), format, "fuzz", 100)
	if err != nil {
		return
	}
	defer tr.Close()
	var last float64
	exhausted := false
	for n := 0; n < 4096; n++ {
		a, ok := tr.Next(last)
		if !ok {
			exhausted = true
			break
		}
		if math.IsNaN(a.At) || math.IsInf(a.At, 0) {
			t.Fatalf("arrival %d at non-finite time %g", n, a.At)
		}
		if a.At < last {
			t.Fatalf("arrival %d at %g before previous arrival at %g", n, a.At, last)
		}
		last = a.At
		if r := tr.Rate(); math.IsNaN(r) || r < 0 {
			t.Fatalf("arrival %d: rate estimate %g", n, r)
		}
	}
	if exhausted {
		if _, ok := tr.Next(last); ok {
			t.Fatal("exhausted replay produced another arrival")
		}
		// Err must answer either way: nil for a clean end of trace, the
		// positioned parse error for a broken line. Calling it must not
		// disturb the exhausted state.
		_ = tr.Err()
	}
}

// FuzzTraceNDJSON fuzzes NDJSON trace parsing: malformed records, bad
// timestamps and non-monotone traces must surface through construction
// errors or Err, never as panics.
func FuzzTraceNDJSON(f *testing.F) {
	f.Add([]byte("{\"t\": 0.5}\n{\"t\": 1.25, \"tenant\": \"search\", \"class\": \"query\"}\n"))
	f.Add([]byte("# comment\n\n{\"t\": 0}\n{\"t\": 3e2}\n"))
	f.Add([]byte("{\"t\": 1}\n{\"t\": 0.5}\n"))      // non-monotone
	f.Add([]byte("{\"t\": -1}\n"))                   // negative time
	f.Add([]byte("{\"t\": 1e999}\n"))                // out-of-range number
	f.Add([]byte("{\"t\": 1, \"tenant\": 3}\nnope")) // type mismatch, trailing junk
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTraceReplay(t, FormatNDJSON, data)
	})
}

// FuzzTraceCSV fuzzes CSV trace parsing: headers, comments, short and
// overlong rows, and every hostile float spelling ParseFloat accepts
// ("NaN", "Inf", hex floats) must parse or error — never panic, never
// emit a non-finite arrival.
func FuzzTraceCSV(f *testing.F) {
	f.Add([]byte("t,tenant,class\n0.5,search,query\n1.5,ads\n"))
	f.Add([]byte("# comment\n0\n0.25\n3e-1,a,b,extra\n"))
	f.Add([]byte("0.5\nNaN\n"))    // non-finite timestamp
	f.Add([]byte("Inf,x\n"))       // infinity in the header slot
	f.Add([]byte("1\n0.5\n"))      // non-monotone
	f.Add([]byte("0x1p-2,a\n,\n")) // hex float, empty fields
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTraceReplay(t, FormatCSV, data)
	})
}
