package traffic

import (
	"fmt"

	"repro/internal/xrand"
)

// Poisson is the memoryless open-loop process the paper's evaluation uses
// (the M in its M/G/1 model): exponential interarrival gaps at rate λ,
// retargetable mid-run. It reproduces internal/xrand.ArrivalProcess draw
// for draw and float-op for float-op — gap = Exp(1/λ) accumulated onto an
// internal clock — because the Options.ArrivalRate compat shim is pinned
// byte-identical to the pre-redesign tree.
type Poisson struct {
	src  *xrand.Source
	rate float64
	// now is the process's own arrival clock. The accumulation happens
	// here, not from Next's argument, so the float additions sequence
	// exactly as ArrivalProcess's did (and composed sources can drive a
	// Poisson child without perturbing its stream).
	now float64
	// meta is attached to every arrival (a tenant's child source tags its
	// arrivals here); zero for plain load.
	meta Meta
}

// NewPoisson returns a Poisson source at rate arrivals/second. It panics
// if rate <= 0, matching xrand.NewArrivalProcess — a non-positive rate is
// a programming error, not a workload.
func NewPoisson(src *xrand.Source, rate float64) *Poisson {
	if rate <= 0 {
		panic("traffic: poisson rate must be positive")
	}
	return &Poisson{src: src, rate: rate}
}

// Name implements Source.
func (p *Poisson) Name() string { return "poisson" }

// Next implements Source: the next arrival is the internal clock advanced
// by an Exp(1/λ) gap. The now argument is ignored — the clock accumulates
// internally so rate changes apply from the next gap exactly as
// ArrivalProcess applied them.
func (p *Poisson) Next(now float64) (Arrival, bool) {
	p.now += p.src.Exp(1 / p.rate)
	return Arrival{At: p.now, Meta: p.meta}, true
}

// Rate implements Source: the current λ.
func (p *Poisson) Rate() float64 { return p.rate }

// SetRate implements Source: λ is set directly (Poisson is its own
// nominal), effective from the next gap.
func (p *Poisson) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: poisson rate must be positive, got %g", rate)
	}
	p.rate = rate
	return nil
}
