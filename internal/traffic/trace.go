package traffic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Trace file formats. The zero value asks NewTraceReplay to infer the
// format from the file extension.
const (
	// FormatAuto infers NDJSON vs CSV from the path's extension.
	FormatAuto = ""
	// FormatNDJSON is one JSON object per line:
	// {"t": 1.25, "tenant": "search", "class": "query"} — t is the
	// absolute arrival time in seconds; tenant and class are optional.
	FormatNDJSON = "ndjson"
	// FormatCSV is comma-separated t[,tenant[,class]] lines; blank lines
	// and lines starting with '#' are skipped, as is a leading header
	// whose first field is not a number.
	FormatCSV = "csv"
)

// rateWindow is how many recent arrivals the Rate estimate spans.
const rateWindow = 64

// TraceReplay replays recorded arrivals from an NDJSON or CSV trace. The
// file is streamed line by line through a small buffer — a multi-gigabyte
// trace costs the same memory as a 1k-line fixture — and each record's
// tenant/class metadata rides on the arrival. Replay is deterministic by
// construction (no randomness at all); SetRate time-compresses or
// stretches the recorded gaps around the configured nominal rate, so rate
// steps and diurnal steering compose with replayed shape instead of being
// silently ignored.
//
// A malformed or non-monotone record stops replay at that point: the
// source reports exhausted and Err returns the parse error, so a run over
// a truncated trace finishes cleanly and the caller can distinguish "trace
// ended" from "trace broke".
type TraceReplay struct {
	name    string
	format  string
	nominal float64
	speed   float64 // virtual seconds of trace per second of run

	closer io.Closer
	scan   *bufio.Scanner
	line   int
	err    error
	// pending is the one-record lookahead buffer between peek and Next.
	pending *traceRecord

	sawHeader bool // CSV: a non-numeric first line was consumed

	lastIn  float64 // last record timestamp read from the trace
	lastOut float64 // last arrival timestamp emitted
	started bool

	// recent is a ring of the last emitted arrival times backing the
	// windowed Rate estimate.
	recent [rateWindow]float64
	count  int
}

// NewTraceReplay opens a trace file for streamed replay. format is one of
// the Format constants (FormatAuto infers from the extension: .csv is CSV,
// anything else NDJSON). nominal is the rate SetRate scales against — a
// SetRate(nominal) leaves recorded gaps untouched; it must be positive.
// The first record is parsed eagerly so an unreadable or malformed trace
// fails at construction, not silently mid-run.
func NewTraceReplay(path, format string, nominal float64) (*TraceReplay, error) {
	if format == FormatAuto {
		if strings.EqualFold(filepath.Ext(path), ".csv") {
			format = FormatCSV
		} else {
			format = FormatNDJSON
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	tr, err := NewTraceReplayReader(f, format, "trace:"+filepath.Base(path), nominal)
	if err != nil {
		f.Close()
		return nil, err
	}
	tr.closer = f
	return tr, nil
}

// NewTraceReplayReader is NewTraceReplay over an arbitrary reader (tests
// and embedded traces). format must be FormatNDJSON or FormatCSV; name is
// what Name reports. The reader is not closed by the source unless it was
// opened by NewTraceReplay.
func NewTraceReplayReader(r io.Reader, format, name string, nominal float64) (*TraceReplay, error) {
	if format != FormatNDJSON && format != FormatCSV {
		return nil, fmt.Errorf("traffic: unknown trace format %q", format)
	}
	if nominal <= 0 {
		return nil, fmt.Errorf("traffic: trace nominal rate must be positive, got %g", nominal)
	}
	tr := &TraceReplay{
		name:    name,
		format:  format,
		nominal: nominal,
		speed:   1,
		scan:    bufio.NewScanner(r),
	}
	tr.scan.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	// Validate eagerly: an empty or immediately-broken trace is a
	// construction error, not a zero-arrival run.
	if _, _, ok := tr.peek(); !ok {
		if tr.err != nil {
			return nil, tr.err
		}
		return nil, fmt.Errorf("traffic: trace %s has no records", name)
	}
	return tr, nil
}

// traceRecord is one parsed trace line.
type traceRecord struct {
	T      float64 `json:"t"`
	Tenant string  `json:"tenant"`
	Class  string  `json:"class"`
}

// peek parses the next record into tr.pending without emitting it.
func (tr *TraceReplay) peek() (float64, Meta, bool) {
	if tr.pending != nil {
		return tr.pending.T, Meta{Tenant: tr.pending.Tenant, Class: tr.pending.Class}, true
	}
	if tr.err != nil {
		return 0, Meta{}, false
	}
	for tr.scan.Scan() {
		tr.line++
		raw := strings.TrimSpace(tr.scan.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		rec, err := tr.parseLine(raw)
		if err != nil {
			if err == errSkipLine {
				continue
			}
			tr.err = fmt.Errorf("traffic: %s line %d: %w", tr.name, tr.line, err)
			return 0, Meta{}, false
		}
		if tr.started && rec.T < tr.lastIn {
			tr.err = fmt.Errorf("traffic: %s line %d: timestamp %g before previous %g (trace must be non-decreasing)",
				tr.name, tr.line, rec.T, tr.lastIn)
			return 0, Meta{}, false
		}
		tr.pending = rec
		return rec.T, Meta{Tenant: rec.Tenant, Class: rec.Class}, true
	}
	if err := tr.scan.Err(); err != nil {
		tr.err = fmt.Errorf("traffic: %s: %w", tr.name, err)
	}
	return 0, Meta{}, false
}

// errSkipLine marks a line peek should silently skip (a CSV header).
var errSkipLine = fmt.Errorf("skip")

func (tr *TraceReplay) parseLine(raw string) (*traceRecord, error) {
	switch tr.format {
	case FormatNDJSON:
		rec := &traceRecord{T: -1}
		if err := json.Unmarshal([]byte(raw), rec); err != nil {
			return nil, fmt.Errorf("bad NDJSON record: %w", err)
		}
		if rec.T < 0 {
			return nil, fmt.Errorf("record missing non-negative \"t\"")
		}
		return rec, nil
	case FormatCSV:
		fields := strings.Split(raw, ",")
		t, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			if !tr.sawHeader && !tr.started {
				tr.sawHeader = true
				return nil, errSkipLine
			}
			return nil, fmt.Errorf("bad timestamp %q", fields[0])
		}
		// ParseFloat accepts "NaN" and "Inf" spellings; neither is a time.
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("non-finite timestamp %q", strings.TrimSpace(fields[0]))
		}
		if t < 0 {
			return nil, fmt.Errorf("negative timestamp %g", t)
		}
		rec := &traceRecord{T: t}
		if len(fields) > 1 {
			rec.Tenant = strings.TrimSpace(fields[1])
		}
		if len(fields) > 2 {
			rec.Class = strings.TrimSpace(fields[2])
		}
		return rec, nil
	}
	return nil, fmt.Errorf("unknown format %q", tr.format)
}

// Name implements Source.
func (tr *TraceReplay) Name() string { return tr.name }

// Next implements Source: the next recorded arrival, with its gap from the
// previous record divided by the current speed factor. The emitted clock
// is rebuilt from emitted time + scaled gap (not recorded time ÷ speed) so
// a mid-run SetRate only reshapes the future, never rewrites the past.
func (tr *TraceReplay) Next(now float64) (Arrival, bool) {
	t, meta, ok := tr.peek()
	if !ok {
		return Arrival{}, false
	}
	tr.pending = nil
	var out float64
	if !tr.started {
		// The first record lands at its scaled recorded offset.
		out = t / tr.speed
		tr.started = true
	} else {
		out = tr.lastOut + (t-tr.lastIn)/tr.speed
	}
	tr.lastIn = t
	tr.lastOut = out
	tr.recent[tr.count%rateWindow] = out
	tr.count++
	return Arrival{At: out, Meta: meta}, true
}

// Rate implements Source: a windowed estimate over the last emitted
// arrivals (nominal × speed before enough arrivals exist, or when the
// window spans zero time).
func (tr *TraceReplay) Rate() float64 {
	n := tr.count
	if n > rateWindow {
		n = rateWindow
	}
	if n >= 2 {
		newest := tr.recent[(tr.count-1)%rateWindow]
		oldest := tr.recent[(tr.count-n)%rateWindow]
		if span := newest - oldest; span > 0 {
			return float64(n-1) / span
		}
	}
	return tr.nominal * tr.speed
}

// SetRate implements Source: replay speed becomes rate/nominal, scaling
// every future gap. SetRate(nominal) restores recorded pacing.
func (tr *TraceReplay) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: trace replay rate must be positive, got %g", rate)
	}
	tr.speed = rate / tr.nominal
	return nil
}

// Err reports the parse or I/O error that stopped replay, nil after a
// clean end of trace. Check it when a run admits fewer requests than the
// trace should supply.
func (tr *TraceReplay) Err() error { return tr.err }

// Close releases the underlying file when the source was opened from a
// path; it is a no-op for reader-backed sources.
func (tr *TraceReplay) Close() error {
	if tr.closer == nil {
		return nil
	}
	c := tr.closer
	tr.closer = nil
	return c.Close()
}
