package traffic

import (
	"container/heap"
	"fmt"

	"repro/internal/xrand"
)

// Sessions models a closed population of user flows: each of N users
// issues a request, thinks for a lognormal think time, and issues the
// next. Offered load emerges from the population — nominally
// Users/ThinkSeconds requests per second — instead of being dialed in as
// a rate constant, which is how "millions of users" becomes a first-class
// input rather than a λ.
//
// Each user draws think times from its own stream, forked from the
// construction source in user-index order, so adding users appends
// streams without perturbing existing ones. Simultaneous arrivals order
// by user index. SetRate scales every future think time by
// nominal/rate, so steering a session source stretches or compresses
// think time — the physically meaningful knob — rather than breaking the
// closed-loop structure.
type Sessions struct {
	users   []*xrand.Source
	think   float64 // mean think time in seconds at speed 1
	sigma   float64 // lognormal sigma of think times
	nominal float64 // Users/ThinkSeconds
	speed   float64
	heap    sessionHeap
}

// NewSessions returns a source of users concurrent session flows with
// lognormal think times of mean thinkSeconds and shape sigma (0 selects
// 0.5). Each user's first request arrives after one think-time draw from
// its own stream, so the population desynchronises naturally.
func NewSessions(src *xrand.Source, users int, thinkSeconds, sigma float64) (*Sessions, error) {
	if users < 1 {
		return nil, fmt.Errorf("traffic: sessions need at least 1 user, got %d", users)
	}
	if thinkSeconds <= 0 {
		return nil, fmt.Errorf("traffic: session think time must be positive, got %g", thinkSeconds)
	}
	if sigma < 0 {
		return nil, fmt.Errorf("traffic: session think sigma must be non-negative, got %g", sigma)
	}
	if sigma == 0 {
		sigma = 0.5
	}
	s := &Sessions{
		think:   thinkSeconds,
		sigma:   sigma,
		nominal: float64(users) / thinkSeconds,
		speed:   1,
	}
	s.users = make([]*xrand.Source, users)
	for u := range s.users {
		s.users[u] = src.Fork()
	}
	// Seed the heap in user order — each user's first draw comes from its
	// own stream, so this loop's order only decides heap layout, not
	// randomness.
	for u := range s.users {
		heap.Push(&s.heap, sessionEvent{at: s.drawThink(u), user: u})
	}
	return s, nil
}

// drawThink returns one speed-scaled think-time draw for user u.
func (s *Sessions) drawThink(u int) float64 {
	return s.users[u].LogNormalMean(s.think, s.sigma) / s.speed
}

// Name implements Source.
func (s *Sessions) Name() string { return fmt.Sprintf("sessions:%d", len(s.users)) }

// Next implements Source: pop the earliest user's request, schedule that
// user's next one think time later. Requests are instantaneous from the
// source's point of view — think time models the whole user round trip,
// which keeps the source open-loop toward the engine and the determinism
// invariants intact (a closed loop through simulated latency would make
// arrival draws depend on service state).
func (s *Sessions) Next(now float64) (Arrival, bool) {
	ev := heap.Pop(&s.heap).(sessionEvent)
	heap.Push(&s.heap, sessionEvent{at: ev.at + s.drawThink(ev.user), user: ev.user})
	return Arrival{At: ev.at, Meta: Meta{User: ev.user}}, true
}

// Rate implements Source: the nominal population rate Users/Think at the
// current speed.
func (s *Sessions) Rate() float64 { return s.nominal * s.speed }

// SetRate implements Source: future think times scale by nominal/rate.
func (s *Sessions) SetRate(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: sessions rate must be positive, got %g", rate)
	}
	s.speed = rate / s.nominal
	return nil
}

// sessionEvent is one user's next request time.
type sessionEvent struct {
	at   float64
	user int
}

// sessionHeap orders events by time, user index breaking ties so
// simultaneous draws pop deterministically.
type sessionHeap []sessionEvent

// Len implements heap.Interface.
func (h sessionHeap) Len() int { return len(h) }

// Less implements heap.Interface: earliest event first, user index
// breaking ties.
func (h sessionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].user < h[j].user
}

// Swap implements heap.Interface.
func (h sessionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *sessionHeap) Push(x interface{}) { *h = append(*h, x.(sessionEvent)) }

// Pop implements heap.Interface.
func (h *sessionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
