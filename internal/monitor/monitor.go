// Package monitor implements the paper's cost-effective online monitors
// (§III): a periodic sampler of per-node resource-contention vectors (the
// role Perf/Oprofile/proc play on the testbed) and a request-arrival-rate
// estimator fed from the service's request log.
//
// Samples carry multiplicative measurement noise so the predictor works
// from realistic observations rather than the simulator's exact state.
package monitor

import (
	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Config controls sampling cadence and fidelity.
type Config struct {
	// Period is the sampling period in seconds (the paper samples
	// system-level contention once per second).
	Period float64
	// Window is the number of samples retained per node; the predictor
	// derives service-time mean and variance from this window.
	Window int
	// NoiseSigma is the relative standard deviation of multiplicative
	// measurement noise on every contention metric. 0 disables noise;
	// 0.02 is the default used in the evaluation.
	NoiseSigma float64
	// RateWindow is the horizon in seconds of the arrival-rate estimate.
	RateWindow float64
	// Pool, when non-nil, shards each sampling pass across its workers:
	// node i's contention read, noise draws and ring append are node-local,
	// and the noise comes from node i's private stream, so the sampled
	// windows are bit-identical at any shard count. Nil samples inline.
	Pool *shard.Pool
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = 1
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 10
	}
	return c
}

// Monitor samples a cluster's contention state on a fixed period and keeps
// a per-node ring of recent samples.
type Monitor struct {
	cfg     Config
	engine  *sim.Engine
	cluster *cluster.Cluster
	// srcs holds one noise stream per node, forked in node order at
	// construction. Per-node streams make each node's draw sequence a
	// function of (node, sample index) alone, which is what lets a sharded
	// sampling pass reproduce the sequential one bit for bit.
	srcs []*xrand.Source

	rings  []ring
	ticker *sim.Ticker

	arrivalTimes []float64 // ring of recent arrival timestamps
	arrivalNext  int
	arrivalSeen  int
}

type ring struct {
	samples []cluster.Vector
	next    int
	size    int
}

func (r *ring) add(v cluster.Vector) {
	r.samples[r.next] = v
	r.next = (r.next + 1) % len(r.samples)
	if r.size < len(r.samples) {
		r.size++
	}
}

func (r *ring) snapshot() []cluster.Vector {
	out := make([]cluster.Vector, 0, r.size)
	// Oldest-first order keeps snapshots deterministic.
	start := r.next - r.size
	if start < 0 {
		start += len(r.samples)
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.samples[(start+i)%len(r.samples)])
	}
	return out
}

// New creates a monitor over the cluster. Call Start to begin sampling.
func New(e *sim.Engine, cl *cluster.Cluster, src *xrand.Source, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	m := &Monitor{
		cfg:          cfg,
		engine:       e,
		cluster:      cl,
		srcs:         make([]*xrand.Source, cl.NumNodes()),
		rings:        make([]ring, cl.NumNodes()),
		arrivalTimes: make([]float64, 4096),
	}
	for i := range m.rings {
		m.rings[i].samples = make([]cluster.Vector, cfg.Window)
		m.srcs[i] = src.Fork()
	}
	return m
}

// Start begins periodic sampling, taking an immediate first sample so the
// predictor has data from t=0.
func (m *Monitor) Start() {
	m.sample()
	m.ticker = m.engine.Every(m.cfg.Period, func(float64) { m.sample() })
}

// Stop halts sampling.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
	}
}

// sample takes one monitoring pass over the cluster. The pass is a window
// barrier: node state is frozen while it runs (it executes inside a single
// engine event), each node's work touches only that node's stream and
// ring, so sharding it changes the wall clock and nothing else.
func (m *Monitor) sample() {
	nodes := m.cluster.Nodes()
	m.cfg.Pool.Run(len(nodes), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := nodes[i].Contention()
			if m.cfg.NoiseSigma > 0 {
				for r := 0; r < cluster.NumResources; r++ {
					v[r] *= m.srcs[i].LogNormalMean(1, m.cfg.NoiseSigma)
				}
			}
			m.rings[i].add(v)
		}
	})
}

// NodeSamples returns the retained contention samples of a node,
// oldest first.
func (m *Monitor) NodeSamples(nodeID int) []cluster.Vector {
	return m.rings[nodeID].snapshot()
}

// AllNodeSamples returns the sample window of every node, indexed by node
// ID — the bulk input to performance-matrix construction.
func (m *Monitor) AllNodeSamples() [][]cluster.Vector {
	out := make([][]cluster.Vector, len(m.rings))
	for i := range m.rings {
		out[i] = m.rings[i].snapshot()
	}
	return out
}

// RecordArrival logs one request arrival; wire it to Service.OnArrival.
func (m *Monitor) RecordArrival(now float64) {
	m.arrivalTimes[m.arrivalNext] = now
	m.arrivalNext = (m.arrivalNext + 1) % len(m.arrivalTimes)
	m.arrivalSeen++
}

// ArrivalRate estimates the current request arrival rate λ in requests per
// second, from arrivals within the configured rate window. It falls back
// to the full retained history when the window is sparse.
func (m *Monitor) ArrivalRate() float64 {
	now := m.engine.Now()
	n := m.arrivalSeen
	if n > len(m.arrivalTimes) {
		n = len(m.arrivalTimes)
	}
	if n == 0 {
		return 0
	}
	count := 0
	oldest := now
	for i := 0; i < n; i++ {
		t := m.arrivalTimes[i]
		if now-t <= m.cfg.RateWindow {
			count++
			if t < oldest {
				oldest = t
			}
		}
	}
	if count < 2 {
		return 0
	}
	span := now - oldest
	if span <= 0 {
		return 0
	}
	return float64(count) / span
}
