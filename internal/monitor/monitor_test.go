package monitor

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xrand"
)

type staticProgram struct {
	id     string
	demand cluster.Vector
}

func (p *staticProgram) ProgramID() string      { return p.id }
func (p *staticProgram) Demand() cluster.Vector { return p.demand }

func TestMonitorSamplesNodes(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(3, cluster.DefaultCapacity())
	cl.Node(1).Host(&staticProgram{id: "a", demand: cluster.Vector{2, 4, 6, 8}})
	m := New(engine, cl, xrand.New(1), Config{Period: 1, Window: 5, NoiseSigma: 0})
	m.Start()
	engine.Run(10)

	s0 := m.NodeSamples(0)
	s1 := m.NodeSamples(1)
	if len(s0) != 5 || len(s1) != 5 {
		t.Fatalf("window lengths = %d, %d, want 5", len(s0), len(s1))
	}
	for _, v := range s0 {
		if !v.IsZero() {
			t.Fatalf("idle node sampled %v", v)
		}
	}
	for _, v := range s1 {
		if v != (cluster.Vector{2, 4, 6, 8}) {
			t.Fatalf("noiseless sample = %v", v)
		}
	}
}

func TestMonitorWindowEvictsOldest(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(1, cluster.DefaultCapacity())
	p := &staticProgram{id: "a", demand: cluster.Vector{1, 0, 0, 0}}
	m := New(engine, cl, xrand.New(2), Config{Period: 1, Window: 3, NoiseSigma: 0})
	m.Start()
	engine.Run(2.5) // samples at 0, 1, 2 with node idle
	cl.Node(0).Host(p)
	engine.Run(10) // window fills with the loaded state
	for _, v := range m.NodeSamples(0) {
		if v[cluster.Core] != 1 {
			t.Fatalf("stale sample survived: %v", m.NodeSamples(0))
		}
	}
}

func TestMonitorNoiseIsApplied(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(1, cluster.DefaultCapacity())
	cl.Node(0).Host(&staticProgram{id: "a", demand: cluster.Vector{5, 5, 5, 5}})
	m := New(engine, cl, xrand.New(3), Config{Period: 1, Window: 8, NoiseSigma: 0.1})
	m.Start()
	engine.Run(10)
	samples := m.NodeSamples(0)
	varied := false
	for _, v := range samples[1:] {
		if v != samples[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("noisy samples are identical")
	}
	// Mean should still track the truth.
	mean := 0.0
	for _, v := range samples {
		mean += v[cluster.Core]
	}
	mean /= float64(len(samples))
	if math.Abs(mean-5) > 1.0 {
		t.Fatalf("noisy mean = %v, want ≈5", mean)
	}
}

func TestMonitorAllNodeSamples(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(4, cluster.DefaultCapacity())
	m := New(engine, cl, xrand.New(4), Config{})
	m.Start()
	engine.Run(5)
	all := m.AllNodeSamples()
	if len(all) != 4 {
		t.Fatalf("nodes covered = %d", len(all))
	}
	for i, w := range all {
		if len(w) == 0 {
			t.Fatalf("node %d window empty", i)
		}
	}
}

func TestArrivalRateEstimation(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(1, cluster.DefaultCapacity())
	m := New(engine, cl, xrand.New(5), Config{RateWindow: 10})
	m.Start()
	// Feed a steady 50/s arrival stream for 20 seconds.
	proc := xrand.NewArrivalProcess(xrand.New(6), 50)
	for {
		next := proc.Next()
		if next > 20 {
			break
		}
		engine.At(next, func(now float64) { m.RecordArrival(now) })
	}
	engine.Run(20)
	got := m.ArrivalRate()
	if math.Abs(got-50)/50 > 0.15 {
		t.Fatalf("estimated rate = %v, want ≈50", got)
	}
}

func TestArrivalRateEmpty(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(1, cluster.DefaultCapacity())
	m := New(engine, cl, xrand.New(7), Config{})
	if m.ArrivalRate() != 0 {
		t.Fatal("rate with no arrivals should be 0")
	}
	m.RecordArrival(0)
	if m.ArrivalRate() != 0 {
		t.Fatal("rate with one arrival should be 0 (needs ≥2)")
	}
}

func TestMonitorStop(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(1, cluster.DefaultCapacity())
	m := New(engine, cl, xrand.New(8), Config{Period: 1, Window: 100})
	m.Start()
	engine.Run(5)
	n := len(m.NodeSamples(0))
	m.Stop()
	engine.Run(20)
	if len(m.NodeSamples(0)) != n {
		t.Fatal("monitor kept sampling after Stop")
	}
}

func TestMonitorDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Period != 1 || cfg.Window != 10 || cfg.RateWindow != 10 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestMonitorSamplesOldestFirst(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(1, cluster.DefaultCapacity())
	p := &staticProgram{id: "a", demand: cluster.Vector{1, 0, 0, 0}}
	m := New(engine, cl, xrand.New(9), Config{Period: 1, Window: 4, NoiseSigma: 0})
	m.Start()
	engine.Run(1.5) // two samples idle (t=0, t=1)
	cl.Node(0).Host(p)
	engine.Run(3.5) // two samples loaded (t=2, t=3)
	s := m.NodeSamples(0)
	if len(s) != 4 {
		t.Fatalf("window = %d", len(s))
	}
	if s[0][cluster.Core] != 0 || s[3][cluster.Core] != 1 {
		t.Fatalf("not oldest-first: %v", s)
	}
}
