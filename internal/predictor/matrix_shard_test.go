package predictor

import (
	"reflect"
	"testing"

	"repro/internal/shard"
)

// TestBuildMatrixShardedBitIdentical pins the sharding contract at the
// predictor layer: matrix construction and the Algorithm 2 incremental
// updates produce bit-identical entries, allocations and predicted
// latencies at every shard count, because entries are pure functions of
// barrier-frozen state written to disjoint row slots.
func TestBuildMatrixShardedBitIdentical(t *testing.T) {
	base := testMatrixInput(t, 24, 8, 80, 5)
	seq, err := BuildMatrix(base)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		pool := shard.NewPool(shards)
		in := base
		in.Pool = pool
		par, err := BuildMatrix(in)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(par.L, seq.L) || !reflect.DeepEqual(par.SelfGain, seq.SelfGain) {
			t.Fatalf("shards=%d: matrix entries diverged from sequential build", shards)
		}
		if par.CurrentOverall() != seq.CurrentOverall() {
			t.Fatalf("shards=%d: overall %v != sequential %v", shards, par.CurrentOverall(), seq.CurrentOverall())
		}

		// Drive identical migration sequences through both matrices: the
		// sharded incremental update must track the sequential one exactly.
		ref, refErr := BuildMatrix(base)
		if refErr != nil {
			t.Fatal(refErr)
		}
		for step := 0; step < 6; step++ {
			i, j, gain, ok := ref.Best()
			pi, pj, pgain, pok := par.Best()
			if i != pi || j != pj || gain != pgain || ok != pok {
				t.Fatalf("shards=%d step %d: Best() (%d,%d,%v,%v) != sequential (%d,%d,%v,%v)",
					shards, step, pi, pj, pgain, pok, i, j, gain, ok)
			}
			if !ok {
				break
			}
			ref.Migrate(i, j)
			par.Migrate(i, j)
			if !reflect.DeepEqual(par.L, ref.L) || !reflect.DeepEqual(par.SelfGain, ref.SelfGain) {
				t.Fatalf("shards=%d: entries diverged after migration %d", shards, step)
			}
			if !reflect.DeepEqual(par.Allocation(), ref.Allocation()) {
				t.Fatalf("shards=%d: allocation diverged after migration %d", shards, step)
			}
		}
		pool.Close()
	}
}
