package predictor

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// syntheticSamples builds samples from a linear ground truth
// x = base·(1 + Σ αr·ur/capr) where the features co-vary with a common
// driver, as they do along a batch job's input-size sweep.
func syntheticSamples(n int, noise float64, seed int64) []Sample {
	src := xrand.New(seed)
	cap := cluster.DefaultCapacity()
	alpha := cluster.Vector{1.0, 0.5, 0.6, 0.4}
	out := make([]Sample, n)
	for i := range out {
		driver := src.Float64() // common driver: "input size"
		var u cluster.Vector
		for r := 0; r < cluster.NumResources; r++ {
			u[r] = driver * cap[r] * (0.8 + 0.4*src.Float64())
		}
		x := 0.001
		for r := 0; r < cluster.NumResources; r++ {
			x += 0.001 * alpha[r] * u[r] / cap[r]
		}
		if noise > 0 {
			x *= src.LogNormalMean(1, noise)
		}
		out[i] = Sample{U: u, X: x}
	}
	return out
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 1); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
	if _, err := Train(syntheticSamples(10, 0, 1), 0); err == nil {
		t.Fatal("degree 0 should be rejected")
	}
}

func TestTrainLearnsCovaryingFeatures(t *testing.T) {
	m, err := Train(syntheticSamples(200, 0.02, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every feature co-varies with the driver, so every weight should be
	// substantial.
	for r := 0; r < cluster.NumResources; r++ {
		if m.Weights[r] < 0.5 {
			t.Errorf("weight[%d] = %v, want > 0.5", r, m.Weights[r])
		}
	}
}

func TestPredictIsAccurateInRange(t *testing.T) {
	samples := syntheticSamples(300, 0.02, 3)
	m, err := Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	var errSum float64
	for _, s := range samples {
		p := m.Predict(s.U)
		errSum += math.Abs(p-s.X) / s.X
	}
	if avg := errSum / float64(len(samples)); avg > 0.10 {
		t.Fatalf("average in-sample error = %.1f%%, want < 10%%", avg*100)
	}
}

func TestPredictMonotoneWithDegreeOne(t *testing.T) {
	m, err := Train(syntheticSamples(300, 0.02, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	cap := cluster.DefaultCapacity()
	prev := 0.0
	for f := 0.0; f <= 2.0; f += 0.1 { // extrapolates beyond training range
		u := cap.Scale(f)
		p := m.Predict(u)
		if p < prev {
			t.Fatalf("prediction not monotone at scale %v: %v < %v", f, p, prev)
		}
		prev = p
	}
}

func TestPredictClampsToPositive(t *testing.T) {
	// A model trained on a downward-sloping artefact must never predict a
	// non-positive service time.
	samples := []Sample{
		{U: cluster.Vector{0, 0, 0, 0}, X: 0.002},
		{U: cluster.Vector{5, 0, 0, 0}, X: 0.001},
		{U: cluster.Vector{10, 0, 0, 0}, X: 0.0005},
	}
	m, err := Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict(cluster.Vector{1000, 0, 0, 0}); p <= 0 {
		t.Fatalf("prediction = %v, want positive clamp", p)
	}
}

func TestTrainDegenerateFeatureGetsZeroWeight(t *testing.T) {
	// Feature 3 (NetBW) constant across samples → singular fit → weight 0.
	src := xrand.New(5)
	samples := make([]Sample, 50)
	for i := range samples {
		c := src.Float64() * 10
		samples[i] = Sample{
			U: cluster.Vector{c, c * 2, c * 3, 7},
			X: 0.001 * (1 + c/10),
		}
	}
	m, err := Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights[cluster.NetBW] != 0 {
		t.Fatalf("constant feature weight = %v, want 0", m.Weights[cluster.NetBW])
	}
	if m.Regs[cluster.NetBW] != nil {
		t.Fatal("constant feature should have nil regression")
	}
	// Prediction still works through the other features.
	if p := m.Predict(samples[0].U); p <= 0 {
		t.Fatalf("prediction = %v", p)
	}
}

func TestTrainAllDegenerateFallsBackToMean(t *testing.T) {
	samples := []Sample{
		{U: cluster.Vector{1, 1, 1, 1}, X: 0.002},
		{U: cluster.Vector{1, 1, 1, 1}, X: 0.004},
	}
	m, err := Train(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict(cluster.Vector{1, 1, 1, 1}); math.Abs(p-0.003) > 1e-12 {
		t.Fatalf("fallback prediction = %v, want mean 0.003", p)
	}
}

func TestPredictStats(t *testing.T) {
	m, err := Train(syntheticSamples(200, 0.02, 6), 1)
	if err != nil {
		t.Fatal(err)
	}
	cap := cluster.DefaultCapacity()
	window := []cluster.Vector{cap.Scale(0.1), cap.Scale(0.5), cap.Scale(0.9)}
	mean, variance := m.PredictStats(window)
	if mean <= 0 {
		t.Fatalf("mean = %v", mean)
	}
	if variance <= 0 {
		t.Fatalf("variance = %v; heterogeneous window must have positive variance", variance)
	}
	// Uniform window has zero variance.
	mean2, var2 := m.PredictStats([]cluster.Vector{cap.Scale(0.5), cap.Scale(0.5)})
	if var2 != 0 {
		t.Fatalf("uniform-window variance = %v", var2)
	}
	if mean2 <= 0 {
		t.Fatalf("mean2 = %v", mean2)
	}
	// Empty window falls back.
	mean3, var3 := m.PredictStats(nil)
	if mean3 != m.FallbackMean || var3 != 0 {
		t.Fatalf("empty window = (%v, %v)", mean3, var3)
	}
}

func TestEq1WeightedCombination(t *testing.T) {
	// Hand-build a model and verify Eq. 1's weighted average directly:
	// RG_core(u) = 1 + u with weight 0.5; RG_cache(u) = 2 + 2u, weight 1.
	m := &ServiceTimeModel{}
	var err error
	m.Regs[cluster.Core], err = stats.FitPoly([]float64{0, 1, 2}, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Weights[cluster.Core] = 0.5
	m.Regs[cluster.Cache], err = stats.FitPoly([]float64{0, 1, 2}, []float64{2, 4, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Weights[cluster.Cache] = 1.0
	u := cluster.Vector{1, 1, 0, 0}
	// (0.5·2 + 1·4) / 1.5 = 4/1.5... RG_core(1)=2, RG_cache(1)=4:
	// (0.5·2 + 1·4)/1.5 = 5/1.5.
	want := 5.0 / 1.5
	if got := m.Predict(u); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Eq.1 prediction = %v, want %v", got, want)
	}
}
