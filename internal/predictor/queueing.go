package predictor

import "math"

// QueueModel selects the queueing formula of the extended model (§IV-B).
type QueueModel int

const (
	// MG1 is the paper's default: Poisson arrivals, general service times,
	// one server (Eq. 2, using the Pollaczek–Khinchine mean waiting time).
	MG1 QueueModel = iota
	// MM1 is the exponential-service special case the paper notes
	// (C²x = 1): l = 1/(µ−λ). Used for the queue-model ablation.
	MM1
	// NoQueue ignores queueing delay and predicts the bare service time —
	// the "basic model only" ablation.
	NoQueue
)

// String names the queue model.
func (q QueueModel) String() string {
	switch q {
	case MG1:
		return "M/G/1"
	case MM1:
		return "M/M/1"
	case NoQueue:
		return "no-queue"
	default:
		return "queue-model(?)"
	}
}

// LatencyParams bounds the queueing formulas near and beyond saturation.
// Eq. 2 diverges as ρ→1; predicted service environments can legitimately
// be overloaded (that is exactly what PCS must detect and flee), so the
// predictor extrapolates linearly past RhoMax with a steep, monotone
// penalty instead of returning infinities that would break matrix
// arithmetic.
type LatencyParams struct {
	// RhoMax caps the utilisation used inside the queueing formula.
	RhoMax float64
	// OverloadSlope is the per-unit-ρ multiplier applied beyond RhoMax.
	OverloadSlope float64
}

// DefaultLatencyParams returns the bounds used across the evaluation.
func DefaultLatencyParams() LatencyParams {
	return LatencyParams{RhoMax: 0.98, OverloadSlope: 50}
}

// ExpectedLatency computes a component's expected latency l (Eq. 2) from
// the predicted mean service time x̄, service-time variance var(x), and the
// monitored arrival rate λ, under the chosen queue model.
//
//	l = x̄ + λ(1+C²x) / (2µ²(1−ρ)),  C²x = var(x)/x̄²,  ρ = λ/µ,  µ = 1/x̄
func ExpectedLatency(model QueueModel, meanX, varX, lambda float64, p LatencyParams) float64 {
	if meanX <= 0 {
		return 0
	}
	if model == NoQueue || lambda <= 0 {
		return meanX
	}
	if p.RhoMax <= 0 || p.RhoMax >= 1 {
		p = DefaultLatencyParams()
	}
	rho := lambda * meanX
	boundedRho := rho
	overload := 1.0
	if rho > p.RhoMax {
		boundedRho = p.RhoMax
		overload = 1 + (rho-p.RhoMax)*p.OverloadSlope
	}
	var l float64
	switch model {
	case MM1:
		// l = 1/(µ−λ) = x̄/(1−ρ)
		l = meanX / (1 - boundedRho)
	default: // MG1
		c2 := 0.0
		if meanX > 0 {
			c2 = varX / (meanX * meanX)
		}
		// x̄ + λ(1+C²x)·x̄² / (2(1−ρ))
		l = meanX + lambda*(1+c2)*meanX*meanX/(2*(1-boundedRho))
	}
	l *= overload
	if math.IsNaN(l) || math.IsInf(l, 0) {
		return meanX * 1e6
	}
	return l
}

// StageLatency is Eq. 3: the latency of a stage of parallel components is
// the maximum of their latencies.
func StageLatency(componentLatencies []float64) float64 {
	m := 0.0
	for _, l := range componentLatencies {
		if l > m {
			m = l
		}
	}
	return m
}

// OverallLatency is Eq. 4: the overall service latency is the sum of the
// sequential stage latencies.
func OverallLatency(stageLatencies []float64) float64 {
	s := 0.0
	for _, l := range stageLatencies {
		s += l
	}
	return s
}
