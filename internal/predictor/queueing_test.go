package predictor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExpectedLatencyNoLoadIsServiceTime(t *testing.T) {
	p := DefaultLatencyParams()
	if got := ExpectedLatency(MG1, 0.01, 0, 0, p); got != 0.01 {
		t.Fatalf("latency at λ=0: %v", got)
	}
	if got := ExpectedLatency(NoQueue, 0.01, 0.1, 500, p); got != 0.01 {
		t.Fatalf("NoQueue latency = %v, want bare service time", got)
	}
}

func TestExpectedLatencyMG1KnownValue(t *testing.T) {
	// Eq. 2 with x̄=0.01, var=0.0001 (C²=1), λ=50: ρ=0.5,
	// l = 0.01 + 50·2·0.0001/(2·0.5) = 0.01 + 0.01 = 0.02.
	p := DefaultLatencyParams()
	got := ExpectedLatency(MG1, 0.01, 0.0001, 50, p)
	if math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("MG1 latency = %v, want 0.02", got)
	}
}

func TestExpectedLatencyMM1KnownValue(t *testing.T) {
	// M/M/1: l = x̄/(1−ρ); x̄=0.01, λ=50 → ρ=0.5 → l = 0.02.
	p := DefaultLatencyParams()
	got := ExpectedLatency(MM1, 0.01, 0, 50, p)
	if math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("MM1 latency = %v, want 0.02", got)
	}
}

func TestMG1EqualsMM1WhenCSquaredIsOne(t *testing.T) {
	// The paper notes M/G/1 reduces to M/M/1 when C²x = 1 (exponential
	// service). Property-check it across parameters.
	f := func(meanRaw, lambdaRaw float64) bool {
		meanX := 0.001 + math.Abs(math.Mod(meanRaw, 0.05))
		lambda := math.Abs(math.Mod(lambdaRaw, 0.9)) / meanX // ρ < 0.9
		p := DefaultLatencyParams()
		varX := meanX * meanX // C² = 1
		mg1 := ExpectedLatency(MG1, meanX, varX, lambda, p)
		mm1 := ExpectedLatency(MM1, meanX, 0, lambda, p)
		return math.Abs(mg1-mm1) < 1e-9*(1+mm1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedLatencyMonotoneInRho(t *testing.T) {
	p := DefaultLatencyParams()
	prev := 0.0
	for lambda := 0.0; lambda < 300; lambda += 5 {
		l := ExpectedLatency(MG1, 0.005, 0.5*0.005*0.005, lambda, p)
		if l < prev {
			t.Fatalf("latency not monotone in λ at %v: %v < %v", lambda, l, prev)
		}
		prev = l
	}
}

func TestExpectedLatencyOverloadIsFiniteAndIncreasing(t *testing.T) {
	p := DefaultLatencyParams()
	atMax := ExpectedLatency(MG1, 0.01, 0.0001, 97.9, p)
	over := ExpectedLatency(MG1, 0.01, 0.0001, 150, p)    // ρ=1.5
	wayOver := ExpectedLatency(MG1, 0.01, 0.0001, 300, p) // ρ=3
	if math.IsInf(over, 0) || math.IsNaN(over) {
		t.Fatal("overload latency not finite")
	}
	if !(atMax < over && over < wayOver) {
		t.Fatalf("overload not increasing: %v, %v, %v", atMax, over, wayOver)
	}
}

func TestExpectedLatencyZeroServiceTime(t *testing.T) {
	if got := ExpectedLatency(MG1, 0, 0, 100, DefaultLatencyParams()); got != 0 {
		t.Fatalf("zero service time latency = %v", got)
	}
}

func TestExpectedLatencyBadParamsFallBack(t *testing.T) {
	// RhoMax outside (0,1) falls back to defaults rather than dividing by
	// zero.
	got := ExpectedLatency(MG1, 0.01, 0, 50, LatencyParams{RhoMax: 2})
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		t.Fatalf("latency = %v", got)
	}
}

func TestStageLatencyIsMax(t *testing.T) {
	// Eq. 3.
	if got := StageLatency([]float64{0.01, 0.5, 0.2}); got != 0.5 {
		t.Fatalf("stage latency = %v, want 0.5", got)
	}
	if got := StageLatency(nil); got != 0 {
		t.Fatalf("empty stage latency = %v", got)
	}
}

func TestOverallLatencyIsSum(t *testing.T) {
	// Eq. 4.
	if got := OverallLatency([]float64{0.01, 0.02, 0.03}); math.Abs(got-0.06) > 1e-12 {
		t.Fatalf("overall = %v, want 0.06", got)
	}
	if OverallLatency(nil) != 0 {
		t.Fatal("empty overall should be 0")
	}
}

func TestQueueModelStrings(t *testing.T) {
	if MG1.String() != "M/G/1" || MM1.String() != "M/M/1" || NoQueue.String() != "no-queue" {
		t.Fatal("queue model names wrong")
	}
	if QueueModel(9).String() == "" {
		t.Fatal("unknown model should format")
	}
}
