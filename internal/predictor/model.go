// Package predictor implements the paper's performance predictor (§IV):
//
//   - The basic model (§IV-A): one regression RG(Usr) per shared resource
//     relating that resource's contention metric to the component's service
//     time, combined into RGST(U) by relevance-weighted averaging (Eq. 1).
//   - The extended model (§IV-B): M/G/1 expected latency per component
//     (Eq. 2), stage latency as the max over parallel components (Eq. 3),
//     and overall service latency as the sum over sequential stages (Eq. 4).
//   - The performance matrix (§IV-C): L[i][j] = predicted reduction in
//     overall latency if component ci migrates to node nj, using the
//     contention-vector update rules of Table III and Eq. 5, with the
//     incremental post-migration update of Algorithm 2.
package predictor

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/stats"
)

// Sample is one profiling observation: the contention vector a component
// experienced and the mean service time measured under it. The paper
// obtains these from profiling runs or historical logs.
type Sample struct {
	U cluster.Vector
	X float64 // mean service time in seconds
}

// ServiceTimeModel is the combined regression RGST(U) of Eq. 1: a weighted
// average of per-resource regressions, where each weight w_sr is the
// relevance (R² on the training set) of that resource's contention metric
// to the observed service time.
type ServiceTimeModel struct {
	// Regs holds one regression per shared resource; entries may be nil
	// when the training data had no variation in that metric.
	Regs [cluster.NumResources]*stats.PolyRegression
	// Weights holds w_sr per resource (R² of the corresponding regression).
	Weights [cluster.NumResources]float64
	// FallbackMean is the mean training service time, used when every
	// weight is zero (degenerate training set).
	FallbackMean float64
}

// ErrNoSamples is returned when training is attempted with no samples.
var ErrNoSamples = errors.New("predictor: no training samples")

// Train fits the per-resource regressions on the sample set and computes
// their relevance weights. degree is the polynomial degree of each RG
// (degree 2 captures the convex core-saturation effect; degree 1 is plain
// linear regression).
func Train(samples []Sample, degree int) (*ServiceTimeModel, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	if degree < 1 {
		return nil, fmt.Errorf("predictor: degree must be >= 1, got %d", degree)
	}
	m := &ServiceTimeModel{}
	ys := make([]float64, len(samples))
	for i, s := range samples {
		ys[i] = s.X
	}
	m.FallbackMean = stats.Mean(ys)

	xs := make([]float64, len(samples))
	for r := 0; r < cluster.NumResources; r++ {
		for i, s := range samples {
			xs[i] = s.U[r]
		}
		reg, err := stats.FitPoly(xs, ys, degree)
		if err != nil {
			// A metric with no variation (or too few samples) simply
			// carries no relevance weight.
			continue
		}
		m.Regs[r] = reg
		m.Weights[r] = reg.R2
	}
	return m, nil
}

// Predict evaluates RGST(U) (Eq. 1): the relevance-weighted average of the
// per-resource regressions. The result is clamped to a small positive
// floor; a regression extrapolating below zero would otherwise poison the
// queueing model.
func (m *ServiceTimeModel) Predict(u cluster.Vector) float64 {
	var num, den float64
	for r := 0; r < cluster.NumResources; r++ {
		if m.Regs[r] == nil || m.Weights[r] == 0 {
			continue
		}
		num += m.Weights[r] * m.Regs[r].Predict(u[r])
		den += m.Weights[r]
	}
	var x float64
	if den == 0 {
		x = m.FallbackMean
	} else {
		x = num / den
	}
	if x < 1e-9 || math.IsNaN(x) {
		x = 1e-9
	}
	return x
}

// PredictStats maps a window of contention samples through the model and
// returns the mean and variance of the predicted service time — the x̄ and
// var(x) inputs of Eq. 2. An empty window yields the fallback mean with
// zero variance.
func (m *ServiceTimeModel) PredictStats(window []cluster.Vector) (mean, variance float64) {
	if len(window) == 0 {
		return m.FallbackMean, 0
	}
	var w stats.Welford
	for _, u := range window {
		w.Add(m.Predict(u))
	}
	return w.Mean(), w.Variance()
}
