package predictor

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ComponentState is the predictor's view of one component: its stage (which
// selects the trained service-time model), its current node, and its own
// resource demand U_ci (Table III's migration quantum).
type ComponentState struct {
	Stage  int
	Node   int
	Demand cluster.Vector
}

// MatrixInput carries everything needed to build the performance matrix at
// a scheduling interval: the monitored per-node contention windows, the
// monitored arrival rate, and the trained per-stage models.
type MatrixInput struct {
	Components []ComponentState
	NumStages  int
	NumNodes   int
	// NodeSamples[n] is the monitor's window of contention samples for
	// node n; each sample includes the demand of every program currently
	// hosted there (components and batch jobs alike).
	NodeSamples [][]cluster.Vector
	// Lambda is the monitored request arrival rate (every component of a
	// fan-out service sees the full rate).
	Lambda float64
	// Models holds the trained service-time model per stage.
	Models []*ServiceTimeModel
	Queue  QueueModel
	Params LatencyParams
	// Pool, when non-nil, shards matrix construction and the Algorithm 2
	// incremental updates across its workers. Entries are pure functions of
	// state frozen at each barrier and land in disjoint row slots, so the
	// matrix — and every scheduling decision derived from it — is
	// bit-identical at any shard count. A nil Pool evaluates inline.
	Pool *shard.Pool
}

func (in *MatrixInput) validate() error {
	if len(in.Components) == 0 {
		return fmt.Errorf("predictor: no components")
	}
	if in.NumNodes <= 0 || len(in.NodeSamples) != in.NumNodes {
		return fmt.Errorf("predictor: node samples (%d) must cover all %d nodes",
			len(in.NodeSamples), in.NumNodes)
	}
	if len(in.Models) < in.NumStages {
		return fmt.Errorf("predictor: %d models for %d stages", len(in.Models), in.NumStages)
	}
	for i, c := range in.Components {
		if c.Stage < 0 || c.Stage >= in.NumStages {
			return fmt.Errorf("predictor: component %d has stage %d outside [0,%d)", i, c.Stage, in.NumStages)
		}
		if c.Node < 0 || c.Node >= in.NumNodes {
			return fmt.Errorf("predictor: component %d on node %d outside [0,%d)", i, c.Node, in.NumNodes)
		}
		if in.Models[c.Stage] == nil {
			return fmt.Errorf("predictor: no model for stage %d", c.Stage)
		}
	}
	return nil
}

// Matrix is the m×k performance matrix L of §IV-C. Entry L[i][j] is the
// predicted reduction in overall service latency if component ci migrates
// from its current node to node nj (Eq. 5); SelfGain[i][j] is the reduction
// in ci's own latency, used for Algorithm 1's tie-break.
//
// The matrix tracks a virtual allocation: Migrate commits a migration
// within the scheduling round and incrementally updates the affected
// entries per Algorithm 2, without waiting for the physical migration.
type Matrix struct {
	in MatrixInput

	alloc     []int        // virtual allocation A[m]
	delta     [][4]float64 // per-node signed demand adjustment from virtual moves
	nodeComps [][]int      // node -> component indices under alloc
	cur       []float64    // current predicted latency per component
	stageLat  []float64    // Eq. 3 per stage
	overall   float64      // Eq. 4
	stageOf   [][]int      // stage -> member component indices
	removed   []bool       // rows frozen after their component migrated

	// L and SelfGain are exposed read-only to the scheduler.
	L        [][]float64
	SelfGain [][]float64

	// scratches holds one entry-evaluation scratch per pool shard (slot 0
	// doubles as the sequential scratch); computeEntry runs concurrently
	// across rows during fills, so every shard needs private override
	// state.
	scratches []*scratch
}

// scratch is the per-shard workspace of computeEntry: the latency
// overrides a hypothetical migration imposes on co-hosted components.
type scratch struct {
	overrideIdx []int
	overrideVal []float64
	overrideSet []int // epoch marker per component
	epoch       int
}

func newScratch(m int) *scratch {
	return &scratch{
		overrideIdx: make([]int, 0, 64),
		overrideVal: make([]float64, m),
		overrideSet: make([]int, m),
	}
}

func (sc *scratch) set(h int, v float64) {
	if sc.overrideSet[h] != sc.epoch {
		sc.overrideIdx = append(sc.overrideIdx, h)
		sc.overrideSet[h] = sc.epoch
	}
	sc.overrideVal[h] = v
}

// BuildMatrix constructs the matrix: current latencies for every component
// (Eq. 1→2), stage and overall latencies (Eq. 3–4), then every entry
// L[i][j] via the Table III contention updates.
func BuildMatrix(in MatrixInput) (*Matrix, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	m := len(in.Components)
	k := in.NumNodes
	mat := &Matrix{
		in:        in,
		alloc:     make([]int, m),
		delta:     make([][4]float64, k),
		nodeComps: make([][]int, k),
		cur:       make([]float64, m),
		stageLat:  make([]float64, in.NumStages),
		stageOf:   make([][]int, in.NumStages),
		removed:   make([]bool, m),
		L:         make([][]float64, m),
		SelfGain:  make([][]float64, m),
		scratches: make([]*scratch, in.Pool.Shards()),
	}
	for s := range mat.scratches {
		mat.scratches[s] = newScratch(m)
	}
	for i, c := range in.Components {
		mat.alloc[i] = c.Node
		mat.nodeComps[c.Node] = append(mat.nodeComps[c.Node], i)
		mat.stageOf[c.Stage] = append(mat.stageOf[c.Stage], i)
	}
	// Every per-component latency is a pure function of the frozen input
	// (samples, models, allocation), written to its own slot — shardable.
	in.Pool.Run(m, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			mat.cur[i] = mat.latencyOn(i, mat.alloc[i], negv(in.Components[i].Demand))
		}
	})
	mat.refreshStageLatencies()

	for i := 0; i < m; i++ {
		mat.L[i] = make([]float64, k)
		mat.SelfGain[i] = make([]float64, k)
	}
	// Entry fill: each shard owns a contiguous row range and its private
	// scratch; entries read only barrier-frozen state (cur, stageLat,
	// delta, the input) and write their own L/SelfGain cells.
	in.Pool.Run(m, func(s, lo, hi int) {
		sc := mat.scratches[s]
		for i := lo; i < hi; i++ {
			for j := 0; j < k; j++ {
				mat.computeEntry(i, j, sc)
			}
		}
	})
	return mat, nil
}

// --- small signed-vector helpers (cluster.Vector clamps on Sub, which is
// right for node accounting but wrong for the matrix's signed deltas) ---

type vec4 = [4]float64

func negv(v cluster.Vector) vec4 {
	return vec4{-v[0], -v[1], -v[2], -v[3]}
}

func addv(a vec4, v cluster.Vector, sign float64) vec4 {
	for i := 0; i < 4; i++ {
		a[i] += sign * v[i]
	}
	return a
}

// latencyOn predicts component i's expected latency if its background were
// node `node`'s sample window shifted by the virtual delta plus `adj`
// (signed). Each shifted sample is clamped at zero before entering the
// regression, mirroring that real contention metrics are non-negative.
func (mat *Matrix) latencyOn(i, node int, adj vec4) float64 {
	cs := mat.in.Components[i]
	model := mat.in.Models[cs.Stage]
	samples := mat.in.NodeSamples[node]
	d := mat.delta[node]
	var w stats.Welford
	for _, s := range samples {
		var bg cluster.Vector
		for r := 0; r < cluster.NumResources; r++ {
			x := s[r] + d[r] + adj[r]
			if x < 0 {
				x = 0
			}
			bg[r] = x
		}
		w.Add(model.Predict(bg))
	}
	var meanX, varX float64
	if w.N() == 0 {
		meanX, varX = model.FallbackMean, 0
	} else {
		meanX, varX = w.Mean(), w.Variance()
	}
	return ExpectedLatency(mat.in.Queue, meanX, varX, mat.in.Lambda, mat.in.Params)
}

// refreshStageLatencies recomputes Eq. 3 per stage and Eq. 4 overall from
// the cached per-component latencies.
func (mat *Matrix) refreshStageLatencies() {
	for s, members := range mat.stageOf {
		max := 0.0
		for _, i := range members {
			if mat.cur[i] > max {
				max = mat.cur[i]
			}
		}
		mat.stageLat[s] = max
	}
	mat.overall = OverallLatency(mat.stageLat)
}

// computeEntry fills L[i][j] and SelfGain[i][j]: the hypothetical world
// where ci sits on nj, with the Table III contention updates applied to
// every component on ci's origin and destination nodes. sc is the calling
// shard's private scratch; everything else it touches is read-only during
// a parallel fill except the (i, j) cells themselves.
func (mat *Matrix) computeEntry(i, j int, sc *scratch) {
	a := mat.alloc[i]
	if j == a {
		mat.L[i][j] = 0
		mat.SelfGain[i][j] = 0
		return
	}
	di := mat.in.Components[i].Demand
	sc.epoch++
	sc.overrideIdx = sc.overrideIdx[:0]

	// ci itself: U' = U_nj (Table III row 1).
	li := mat.latencyOn(i, j, vec4{})
	sc.set(i, li)

	// Components remaining on the origin node: U' = U − U_ci.
	for _, h := range mat.nodeComps[a] {
		if h == i {
			continue
		}
		adj := negv(mat.in.Components[h].Demand)
		adj = addv(adj, di, -1)
		sc.set(h, mat.latencyOn(h, a, adj))
	}
	// Components already on the destination node: U' = U + U_ci.
	for _, h := range mat.nodeComps[j] {
		adj := negv(mat.in.Components[h].Demand)
		adj = addv(adj, di, +1)
		sc.set(h, mat.latencyOn(h, j, adj))
	}

	// Eq. 3–4 with overrides; only stages containing changed components
	// can change.
	overall := 0.0
	for s, members := range mat.stageOf {
		affected := false
		for _, h := range sc.overrideIdx {
			if mat.in.Components[h].Stage == s {
				affected = true
				break
			}
		}
		if !affected {
			overall += mat.stageLat[s]
			continue
		}
		max := 0.0
		for _, h := range members {
			v := mat.cur[h]
			if sc.overrideSet[h] == sc.epoch {
				v = sc.overrideVal[h]
			}
			if v > max {
				max = v
			}
		}
		overall += max
	}

	mat.L[i][j] = mat.overall - overall // Eq. 5
	mat.SelfGain[i][j] = mat.cur[i] - li
}

// NumComponents returns m.
func (mat *Matrix) NumComponents() int { return len(mat.in.Components) }

// NumNodes returns k.
func (mat *Matrix) NumNodes() int { return mat.in.NumNodes }

// Allocation returns the current virtual allocation (A[m]). Callers must
// not mutate it.
func (mat *Matrix) Allocation() []int { return mat.alloc }

// Removed reports whether component i has already migrated this round.
func (mat *Matrix) Removed(i int) bool { return mat.removed[i] }

// CurrentOverall returns the predicted overall service latency under the
// current virtual allocation.
func (mat *Matrix) CurrentOverall() float64 { return mat.overall }

// ComponentLatency returns the predicted latency of component i under the
// current virtual allocation.
func (mat *Matrix) ComponentLatency(i int) float64 { return mat.cur[i] }

// Best scans the matrix for the entry with the largest predicted overall
// reduction among non-removed components (Algorithm 1 line 6), breaking
// ties by the migrated component's own latency reduction (line 7). ok is
// false when no candidate rows remain.
func (mat *Matrix) Best() (comp, node int, gain float64, ok bool) {
	const tie = 1e-12
	comp, node = -1, -1
	for i := range mat.L {
		if mat.removed[i] {
			continue
		}
		for j := range mat.L[i] {
			if j == mat.alloc[i] {
				continue
			}
			v := mat.L[i][j]
			switch {
			case comp == -1 || v > gain+tie:
				comp, node, gain = i, j, v
			case v > gain-tie && mat.SelfGain[i][j] > mat.SelfGain[comp][node]:
				comp, node, gain = i, j, v
			}
		}
	}
	return comp, node, gain, comp >= 0
}

// Migrate commits ci → nj in the virtual allocation, removes ci from the
// candidate set, and applies Algorithm 2's incremental update: the origin
// and destination columns are recomputed for every remaining row, and the
// full rows of remaining components hosted on either node are recomputed.
func (mat *Matrix) Migrate(i, j int) {
	a := mat.alloc[i]
	if a == j {
		mat.removed[i] = true
		return
	}
	di := mat.in.Components[i].Demand

	// Commit the virtual move.
	mat.alloc[i] = j
	mat.nodeComps[a] = removeInt(mat.nodeComps[a], i)
	mat.nodeComps[j] = append(mat.nodeComps[j], i)
	mat.delta[a] = addv(mat.delta[a], di, -1)
	mat.delta[j] = addv(mat.delta[j], di, +1)
	mat.removed[i] = true

	// Refresh the cached current latencies of everything on the two
	// touched nodes (including the migrated component), then Eq. 3–4.
	for _, n := range [2]int{a, j} {
		for _, h := range mat.nodeComps[n] {
			mat.cur[h] = mat.latencyOn(h, n, negv(mat.in.Components[h].Demand))
		}
	}
	mat.refreshStageLatencies()

	// Algorithm 2's incremental update, one barrier region over a
	// canonical row worklist: rows hosted on a touched node recompute all
	// their columns (line 7–10), every other live row just the origin and
	// destination columns (line 1–5). Each row belongs to exactly one
	// shard, entries read only the state committed above, and a full-row
	// recompute subsumes the two-column one, so the sharded fill lands the
	// same floats the sequential loops did.
	onTouched := make([]bool, len(mat.L))
	for _, n := range [2]int{a, j} {
		for _, h := range mat.nodeComps[n] {
			onTouched[h] = true
		}
	}
	mat.in.Pool.Run(len(mat.L), func(s, lo, hi int) {
		sc := mat.scratches[s]
		for h := lo; h < hi; h++ {
			if mat.removed[h] {
				continue
			}
			if onTouched[h] {
				for v := 0; v < mat.in.NumNodes; v++ {
					mat.computeEntry(h, v, sc)
				}
				continue
			}
			mat.computeEntry(h, a, sc)
			mat.computeEntry(h, j, sc)
		}
	})
}

func removeInt(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
