package predictor

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/xrand"
)

// testMatrixInput builds a small deterministic MatrixInput: m components
// over k nodes with a trained linear model and window samples that include
// the components' own demands (as a monitor would observe).
func testMatrixInput(t *testing.T, m, k int, lambda float64, seed int64) MatrixInput {
	t.Helper()
	src := xrand.New(seed)
	model, err := Train(syntheticSamples(200, 0.01, seed), 1)
	if err != nil {
		t.Fatal(err)
	}
	demand := cluster.Vector{0.9, 6, 8, 6}
	comps := make([]ComponentState, m)
	for i := range comps {
		stage := 1
		if i == 0 {
			stage = 0
		} else if i == m-1 {
			stage = 2
		}
		comps[i] = ComponentState{Stage: stage, Node: src.Intn(k), Demand: demand}
	}
	cap := cluster.DefaultCapacity()
	nodeSamples := make([][]cluster.Vector, k)
	for n := 0; n < k; n++ {
		base := cap.Scale(0.1 + 0.6*src.Float64())
		win := make([]cluster.Vector, 6)
		for w := range win {
			v := base
			for r := 0; r < cluster.NumResources; r++ {
				v[r] *= src.LogNormalMean(1, 0.03)
			}
			win[w] = v
		}
		nodeSamples[n] = win
	}
	for _, c := range comps {
		for w := range nodeSamples[c.Node] {
			nodeSamples[c.Node][w] = nodeSamples[c.Node][w].Add(c.Demand)
		}
	}
	return MatrixInput{
		Components:  comps,
		NumStages:   3,
		NumNodes:    k,
		NodeSamples: nodeSamples,
		Lambda:      lambda,
		Models:      []*ServiceTimeModel{model, model, model},
		Queue:       MG1,
		Params:      DefaultLatencyParams(),
	}
}

func TestBuildMatrixValidation(t *testing.T) {
	in := testMatrixInput(t, 4, 3, 50, 1)

	bad := in
	bad.Components = nil
	if _, err := BuildMatrix(bad); err == nil {
		t.Error("empty components accepted")
	}

	bad = in
	bad.NodeSamples = bad.NodeSamples[:1]
	if _, err := BuildMatrix(bad); err == nil {
		t.Error("short node samples accepted")
	}

	bad = in
	bad.Components = append([]ComponentState(nil), in.Components...)
	bad.Components[0].Node = 99
	if _, err := BuildMatrix(bad); err == nil {
		t.Error("out-of-range node accepted")
	}

	bad = in
	bad.Components = append([]ComponentState(nil), in.Components...)
	bad.Components[0].Stage = -1
	if _, err := BuildMatrix(bad); err == nil {
		t.Error("negative stage accepted")
	}

	bad = in
	bad.Models = []*ServiceTimeModel{nil, nil, nil}
	if _, err := BuildMatrix(bad); err == nil {
		t.Error("nil models accepted")
	}
}

func TestMatrixDiagonalIsZero(t *testing.T) {
	in := testMatrixInput(t, 6, 4, 50, 2)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range in.Components {
		if mat.L[i][c.Node] != 0 {
			t.Fatalf("L[%d][current node] = %v, want 0", i, mat.L[i][c.Node])
		}
	}
}

func TestMatrixEq5Consistency(t *testing.T) {
	// L[i][j] must equal loverall − l'overall where l'overall is the
	// overall latency of a fresh matrix built with ci moved to nj
	// (Table III applied from scratch).
	in := testMatrixInput(t, 5, 3, 80, 3)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	before := mat.CurrentOverall()
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if j == in.Components[i].Node {
				continue
			}
			// Fresh world: move ci to nj. The node samples still reflect
			// the ORIGINAL placement (they're monitor readings), so the
			// fresh build must model the move the same way the entry
			// does: via the delta mechanism. We emulate it by building
			// the original matrix and committing the migration.
			mat2, err := BuildMatrix(in)
			if err != nil {
				t.Fatal(err)
			}
			mat2.Migrate(i, j)
			after := mat2.CurrentOverall()
			want := before - after
			if math.Abs(mat.L[i][j]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("L[%d][%d] = %v, want %v (before=%v after=%v)",
					i, j, mat.L[i][j], want, before, after)
			}
		}
	}
}

func TestMatrixTableIIIDirections(t *testing.T) {
	// Build a 2-node world: node 0 heavily contended, node 1 quiet. A
	// component on node 0 must predict a positive self-gain when moved to
	// node 1, and the move must increase the predicted latency of
	// components already on node 1.
	model, err := Train(syntheticSamples(200, 0.01, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	demand := cluster.Vector{0.9, 6, 8, 6}
	cap := cluster.DefaultCapacity()
	hot := cap.Scale(0.7).Add(demand)
	cold := cap.Scale(0.05).Add(demand)
	in := MatrixInput{
		Components: []ComponentState{
			{Stage: 0, Node: 0, Demand: demand},
			{Stage: 0, Node: 1, Demand: demand},
		},
		NumStages:   1,
		NumNodes:    2,
		NodeSamples: [][]cluster.Vector{{hot, hot}, {cold, cold}},
		Lambda:      50,
		Models:      []*ServiceTimeModel{model},
		Queue:       MG1,
		Params:      DefaultLatencyParams(),
	}
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	if mat.SelfGain[0][1] <= 0 {
		t.Fatalf("moving off the hot node should cut the component's own latency, self gain = %v",
			mat.SelfGain[0][1])
	}
	// The component already on the cold node gets more contention after
	// the move: its latency in the hypothetical world rises, which caps
	// the overall gain below the mover's self gain.
	if mat.L[0][1] > mat.SelfGain[0][1]+1e-12 {
		t.Fatalf("overall gain %v exceeds self gain %v", mat.L[0][1], mat.SelfGain[0][1])
	}
	// And the reverse move (cold → hot) must look bad for the mover.
	if mat.SelfGain[1][0] >= 0 {
		t.Fatalf("moving onto the hot node should raise latency, self gain = %v", mat.SelfGain[1][0])
	}
}

func TestMatrixMigrateUpdatesAllocation(t *testing.T) {
	in := testMatrixInput(t, 4, 3, 50, 5)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	from := mat.Allocation()[2]
	to := (from + 1) % 3
	mat.Migrate(2, to)
	if mat.Allocation()[2] != to {
		t.Fatalf("allocation not updated: %v", mat.Allocation())
	}
	if !mat.Removed(2) {
		t.Fatal("migrated component not removed from candidates")
	}
}

func TestMatrixMigrateToSameNodeJustRemoves(t *testing.T) {
	in := testMatrixInput(t, 4, 3, 50, 6)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	node := mat.Allocation()[1]
	before := mat.CurrentOverall()
	mat.Migrate(1, node)
	if !mat.Removed(1) {
		t.Fatal("component not removed")
	}
	if mat.CurrentOverall() != before {
		t.Fatal("no-op migration changed predicted overall")
	}
}

func TestMatrixIncrementalUpdateMatchesRebuild(t *testing.T) {
	// After Migrate, the entries Algorithm 2 updates (origin/destination
	// columns and rows of components on the touched nodes) must equal a
	// from-scratch rebuild under the new virtual allocation.
	in := testMatrixInput(t, 6, 4, 60, 7)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	i, j, _, ok := mat.Best()
	if !ok {
		t.Fatal("no best entry")
	}
	from := mat.Allocation()[i]
	mat.Migrate(i, j)

	// Rebuild from scratch with the same virtual move applied.
	ref, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	ref.Migrate(i, j)

	if math.Abs(mat.CurrentOverall()-ref.CurrentOverall()) > 1e-12 {
		t.Fatalf("overall after migrate: incremental %v vs rebuild %v",
			mat.CurrentOverall(), ref.CurrentOverall())
	}
	// Column entries for the touched nodes.
	for h := 0; h < 6; h++ {
		if mat.Removed(h) {
			continue
		}
		for _, col := range []int{from, j} {
			if math.Abs(mat.L[h][col]-ref.L[h][col]) > 1e-9 {
				t.Fatalf("L[%d][%d]: incremental %v vs rebuild %v", h, col, mat.L[h][col], ref.L[h][col])
			}
		}
	}
	// Full rows of candidates on touched nodes.
	for h := 0; h < 6; h++ {
		if mat.Removed(h) {
			continue
		}
		n := mat.Allocation()[h]
		if n != from && n != j {
			continue
		}
		for v := 0; v < 4; v++ {
			if math.Abs(mat.L[h][v]-ref.L[h][v]) > 1e-9 {
				t.Fatalf("row %d col %d: incremental %v vs rebuild %v", h, v, mat.L[h][v], ref.L[h][v])
			}
		}
	}
}

func TestMatrixBestTieBreakUsesSelfGain(t *testing.T) {
	in := testMatrixInput(t, 5, 3, 50, 8)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	i, j, gain, ok := mat.Best()
	if !ok {
		t.Fatal("no best")
	}
	// Everything tied with the winner must have self gain ≤ winner's.
	for a := range mat.L {
		if mat.Removed(a) {
			continue
		}
		for b := range mat.L[a] {
			if b == mat.Allocation()[a] {
				continue
			}
			if math.Abs(mat.L[a][b]-gain) < 1e-12 && mat.SelfGain[a][b] > mat.SelfGain[i][j]+1e-12 {
				t.Fatalf("tie (%d,%d) has larger self gain %v than winner %v",
					a, b, mat.SelfGain[a][b], mat.SelfGain[i][j])
			}
		}
	}
}

func TestMatrixBestExhaustsCandidates(t *testing.T) {
	in := testMatrixInput(t, 4, 3, 50, 9)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		i, j, _, ok := mat.Best()
		if !ok {
			t.Fatalf("Best failed with %d candidates left", 4-n)
		}
		mat.Migrate(i, j)
	}
	if _, _, _, ok := mat.Best(); ok {
		t.Fatal("Best should report no candidates after all removed")
	}
}

func TestMatrixComponentLatencyPositive(t *testing.T) {
	in := testMatrixInput(t, 6, 4, 100, 10)
	mat, err := BuildMatrix(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Components {
		if l := mat.ComponentLatency(i); l <= 0 || math.IsNaN(l) {
			t.Fatalf("component %d latency = %v", i, l)
		}
	}
	if mat.CurrentOverall() <= 0 {
		t.Fatalf("overall = %v", mat.CurrentOverall())
	}
	if mat.NumComponents() != 6 || mat.NumNodes() != 4 {
		t.Fatal("dimensions wrong")
	}
}
