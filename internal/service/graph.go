package service

import "math"

// This file is the runtime half of the service-graph layer: the compiled
// GraphPlan a deployment executes, and the visit-based request flow that
// replaces the linear stage walk when a plan is configured. The pure-data
// authoring surface (graph.Spec) lives in internal/graph and compiles to
// these types, keeping the import direction service ← graph.
//
// Execution model: a request starts one visit per entry node. A visit is
// one call to a node — it fans a sub-request out to every component of the
// node's stage (the existing stage semantics, so dispatch policies,
// redundancy and reissue compose unchanged) and succeeds when all of them
// answer. A successful visit then follows the node's out-edges
// independently: each edge fires with its branching probability, sync
// edges add to the request's outstanding-call count, async edges are fire
// and forget (and everything downstream of them inherits async-ness). A
// visit fails by timing out or by a tripped breaker fast-failing it; a
// failed visit retries its edge with exponential backoff until the edge's
// retry budget is spent, after which the request itself fails (timed out
// or failed, by the kind of the last attempt) — unless the visit was
// async, in which case the failure is swallowed like a dropped
// notification. The request completes when its outstanding sync calls
// drain to zero.
//
// Affinity discipline in laned mode: every decision here — edge draws,
// breaker state, retry timers, outcome accounting — runs in root-class
// context, exactly like the linear path's bookkeeping, so graph runs are
// lane-count invariant for the same reason stage runs are. The only
// cross-class traffic a graph adds is timeout cancellation, which reuses
// the unconditional cancel-message relay the redundancy policies already
// use: the root never reads queue state it doesn't own.

// GraphPlan is the compiled, executable form of a service DAG. Plans are
// built by graph.Spec.Plan — construct them there, not by hand — and
// configured through Config.Graph; node i of the plan executes on stage i
// of the deployment's topology.
type GraphPlan struct {
	// Name identifies the graph (the spec's name) in errors.
	Name string
	// Nodes are the graph's nodes in topology-stage order.
	Nodes []GraphNode
	// Entries are indices of the nodes every request starts at (the
	// spec's in-degree-zero nodes).
	Entries []int
}

// GraphNode is one compiled DAG node: failure semantics plus out-edges for
// the stage it executes on.
type GraphNode struct {
	// Name is the node's (and stage's) name.
	Name string
	// Timeout is the visit deadline in seconds; 0 means no timeout. A
	// visit that misses it fails, cancels its still-queued executions and
	// counts against the node's breaker.
	Timeout float64
	// Breaker, when non-nil, fast-fails visits while the node's circuit
	// is open.
	Breaker *GraphBreaker
	// Storage, when non-nil, makes the node a storage backend: each
	// sub-request's nominal work is drawn per-operation (write, cache hit
	// or miss) instead of using the stage's base service time.
	Storage *GraphStorage
	// Calls are the node's out-edges, followed when a visit succeeds.
	Calls []GraphCall
}

// GraphCall is one compiled out-edge of a DAG node.
type GraphCall struct {
	// To is the callee's node index.
	To int
	// Prob is the branching probability in (0, 1]; 1 always calls.
	Prob float64
	// Async marks a fire-and-forget call: the request does not wait for
	// it, and failures below it never fail the request.
	Async bool
	// Retries is how many times a failed visit over this edge is retried
	// before the failure propagates.
	Retries int
	// Backoff is the delay in seconds before retry attempt 1; attempt k
	// waits Backoff·2^(k-1) (exponential backoff).
	Backoff float64
}

// GraphBreaker is a compiled per-node circuit breaker: trip after
// Failures consecutive visit failures, fast-fail while open, allow one
// half-open probe per Cooldown.
type GraphBreaker struct {
	// Failures is the consecutive-failure count that opens the circuit.
	Failures int
	// Cooldown is the seconds an open circuit waits before admitting a
	// half-open probe visit.
	Cooldown float64
}

// GraphStorage is a compiled storage backend profile. Each sub-request
// dispatched to the node draws its operation in root context: a write
// with probability WriteFraction, otherwise a read that hits the cache
// tier with probability HitRatio.
type GraphStorage struct {
	// HitRatio is the cache hit probability of a read in [0, 1].
	HitRatio float64
	// HitTime and MissTime are the nominal service times in seconds of a
	// cache read and of a read that falls through to the backing store.
	HitTime  float64
	MissTime float64
	// WriteFraction is the probability an operation is a write, in [0, 1).
	WriteFraction float64
	// WriteTime is the nominal service time in seconds of a write.
	WriteTime float64
}

// ExpectedServiceTime is the mean nominal service time of one storage
// operation under the profile's read/write and hit/miss mix — what the
// stage's base service time is set to, so profiling and reissue estimates
// see the true mean work.
func (st *GraphStorage) ExpectedServiceTime() float64 {
	read := st.HitRatio*st.HitTime + (1-st.HitRatio)*st.MissTime
	return st.WriteFraction*st.WriteTime + (1-st.WriteFraction)*read
}

// GraphStats are the failure-semantics counters a graph run accumulates,
// all maintained in root-class context.
type GraphStats struct {
	// Retries counts retry attempts issued after visit failures.
	Retries int
	// BreakerTrips counts closed→open transitions; BreakerFastFails
	// counts visits an open circuit rejected without dispatching.
	BreakerTrips     int
	BreakerFastFails int
	// CacheHits, CacheMisses and StorageWrites count storage-node
	// operations by kind.
	CacheHits     int
	CacheMisses   int
	StorageWrites int
	// AsyncCalls counts fire-and-forget edge activations; AsyncFailures
	// counts async visits whose retry budget ran out (swallowed, never
	// failing the request).
	AsyncCalls    int
	AsyncFailures int
}

// reqOutcome is a request's terminal disposition under graph execution.
type reqOutcome int

const (
	outcomePending reqOutcome = iota
	outcomeCompleted
	outcomeFailed
	outcomeTimedOut
)

// graphReq is the per-request graph bookkeeping, allocated only when the
// deployment runs a plan.
type graphReq struct {
	// pendingSync counts outstanding synchronous visits (entries plus
	// followed sync edges). The request completes when it drains to zero.
	pendingSync int
	// outcome latches the request's disposition; once terminal, surviving
	// branches are abandoned (they stop propagating on their next event).
	outcome reqOutcome
}

// graphVisit is one call to a DAG node: a fan-out to the node's stage
// components plus the failure bookkeeping around it.
type graphVisit struct {
	req  *Request
	node int
	// call is the edge that spawned the visit (nil for entry visits — the
	// virtual client edge, which has no retry budget).
	call    *GraphCall
	attempt int
	async   bool

	pending int // sub-requests outstanding
	done    bool
	dead    bool // timed out or fast-failed; late completions are ignored
	subs    []*SubRequest
}

// breakerState is the root-owned runtime state of one node's circuit.
type breakerState struct {
	open        bool
	probing     bool
	consecFails int
	reopenAt    float64
}

// GraphPlanned reports whether the deployment executes a service DAG.
func (s *Service) GraphPlanned() bool { return s.graph != nil }

// Failed reports how many requests terminated with a non-timeout failure
// (breaker fast-fail or exhausted retries on a failed visit).
func (s *Service) Failed() int { return s.failed }

// TimedOut reports how many requests terminated because a visit's retry
// budget drained on timeouts.
func (s *Service) TimedOut() int { return s.timedOut }

// GraphStats returns the run's accumulated graph counters (zero value for
// non-graph deployments).
func (s *Service) GraphStats() GraphStats { return s.graphStats }

// graphStart launches a request onto the plan: one sync visit per entry
// node.
func (s *Service) graphStart(r *Request, now float64) {
	r.gr = &graphReq{}
	for _, n := range s.graph.Entries {
		r.gr.pendingSync++
		s.startVisit(r, n, nil, 0, false, now)
	}
}

// startVisit performs one call to a node: breaker admission, sub-request
// fan-out to the node's stage components through the active dispatch
// policy, and the timeout timer. Always runs in root-class context.
func (s *Service) startVisit(r *Request, node int, call *GraphCall, attempt int, async bool, now float64) {
	n := &s.graph.Nodes[node]
	v := &graphVisit{req: r, node: node, call: call, attempt: attempt, async: async}
	if n.Breaker != nil && !s.breakerAllow(node, now) {
		s.graphStats.BreakerFastFails++
		s.visitFailed(v, outcomeFailed, now)
		return
	}
	comps := s.stageComponents[node]
	v.pending = len(comps)
	v.subs = make([]*SubRequest, 0, len(comps))
	for _, c := range comps {
		sub := &SubRequest{Req: r, Comp: c, IssuedAt: now, visit: v}
		if n.Storage != nil {
			sub.baseOverride = s.drawStorageTime(n.Storage)
		}
		v.subs = append(v.subs, sub)
		s.policy.Dispatch(s, sub, now)
	}
	if n.Timeout > 0 {
		s.AfterData(now, n.Timeout, func(tnow float64) { s.visitTimeout(v, tnow) })
	}
}

// drawStorageTime draws one storage operation's nominal service time (and
// counts it). Draws happen at dispatch in root context, so their order —
// and therefore the run's whole draw sequence — is a pure function of the
// root event order, identical at any lane or shard count.
func (s *Service) drawStorageTime(st *GraphStorage) float64 {
	if st.WriteFraction > 0 && s.graphRNG.Float64() < st.WriteFraction {
		s.graphStats.StorageWrites++
		return st.WriteTime
	}
	if s.graphRNG.Float64() < st.HitRatio {
		s.graphStats.CacheHits++
		return st.HitTime
	}
	s.graphStats.CacheMisses++
	return st.MissTime
}

// visitSubDone accounts one answered sub-request of a visit; when the
// fan-out drains, the visit succeeds and its out-edges fire.
func (v *graphVisit) visitSubDone(now float64) {
	if v.dead || v.done {
		return
	}
	v.pending--
	if v.pending > 0 {
		return
	}
	v.done = true
	s := v.req.svc
	s.breakerResult(v.node, true, now)
	s.visitSucceeded(v, now)
}

// visitSucceeded follows a completed visit's out-edges and settles the
// request's sync accounting. A request that already terminated (a parallel
// branch failed it) abandons the subtree: no draws, no new visits.
func (s *Service) visitSucceeded(v *graphVisit, now float64) {
	r := v.req
	if r.gr.outcome != outcomePending {
		return
	}
	n := &s.graph.Nodes[v.node]
	for i := range n.Calls {
		c := &n.Calls[i]
		if c.Prob < 1 && s.graphRNG.Float64() >= c.Prob {
			continue
		}
		async := v.async || c.Async
		if async {
			s.graphStats.AsyncCalls++
		} else {
			r.gr.pendingSync++
		}
		s.startVisit(r, c.To, c, 0, async, now)
	}
	if v.async {
		return
	}
	r.gr.pendingSync--
	if r.gr.pendingSync == 0 {
		r.gr.outcome = outcomeCompleted
		s.completeRequest(r, now)
	}
}

// visitTimeout fires the visit's deadline: if the fan-out hasn't drained,
// the visit dies, its still-queued executions are cancelled (running ones
// finish — timeout messages cannot claw back started work, mirroring the
// cancellation physics), the node's breaker records a failure and the
// edge's retry path takes over.
func (s *Service) visitTimeout(v *graphVisit, now float64) {
	if v.done || v.dead {
		return
	}
	v.dead = true
	for _, sub := range v.subs {
		if sub.done {
			continue
		}
		for _, e := range sub.execs {
			e := e
			if s.lanes != nil {
				// The root can't read queue state owned by another lane;
				// send the cancel unconditionally and let the instance's
				// lane decide, exactly like the redundancy relay.
				s.scheduleData(rootClass, e.Inst.classID(), now+LaneTransitDelay, func(cn float64) {
					e.Inst.cancelQueued(e, cn)
				})
			} else if e.State == ExecQueued {
				e.Inst.cancelQueued(e, now)
			}
		}
	}
	s.breakerResult(v.node, false, now)
	s.visitFailed(v, outcomeTimedOut, now)
}

// visitFailed routes a dead visit: retry the edge with exponential
// backoff while budget remains, otherwise swallow (async) or terminate
// the request with the last attempt's failure kind.
func (s *Service) visitFailed(v *graphVisit, kind reqOutcome, now float64) {
	r := v.req
	if r.gr.outcome != outcomePending {
		return
	}
	if c := v.call; c != nil && v.attempt < c.Retries {
		s.graphStats.Retries++
		delay := c.Backoff * math.Pow(2, float64(v.attempt))
		node, attempt, async := v.node, v.attempt+1, v.async
		s.AfterData(now, delay, func(rnow float64) {
			if r.gr.outcome != outcomePending {
				return // the request died while this retry backed off
			}
			s.startVisit(r, node, c, attempt, async, rnow)
		})
		return
	}
	if v.async {
		s.graphStats.AsyncFailures++
		return
	}
	r.gr.outcome = kind
	if kind == outcomeTimedOut {
		s.timedOut++
	} else {
		s.failed++
	}
}

// breakerAllow decides whether a visit may dispatch: always while the
// circuit is closed; once per cooldown as the half-open probe while open.
func (s *Service) breakerAllow(node int, now float64) bool {
	b := &s.breakers[node]
	if !b.open {
		return true
	}
	if now >= b.reopenAt && !b.probing {
		b.probing = true
		return true
	}
	return false
}

// breakerResult feeds a visit's real outcome (success or timeout — never
// a fast-fail, which observed nothing) into the node's circuit.
func (s *Service) breakerResult(node int, ok bool, now float64) {
	n := &s.graph.Nodes[node]
	if n.Breaker == nil {
		return
	}
	b := &s.breakers[node]
	if ok {
		b.open, b.probing, b.consecFails = false, false, 0
		return
	}
	b.consecFails++
	if b.probing {
		// Failed probe: straight back to open for another cooldown.
		b.probing = false
		b.reopenAt = now + n.Breaker.Cooldown
		return
	}
	if !b.open && b.consecFails >= n.Breaker.Failures {
		b.open = true
		b.reopenAt = now + n.Breaker.Cooldown
		s.graphStats.BreakerTrips++
	}
}
