package service

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// basicPolicy is a single-dispatch policy for tests (mirrors
// baseline.Basic without the import cycle).
type basicPolicy struct{}

func (basicPolicy) Name() string  { return "test-basic" }
func (basicPolicy) Replicas() int { return 1 }
func (basicPolicy) Dispatch(_ *Service, sub *SubRequest, now float64) {
	sub.IssueTo(sub.Comp.Primary(), now)
}

// fanoutPolicy dispatches to all replicas with cancellation, like RED-k.
type fanoutPolicy struct {
	k     int
	delay float64
}

func (p fanoutPolicy) Name() string  { return "test-fanout" }
func (p fanoutPolicy) Replicas() int { return p.k }
func (p fanoutPolicy) Dispatch(_ *Service, sub *SubRequest, now float64) {
	sub.EnableCancelOnStart(p.delay)
	for _, in := range sub.Comp.Instances {
		sub.IssueTo(in, now)
	}
}

func smallTopology() Topology {
	return Topology{
		Name: "test",
		Stages: []StageSpec{
			{Name: "front", Components: 2, BaseServiceTime: 0.001,
				Demand: cluster.Vector{0.5, 2, 1, 1}},
			{Name: "back", Components: 3, BaseServiceTime: 0.002,
				Demand: cluster.Vector{0.8, 3, 2, 2}},
		},
	}
}

func newTestService(t *testing.T, policy Policy, nodes int) (*Service, *sim.Engine, *cluster.Cluster) {
	t.Helper()
	engine := sim.NewEngine()
	cl := cluster.New(nodes, cluster.DefaultCapacity())
	svc, err := New(engine, cl, xrand.New(1), policy, Config{Topology: smallTopology()})
	if err != nil {
		t.Fatal(err)
	}
	return svc, engine, cl
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Error("empty topology accepted")
	}
	bad := smallTopology()
	bad.Stages[0].Components = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero components accepted")
	}
	bad2 := smallTopology()
	bad2.Stages[1].BaseServiceTime = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero base service time accepted")
	}
	if err := smallTopology().Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
}

func TestTopologyNumComponents(t *testing.T) {
	if got := smallTopology().NumComponents(); got != 5 {
		t.Fatalf("NumComponents = %d, want 5", got)
	}
	if got := NutchTopology(100).NumComponents(); got != 110 {
		t.Fatalf("Nutch components = %d, want 110", got)
	}
	if got := NutchTopology(0).NumComponents(); got != 110 {
		t.Fatalf("Nutch default fan-out = %d, want 110", got)
	}
	if err := EcommerceTopology().Validate(); err != nil {
		t.Errorf("ecommerce topology invalid: %v", err)
	}
}

func TestServicePlacementRoundRobinDistinctReplicas(t *testing.T) {
	svc, _, cl := newTestService(t, fanoutPolicy{k: 3, delay: 0.001}, 6)
	for _, comp := range svc.Components() {
		if len(comp.Instances) != 3 {
			t.Fatalf("component has %d instances, want 3", len(comp.Instances))
		}
		seen := map[int]bool{}
		for _, in := range comp.Instances {
			if seen[in.NodeID()] {
				t.Fatalf("replicas of %v share node %d", comp.Global, in.NodeID())
			}
			seen[in.NodeID()] = true
			if !cl.Node(in.NodeID()).Hosts(in.ProgramID()) {
				t.Fatalf("instance %s not hosted on its node", in.ProgramID())
			}
		}
	}
}

func TestServiceRejectsTooManyReplicas(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(2, cluster.DefaultCapacity())
	_, err := New(engine, cl, xrand.New(1), fanoutPolicy{k: 3}, Config{Topology: smallTopology()})
	if err == nil {
		t.Fatal("3 replicas on 2 nodes accepted")
	}
}

func TestServiceRejectsNilPolicy(t *testing.T) {
	engine := sim.NewEngine()
	cl := cluster.New(2, cluster.DefaultCapacity())
	if _, err := New(engine, cl, xrand.New(1), nil, Config{Topology: smallTopology()}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestRequestWalksAllStages(t *testing.T) {
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	svc.InjectRequest()
	engine.Run(10)
	if svc.Completed() != 1 {
		t.Fatalf("completed = %d", svc.Completed())
	}
	rep := svc.Collector().Report()
	if rep.Requests != 1 {
		t.Fatalf("recorded requests = %d", rep.Requests)
	}
	// All 5 components contributed a winner.
	if rep.Component.N != 5 {
		t.Fatalf("component latencies = %d, want 5", rep.Component.N)
	}
}

func TestOverallLatencyIsSumOfStageMaxima(t *testing.T) {
	// With one request and no queueing, the overall latency must equal
	// the sum over stages of the max sub-request latency (Eq. 3 + Eq. 4
	// realised by the event flow).
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	req := svc.InjectRequest()
	engine.Run(10)

	var stageMax [2]float64
	for _, comp := range svc.Components() {
		in := comp.Primary()
		if in.Served != 1 {
			t.Fatalf("instance served %d, want 1", in.Served)
		}
	}
	_ = req
	rep := svc.Collector().Report()
	// Indirect check: overall ≥ max stage mean and ≤ sum of stage maxes is
	// hard without execution introspection; instead check positivity and
	// that per-stage means populated.
	if rep.AvgOverallMs <= 0 {
		t.Fatal("overall latency not recorded")
	}
	for s, m := range rep.StageMeanMs {
		if m <= 0 {
			t.Fatalf("stage %d mean = %v", s, m)
		}
	}
	_ = stageMax
}

func TestOpenLoopArrivals(t *testing.T) {
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	svc.StartArrivals(100, 200)
	engine.Run(60)
	if svc.Arrivals() != 200 {
		t.Fatalf("arrivals = %d, want 200", svc.Arrivals())
	}
	if svc.Completed() != 200 {
		t.Fatalf("completed = %d, want 200 (light load should drain)", svc.Completed())
	}
}

func TestOnArrivalHook(t *testing.T) {
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	count := 0
	svc.OnArrival = func(float64) { count++ }
	svc.StartArrivals(50, 20)
	engine.Run(10)
	if count != 20 {
		t.Fatalf("OnArrival fired %d times, want 20", count)
	}
}

func TestFIFOQueueing(t *testing.T) {
	// Two requests injected back-to-back at an instance must be served
	// sequentially: the server is busy during the first service.
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	svc.InjectRequest()
	svc.InjectRequest()
	inst := svc.Component(0).Primary()
	if !inst.Busy() {
		t.Fatal("instance should be busy immediately after dispatch")
	}
	if inst.QueueLen() != 1 {
		t.Fatalf("queue length = %d, want 1", inst.QueueLen())
	}
	engine.Run(20)
	if inst.Served != 2 {
		t.Fatalf("served = %d, want 2", inst.Served)
	}
	if inst.Busy() || inst.QueueLen() != 0 {
		t.Fatal("instance should be idle after drain")
	}
}

func TestRedundancyFirstCompletionWins(t *testing.T) {
	svc, engine, _ := newTestService(t, fanoutPolicy{k: 2, delay: 0.0005}, 4)
	svc.InjectRequest()
	engine.Run(10)
	if svc.Completed() != 1 {
		t.Fatalf("completed = %d", svc.Completed())
	}
	// Each component recorded exactly one winner despite 2 executions.
	rep := svc.Collector().Report()
	if rep.Component.N != 5 {
		t.Fatalf("winners = %d, want 5", rep.Component.N)
	}
}

func TestCancellationSkipsQueuedSiblings(t *testing.T) {
	// Load the system so queues form; with cancellation enabled, some
	// queued replicas must be cancelled.
	svc, engine, _ := newTestService(t, fanoutPolicy{k: 2, delay: 0.0001}, 4)
	for i := 0; i < 200; i++ {
		svc.InjectRequest()
	}
	engine.Run(60)
	cancelled := 0
	served := 0
	for _, comp := range svc.Components() {
		for _, in := range comp.Instances {
			cancelled += in.Cancelled
			served += in.Served
		}
	}
	if cancelled == 0 {
		t.Fatal("no executions were cancelled under load")
	}
	// Served + cancelled should cover all executions: 200 requests × 5
	// components × 2 replicas.
	if served+cancelled != 2000 {
		t.Fatalf("served %d + cancelled %d != 2000", served, cancelled)
	}
}

func TestMigrationMovesInstance(t *testing.T) {
	svc, engine, cl := newTestService(t, basicPolicy{}, 4)
	inst := svc.Component(0).Primary()
	from := inst.NodeID()
	to := (from + 1) % 4
	if err := inst.MigrateTo(to, 1.5); err != nil {
		t.Fatal(err)
	}
	// Before the delay elapses the instance still serves from the old
	// node.
	engine.Run(1.0)
	if inst.NodeID() != from {
		t.Fatal("migration landed early")
	}
	engine.Run(2.0)
	if inst.NodeID() != to {
		t.Fatal("migration did not land")
	}
	if !cl.Node(to).Hosts(inst.ProgramID()) || cl.Node(from).Hosts(inst.ProgramID()) {
		t.Fatal("cluster placement inconsistent after migration")
	}
	if svc.Migrations() != 1 {
		t.Fatalf("migrations = %d", svc.Migrations())
	}
}

func TestOverlappingMigrationRejected(t *testing.T) {
	svc, _, _ := newTestService(t, basicPolicy{}, 4)
	inst := svc.Component(0).Primary()
	if err := inst.MigrateTo((inst.NodeID()+1)%4, 1); err != nil {
		t.Fatal(err)
	}
	if err := inst.MigrateTo((inst.NodeID()+2)%4, 1); err == nil {
		t.Fatal("overlapping migration accepted")
	}
}

func TestMigrateToSameNodeIsNoop(t *testing.T) {
	svc, _, _ := newTestService(t, basicPolicy{}, 4)
	inst := svc.Component(0).Primary()
	if err := inst.MigrateTo(inst.NodeID(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateNegativeDelayRejected(t *testing.T) {
	svc, _, _ := newTestService(t, basicPolicy{}, 4)
	inst := svc.Component(0).Primary()
	if err := inst.MigrateTo((inst.NodeID()+1)%4, -1); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestUtilisationScaledDemand(t *testing.T) {
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	inst := svc.Component(0).Primary()
	idle := inst.Demand()
	// Saturate the instance for several seconds.
	svc.StartArrivals(2000, 8000)
	engine.Run(5)
	busy := inst.Demand()
	if busy[cluster.Core] <= idle[cluster.Core] {
		t.Fatalf("busy demand %v not above idle %v", busy, idle)
	}
	if inst.Utilization() <= 0 {
		t.Fatal("utilisation not tracked")
	}
	// Demand never exceeds the stage's nominal footprint.
	nominal := svc.Component(0).Spec.Demand
	for r := 0; r < cluster.NumResources; r++ {
		if busy[r] > nominal[r]+1e-9 {
			t.Fatalf("demand %v exceeds nominal %v", busy, nominal)
		}
	}
}

func TestInterferenceSlowsService(t *testing.T) {
	// The same service under a heavily loaded cluster must record longer
	// latencies than on an idle cluster.
	run := func(load bool) float64 {
		engine := sim.NewEngine()
		cl := cluster.New(4, cluster.DefaultCapacity())
		svc, err := New(engine, cl, xrand.New(2), basicPolicy{}, Config{Topology: smallTopology()})
		if err != nil {
			t.Fatal(err)
		}
		if load {
			for i := 0; i < 4; i++ {
				cl.Node(i).Host(&staticProgram{id: "bg", demand: cluster.DefaultCapacity().Scale(0.6)})
			}
		}
		svc.StartArrivals(50, 500)
		engine.Run(30)
		return svc.Collector().Report().AvgOverallMs
	}
	idle := run(false)
	loaded := run(true)
	if loaded <= idle*1.3 {
		t.Fatalf("interference effect too weak: idle %vms vs loaded %vms", idle, loaded)
	}
}

type staticProgram struct {
	id     string
	demand cluster.Vector
}

func (p *staticProgram) ProgramID() string      { return p.id }
func (p *staticProgram) Demand() cluster.Vector { return p.demand }

func TestLawMultiplierProperties(t *testing.T) {
	law := DefaultLaw(cluster.DefaultCapacity())
	if m := law.Multiplier(cluster.Vector{}); m != 1 {
		t.Fatalf("zero-contention multiplier = %v, want 1", m)
	}
	half := law.Multiplier(cluster.DefaultCapacity().Scale(0.5))
	full := law.Multiplier(cluster.DefaultCapacity())
	over := law.Multiplier(cluster.DefaultCapacity().Scale(2))
	if !(1 < half && half < full) {
		t.Fatalf("multiplier not increasing: 1, %v, %v", half, full)
	}
	if math.Abs(over-full) > 1e-12 {
		t.Fatalf("multiplier should saturate at capacity: %v vs %v", over, full)
	}
}

func TestLawSampleMean(t *testing.T) {
	law := DefaultLaw(cluster.DefaultCapacity())
	src := xrand.New(3)
	bg := cluster.DefaultCapacity().Scale(0.3)
	want := law.MeanServiceTime(0.001, bg)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += law.Sample(0.001, bg, src)
	}
	got := sum / n
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("sample mean = %v, want ≈%v", got, want)
	}
}

func TestLawExponentialMode(t *testing.T) {
	law := DefaultLaw(cluster.DefaultCapacity())
	law.NoiseSigma = 0 // exponential
	src := xrand.New(4)
	const n = 100000
	var w struct{ sum, sumSq float64 }
	mean := law.MeanServiceTime(0.001, cluster.Vector{})
	for i := 0; i < n; i++ {
		x := law.Sample(0.001, cluster.Vector{}, src)
		w.sum += x
		w.sumSq += x * x
	}
	m := w.sum / n
	v := w.sumSq/n - m*m
	c2 := v / (m * m)
	if math.Abs(m-mean)/mean > 0.02 {
		t.Fatalf("exponential mean = %v, want %v", m, mean)
	}
	if math.Abs(c2-1) > 0.05 {
		t.Fatalf("exponential C² = %v, want ≈1", c2)
	}
}

func TestAllocationArray(t *testing.T) {
	svc, _, _ := newTestService(t, basicPolicy{}, 4)
	a := svc.Allocation()
	if len(a) != 5 {
		t.Fatalf("allocation length = %d", len(a))
	}
	for i, comp := range svc.Components() {
		if a[i] != comp.Primary().NodeID() {
			t.Fatalf("allocation[%d] = %d, want %d", i, a[i], comp.Primary().NodeID())
		}
	}
}

func TestStageComponentsAccessors(t *testing.T) {
	svc, _, _ := newTestService(t, basicPolicy{}, 4)
	if svc.NumStages() != 2 {
		t.Fatalf("NumStages = %d", svc.NumStages())
	}
	if len(svc.StageComponents(0)) != 2 || len(svc.StageComponents(1)) != 3 {
		t.Fatal("stage membership wrong")
	}
	// Global indices are dense and ordered.
	for i, comp := range svc.Components() {
		if comp.Global != i {
			t.Fatalf("component %d has Global=%d", i, comp.Global)
		}
	}
}

func TestSetActiveReplicasScalesUpAndParks(t *testing.T) {
	svc, _, cl := newTestService(t, basicPolicy{}, 4)
	if got := svc.ActiveReplicas(); got != 1 {
		t.Fatalf("initial ActiveReplicas = %d, want 1", got)
	}
	if got := svc.ActiveInstanceCount(); got != 5 {
		t.Fatalf("initial ActiveInstanceCount = %d, want 5", got)
	}
	if err := svc.SetActiveReplicas(3); err != nil {
		t.Fatal(err)
	}
	if got := svc.ActiveInstanceCount(); got != 15 {
		t.Fatalf("scaled ActiveInstanceCount = %d, want 15", got)
	}
	for _, c := range svc.Components() {
		if len(c.Instances) != 3 {
			t.Fatalf("component %d has %d instances after scale-up, want 3", c.Global, len(c.Instances))
		}
		// Replica r lands at (homeNode + r) mod nodes: the deployment rule.
		home := c.Instances[0].NodeID()
		for r, in := range c.Instances {
			if want := (home + r) % cl.NumNodes(); in.NodeID() != want {
				t.Fatalf("component %d replica %d on node %d, want %d", c.Global, r, in.NodeID(), want)
			}
			if cl.LocateProgram(in.ProgramID()) != in.NodeID() {
				t.Fatalf("replica %s not hosted on its node", in.ProgramID())
			}
		}
		if got := len(c.ActiveInstances()); got != 3 {
			t.Fatalf("ActiveInstances = %d, want 3", got)
		}
	}
	// Scale-down parks instances without unhosting them; scale-up again
	// reuses the parked instances rather than re-placing.
	if err := svc.SetActiveReplicas(1); err != nil {
		t.Fatal(err)
	}
	c0 := svc.Component(0)
	if got := len(c0.ActiveInstances()); got != 1 {
		t.Fatalf("parked ActiveInstances = %d, want 1", got)
	}
	if got := len(c0.Instances); got != 3 {
		t.Fatalf("parked component lost instances: %d, want 3", got)
	}
	if err := svc.SetActiveReplicas(2); err != nil {
		t.Fatal(err)
	}
	if got := len(c0.Instances); got != 3 {
		t.Fatalf("re-scale re-placed instances: %d, want still 3", got)
	}
}

func TestSetActiveReplicasValidation(t *testing.T) {
	svc, _, _ := newTestService(t, basicPolicy{}, 4)
	if err := svc.SetActiveReplicas(0); err == nil {
		t.Fatal("scale to 0 accepted")
	}
	if err := svc.SetActiveReplicas(5); err == nil {
		t.Fatal("scale beyond cluster size accepted")
	}
	fan, _, _ := newTestService(t, fanoutPolicy{k: 3}, 4)
	if err := fan.SetActiveReplicas(2); err == nil {
		t.Fatal("scale below the dispatch policy's replica need accepted")
	}
	if err := fan.SetActiveReplicas(4); err != nil {
		t.Fatalf("legal scale rejected: %v", err)
	}
	// SetPolicy validates against the active count, so a scaled-up world
	// accepts a policy the deployment alone could not host.
	svc2, _, _ := newTestService(t, basicPolicy{}, 4)
	if err := svc2.SetPolicy(fanoutPolicy{k: 3}); err == nil {
		t.Fatal("3-replica policy accepted on a 1-active world")
	}
	if err := svc2.SetActiveReplicas(3); err != nil {
		t.Fatal(err)
	}
	if err := svc2.SetPolicy(fanoutPolicy{k: 3}); err != nil {
		t.Fatalf("3-replica policy rejected after scale-up: %v", err)
	}
}

func TestPickInstanceLeastLoaded(t *testing.T) {
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	if err := svc.SetActiveReplicas(2); err != nil {
		t.Fatal(err)
	}
	comp := svc.Component(0)
	// With every instance idle the primary wins (lowest index tie-break).
	if got := svc.PickInstance(comp); got != comp.Primary() {
		t.Fatalf("idle PickInstance = %s, want primary", got.ProgramID())
	}
	// Occupy the primary: dispatch must move to the idle replica.
	r := svc.InjectRequest()
	_ = r
	if !comp.Primary().Busy() {
		t.Fatal("primary not busy after injection")
	}
	if got := svc.PickInstance(comp); got != comp.Instances[1] {
		t.Fatalf("loaded PickInstance = %s, want replica 1", got.ProgramID())
	}
	engine.Run(0.5)
}

func TestWorkFactorScalesServiceTime(t *testing.T) {
	svc, engine, _ := newTestService(t, basicPolicy{}, 4)
	if got := svc.WorkFactor(); got != 1 {
		t.Fatalf("initial WorkFactor = %v, want 1", got)
	}
	for _, bad := range []float64{0, -1, 1.01} {
		if err := svc.SetWorkFactor(bad); err == nil {
			t.Fatalf("work factor %v accepted", bad)
		}
	}
	// Same seed, same single request: halving the work factor must halve
	// the drawn service time exactly (the multiplier and lognormal draw
	// are identical; only the base scales). The engine keeps ticking demand
	// refreshes forever, so runs are stepped until the request completes.
	completeOne := func(s *Service, e *sim.Engine) float64 {
		s.InjectRequest()
		start := e.Now()
		for s.Completed() == 0 && e.Step() {
		}
		return e.Now() - start
	}
	fullSvc, fullEngine, _ := newTestService(t, basicPolicy{}, 4)
	full := completeOne(fullSvc, fullEngine)
	if err := svc.SetWorkFactor(0.5); err != nil {
		t.Fatal(err)
	}
	half := completeOne(svc, engine)
	if math.Abs(half-full/2) > 1e-12 {
		t.Fatalf("half-work request took %v, want %v (half of %v)", half, full/2, full)
	}
}
